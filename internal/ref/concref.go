package ref

import (
	"fmt"

	"sfence/internal/isa"
)

// ConcState is the architectural state of a round-robin, sequentially-
// consistent execution of a multi-threaded program: per-thread registers
// plus one shared memory.
type ConcState struct {
	// Threads holds each thread's register file and counters. All thread
	// states alias the same Mem map.
	Threads []*State
	// Mem is the shared word-addressable memory.
	Mem map[int64]int64
	// Steps is the total instruction count across all threads.
	Steps int
}

// RunConc interprets a multi-threaded program under sequential
// consistency with a fixed round-robin schedule: one instruction per live
// thread per round, in thread order. Threads retire by executing Halt or
// running off the end of the code; the interpreter returns once all have.
//
// For the determinate scenarios GenConcurrent emits, the checked
// projection of the final state (data registers R1-R12 and the scenario's
// memory footprint) is the same in *every* fair schedule, so this single
// canonical interleaving is a sound oracle for the full machine's relaxed
// executions. Fences are functionally transparent here, which is exactly
// why the same oracle covers all three fence lowerings.
func RunConc(prog *isa.Program, entries []string, regs []map[isa.Reg]int64, mem map[int64]int64, maxSteps int) (*ConcState, error) {
	cs := &ConcState{Mem: make(map[int64]int64, len(mem)+16)}
	for a, v := range mem {
		cs.Mem[norm(a)] = v
	}
	pcs := make([]int, len(entries))
	live := make([]bool, len(entries))
	remaining := len(entries)
	for t, entry := range entries {
		pc, ok := prog.Entries[entry]
		if !ok {
			return cs, fmt.Errorf("ref: unknown entry %q", entry)
		}
		st := &State{Mem: cs.Mem}
		if t < len(regs) {
			st.seedRegs(regs[t])
		}
		cs.Threads = append(cs.Threads, st)
		pcs[t] = pc
		live[t] = true
	}
	for remaining > 0 {
		for t, st := range cs.Threads {
			if !live[t] {
				continue
			}
			if cs.Steps >= maxSteps {
				return cs, fmt.Errorf("ref: exceeded %d total steps (thread %d at pc %d)", maxSteps, t, pcs[t])
			}
			if pcs[t] < 0 || pcs[t] >= len(prog.Code) {
				live[t] = false // running off the end halts
				remaining--
				continue
			}
			next, halted, err := st.step(prog.Code, pcs[t])
			cs.Steps++
			if err != nil {
				return cs, fmt.Errorf("ref: thread %d: %v", t, err)
			}
			if halted {
				live[t] = false
				remaining--
				continue
			}
			pcs[t] = next
		}
	}
	return cs, nil
}
