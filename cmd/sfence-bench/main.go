// Command sfence-bench regenerates every table and figure of the paper's
// evaluation section (and the repository's extra ablations) on the
// simulated machine.
//
// Examples:
//
//	sfence-bench -all            # everything, full scale
//	sfence-bench -fig12 -quick   # just Figure 12, reduced sizing
//	sfence-bench -table3 -table4 -hwcost
//	sfence-bench -fig13 -json    # schema-versioned JSON envelope on stdout
//	sfence-bench -all -progress  # per-experiment progress on stderr
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"sfence"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		fig12     = flag.Bool("fig12", false, "Figure 12: impact of workload")
		fig13     = flag.Bool("fig13", false, "Figure 13: full applications (T/S/T+/S+)")
		fig14     = flag.Bool("fig14", false, "Figure 14: class vs set scope")
		fig15     = flag.Bool("fig15", false, "Figure 15: memory latency sweep")
		fig16     = flag.Bool("fig16", false, "Figure 16: ROB size sweep")
		table3    = flag.Bool("table3", false, "Table III: architectural parameters")
		table4    = flag.Bool("table4", false, "Table IV: benchmark descriptions")
		hwcost    = flag.Bool("hwcost", false, "Section VI-E: hardware cost")
		ablations = flag.Bool("ablations", false, "design-choice ablations (beyond the paper)")
		quick      = flag.Bool("quick", false, "reduced workload sizes")
		asJSON     = flag.Bool("json", false, "emit schema-versioned JSON envelopes instead of ASCII")
		progress   = flag.Bool("progress", false, "report per-experiment progress on stderr")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	sc := sfence.Full
	if *quick {
		sc = sfence.Quick
	}
	any := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		pprof.StopCPUProfile() // flush a partial profile before exiting
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}
	// emit prints either the ASCII rendering or the JSON envelope.
	emit := func(render func() string, encode func() ([]byte, error)) {
		if !*asJSON {
			fmt.Println(render())
			return
		}
		data, err := encode()
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(data)
	}

	if *progress {
		sfence.SetExperimentProgress(func(experiment string, done, total int) {
			fmt.Fprintf(os.Stderr, "\r%-24s %3d/%3d", experiment, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}

	if *all || *table3 {
		any = true
		emit(
			func() string { return sfence.RenderTableIII(sfence.DefaultConfig()) },
			func() ([]byte, error) { return sfence.TableIIIJSON(sfence.DefaultConfig(), sc) })
	}
	if *all || *table4 {
		any = true
		emit(sfence.RenderTableIV,
			func() ([]byte, error) { return sfence.TableIVJSON(sc) })
	}
	if *all || *hwcost {
		any = true
		rep := sfence.HardwareCost(sfence.DefaultConfig().Core)
		emit(
			func() string { return sfence.RenderHardwareCost(rep) },
			func() ([]byte, error) { return sfence.HardwareCostJSON(rep, sc) })
	}
	if *all || *fig12 {
		any = true
		series, err := sfence.Figure12(sc)
		if err != nil {
			fail(err)
		}
		emit(
			func() string { return sfence.RenderFigure12(series) },
			func() ([]byte, error) { return sfence.Figure12JSON(series, sc) })
	}
	type figure struct {
		on    *bool
		kind  string
		title string
		fn    func(sfence.Scale) ([]sfence.BenchGroup, error)
	}
	for _, f := range []figure{
		{fig13, sfence.KindFigure13, "Figure 13 — Normalized execution time (T, S, T+, S+)", sfence.Figure13},
		{fig14, sfence.KindFigure14, "Figure 14 — Class scope vs. set scope", sfence.Figure14},
		{fig15, sfence.KindFigure15, "Figure 15 — Varying memory access latency (200/300/500 cycles)", sfence.Figure15},
		{fig16, sfence.KindFigure16, "Figure 16 — Varying ROB size (64/128/256 entries)", sfence.Figure16},
	} {
		if !*all && !*f.on {
			continue
		}
		any = true
		groups, err := f.fn(sc)
		if err != nil {
			fail(err)
		}
		f := f
		emit(
			func() string { return sfence.RenderGroups(f.title, groups) },
			func() ([]byte, error) { return sfence.GroupsJSON(f.kind, groups, sc) })
	}
	if *all || *ablations {
		any = true
		var sets []sfence.AblationSet
		for _, a := range sfence.AblationSpecs() {
			rows, err := a.Fn(sc)
			if err != nil {
				fail(err)
			}
			if *asJSON {
				sets = append(sets, sfence.AblationSet{Name: a.Name, Title: a.Title, Rows: rows})
				continue
			}
			fmt.Println(sfence.RenderAblation("Ablation — "+a.Title, rows))
		}
		if *asJSON {
			data, err := sfence.AblationsJSON(sets, sc)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
		}
	}
	if !any {
		flag.Usage()
		pprof.StopCPUProfile()
		os.Exit(2)
	}
}
