package results

import (
	"testing"
)

func TestFlattenJSONDiff(t *testing.T) {
	oldDoc := []byte(`{"schema":2,"data":[{"bench":"dekker","speedup":[1.5,2.0],"ops":64,"on":true}]}`)
	newDoc := []byte(`{"schema":2,"data":[{"bench":"dekker","speedup":[1.5,2.5],"ops":64,"on":false}]}`)
	ds := flattenJSON(newDoc).Diff(flattenJSON(oldDoc))
	if len(ds) != 2 {
		t.Fatalf("got %d deltas %v, want speedup[1] and on", len(ds), ds)
	}
	if ds[0].Name != "data[0].on" || ds[0].Old.Value != 1 || ds[0].New.Value != 0 {
		t.Errorf("delta 0 = %+v, want data[0].on 1 -> 0", ds[0])
	}
	// 2.0 is integral and flattens to a Value sample; 2.5 flattens to a
	// Float sample — the kind change alone marks the delta.
	if ds[1].Name != "data[0].speedup[1]" || ds[1].Old.Value != 2 || ds[1].New.Float != 2.5 {
		t.Errorf("delta 1 = %+v, want data[0].speedup[1] 2 -> 2.5", ds[1])
	}
}

func TestFlattenJSONIdenticalSemantics(t *testing.T) {
	// Formatting-only differences flatten to identical snapshots: the
	// change report shows zero value deltas even when bytes differ.
	a := []byte(`{"x": 1, "y": [2, 3]}`)
	b := []byte("{\n  \"y\": [2, 3],\n  \"x\": 1\n}")
	if ds := flattenJSON(a).Diff(flattenJSON(b)); len(ds) != 0 {
		t.Errorf("formatting-only difference produced deltas: %v", ds)
	}
}

func TestFlattenJSONUnparseable(t *testing.T) {
	ds := flattenJSON([]byte(`{"x":1}`)).Diff(flattenJSON([]byte(`not json`)))
	if len(ds) == 0 {
		t.Error("corrupt baseline vs valid document produced no deltas")
	}
}
