// Package machine assembles cores, the cache hierarchy, and the memory
// image into a deterministic chip-multiprocessor: a single global clock
// ticks every core in a fixed order, so every run of the same program and
// configuration produces bit-identical results.
//
// Construction (New) also wires the observability substrate: every
// component registers its counters into one stats.Registry — core
// pipeline and S-Fence hardware stats under "coreN.*", that core's
// per-cache-level counters under "coreN.mem.l<k>_*", machine-wide
// derived sums and the clock accounting under "machine.*" — and
// StatsSnapshot evaluates all of it into one deterministically ordered
// snapshot.
//
// Run is a two-speed event-driven loop: per-cycle stepping while any
// core makes progress, and a fast-forward jump to the earliest per-core
// wakeup when every core is quiescent, with skipped cycles credited so
// results stay bit-identical to naive stepping (see DESIGN.md, "The
// two-speed event-driven clock").
package machine

import (
	"context"
	"fmt"

	"sfence/internal/cpu"
	"sfence/internal/isa"
	"sfence/internal/memsys"
	"sfence/internal/stats"
)

// Config aggregates the whole-machine parameters.
type Config struct {
	Cores     int
	Core      cpu.Config
	Mem       memsys.Config
	ImageSize int64 // bytes of simulated physical memory
	// MaxCycles aborts Run when exceeded (0 means the DefaultMaxCycles
	// safety net).
	MaxCycles int64
	// Parallel configures the optimistic-epoch parallel runner. The
	// zero value (Workers 0) and Workers 1 select the sequential
	// two-speed loop; results are bit-identical either way.
	Parallel ParallelConfig
}

// ParallelConfig selects how many OS threads step cores inside the
// optimistic epochs of Run's parallel mode (see runParallel). Workers
// only changes wall-clock time: snapshots, registers, memory, and every
// registered statistic outside machine.clock.* are bit-identical for
// any worker count.
type ParallelConfig struct {
	Workers int
}

// DefaultMaxCycles is the runaway-simulation safety net.
const DefaultMaxCycles = 200_000_000

// DefaultConfig returns the paper's Table III machine: an 8-core CMP with
// the default core and memory-system parameters.
func DefaultConfig() Config {
	return Config{
		Cores:     8,
		Core:      cpu.DefaultConfig(),
		Mem:       memsys.DefaultConfig(),
		ImageSize: 64 << 20,
	}
}

// Validate checks the aggregate configuration.
func (c Config) Validate() error {
	if c.Cores < 1 || c.Cores > memsys.MaxCores {
		return fmt.Errorf("machine: %d cores out of range [1,%d]", c.Cores, memsys.MaxCores)
	}
	if c.Parallel.Workers < 0 {
		return fmt.Errorf("machine: %d parallel workers (want >= 0)", c.Parallel.Workers)
	}
	if c.ImageSize < 1024 {
		return fmt.Errorf("machine: image size %d too small", c.ImageSize)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	return c.Mem.Validate()
}

// Thread describes one hardware thread: its entry point and initial
// register values.
type Thread struct {
	Entry string // program entry-point name
	Regs  map[isa.Reg]int64
}

// Machine is a running simulation instance.
type Machine struct {
	cfg   Config
	prog  *isa.Program
	img   *memsys.Image
	hier  *memsys.Hierarchy
	cores []*cpu.Core
	cycle int64

	reg   *stats.Registry
	clock ClockStats
}

// ClockStats reports how the two-speed clock spent a Run: SlowTicks is the
// number of cycles stepped one by one, SkippedCycles the cycles covered by
// fast-forward jumps, and Jumps the number of jumps. SpinJumps counts the
// jumps that carried at least one core through a confirmed busy-wait spin
// (see cpu's spin detector), and SpinSkippedCycles the cycles those jumps
// covered — both are included in Jumps/SkippedCycles, not additional.
// TracerPinned records that fast-forwarding was disabled because a
// per-cycle pipeline tracer was attached — so zero jumps on a traced run
// reads as "pinned", not "never idle". Counter-only observers (see
// cpu.Core.SetObserver) do not pin the clock and never set the flag.
//
// The parallel runner adds its own accounting: Epochs counts attempted
// optimistic epochs, EpochFails the ones that aborted and were re-run
// sequentially, and EpochCycles the machine cycles committed by
// successful epochs. SlowTicks+SkippedCycles+EpochCycles equals the
// final cycle count. All of it lives under machine.clock.* because it
// describes how the clock ran, not what the simulated hardware did.
type ClockStats struct {
	SlowTicks         int64
	SkippedCycles     int64
	Jumps             int64
	SpinJumps         int64
	SpinSkippedCycles int64
	Epochs            int64
	EpochFails        int64
	EpochCycles       int64
	TracerPinned      bool
}

// New builds a machine running prog with one thread per entry of threads.
// Thread i runs on core i; cores beyond len(threads) stay idle.
func New(cfg Config, prog *isa.Program, threads []Thread) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("machine: program rejected: %w", err)
	}
	if len(threads) == 0 || len(threads) > cfg.Cores {
		return nil, fmt.Errorf("machine: %d threads for %d cores", len(threads), cfg.Cores)
	}
	img := memsys.NewImage(cfg.ImageSize)
	hier, err := memsys.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, prog: prog, img: img, hier: hier, reg: stats.NewRegistry()}
	root := m.reg.Root()
	for i, th := range threads {
		pc, err := prog.Entry(th.Entry)
		if err != nil {
			return nil, err
		}
		core, err := cpu.NewCore(i, cfg.Core, prog, pc, th.Regs, img, hier)
		if err != nil {
			return nil, err
		}
		core.OnStoreComplete = m.broadcastStore
		m.cores = append(m.cores, core)
		// Every component owns its counters and registers them here, at
		// construction, under its place in the hierarchy: core pipeline
		// and S-Fence hardware stats under "coreN.*", its cache-side
		// counters under "coreN.mem.*".
		g := root.Sub(fmt.Sprintf("core%d", i))
		core.RegisterStats(g)
		hier.RegisterStats(g.Sub("mem"), i)
	}
	// Remote coherence actions (invalidations, downgrades) are reported
	// line-by-line to the victim core's spin detector, which drops any
	// detection whose loop reads the disturbed line. Cores beyond the
	// thread count have no spin state worth perturbing.
	hier.OnDisturb = func(core int, line int64) {
		if core < len(m.cores) {
			m.cores[core].SpinNoteLineDisturb(line)
		}
	}
	m.registerMachineStats(root.Sub("machine"))
	return m, nil
}

// registerMachineStats publishes the whole-machine derived stats: the
// global cycle, cross-core sums (what TotalStats reports), memory-system
// totals, the two-speed clock accounting, and the paper's headline
// fence-stall fraction. All are closures evaluated only at snapshot time.
func (m *Machine) registerMachineStats(g *stats.Group) {
	sum := func(pick func(*cpu.Stats) uint64) func() uint64 {
		return func() uint64 {
			var t uint64
			for _, c := range m.cores {
				t += pick(c.Stats())
			}
			return t
		}
	}
	g.Derived("cycles", "current global cycle", func() uint64 { return uint64(m.cycle) })
	g.Derived("core_cycles", "active cycles summed across cores", sum(func(s *cpu.Stats) uint64 { return s.Cycles.Get() }))
	g.Derived("committed", "committed instructions summed across cores", sum(func(s *cpu.Stats) uint64 { return s.Committed.Get() }))
	g.Derived("committed_fences", "committed fences summed across cores", sum(func(s *cpu.Stats) uint64 { return s.CommittedFences.Get() }))
	g.Derived("fence_stall_cycles", "fence stall cycles summed across cores", sum(func(s *cpu.Stats) uint64 { return s.FenceStallCycles.Get() }))
	g.Derived("fence_idle_cycles", "fence idle cycles summed across cores (the stacked-bar metric)", sum(func(s *cpu.Stats) uint64 { return s.FenceIdleCycles.Get() }))
	g.Derived("mispredicts", "branch mispredictions summed across cores", sum(func(s *cpu.Stats) uint64 { return s.Mispredicts.Get() }))
	g.Formula("fence_stall_fraction", "fence idle cycles over total core cycles", func() float64 {
		t := m.TotalStats()
		return t.FenceStallFraction()
	})

	// One cross-core miss sum per cache level, plus hit sums for the
	// shared levels (private-level hits stay a per-core property under
	// coreN.mem.l<k>_hits).
	mem := g.Sub("mem")
	for k := 0; k < m.hier.Depth(); k++ {
		k := k
		n := k + 1
		mem.Derived(fmt.Sprintf("l%d_misses", n), fmt.Sprintf("L%d misses summed across cores", n),
			func() uint64 { return m.hier.LevelMisses(k) })
		if m.hier.LevelConfig(k).Shared {
			mem.Derived(fmt.Sprintf("l%d_hits", n), fmt.Sprintf("L%d hits summed across cores", n),
				func() uint64 { return m.hier.LevelHits(k) })
		}
	}

	clock := g.Sub("clock")
	clock.Derived("slow_ticks", "cycles stepped one by one by the two-speed clock", func() uint64 { return uint64(m.clock.SlowTicks) })
	clock.Derived("skipped_cycles", "cycles covered by fast-forward jumps", func() uint64 { return uint64(m.clock.SkippedCycles) })
	clock.Derived("jumps", "fast-forward jumps taken", func() uint64 { return uint64(m.clock.Jumps) })
	clock.Derived("spin_jumps", "jumps that carried at least one core through a confirmed spin", func() uint64 { return uint64(m.clock.SpinJumps) })
	clock.Derived("spin_skipped_cycles", "cycles covered by spin-carrying jumps", func() uint64 { return uint64(m.clock.SpinSkippedCycles) })
	clock.Derived("epochs", "optimistic parallel epochs attempted", func() uint64 { return uint64(m.clock.Epochs) })
	clock.Derived("epoch_fails", "epochs aborted and re-run sequentially", func() uint64 { return uint64(m.clock.EpochFails) })
	clock.Derived("epoch_cycles", "machine cycles committed by successful epochs", func() uint64 { return uint64(m.clock.EpochCycles) })
	clock.Derived("tracer_pinned", "1 when a per-cycle tracer disabled fast-forwarding", func() uint64 {
		if m.clock.TracerPinned {
			return 1
		}
		return 0
	})
	// Per-core spin accounting lives under machine.clock (not coreN.*) on
	// purpose: spin counters describe how the clock ran, not what the
	// simulated hardware did, and everything outside machine.clock.* must
	// stay bit-identical between the naive and event-driven clocks.
	for i, c := range m.cores {
		c := c
		clock.Derived(fmt.Sprintf("core%d_spin_jumps", i), fmt.Sprintf("spin-forward jumps applied to core %d", i),
			c.SpinJumps)
		clock.Derived(fmt.Sprintf("core%d_spin_skipped_cycles", i), fmt.Sprintf("cycles core %d skipped inside confirmed spins", i),
			c.SpinSkippedCycles)
	}
}

// StatsRegistry exposes the machine's hierarchical statistics registry.
func (m *Machine) StatsRegistry() *stats.Registry { return m.reg }

// StatsSnapshot evaluates every registered stat — per-core pipeline and
// S-Fence hardware counters, per-core cache counters, machine totals, and
// clock accounting — into one deterministically ordered snapshot.
func (m *Machine) StatsSnapshot() stats.Snapshot { return m.reg.Snapshot() }

// broadcastStore delivers a completed store to the cores that might care.
// Only a core holding a load that speculatively executed past a fence can
// react to a remote store (see Core.NoteRemoteStore), so the spec-load
// occupancy count is an exact snoop filter: skipped cores would have
// treated the notification as a no-op. This subsumes a directory-mask
// filter (a core with a speculative load on the line is a sharer), and
// unlike the directory's sharer mask — which an intervening write to the same line
// resets while the speculative load is still in flight — it can never skip
// a core that must replay. See DESIGN.md, "Snoop filtering".
// Spin detection rides the same event: the store's cache access already
// perturbed remote copies when it ISSUED (coherence traffic bumps the
// victims' memory versions), but the Image word only changes now, at
// completion — potentially hundreds of cycles later, with no coherence
// action at all if the spinner re-fetched the line in between. A core
// spinning on this address must therefore be dropped out of its confirmed
// spin here, immediately, before the machine decides whether to jump past
// the cycle in which the new value becomes readable.
func (m *Machine) broadcastStore(from int, addr int64) {
	for _, c := range m.cores {
		if c.ID() == from {
			continue
		}
		c.SpinNoteRemoteStore(addr)
		if c.SpecLoadsInFlight() > 0 {
			c.NoteRemoteStore(addr)
		}
	}
}

// Image exposes the memory image for initialization and verification.
func (m *Machine) Image() *memsys.Image { return m.img }

// Hierarchy exposes the cache hierarchy (for statistics).
func (m *Machine) Hierarchy() *memsys.Hierarchy { return m.hier }

// Cycle returns the current global cycle.
func (m *Machine) Cycle() int64 { return m.cycle }

// Cores returns the number of active cores (threads).
func (m *Machine) Cores() int { return len(m.cores) }

// Core returns the i-th core.
func (m *Machine) Core(i int) *cpu.Core { return m.cores[i] }

// Step advances the machine one cycle.
func (m *Machine) Step() {
	m.stepCycle()
}

// stepCycle ticks every core once and folds the whole-machine status scans
// into the same pass, so Run does not re-walk the cores for Done/Fault
// every cycle: it reports whether all cores are done, the first core
// fault, and whether any core is still active (made forward progress this
// cycle or holds undelivered snoop notifications). A core in a confirmed
// stable spin does not count as active even though it progresses every
// cycle — that is the whole point of spin detection. The per-core checks
// here can be stale (a later core's tick may perturb an earlier core's
// spin), but only toward active == true, i.e. an extra slow tick; the jump
// block in Run re-evaluates SpinActive after all ticks and its NextWakeup
// minimum yields a zero-length jump for any core perturbed late.
func (m *Machine) stepCycle() (allDone bool, fault error, active bool) {
	allDone = true
	for _, c := range m.cores {
		c.Tick(m.cycle)
		if !c.Done() {
			allDone = false
		}
		if c.Active() && !c.SpinActive() {
			active = true
		}
		if fault == nil {
			fault = c.Fault()
		}
	}
	m.cycle++
	m.clock.SlowTicks++
	return allDone, fault, active
}

// Clock returns the two-speed clock's accounting so far.
func (m *Machine) Clock() ClockStats { return m.clock }

// Done reports whether every core has halted and drained.
func (m *Machine) Done() bool {
	for _, c := range m.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Fault returns the first core fault, if any.
func (m *Machine) Fault() error {
	for _, c := range m.cores {
		if err := c.Fault(); err != nil {
			return err
		}
	}
	return nil
}

// traced reports whether any core has a pipeline tracer attached. Tracers
// observe per-cycle events — notably one TraceFenceStall per stalled cycle
// — so a traced machine must step every cycle (the slow path).
func (m *Machine) traced() bool {
	for _, c := range m.cores {
		if c.Traced() {
			return true
		}
	}
	return false
}

// ctxCheckInterval bounds how many cycle-loop iterations Run executes
// between context checks. A channel poll per cycle would slow the hot
// loop measurably; a poll every few thousand iterations keeps the
// overhead unmeasurable while still reacting to cancellation within
// microseconds of wall-clock time.
const ctxCheckInterval = 4096

// Run executes until every core is done, a core faults, the context is
// cancelled, or the cycle budget is exhausted. It returns the total cycle
// count. A cancelled or expired context makes Run return promptly with
// ctx.Err() (checked every ctxCheckInterval loop iterations, so a
// simulation can be time-boxed with context.WithTimeout or aborted with
// context.WithCancel mid-cycle-loop); the machine is left at the cycle it
// reached and is safe to inspect, but not to resume.
//
// Run is a two-speed, event-driven loop: while any core is active the
// machine ticks cycle by cycle, but when every core is quiescent —
// waiting on cache misses, store-buffer drains, or redirect bubbles — the
// clock jumps straight to the earliest per-core wakeup, crediting the
// skipped cycles to each core's stall accounting exactly as per-cycle
// stepping would have. The per-cycle timing model is untouched: results
// and statistics are bit-identical to naive stepping (asserted by
// TestClockEquivalence). Attaching a tracer pins the slow path, because
// tracers observe per-cycle events.
func (m *Machine) Run(ctx context.Context) (int64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	limit := m.cfg.MaxCycles
	if limit <= 0 {
		limit = DefaultMaxCycles
	}
	if err := ctx.Err(); err != nil {
		return m.cycle, err
	}
	if m.Done() {
		return m.cycle, nil
	}
	// A pre-existing fault (from manual stepping) is checked once; from
	// here on stepCycle reports faults as they happen, so the loop never
	// re-scans the cores.
	if err := m.Fault(); err != nil {
		return m.cycle, err
	}
	if m.cfg.Parallel.Workers > 1 {
		return m.runParallel(ctx, limit)
	}
	_, err := m.runSeq(ctx, limit, limit)
	return m.cycle, err
}

// runSeq is the sequential two-speed loop: it executes while m.cycle <
// until, returning (true, nil) when every core finished, (false, err)
// on a fault, an exhausted cycle budget, or cancellation, and (false,
// nil) when until was reached first. Run calls it with until == limit
// (the budget error fires before the until return, preserving the
// historical behaviour); the parallel runner uses bounded legs between
// epoch attempts.
func (m *Machine) runSeq(ctx context.Context, limit, until int64) (bool, error) {
	done := ctx.Done()
	untilCheck := ctxCheckInterval
	for {
		if untilCheck--; untilCheck <= 0 {
			untilCheck = ctxCheckInterval
			select {
			case <-done:
				return false, ctx.Err()
			default:
			}
		}
		if m.cycle >= limit {
			return false, fmt.Errorf("machine: exceeded %d cycles (livelock or runaway program?)", limit)
		}
		if m.cycle >= until {
			return false, nil
		}
		allDone, fault, active := m.stepCycle()
		if allDone {
			return true, nil
		}
		if fault != nil {
			return false, fault
		}
		if active {
			continue
		}
		if m.traced() {
			// Record explicitly that fast-forwarding is disabled, so a
			// traced run's Clock() reads "pinned" instead of silently
			// showing zero jumps. Counter-only observers do not pin.
			m.clock.TracerPinned = true
			continue
		}
		// Every core is idle or in a confirmed spin: fast-forward to the
		// earliest wakeup of a non-spinning core. A core with no scheduled
		// event reports cpu.NeverWakes; if all do (a deadlocked or
		// all-spinning program), the clamp below jumps straight to the
		// cycle budget, where the loop reports the same livelock error —
		// with the same statistics — the naive clock would have spun its
		// way to. Spinning cores advance in whole periods only (their
		// per-period stat deltas are what gets credited), so a jump
		// carrying spinners is rounded down to a multiple of the combined
		// stride; the remainder is slow-ticked by later iterations.
		wake := cpu.NeverWakes
		nSpin := 0
		stride := int64(1)
		for _, c := range m.cores {
			if c.SpinActive() {
				nSpin++
				if stride > 0 {
					stride = lcmClamped(stride, c.SpinPeriod())
				}
				continue
			}
			if w := c.NextWakeup(); w < wake {
				wake = w
			}
		}
		if wake > limit {
			wake = limit
		}
		d := wake - m.cycle
		if d <= 0 {
			continue
		}
		if nSpin > 0 {
			if stride <= 0 || d < stride {
				continue // stride overflow or gap too small: slow-step it
			}
			d -= d % stride
		}
		for _, c := range m.cores {
			if c.SpinActive() {
				c.SpinForward(d)
			} else {
				c.FastForward(d)
			}
		}
		m.cycle += d
		m.clock.SkippedCycles += d
		m.clock.Jumps++
		if nSpin > 0 {
			m.clock.SpinJumps++
			m.clock.SpinSkippedCycles += d
		}
	}
}

// maxSpinStride bounds the combined (least-common-multiple) period of
// concurrently spinning cores; a pathological mix of long coprime periods
// degrades to slow stepping instead of overflowing.
const maxSpinStride = 1 << 20

// lcmClamped returns lcm(a, b), or 0 when it would exceed maxSpinStride.
func lcmClamped(a, b int64) int64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	g := a
	for x := b; x != 0; {
		g, x = x, g%x
	}
	l := a / g * b
	if l > maxSpinStride {
		return 0
	}
	return l
}

// TotalStats aggregates core statistics across the machine.
func (m *Machine) TotalStats() cpu.Stats {
	var t cpu.Stats
	for _, c := range m.cores {
		t.Add(c.Stats())
	}
	return t
}
