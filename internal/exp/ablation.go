package exp

import (
	"sfence/internal/cpu"
	"sfence/internal/kernels"
	"sfence/internal/machine"
)

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	Bench  string
	Param  string
	Value  int
	Cycles int64
	Stall  float64 // fence-stall fraction
}

// AblationFSBEntries sweeps the number of fence scope bits per entry
// (1 class entry + reserved set entry up to 7+1). The paper fixes 4; the
// sweep shows that small FSBs force entry sharing (stricter ordering,
// slightly slower) while more than 4 buys nothing for these workloads.
func AblationFSBEntries(sc Scale) ([]AblationRow, error) {
	var out []AblationRow
	for _, bench := range []string{"wsq", "pst"} {
		for _, n := range []int{2, 3, 4, 8} {
			cfg := baseConfig()
			cfg.Core.FSBEntries = n
			res, err := runOne(bench, kernels.Options{Mode: kernels.Scoped, Ops: opsFor(bench, sc)}, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, AblationRow{bench, "FSBEntries", n, res.Cycles, res.FenceStallFraction()})
		}
	}
	return out, nil
}

// AblationFSSDepth sweeps the fence scope stack depth; depth 1 overflows
// on every nested scope, demoting fences to full fences.
func AblationFSSDepth(sc Scale) ([]AblationRow, error) {
	var out []AblationRow
	for _, bench := range []string{"wsq", "msn"} {
		for _, n := range []int{1, 2, 4} {
			cfg := baseConfig()
			cfg.Core.FSSEntries = n
			res, err := runOne(bench, kernels.Options{Mode: kernels.Scoped, Ops: opsFor(bench, sc)}, cfg)
			if err != nil {
				return nil, err
			}
			out = append(out, AblationRow{bench, "FSSEntries", n, res.Cycles, res.FenceStallFraction()})
		}
	}
	return out, nil
}

// AblationStoreBuffer sweeps store-buffer capacity: small buffers throttle
// both fence flavors; larger buffers widen the traditional fence's drain
// window and hence S-Fence's advantage.
func AblationStoreBuffer(sc Scale) ([]AblationRow, error) {
	var out []AblationRow
	for _, bench := range []string{"wsq", "barnes"} {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			for _, n := range []int{2, 8, 16} {
				cfg := baseConfig()
				cfg.Core.SBSize = n
				res, err := runOne(bench, kernels.Options{Mode: mode, Ops: opsFor(bench, sc)}, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, AblationRow{bench + "/" + mode.String(), "SBSize", n, res.Cycles, res.FenceStallFraction()})
			}
		}
	}
	return out, nil
}

// AblationFIFOStoreBuffer compares the RMO (non-FIFO) store buffer with a
// TSO-like FIFO drain: under FIFO, stores cannot overtake each other, so
// the scoped fence's ability to skip out-of-scope stores matters less for
// store-store ordering but still pays off at store-load fences.
func AblationFIFOStoreBuffer(sc Scale) ([]AblationRow, error) {
	var out []AblationRow
	for _, bench := range []string{"wsq", "barnes"} {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			for i, fifo := range []bool{false, true} {
				cfg := baseConfig()
				cfg.Core.FIFOStoreBuffer = fifo
				res, err := runOne(bench, kernels.Options{Mode: mode, Ops: opsFor(bench, sc)}, cfg)
				if err != nil {
					return nil, err
				}
				out = append(out, AblationRow{bench + "/" + mode.String(), "FIFO", i, res.Cycles, res.FenceStallFraction()})
			}
		}
	}
	return out, nil
}

// AblationFinerFences measures the Section VII combination: the wsq put()
// fence only needs store-store ordering (Fig. 2's "storestore" comment),
// so replacing it with a scoped store-store fence removes its issue stall
// entirely. Value 0 = full fences, 1 = SS put fence.
func AblationFinerFences(sc Scale) ([]AblationRow, error) {
	var out []AblationRow
	for _, bench := range []string{"wsq", "pst"} {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			for i, finer := range []bool{false, true} {
				res, err := runOne(bench, kernels.Options{
					Mode: mode, Ops: opsFor(bench, sc), FinerFences: finer,
				}, baseConfig())
				if err != nil {
					return nil, err
				}
				out = append(out, AblationRow{bench + "/" + mode.String(), "SSPutFence", i, res.Cycles, res.FenceStallFraction()})
			}
		}
	}
	return out, nil
}

// AblationRecovery compares the exact snapshot FSS recovery with the
// paper's shadow-FSS mechanism (with its conservative post-recovery
// guard); the shadow variant may demote some fences to full fences after
// mispredictions.
func AblationRecovery(sc Scale) ([]AblationRow, error) {
	var out []AblationRow
	for _, bench := range []string{"wsq", "pst"} {
		for i, rec := range []machine.Config{recCfg(0), recCfg(1)} {
			res, err := runOne(bench, kernels.Options{Mode: kernels.Scoped, Ops: opsFor(bench, sc)}, rec)
			if err != nil {
				return nil, err
			}
			out = append(out, AblationRow{bench, "Recovery", i, res.Cycles, res.FenceStallFraction()})
		}
	}
	return out, nil
}

func recCfg(r int) machine.Config {
	cfg := baseConfig()
	cfg.Core.Recovery = cpu.FSSRecovery(r)
	return cfg
}
