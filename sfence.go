// Package sfence is a Go reproduction of "Fence Scoping" (Lin, Nagarajan,
// Gupta — SC '14): scoped fences (S-Fence) that only order memory accesses
// within a programmer-declared scope, evaluated on a deterministic
// cycle-level out-of-order multicore simulator with an RMO-like relaxed
// memory model.
//
// This root package is the public facade. It re-exports the pieces a user
// needs to:
//
//   - build programs in the mini-ISA (Builder, Program, scoped fences,
//     fs_start/fs_end class brackets, set-scope flagged accesses),
//   - run them on a simulated chip multiprocessor (NewMachine), and
//   - run the paper's benchmarks and experiments (RunBenchmark, and a
//     Lab session driving the experiment registry: NewLab,
//     Experiments, Lab.Run, Lab.RunSuite).
//
// Every simulation is cancellable: Machine.Run, RunBenchmarkContext,
// Lab.Run, and RunSuite all take a context.Context that can cancel or
// time-box the cycle loop.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every table and figure.
package sfence

import (
	"context"
	"io"

	"sfence/internal/cpu"
	"sfence/internal/exp"
	"sfence/internal/isa"
	"sfence/internal/kernels"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/ref"
	"sfence/internal/results"
	"sfence/internal/stats"
	"sfence/internal/trace"
)

// Re-exported core types.
type (
	// Config aggregates the whole-machine parameters (Table III).
	Config = machine.Config
	// CoreConfig holds the out-of-order core and S-Fence hardware
	// parameters (ROB, store buffer, FSB/FSS sizes, speculation).
	CoreConfig = cpu.Config
	// MemConfig holds the cache-hierarchy parameters: an ordered list of
	// cache levels (innermost first, private prefix then shared suffix;
	// the outermost shared level holds the directory) plus memory
	// latencies.
	MemConfig = memsys.Config
	// MemLevelConfig describes one cache level of the hierarchy
	// (size, ways, line, latency, private vs. shared).
	MemLevelConfig = memsys.CacheConfig
	// Thread names a program entry point plus initial registers.
	Thread = machine.Thread
	// Machine is a running simulation instance.
	Machine = machine.Machine
	// Program is an assembled mini-ISA program.
	Program = isa.Program
	// Builder assembles programs (labels, macros, scoped fences).
	Builder = isa.Builder
	// Instruction is one decoded mini-ISA instruction.
	Instruction = isa.Instruction
	// Reg names an architectural register; R0 is hardwired to zero.
	Reg = isa.Reg
	// ScopeKind selects a fence's scope: global, class, or set.
	ScopeKind = isa.ScopeKind
	// FenceOrder selects the fence's ordering kind (full or store-store).
	FenceOrder = isa.FenceOrder
	// FSSRecovery selects the FSS branch-misprediction repair mechanism.
	FSSRecovery = cpu.FSSRecovery
	// CoreStats are the per-core execution statistics.
	CoreStats = cpu.Stats
	// FenceSite is one static fence's stall profile entry.
	FenceSite = cpu.FenceSite

	// StatsRegistry is the hierarchical statistics registry every machine
	// component registers its counters into (see Machine.StatsRegistry).
	StatsRegistry = stats.Registry
	// StatsSnapshot is a deterministically ordered, schema-versioned
	// snapshot of every registered stat (Machine.StatsSnapshot,
	// BenchmarkResult.Snapshot).
	StatsSnapshot = stats.Snapshot
	// StatsSample is one stat's value inside a snapshot.
	StatsSample = stats.Sample
	// StatsObserver is the counter-only observability sink: unlike a
	// Tracer it never pins the two-speed clock's slow path (fast-forward
	// credits skipped stall-cycle events in bulk).
	StatsObserver = stats.Observer
	// CountingObserver tallies pipeline events by kind through the
	// counter-only observer interface.
	CountingObserver = trace.CountingObserver

	// BenchmarkInfo describes one of the paper's benchmarks (Table IV).
	BenchmarkInfo = kernels.Info
	// BenchmarkOptions parameterize a benchmark build.
	BenchmarkOptions = kernels.Options
	// BenchmarkResult summarizes one benchmark run.
	BenchmarkResult = kernels.Result
	// FenceMode selects traditional (global) or scoped fences.
	FenceMode = kernels.FenceMode
	// ScopeOverride forces class or set scope for Figure 14 comparisons.
	ScopeOverride = kernels.ScopeOverride

	// Scale selects experiment sizing (Quick or Full).
	Scale = exp.Scale
	// SpeedupSeries is one Figure 12 curve.
	SpeedupSeries = exp.SpeedupSeries
	// BenchGroup is one benchmark's bars in a grouped figure.
	BenchGroup = exp.BenchGroup
	// Bar is one stacked normalized-execution-time bar.
	Bar = exp.Bar
	// AblationRow is one point of an ablation sweep.
	AblationRow = exp.AblationRow
	// HardwareCostReport is the Section VI-E storage-cost model.
	HardwareCostReport = exp.HardwareCostReport
)

// Fence scopes (the paper's three customized fence statements, Fig. 4).
const (
	ScopeGlobal = isa.ScopeGlobal
	ScopeClass  = isa.ScopeClass
	ScopeSet    = isa.ScopeSet
)

// Fence ordering kinds (Section VII: scoping composes with finer fences).
const (
	OrderFull = isa.OrderFull
	OrderSS   = isa.OrderSS
	OrderLL   = isa.OrderLL
)

// Fence modes for benchmark builds. Inferred builds the unannotated
// (traditional) program and rewrites it with statically inferred scopes
// (see InferScopes).
const (
	Traditional = kernels.Traditional
	Scoped      = kernels.Scoped
	Inferred    = kernels.Inferred
)

// Scope overrides for Figure 14.
const (
	ScopeDefault = kernels.ScopeDefault
	ForceClass   = kernels.ForceClass
	ForceSet     = kernels.ForceSet
)

// Experiment scales.
const (
	Quick = exp.Quick
	Full  = exp.Full
)

// FSS recovery mechanisms.
const (
	RecoverySnapshot = cpu.RecoverySnapshot
	RecoveryShadow   = cpu.RecoveryShadow
)

// General-purpose register names. R0 always reads as zero.
const (
	R0  = isa.R0
	R1  = isa.R1
	R2  = isa.R2
	R3  = isa.R3
	R4  = isa.R4
	R5  = isa.R5
	R6  = isa.R6
	R7  = isa.R7
	R8  = isa.R8
	R9  = isa.R9
	R10 = isa.R10
	R11 = isa.R11
	R12 = isa.R12
	R13 = isa.R13
	R14 = isa.R14
	R15 = isa.R15
	R16 = isa.R16
	R17 = isa.R17
	R18 = isa.R18
	R19 = isa.R19
	R20 = isa.R20
	R21 = isa.R21
	R22 = isa.R22
	R23 = isa.R23
	R24 = isa.R24
	R25 = isa.R25
	R26 = isa.R26
	R27 = isa.R27
	R28 = isa.R28
	R29 = isa.R29
	R30 = isa.R30
	R31 = isa.R31
)

// DefaultConfig returns the paper's Table III machine configuration: an
// 8-core out-of-order CMP with a 128-entry ROB, 32 KB L1 / 1 MB L2 /
// 300-cycle memory, and 4-entry FSB and FSS.
func DefaultConfig() Config { return machine.DefaultConfig() }

// DepthMemConfig returns the canonical N-level memory hierarchy of the
// fig-depth sweep (2 = the Table III two-level default, 3 and 4 add
// progressively deeper private/shared levels). Assign it to Config.Mem to
// run any benchmark on a deeper hierarchy (sfence-sim -depth).
func DepthMemConfig(depth int) MemConfig { return memsys.DepthConfig(depth) }

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder { return isa.NewBuilder() }

// NewMachine builds a simulated machine running prog with the given
// threads (thread i runs on core i).
func NewMachine(cfg Config, prog *Program, threads []Thread) (*Machine, error) {
	return machine.New(cfg, prog, threads)
}

// Benchmarks returns the paper's benchmark registry (Table IV).
func Benchmarks() []BenchmarkInfo { return kernels.All() }

// BuildBenchmark constructs a named benchmark.
func BuildBenchmark(name string, opts BenchmarkOptions) (*kernels.Kernel, error) {
	return kernels.Build(name, opts)
}

// RunBenchmark builds, runs, and verifies a named benchmark. Use
// RunBenchmarkContext to make the run cancellable.
func RunBenchmark(name string, opts BenchmarkOptions, cfg Config) (BenchmarkResult, error) {
	return RunBenchmarkContext(context.Background(), name, opts, cfg)
}

// RunBenchmarkContext is RunBenchmark with a context that cancels or
// time-boxes the simulation mid-cycle-loop (see Machine.Run).
func RunBenchmarkContext(ctx context.Context, name string, opts BenchmarkOptions, cfg Config) (BenchmarkResult, error) {
	return RunBenchmarkTraced(ctx, name, opts, cfg, nil)
}

// RunBenchmarkTraced is RunBenchmarkContext with a pipeline tracer
// attached to every core (nil disables tracing).
func RunBenchmarkTraced(ctx context.Context, name string, opts BenchmarkOptions, cfg Config, tracer Tracer) (BenchmarkResult, error) {
	k, err := kernels.Build(name, opts)
	if err != nil {
		return BenchmarkResult{}, err
	}
	return kernels.RunTraced(ctx, k, cfg, tracer)
}

// Tracer receives per-cycle pipeline events (see NewTextTracer).
type Tracer = cpu.Tracer

// TraceEvent identifies a pipeline event kind.
type TraceEvent = cpu.TraceEvent

// Pipeline event kinds, delivered to Tracers (with per-cycle detail) and
// to counter-only StatsObservers (as counts).
const (
	TraceDecode     = cpu.TraceDecode
	TraceExecute    = cpu.TraceExecute
	TraceComplete   = cpu.TraceComplete
	TraceRetire     = cpu.TraceRetire
	TraceSquash     = cpu.TraceSquash
	TraceFenceStall = cpu.TraceFenceStall
	TraceSBIssue    = cpu.TraceSBIssue
	TraceSBComplete = cpu.TraceSBComplete
)

// NewTextTracer returns a tracer writing one line per pipeline event to w;
// events after limitCycles are dropped (0 = unlimited).
func NewTextTracer(w io.Writer, limitCycles int64) Tracer {
	return trace.NewTextTracer(w, limitCycles)
}

// AttachTracer installs a tracer on every core of a machine. Tracers
// observe per-cycle events, so a traced machine steps every cycle
// (Machine.Clock reports TracerPinned); use AttachObserver for
// fast-forward-compatible counting.
func AttachTracer(m *Machine, t Tracer) { trace.Attach(m, t) }

// NewCountingObserver returns a counter-only observer tallying pipeline
// events by kind.
func NewCountingObserver() *CountingObserver { return trace.NewCountingObserver() }

// AttachObserver installs a counter-only observer on every core of a
// machine. Observers never pin the two-speed clock and cannot change
// simulation results.
func AttachObserver(m *Machine, o StatsObserver) { trace.AttachObserver(m, o) }

// RunBenchmarkObserved is RunBenchmarkContext with a counter-only
// observer attached to every core (nil disables observation). Unlike
// RunBenchmarkTraced, the two-speed clock keeps fast-forwarding.
func RunBenchmarkObserved(ctx context.Context, name string, opts BenchmarkOptions, cfg Config, obs StatsObserver) (BenchmarkResult, error) {
	k, err := kernels.Build(name, opts)
	if err != nil {
		return BenchmarkResult{}, err
	}
	return kernels.RunObserved(ctx, k, cfg, obs)
}

// Configuration-derived tables and cost model (no simulation involved).
// The simulated experiments live behind Lab.Run and the experiment
// registry (see lab.go).
var (
	HardwareCost = exp.HardwareCost
	TableIII     = exp.TableIII
	TableIV      = exp.TableIV

	RenderFigure12     = exp.RenderFigure12
	RenderGroups       = exp.RenderGroups
	RenderAblation     = exp.RenderAblation
	RenderTableIII     = exp.RenderTableIII
	RenderTableIV      = exp.RenderTableIV
	RenderHardwareCost = exp.RenderHardwareCost
)

// Structured results pipeline (see internal/results): schema-versioned
// JSON artifacts, a content-addressed run cache, and the EXPERIMENTS.md
// generator used by cmd/sfence-report.
type (
	// RunCache memoizes simulations content-addressed by
	// (machine config, kernel name, kernel options).
	RunCache = results.RunCache
	// CacheStats counts run-cache hits and misses.
	CacheStats = results.CacheStats
	// Suite holds every structured result of the evaluation suite.
	Suite = results.Suite
	// SuiteOptions parameterize RunSuite.
	SuiteOptions = results.SuiteOptions
	// AblationSet is one ablation sweep's identity plus rows.
	AblationSet = results.AblationSet
	// AblationSpecEntry names one ablation sweep in the shared registry.
	AblationSpecEntry = results.AblationSpec
	// ResultArtifact is one named BENCH_*.json file.
	ResultArtifact = results.Artifact
	// BaselineChange is one artifact's drift against the committed
	// baseline (see Suite.DiffBaseline), with leaf-level value deltas
	// computed by the stats snapshot differ.
	BaselineChange = results.BaselineChange
	// ResultClaim is one machine-checkable paper claim.
	ResultClaim = results.Claim
	// SimPerfReport is the simulator-performance artifact payload:
	// naive per-cycle stepping vs. the event-driven clock.
	SimPerfReport = results.SimPerfReport
	// SimPerfRow is one workload's clock comparison.
	SimPerfRow = results.SimPerfRow
	// ExperimentRunner executes one benchmark configuration for a Lab
	// session (see WithRunner; RunCache.Run is the memoizing runner).
	ExperimentRunner = exp.Runner
	// ExperimentProgress receives per-experiment completion updates.
	ExperimentProgress = exp.ProgressFunc
)

// ResultsSchemaVersion is the JSON schema version of every envelope and
// cached run record.
const ResultsSchemaVersion = results.SchemaVersion

// NewRunCache returns a run cache persisting records under dir (created
// if missing); an empty dir yields a memory-only cache.
func NewRunCache(dir string) (*RunCache, error) { return results.NewRunCache(dir) }

// NewRunCacheLimited is NewRunCache with a byte budget on the disk tier:
// storing past maxDiskBytes evicts records least-recently-used first
// (0 = unbounded). Evicted records re-miss and re-simulate; the simulator
// is deterministic, so the replacement record is byte-identical.
func NewRunCacheLimited(dir string, maxDiskBytes int64) (*RunCache, error) {
	return results.NewRunCacheLimited(dir, maxDiskBytes)
}

// NewMemCache returns an in-process-only run cache.
func NewMemCache() *RunCache { return results.NewMemCache() }

// RunSuite executes the full evaluation suite. Most callers want
// NewLab(...).RunSuite(ctx) instead; this re-export exists for callers
// composing their own SuiteOptions.
func RunSuite(ctx context.Context, opts SuiteOptions) (*Suite, error) {
	return results.RunSuite(ctx, opts)
}

// PaperClaims returns the machine-checkable claim checklist that
// EXPERIMENTS.md scores the measured results against.
func PaperClaims() []ResultClaim { return results.Claims() }

// AblationSpecs returns the shared ablation registry, so every consumer
// (sfence-bench, sfence-report, RunSuite) emits identical artifact
// identities.
func AblationSpecs() []AblationSpecEntry { return results.AblationSpecs() }

// RunSimPerf measures the simulator itself: every tracked workload is run
// under naive per-cycle stepping and under the event-driven clock,
// asserted bit-identical, and timed (the BENCH_SIMPERF.json payload).
func RunSimPerf(ctx context.Context, sc Scale) (SimPerfReport, error) {
	return results.RunSimPerf(ctx, sc)
}

// JSON artifact encoders.
var (
	Figure12JSON     = results.Figure12JSON
	GroupsJSON       = results.GroupsJSON
	AblationsJSON    = results.AblationsJSON
	TableIIIJSON     = results.TableIIIJSON
	TableIVJSON      = results.TableIVJSON
	HardwareCostJSON = results.HardwareCostJSON
	SimPerfJSON      = results.SimPerfJSON
)

// Envelope kinds for the JSON artifact encoders.
const (
	KindFigure12     = results.KindFigure12
	KindFigure13     = results.KindFigure13
	KindFigure14     = results.KindFigure14
	KindFigure15     = results.KindFigure15
	KindFigure16     = results.KindFigure16
	KindFigureDepth  = results.KindFigureDepth
	KindAblations    = results.KindAblations
	KindTableIII     = results.KindTableIII
	KindTableIV      = results.KindTableIV
	KindHardwareCost = results.KindHardwareCost
)

// Generated-scenario differential checking (see DESIGN.md, "Differential
// fuzzing"). CheckGenerated is the library entry behind the
// FuzzConcDifferential fuzz target and `sfence-sim -gen <seed>`: it
// generates the N-thread scenario for seed in its three fence lowerings
// (traditional, class-scoped, set-scoped), executes each on the full
// machine at every requested hierarchy depth under both the naive and
// event-driven clocks, and differentially checks all of it against the
// sequentially-consistent reference oracle. A nil depths slice checks the
// default depths 2 and 3.
func CheckGenerated(seed int64, depths []int) (*GeneratedReport, error) {
	if len(depths) == 0 {
		depths = []int{2, 3}
	}
	return ref.CheckConcurrent(seed, depths)
}

// GeneratedReport summarizes one CheckGenerated pass: scenario shape plus
// one GeneratedRun per (variant, depth) machine execution.
type GeneratedReport = ref.ConcReport

// GeneratedRun is one (variant, depth) machine execution of a generated
// scenario.
type GeneratedRun = ref.ConcRun

// FenceVariant identifies one fence lowering of a generated scenario.
type FenceVariant = ref.Variant

// GeneratedScenario returns the disassembly of one fence variant
// ("traditional", "class", or "set") of the generated scenario for seed,
// plus its thread count.
func GeneratedScenario(seed int64, variant string) (string, int, error) {
	v, err := ref.ParseVariant(variant)
	if err != nil {
		return "", 0, err
	}
	cp := ref.GenConcurrent(seed)
	return cp.Variants[v].Disassemble(), cp.NumThreads, nil
}
