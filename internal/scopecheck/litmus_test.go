package scopecheck_test

import (
	"testing"

	"sfence/internal/litmus"
	"sfence/internal/scopecheck"
)

// TestLitmusFamiliesVerify is one third of the static gate: every litmus
// family's scope annotations verify clean — except ScopedSBLeaky, which
// is mis-scoped by design and MUST be flagged (it is the ground-truth
// positive: its relaxed outcome is dynamically observable).
func TestLitmusFamiliesVerify(t *testing.T) {
	for _, lt := range litmus.All() {
		sc := lt.Scenario()
		rep, err := scopecheck.Verify(&sc)
		if err != nil {
			t.Fatalf("%s: %v", lt.Name, err)
		}
		if litmus.MisScoped(lt.Name) {
			if !rep.HasErrors() {
				t.Errorf("%s: mis-scoped by design but verification found no error:\n%s", lt.Name, rep)
			}
			continue
		}
		if rep.HasErrors() {
			t.Errorf("%s: expected clean verification, got:\n%s", lt.Name, rep)
		}
	}
}

// TestScopedSBLeakyFindingShape pins the exact finding: the out-of-
// bracket store of each thread leaks into the class fence's domain.
func TestScopedSBLeakyFindingShape(t *testing.T) {
	sc := litmus.ScopedSBLeaky().Scenario()
	rep, err := scopecheck.Verify(&sc)
	if err != nil {
		t.Fatal(err)
	}
	errs := rep.Errors()
	if len(errs) != 2 { // one per thread
		t.Fatalf("want 2 under-scope errors (one per thread), got %d:\n%s", len(errs), rep)
	}
	for _, f := range errs {
		if f.Kind != "under-scope" {
			t.Errorf("finding kind = %q, want under-scope: %s", f.Kind, f)
		}
	}
}
