// Dekker example: build a two-thread mutual-exclusion kernel with
// set-scoped fences using the public Builder API, then compare traditional
// fences against S-Fence[set, {flag0, flag1, counter}] — the paper's
// Figure 11 scenario: a long-latency private store before the flag store
// that the scoped fence does not wait for.
//
//	go run ./examples/dekker
package main

import (
	"context"
	"fmt"
	"log"

	"sfence"
)

const (
	flag0   = 4096
	flag1   = 4096 + 64
	counter = 4096 + 128
	scratch = 1 << 16 // private region, one per thread
	rounds  = 30
)

// buildProgram assembles the mutual-exclusion loop. When scoped is true,
// the fences are set-scope fences and the flag/counter accesses are
// flagged; otherwise every fence is a traditional full fence.
func buildProgram(scoped bool) (*sfence.Program, error) {
	b := sfence.NewBuilder()
	fence := func() {
		if scoped {
			b.Fence(sfence.ScopeSet)
		} else {
			b.Fence(sfence.ScopeGlobal)
		}
	}
	shared := func() {
		if scoped {
			b.SetFlagged()
		}
	}
	// Registers: R1 my flag addr, R2 peer flag addr, R3 counter addr,
	// R4 private scratch addr, R5 loop counter, R6 scratch value.
	body := func(b *sfence.Builder) {
		b.MovI(sfence.R5, rounds)
		b.Label("loop")
		// Private long-latency store (out of the fence's set).
		b.AddI(sfence.R4, sfence.R4, 64)
		b.Store(sfence.R4, 0, sfence.R5)
		// Lock: flag[me]=1; FENCE; wait for peer to be out.
		b.MovI(sfence.R6, 1)
		shared()
		b.Store(sfence.R1, 0, sfence.R6)
		fence()
		b.Label("wait")
		shared()
		b.Load(sfence.R6, sfence.R2, 0)
		b.Bne(sfence.R6, sfence.R0, "backoff")
		// Acquire fence, then the critical section.
		fence()
		shared()
		b.Load(sfence.R6, sfence.R3, 0)
		b.AddI(sfence.R6, sfence.R6, 1)
		shared()
		b.Store(sfence.R3, 0, sfence.R6)
		fence() // release
		shared()
		b.Store(sfence.R1, 0, sfence.R0)
		b.AddI(sfence.R5, sfence.R5, -1)
		b.Bne(sfence.R5, sfence.R0, "loop")
		b.Halt()
		// Simple backoff: drop the flag, spin until the peer is out,
		// pause for a per-thread delay (R7; the threads get different
		// delays, which breaks symmetry and keeps the protocol live),
		// then retry.
		b.Label("backoff")
		shared()
		b.Store(sfence.R1, 0, sfence.R0)
		b.Label("peerwait")
		shared()
		b.Load(sfence.R6, sfence.R2, 0)
		b.Bne(sfence.R6, sfence.R0, "peerwait")
		b.Mov(sfence.R8, sfence.R7)
		b.Label("pause")
		b.AddI(sfence.R8, sfence.R8, -1)
		b.Bne(sfence.R8, sfence.R0, "pause")
		b.MovI(sfence.R6, 1)
		shared()
		b.Store(sfence.R1, 0, sfence.R6)
		fence()
		b.Jmp("wait")
	}
	b.Entry("t0")
	b.Inline(body)
	b.Entry("t1")
	b.Inline(body)
	return b.Build()
}

func run(scoped bool) (cycles int64, count int64, stalls uint64) {
	prog, err := buildProgram(scoped)
	if err != nil {
		log.Fatal(err)
	}
	cfg := sfence.DefaultConfig()
	cfg.Cores = 2
	m, err := sfence.NewMachine(cfg, prog, []sfence.Thread{
		{Entry: "t0", Regs: map[sfence.Reg]int64{sfence.R1: flag0, sfence.R2: flag1, sfence.R3: counter, sfence.R4: scratch, sfence.R7: 4}},
		{Entry: "t1", Regs: map[sfence.Reg]int64{sfence.R1: flag1, sfence.R2: flag0, sfence.R3: counter, sfence.R4: scratch + 1<<18, sfence.R7: 160}},
	})
	if err != nil {
		log.Fatal(err)
	}
	cycles, err = m.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	total := m.TotalStats()
	return cycles, m.Image().Load(counter), total.FenceStallCycles.Get()
}

func main() {
	tc, tcount, tstall := run(false)
	sc, scount, sstall := run(true)
	fmt.Printf("traditional fences: %6d cycles, counter=%d, fence-stall cycles=%d\n", tc, tcount, tstall)
	fmt.Printf("set-scoped fences:  %6d cycles, counter=%d, fence-stall cycles=%d\n", sc, scount, sstall)
	if tcount != 2*rounds || scount != 2*rounds {
		log.Fatalf("mutual exclusion violated: counters %d / %d, want %d", tcount, scount, 2*rounds)
	}
	fmt.Printf("speedup: %.2fx — both runs kept mutual exclusion intact\n", float64(tc)/float64(sc))
}
