package isa

import (
	"strings"
	"testing"
)

func TestValidateAcceptsBalancedProgram(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.MovI(R1, 3)
	b.Label("loop")
	b.FsStart(1)
	b.Store(R2, 0, R1)
	b.Fence(ScopeClass)
	b.FsStart(2)
	b.Load(R3, R2, 0)
	b.FsEnd(2)
	b.FsEnd(1)
	b.AddI(R1, R1, -1)
	b.Bne(R1, R0, "loop")
	b.Halt()
	if err := b.MustBuild().Validate(); err != nil {
		t.Errorf("balanced program rejected: %v", err)
	}
}

func TestValidateRejectsHaltInsideScope(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.FsStart(1)
	b.Halt()
	err := b.MustBuild().Validate()
	if err == nil || !strings.Contains(err.Error(), "halt inside") {
		t.Errorf("halt-inside-scope not rejected: %v", err)
	}
}

func TestValidateRejectsUnmatchedFsEnd(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.FsEnd(1)
	b.Halt()
	err := b.MustBuild().Validate()
	if err == nil || !strings.Contains(err.Error(), "no open scope") {
		t.Errorf("unmatched fs_end not rejected: %v", err)
	}
}

func TestValidateRejectsDepthMismatchAtJoin(t *testing.T) {
	// One path enters the join inside a scope, the other outside.
	b := NewBuilder()
	b.Entry("main")
	b.Beq(R1, R0, "skip")
	b.FsStart(1)
	b.Label("skip")
	b.Nop() // reachable at depth 0 and depth 1
	b.FsEnd(1)
	b.Halt()
	err := b.MustBuild().Validate()
	if err == nil || !strings.Contains(err.Error(), "depths") {
		t.Errorf("depth mismatch not rejected: %v", err)
	}
}

func TestValidateRejectsFallOffEndInScope(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.FsStart(1)
	b.Nop() // no halt: runs off the end inside the scope
	err := b.MustBuild().Validate()
	if err == nil || !strings.Contains(err.Error(), "off the end") {
		t.Errorf("fall-off-end not rejected: %v", err)
	}
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := &Program{Code: []Instruction{{Op: OpJmp, Imm: 99}}, Entries: map[string]int{"main": 0}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range jump accepted")
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := &Program{Code: []Instruction{{Op: OpAdd, Rd: 64}}, Entries: map[string]int{"main": 0}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func TestValidateAcceptsRunOffEndAtDepthZero(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.MovI(R1, 1)
	if err := b.MustBuild().Validate(); err != nil {
		t.Errorf("depth-0 fall-off-end rejected: %v", err)
	}
}
