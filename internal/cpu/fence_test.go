package cpu

import (
	"testing"

	"sfence/internal/isa"
	"sfence/internal/memsys"
)

// A store-store fence must not block instruction issue: a long-latency
// load placed after it should overlap with the pre-fence store's drain,
// unlike a full fence.
func TestStoreStoreFenceDoesNotBlockIssue(t *testing.T) {
	build := func(order isa.FenceOrder) *isa.Program {
		b := isa.NewBuilder()
		b.Entry("main")
		b.MovI(isa.R1, 1<<16) // cold store target
		b.MovI(isa.R2, 7)
		b.Store(isa.R1, 0, isa.R2)
		b.FenceOrdered(isa.ScopeGlobal, order)
		b.MovI(isa.R3, 1<<18) // cold load target
		b.Load(isa.R4, isa.R3, 0)
		b.Halt()
		return b.MustBuild()
	}
	_, fullCycles := runCore(t, DefaultConfig(), build(isa.OrderFull), "main", nil, nil)
	_, ssCycles := runCore(t, DefaultConfig(), build(isa.OrderSS), "main", nil, nil)
	if ssCycles >= fullCycles {
		t.Errorf("SS fence (%d cycles) not faster than full fence (%d)", ssCycles, fullCycles)
	}
	if fullCycles-ssCycles < 100 {
		t.Errorf("SS fence saved only %d cycles; expected miss-scale overlap", fullCycles-ssCycles)
	}
}

// A store-store fence must still hold back younger stores until prior
// stores drain: the younger store cannot enter the store buffer while the
// fence is unretired, which the retire-blocked stall statistic witnesses.
func TestStoreStoreFenceOrdersStores(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 1<<16)
	b.MovI(isa.R2, 7)
	b.Store(isa.R1, 0, isa.R2) // cold: drains slowly
	b.FenceOrdered(isa.ScopeGlobal, isa.OrderSS)
	b.MovI(isa.R3, 4096)
	b.Store(isa.R3, 0, isa.R2) // must wait for the fence to retire
	b.Halt()
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
	if core.Stats().FenceStallRetire == 0 {
		t.Error("SS fence never blocked retirement despite a draining prior store")
	}
	if core.Stats().FenceStallIssue != 0 {
		t.Error("SS fence blocked issue (it must not)")
	}
}

// A load-load fence must not wait for prior stores or the store buffer: a
// post-fence load overlaps with a draining pre-fence store.
func TestLoadLoadFenceIgnoresStores(t *testing.T) {
	build := func(order isa.FenceOrder) *isa.Program {
		b := isa.NewBuilder()
		b.Entry("main")
		b.MovI(isa.R1, 1<<16)
		b.MovI(isa.R2, 7)
		b.Store(isa.R1, 0, isa.R2) // cold store: slow drain
		b.FenceOrdered(isa.ScopeGlobal, order)
		b.MovI(isa.R3, 1<<18)
		b.Load(isa.R4, isa.R3, 0) // cold load
		b.Halt()
		return b.MustBuild()
	}
	_, fullCycles := runCore(t, DefaultConfig(), build(isa.OrderFull), "main", nil, nil)
	_, llCycles := runCore(t, DefaultConfig(), build(isa.OrderLL), "main", nil, nil)
	if llCycles >= fullCycles {
		t.Errorf("LL fence (%d cycles) not faster than full fence (%d)", llCycles, fullCycles)
	}
}

// A load-load fence must wait for prior loads: a post-fence load cannot
// start before a pre-fence cold load completes.
func TestLoadLoadFenceOrdersLoads(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 1<<16)
	b.Load(isa.R2, isa.R1, 0) // cold load (unused value)
	b.FenceOrdered(isa.ScopeGlobal, isa.OrderLL)
	b.MovI(isa.R3, 1<<18)
	b.Load(isa.R4, isa.R3, 0) // independent cold load
	b.Halt()
	core, cycles := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
	if core.Stats().FenceStallIssue == 0 {
		t.Error("LL fence never stalled issue despite an incomplete prior load")
	}
	// Two serialized ~312-cycle misses: the run must take >600 cycles.
	if cycles < 600 {
		t.Errorf("run took %d cycles; loads were not serialized by the LL fence", cycles)
	}
}

// Forced speculative-load replay: with in-window speculation, a load that
// executed past a pending fence and then observed a remote store to its
// address must be squashed and replayed, yielding the post-store value.
func TestSpeculativeLoadReplay(t *testing.T) {
	b := isa.NewBuilder()
	// writer: store X = 1 early (completes mid-drain of the reader's
	// pre-fence store).
	b.Entry("writer")
	b.MovI(isa.R1, 1<<18) // X
	b.MovI(isa.R2, 1)
	b.Store(isa.R1, 0, isa.R2)
	b.Halt()
	// reader: slow private store pins the fence; the load of X issues
	// speculatively past it.
	b.Entry("reader")
	b.MovI(isa.R1, 1<<16) // private cold line
	b.MovI(isa.R2, 9)
	b.Store(isa.R1, 0, isa.R2)
	b.Fence(isa.ScopeGlobal)
	b.MovI(isa.R3, 1<<18) // X
	b.Load(isa.R4, isa.R3, 0)
	b.MovI(isa.R5, 4096)
	b.Store(isa.R5, 0, isa.R4) // publish observation
	b.Halt()
	p := b.MustBuild()

	img := memsys.NewImage(1 << 20)
	hier := memsys.MustHierarchy(2, memsys.DefaultConfig())
	cfg := DefaultConfig()
	cfg.InWindowSpec = true
	writer, err := NewCore(0, cfg, p, p.MustEntry("writer"), nil, img, hier)
	if err != nil {
		t.Fatal(err)
	}
	reader, err := NewCore(1, cfg, p, p.MustEntry("reader"), nil, img, hier)
	if err != nil {
		t.Fatal(err)
	}
	writer.OnStoreComplete = func(_ int, addr int64) { reader.NoteRemoteStore(addr) }
	reader.OnStoreComplete = func(_ int, addr int64) { writer.NoteRemoteStore(addr) }
	for cycle := int64(0); !(writer.Done() && reader.Done()); cycle++ {
		if cycle > 1_000_000 {
			t.Fatal("did not finish")
		}
		writer.Tick(cycle)
		reader.Tick(cycle)
	}
	if got := img.Load(4096); got != 1 {
		t.Errorf("reader observed %d, want 1 (replay failed)", got)
	}
	if reader.Stats().SpecLoadFlush == 0 {
		t.Error("speculative load was never replayed (scenario did not trigger; timing drifted?)")
	}
}

// The same scenario without speculation: the fence blocks issue, so no
// replay machinery is needed and none must fire.
func TestNoReplayWithoutSpeculation(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 1<<16)
	b.MovI(isa.R2, 9)
	b.Store(isa.R1, 0, isa.R2)
	b.Fence(isa.ScopeGlobal)
	b.MovI(isa.R3, 1<<18)
	b.Load(isa.R4, isa.R3, 0)
	b.Halt()
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
	if core.Stats().SpecLoadFlush != 0 {
		t.Error("replay fired in non-speculative mode")
	}
}

// MSHR throttling: with one MSHR, independent cold stores drain serially;
// with eight they overlap.
func TestMSHRThrottlesStoreDrain(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder()
		b.Entry("main")
		b.MovI(isa.R1, 1<<16)
		b.MovI(isa.R2, 3)
		for i := int64(0); i < 4; i++ {
			b.Store(isa.R1, i*4096, isa.R2) // distinct lines and sets
		}
		b.Fence(isa.ScopeGlobal) // wait for the drain
		b.Halt()
		return b.MustBuild()
	}
	one := DefaultConfig()
	one.MSHRs = 1
	_, serial := runCore(t, one, build(), "main", nil, nil)
	eight := DefaultConfig()
	eight.MSHRs = 8
	_, parallel := runCore(t, eight, build(), "main", nil, nil)
	if parallel >= serial {
		t.Errorf("8 MSHRs (%d cycles) not faster than 1 (%d)", parallel, serial)
	}
	if serial-parallel < 600 {
		t.Errorf("MSHR gap only %d cycles for 4 misses; expected ~3 serialized misses", serial-parallel)
	}
}

// FIFO store buffer drains in order: per-address values still end correct,
// and the drain is slower than the non-FIFO buffer for independent misses.
func TestFIFOStoreBufferSlowerButCorrect(t *testing.T) {
	build := func() *isa.Program {
		b := isa.NewBuilder()
		b.Entry("main")
		b.MovI(isa.R1, 1<<16)
		for i := int64(0); i < 4; i++ {
			b.MovI(isa.R2, 10+i)
			b.Store(isa.R1, i*4096, isa.R2)
		}
		b.Fence(isa.ScopeGlobal)
		b.Halt()
		return b.MustBuild()
	}
	fifoCfg := DefaultConfig()
	fifoCfg.FIFOStoreBuffer = true
	imgF := memsys.NewImage(1 << 20)
	_, fifoCycles := runCore(t, fifoCfg, build(), "main", nil, imgF)
	imgN := memsys.NewImage(1 << 20)
	_, rmoCycles := runCore(t, DefaultConfig(), build(), "main", nil, imgN)
	for i := int64(0); i < 4; i++ {
		if imgF.Load(1<<16+i*4096) != 10+i || imgN.Load(1<<16+i*4096) != 10+i {
			t.Fatalf("store %d lost", i)
		}
	}
	if fifoCycles <= rmoCycles {
		t.Errorf("FIFO (%d) not slower than non-FIFO (%d) for independent misses", fifoCycles, rmoCycles)
	}
}

// ROB occupancy statistics must be sane: max bounded by the configuration,
// average positive for a non-trivial run.
func TestROBOccupancyStats(t *testing.T) {
	p := buildFenceProgram(isa.ScopeClass, false)
	core, _ := runCore(t, DefaultConfig(), p, "main", nil, nil)
	s := core.Stats()
	if s.MaxROBOccupancy <= 0 || s.MaxROBOccupancy.Get() > int64(DefaultConfig().ROBSize) {
		t.Errorf("max occupancy %d out of range", s.MaxROBOccupancy)
	}
	if s.AvgROBOccupancy() <= 0 || s.AvgROBOccupancy() > float64(DefaultConfig().ROBSize) {
		t.Errorf("avg occupancy %f out of range", s.AvgROBOccupancy())
	}
}
