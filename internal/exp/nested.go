package exp

import (
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/machine"
)

// nestedScopeProgram builds the scope-pressure microbenchmark: two nested
// class scopes per iteration, where the outer scope performs a cold
// (long-latency) store and the inner scope performs a warm store followed
// by a class fence. With enough FSB entries the inner fence only waits for
// the warm store; when class scopes must share one FSB entry (FSBEntries
// == 2) the inner fence inherits the outer scope's cold store, and when
// the FSS is too shallow (FSSEntries == 1) the inner fs_start overflows
// and every fence degrades to a full fence.
func nestedScopeProgram(iters int) *isa.Program {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 1<<16) // cold region base (outer scope)
	b.MovI(isa.R2, 4096)  // warm word (inner scope)
	b.MovI(isa.R3, 1)
	b.MovI(isa.R4, int64(iters))
	// Warm the inner word.
	b.Store(isa.R2, 0, isa.R3)
	b.Fence(isa.ScopeGlobal)
	b.Label("loop")
	b.FsStart(1)
	b.AddI(isa.R1, isa.R1, 64) // fresh line each iteration
	b.Store(isa.R1, 0, isa.R4) // outer-scope cold store
	b.FsStart(2)
	b.Store(isa.R2, 0, isa.R4) // inner-scope warm store
	b.Fence(isa.ScopeClass)    // should wait only for the warm store
	b.Load(isa.R5, isa.R2, 0)
	b.FsEnd(2)
	b.FsEnd(1)
	b.AddI(isa.R4, isa.R4, -1)
	b.Bne(isa.R4, isa.R0, "loop")
	b.Halt()
	return b.MustBuild()
}

// AblationNestedScopes sweeps the scope-hardware sizes on the
// nested-scope microbenchmark, exposing the FSB entry-sharing and FSS
// overflow fallbacks that the Table IV benchmarks (nesting depth 1) never
// trigger.
func AblationNestedScopes(sc Scale) ([]AblationRow, error) {
	iters := 60
	if sc == Quick {
		iters = 25
	}
	prog := nestedScopeProgram(iters)
	run := func(fsb, fss int) (AblationRow, error) {
		cfg := baseConfig()
		cfg.Cores = 1
		cfg.Core.FSBEntries = fsb
		cfg.Core.FSSEntries = fss
		m, err := machine.New(cfg, prog, []machine.Thread{{Entry: "main"}})
		if err != nil {
			return AblationRow{}, err
		}
		cycles, err := m.Run()
		if err != nil {
			return AblationRow{}, err
		}
		tot := m.TotalStats()
		stall := 0.0
		if tot.Cycles > 0 {
			stall = float64(tot.FenceIdleCycles) / float64(tot.Cycles)
		}
		return AblationRow{
			Bench:  fmt.Sprintf("nested/fsb%d", fsb),
			Param:  "FSSEntries",
			Value:  fss,
			Cycles: cycles,
			Stall:  stall,
		}, nil
	}
	var out []AblationRow
	for _, fsb := range []int{2, 3, 4} {
		for _, fss := range []int{1, 2, 4} {
			row, err := run(fsb, fss)
			if err != nil {
				return nil, err
			}
			out = append(out, row)
		}
	}
	return out, nil
}
