package exp

import (
	"runtime"
	"sync"
)

// Parallelism bounds concurrent simulation runs inside one experiment.
// Each run is an independent deterministic machine, so parallel execution
// cannot change any result — only wall-clock time.
var Parallelism = runtime.GOMAXPROCS(0)

// runParallel executes the jobs on at most Parallelism workers and returns
// the first error (all jobs are always waited for).
func runParallel(jobs []func() error) error {
	limit := Parallelism
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, job := range jobs {
		wg.Add(1)
		go func(job func() error) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := job(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(job)
	}
	wg.Wait()
	return firstErr
}
