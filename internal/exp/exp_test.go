package exp

import (
	"context"
	"strings"
	"testing"

	"sfence/internal/cpu"
	"sfence/internal/machine"
)

// testSession returns a fresh direct (uncached) session.
func testSession() *Session { return NewSession(nil, nil, 0) }

func TestFigure12ShapeHolds(t *testing.T) {
	series, err := testSession().Figure12(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4", len(series))
	}
	for _, s := range series {
		peak, _ := s.Peak()
		if peak < 1.02 {
			t.Errorf("%s: peak speedup %.3f shows no S-Fence benefit", s.Bench, peak)
		}
		if peak > 2.5 {
			t.Errorf("%s: peak speedup %.3f implausibly large", s.Bench, peak)
		}
		for i, v := range s.Speedup {
			if v < 0.95 {
				t.Errorf("%s: workload %d speedup %.3f well below 1 (S-Fence should never lose)", s.Bench, s.Workload[i], v)
			}
		}
	}
	out := RenderFigure12(series)
	if !strings.Contains(out, "dekker") || !strings.Contains(out, "peak") {
		t.Error("render missing content")
	}
}

func TestFigure13ShapeHolds(t *testing.T) {
	groups, err := testSession().Figure13(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(groups))
	}
	for _, g := range groups {
		if len(g.Bars) != 4 {
			t.Fatalf("%s: got %d bars, want 4 (T,S,T+,S+)", g.Bench, len(g.Bars))
		}
		T, S, Tp, Sp := g.Bars[0], g.Bars[1], g.Bars[2], g.Bars[3]
		if T.Total() != 1.0 {
			t.Errorf("%s: T bar not normalized to 1.0: %v", g.Bench, T.Total())
		}
		noise := 0.05
		if g.Bench == "ptc" {
			noise = 0.10 // dynamic schedule
		}
		if S.Total() > T.Total()+noise {
			t.Errorf("%s: S (%0.3f) slower than T", g.Bench, S.Total())
		}
		if Sp.Total() > Tp.Total()+noise {
			t.Errorf("%s: S+ (%0.3f) slower than T+ (%0.3f)", g.Bench, Sp.Total(), Tp.Total())
		}
		// In-window speculation reduces fence stalls vs non-speculative.
		if Tp.FenceStall > T.FenceStall+0.02 {
			t.Errorf("%s: T+ fence stalls (%0.3f) exceed T (%0.3f)", g.Bench, Tp.FenceStall, T.FenceStall)
		}
	}
	// The paper's headline: barnes and radiosity lose a large share of
	// their fence stalls under S.
	for _, g := range groups {
		if g.Bench == "barnes" || g.Bench == "radiosity" {
			T, S := g.Bars[0], g.Bars[1]
			if S.FenceStall > 0.6*T.FenceStall {
				t.Errorf("%s: S-Fence removed too few stalls (T=%.3f S=%.3f)", g.Bench, T.FenceStall, S.FenceStall)
			}
		}
	}
}

func TestFigure14SetSlightlyBetter(t *testing.T) {
	groups, err := testSession().Figure14(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		cs, ss := g.Bars[0], g.Bars[1]
		if cs.Total() != 1.0 {
			t.Errorf("%s: class-scope bar not normalized", g.Bench)
		}
		// The paper: set scope slightly better, difference not
		// significant. Allow generous noise either way.
		if ss.Total() > cs.Total()*1.10 {
			t.Errorf("%s: set scope (%0.3f) much slower than class scope", g.Bench, ss.Total())
		}
	}
}

func TestFigure15LatencyTrend(t *testing.T) {
	groups, err := testSession().Figure15(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		byLabel := map[string]Bar{}
		for _, b := range g.Bars {
			byLabel[b.Label] = b
		}
		// Higher latency => slower (both modes).
		if byLabel["500T"].Total() <= byLabel["200T"].Total() {
			t.Errorf("%s: 500-cycle run not slower than 200-cycle run", g.Bench)
		}
		// For the set-scope apps, S beats T at every latency.
		if g.Bench == "barnes" || g.Bench == "radiosity" {
			for _, lat := range []string{"200", "300", "500"} {
				if byLabel[lat+"S"].Total() >= byLabel[lat+"T"].Total() {
					t.Errorf("%s: S not faster at %s-cycle latency", g.Bench, lat)
				}
			}
		}
	}
}

func TestFigure16ROBTrend(t *testing.T) {
	groups, err := testSession().Figure16(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range groups {
		if len(g.Bars) != 6 {
			t.Fatalf("%s: got %d bars, want 6", g.Bench, len(g.Bars))
		}
		byLabel := map[string]Bar{}
		for _, b := range g.Bars {
			byLabel[b.Label] = b
		}
		// A larger ROB must never hurt (allowing small noise).
		if byLabel["256S"].Total() > byLabel["64S"].Total()*1.08 {
			t.Errorf("%s: 256-entry ROB slower than 64-entry (%.3f vs %.3f)",
				g.Bench, byLabel["256S"].Total(), byLabel["64S"].Total())
		}
	}
}

func TestHardwareCostMatchesPaperClaim(t *testing.T) {
	rep := HardwareCost(cpu.DefaultConfig())
	if !rep.PaperClaimOK {
		t.Errorf("default configuration costs %.1f bytes, paper claims <80", rep.TotalBytes)
	}
	// 128-entry ROB x 4 bits = 512 bits; 8-entry SB x 4 = 32 bits.
	if rep.ROBFSBBits != 512 || rep.SBFSBBits != 32 {
		t.Errorf("FSB bits: ROB=%d SB=%d", rep.ROBFSBBits, rep.SBFSBBits)
	}
	out := RenderHardwareCost(rep)
	if !strings.Contains(out, "bytes") {
		t.Error("render missing content")
	}
}

func TestTableIIIMatchesPaper(t *testing.T) {
	rows := TableIII(machine.DefaultConfig())
	joined := ""
	for _, r := range rows {
		joined += r.Parameter + "=" + r.Value + ";"
	}
	for _, want := range []string{"8 core CMP", "128", "32 KB, 4 way, 2-cycle", "1 MB, 8 way, 10-cycle", "300-cycle"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Table III missing %q in %q", want, joined)
		}
	}
	if !strings.Contains(RenderTableIII(machine.DefaultConfig()), "Table III") {
		t.Error("render missing title")
	}
}

func TestTableIVComplete(t *testing.T) {
	out := RenderTableIV()
	for _, b := range []string{"dekker", "wsq", "msn", "harris", "barnes", "radiosity", "pst", "ptc"} {
		if !strings.Contains(out, b) {
			t.Errorf("Table IV missing %s", b)
		}
	}
}

// The Section VII combination of scoping with finer fences: a store-store
// put fence must strictly reduce wsq's fence stalls on top of scoping.
func TestFinerFencesReduceWSQStalls(t *testing.T) {
	rows, err := testSession().AblationFinerFences(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		byKey[r.Bench+"/"+intLabel(r.Value)] = r
	}
	full := byKey["wsq/scoped/0"]
	ss := byKey["wsq/scoped/1"]
	if ss.Cycles >= full.Cycles {
		t.Errorf("SS put fence did not speed up scoped wsq: %d vs %d", ss.Cycles, full.Cycles)
	}
	if ss.Stall >= full.Stall {
		t.Errorf("SS put fence did not reduce stalls: %.3f vs %.3f", ss.Stall, full.Stall)
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	for name, fn := range map[string]func(*Session, context.Context, Scale) ([]AblationRow, error){
		"fsb":      (*Session).AblationFSBEntries,
		"fss":      (*Session).AblationFSSDepth,
		"sb":       (*Session).AblationStoreBuffer,
		"fifo":     (*Session).AblationFIFOStoreBuffer,
		"finer":    (*Session).AblationFinerFences,
		"recovery": (*Session).AblationRecovery,
	} {
		rows, err := fn(testSession(), context.Background(), Quick)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) == 0 {
			t.Errorf("%s: no rows", name)
		}
		if out := RenderAblation(name, rows); !strings.Contains(out, "cycles") {
			t.Errorf("%s: render missing header", name)
		}
	}
}
