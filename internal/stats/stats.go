// Package stats is the simulator's typed, hierarchical statistics
// registry — the single observability substrate every component (cores,
// the fence-scoping hardware, the store buffer, the cache hierarchy, the
// machine clock) registers its counters into at construction time.
//
// Design (in the tradition of gem5-style stat registries):
//
//   - A stat is storage owned by the component (a Counter or Gauge struct
//     field on its hot path — incrementing stays a plain memory op), plus
//     a registration: a stable dotted name ("core0.fence.stall_cycles"),
//     a one-line description, and a kind.
//   - Registration happens once, at construction, through a Group — a
//     registry view with a name prefix — so a component names its stats
//     relative to itself and the parent decides where it sits in the
//     hierarchy ("core3" + "sb.full_cycles").
//   - Derived stats (sums across cores) and Formulas (ratios, averages)
//     are registered as closures and evaluated only when a Snapshot is
//     taken, so they cost nothing during simulation.
//   - Snapshot() returns every stat, deterministically ordered by name
//     and schema-versioned — the unit the results pipeline caches, diffs,
//     and renders.
//
// The package also defines Observer, the counter-only observability sink
// that — unlike a per-cycle Tracer — is compatible with the machine's
// two-speed clock: sources deliver events as (event, count) increments,
// and fast-forward credits skipped stall cycles in bulk.
package stats

import (
	"fmt"
	"sort"
)

// Stat kinds, as rendered in snapshots.
const (
	KindCounter = "counter" // monotonically increasing uint64
	KindGauge   = "gauge"   // signed level/peak value (may move both ways)
	KindDerived = "derived" // uint64 computed at snapshot time (e.g. cross-core sums)
	KindFormula = "formula" // float64 computed at snapshot time (ratios, averages)
)

// Counter is a monotonically increasing statistic. It is a bare uint64
// underneath so hot paths may use ++ and += directly; the methods exist
// for call sites that prefer names.
type Counter uint64

// Inc adds one.
func (c *Counter) Inc() { *c++ }

// Add adds d.
func (c *Counter) Add(d uint64) { *c += Counter(d) }

// Get returns the current value.
func (c *Counter) Get() uint64 { return uint64(*c) }

// Gauge is a signed level or peak statistic (e.g. a maximum occupancy):
// unlike a Counter it may move in both directions.
type Gauge int64

// Set stores v.
func (g *Gauge) Set(v int64) { *g = Gauge(v) }

// Get returns the current value.
func (g *Gauge) Get() int64 { return int64(*g) }

// entry is one registered stat.
type entry struct {
	name string
	desc string
	kind string

	counter *Counter
	gauge   *Gauge
	derived func() uint64
	formula func() float64
}

// Registry holds the registered stats of one machine instance. It is not
// safe for concurrent mutation; a machine registers everything at
// construction and snapshots are taken between runs, matching the
// simulator's single-threaded-per-machine execution model.
type Registry struct {
	entries []entry
	names   map[string]struct{}
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{})}
}

// Root returns the unprefixed registration group.
func (r *Registry) Root() *Group { return &Group{r: r} }

// Len returns the number of registered stats.
func (r *Registry) Len() int { return len(r.entries) }

// add validates and records a registration. Registration mistakes are
// programming errors caught at machine construction, so they panic.
func (r *Registry) add(e entry) {
	if !validName(e.name) {
		panic(fmt.Sprintf("stats: invalid stat name %q (want dotted lowercase segments, e.g. core0.sb.full_cycles)", e.name))
	}
	if _, dup := r.names[e.name]; dup {
		panic(fmt.Sprintf("stats: duplicate stat name %q", e.name))
	}
	r.names[e.name] = struct{}{}
	r.entries = append(r.entries, e)
}

// validName accepts dotted names of non-empty [a-z0-9_] segments.
func validName(name string) bool {
	if name == "" {
		return false
	}
	segStart := true
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c == '.':
			if segStart {
				return false // empty segment
			}
			segStart = true
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			segStart = false
		default:
			return false
		}
	}
	return !segStart
}

// Group is a registry view with a name prefix. Components receive a Group
// and register their stats relative to it; Sub nests further.
type Group struct {
	r      *Registry
	prefix string // empty, or "core0." — always dot-terminated when non-empty
}

// Sub returns a child group named name under this group.
func (g *Group) Sub(name string) *Group {
	return &Group{r: g.r, prefix: g.prefix + name + "."}
}

// Counter registers c under the group as name.
func (g *Group) Counter(c *Counter, name, desc string) {
	g.r.add(entry{name: g.prefix + name, desc: desc, kind: KindCounter, counter: c})
}

// Gauge registers v under the group as name.
func (g *Group) Gauge(v *Gauge, name, desc string) {
	g.r.add(entry{name: g.prefix + name, desc: desc, kind: KindGauge, gauge: v})
}

// Derived registers a uint64 computed at snapshot time (cross-component
// sums, clock readings).
func (g *Group) Derived(name, desc string, f func() uint64) {
	g.r.add(entry{name: g.prefix + name, desc: desc, kind: KindDerived, derived: f})
}

// Formula registers a float64 computed at snapshot time (ratios,
// averages).
func (g *Group) Formula(name, desc string, f func() float64) {
	g.r.add(entry{name: g.prefix + name, desc: desc, kind: KindFormula, formula: f})
}

// SnapshotSchema versions the snapshot JSON layout; readers of persisted
// snapshots must reject other versions.
const SnapshotSchema = 1

// Sample is one stat's value at snapshot time. Counter, gauge, and
// derived stats carry Value (gauges additionally sign it via kind);
// formulas carry Float.
type Sample struct {
	Name  string  `json:"name"`
	Kind  string  `json:"kind"`
	Value int64   `json:"value"`
	Float float64 `json:"float,omitempty"`
	Desc  string  `json:"desc,omitempty"`
}

// Snapshot is every registered stat's value, deterministically ordered by
// name. Snapshots are plain data: they serialize into run records and
// artifacts, and two runs of a deterministic simulation produce equal
// snapshots (asserted by the differential clock tests).
type Snapshot struct {
	Schema  int      `json:"schema"`
	Samples []Sample `json:"samples"`
}

// Snapshot evaluates every registered stat and returns the samples sorted
// by name.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Schema: SnapshotSchema, Samples: make([]Sample, 0, len(r.entries))}
	for _, e := range r.entries {
		smp := Sample{Name: e.name, Kind: e.kind, Desc: e.desc}
		switch e.kind {
		case KindCounter:
			smp.Value = int64(*e.counter)
		case KindGauge:
			smp.Value = int64(*e.gauge)
		case KindDerived:
			smp.Value = int64(e.derived())
		case KindFormula:
			smp.Float = e.formula()
		}
		s.Samples = append(s.Samples, smp)
	}
	sort.Slice(s.Samples, func(i, j int) bool { return s.Samples[i].Name < s.Samples[j].Name })
	return s
}

// Lookup returns the sample with the given name.
func (s Snapshot) Lookup(name string) (Sample, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Name >= name })
	if i < len(s.Samples) && s.Samples[i].Name == name {
		return s.Samples[i], true
	}
	return Sample{}, false
}

// Value returns the integer value of the named stat (0 when absent).
func (s Snapshot) Value(name string) int64 {
	smp, _ := s.Lookup(name)
	return smp.Value
}

// UValue returns the named stat as a uint64 (counters and derived sums;
// 0 when absent).
func (s Snapshot) UValue(name string) uint64 { return uint64(s.Value(name)) }

// Float returns the float value of the named formula stat (0 when
// absent).
func (s Snapshot) Float(name string) float64 {
	smp, _ := s.Lookup(name)
	return smp.Float
}

// Delta is one stat's change between a baseline snapshot and a fresh
// one. Exactly one of the three cases holds: the stat is new (no Old),
// removed (no New), or changed (both present, values differ).
type Delta struct {
	Name string
	// Change is "added", "removed", or "changed".
	Change   string
	Old, New Sample
}

func (d Delta) String() string {
	val := func(s Sample) string {
		if s.Kind == KindFormula {
			return fmt.Sprintf("%g", s.Float)
		}
		return fmt.Sprintf("%d", s.Value)
	}
	switch d.Change {
	case "added":
		return fmt.Sprintf("%s added (%s)", d.Name, val(d.New))
	case "removed":
		return fmt.Sprintf("%s removed (was %s)", d.Name, val(d.Old))
	default:
		return fmt.Sprintf("%s %s -> %s", d.Name, val(d.Old), val(d.New))
	}
}

// Diff compares s against the baseline and returns every stat that was
// added, removed, or changed, in name order. An empty result is
// equivalent to base.Equal(s) up to schema: Diff looks only at the
// samples. It is the engine behind "what changed vs. the committed
// baseline" reporting — both for registry snapshots and for artifact
// envelopes flattened into synthetic snapshots.
func (s Snapshot) Diff(base Snapshot) []Delta {
	var out []Delta
	i, j := 0, 0
	for i < len(base.Samples) || j < len(s.Samples) {
		switch {
		case j >= len(s.Samples) || (i < len(base.Samples) && base.Samples[i].Name < s.Samples[j].Name):
			out = append(out, Delta{Name: base.Samples[i].Name, Change: "removed", Old: base.Samples[i]})
			i++
		case i >= len(base.Samples) || s.Samples[j].Name < base.Samples[i].Name:
			out = append(out, Delta{Name: s.Samples[j].Name, Change: "added", New: s.Samples[j]})
			j++
		default:
			if base.Samples[i] != s.Samples[j] {
				out = append(out, Delta{Name: s.Samples[j].Name, Change: "changed", Old: base.Samples[i], New: s.Samples[j]})
			}
			i++
			j++
		}
	}
	return out
}

// Equal reports whether two snapshots carry identical samples. Used by
// the differential clock tests: fast-forward must be bit-exact for every
// registered stat, not just the headline counters.
func (s Snapshot) Equal(o Snapshot) bool {
	if s.Schema != o.Schema || len(s.Samples) != len(o.Samples) {
		return false
	}
	for i := range s.Samples {
		if s.Samples[i] != o.Samples[i] {
			return false
		}
	}
	return true
}

// Observer is a counter-only observability sink: a source delivers
// pipeline events as (source id, event id, count) increments. Unlike a
// per-cycle Tracer — which receives the cycle number, sequence number,
// and instruction of every event and therefore pins the machine's
// per-cycle slow path — an Observer only ever learns how often an event
// happened, so the two-speed clock may credit it in bulk: fast-forwarding
// delta quiescent cycles delivers one Observe call with n = delta per
// once-per-cycle event instead of delta calls. Attaching an Observer must
// never change a simulation's results, and the machine keeps
// fast-forwarding with observers attached (asserted by the clock
// equivalence tests).
//
// Implementations must be cheap — sources call them inline from the
// cycle loop — and need only be safe for concurrent use when shared
// across machines running in parallel.
type Observer interface {
	Observe(source int, event uint8, n uint64)
}
