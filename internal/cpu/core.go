package cpu

import (
	"fmt"
	"math/bits"

	"sfence/internal/isa"
	"sfence/internal/memsys"
	"sfence/internal/stats"
)

// Pipeline stages of a ROB entry.
const (
	stWaiting   uint8 = iota // operands or ordering constraints outstanding
	stExecuting              // execution begun; completes at readyAt
	stDone                   // result available / ready to retire
)

// robEntry is one reorder-buffer slot.
type robEntry struct {
	inst isa.Instruction
	pc   int

	stage   uint8
	readyAt int64

	val  int64 // result (ALU/load/CAS success flag)
	addr int64 // normalized effective address (memory ops)
	sval int64 // store data / CAS new value

	casOld int64 // CAS expected value, latched at execution start

	addrOK   bool
	resolved bool // branches: outcome computed
	faulted  bool // architectural fault if this entry commits

	predTaken bool

	// fence scope state
	fsb        uint8 // fence scope bits (the paper's FSB)
	fenceEntry uint8 // captured scope entry for a speculative fence
	fenceFull  bool  // speculative fence demoted to full-fence behaviour

	specPastFence bool // load executed past an unretired fence (spec mode)
	accessedMem   bool // load/CAS reached the cache hierarchy

	// operand producer seqs (-1: read the committed register file)
	src1, src2, src3 int64

	snap fssSnapshot // FSS checkpoint taken before this entry decoded
}

// sbEntry is one store-buffer slot. Entries are kept in program order;
// completion may happen out of order (non-FIFO drain under RMO).
type sbEntry struct {
	addr     int64
	val      int64
	fsb      uint8
	inflight bool
	readyAt  int64
}

// Core simulates one out-of-order core executing a thread of the program.
// All state transitions are driven by Tick and are fully deterministic.
type Core struct {
	id   int
	cfg  Config
	prog *isa.Program
	img  *memsys.Image
	hier *memsys.Hierarchy

	regs   [isa.NumRegs]int64
	regTag [isa.NumRegs]int64 // seq of newest in-flight writer, -1 if none

	entries []robEntry
	robMask uint64
	head    uint64 // seq of oldest in-flight instruction
	tail    uint64 // seq of next instruction to decode

	sb         []sbEntry
	sbInflight int

	scope *scopeHW
	pred  *predictor

	fetchPC       int
	redirectUntil int64

	haltInROB          int
	haltDone           bool
	unresolvedBranches int
	fenceSeqs          []uint64 // in-flight fences (in-window speculation)

	robIncompleteMem int // loads/CAS in ROB not yet completed
	robStoreCount    int // stores still in ROB
	specLoads        int // in-flight loads with specPastFence set
	casWaiting       int // CAS entries still waiting to execute

	// donePrefix is the completion cursor: every entry in [head,
	// donePrefix) is stDone and only awaits retirement, so completeROB and
	// schedule scans start here instead of at head (see scanStart).
	donePrefix uint64

	// nextComplete and nextSBDrain are conservative lower bounds (never
	// later than the truth, possibly stale-early after a squash) on the
	// next ROB completion and store-buffer drain. They gate the completeROB
	// and completeSB scans — skipped entirely on cycles with nothing due —
	// and give NextWakeup its O(1) event bound. Execution starts and store
	// issues lower them; the scans recompute them exactly when they run.
	nextComplete int64
	nextSBDrain  int64

	// schedDirty records whether anything since the last schedule scan
	// could have structurally unblocked a waiting entry (a store or CAS
	// completion, a store-buffer drain, a decode, a squash, or the head
	// reaching a waiting CAS). A schedule pass reaches a fixed point over
	// its own mutations — entries only wait on older producers, and the
	// scan is ascending — so while schedDirty is false a full scan would
	// start nothing. Plain operand readiness does not raise the flag:
	// completions wake their registered consumers individually (wakeHead/
	// wakeNext/readyBits below) and schedule runs a partial scan over the
	// marked slots only.
	schedDirty bool

	// Producer->consumer wakeup lists: wakeHead[p] heads an intrusive
	// singly-linked list of registration nodes for the producer in slot p;
	// node id s*3+k is consumer slot s's registration for operand k, with
	// wakeNext[id] the chain pointer. A node is registered at decode for
	// each not-yet-done producer operand, and removed exactly once — when
	// the producer completes (fireWakes) or on squash (lists are wiped and
	// surviving waiting entries re-registered) — so no node can sit in two
	// lists. readyBits marks woken consumer slots for the partial scan.
	wakeHead    []int32
	wakeNext    []int32
	readyBits   []uint64
	wakePending bool

	// completion min-heap, ordered by (readyAt, seq): every execution
	// start pushes a node, completeROB pops the due ones. Lexicographic
	// order makes pop order identical to the ascending-seq scan it
	// replaces, because an entry completes exactly at its readyAt cycle.
	// Squash rebuilds the heap from the surviving window.
	compHeap  []compNode
	compBatch []compNode // scratch: this cycle's due completions

	// progressed records whether the current/last Tick mutated core state
	// (as opposed to pure stall accounting); accrual captures which
	// once-per-cycle stall counters it bumped. Together they drive the
	// event-driven clock (see clock.go).
	progressed bool
	accrual    stallAccrual

	// issueSB scan scratch: the per-address occupancy of store-buffer
	// entries already passed in the current scan, so the older-same-address
	// check is O(1) per entry instead of a rescan of the buffer prefix.
	sbSeen    map[int64]struct{}
	sbTouched []int64

	snoopPending []int64

	// OnStoreComplete, if set, is invoked when a store drains from the
	// store buffer and its value becomes globally visible. The machine
	// uses it to deliver snoop notifications to other cores.
	OnStoreComplete func(core int, addr int64)

	tracer   Tracer
	observer stats.Observer
	profile  fenceProfile

	stats Stats
	fault error
	cycle int64

	spin spinState

	// Parallel-epoch gate (see epoch.go): while localOnly is set every
	// hierarchy access must be a private-L1 hit; the first that is not
	// latches epochBlocked instead of executing, and undoLog records the
	// Image words overwritten in-epoch so an abort can restore them.
	localOnly    bool
	epochBlocked bool
	undoLog      []imgUndo

	fenceStallSeen bool // one fence-stall count per cycle
	robFullSeen    bool
	sbFullSeen     bool
}

// NewCore builds a core executing prog from startPC with the given initial
// register values.
func NewCore(id int, cfg Config, prog *isa.Program, startPC int, initRegs map[isa.Reg]int64, img *memsys.Image, hier *memsys.Hierarchy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if startPC < 0 || startPC > len(prog.Code) {
		return nil, fmt.Errorf("cpu: start pc %d out of range", startPC)
	}
	c := &Core{
		id:      id,
		cfg:     cfg,
		prog:    prog,
		img:     img,
		hier:    hier,
		entries: make([]robEntry, cfg.ROBSize),
		robMask: uint64(cfg.ROBSize - 1),
		sb:      make([]sbEntry, 0, cfg.SBSize),
		sbSeen:  make(map[int64]struct{}, cfg.SBSize),
		pred:    newPredictor(cfg.PredictorBits),
		fetchPC: startPC,

		nextComplete: NeverWakes,
		nextSBDrain:  NeverWakes,
		schedDirty:   true,

		wakeHead:  make([]int32, cfg.ROBSize),
		wakeNext:  make([]int32, 3*cfg.ROBSize),
		readyBits: make([]uint64, (cfg.ROBSize+63)/64),
		compHeap:  make([]compNode, 0, cfg.ROBSize),
	}
	for i := range c.wakeHead {
		c.wakeHead[i] = -1
	}
	c.scope = newScopeHW(&c.cfg, &c.stats)
	for i := range c.regTag {
		c.regTag[i] = -1
	}
	for r, v := range initRegs {
		if r == isa.R0 {
			continue
		}
		c.regs[r] = v
	}
	return c, nil
}

// slot returns the ROB entry for seq.
func (c *Core) slot(seq uint64) *robEntry { return &c.entries[seq&c.robMask] }

// Done reports whether the core has committed a halt and fully drained.
func (c *Core) Done() bool {
	return c.haltDone && c.head == c.tail && len(c.sb) == 0
}

// Fault returns the architectural fault that stopped the core, if any.
func (c *Core) Fault() error { return c.fault }

// Stats returns the core's statistics.
func (c *Core) Stats() *Stats { return &c.stats }

// RegisterStats publishes every core statistic into g (typically the
// machine registry's "coreN" group) under stable dotted names like
// "fence.stall_cycles" and "rob.occupancy_avg". Cores built outside a
// machine (unit tests) may simply never register.
func (c *Core) RegisterStats(g *stats.Group) { c.stats.register(g) }

// Reg returns the committed value of a register.
func (c *Core) Reg(r isa.Reg) int64 { return c.regs[r] }

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// NoteRemoteStore records that another core made a store to addr globally
// visible; used to replay loads that speculatively executed past a fence.
func (c *Core) NoteRemoteStore(addr int64) {
	if !c.cfg.InWindowSpec || c.Done() {
		return
	}
	c.snoopPending = append(c.snoopPending, addr)
}

// Tick advances the core by one cycle.
func (c *Core) Tick(cycle int64) {
	if c.Done() || c.fault != nil {
		return
	}
	c.cycle = cycle
	c.stats.Cycles++
	c.fenceStallSeen = false
	c.robFullSeen = false
	c.sbFullSeen = false
	c.progressed = false
	c.accrual = stallAccrual{}

	c.processSnoops()
	c.completeSB()
	c.completeROB()
	c.retire()
	c.issueSB()
	c.schedule()
	c.fetch()

	occ := int64(c.tail - c.head)
	c.stats.SumROBOccupancy.Add(uint64(occ))
	if occ > c.stats.MaxROBOccupancy.Get() {
		c.stats.MaxROBOccupancy.Set(occ)
	}
	c.spinObserve()
}

// --- helpers ---

func (c *Core) decBits(counts []int, bits uint8) {
	for e := 0; bits != 0; e++ {
		if bits&1 != 0 {
			counts[e]--
		}
		bits >>= 1
	}
}

func (c *Core) incBits(counts []int, bits uint8) {
	for e := 0; bits != 0; e++ {
		if bits&1 != 0 {
			counts[e]++
		}
		bits >>= 1
	}
}

// noteExec records that an entry began executing with the given completion
// time: forward progress, a completion-heap node, and a new bound for the
// completion gate.
func (c *Core) noteExec(seq uint64, readyAt int64) {
	c.progressed = true
	c.heapPush(compNode{at: readyAt, seq: seq})
	if readyAt < c.nextComplete {
		c.nextComplete = readyAt
	}
}

// srcReady reports whether the producer of an operand has its value
// available.
func (c *Core) srcReady(src int64) bool {
	if src < 0 || uint64(src) < c.head {
		return true // committed register file
	}
	return c.slot(uint64(src)).stage == stDone
}

// readSrc returns an operand value (producer's result or committed
// register). Callers must have checked srcReady.
func (c *Core) readSrc(src int64, r isa.Reg) int64 {
	if src >= 0 && uint64(src) >= c.head {
		return c.slot(uint64(src)).val
	}
	return c.regs[r]
}

// resolveSrc captures the operand's producer at decode time.
func (c *Core) resolveSrc(r isa.Reg) int64 {
	if r == isa.R0 {
		return -1
	}
	return c.regTag[r]
}

// --- snoop-triggered replay of speculative loads ---

func (c *Core) processSnoops() {
	if len(c.snoopPending) == 0 {
		return
	}
	c.progressed = true
	c.spin.events++
	addrs := c.snoopPending
	c.snoopPending = c.snoopPending[:0]
	for _, addr := range addrs {
		for seq := c.head; seq < c.tail; seq++ {
			e := c.slot(seq)
			if e.inst.Op == isa.OpLoad && e.specPastFence && e.stage != stWaiting &&
				e.addrOK && e.addr == addr {
				// Replay from this load: it may have observed a value
				// inconsistent with the fence it bypassed.
				c.stats.SpecLoadFlush++
				c.squash(seq)
				c.fetchPC = e.pc
				c.redirectUntil = c.cycle + 1 + int64(c.cfg.BranchPenalty)
				break
			}
		}
	}
}

// --- store buffer ---

func (c *Core) completeSB() {
	if c.nextSBDrain > c.cycle {
		return // nothing in flight is due yet
	}
	next := NeverWakes
	w := 0
	for i := range c.sb {
		e := &c.sb[i]
		if e.inflight && e.readyAt <= c.cycle {
			c.progressed = true
			c.spin.events++ // the Image mutates: never inside a stable spin
			if c.casWaiting > 0 {
				// Draining a store can unblock a waiting same-address
				// CAS; nothing else in the scheduler reads the buffer in
				// a way a removal can unblock (a load that could forward
				// from the drained entry had already started).
				c.schedDirty = true
			}
			if c.localOnly {
				// In-epoch drain: no other core holds the line (the issue
				// required M/E, or the hazard scan kept shared lines out),
				// so the word is race-free; log it for a possible abort.
				c.undoLog = append(c.undoLog, imgUndo{e.addr, c.img.Load(e.addr)})
			}
			c.img.Store(e.addr, e.val)
			c.decBits(c.scope.sbCnt, e.fsb)
			c.sbInflight--
			c.trace(TraceSBComplete, 0, isa.Instruction{Op: isa.OpStore}, e.addr)
			if c.OnStoreComplete != nil && !c.localOnly {
				c.OnStoreComplete(c.id, e.addr)
			}
			continue // drop entry
		}
		if e.inflight && e.readyAt < next {
			next = e.readyAt
		}
		c.sb[w] = *e
		w++
	}
	c.sb = c.sb[:w]
	c.nextSBDrain = next
}

func (c *Core) issueSB() {
	if c.sbInflight == len(c.sb) {
		return // nothing waiting to issue (covers the empty buffer)
	}
	// One ascending pass with a per-address occupancy set: an entry has an
	// older incomplete same-address store exactly when its address was
	// already seen earlier in the pass (entries are kept in program order
	// and drained entries are removed).
	touched := c.sbTouched[:0]
	for i := range c.sb {
		e := &c.sb[i]
		_, older := c.sbSeen[e.addr]
		if !older {
			c.sbSeen[e.addr] = struct{}{}
			touched = append(touched, e.addr)
		}
		if e.inflight {
			continue
		}
		if c.sbInflight >= c.cfg.MSHRs {
			break
		}
		if c.cfg.FIFOStoreBuffer && i != 0 {
			break
		}
		// Per-location ordering: an older incomplete same-address store
		// must drain first.
		if older {
			continue
		}
		lat, ok := c.access(e.addr, true)
		if !ok {
			break // epoch-gated: the issue waits for the sequential re-run
		}
		e.inflight = true
		e.readyAt = c.cycle + int64(lat)
		c.sbInflight++
		c.progressed = true
		if e.readyAt < c.nextSBDrain {
			c.nextSBDrain = e.readyAt
		}
		c.trace(TraceSBIssue, 0, isa.Instruction{Op: isa.OpStore}, e.readyAt)
	}
	for _, a := range touched {
		delete(c.sbSeen, a)
	}
	c.sbTouched = touched[:0]
}

// --- completion ---

// scanStart advances the done-prefix cursor past completed entries and
// returns it: entries in [head, scanStart) are stDone, so completion and
// scheduling scans skip the retired-in-waiting prefix. Stages only move
// toward stDone while an entry is in flight, and squash rewinds the cursor
// along with tail, so the invariant is cheap to maintain lazily.
func (c *Core) scanStart() uint64 {
	if c.donePrefix < c.head {
		c.donePrefix = c.head
	}
	for c.donePrefix < c.tail && c.slot(c.donePrefix).stage == stDone {
		c.donePrefix++
	}
	return c.donePrefix
}

func (c *Core) completeROB() {
	if c.nextComplete > c.cycle {
		return // nothing executing is due yet
	}
	// Drain the due completion-heap nodes. The heap is rebuilt on squash,
	// so live nodes match their entries; the validation below is a
	// defensive no-op in practice.
	batch := c.compBatch[:0]
	for len(c.compHeap) > 0 && c.compHeap[0].at <= c.cycle {
		n := c.heapPop()
		if n.seq < c.head || n.seq >= c.tail {
			continue
		}
		if e := c.slot(n.seq); e.stage == stExecuting && e.readyAt == n.at {
			batch = append(batch, n)
		}
	}
	// Process same-cycle completions in ascending seq order, exactly like
	// the full scan this replaces. Pops already arrive seq-sorted except
	// when a zero-latency access left a node dated before this cycle.
	for i := 1; i < len(batch); i++ {
		for j := i; j > 0 && batch[j-1].seq > batch[j].seq; j-- {
			batch[j-1], batch[j] = batch[j], batch[j-1]
		}
	}
	for _, n := range batch {
		e := c.slot(n.seq)
		c.progressed = true
		c.trace(TraceComplete, n.seq, e.inst, e.val)
		switch e.inst.Op {
		case isa.OpLoad:
			e.stage = stDone
			c.robIncompleteMem--
			c.decBits(c.scope.robCnt, e.fsb)
			c.decBits(c.scope.robLoadCnt, e.fsb)
		case isa.OpCAS:
			// The read-modify-write happens atomically at completion.
			if c.localOnly {
				c.undoLog = append(c.undoLog, imgUndo{e.addr, c.img.Load(e.addr)})
			}
			if c.img.CompareAndSwap(e.addr, e.casOld, e.sval) {
				e.val = 1
				c.spin.events++ // Image mutation perturbs any spin here
				if c.OnStoreComplete != nil && !c.localOnly {
					c.OnStoreComplete(c.id, e.addr)
				}
			} else {
				e.val = 0
			}
			e.stage = stDone
			c.robIncompleteMem--
			c.decBits(c.scope.robCnt, e.fsb)
			c.decBits(c.scope.robLoadCnt, e.fsb)
			// A completed CAS unblocks younger same-address loads (they
			// now read memory), beyond its registered operand consumers.
			c.schedDirty = true
		default:
			e.stage = stDone
			if e.inst.Op == isa.OpStore {
				// A completed store becomes a forwarding source and
				// unblocks younger same-address loads: structural, so a
				// full scan is needed, not just operand wakeups.
				c.schedDirty = true
			}
		}
		c.fireWakes(n.seq)
	}
	c.compBatch = batch[:0]
	if len(c.compHeap) > 0 {
		c.nextComplete = c.compHeap[0].at
	} else {
		c.nextComplete = NeverWakes
	}
}

// --- retirement ---

func (c *Core) retire() {
	h0 := c.head
	c.retireInsts()
	// Retirement feeds the scheduler only through the head seq: a CAS
	// executes only from the ROB head, so reaching a waiting CAS demands a
	// scan. (Everything else retirement touches — the store buffer gains
	// an entry, registers and rename tags update — either only blocks
	// younger entries or is already covered: a retiring producer completed
	// earlier and woke its consumers then.)
	if c.head != h0 && c.head < c.tail {
		if e := c.slot(c.head); e.stage == stWaiting && e.inst.Op == isa.OpCAS {
			c.schedDirty = true
		}
	}
}

func (c *Core) retireInsts() {
	for n := 0; n < c.cfg.RetireWidth && c.head < c.tail; n++ {
		e := c.slot(c.head)
		op := e.inst.Op

		if op == isa.OpFence && (c.cfg.InWindowSpec || e.inst.Order == isa.OrderSS) {
			if !c.fenceMayRetire(e) {
				idle := c.tail-c.head == 1
				if !c.fenceStallSeen {
					c.stats.FenceStallCycles++
					c.stats.FenceStallRetire++
					c.accrual.fenceStall = true
					c.accrual.fenceRetire = true
					if idle {
						// Only the fence itself is in flight: a pure
						// drain wait.
						c.stats.FenceIdleCycles++
						c.accrual.fenceIdle = true
					}
					c.fenceStallSeen = true
				}
				site := c.profile.site(e.pc, e.inst)
				site.StallCycles++
				if idle {
					site.IdleCycles++
				}
				c.accrual.addSite(site, idle)
				c.accrual.fenceTraces++
				c.trace(TraceFenceStall, c.head, e.inst, 1)
				return
			}
		}
		if e.stage != stDone {
			return
		}
		if e.faulted {
			c.fault = fmt.Errorf("cpu: core %d: invalid memory access at pc %d (%s)", c.id, e.pc, e.inst)
			c.progressed = true
			return
		}

		if op == isa.OpStore {
			if len(c.sb) >= c.cfg.SBSize {
				if !c.sbFullSeen {
					c.stats.SBFullCycles++
					c.accrual.sbFull = true
					c.sbFullSeen = true
				}
				return
			}
			c.sb = append(c.sb, sbEntry{addr: e.addr, val: e.sval, fsb: e.fsb})
			c.robStoreCount--
			c.decBits(c.scope.robCnt, e.fsb)
			c.incBits(c.scope.sbCnt, e.fsb)
		}

		if e.inst.Writes() {
			c.regs[e.inst.Rd] = e.val
			if c.regTag[e.inst.Rd] == int64(c.head) {
				c.regTag[e.inst.Rd] = -1
			}
		}

		c.stats.Committed++
		c.progressed = true
		c.trace(TraceRetire, c.head, e.inst, e.val)
		switch op {
		case isa.OpLoad:
			c.stats.CommittedLoads++
			if e.specPastFence {
				c.specLoads--
			}
		case isa.OpStore:
			c.stats.CommittedStores++
		case isa.OpCAS:
			c.stats.CommittedCAS++
		case isa.OpFence:
			c.stats.CommittedFences++
			c.profile.site(e.pc, e.inst).Executions++
			if c.cfg.InWindowSpec {
				c.removeFenceSeq(c.head)
			}
		case isa.OpHalt:
			c.haltInROB--
			c.haltDone = true
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			c.stats.Branches++
		}
		c.head++
	}
}

func (c *Core) removeFenceSeq(seq uint64) {
	for i, s := range c.fenceSeqs {
		if s == seq {
			c.fenceSeqs = append(c.fenceSeqs[:i], c.fenceSeqs[i+1:]...)
			return
		}
	}
}

// fenceMayRetire is the in-window-speculation retirement check: the fence
// consults the store-buffer FSBs (all older loads have completed, since
// loads retire only when done). A load-load fence never waits for stores:
// by the time it reaches the ROB head its ordering obligation is already
// met.
func (c *Core) fenceMayRetire(e *robEntry) bool {
	if e.inst.Order == isa.OrderLL {
		return true
	}
	if e.fenceFull {
		return len(c.sb) == 0
	}
	return c.scope.sbCnt[e.fenceEntry] == 0
}

// --- execution scheduling ---

func (c *Core) schedule() {
	// Two-level scan. A structural event (schedDirty) forces a full
	// ascending pass; plain operand completions only wake their registered
	// consumers, and the pass visits just the marked slots. Start
	// conditions depend only on producer stages, resolved addresses, the
	// head seq, and store-buffer contents — never on the clock — and every
	// mutation of those either sets schedDirty, fires a wakeup, or is the
	// in-pass address resolution escalated below, so a skipped or partial
	// pass starts exactly what a full pass would.
	full := c.schedDirty
	if !full && !c.wakePending {
		return
	}
	c.schedDirty = false
	c.wakePending = false
	start := c.scanStart()
	if full {
		c.scheduleAll(start)
	} else {
		c.scheduleMarked(start)
	}
	clear(c.readyBits)
}

// tryEntry attempts to start the entry at seq if it is still waiting. It
// reports whether the pass must escalate to trying every younger entry: a
// store or CAS address resolved in-pass can unblock any younger load, and
// a full ascending pass would propagate that within the same cycle.
func (c *Core) tryEntry(seq uint64) bool {
	e := &c.entries[seq&c.robMask]
	if e.stage != stWaiting {
		return false
	}
	wasAddrOK := e.addrOK
	switch e.inst.Op {
	case isa.OpLoad:
		c.tryStartLoad(e, seq)
	case isa.OpStore:
		c.tryStartStore(e, seq)
	case isa.OpCAS:
		c.tryStartCAS(e, seq)
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		c.tryResolveBranch(e, seq)
	default:
		c.tryStartALU(e, seq)
	}
	if (c.tracer != nil || c.observer != nil) && seq < c.tail && e.stage == stExecuting {
		c.trace(TraceExecute, seq, e.inst, e.readyAt)
	}
	if !wasAddrOK && e.addrOK {
		switch e.inst.Op {
		case isa.OpStore, isa.OpCAS:
			return true
		}
	}
	return false
}

// scheduleAll is the full ascending pass over [from, tail).
func (c *Core) scheduleAll(from uint64) {
	for seq := from; seq < c.tail; seq++ {
		c.tryEntry(seq)
	}
}

// scheduleMarked visits only the slots marked by fireWakes, in ascending
// seq order. The window may wrap the slot array, giving up to two
// contiguous slot segments; bits are extracted per word. An in-pass
// address resolution escalates to the full pass from that point on.
func (c *Core) scheduleMarked(from uint64) {
	size := uint64(len(c.entries))
	s0 := from & c.robMask
	n := c.tail - from
	segLen := [2]uint64{n, 0}
	if s0+n > size {
		segLen[0] = size - s0
		segLen[1] = n - segLen[0]
	}
	segSlot := [2]uint64{s0, 0}
	segSeq := [2]uint64{from, from + segLen[0]}
	for g := 0; g < 2; g++ {
		lo, ln := segSlot[g], segLen[g]
		if ln == 0 {
			continue
		}
		hi := lo + ln // exclusive slot bound
		for w := lo >> 6; w<<6 < hi; w++ {
			word := c.readyBits[w]
			base := w << 6
			if base < lo {
				word &= ^uint64(0) << (lo - base)
			}
			if base+64 > hi {
				word &= ^uint64(0) >> (base + 64 - hi)
			}
			for word != 0 {
				slot := base + uint64(bits.TrailingZeros64(word))
				word &= word - 1
				seq := segSeq[g] + (slot - lo)
				if seq >= c.tail {
					return // a squash in this pass cut the window short
				}
				if c.tryEntry(seq) {
					c.scheduleAll(seq + 1)
					return
				}
			}
		}
	}
}

func aluLatency(op isa.Op) int64 {
	switch op {
	case isa.OpMul:
		return 3
	case isa.OpDiv, isa.OpRem:
		return 12
	default:
		return 1
	}
}

func (c *Core) tryStartALU(e *robEntry, seq uint64) {
	if !c.srcReady(e.src1) || !c.srcReady(e.src2) {
		return
	}
	a := c.readSrc(e.src1, e.inst.Rs1)
	b := c.readSrc(e.src2, e.inst.Rs2)
	in := &e.inst
	var v int64
	switch in.Op {
	case isa.OpMovI:
		v = in.Imm
	case isa.OpAdd:
		v = a + b
	case isa.OpAddI:
		v = a + in.Imm
	case isa.OpSub:
		v = a - b
	case isa.OpMul:
		v = a * b
	case isa.OpDiv:
		if b != 0 {
			v = a / b
		}
	case isa.OpRem:
		if b != 0 {
			v = a % b
		}
	case isa.OpAnd:
		v = a & b
	case isa.OpAndI:
		v = a & in.Imm
	case isa.OpOr:
		v = a | b
	case isa.OpXor:
		v = a ^ b
	case isa.OpXorI:
		v = a ^ in.Imm
	case isa.OpShl:
		v = a << (uint64(b) & 63)
	case isa.OpShlI:
		v = a << (uint64(in.Imm) & 63)
	case isa.OpShr:
		v = a >> (uint64(b) & 63)
	case isa.OpShrI:
		v = a >> (uint64(in.Imm) & 63)
	case isa.OpSlt:
		if a < b {
			v = 1
		}
	case isa.OpSltI:
		if a < in.Imm {
			v = 1
		}
	case isa.OpSeq:
		if a == b {
			v = 1
		}
	}
	e.val = v
	e.stage = stExecuting
	e.readyAt = c.cycle + aluLatency(in.Op)
	c.noteExec(seq, e.readyAt)
}

func (c *Core) tryResolveBranch(e *robEntry, seq uint64) {
	if !c.srcReady(e.src1) || !c.srcReady(e.src2) {
		return
	}
	a := c.readSrc(e.src1, e.inst.Rs1)
	b := c.readSrc(e.src2, e.inst.Rs2)
	var taken bool
	switch e.inst.Op {
	case isa.OpBeq:
		taken = a == b
	case isa.OpBne:
		taken = a != b
	case isa.OpBlt:
		taken = a < b
	case isa.OpBge:
		taken = a >= b
	}
	e.resolved = true
	e.stage = stExecuting
	e.readyAt = c.cycle + 1
	c.noteExec(seq, e.readyAt)
	c.unresolvedBranches--
	c.pred.update(e.pc, taken)
	if taken == e.predTaken {
		return
	}
	// Misprediction: squash the wrong path and redirect fetch.
	c.stats.Mispredicts++
	c.squash(seq + 1)
	if taken {
		c.fetchPC = int(e.inst.Imm)
	} else {
		c.fetchPC = e.pc + 1
	}
	c.redirectUntil = c.cycle + 1 + int64(c.cfg.BranchPenalty)
}

// olderStoreBlocks scans program-order-older ROB stores for address
// conflicts with a load at addr. It returns (blocked, forward, fval):
// blocked when the load must wait, forward when a value can be bypassed.
func (c *Core) olderStoreBlocks(seq uint64, addr int64) (bool, bool, int64) {
	for s := seq; s > c.head; {
		s--
		f := c.slot(s)
		switch f.inst.Op {
		case isa.OpStore:
			if !f.addrOK {
				return true, false, 0 // unresolved older store address
			}
			if f.addr != addr {
				continue
			}
			if f.stage == stDone {
				return false, true, f.sval // store-to-load forwarding
			}
			return true, false, 0 // matching store, data not ready
		case isa.OpCAS:
			if !f.addrOK {
				return true, false, 0
			}
			if f.addr != addr {
				continue
			}
			if f.stage == stDone {
				// CAS already applied to memory; read from the image.
				return false, false, 0
			}
			return true, false, 0
		}
	}
	return false, false, 0
}

func (c *Core) tryStartLoad(e *robEntry, seq uint64) {
	if !c.srcReady(e.src1) {
		return
	}
	raw := c.readSrc(e.src1, e.inst.Rs1) + e.inst.Imm
	if !e.addrOK {
		e.addr = c.img.Norm(raw)
		e.faulted = !c.img.Valid(raw)
		e.addrOK = true
		c.progressed = true
	}
	blocked, forward, fval := c.olderStoreBlocks(seq, e.addr)
	if blocked {
		return
	}
	if forward {
		e.val = fval
		e.stage = stExecuting
		e.readyAt = c.cycle + int64(c.cfg.ForwardLatency)
		c.noteExec(seq, e.readyAt)
		return
	}
	// Forward from the youngest same-address store-buffer entry, if any.
	for i := len(c.sb) - 1; i >= 0; i-- {
		if c.sb[i].addr == e.addr {
			e.val = c.sb[i].val
			e.stage = stExecuting
			e.readyAt = c.cycle + int64(c.cfg.ForwardLatency)
			c.noteExec(seq, e.readyAt)
			return
		}
	}
	lat, ok := c.access(e.addr, false)
	if !ok {
		return // epoch-gated: the load retries after the epoch aborts
	}
	e.val = c.img.Load(e.addr)
	e.accessedMem = true
	c.spinWatch(e.addr)
	e.stage = stExecuting
	e.readyAt = c.cycle + int64(lat)
	c.noteExec(seq, e.readyAt)
	if c.cfg.InWindowSpec {
		for _, fs := range c.fenceSeqs {
			if fs < seq {
				e.specPastFence = true
				c.specLoads++
				break
			}
		}
	}
}

func (c *Core) tryStartStore(e *robEntry, seq uint64) {
	if c.srcReady(e.src1) && !e.addrOK {
		raw := c.readSrc(e.src1, e.inst.Rs1) + e.inst.Imm
		e.addr = c.img.Norm(raw)
		e.faulted = !c.img.Valid(raw)
		e.addrOK = true
		c.progressed = true
	}
	if !e.addrOK || !c.srcReady(e.src2) {
		return
	}
	e.sval = c.readSrc(e.src2, e.inst.Rs2)
	e.stage = stExecuting
	e.readyAt = c.cycle + 1
	c.noteExec(seq, e.readyAt)
}

func (c *Core) tryStartCAS(e *robEntry, seq uint64) {
	if c.srcReady(e.src1) && !e.addrOK {
		raw := c.readSrc(e.src1, e.inst.Rs1) + e.inst.Imm
		e.addr = c.img.Norm(raw)
		e.faulted = !c.img.Valid(raw)
		e.addrOK = true
		c.progressed = true
	}
	if !e.addrOK || !c.srcReady(e.src2) || !c.srcReady(e.src3) {
		return
	}
	// A CAS executes only from the ROB head (oldest in flight) and after
	// same-address buffered stores have drained, keeping the
	// read-modify-write per-location ordered.
	if seq != c.head {
		return
	}
	for i := range c.sb {
		if c.sb[i].addr == e.addr {
			return
		}
	}
	e.casOld = c.readSrc(e.src2, e.inst.Rs2)
	e.sval = c.readSrc(e.src3, e.inst.Rs3)
	lat, ok := c.access(e.addr, true)
	if !ok {
		return // epoch-gated: the CAS retries after the epoch aborts
	}
	e.accessedMem = true
	c.spinWatch(e.addr)
	e.stage = stExecuting
	e.readyAt = c.cycle + int64(lat)
	c.casWaiting--
	c.noteExec(seq, e.readyAt)
}

// --- squash ---

func (c *Core) squash(fromSeq uint64) {
	if fromSeq >= c.tail {
		return
	}
	c.progressed = true
	c.schedDirty = true
	c.spin.events++
	// Restore the fence scope stack to its state before fromSeq decoded.
	switch c.cfg.Recovery {
	case RecoverySnapshot:
		c.scope.restoreSnapshot(c.slot(fromSeq).snap)
	case RecoveryShadow:
		c.scope.restoreShadow()
	}
	for seq := fromSeq; seq < c.tail; seq++ {
		e := c.slot(seq)
		c.trace(TraceSquash, seq, e.inst, 0)
		switch e.inst.Op {
		case isa.OpLoad, isa.OpCAS:
			if e.stage != stDone {
				c.robIncompleteMem--
				c.decBits(c.scope.robCnt, e.fsb)
				c.decBits(c.scope.robLoadCnt, e.fsb)
				if e.inst.Op == isa.OpCAS && e.stage == stWaiting {
					c.casWaiting--
				}
			}
			if e.specPastFence {
				c.specLoads--
			}
			if e.accessedMem {
				c.stats.WrongPathMem++
			}
		case isa.OpStore:
			c.robStoreCount--
			c.decBits(c.scope.robCnt, e.fsb)
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			if !e.resolved {
				c.unresolvedBranches--
			}
		case isa.OpHalt:
			c.haltInROB--
		}
		c.stats.Squashed++
	}
	c.tail = fromSeq
	if c.donePrefix > c.tail {
		c.donePrefix = c.tail
	}
	// Rebuild the register rename tags, the wakeup lists, and the
	// completion heap from the surviving entries.
	for i := range c.regTag {
		c.regTag[i] = -1
	}
	c.wipeWakes()
	for seq := c.head; seq < c.tail; seq++ {
		e := c.slot(seq)
		if e.inst.Writes() {
			c.regTag[e.inst.Rd] = int64(seq)
		}
		if e.stage == stWaiting {
			c.regWakes(e, seq)
		}
	}
	c.rebuildCompHeap()
	// Drop squashed fences.
	w := 0
	for _, s := range c.fenceSeqs {
		if s < fromSeq {
			c.fenceSeqs[w] = s
			w++
		}
	}
	c.fenceSeqs = c.fenceSeqs[:w]
}

// --- fetch / decode / issue ---

// canIssueFence is the non-speculative fence issue check (the paper's
// "Issuing Fence" step): the fence may issue only when no prior in-scope
// access of the ordered kind is incomplete. OrderLL only waits for loads
// (prior stores and the store buffer are not ordered by it).
func (c *Core) canIssueFence(scope isa.ScopeKind, order isa.FenceOrder) bool {
	full := scope == isa.ScopeGlobal
	var entry uint8
	switch scope {
	case isa.ScopeClass:
		entry, full = c.scope.fenceClassEntry()
	case isa.ScopeSet:
		if c.scope.fenceSetFull() {
			full = true
		} else {
			entry = c.scope.setEntry()
		}
	}
	if order == isa.OrderLL {
		if full {
			return c.robIncompleteMem == 0
		}
		return c.scope.robLoadCnt[entry] == 0
	}
	if full {
		return c.robIncompleteMem == 0 && c.robStoreCount == 0 && len(c.sb) == 0
	}
	return c.scope.robCnt[entry] == 0 && c.scope.sbCnt[entry] == 0
}

func (c *Core) fetch() {
	if c.redirectUntil > c.cycle {
		return
	}
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.haltInROB > 0 || c.haltDone {
			return
		}
		if c.tail-c.head >= uint64(c.cfg.ROBSize) {
			if !c.robFullSeen {
				c.stats.ROBFullCycles++
				c.accrual.robFull = true
				c.robFullSeen = true
			}
			return
		}
		pc := c.fetchPC
		var in isa.Instruction
		if pc >= 0 && pc < len(c.prog.Code) {
			in = c.prog.Code[pc]
		} else {
			in = isa.Instruction{Op: isa.OpHalt} // running off the end halts
		}

		if in.Op == isa.OpFence && in.Order != isa.OrderSS &&
			!c.cfg.InWindowSpec && !c.canIssueFence(in.Scope, in.Order) {
			idle := c.head == c.tail
			if !c.fenceStallSeen {
				c.stats.FenceStallCycles++
				c.stats.FenceStallIssue++
				c.accrual.fenceStall = true
				if idle {
					// Nothing left in flight: the core is purely
					// waiting for the fence's memory drain.
					c.stats.FenceIdleCycles++
					c.accrual.fenceIdle = true
				}
				c.fenceStallSeen = true
			}
			site := c.profile.site(pc, in)
			site.StallCycles++
			if idle {
				site.IdleCycles++
			}
			c.accrual.addSite(site, idle)
			c.accrual.fenceTraces++
			c.trace(TraceFenceStall, c.tail, in, 0)
			return
		}

		seq := c.tail
		e := c.slot(seq)
		*e = robEntry{inst: in, pc: pc, src1: -1, src2: -1, src3: -1}
		e.snap = c.scope.snapshot()
		c.progressed = true
		// A fresh entry needs exactly one scheduling try; marking its slot
		// (rather than raising schedDirty) keeps the pass partial. Decode
		// changes nothing about older entries.
		s := seq & c.robMask
		c.readyBits[s>>6] |= 1 << (s & 63)
		c.wakePending = true
		c.trace(TraceDecode, seq, in, int64(pc))

		nextPC := pc + 1
		switch in.Op {
		case isa.OpNop:
			e.stage = stDone
		case isa.OpHalt:
			e.stage = stDone
			c.haltInROB++
		case isa.OpMovI:
			e.stage = stWaiting
		case isa.OpJmp:
			e.stage = stDone
			nextPC = int(in.Imm)
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			e.src1 = c.resolveSrc(in.Rs1)
			e.src2 = c.resolveSrc(in.Rs2)
			e.predTaken = c.pred.predict(pc, int(in.Imm))
			if e.predTaken {
				nextPC = int(in.Imm)
			}
			c.unresolvedBranches++
			e.stage = stWaiting
		case isa.OpFence:
			e.stage = stDone
			if c.cfg.InWindowSpec || in.Order == isa.OrderSS {
				// Capture the fence's effective scope at decode. A
				// store-store fence always takes this path: it never
				// blocks issue, only its own retirement — younger
				// stores cannot enter the store buffer before it
				// retires, while younger loads pass freely.
				switch in.Scope {
				case isa.ScopeGlobal:
					e.fenceFull = true
				case isa.ScopeClass:
					e.fenceEntry, e.fenceFull = c.scope.fenceClassEntry()
				case isa.ScopeSet:
					if c.scope.fenceSetFull() {
						e.fenceFull = true
					} else {
						e.fenceEntry = c.scope.setEntry()
					}
				}
				if c.cfg.InWindowSpec && in.Order != isa.OrderSS {
					// Full and load-load fences constrain speculative
					// loads; store-store fences do not.
					c.fenceSeqs = append(c.fenceSeqs, seq)
				}
			}
		case isa.OpFsStart:
			e.stage = stDone
			c.scope.fsStart(in.Imm, c.unresolvedBranches == 0)
		case isa.OpFsEnd:
			e.stage = stDone
			c.scope.fsEnd(c.unresolvedBranches == 0)
			c.scope.drainGuard()
		case isa.OpLoad:
			e.src1 = c.resolveSrc(in.Rs1)
			e.fsb = c.memFSB(in)
			c.incBits(c.scope.robCnt, e.fsb)
			c.incBits(c.scope.robLoadCnt, e.fsb)
			c.robIncompleteMem++
			e.stage = stWaiting
		case isa.OpStore:
			e.src1 = c.resolveSrc(in.Rs1)
			e.src2 = c.resolveSrc(in.Rs2)
			e.fsb = c.memFSB(in)
			c.incBits(c.scope.robCnt, e.fsb)
			c.robStoreCount++
			e.stage = stWaiting
		case isa.OpCAS:
			e.src1 = c.resolveSrc(in.Rs1)
			e.src2 = c.resolveSrc(in.Rs2)
			e.src3 = c.resolveSrc(in.Rs3)
			e.fsb = c.memFSB(in)
			c.incBits(c.scope.robCnt, e.fsb)
			c.incBits(c.scope.robLoadCnt, e.fsb)
			c.robIncompleteMem++
			c.casWaiting++
			e.stage = stWaiting
		default: // remaining ALU ops
			e.src1 = c.resolveSrc(in.Rs1)
			e.src2 = c.resolveSrc(in.Rs2)
			e.stage = stWaiting
		}

		if e.stage == stWaiting {
			c.regWakes(e, seq)
		}
		if in.Writes() {
			c.regTag[in.Rd] = int64(seq)
		}
		c.tail = seq + 1
		c.fetchPC = nextPC
	}
}

// memFSB computes the fence scope bits for a decoded memory operation: one
// bit per active class scope on the FSS, plus the reserved set-scope bit
// for compiler-flagged accesses.
func (c *Core) memFSB(in isa.Instruction) uint8 {
	m := c.scope.currentMask()
	if in.SetFlag {
		m |= c.scope.setBit()
	}
	return m
}
