package results

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"sfence/internal/exp"
	"sfence/internal/kernels"
	"sfence/internal/machine"
)

// SuiteOptions parameterize a full evaluation run.
type SuiteOptions struct {
	// Scale selects Quick or Full experiment sizing.
	Scale exp.Scale
	// Cache, when non-nil, memoizes every simulation of the run.
	Cache *RunCache
	// Runner, when non-nil, overrides the cache (and the direct runner)
	// as the session's simulation executor.
	Runner exp.Runner
	// Progress, when non-nil, receives per-experiment completion updates
	// from the worker pool.
	Progress exp.ProgressFunc
	// Parallelism bounds the session's worker pool (0 = GOMAXPROCS).
	Parallelism int
	// Workers, when > 1, runs each simulation on the epoch-barriered
	// parallel machine runner. Results are bit-identical at any worker
	// count (and the cache key ignores it), so artifacts are unaffected.
	Workers int
}

// Suite holds every structured result of the paper's evaluation section
// plus the repository's extra ablations — the full input to both the
// BENCH_*.json artifacts and EXPERIMENTS.md.
type Suite struct {
	Scale       exp.Scale
	Figure12    []exp.SpeedupSeries
	Figure13    []exp.BenchGroup
	Figure14    []exp.BenchGroup
	Figure15    []exp.BenchGroup
	Figure16    []exp.BenchGroup
	FigureDepth []exp.BenchGroup
	// FigureInferred compares traditional fences, the hand-written scope
	// annotations, and statically inferred scopes (kernels.Inferred) on
	// every Table IV benchmark.
	FigureInferred []exp.BenchGroup
	// FigureCores sweeps the scale kernels across 8/64/256-core machines;
	// Heatmap breaks every benchmark's fence stall down per static fence
	// site. Both are deterministic simulated data (beyond the paper).
	FigureCores  []exp.CoresRow
	Heatmap      []exp.HeatmapRow
	Ablations    []AblationSet
	HardwareCost exp.HardwareCostReport
	TableIII     []exp.TableIIIRow
	TableIV      []BenchmarkInfo

	// SimRequests and SimDistinct count the simulations the experiments
	// asked for and the distinct configurations among them. Both are
	// properties of the suite alone — independent of cache presence or
	// warmth — so EXPERIMENTS.md can report them and stay diff-clean.
	SimRequests int
	SimDistinct int

	// CacheStats is the cache traffic observed during this run (nil when
	// the suite ran uncached).
	CacheStats *CacheStats
}

// AblationSpec names one ablation sweep: the identity shared by the
// combined BENCH_ABLATIONS.json artifact and the "ablation/<name>"
// experiment IDs in the registry.
type AblationSpec struct {
	Name  string
	Title string
}

// AblationSpecs lists the ablation sweeps in presentation order. It is
// the single identity registry shared by RunSuite, sfence-report, and
// sfence-bench, so every producer emits identical artifact identities.
func AblationSpecs() []AblationSpec {
	return []AblationSpec{
		{"fsb-entries", "FSB entry count"},
		{"fss-depth", "FSS depth"},
		{"store-buffer", "Store buffer size"},
		{"fifo-store-buffer", "FIFO (TSO-like) vs non-FIFO (RMO) store buffer"},
		{"finer-fences", "Store-store put fence (Section VII combination); 0=full, 1=SS"},
		{"nested-scopes", "Nested-scope pressure (FSB sharing / FSS overflow)"},
		{"fss-recovery", "FSS recovery: snapshot (0) vs paper shadow (1)"},
	}
}

// ablationFns maps each ablation identity to the session method that
// produces its rows (kept out of the public spec so AblationSpec stays a
// pure identity record).
var ablationFns = map[string]func(*exp.Session, context.Context, exp.Scale) ([]exp.AblationRow, error){
	"fsb-entries":       (*exp.Session).AblationFSBEntries,
	"fss-depth":         (*exp.Session).AblationFSSDepth,
	"store-buffer":      (*exp.Session).AblationStoreBuffer,
	"fifo-store-buffer": (*exp.Session).AblationFIFOStoreBuffer,
	"finer-fences":      (*exp.Session).AblationFinerFences,
	"nested-scopes":     (*exp.Session).AblationNestedScopes,
	"fss-recovery":      (*exp.Session).AblationRecovery,
}

// RunSuite executes every suite experiment of the registry at the given
// scale on a private session built from opts, so concurrent RunSuite
// calls (two Labs in one process) share nothing unless they share a
// cache. Cancelling ctx aborts the in-flight simulations and returns the
// context error; no partial Suite is returned and hence no artifact can
// be produced from a cancelled run. Deltas of the cache counters across
// the run are recorded in the returned suite.
func RunSuite(ctx context.Context, opts SuiteOptions) (*Suite, error) {
	// Count requested simulations and distinct configurations on the way
	// through, so the suite knows its own shape regardless of how many
	// requests the cache absorbed.
	var mu sync.Mutex
	requests := 0
	seen := map[string]struct{}{}
	base := opts.Runner
	if base == nil && opts.Cache != nil {
		base = opts.Cache.Run
	}
	if base == nil {
		base = exp.DirectRun
	}
	counting := func(ctx context.Context, bench string, kopts kernels.Options, cfg machine.Config) (kernels.Result, error) {
		mu.Lock()
		requests++
		seen[Key(bench, kopts, cfg)] = struct{}{}
		mu.Unlock()
		return base(ctx, bench, kopts, cfg)
	}
	var before CacheStats
	if opts.Cache != nil {
		before = opts.Cache.Stats()
	}
	session := exp.NewSession(counting, opts.Progress, opts.Parallelism).WithWorkers(opts.Workers)

	s := &Suite{Scale: opts.Scale}
	for _, spec := range Experiments() {
		if !spec.InSuite() {
			continue
		}
		data, err := spec.Run(ctx, session, opts.Scale)
		if err != nil {
			return nil, fmt.Errorf("results: %s: %w", spec.ID, err)
		}
		spec.store(s, data)
	}
	s.SimRequests = requests
	s.SimDistinct = len(seen)
	if opts.Cache != nil {
		after := opts.Cache.Stats()
		s.CacheStats = &CacheStats{
			Hits:        after.Hits - before.Hits,
			MemHits:     after.MemHits - before.MemHits,
			DiskHits:    after.DiskHits - before.DiskHits,
			Misses:      after.Misses - before.Misses,
			WriteErrors: after.WriteErrors - before.WriteErrors,
			Evictions:   after.Evictions - before.Evictions,
			// Occupancy is a level, not a counter: report where the disk
			// tier ended up, not a meaningless delta.
			DiskBytes:   after.DiskBytes,
			DiskEntries: after.DiskEntries,
		}
	}
	return s, nil
}

// Artifact is one named JSON results file.
type Artifact struct {
	Name string
	Data []byte
}

// Artifacts renders the suite's BENCH_*.json file set from the stored
// results by iterating the experiment registry; the individual ablation
// sweeps fold into the combined BENCH_ABLATIONS.json at their registry
// position.
func (s *Suite) Artifacts() ([]Artifact, error) {
	var out []Artifact
	ablationsDone := false
	for _, spec := range Experiments() {
		if !spec.InSuite() {
			continue
		}
		if strings.HasPrefix(spec.ID, "ablation/") {
			if ablationsDone {
				continue
			}
			ablationsDone = true
			data, err := AblationsJSON(s.Ablations, s.Scale)
			if err != nil {
				return nil, fmt.Errorf("results: BENCH_ABLATIONS.json: %w", err)
			}
			out = append(out, Artifact{Name: "BENCH_ABLATIONS.json", Data: data})
			continue
		}
		if spec.Artifact == "" {
			continue
		}
		data, err := spec.JSON(spec.fromSuite(s), s.Scale)
		if err != nil {
			return nil, fmt.Errorf("results: %s: %w", spec.Artifact, err)
		}
		out = append(out, Artifact{Name: spec.Artifact, Data: data})
	}
	return out, nil
}

// WriteArtifacts writes the BENCH_*.json set into dir and returns the
// file paths written. Every artifact is rendered before the first byte is
// written, so an encoding failure produces no partial file set.
func (s *Suite) WriteArtifacts(dir string) ([]string, error) {
	arts, err := s.Artifacts()
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(arts))
	for _, a := range arts {
		p := filepath.Join(dir, a.Name)
		if err := os.WriteFile(p, a.Data, 0o644); err != nil {
			return nil, fmt.Errorf("results: write %s: %w", p, err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}
