package kernels

import (
	"fmt"
	"math/rand"

	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
)

func init() {
	register(Info{
		Name:        "harris",
		ScopeType:   "class",
		Group:       "lock-free",
		Description: "Harris's non-blocking sorted linked-list set [20]; class-scoped fences inside insert/delete/contains",
		Build:       buildHarris,
	})
}

const cidHarris = 3

// Operation codes in the per-thread scripts.
const (
	harrisOpContains = 0
	harrisOpInsert   = 1
	harrisOpDelete   = 2
)

// buildHarris builds the Harris concurrent-set benchmark: each thread runs
// a precomputed script of insert/delete/contains operations over a small
// key range (high contention). Marked-pointer deletion uses bit 0 of the
// next pointer; nodes come from bump allocators (no reuse, no ABA).
//
// Verification exploits set semantics: for every key, successful inserts
// and deletes must alternate, so #ins - #del is 0 or 1 and equals the
// key's final presence in the list; the final list must also be strictly
// sorted and reachable without cycles.
func buildHarris(opts Options) (*Kernel, error) {
	opts = opts.withDefaults(4, 80, 1)
	if opts.Threads < 1 || opts.Threads > 16 {
		return nil, fmt.Errorf("harris: threads %d out of range [1,16]", opts.Threads)
	}
	s := newScopeCtx(opts, isa.ScopeClass)
	const keyRange = 32
	perThread := int64(opts.Ops)

	lay := memsys.NewLayout(4096, 48<<20)
	headNode := lay.Array("head", 2) // sentinel {unused key, next}
	lay.AlignTo(64)
	tailNode := lay.Array("tail", 2) // sentinel, never dereferenced for key
	nodePool := make([]int64, opts.Threads)
	script := make([]int64, opts.Threads)
	results := make([]int64, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		lay.AlignTo(64)
		nodePool[t] = lay.Array(fmt.Sprintf("nodes%d", t), (perThread+2)*2)
		lay.AlignTo(64)
		script[t] = lay.Array(fmt.Sprintf("script%d", t), perThread+1)
		lay.AlignTo(64)
		results[t] = lay.Array(fmt.Sprintf("results%d", t), perThread+1)
	}
	workBase := make([]int64, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		lay.AlignTo(64)
		workBase[t] = lay.Array(fmt.Sprintf("work%d", t), workRegionWords)
	}

	// Deterministic operation scripts.
	rng := rand.New(rand.NewSource(opts.Seed))
	scripts := make([][]int64, opts.Threads)
	for t := range scripts {
		ops := make([]int64, perThread)
		for i := range ops {
			var op int64
			switch r := rng.Intn(10); {
			case r < 4:
				op = harrisOpInsert
			case r < 7:
				op = harrisOpDelete
			default:
				op = harrisOpContains
			}
			key := int64(rng.Intn(keyRange))
			ops[i] = op<<32 | key
		}
		scripts[t] = ops
	}

	const (
		rHeadN  = isa.R20 // head sentinel address
		rTailN  = isa.R21 // tail sentinel address
		rNode   = isa.R22 // bump allocator
		rScript = isa.R23
		rRes    = isa.R24
		rLeft   = isa.R25
		rIdx    = isa.R26
		rOp     = isa.R27
		rKey    = isa.R28
		rOut    = isa.R29 // op result (0/1)
		// search registers
		rT   = isa.R30
		rTN  = isa.R31
		rL   = isa.R32 // left node
		rLN  = isa.R33 // left.next snapshot
		rR   = isa.R34 // right node
		rTK  = isa.R35
		rM   = isa.R36
		rOk  = isa.R37
		rRN  = isa.R38
		rTmp = isa.R39
	)

	// search(rKey) -> rL (left), rR (right). Harris's two-phase search
	// with physical removal of marked spans.
	search := func(b *isa.Builder) {
		b.Label("again")
		b.Mov(rT, rHeadN)
		s.shared(b)
		b.Load(rTN, rT, 8)
		b.Label("sbody")
		b.AndI(rM, rTN, 1)
		b.Bne(rM, isa.R0, "nomove")
		b.Mov(rL, rT)
		b.Mov(rLN, rTN)
		b.Label("nomove")
		b.AndI(rT, rTN, -2) // t = unmark(t_next)
		b.Beq(rT, rTailN, "sdone")
		s.shared(b)
		b.Load(rTN, rT, 8)
		s.shared(b)
		b.Load(rTK, rT, 0)
		b.AndI(rM, rTN, 1)
		b.Bne(rM, isa.R0, "sbody") // skip marked nodes
		b.Blt(rTK, rKey, "sbody")  // keep walking while t.key < key
		b.Label("sdone")
		b.Mov(rR, rT)
		b.Beq(rLN, rR, "adjacent")
		// Unlink the marked span left -> right.
		s.shared(b)
		b.CAS(rOk, rL, 8, rLN, rR)
		b.Beq(rOk, isa.R0, "again")
		b.Label("adjacent")
		b.Beq(rR, rTailN, "sexit")
		s.shared(b)
		b.Load(rRN, rR, 8)
		b.AndI(rM, rRN, 1)
		b.Bne(rM, isa.R0, "again") // right became marked: restart
		b.Label("sexit")
	}

	insert := func(b *isa.Builder) {
		b.Label("iloop")
		b.Inline(search)
		b.Beq(rR, rTailN, "doins")
		s.shared(b)
		b.Load(rTK, rR, 0)
		b.Bne(rTK, rKey, "doins")
		b.MovI(rOut, 0) // key already present
		b.Jmp("iout")
		b.Label("doins")
		s.shared(b)
		b.Store(rNode, 0, rKey) // node.key
		s.shared(b)
		b.Store(rNode, 8, rR) // node.next = right
		s.fence(b)            // release: node init before publication
		s.shared(b)
		b.CAS(rOk, rL, 8, rR, rNode)
		b.Beq(rOk, isa.R0, "iloop")
		b.AddI(rNode, rNode, 16)
		b.MovI(rOut, 1)
		b.Label("iout")
	}

	b := isa.NewBuilder()

	deleteBody := func(b *isa.Builder) {
		b.Label("dloop")
		b.Inline(search)
		b.Beq(rR, rTailN, "dfail")
		s.shared(b)
		b.Load(rTK, rR, 0)
		b.Bne(rTK, rKey, "dfail")
		s.shared(b)
		b.Load(rRN, rR, 8)
		b.AndI(rM, rRN, 1)
		b.Bne(rM, isa.R0, "dloop") // already marked: lost the race, retry
		// Logical delete: mark right.next.
		b.MovI(rTmp, 1)
		b.Or(rTmp, rRN, rTmp)
		s.shared(b)
		b.CAS(rOk, rR, 8, rRN, rTmp)
		b.Beq(rOk, isa.R0, "dloop")
		// Physical delete (best effort).
		s.shared(b)
		b.CAS(rOk, rL, 8, rR, rRN)
		b.MovI(rOut, 1)
		b.Jmp("dout")
		b.Label("dfail")
		b.MovI(rOut, 0)
		b.Label("dout")
	}

	containsBody := func(b *isa.Builder) {
		b.Inline(search)
		b.MovI(rOut, 0)
		b.Beq(rR, rTailN, "cout")
		s.shared(b)
		b.Load(rTK, rR, 0)
		b.Bne(rTK, rKey, "cout")
		b.MovI(rOut, 1)
		b.Label("cout")
	}

	b.Entry("worker")
	b.Inline(func(b *isa.Builder) {
		b.MovI(rIdx, 0)
		b.Label("oploop")
		// Fetch op from the script.
		b.ShlI(rTmp, rIdx, 3)
		b.Add(rTmp, rScript, rTmp)
		b.Load(rOp, rTmp, 0)
		b.AndI(rKey, rOp, 0xffffffff) // key = low bits
		b.ShrI(rOp, rOp, 32)
		b.MovI(rTmp, harrisOpInsert)
		b.Beq(rOp, rTmp, "do_ins")
		b.MovI(rTmp, harrisOpDelete)
		b.Beq(rOp, rTmp, "do_del")
		b.Inline(func(b *isa.Builder) {
			s.enter(b, cidHarris)
			b.Inline(containsBody)
			s.exit(b, cidHarris)
		})
		b.Jmp("record")
		b.Label("do_ins")
		b.Inline(func(b *isa.Builder) {
			s.enter(b, cidHarris)
			b.Inline(insert)
			s.exit(b, cidHarris)
		})
		b.Jmp("record")
		b.Label("do_del")
		b.Inline(func(b *isa.Builder) {
			s.enter(b, cidHarris)
			b.Inline(deleteBody)
			s.exit(b, cidHarris)
		})
		b.Label("record")
		b.ShlI(rTmp, rIdx, 3)
		b.Add(rTmp, rRes, rTmp)
		b.Store(rTmp, 0, rOut)
		b.Inline(func(b *isa.Builder) { emitWorkload(b, opts.Workload) })
		b.AddI(rIdx, rIdx, 1)
		b.Blt(rIdx, rLeft, "oploop")
		b.Halt()
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	memInit := map[int64]int64{
		headNode + 8: tailNode, // head.next = tail
		tailNode + 8: 0,
	}
	threads := make([]machine.Thread, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		threads[t] = machine.Thread{Entry: "worker", Regs: map[isa.Reg]int64{
			rHeadN: headNode, rTailN: tailNode, rNode: nodePool[t],
			rScript: script[t], rRes: results[t], rLeft: perThread,
			regWorkBase: workBase[t], regWorkPtr: int64(t * 136),
		}}
	}

	return &Kernel{
		Name:    "harris",
		Program: p,
		Regions: regionsFor(lay, func(name string) (scopecheck.Sharing, int) {
			// Node pools are published into the list, so shared even
			// though each is bump-allocated by one thread.
			if _, ok := ownedSuffix(name, "script"); ok {
				return scopecheck.ReadShared, -1
			}
			if t, ok := ownedSuffix(name, "results"); ok {
				return scopecheck.Private, t
			}
			if t, ok := ownedSuffix(name, "work"); ok {
				return scopecheck.Private, t
			}
			return scopecheck.SharedRW, -1
		}),
		Threads: threads,
		MemInit: memInit,
		InitImage: func(img *memsys.Image) {
			for t := 0; t < opts.Threads; t++ {
				for i, w := range scripts[t] {
					img.Store(script[t]+int64(i)*8, w)
				}
			}
		},
		Verify: func(img *memsys.Image) error {
			// Walk the final list: unmarked reachable keys must be
			// strictly increasing.
			final := map[int64]bool{}
			prev := int64(-1)
			cur := img.Load(headNode + 8)
			for steps := 0; ; steps++ {
				if steps > opts.Threads*opts.Ops+10 {
					return fmt.Errorf("harris: list walk did not terminate (cycle?)")
				}
				marked := cur&1 == 1
				addr := cur &^ 1
				if addr == tailNode {
					break
				}
				if addr == 0 {
					return fmt.Errorf("harris: nil next pointer before tail sentinel")
				}
				key := img.Load(addr)
				next := img.Load(addr + 8)
				if !marked && next&1 == 0 { // node is live
					if key <= prev {
						return fmt.Errorf("harris: keys not strictly increasing (%d after %d)", key, prev)
					}
					prev = key
					final[key] = true
				}
				cur = next
			}
			// Conservation per key: successful inserts - deletes must be
			// 0/1 and match final presence.
			ins := map[int64]int{}
			dels := map[int64]int{}
			for t := 0; t < opts.Threads; t++ {
				for i := int64(0); i < perThread; i++ {
					w := scripts[t][i]
					op, key := w>>32, w&0xffffffff
					res := img.Load(results[t] + i*8)
					if res != 0 && res != 1 {
						return fmt.Errorf("harris: thread %d op %d result %d not boolean", t, i, res)
					}
					if res == 1 {
						switch op {
						case harrisOpInsert:
							ins[key]++
						case harrisOpDelete:
							dels[key]++
						}
					}
				}
			}
			for key := int64(0); key < keyRange; key++ {
				diff := ins[key] - dels[key]
				if diff != 0 && diff != 1 {
					return fmt.Errorf("harris: key %d has %d inserts vs %d deletes", key, ins[key], dels[key])
				}
				if (diff == 1) != final[key] {
					return fmt.Errorf("harris: key %d presence %v inconsistent with %d ins / %d del", key, final[key], ins[key], dels[key])
				}
			}
			return nil
		},
	}, nil
}
