package memsys

import (
	"reflect"
	"testing"
)

// TestSharers pins the directory accessor's semantics — and the property
// that makes the set unusable as an exact snoop filter: a write to a line
// resets the set to the writer alone even while other cores may still
// hold in-flight loads that used it.
func TestSharers(t *testing.T) {
	h := MustHierarchy(4, DefaultConfig())
	const addr = 4096

	if _, ok := h.Sharers(addr); ok {
		t.Fatalf("untouched line unexpectedly present in L2 directory")
	}

	h.Access(0, addr, false)
	h.Access(1, addr, false)
	set, ok := h.Sharers(addr)
	if !ok {
		t.Fatalf("line missing from L2 directory after reads")
	}
	if !reflect.DeepEqual(set, []int{0, 1}) {
		t.Fatalf("sharers after reads by cores 0 and 1 = %v, want [0 1]", set)
	}

	// Same line, different word: the set is per line.
	if s, _ := h.Sharers(addr + 8); !reflect.DeepEqual(s, []int{0, 1}) {
		t.Fatalf("sharers of sibling word = %v, want [0 1]", s)
	}

	// A write by core 2 invalidates the other copies and resets the set —
	// losing the fact that cores 0 and 1 ever held the line.
	h.Access(2, addr, true)
	set, ok = h.Sharers(addr)
	if !ok || !reflect.DeepEqual(set, []int{2}) {
		t.Fatalf("sharers after write by core 2 = %v (present=%v), want [2]", set, ok)
	}
}

// TestSharersBesides pins the hazard probe the parallel engine's epoch
// scan relies on: exact when the directory knows the line, conservative
// (true) when it does not.
func TestSharersBesides(t *testing.T) {
	h := MustHierarchy(4, DefaultConfig())
	const addr = 8192

	if !h.SharersBesides(0, addr) {
		t.Fatalf("unknown line must conservatively report other sharers")
	}
	h.Access(0, addr, false)
	if h.SharersBesides(0, addr) {
		t.Fatalf("sole reader reported a foreign sharer")
	}
	h.Access(3, addr, false)
	if !h.SharersBesides(0, addr) {
		t.Fatalf("second reader not reported")
	}
	h.Access(0, addr, true)
	if h.SharersBesides(0, addr) {
		t.Fatalf("post-write set should be the writer alone")
	}
}

// TestLocalHit pins the locality predicate: reads hit any valid state,
// writes only M or E, and the probe itself never mutates timing state.
func TestLocalHit(t *testing.T) {
	h := MustHierarchy(4, DefaultConfig())
	const addr = 512

	if h.LocalHit(0, addr, false) {
		t.Fatalf("cold line reported as local hit")
	}
	h.Access(0, addr, false) // sole reader: E
	if !h.LocalHit(0, addr, false) || !h.LocalHit(0, addr, true) {
		t.Fatalf("E line must be a local hit for both read and write")
	}
	h.Access(1, addr, false) // second reader demotes to S
	if !h.LocalHit(0, addr, false) {
		t.Fatalf("S line must be a local read hit")
	}
	if h.LocalHit(0, addr, true) {
		t.Fatalf("S write is a directory upgrade, not a local hit")
	}
	ver := h.CoreVersion(0)
	h.LocalHit(0, addr, true)
	h.LocalHit(0, addr, false)
	if h.CoreVersion(0) != ver {
		t.Fatalf("LocalHit perturbed the core version")
	}
	h.Access(2, addr, true) // remote write invalidates core 0's copy
	if h.LocalHit(0, addr, false) {
		t.Fatalf("invalidated line reported as local hit")
	}
}

// TestManyCoreSharers audits the uint64-mask assumptions at 65 and 256
// cores: membership past bit 63, invalidation fan-out, write reset, and
// the O(sharers) iteration order.
func TestManyCoreSharers(t *testing.T) {
	for _, cores := range []int{65, 256} {
		h := MustHierarchy(cores, DefaultConfig())
		const addr = 1 << 14

		readers := []int{0, 5, 63, 64}
		if cores-1 > 64 {
			readers = append(readers, cores-1)
		}
		for _, c := range readers {
			h.Access(c, addr, false)
		}
		set, ok := h.Sharers(addr)
		if !ok || !reflect.DeepEqual(set, readers) {
			t.Fatalf("cores=%d: sharers = %v, want %v", cores, set, readers)
		}
		for _, c := range readers {
			if !h.LocalHit(c, addr, false) {
				t.Fatalf("cores=%d: core %d lost its read copy", cores, c)
			}
		}
		if !h.SharersBesides(64, addr) || h.SharersBesides(64, addr+4096) == false {
			t.Fatalf("cores=%d: SharersBesides wrong past bit 63", cores)
		}

		// A write by the last core must invalidate every reader — including
		// the extension-word ones — and reset the set to the writer alone.
		w := cores - 1
		h.Access(w, addr, true)
		set, ok = h.Sharers(addr)
		if !ok || !reflect.DeepEqual(set, []int{w}) {
			t.Fatalf("cores=%d: post-write sharers = %v, want [%d]", cores, set, w)
		}
		for _, c := range readers[:len(readers)-1] {
			if h.LocalHit(c, addr, false) {
				t.Fatalf("cores=%d: core %d kept a stale copy across invalidation", cores, c)
			}
			if h.Stats(c).Invalidations != 1 {
				t.Fatalf("cores=%d: core %d invalidations = %d, want 1", cores, c, h.Stats(c).Invalidations)
			}
		}
		if !h.LocalHit(w, addr, true) {
			t.Fatalf("cores=%d: writer does not own the line", cores)
		}
	}
}

// TestSharerSetOps unit-tests the hybrid set directly across the
// inline/extension boundary.
func TestSharerSetOps(t *testing.T) {
	var s sharerSet
	for _, c := range []int{0, 63, 64, 127, 128, 300} {
		s.add(c)
		if !s.contains(c) {
			t.Fatalf("add(%d) not visible", c)
		}
	}
	if got := s.members(); !reflect.DeepEqual(got, []int{0, 63, 64, 127, 128, 300}) {
		t.Fatalf("members = %v", got)
	}
	if s.lone(64) || !s.anyBesides(64) {
		t.Fatalf("multi-member set misreported as lone")
	}
	s.only(64)
	if !s.lone(64) || s.anyBesides(64) || s.contains(300) {
		t.Fatalf("only(64) = %v", s.members())
	}
	s.only(3)
	if !s.lone(3) {
		t.Fatalf("lone(3) false after only(3) with ext pages present")
	}

	var f sharerSet
	for _, n := range []int{1, 63, 64, 65, 130, 256} {
		f.fill(n)
		want := make([]int, n)
		for i := range want {
			want[i] = i
		}
		if got := f.members(); !reflect.DeepEqual(got, want) {
			t.Fatalf("fill(%d): %d members, first/last %v", n, len(got), got)
		}
	}

	c := s.clone()
	c.add(200)
	if s.contains(200) {
		t.Fatalf("clone aliases the original")
	}
}
