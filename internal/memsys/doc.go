// Package memsys models the simulated memory system: a word-addressable
// memory image holding architectural values, and a configurable N-level
// cache hierarchy with MESI-style invalidation that supplies access
// latencies.
//
// # Timing-directed split
//
// The simulator is timing-directed: values always live in the Image, and
// a store's value becomes visible to other cores only when the owning
// core's store buffer completes it (see internal/cpu). The cache
// hierarchy decides *when* that happens and what each access costs,
// reproducing the latency structure of the paper's SESC configuration
// (Table III). Because no data flows through the caches, the Hierarchy is
// purely tag, LRU, and directory state.
//
// # Hierarchy shape
//
// Config is an ordered list of cache levels, innermost first. Each level
// is private (one bank per core) or shared (a single bank); private
// levels must form a prefix and shared levels a suffix, and the outermost
// level — always shared — holds the coherence directory (sharer mask and
// owner per line). The hierarchy is inclusive: a fill installs the line
// at every level between the supply point and the requesting core, and an
// eviction back-invalidates all inner copies, so the single directory at
// the last level can stand in for per-level coherence state. The default
// two-level configuration (private 32 KB L1, shared 1 MB L2+directory)
// reproduces the paper's Table III machine exactly; DepthConfig scales
// the same shape to three and four levels for the fig-depth sweep.
//
// # Level addressing and statistics
//
// Levels are named L1..LN, innermost first. Every level keeps a per-core
// hit/miss pair (CoreStats.Level, registered with the machine's stats
// registry as coreN.mem.l<k>_hits / l<k>_misses), and the machine adds
// cross-core sums under machine.mem.l<k>_*; see RegisterStats and
// internal/machine.
package memsys
