package scopecheck

import (
	"sort"

	"sfence/internal/isa"
)

// InferInfo summarizes an inference: which access sites were flagged and
// how many fences were rewritten.
type InferInfo struct {
	// Fences is the number of fence instructions rewritten to set scope.
	Fences int
	// Flagged lists the pcs of memory accesses that received a SetFlag.
	Flagged []int
	// Cleared lists the pcs of memory accesses whose pre-existing
	// SetFlag was removed (their locations never escape, or they are
	// never pending at a fence).
	Cleared []int
}

// Infer rewrites the scenario's program with minimal safe scopes derived
// from the analysis: every fence becomes set-scoped (keeping its order
// kind), and exactly the accesses that may be thread-escaping AND may be
// pending at some fence in an order-relevant direction carry a SetFlag.
// fs_start/fs_end brackets are preserved (set fences ignore them).
//
// Soundness relative to the input program with all fences read as
// global (the traditional lowering): a global fence orders every pending
// access; the inferred set fence orders every *flagged* pending access.
// The difference is accesses that are never flagged — those either never
// touch an escaping location (no other thread can observe their order)
// or are never pending at any fence (program order to the fence already
// orders nothing). Either way no cross-thread observation distinguishes
// the two programs on the checked projection; ref.CheckConcurrent
// asserts exactly this agreement dynamically for every fuzzed scenario.
func Infer(sc *Scenario) (*isa.Program, *InferInfo, error) {
	a, err := analyze(sc)
	if err != nil {
		return nil, nil, err
	}

	need := map[int]bool{}
	for _, obs := range a.fences {
		for spc, p := range obs.pend {
			if !relevant(obs.order, p) {
				continue
			}
			if p.locs.intersects(a.rv, a.escaping) {
				need[spc] = true
			}
		}
	}

	out := &isa.Program{
		Code:    append([]isa.Instruction(nil), sc.Prog.Code...),
		Entries: make(map[string]int, len(sc.Prog.Entries)),
	}
	for name, pc := range sc.Prog.Entries {
		out.Entries[name] = pc
	}
	info := &InferInfo{}
	for pc := range out.Code {
		ins := &out.Code[pc]
		switch {
		case ins.Op == isa.OpFence:
			ins.Scope = isa.ScopeSet
			info.Fences++
		case ins.IsMem():
			want := need[pc]
			if want && !ins.SetFlag {
				info.Flagged = append(info.Flagged, pc)
			}
			if !want && ins.SetFlag {
				info.Cleared = append(info.Cleared, pc)
			}
			ins.SetFlag = want
		}
	}
	sort.Ints(info.Flagged)
	sort.Ints(info.Cleared)
	return out, info, nil
}
