// Golden determinism test: a committed checksum of (final cycles, retired
// instructions, fence idle cycles) for every Table IV kernel at Quick
// scale. The simulator is fully deterministic, so these numbers must never
// move unless the timing model itself is deliberately changed — any
// accidental perturbation (a reordered scan, a broken fast-forward credit,
// an off-by-one in a latency) fails loudly here.
//
// Regenerate after an intentional timing change with:
//
//	go test -run TestGoldenDeterminism -update-golden
package sfence_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"sfence"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_quick.json from the current simulator")

// goldenRecord is one kernel configuration's determinism checksum.
type goldenRecord struct {
	Cycles     int64  `json:"cycles"`
	Committed  uint64 `json:"committed"`
	FenceIdle  uint64 `json:"fenceIdleCycles"`
	CoreCycles uint64 `json:"coreCycles"`
}

const goldenPath = "testdata/golden_quick.json"

func goldenCases() map[string]sfence.BenchmarkOptions {
	ops := map[string]int{
		"dekker": 25, "wsq": 50, "msn": 32, "harris": 40,
		"pst": 160, "ptc": 64, "barnes": 16, "radiosity": 16,
		"nested-scope": 40, "fence-drain": 60,
	}
	cases := map[string]sfence.BenchmarkOptions{}
	for bench, n := range ops {
		for _, mode := range []sfence.FenceMode{sfence.Traditional, sfence.Scoped} {
			key := fmt.Sprintf("%s/%s", bench, mode)
			cases[key] = sfence.BenchmarkOptions{Mode: mode, Ops: n, Workload: 2}
		}
	}
	return cases
}

func measureGolden(t *testing.T) map[string]map[string]goldenRecord {
	t.Helper()
	out := map[string]map[string]goldenRecord{}
	for key, opts := range goldenCases() {
		bench := key[:len(key)-len("/"+opts.Mode.String())]
		res, err := sfence.RunBenchmark(bench, opts, sfence.DefaultConfig())
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if out[bench] == nil {
			out[bench] = map[string]goldenRecord{}
		}
		out[bench][opts.Mode.String()] = goldenRecord{
			Cycles:     res.Cycles,
			Committed:  res.Stats.Committed,
			FenceIdle:  res.FenceStall,
			CoreCycles: res.CoreCycles,
		}
	}
	return out
}

func TestGoldenDeterminism(t *testing.T) {
	got := measureGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want map[string]map[string]goldenRecord
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}

	var benches []string
	for b := range want {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	for _, bench := range benches {
		for mode, w := range want[bench] {
			g, ok := got[bench][mode]
			if !ok {
				t.Errorf("%s/%s: in golden file but not measured", bench, mode)
				continue
			}
			if g != w {
				t.Errorf("%s/%s: timing perturbed:\n  golden   %+v\n  measured %+v\n(if this change is intentional, regenerate with -update-golden)", bench, mode, w, g)
			}
		}
	}
	// Both directions: a case added to goldenCases without regenerating
	// the file must fail as unpinned, not pass silently.
	for bench, modes := range got {
		for mode := range modes {
			if _, ok := want[bench][mode]; !ok {
				t.Errorf("%s/%s: measured but missing from golden file (regenerate with -update-golden)", bench, mode)
			}
		}
	}
}
