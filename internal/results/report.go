package results

import (
	"fmt"
	"strings"

	"sfence/internal/exp"
)

// Claim is one machine-checkable statement from the paper's evaluation
// section: what the paper says, and a check that measures the suite
// against it.
type Claim struct {
	// Kind names the figure/table the claim belongs to.
	Kind string
	// Text is the paper's claim, paraphrased.
	Text string
	// Check returns a short description of the measured value and whether
	// it matches the claim.
	Check func(*Suite) (measured string, ok bool)
}

// Claims returns the paper-claim checklist in report order. Each check
// mirrors the corresponding assertion in the repository's test suite, so
// EXPERIMENTS.md and `go test` agree on what "reproduced" means.
func Claims() []Claim {
	return []Claim{
		{
			Kind: KindFigure12,
			Text: "S-Fence speeds up all four lock-free algorithms across the " +
				"workload sweep (the paper's peaks lie between 1.13x and 1.34x; " +
				"peaks outside that range are flagged in the measured column).",
			Check: func(s *Suite) (string, bool) {
				ok := len(s.Figure12) == 4
				parts := make([]string, 0, len(s.Figure12))
				for _, series := range s.Figure12 {
					peak, at := series.Peak()
					note := ""
					switch {
					case peak < 1.13:
						note = " [below paper range]"
					case peak > 1.34:
						note = " [above paper range]"
					}
					parts = append(parts, fmt.Sprintf("%s %.3fx@%d%s", series.Bench, peak, at, note))
					// The checked claim is the qualitative one: a real,
					// plausible speedup on every benchmark.
					if peak < 1.02 || peak > 2.5 {
						ok = false
					}
				}
				return "peaks: " + strings.Join(parts, ", "), ok
			},
		},
		{
			Kind: KindFigure13,
			Text: "On full applications S-Fence never loses to traditional fences, " +
				"with and without in-window speculation (S <= T, S+ <= T+).",
			Check: func(s *Suite) (string, bool) {
				ok := len(s.Figure13) == 4
				parts := make([]string, 0, len(s.Figure13))
				for _, g := range s.Figure13 {
					if len(g.Bars) != 4 {
						return "malformed groups", false
					}
					T, S, Tp, Sp := g.Bars[0], g.Bars[1], g.Bars[2], g.Bars[3]
					noise := 0.05
					if g.Bench == "ptc" {
						noise = 0.10 // dynamic schedule
					}
					if S.Total() > T.Total()+noise || Sp.Total() > Tp.Total()+noise {
						ok = false
					}
					parts = append(parts, fmt.Sprintf("%s S=%.3f S+=%.3f", g.Bench, S.Total(), Sp.Total()))
				}
				return strings.Join(parts, ", "), ok
			},
		},
		{
			Kind: KindFigure13,
			Text: "barnes and radiosity (set-scope applications) lose a large share " +
				"of their fence stalls under S-Fence.",
			Check: func(s *Suite) (string, bool) {
				ok := false
				parts := []string{}
				for _, g := range s.Figure13 {
					if g.Bench != "barnes" && g.Bench != "radiosity" {
						continue
					}
					ok = true
					T, S := g.Bars[0], g.Bars[1]
					if S.FenceStall > 0.6*T.FenceStall {
						ok = false
					}
					parts = append(parts, fmt.Sprintf("%s stalls T=%.3f S=%.3f", g.Bench, T.FenceStall, S.FenceStall))
				}
				return strings.Join(parts, ", "), ok
			},
		},
		{
			Kind: KindFigure14,
			Text: "Set scope performs slightly better than class scope, but the " +
				"difference is not significant.",
			Check: func(s *Suite) (string, bool) {
				ok := len(s.Figure14) > 0
				parts := make([]string, 0, len(s.Figure14))
				for _, g := range s.Figure14 {
					cs, ss := g.Bars[0], g.Bars[1]
					if ss.Total() > cs.Total()*1.10 {
						ok = false
					}
					parts = append(parts, fmt.Sprintf("%s S.S./C.S.=%.3f", g.Bench, ss.Total()/cs.Total()))
				}
				return strings.Join(parts, ", "), ok
			},
		},
		{
			Kind: KindFigure15,
			Text: "S-Fence's advantage persists across memory latencies; for the " +
				"set-scope applications S beats T at 200, 300, and 500 cycles.",
			Check: func(s *Suite) (string, bool) {
				ok := len(s.Figure15) > 0
				parts := []string{}
				for _, g := range s.Figure15 {
					byLabel := map[string]exp.Bar{}
					for _, b := range g.Bars {
						byLabel[b.Label] = b
					}
					if byLabel["500T"].Total() <= byLabel["200T"].Total() {
						ok = false
					}
					if g.Bench == "barnes" || g.Bench == "radiosity" {
						for _, lat := range []string{"200", "300", "500"} {
							if byLabel[lat+"S"].Total() >= byLabel[lat+"T"].Total() {
								ok = false
							}
						}
						parts = append(parts, fmt.Sprintf("%s S/T@500=%.3f", g.Bench,
							byLabel["500S"].Total()/byLabel["500T"].Total()))
					}
				}
				return strings.Join(parts, ", "), ok
			},
		},
		{
			Kind: KindFigure16,
			Text: "S-Fence's advantage persists across ROB sizes (64/128/256); a " +
				"larger window never hurts.",
			Check: func(s *Suite) (string, bool) {
				ok := len(s.Figure16) > 0
				parts := make([]string, 0, len(s.Figure16))
				for _, g := range s.Figure16 {
					byLabel := map[string]exp.Bar{}
					for _, b := range g.Bars {
						byLabel[b.Label] = b
					}
					if byLabel["256S"].Total() > byLabel["64S"].Total()*1.08 {
						ok = false
					}
					parts = append(parts, fmt.Sprintf("%s 256S=%.3f", g.Bench, byLabel["256S"].Total()))
				}
				return strings.Join(parts, ", "), ok
			},
		},
		{
			Kind: KindFigureDepth,
			Text: "(beyond the paper) S-Fence's advantage is a property of fence " +
				"semantics, not hierarchy shape: scoped fences never lose to " +
				"traditional fences on 2-, 3-, or 4-level memory hierarchies.",
			Check: func(s *Suite) (string, bool) {
				ok := len(s.FigureDepth) == 8
				worst := map[string]float64{}
				for _, g := range s.FigureDepth {
					byLabel := map[string]exp.Bar{}
					for _, b := range g.Bars {
						byLabel[b.Label] = b
					}
					noise := 0.05
					if g.Bench == "ptc" {
						noise = 0.10
					}
					for _, d := range []string{"2", "3", "4"} {
						T, S := byLabel[d+"T"], byLabel[d+"S"]
						if T.Total() == 0 || S.Total() > T.Total()+noise {
							ok = false
						}
						if r := S.Total() / T.Total(); r > worst[d] {
							worst[d] = r
						}
					}
				}
				return fmt.Sprintf("worst S/T: depth2=%.3f depth3=%.3f depth4=%.3f",
					worst["2"], worst["3"], worst["4"]), ok
			},
		},
		{
			Kind: KindInferred,
			Text: "(beyond the paper) Static scope inference recovers the hand " +
				"annotations' benefit wherever address arithmetic is statically " +
				"resolvable (dekker, wsq, msn, barnes, radiosity), and on the " +
				"pointer-chasing applications degrades soundly toward traditional " +
				"fences — it never loses to them anywhere.",
			Check: func(s *Suite) (string, bool) {
				// The kernels whose shared-access addresses the abstract
				// interpreter resolves exactly; the rest reach shared data
				// through loaded pointers, where over-flagging is the sound
				// outcome.
				resolvable := map[string]bool{
					"dekker": true, "wsq": true, "msn": true, "barnes": true, "radiosity": true,
				}
				ok := len(s.FigureInferred) == 8
				worstVsT, worstVsS := 0.0, 0.0
				for _, g := range s.FigureInferred {
					if len(g.Bars) != 3 {
						return "malformed groups", false
					}
					T, S, I := g.Bars[0], g.Bars[1], g.Bars[2]
					if T.Total() == 0 || S.Total() == 0 {
						return "zero baseline", false
					}
					noise := 0.05
					if g.Bench == "ptc" {
						noise = 0.10 // dynamic schedule
					}
					if I.Total() > T.Total()+noise {
						ok = false
					}
					if resolvable[g.Bench] && I.Total() > S.Total()+noise {
						ok = false
					}
					if r := I.Total() / T.Total(); r > worstVsT {
						worstVsT = r
					}
					if r := I.Total() / S.Total(); resolvable[g.Bench] && r > worstVsS {
						worstVsS = r
					}
				}
				return fmt.Sprintf("worst I/T=%.3f overall, worst I/S=%.3f on resolvable kernels", worstVsT, worstVsS), ok
			},
		},
		{
			Kind: KindFigureCores,
			Text: "(beyond the paper) S-Fence's advantage survives machine width: " +
				"on the scalable kernels, scoped fences never lose to traditional " +
				"fences at 8, 64, or 256 cores, and every row completes verified.",
			Check: func(s *Suite) (string, bool) {
				type cell struct {
					bench string
					cores int
				}
				T, S := map[cell]exp.CoresRow{}, map[cell]exp.CoresRow{}
				for _, r := range s.FigureCores {
					c := cell{r.Bench, r.Cores}
					if r.Mode == "T" {
						T[c] = r
					} else {
						S[c] = r
					}
				}
				ok := len(s.FigureCores) == 2*len(exp.CoreCounts)*2
				worst := 0.0
				worstAt := ""
				for c, t := range T {
					sr, have := S[c]
					if !have || t.Cycles == 0 {
						ok = false
						continue
					}
					if r := float64(sr.Cycles) / float64(t.Cycles); r > worst {
						worst, worstAt = r, fmt.Sprintf("%s@%d", c.bench, c.cores)
					}
				}
				if worst > 1.05 {
					ok = false
				}
				return fmt.Sprintf("worst S/T cycles %.3f (%s) across %d rows", worst, worstAt, len(s.FigureCores)), ok
			},
		},
		{
			Kind: KindHardwareCost,
			Text: "The S-Fence hardware costs less than 80 bytes of storage per core " +
				"for the Table III configuration.",
			Check: func(s *Suite) (string, bool) {
				return fmt.Sprintf("%.1f bytes/core", s.HardwareCost.TotalBytes), s.HardwareCost.PaperClaimOK
			},
		},
	}
}

// renderTableIVInfos formats stored Table IV records through the shared
// exp layout helpers.
func renderTableIVInfos(infos []BenchmarkInfo) string {
	var sb strings.Builder
	sb.WriteString("Table IV — Benchmark description\n")
	sb.WriteString(exp.TableIVHeader())
	for _, info := range infos {
		sb.WriteString(exp.TableIVLine(info.Name, info.ScopeType, info.Group, info.Description))
	}
	return sb.String()
}

// flag renders a claim verdict.
func flag(ok bool) string {
	if ok {
		return "✅ reproduced"
	}
	return "❌ DIVERGES"
}

// ExperimentsMD renders the paper-vs-measured record: for every figure
// and table, the paper's claim, the measured values, the verdict, and
// the full ASCII rendering of the measured data. The output is
// deterministic for a given suite, so regeneration is diff-clean when
// nothing changed.
func (s *Suite) ExperimentsMD() string {
	var sb strings.Builder
	sb.WriteString("# EXPERIMENTS — paper vs. measured\n\n")
	sb.WriteString("Source paper: " + Paper + ".\n\n")
	fmt.Fprintf(&sb, "Scale: **%s** · results schema v%d · generated by `sfence-report`\n\n", ScaleName(s.Scale), SchemaVersion)
	sb.WriteString("Regenerate this file and the `BENCH_*.json` artifacts with:\n\n")
	sb.WriteString("```\ngo run ./cmd/sfence-report")
	if s.Scale == exp.Quick {
		sb.WriteString(" -quick")
	}
	sb.WriteString("\n```\n\n")
	if s.SimRequests > 0 {
		// These counts are properties of the suite itself, independent of
		// cache presence or warmth, so regeneration stays diff-clean.
		fmt.Fprintf(&sb, "The suite requests %d simulations covering %d distinct configurations; the run cache deduplicates the overlap (Figures 13/15/16 share their Table III baselines).\n\n",
			s.SimRequests, s.SimDistinct)
	}

	sb.WriteString("## Claim checklist\n\n")
	sb.WriteString("| # | Where | Paper claim | Measured | Verdict |\n")
	sb.WriteString("|---|-------|-------------|----------|---------|\n")
	okCount, total := 0, 0
	for i, c := range Claims() {
		measured, ok := c.Check(s)
		total++
		if ok {
			okCount++
		}
		fmt.Fprintf(&sb, "| %d | %s | %s | %s | %s |\n", i+1, kindTitles[c.Kind], c.Text, measured, flag(ok))
	}
	fmt.Fprintf(&sb, "\n**%d/%d claims reproduced.**\n\n", okCount, total)

	section := func(title, body string) {
		sb.WriteString("## " + title + "\n\n```\n")
		sb.WriteString(strings.TrimRight(body, "\n"))
		sb.WriteString("\n```\n\n")
	}
	section(kindTitles[KindTableIII], exp.RenderTableIIIRows(s.TableIII))
	section(kindTitles[KindTableIV], renderTableIVInfos(s.TableIV))
	section(kindTitles[KindHardwareCost], exp.RenderHardwareCost(s.HardwareCost))
	section(kindTitles[KindFigure12], exp.RenderFigure12(s.Figure12))
	section(kindTitles[KindFigure13], exp.RenderGroups("Figure 13 — Normalized execution time (T, S, T+, S+)", s.Figure13))
	section(kindTitles[KindFigure14], exp.RenderGroups("Figure 14 — Class scope vs. set scope", s.Figure14))
	section(kindTitles[KindFigure15], exp.RenderGroups("Figure 15 — Varying memory access latency", s.Figure15))
	section(kindTitles[KindFigure16], exp.RenderGroups("Figure 16 — Varying ROB size", s.Figure16))
	section(kindTitles[KindFigureDepth], exp.RenderGroups("Depth sweep — Varying memory-hierarchy depth (2/3/4 levels)", s.FigureDepth))
	sb.WriteString("The depth sweep generalizes Figure 15's sensitivity study from latencies to " +
		"hierarchy *shape*: every Table IV benchmark runs on the canonical 2-, 3-, and 4-level " +
		"hierarchies of `memsys.DepthConfig`, normalized per benchmark to the 2-level " +
		"traditional run. Deeper hierarchies pay a slower last level on shared-data misses, " +
		"which stretches the store-buffer drain a traditional fence must wait out — so the " +
		"absolute fence-stall bars grow with depth while S-Fence, which skips out-of-scope " +
		"stores entirely, keeps most of its bar flat. The S/T gap therefore persists (and " +
		"typically widens) with depth, the same qualitative conclusion as the paper's " +
		"latency sweep: the fence-stall cost S-Fence removes scales with the memory system, " +
		"not with the fence count.\n\n")

	section(kindTitles[KindFigureCores], exp.RenderCores(s.FigureCores))
	sb.WriteString("The core-count sweep runs the scalable `scale` kernels (a balanced " +
		"ring-synchronized variant and a straggler-imbalanced barrier variant) on 8-, 64-, " +
		"and 256-core machines — the last far beyond the 64-core ceiling the old " +
		"directory bitmask imposed. The simulated results are deterministic and " +
		"worker-invariant: the parallel simulator core produces these exact rows at any " +
		"worker count (the equivalence tests assert it bit-for-bit), so this artifact " +
		"doubles as the byte-identity fixture for the parallel runner. Wall-clock " +
		"measurements of the parallel runner itself live in `BENCH_SIMPERF.json`.\n\n")
	section(kindTitles[KindHeatmap], exp.RenderHeatmap(s.Heatmap))
	sb.WriteString("The heatmap breaks each benchmark's fence stall down per static fence site " +
		"(the `FenceProfile` plumbing), showing *which* fences the scoped semantics rescue: " +
		"under T a handful of sites carry nearly all the stall; under S the same sites " +
		"either leave the profile entirely (scoped fences skip the remote drain) or keep " +
		"only their intra-scope share.\n\n")

	section(kindTitles[KindInferred], exp.RenderGroups("Inferred scopes — T (traditional), S (hand annotations), I (static inference)", s.FigureInferred))
	sb.WriteString("The inferred-scope experiment runs every Table IV benchmark a third way: the " +
		"unannotated (traditional) build is handed to `scopecheck.Infer`, which computes each " +
		"fence's pending-access footprint by abstract interpretation, rewrites every fence to " +
		"set scope, and flags exactly the thread-escaping accesses whose ordering the fence " +
		"must enforce — the paper's Section IV compiler support as a working analysis, with no " +
		"hand annotations anywhere. Where the interpreter resolves every shared-access address " +
		"(dekker, wsq, msn, barnes, radiosity) the inferred configuration (I) matches the " +
		"hand-annotated one (S) within noise: the annotations carry no information the analysis " +
		"cannot recover from the program text. Where shared data is reached through loaded " +
		"pointers (harris's node chases, pst/ptc's queue buffers and CSR-indexed arrays) the " +
		"analysis over-flags conservatively and I degrades toward T — soundness means precision " +
		"loss can only add ordering, never remove it, so inference never loses to traditional " +
		"fences anywhere. The same inference is verified dynamically in `internal/ref`: every fuzzed " +
		"scenario's inferred lowering must be bit-identical across simulator clocks and agree " +
		"with the SC oracle's checked projection.\n\n")

	sb.WriteString("## Ablations (beyond the paper)\n\n")
	for _, set := range s.Ablations {
		sb.WriteString("```\n")
		sb.WriteString(strings.TrimRight(exp.RenderAblation("Ablation — "+set.Title, set.Rows), "\n"))
		sb.WriteString("\n```\n\n")
	}

	sb.WriteString("## Artifacts\n\n")
	sb.WriteString("Machine-readable envelopes (schema v" + fmt.Sprint(SchemaVersion) + ") accompany this file:\n\n")
	arts, err := s.Artifacts()
	if err == nil {
		for _, a := range arts {
			fmt.Fprintf(&sb, "- `%s`\n", a.Name)
		}
	}
	return sb.String()
}
