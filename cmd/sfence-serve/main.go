// Command sfence-serve exposes the S-Fence reproduction as a long-running
// simulation service: an HTTP/JSON API over the experiment registry.
// Clients POST jobs into a bounded worker pool, stream NDJSON progress
// events with live simulated-cycles/s and fence-stall share, and fetch
// the finished schema-versioned BENCH envelope — byte-identical to what a
// direct sfence-report run writes, because the simulator is deterministic
// and the serving layer adds no entropy to results.
//
// All jobs share one content-addressed run cache, so identical requests
// across tenants coalesce to a single simulation; -cache-max-bytes bounds
// the disk tier with LRU eviction. SIGINT/SIGTERM drains gracefully:
// submits are refused with 503 while queued and running jobs finish
// (up to -drain-timeout, after which they are cancelled mid-cycle-loop).
//
// Examples:
//
//	sfence-serve                          # :8080, quick scale, cache under .sfence-cache
//	sfence-serve -addr :9000 -scale full
//	sfence-serve -cache-max-bytes 1048576 # 1 MiB disk budget, LRU-evicted
//
//	curl -s localhost:8080/v1/experiments
//	curl -s -XPOST localhost:8080/v1/jobs -d '{"experiment":"table4"}'
//	curl -sN localhost:8080/v1/jobs/j1/events
//	curl -s localhost:8080/v1/jobs/j1/result
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sfence"
	"sfence/internal/exp"
	"sfence/internal/serve"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		scaleName     = flag.String("scale", "quick", `default experiment scale for jobs that name none ("quick" or "full")`)
		cacheDir      = flag.String("cache", ".sfence-cache", "shared run-cache directory")
		noCache       = flag.Bool("no-cache", false, "disable the shared run cache")
		cacheMaxBytes = flag.Int64("cache-max-bytes", 0, "disk-tier byte budget, LRU-evicted (0 = unbounded)")
		jobs          = flag.Int("jobs", 0, "worker-pool width: max concurrently running jobs (0 = GOMAXPROCS)")
		queueDepth    = flag.Int("queue", 16, "bounded queue depth for accepted-but-not-running jobs")
		jobTimeout    = flag.Duration("job-timeout", 10*time.Minute, "per-job timeout cap (0 = none)")
		drainTimeout  = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before in-flight jobs are cancelled")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	var scale exp.Scale
	switch *scaleName {
	case "quick":
		scale = exp.Quick
	case "full":
		scale = exp.Full
	default:
		fail(fmt.Errorf("unknown scale %q (want \"quick\" or \"full\")", *scaleName))
	}

	var cache *sfence.RunCache
	if !*noCache {
		var err error
		cache, err = sfence.NewRunCacheLimited(*cacheDir, *cacheMaxBytes)
		if err != nil {
			fail(err)
		}
	}

	srv := serve.NewServer(serve.Options{
		Cache:         cache,
		Scale:         scale,
		Workers:       *jobs,
		QueueDepth:    *queueDepth,
		MaxJobTimeout: *jobTimeout,
	})

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fail(err)
	}
	log.Printf("sfence-serve: listening on %s (scale=%s, jobs=%d, queue=%d)",
		ln.Addr(), *scaleName, srv.Workers(), *queueDepth)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		log.Printf("sfence-serve: %v: draining (budget %s)", sig, *drainTimeout)
	case err := <-serveErr:
		fail(err)
	}

	// Drain first so /healthz flips to 503 and in-flight jobs finish,
	// then shut the listener down; a second signal aborts immediately.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		<-sigCh
		log.Printf("sfence-serve: second signal: aborting")
		cancel()
	}()
	if err := srv.Drain(drainCtx); err != nil {
		log.Printf("sfence-serve: drain incomplete: %v (in-flight jobs cancelled)", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
		log.Printf("sfence-serve: shutdown: %v", err)
	}
	<-serveErr // http.ErrServerClosed once Serve unwinds
	log.Printf("sfence-serve: stopped")
}
