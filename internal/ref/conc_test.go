package ref

import (
	"strings"
	"testing"

	"sfence/internal/isa"
)

// TestGenConcurrentDeterministic pins the generator's reproducibility:
// the same seed must produce bit-identical variants, registers, and
// memory across calls — the property seed-replay and the -gen CLI mode
// rest on.
func TestGenConcurrentDeterministic(t *testing.T) {
	a, b := GenConcurrent(42), GenConcurrent(42)
	if a.NumThreads != b.NumThreads {
		t.Fatalf("thread counts diverged: %d vs %d", a.NumThreads, b.NumThreads)
	}
	for v := Variant(0); v < NumVariants; v++ {
		ca, cb := a.Variants[v].Code, b.Variants[v].Code
		if len(ca) != len(cb) {
			t.Fatalf("variant %v: lengths diverged: %d vs %d", v, len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("variant %v: instruction %d diverged: %+v vs %+v", v, i, ca[i], cb[i])
			}
		}
	}
	for tid := range a.Regs {
		for r, v := range a.Regs[tid] {
			if b.Regs[tid][r] != v {
				t.Fatalf("thread %d R%d diverged", tid, r)
			}
		}
	}
	for addr, v := range a.Mem {
		if b.Mem[addr] != v {
			t.Fatalf("mem[%d] diverged", addr)
		}
	}
}

// stripLowering removes everything a variant lowering may legally differ
// in — fences, fs brackets, and set flags — leaving the scenario's
// computational skeleton.
func stripLowering(code []isa.Instruction) []isa.Instruction {
	var out []isa.Instruction
	for _, in := range code {
		switch in.Op {
		case isa.OpFence, isa.OpFsStart, isa.OpFsEnd:
			continue
		}
		in.SetFlag = false
		// Branch targets shift when fences are removed; alignment is
		// checked on opcode+registers+non-branch immediates only.
		switch in.Op {
		case isa.OpJmp, isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			in.Imm = 0
		}
		out = append(out, in)
	}
	return out
}

// TestGenConcurrentVariantsAligned pins the generator's core invariant:
// the three lowerings of a scenario are the SAME program modulo fence
// scopes, fs brackets, and set flags. Cross-variant differential checking
// is only meaningful because of this.
func TestGenConcurrentVariantsAligned(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		cp := GenConcurrent(seed)
		base := stripLowering(cp.Variants[VariantTraditional].Code)
		for v := VariantClass; v < NumVariants; v++ {
			got := stripLowering(cp.Variants[v].Code)
			if len(got) != len(base) {
				t.Fatalf("seed %d: variant %v skeleton length %d, traditional %d", seed, v, len(got), len(base))
			}
			for i := range base {
				if got[i] != base[i] {
					t.Fatalf("seed %d: variant %v skeleton diverges at %d: %+v vs %+v", seed, v, i, got[i], base[i])
				}
			}
		}
		// The class variant must bracket, the set variant must flag, and
		// the traditional variant must do neither.
		counts := func(v Variant) (fs, flags int) {
			for _, in := range cp.Variants[v].Code {
				if in.Op == isa.OpFsStart {
					fs++
				}
				if in.SetFlag {
					flags++
				}
			}
			return
		}
		tFs, tFl := counts(VariantTraditional)
		cFs, _ := counts(VariantClass)
		_, sFl := counts(VariantSet)
		if cFs <= tFs {
			t.Errorf("seed %d: class variant has %d fs_starts, traditional %d; want more", seed, cFs, tFs)
		}
		if sFl <= tFl {
			t.Errorf("seed %d: set variant has %d flagged accesses, traditional %d; want more", seed, sFl, tFl)
		}
	}
}

// TestRunConcMessagePassing checks the round-robin oracle on a hand-built
// two-thread message-passing program: the consumer must observe the
// payload, never the initial zero.
func TestRunConcMessagePassing(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("t0")
	b.MovI(isa.R1, 41)
	b.MovI(isa.R2, 4096)
	b.Store(isa.R2, 8, isa.R1) // payload
	b.MovI(isa.R1, 1)
	b.Store(isa.R2, 0, isa.R1) // flag
	b.Halt()
	b.Entry("t1")
	b.MovI(isa.R2, 4096)
	b.Label("spin")
	b.Load(isa.R3, isa.R2, 0)
	b.Beq(isa.R3, isa.R0, "spin")
	b.Load(isa.R1, isa.R2, 8)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cs, err := RunConc(prog, []string{"t0", "t1"}, nil, nil, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.Threads[1].Regs[isa.R1]; got != 41 {
		t.Fatalf("consumer read %d, want 41", got)
	}
	if got := cs.Mem[4096]; got != 1 {
		t.Fatalf("flag = %d, want 1", got)
	}
}

// TestRunConcStepLimit checks that a non-terminating multi-threaded
// program hits the aggregate step limit with a descriptive error instead
// of spinning forever.
func TestRunConcStepLimit(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("t0")
	b.Label("forever")
	b.Jmp("forever")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	_, err = RunConc(prog, []string{"t0"}, nil, nil, 100)
	if err == nil || !strings.Contains(err.Error(), "exceeded 100") {
		t.Fatalf("want step-limit error, got %v", err)
	}
}

// TestRunConcUnknownEntry checks the entry-resolution error path.
func TestRunConcUnknownEntry(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("t0")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunConc(prog, []string{"nope"}, nil, nil, 100); err == nil {
		t.Fatal("want unknown-entry error, got nil")
	}
}

// TestParseVariant round-trips every variant name and rejects junk.
func TestParseVariant(t *testing.T) {
	for v := Variant(0); v < NumVariants; v++ {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Fatalf("ParseVariant(%q) = %v, %v", v.String(), got, err)
		}
	}
	if _, err := ParseVariant("bogus"); err == nil {
		t.Fatal("ParseVariant accepted junk")
	}
}

// TestCheckConcurrentSeeds is the committed, always-on slice of the
// concurrent differential: a fixed seed sweep through the full check —
// SC oracle vs full machine, three fence variants plus the statically
// inferred lowering, naive vs event-driven clocks, hierarchy depths 2
// and 3 — that plain `go test` runs on every change.
// FuzzConcDifferential explores beyond these seeds.
func TestCheckConcurrentSeeds(t *testing.T) {
	depths := []int{2, 3}
	n := int64(12)
	if testing.Short() {
		n = 4
	}
	for seed := int64(0); seed < n; seed++ {
		rep, err := CheckConcurrent(seed, depths)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Threads < 2 || rep.Threads > concMaxThreads {
			t.Fatalf("seed %d: %d threads out of range", seed, rep.Threads)
		}
		if want := len(depths) * (NumVariants + 1) * (1 + len(concWorkerCounts)); len(rep.Runs) != want {
			t.Fatalf("seed %d: %d runs, want %d", seed, len(rep.Runs), want)
		}
		if rep.OracleSteps <= 0 {
			t.Fatalf("seed %d: oracle executed %d steps", seed, rep.OracleSteps)
		}
		if rep.InferredFences <= 0 || rep.InferredFlagged <= 0 {
			t.Fatalf("seed %d: inference rewrote %d fences, flagged %d accesses; every scenario synchronizes",
				seed, rep.InferredFences, rep.InferredFlagged)
		}
	}
}

// TestCheckConcurrentWide runs the full differential on one wide
// (>=16-thread) scenario: many-sharer directory state, worker
// partitioning across a machine wider than any narrow fuzz draw, and
// the SC oracle all have to agree. The committed fuzz corpus carries
// two wide seeds; this test keeps one of them in the always-on suite
// even when the corpus is not replayed.
func TestCheckConcurrentWide(t *testing.T) {
	if testing.Short() {
		t.Skip("wide concurrent differential is slow")
	}
	seed := concWideSeedBit | 3
	if n := GenConcurrent(seed).NumThreads; n < concWideMinThreads || n > concWideMaxThreads {
		t.Fatalf("wide seed generated %d threads, want [%d,%d]", n, concWideMinThreads, concWideMaxThreads)
	}
	rep, err := CheckConcurrent(seed, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Threads < concWideMinThreads {
		t.Fatalf("report says %d threads, want >= %d", rep.Threads, concWideMinThreads)
	}
}
