// Command sfence-report runs the full evaluation suite and regenerates
// the repository's paper-vs-measured record in one shot: EXPERIMENTS.md
// plus the machine-readable BENCH_*.json envelopes.
//
// The suite runs in a sfence.Lab session whose simulations are memoized
// in a content-addressed run cache (disabled with -no-cache), so
// experiments sharing baseline configurations are simulated once, and a
// second invocation against a warm cache re-runs nothing at all — the
// final "cache:" line reports exactly how many simulations were executed
// vs. served from the cache. Interrupting the run (Ctrl-C) cancels the
// in-flight simulations cleanly and writes no artifacts.
//
// Examples:
//
//	sfence-report                 # full scale, cache under .sfence-cache
//	sfence-report -quick          # CI-sized workloads
//	sfence-report -out docs -cache /tmp/sfc
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"sfence"
)

func main() {
	var (
		quick      = flag.Bool("quick", false, "reduced workload sizes")
		out        = flag.String("out", ".", "directory for EXPERIMENTS.md and BENCH_*.json")
		cacheDir   = flag.String("cache", ".sfence-cache", "run-cache directory")
		noCache    = flag.Bool("no-cache", false, "disable the run cache")
		progress   = flag.Bool("progress", true, "report per-experiment progress on stderr")
		parallel   = flag.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS)")
		workers    = flag.Int("workers", 0, "machine worker threads per simulation (0 = GOMAXPROCS left over by -parallel; 1 = sequential)")
		simperf    = flag.Bool("simperf", false, "also measure the simulator itself (naive vs. event-driven clock) and write BENCH_SIMPERF.json; wall-clock based, so not byte-deterministic")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		pprof.StopCPUProfile() // flush a partial profile before exiting
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	// Ctrl-C cancels the in-flight simulations mid-cycle-loop; nothing is
	// written on a cancelled run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	sc := sfence.Full
	if *quick {
		sc = sfence.Quick
	}
	// Like sfence-bench: give the simulation pool and the per-machine
	// worker pool complementary shares of GOMAXPROCS by default.
	w := *workers
	if w == 0 {
		pool := *parallel
		if pool <= 0 {
			pool = runtime.GOMAXPROCS(0)
		}
		if w = runtime.GOMAXPROCS(0) / pool; w < 1 {
			w = 1
		}
	}
	labOpts := []sfence.LabOption{
		sfence.WithScale(sc),
		sfence.WithParallelism(*parallel),
		sfence.WithWorkers(w),
	}
	if !*noCache {
		cache, err := sfence.NewRunCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		labOpts = append(labOpts, sfence.WithCache(cache))
	}
	if *progress {
		labOpts = append(labOpts, sfence.WithProgress(func(experiment string, done, total int) {
			fmt.Fprintf(os.Stderr, "\r%-24s %3d/%3d", experiment, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}))
	}
	lab := sfence.NewLab(labOpts...)

	suite, err := lab.RunSuite(ctx)
	if err != nil {
		fail(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	// Before overwriting, report what this run changes relative to the
	// artifacts already in the output directory — the committed baseline
	// when -out is the repo root.
	changes, err := suite.DiffBaseline(*out)
	if err != nil {
		fail(err)
	}
	printBaselineChanges(changes)
	paths, err := suite.WriteArtifacts(*out)
	if err != nil {
		fail(err)
	}
	mdPath := filepath.Join(*out, "EXPERIMENTS.md")
	if err := os.WriteFile(mdPath, []byte(suite.ExperimentsMD()), 0o644); err != nil {
		fail(err)
	}

	if *simperf {
		res, err := lab.Run(ctx, "simperf")
		if err != nil {
			fail(err)
		}
		data, err := res.JSON()
		if err != nil {
			fail(err)
		}
		spPath := filepath.Join(*out, "BENCH_SIMPERF.json")
		if err := os.WriteFile(spPath, data, 0o644); err != nil {
			fail(err)
		}
		paths = append(paths, spPath)
		rep, ok := res.Data.(sfence.SimPerfReport)
		if !ok {
			fail(errors.New("simperf payload has unexpected type"))
		}
		for _, r := range rep.Rows {
			if r.Workers > 0 {
				fmt.Fprintf(os.Stderr, "simperf: %-12s %d cores, workers=%d  %9d cycles  seq %6.1fms  par %6.1fms  %6.2fx\n",
					r.Bench, r.Cores, r.Workers, r.SimCycles,
					float64(r.SeqNs)/1e6, float64(r.EventNs)/1e6, r.ParSpeedup)
				continue
			}
			fmt.Fprintf(os.Stderr, "simperf: %-12s %-12s %9d cycles  naive %8.0f cyc/s  event %9.0f cyc/s  %6.2fx\n",
				r.Bench, r.Mode, r.SimCycles, r.NaiveCyclesPerSec, r.EventCyclesPerSec, r.Speedup)
		}
	}

	fmt.Printf("wrote %s and %d JSON artifacts to %s\n", mdPath, len(paths), *out)
	if suite.CacheStats != nil {
		st := suite.CacheStats
		fmt.Printf("cache: %d simulations run, %d hits (%d memory, %d disk)\n",
			st.Misses, st.Hits, st.MemHits, st.DiskHits)
		if st.WriteErrors > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d run records could not be persisted (results kept in memory)\n", st.WriteErrors)
		}
	} else {
		fmt.Println("cache: disabled")
	}
}

// printBaselineChanges summarizes what this run changed relative to the
// artifacts already on disk. Changed artifacts list their first few
// leaf-level value deltas (full paths into the JSON document); a clean
// regeneration prints a single "all N artifacts unchanged" line — the
// byte-stability the warm-cache CI smoke relies on, now legible per run.
func printBaselineChanges(changes []sfence.BaselineChange) {
	const maxDeltas = 4
	var unchanged, fresh int
	for _, c := range changes {
		switch c.Status {
		case "unchanged":
			unchanged++
			continue
		case "new":
			fresh++
			fmt.Printf("baseline: %s new (no committed artifact)\n", c.Artifact)
			continue
		}
		fmt.Printf("baseline: %s changed (%d values)\n", c.Artifact, len(c.Deltas))
		for i, d := range c.Deltas {
			if i == maxDeltas {
				fmt.Printf("baseline:   ... %d more\n", len(c.Deltas)-maxDeltas)
				break
			}
			fmt.Printf("baseline:   %s\n", d)
		}
	}
	if unchanged == len(changes) {
		fmt.Printf("baseline: all %d artifacts unchanged\n", unchanged)
	} else {
		fmt.Printf("baseline: %d unchanged, %d changed, %d new of %d artifacts\n",
			unchanged, len(changes)-unchanged-fresh, fresh, len(changes))
	}
}
