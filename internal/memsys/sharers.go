package memsys

import "math/bits"

// MaxCores bounds the hierarchy's core count. The directory's sharer
// sets, the per-core stat arrays, and the machine's broadcast paths are
// all O(sharers) or O(active cores), so the bound is a sanity rail, not
// a structural limit like the old uint64 bitmask's 64.
const MaxCores = 4096

// sharerSet is the directory's per-line sharer record: which cores'
// private levels may hold a copy. Machines with at most 64 cores live
// entirely in the inline word (the historical representation, zero
// allocations); larger machines extend into a paged bitmap with one
// word per 64 cores, allocated lazily on the first extended add and
// reused across resets so steady-state coherence traffic stays
// allocation-free. Iteration and population count are O(sharers), not
// O(cores): the common case of a line shared by a handful of cores in a
// 256-core machine touches a handful of set bits.
type sharerSet struct {
	low uint64   // cores 0..63
	ext []uint64 // cores 64..; word i covers cores 64(i+1)..64(i+2)-1
}

// add inserts core into the set.
func (s *sharerSet) add(core int) {
	if core < 64 {
		s.low |= 1 << uint(core)
		return
	}
	w := core/64 - 1
	if w >= len(s.ext) {
		ext := make([]uint64, w+1)
		copy(ext, s.ext)
		s.ext = ext
	}
	s.ext[w] |= 1 << uint(core%64)
}

// contains reports membership.
func (s *sharerSet) contains(core int) bool {
	if core < 64 {
		return s.low&(1<<uint(core)) != 0
	}
	w := core/64 - 1
	return w < len(s.ext) && s.ext[w]&(1<<uint(core%64)) != 0
}

// clear empties the set, keeping any extended pages for reuse.
func (s *sharerSet) clear() {
	s.low = 0
	for i := range s.ext {
		s.ext[i] = 0
	}
}

// only resets the set to exactly {core}.
func (s *sharerSet) only(core int) {
	s.clear()
	s.add(core)
}

// lone reports whether the set is exactly {core}.
func (s *sharerSet) lone(core int) bool {
	if core < 64 {
		if s.low != 1<<uint(core) {
			return false
		}
	} else if s.low != 0 {
		return false
	}
	for i, w := range s.ext {
		switch {
		case core >= 64 && i == core/64-1:
			if w != 1<<uint(core%64) {
				return false
			}
		case w != 0:
			return false
		}
	}
	return true
}

// anyBesides reports whether the set names any core other than core.
func (s *sharerSet) anyBesides(core int) bool {
	low := s.low
	if core < 64 {
		low &^= 1 << uint(core)
	}
	if low != 0 {
		return true
	}
	for i, w := range s.ext {
		if core >= 64 && i == core/64-1 {
			w &^= 1 << uint(core%64)
		}
		if w != 0 {
			return true
		}
	}
	return false
}

// fill sets cores 0..n-1 — the conservative "assume every core" mask a
// middle shared level falls back to when the directory entry is gone.
func (s *sharerSet) fill(n int) {
	s.clear()
	if n >= 64 {
		s.low = ^uint64(0)
	} else {
		s.low = 1<<uint(n) - 1
	}
	for c := 64; c < n; c += 64 {
		w := c/64 - 1
		if w >= len(s.ext) {
			ext := make([]uint64, (n+63)/64-1)
			copy(ext, s.ext)
			s.ext = ext
		}
		if rem := n - c; rem >= 64 {
			s.ext[w] = ^uint64(0)
		} else {
			s.ext[w] = 1<<uint(rem) - 1
		}
	}
}

// forEach calls f for every member in ascending core order. It walks set
// bits only (bits.TrailingZeros64 per member), so a sparsely shared line
// costs O(sharers) regardless of the machine's core count.
func (s *sharerSet) forEach(f func(core int)) {
	for w := s.low; w != 0; w &= w - 1 {
		f(bits.TrailingZeros64(w))
	}
	for i, ew := range s.ext {
		base := 64 * (i + 1)
		for w := ew; w != 0; w &= w - 1 {
			f(base + bits.TrailingZeros64(w))
		}
	}
}

// members returns the set as a sorted core-index slice.
func (s *sharerSet) members() []int {
	var out []int
	s.forEach(func(c int) { out = append(out, c) })
	return out
}

// clone returns an independent copy (directory snapshots for tests).
func (s *sharerSet) clone() sharerSet {
	c := sharerSet{low: s.low}
	if len(s.ext) > 0 {
		c.ext = append([]uint64(nil), s.ext...)
	}
	return c
}
