package kernels

import (
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
)

func init() {
	register(Info{
		Name:        "wsq",
		ScopeType:   "class",
		Group:       "lock-free",
		Description: "Chase-Lev work-stealing queue [10]; class-scoped fences inside put/take/steal",
		Build:       buildWSQ,
	})
}

// buildWSQ builds the paper's wsq harness: the owner thread puts Ops tasks
// and then drains its deque with take; thief threads steal concurrently.
// Every consumer records the tasks it obtained, and the verifier checks
// that each task was extracted exactly once — the deque's correctness
// contract. The Workload knob inserts private computation between queue
// operations (the paper's Figure 12 x-axis).
func buildWSQ(opts Options) (*Kernel, error) {
	opts = opts.withDefaults(4, 150, 2)
	if opts.Threads < 2 || opts.Threads > 16 {
		return nil, fmt.Errorf("wsq: threads %d out of range [2,16]", opts.Threads)
	}
	s := newScopeCtx(opts, isa.ScopeClass)
	n := int64(opts.Ops)
	capWords := int64(64)
	for capWords < n+16 {
		capWords <<= 1
	}
	mask := capWords - 1

	lay := memsys.NewLayout(4096, 48<<20)
	qdesc := lay.Array("qdesc", wsqDescStride/8)
	lay.AlignTo(64)
	buf := lay.Array("buf", capWords)
	lay.AlignTo(64)
	done := lay.Word("done")
	lay.AlignTo(64)
	recCnt := lay.Array("recCnt", int64(opts.Threads)*8) // one line per thread
	recBase := make([]int64, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		lay.AlignTo(64)
		recBase[t] = lay.Array(fmt.Sprintf("rec%d", t), n+8)
	}
	workBase := make([]int64, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		lay.AlignTo(64)
		workBase[t] = lay.Array(fmt.Sprintf("work%d", t), workRegionWords)
	}

	const (
		rQ      = isa.R20 // queue descriptor
		rTask   = isa.R21
		rN      = isa.R22
		rRec    = isa.R23 // record base
		rRecCnt = isa.R24 // record count (register)
		rCntA   = isa.R25 // record count store address
		rDone   = isa.R26
		rTmp    = isa.R27
		rNeg1   = isa.R28
	)

	record := func(b *isa.Builder) {
		b.ShlI(rTmp, rRecCnt, 3)
		b.Add(rTmp, rRec, rTmp)
		b.Store(rTmp, 0, rTask)
		b.AddI(rRecCnt, rRecCnt, 1)
	}

	b := isa.NewBuilder()
	b.Entry("owner")
	b.Inline(func(b *isa.Builder) {
		b.MovI(rRecCnt, 0)
		b.MovI(rTask, 1)
		// Phase 1: put all tasks with workload in between.
		b.Label("putloop")
		emitWSQPut(b, s, rQ, rTask, mask)
		b.Inline(func(b *isa.Builder) { emitWorkload(b, opts.Workload) })
		b.AddI(rTask, rTask, 1)
		b.MovI(rTmp, n+1)
		b.Blt(rTask, rTmp, "putloop")
		// Phase 2: drain with take.
		b.Label("takeloop")
		emitWSQTake(b, s, rQ, rTask, mask)
		b.Beq(rTask, isa.R0, "finish")
		b.Inline(record)
		b.Inline(func(b *isa.Builder) { emitWorkload(b, opts.Workload) })
		b.Jmp("takeloop")
		b.Label("finish")
		b.Store(rCntA, 0, rRecCnt)
		b.MovI(rTmp, 1)
		b.Store(rDone, 0, rTmp)
		b.Halt()
	})

	b.Entry("thief")
	b.Inline(func(b *isa.Builder) {
		b.MovI(rRecCnt, 0)
		b.MovI(rNeg1, -1)
		b.Label("stealloop")
		emitWSQSteal(b, s, rQ, rTask, mask)
		b.Beq(rTask, rNeg1, "stealloop") // ABORT: retry
		b.Beq(rTask, isa.R0, "checkdone")
		b.Inline(record)
		b.Inline(func(b *isa.Builder) { emitWorkload(b, opts.Workload) })
		b.Jmp("stealloop")
		b.Label("checkdone")
		b.Load(rTmp, rDone, 0)
		b.Beq(rTmp, isa.R0, "stealloop")
		b.Store(rCntA, 0, rRecCnt)
		b.Halt()
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	threads := make([]machine.Thread, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		entry := "thief"
		if t == 0 {
			entry = "owner"
		}
		threads[t] = machine.Thread{Entry: entry, Regs: map[isa.Reg]int64{
			rQ: qdesc, rRec: recBase[t], rCntA: recCnt + int64(t)*64, rDone: done,
			rN:          n,
			regWorkBase: workBase[t], regWorkPtr: int64(t*192) % (workRegionWords * 8),
		}}
	}

	return &Kernel{
		Name:    "wsq",
		Program: p,
		Regions: regionsFor(lay, func(name string) (scopecheck.Sharing, int) {
			if t, ok := ownedSuffix(name, "rec"); ok {
				return scopecheck.Private, t
			}
			if t, ok := ownedSuffix(name, "work"); ok {
				return scopecheck.Private, t
			}
			return scopecheck.SharedRW, -1
		}),
		Threads: threads,
		MemInit: map[int64]int64{qdesc + wsqBufOff: buf},
		Verify: func(img *memsys.Image) error {
			seen := make(map[int64]int, n)
			for t := 0; t < opts.Threads; t++ {
				cnt := img.Load(recCnt + int64(t)*64)
				if cnt < 0 || cnt > n {
					return fmt.Errorf("wsq: thread %d recorded %d tasks", t, cnt)
				}
				for i := int64(0); i < cnt; i++ {
					seen[img.Load(recBase[t]+i*8)]++
				}
			}
			if int64(len(seen)) != n {
				return fmt.Errorf("wsq: %d distinct tasks extracted, want %d", len(seen), n)
			}
			for task := int64(1); task <= n; task++ {
				if seen[task] != 1 {
					return fmt.Errorf("wsq: task %d extracted %d times", task, seen[task])
				}
			}
			return nil
		},
	}, nil
}
