package graph

import (
	"testing"
	"testing/quick"
)

func TestRandomConnectedStructure(t *testing.T) {
	g, err := RandomConnected(100, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.V != 100 {
		t.Errorf("V = %d", g.V)
	}
	// Symmetric adjacency.
	for v := 0; v < g.V; v++ {
		for _, nb := range g.Neighbors(v) {
			if !g.HasEdge(nb, int32(v)) {
				t.Fatalf("edge (%d,%d) not symmetric", v, nb)
			}
			if int(nb) == v {
				t.Fatalf("self loop at %d", v)
			}
		}
	}
	// Connected: BFS reaches all.
	seen := make([]bool, g.V)
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(int(v)) {
			if !seen[nb] {
				seen[nb] = true
				count++
				queue = append(queue, nb)
			}
		}
	}
	if count != g.V {
		t.Errorf("graph not connected: reached %d of %d", count, g.V)
	}
}

func TestRandomConnectedDeterministic(t *testing.T) {
	a, _ := RandomConnected(64, 4, 7)
	b, _ := RandomConnected(64, 4, 7)
	if len(a.Col) != len(b.Col) {
		t.Fatal("different edge counts for same seed")
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] {
			t.Fatal("different adjacency for same seed")
		}
	}
}

func TestRandomConnectedRejectsBadArgs(t *testing.T) {
	if _, err := RandomConnected(1, 4, 0); err == nil {
		t.Error("1-vertex graph accepted")
	}
	if _, err := RandomConnected(10, 1, 0); err == nil {
		t.Error("degree 1 accepted")
	}
}

func TestVerifySpanningTreeAcceptsBFSTree(t *testing.T) {
	g, _ := RandomConnected(200, 5, 3)
	parent := make([]int64, g.V)
	seen := make([]bool, g.V)
	queue := []int32{0}
	seen[0] = true
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, nb := range g.Neighbors(int(v)) {
			if !seen[nb] {
				seen[nb] = true
				parent[nb] = int64(v)
				queue = append(queue, nb)
			}
		}
	}
	if err := VerifySpanningTree(g, 0, parent); err != nil {
		t.Errorf("valid BFS tree rejected: %v", err)
	}
}

func TestVerifySpanningTreeRejectsCycle(t *testing.T) {
	g, _ := RandomConnected(10, 4, 3)
	parent := make([]int64, g.V)
	// Find two adjacent vertices and make them each other's parent.
	a := int32(1)
	b := g.Neighbors(1)[0]
	parent[a] = int64(b)
	parent[b] = int64(a)
	if err := VerifySpanningTree(g, 0, parent); err == nil {
		t.Error("cyclic parent structure accepted")
	}
}

func TestVerifySpanningTreeRejectsNonEdgeParent(t *testing.T) {
	g, _ := RandomConnected(50, 3, 9)
	parent := make([]int64, g.V)
	// Point some vertex at a non-neighbor.
	var victim, nonNb int32 = -1, -1
	for v := int32(1); v < int32(g.V); v++ {
		for w := int32(0); w < int32(g.V); w++ {
			if w != v && !g.HasEdge(v, w) {
				victim, nonNb = v, w
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Skip("graph too dense for the test")
	}
	parent[victim] = int64(nonNb)
	if err := VerifySpanningTree(g, 0, parent); err == nil {
		t.Error("non-edge parent accepted")
	}
}

func TestReachClosureSingleSourceCoversComponent(t *testing.T) {
	g, _ := RandomConnected(128, 4, 11)
	reach := ReachClosure(g, []int32{5})
	for v := 0; v < g.V; v++ {
		if reach[v] != 1 {
			t.Fatalf("connected graph: vertex %d not reached (%b)", v, reach[v])
		}
	}
}

func TestReachClosureMultipleSources(t *testing.T) {
	g, _ := RandomConnected(64, 4, 13)
	reach := ReachClosure(g, []int32{1, 2, 3})
	for v := 0; v < g.V; v++ {
		if reach[v] != 0b111 {
			t.Fatalf("vertex %d reach = %b, want 111 (connected graph)", v, reach[v])
		}
	}
}

// Property: generated graphs have no duplicate neighbors and sorted
// adjacency (the generator's contract).
func TestAdjacencySortedUnique(t *testing.T) {
	f := func(seed int64) bool {
		g, err := RandomConnected(50, 4, seed)
		if err != nil {
			return false
		}
		for v := 0; v < g.V; v++ {
			nbs := g.Neighbors(v)
			for i := 1; i < len(nbs); i++ {
				if nbs[i-1] >= nbs[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
