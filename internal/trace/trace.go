// Package trace provides pipeline observability sinks for the simulator:
// a human-readable text tracer (one line per pipeline event, in the style
// of academic simulator debug logs), a counting tracer, and a counting
// observer. The tracers receive full per-cycle event detail and therefore
// pin the machine's per-cycle slow path; the CountingObserver implements
// stats.Observer — counter-only, so the two-speed clock keeps
// fast-forwarding with it attached and credits skipped stall cycles in
// bulk.
package trace

import (
	"fmt"
	"io"
	"sync"

	"sfence/internal/cpu"
	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/stats"
)

// TextTracer writes one line per pipeline event to an io.Writer.
//
//	cycle    core event        seq   instruction            detail
//	    42   c1   execute      #17   load r4, [r3+0]        readyAt=354
type TextTracer struct {
	mu    sync.Mutex
	w     io.Writer
	limit int64 // stop after this cycle (0 = no limit)
	lines uint64
}

// NewTextTracer builds a tracer writing to w; if limitCycles > 0, events
// after that cycle are dropped (keeps traces of long runs bounded).
func NewTextTracer(w io.Writer, limitCycles int64) *TextTracer {
	return &TextTracer{w: w, limit: limitCycles}
}

// Lines returns the number of events written.
func (t *TextTracer) Lines() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lines
}

// Trace implements cpu.Tracer.
func (t *TextTracer) Trace(cycle int64, core int, ev cpu.TraceEvent, seq uint64, in isa.Instruction, detail int64) {
	if t.limit > 0 && cycle > t.limit {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.lines++
	var extra string
	switch ev {
	case cpu.TraceDecode:
		extra = fmt.Sprintf("pc=%d", detail)
	case cpu.TraceExecute, cpu.TraceSBIssue:
		extra = fmt.Sprintf("readyAt=%d", detail)
	case cpu.TraceComplete, cpu.TraceRetire:
		extra = fmt.Sprintf("val=%d", detail)
	case cpu.TraceSBComplete:
		extra = fmt.Sprintf("addr=%d", detail)
	}
	fmt.Fprintf(t.w, "%8d  c%-2d %-12s #%-6d %-28s %s\n", cycle, core, ev, seq, in.String(), extra)
}

// CountingTracer tallies events by kind; useful in tests and for quick
// profiling without I/O cost.
type CountingTracer struct {
	mu     sync.Mutex
	counts map[cpu.TraceEvent]uint64
}

// NewCountingTracer builds an empty counting tracer.
func NewCountingTracer() *CountingTracer {
	return &CountingTracer{counts: make(map[cpu.TraceEvent]uint64)}
}

// Trace implements cpu.Tracer.
func (t *CountingTracer) Trace(_ int64, _ int, ev cpu.TraceEvent, _ uint64, _ isa.Instruction, _ int64) {
	t.mu.Lock()
	t.counts[ev]++
	t.mu.Unlock()
}

// Count returns the tally for one event kind.
func (t *CountingTracer) Count(ev cpu.TraceEvent) uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[ev]
}

// Attach installs the tracer on every core of a machine.
func Attach(m *machine.Machine, t cpu.Tracer) {
	for i := 0; i < m.Cores(); i++ {
		m.Core(i).SetTracer(t)
	}
}

// CountingObserver tallies pipeline events by kind through the
// counter-only stats.Observer interface. Unlike CountingTracer it does
// not pin the machine's slow path: fast-forwarded stall cycles arrive as
// bulk credits, and the final tallies are identical to what per-cycle
// stepping would have produced (asserted by the clock equivalence tests).
type CountingObserver struct {
	mu     sync.Mutex
	counts map[cpu.TraceEvent]uint64
}

// NewCountingObserver builds an empty counting observer.
func NewCountingObserver() *CountingObserver {
	return &CountingObserver{counts: make(map[cpu.TraceEvent]uint64)}
}

// Observe implements stats.Observer.
func (o *CountingObserver) Observe(_ int, event uint8, n uint64) {
	o.mu.Lock()
	o.counts[cpu.TraceEvent(event)] += n
	o.mu.Unlock()
}

// Count returns the tally for one event kind.
func (o *CountingObserver) Count(ev cpu.TraceEvent) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.counts[ev]
}

// Counts returns a copy of every tally.
func (o *CountingObserver) Counts() map[cpu.TraceEvent]uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[cpu.TraceEvent]uint64, len(o.counts))
	for ev, n := range o.counts {
		out[ev] = n
	}
	return out
}

// AttachObserver installs the counter-only observer on every core of a
// machine.
func AttachObserver(m *machine.Machine, o stats.Observer) {
	for i := 0; i < m.Cores(); i++ {
		m.Core(i).SetObserver(o)
	}
}
