package litmus

import (
	"sfence/internal/isa"
	"sfence/internal/machine"
)

// UnderScopedMutants returns deliberately under-scoped variants of the
// store-buffering litmus — the negative controls for the static scope
// analyzer. Each takes a correctly scoped SB and weakens exactly one
// annotation, so scopecheck.Verify must flag an Error AND the relaxed
// (0,0) outcome must be dynamically observable: the static and dynamic
// oracles have to agree that the scope leaks. They are not part of All()
// (which feeds the golden outcome file); the scope gate and
// mutants_test.go iterate them separately.
func UnderScopedMutants() []*Test {
	return []*Test{
		SetSBUnflaggedStores(),
		ClassSBWrongClass(),
	}
}

// StaticOnlyMutants returns under-scoped programs whose leak the
// deterministic machine's timing happens to mask: the static analyzer
// must still flag them, because under-scoping is a property of the
// program, not of one schedule. SetSBOneSideUnflagged's leak surfaces
// only as the SC-legal (1,0) outcome here — a different cache timing
// would expose it, and only the static check catches that class of bug.
func StaticOnlyMutants() []*Test {
	return []*Test{SetSBOneSideUnflagged()}
}

// setSBThread emits one SB thread with independently controllable store
// and load flags: X = 1; sfence(set); r = Y; result = r.
func setSBThread(b *isa.Builder, store, load, result int64, flagStore, flagLoad bool) {
	b.MovI(isa.R1, store)
	b.MovI(isa.R2, 1)
	if flagStore {
		b.SetFlagged()
	}
	b.Store(isa.R1, 0, isa.R2)
	b.Fence(isa.ScopeSet)
	b.MovI(isa.R3, load)
	if flagLoad {
		b.SetFlagged()
	}
	b.Load(isa.R4, isa.R3, 0)
	b.MovI(isa.R5, result)
	b.Store(isa.R5, 0, isa.R4)
	b.Halt()
}

// SetSBUnflaggedStores is set-scoped SB with the loads flagged but both
// stores left out of the set: the S-Fences have nothing pending to drain,
// so the stores slip past them and the forbidden SB outcome reappears.
// Statically, each store is an escaping pending access inside the set
// domain (its location is flagged by the other thread's load) that the
// fence's scope fails to cover — an Error.
func SetSBUnflaggedStores() *Test {
	b := isa.NewBuilder()
	b.Entry("p0")
	b.Inline(func(b *isa.Builder) { setSBThread(b, AddrX, AddrY, AddrR1, false, true) })
	b.Entry("p1")
	b.Inline(func(b *isa.Builder) { setSBThread(b, AddrY, AddrX, AddrR2, false, true) })
	return &Test{
		Name:    "SB(set, stores unflagged — under-scoped mutant)",
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			return false // under-scoped by design: nothing is promised
		},
	}
}

// SetSBOneSideUnflagged weakens only thread p1's store: p0 is annotated
// correctly, so the leak is one-sided — the minimal mutation distance
// from a sound program.
func SetSBOneSideUnflagged() *Test {
	b := isa.NewBuilder()
	b.Entry("p0")
	b.Inline(func(b *isa.Builder) { setSBThread(b, AddrX, AddrY, AddrR1, true, true) })
	b.Entry("p1")
	b.Inline(func(b *isa.Builder) { setSBThread(b, AddrY, AddrX, AddrR2, false, true) })
	return &Test{
		Name:    "SB(set, one store unflagged — under-scoped mutant)",
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			return false
		},
	}
}

// ClassSBWrongClass is class-scoped SB where the stores sit in class 1
// but the fence scopes class 2 (which holds only the loads): a
// well-bracketed program whose fence nonetheless orders the wrong class.
// Unlike ScopedSBLeaky the stores ARE inside a bracket — the mutation is
// the class mismatch, not a missing bracket.
func ClassSBWrongClass() *Test {
	b := isa.NewBuilder()
	thread := func(store, load, result int64) func(*isa.Builder) {
		return func(b *isa.Builder) {
			b.MovI(isa.R1, store)
			b.MovI(isa.R2, 1)
			b.FsStart(1)
			b.Store(isa.R1, 0, isa.R2) // class 1
			b.FsEnd(1)
			b.FsStart(2)
			b.Fence(isa.ScopeClass) // orders class 2 only: not the store
			b.MovI(isa.R3, load)
			b.Load(isa.R4, isa.R3, 0) // class 2
			b.FsEnd(2)
			b.MovI(isa.R5, result)
			b.Store(isa.R5, 0, isa.R4)
			b.Halt()
		}
	}
	b.Entry("p0")
	b.Inline(thread(AddrX, AddrY, AddrR1))
	b.Entry("p1")
	b.Inline(thread(AddrY, AddrX, AddrR2))
	return &Test{
		Name:    "SB(class, fence scopes wrong class — under-scoped mutant)",
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			return false
		},
	}
}
