package results

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sfence/internal/exp"
	"sfence/internal/kernels"
	"sfence/internal/machine"
)

func roundTrip[T any](t *testing.T, kind string, data T) {
	t.Helper()
	env := NewEnvelope(kind, "title: "+kind, exp.Quick, data)
	raw, err := Marshal(env)
	if err != nil {
		t.Fatalf("%s: marshal: %v", kind, err)
	}
	back, err := Unmarshal[T](raw)
	if err != nil {
		t.Fatalf("%s: unmarshal: %v", kind, err)
	}
	if !reflect.DeepEqual(env, back) {
		t.Errorf("%s: round trip diverged:\n got %+v\nwant %+v", kind, back, env)
	}
	raw2, err := Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Errorf("%s: re-marshal not byte-identical", kind)
	}
}

// Every envelope payload type must survive a JSON round trip exactly.
func TestEnvelopeRoundTrips(t *testing.T) {
	roundTrip(t, KindFigure12, []exp.SpeedupSeries{
		{Bench: "dekker", Workload: []int{1, 2}, Speedup: []float64{1.1, 1.25}},
	})
	roundTrip(t, KindFigure13, []exp.BenchGroup{
		{Bench: "pst", Bars: []exp.Bar{{Label: "T", FenceStall: 0.2, Others: 0.8}}},
	})
	roundTrip(t, KindAblations, []AblationSet{
		{Name: "fsb-entries", Title: "FSB entry count", Rows: []exp.AblationRow{
			{Bench: "wsq", Param: "FSBEntries", Value: 4, Cycles: 1234, Stall: 0.125},
		}},
	})
	roundTrip(t, KindTableIII, exp.TableIII(machine.DefaultConfig()))
	roundTrip(t, KindTableIV, TableIVInfos())
	roundTrip(t, KindHardwareCost, exp.HardwareCost(machine.DefaultConfig().Core))
}

func TestUnmarshalRejectsForeignSchema(t *testing.T) {
	env := NewEnvelope(KindFigure12, "t", exp.Quick, []exp.SpeedupSeries{})
	env.Schema = SchemaVersion + 1
	raw, err := Marshal(env)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal[[]exp.SpeedupSeries](raw); err == nil {
		t.Error("foreign schema version accepted")
	}
}

// A kernels.Result (the cached value) must survive the disk format
// exactly, so cached and uncached runs are indistinguishable.
func TestRunRecordRoundTrip(t *testing.T) {
	opts := kernels.Options{Mode: kernels.Scoped, Threads: 2, Ops: 5, Workload: 1}
	cfg := machine.DefaultConfig()
	res, err := exp.DirectRun(context.Background(), "dekker", opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	c, err := NewRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := Key("dekker", opts, cfg)
	if err := c.storeDisk(key, "dekker", opts, cfg, res); err != nil {
		t.Fatal(err)
	}
	back, ok := c.loadDisk(key, "dekker")
	if !ok {
		t.Fatal("stored record not loadable")
	}
	if !reflect.DeepEqual(res, back) {
		t.Errorf("run record diverged:\n got %+v\nwant %+v", back, res)
	}
}

func TestKeyIsContentAddressed(t *testing.T) {
	opts := kernels.Options{Mode: kernels.Scoped, Threads: 2, Ops: 5}
	cfg := machine.DefaultConfig()
	k1 := Key("dekker", opts, cfg)
	if k2 := Key("dekker", opts, cfg); k2 != k1 {
		t.Error("identical inputs hashed differently")
	}
	if k2 := Key("wsq", opts, cfg); k2 == k1 {
		t.Error("different benchmark, same key")
	}
	opts2 := opts
	opts2.Ops = 6
	if k2 := Key("dekker", opts2, cfg); k2 == k1 {
		t.Error("different options, same key")
	}
	cfg2 := cfg
	cfg2.Core.FSBEntries = 8
	if k2 := Key("dekker", opts, cfg2); k2 == k1 {
		t.Error("different config, same key")
	}
}

// The memory tier must serve repeats without re-simulating, and the
// cached result must be identical to the fresh one.
func TestMemCacheHit(t *testing.T) {
	c := NewMemCache()
	opts := kernels.Options{Mode: kernels.Traditional, Threads: 2, Ops: 5, Workload: 1}
	cfg := machine.DefaultConfig()
	first, err := c.Run(context.Background(), "dekker", opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := c.Run(context.Background(), "dekker", opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Error("cached result differs from fresh result")
	}
	st := c.Stats()
	if st.Misses != 1 || st.MemHits != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want 1 miss + 1 memory hit", st)
	}
}

// A second cache instance over the same directory must serve from disk
// with zero simulations, byte-identically.
func TestDiskCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	opts := kernels.Options{Mode: kernels.Scoped, Threads: 2, Ops: 5, Workload: 1}
	cfg := machine.DefaultConfig()

	cold, err := NewRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := cold.Run(context.Background(), "dekker", opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Misses != 1 {
		t.Fatalf("cold stats = %+v, want 1 miss", st)
	}

	warm, err := NewRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := warm.Run(context.Background(), "dekker", opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := warm.Stats()
	if st.Misses != 0 || st.DiskHits != 1 {
		t.Errorf("warm stats = %+v, want 0 misses + 1 disk hit", st)
	}
	b1, err := Marshal(res1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Marshal(res2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("warm-cache result not byte-identical to cold run")
	}

	// Corrupt the record: the cache must fall back to simulating.
	files, err := filepath.Glob(filepath.Join(dir, "run_*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("glob: %v, files=%v", err, files)
	}
	if err := os.WriteFile(files[0], []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	repaired, err := NewRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := repaired.Run(context.Background(), "dekker", opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := repaired.Stats(); st.Misses != 1 {
		t.Errorf("corrupt record not treated as miss: %+v", st)
	}
	if !reflect.DeepEqual(res1, res3) {
		t.Error("re-simulated result diverged")
	}
}

// The cache must dedupe concurrent requests for one key: exactly one
// simulation, everyone gets the same result.
func TestCacheCoalescesConcurrentRequests(t *testing.T) {
	c := NewMemCache()
	opts := kernels.Options{Mode: kernels.Scoped, Threads: 2, Ops: 5, Workload: 1}
	cfg := machine.DefaultConfig()
	const n = 8
	resCh := make(chan kernels.Result, n)
	errCh := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			res, err := c.Run(context.Background(), "dekker", opts, cfg)
			resCh <- res
			errCh <- err
		}()
	}
	var first kernels.Result
	for i := 0; i < n; i++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
		res := <-resCh
		if i == 0 {
			first = res
			continue
		}
		if !reflect.DeepEqual(first, res) {
			t.Error("coalesced results diverged")
		}
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("%d simulations for one key, want 1", st.Misses)
	}
	if st.Hits != n-1 {
		t.Errorf("hits = %d, want %d", st.Hits, n-1)
	}
}

// A session with the cache's Run installed as its runner must memoize
// every simulation of an experiment (what RunCache.Install did before
// sessions owned their runner).
func TestCacheAsSessionRunner(t *testing.T) {
	c := NewMemCache()
	s := exp.NewSession(c.Run, nil, 0)
	series, err := s.Figure12(context.Background(), exp.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	st := c.Stats()
	if st.Misses == 0 {
		t.Error("session cache saw no simulations")
	}
	// Re-running the same figure must be fully served from memory.
	if _, err := s.Figure12(context.Background(), exp.Quick); err != nil {
		t.Fatal(err)
	}
	st2 := c.Stats()
	if st2.Misses != st.Misses {
		t.Errorf("repeat run simulated %d new configs, want 0", st2.Misses-st.Misses)
	}
}

// End-to-end acceptance: a full suite against a cold disk cache, then a
// second suite against the warm cache, must produce byte-identical
// artifacts and EXPERIMENTS.md with zero duplicate simulations.
func TestSuiteWarmCacheDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	dir := t.TempDir()
	run := func() (*Suite, []Artifact, string) {
		cache, err := NewRunCache(dir)
		if err != nil {
			t.Fatal(err)
		}
		suite, err := RunSuite(context.Background(), SuiteOptions{Scale: exp.Quick, Cache: cache})
		if err != nil {
			t.Fatal(err)
		}
		arts, err := suite.Artifacts()
		if err != nil {
			t.Fatal(err)
		}
		return suite, arts, suite.ExperimentsMD()
	}

	cold, coldArts, coldMD := run()
	if cold.CacheStats == nil || cold.CacheStats.Misses == 0 {
		t.Fatal("cold suite ran no simulations")
	}
	// Overlapping baselines (Figures 13/15/16 share the Table III T/S
	// runs) must already be deduplicated within the cold run.
	if cold.CacheStats.Hits == 0 {
		t.Error("cold suite found no overlapping configurations to dedupe")
	}

	warm, warmArts, warmMD := run()
	if warm.CacheStats.Misses != 0 {
		t.Errorf("warm suite simulated %d configs, want 0", warm.CacheStats.Misses)
	}
	if len(coldArts) != len(warmArts) {
		t.Fatalf("artifact counts differ: %d vs %d", len(coldArts), len(warmArts))
	}
	for i := range coldArts {
		if coldArts[i].Name != warmArts[i].Name || !bytes.Equal(coldArts[i].Data, warmArts[i].Data) {
			t.Errorf("artifact %s not byte-identical across cache tiers", coldArts[i].Name)
		}
	}
	if coldMD != warmMD {
		t.Error("EXPERIMENTS.md not byte-identical across cache tiers")
	}
	for _, c := range Claims() {
		if _, ok := c.Check(cold); !ok {
			t.Errorf("claim not reproduced at quick scale: %s", c.Text)
		}
	}
}
