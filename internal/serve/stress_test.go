package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"sfence"
	"sfence/internal/exp"
	"sfence/internal/results"
	"sfence/internal/serve"
)

// stressIDs is the per-tenant job mix: two real simulation sweeps whose
// configurations overlap (both run wsq), plus two registry-only rows, so
// the shared cache sees concurrent misses, coalesced duplicates, and
// pure-metadata jobs at once.
var stressIDs = []string{simExperiment, "ablation/fsb-entries", "table4", "hwcost"}

// expectedEnvelopes computes the ground-truth artifact bytes for ids with
// a direct, private-cache lab run.
func expectedEnvelopes(t *testing.T, ids []string) map[string][]byte {
	t.Helper()
	cache, err := sfence.NewRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lab := sfence.NewLab(sfence.WithScale(sfence.Quick), sfence.WithCache(cache))
	want := make(map[string][]byte, len(ids))
	for _, id := range ids {
		res, err := lab.Run(context.Background(), id)
		if err != nil {
			t.Fatalf("direct lab.Run(%s): %v", id, err)
		}
		want[id], err = res.JSON()
		if err != nil {
			t.Fatal(err)
		}
	}
	return want
}

// settleGoroutines polls until the goroutine count drops back to within
// slack of the baseline, failing with a full stack dump if it never does
// (a leaked worker, watcher, or filler).
func settleGoroutines(t *testing.T, baseline, slack int) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+slack {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines never settled: %d, baseline %d (+%d slack)\n%s",
				runtime.NumGoroutine(), baseline, slack, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// checkNoPartialArtifacts walks the cache directory and fails on any
// leftover temp file or syntactically invalid record: whatever the
// tenants, disconnects, and evictions did, every surviving disk record
// must be a complete, parseable artifact.
func checkNoPartialArtifacts(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			t.Errorf("partial artifact left behind: %s", name)
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("read %s: %v", name, err)
			continue
		}
		if !json.Valid(data) {
			t.Errorf("cache record %s is not valid JSON (%d bytes)", name, len(data))
		}
	}
}

// TestServeMultiTenantStress runs overlapping jobs from several tenants
// against one server with a deliberately tiny shared cache budget, with
// mid-stream disconnects thrown in, and checks the three invariants that
// make the service safe to share: every completed envelope is
// byte-identical to a direct run, the cache directory holds no partial
// artifacts, and no goroutines leak once the server is closed. Run it
// under -race: the point is the interleavings, not the results.
func TestServeMultiTenantStress(t *testing.T) {
	want := expectedEnvelopes(t, stressIDs)

	baseline := runtime.NumGoroutine()
	cacheDir := t.TempDir()
	// 512 bytes cannot hold the job mix's records, so the LRU evicts
	// continuously while coalesced loads are in flight.
	cache, err := sfence.NewRunCacheLimited(cacheDir, 512)
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.Options{
		Cache: cache, Scale: exp.Quick, Workers: 4, QueueDepth: 256,
	})
	hs := httptest.NewServer(srv.Handler())
	tr := &http.Transport{}
	httpClient := &http.Client{Transport: tr}

	const tenants = 5
	var wg sync.WaitGroup
	errCh := make(chan error, tenants*8)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(tenant int) {
			defer wg.Done()
			client := &serve.Client{BaseURL: hs.URL, HTTP: httpClient, Tenant: fmt.Sprintf("t%d", tenant)}
			ctx := context.Background()

			// The full mix, each result checked against ground truth.
			for _, id := range stressIDs {
				got, err := client.Run(ctx, serve.JobRequest{Experiment: id}, nil)
				if err != nil {
					errCh <- fmt.Errorf("tenant %d %s: %w", tenant, id, err)
					return
				}
				if string(got) != string(want[id]) {
					errCh <- fmt.Errorf("tenant %d %s: served envelope differs from direct run", tenant, id)
				}
			}

			// A mid-stream disconnect on a job that must survive it:
			// drop the stream after the first event, then fetch the
			// result anyway.
			st, err := client.Submit(ctx, serve.JobRequest{Experiment: simExperiment})
			if err != nil {
				errCh <- fmt.Errorf("tenant %d disconnect submit: %w", tenant, err)
				return
			}
			streamCtx, drop := context.WithCancel(ctx)
			_ = client.Events(streamCtx, st.ID, func(serve.Event) error {
				drop() // disconnect mid-stream
				return nil
			})
			drop()
			deadline := time.Now().Add(30 * time.Second)
			for {
				js, err := client.Status(ctx, st.ID)
				if err != nil {
					errCh <- fmt.Errorf("tenant %d disconnect status: %w", tenant, err)
					return
				}
				if js.State == serve.StateDone {
					break
				}
				if js.State == serve.StateFailed || js.State == serve.StateCanceled {
					errCh <- fmt.Errorf("tenant %d: disconnected job ended %s (%s), want done", tenant, js.State, js.Error)
					return
				}
				if time.Now().After(deadline) {
					errCh <- fmt.Errorf("tenant %d: disconnected job stuck in %s", tenant, js.State)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
			if got, err := client.Result(ctx, st.ID); err != nil {
				errCh <- fmt.Errorf("tenant %d result after disconnect: %w", tenant, err)
			} else if string(got) != string(want[simExperiment]) {
				errCh <- fmt.Errorf("tenant %d: envelope after disconnect differs from direct run", tenant)
			}

			// And one job that is supposed to die with its watcher.
			st, err = client.Submit(ctx, serve.JobRequest{Experiment: "ablation/fsb-entries", CancelOnDisconnect: true})
			if err != nil {
				errCh <- fmt.Errorf("tenant %d cancelable submit: %w", tenant, err)
				return
			}
			streamCtx, drop = context.WithCancel(ctx)
			_ = client.Events(streamCtx, st.ID, func(serve.Event) error {
				drop()
				return nil
			})
			drop()
			// Dropping the watcher may race normal completion; both
			// terminal outcomes are legal, hanging is not.
			for {
				js, err := client.Status(ctx, st.ID)
				if err != nil {
					errCh <- fmt.Errorf("tenant %d cancelable status: %w", tenant, err)
					return
				}
				if js.State == serve.StateDone || js.State == serve.StateCanceled {
					break
				}
				if js.State == serve.StateFailed {
					errCh <- fmt.Errorf("tenant %d: cancel-on-disconnect job failed: %s", tenant, js.Error)
					return
				}
				if time.Now().After(deadline) {
					errCh <- fmt.Errorf("tenant %d: cancel-on-disconnect job stuck in %s", tenant, js.State)
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := cache.Stats()
	if st.Evictions == 0 {
		t.Errorf("a 512-byte budget produced no evictions: %+v", st)
	}
	if st.DiskBytes > 512 && st.DiskEntries > 1 {
		t.Errorf("disk tier settled over budget with multiple entries: %+v", st)
	}
	checkNoPartialArtifacts(t, cacheDir)

	srv.Close()
	hs.Close()
	tr.CloseIdleConnections()
	settleGoroutines(t, baseline, 3)
}

// TestServeCoalescingDedupe submits the same cold experiment from many
// tenants at once and checks the shared cache coalesced them: the number
// of simulations actually executed equals the experiment's distinct
// configurations (measured on a private warm-up run), and every tenant's
// envelope is byte-identical.
func TestServeCoalescingDedupe(t *testing.T) {
	// Ground truth: how many distinct simulations does the experiment
	// need, and what are its artifact bytes?
	refCache, err := sfence.NewRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	refLab := sfence.NewLab(sfence.WithScale(sfence.Quick), sfence.WithCache(refCache))
	refRes, err := refLab.Run(context.Background(), simExperiment)
	if err != nil {
		t.Fatal(err)
	}
	want, err := refRes.JSON()
	if err != nil {
		t.Fatal(err)
	}
	distinct := refCache.Stats().Misses

	baseline := runtime.NumGoroutine()
	cache, err := sfence.NewRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.NewServer(serve.Options{Cache: cache, Scale: exp.Quick, Workers: 8, QueueDepth: 64})
	hs := httptest.NewServer(srv.Handler())
	tr := &http.Transport{}
	httpClient := &http.Client{Transport: tr}

	const tenants = 8
	var wg sync.WaitGroup
	got := make([][]byte, tenants)
	errs := make([]error, tenants)
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			client := &serve.Client{BaseURL: hs.URL, HTTP: httpClient, Tenant: fmt.Sprintf("t%d", n)}
			got[n], errs[n] = client.Run(context.Background(), serve.JobRequest{Experiment: simExperiment}, nil)
		}(i)
	}
	wg.Wait()
	for i := 0; i < tenants; i++ {
		if errs[i] != nil {
			t.Fatalf("tenant %d: %v", i, errs[i])
		}
		if string(got[i]) != string(want) {
			t.Errorf("tenant %d: served envelope differs from direct run", i)
		}
	}

	st := cache.Stats()
	if st.Misses != distinct {
		t.Errorf("executed %d simulations for %d concurrent identical jobs, want %d (coalescing failed)", st.Misses, tenants, distinct)
	}
	if st.Hits == 0 {
		t.Error("no cache hits across coalesced tenants")
	}

	srv.Close()
	hs.Close()
	tr.CloseIdleConnections()
	settleGoroutines(t, baseline, 3)
}

// TestServeTenantIsolation checks the tenant label is carried through
// job status untouched — jobs are shared-nothing apart from the cache.
func TestServeTenantIsolation(t *testing.T) {
	_, client := startServer(t, serve.Options{Scale: exp.Quick})
	a := &serve.Client{BaseURL: client.BaseURL, Tenant: "alice"}
	b := &serve.Client{BaseURL: client.BaseURL, Tenant: "bob"}
	ctx := context.Background()
	sa, err := a.Submit(ctx, serve.JobRequest{Experiment: "table4"})
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Submit(ctx, serve.JobRequest{Experiment: "table3"})
	if err != nil {
		t.Fatal(err)
	}
	if sa.Tenant != "alice" || sb.Tenant != "bob" {
		t.Errorf("tenants %q/%q, want alice/bob", sa.Tenant, sb.Tenant)
	}
	waitState(t, a, sa.ID, serve.StateDone)
	waitState(t, b, sb.ID, serve.StateDone)

	specs := map[string]string{sa.ID: "table4", sb.ID: "table3"}
	for id, expID := range specs {
		data, err := a.Result(ctx, id)
		if err != nil {
			t.Fatalf("result %s: %v", id, err)
		}
		var env struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		spec, err := results.LookupExperiment(expID)
		if err != nil {
			t.Fatal(err)
		}
		if env.Kind != spec.Kind {
			t.Errorf("job %s: envelope kind %q, want %q", id, env.Kind, spec.Kind)
		}
	}
}
