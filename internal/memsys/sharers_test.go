package memsys

import "testing"

// TestSharers pins the directory accessor's semantics — and the property
// that makes the mask unusable as an exact snoop filter: a write to a line
// resets the mask to the writer alone even while other cores may still
// hold in-flight loads that used it.
func TestSharers(t *testing.T) {
	h := MustHierarchy(4, DefaultConfig())
	const addr = 4096

	if _, ok := h.Sharers(addr); ok {
		t.Fatalf("untouched line unexpectedly present in L2 directory")
	}

	h.Access(0, addr, false)
	h.Access(1, addr, false)
	mask, ok := h.Sharers(addr)
	if !ok {
		t.Fatalf("line missing from L2 directory after reads")
	}
	if mask != 0b11 {
		t.Fatalf("sharers after reads by cores 0 and 1 = %b, want 11", mask)
	}

	// Same line, different word: the mask is per line.
	if m, _ := h.Sharers(addr + 8); m != 0b11 {
		t.Fatalf("sharers of sibling word = %b, want 11", m)
	}

	// A write by core 2 invalidates the other copies and resets the mask —
	// losing the fact that cores 0 and 1 ever held the line.
	h.Access(2, addr, true)
	mask, ok = h.Sharers(addr)
	if !ok || mask != 0b100 {
		t.Fatalf("sharers after write by core 2 = %b (present=%v), want 100", mask, ok)
	}
}
