package ref

import (
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/scopecheck"
)

// VariantInferred labels the fourth, statically derived lowering that
// CheckConcurrent runs alongside the three generated ones: the
// traditional variant rewritten by scopecheck.Infer (set-scoped fences,
// analysis-chosen flags). It is not part of NumVariants — it has no
// lowering of its own and exists only as a rewrite.
const VariantInferred Variant = NumVariants

// concRegions declares the generated scenarios' fixed memory map for the
// static scope analyzer. Every generated address is formed from
// constants, so the declarations only name the atoms in reports and give
// escape analysis its coarsening grain.
func concRegions(threads int) []scopecheck.Region {
	shared := func(name string, base, end int64) scopecheck.Region {
		return scopecheck.Region{Name: name, Base: base, Words: (end - base) / 8, Sharing: scopecheck.SharedRW, Owner: -1}
	}
	rs := []scopecheck.Region{
		shared("turn", concTurnAddr, concTurnAddr+8),
		shared("counters", concCounterBase, concScratchBase),
		shared("scratch", concScratchBase, concLockBase),
		shared("locks", concLockBase, concDekkerBase),
		shared("dekker", concDekkerBase, concChanBase),
		shared("chans", concChanBase, concPrivBase),
	}
	for t := 0; t < threads; t++ {
		rs = append(rs, scopecheck.Region{
			Name: fmt.Sprintf("priv%d", t), Base: concPrivAddr(t), Words: concPrivStride / 8,
			Sharing: scopecheck.Private, Owner: t,
		})
	}
	return rs
}

// scenarioFor wraps an arbitrary lowering of cp for static analysis.
func (cp *ConcProgram) scenarioFor(label string, prog *isa.Program) scopecheck.Scenario {
	threads := make([]scopecheck.Thread, cp.NumThreads)
	for t := range threads {
		threads[t] = scopecheck.Thread{Entry: ConcEntry(t), Regs: cp.Regs[t]}
	}
	return scopecheck.Scenario{
		Name:    fmt.Sprintf("seed %d %s", cp.Seed, label),
		Prog:    prog,
		Threads: threads,
		Regions: concRegions(cp.NumThreads),
	}
}

// Scenario adapts one generated variant for static scope analysis.
func (cp *ConcProgram) Scenario(v Variant) scopecheck.Scenario {
	return cp.scenarioFor(v.String(), cp.Variants[v])
}

// VerifyScopes runs only the static half of CheckConcurrent for seed:
// verify the hand-lowered class and set variants clean, infer a
// set-scoped lowering from the traditional variant, and verify that too.
// It is the corpus leg of the repository's static scope gate
// (sfence-sim -scopecheck), where the dynamic runs would be redundant
// with the fuzz tests.
func VerifyScopes(seed int64) (*scopecheck.InferInfo, error) {
	_, info, err := checkScopesStatically(GenConcurrent(seed))
	return info, err
}

// checkScopesStatically is the static half of the fuzz loop's
// scope-checking: both hand-lowered scoped variants must verify with no
// errors (their annotations are correct by construction, so any Error is
// an analyzer false positive or a generator bug), and scope inference
// over the unannotated traditional variant must yield a program that
// itself verifies clean. The returned inferred program is then run as a
// fourth variant through the bit-identity and oracle checks — the
// dynamic half: static narrowing must preserve the checked projection.
func checkScopesStatically(cp *ConcProgram) (*isa.Program, *scopecheck.InferInfo, error) {
	for _, v := range []Variant{VariantClass, VariantSet} {
		sc := cp.Scenario(v)
		srep, err := scopecheck.Verify(&sc)
		if err != nil {
			return nil, nil, fmt.Errorf("seed %d: %v variant: static scope analysis: %w", cp.Seed, v, err)
		}
		if srep.HasErrors() {
			return nil, nil, fmt.Errorf("seed %d: %v variant: static scope verification flagged a correct lowering:\n%s", cp.Seed, v, srep)
		}
	}
	tsc := cp.Scenario(VariantTraditional)
	prog, info, err := scopecheck.Infer(&tsc)
	if err != nil {
		return nil, nil, fmt.Errorf("seed %d: scope inference: %w", cp.Seed, err)
	}
	isc := cp.scenarioFor("inferred", prog)
	srep, err := scopecheck.Verify(&isc)
	if err != nil {
		return nil, nil, fmt.Errorf("seed %d: inferred variant: static scope analysis: %w", cp.Seed, err)
	}
	if srep.HasErrors() {
		return nil, nil, fmt.Errorf("seed %d: inferred variant fails its own verification:\n%s", cp.Seed, srep)
	}
	return prog, info, nil
}
