module sfence

go 1.24
