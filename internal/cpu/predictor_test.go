package cpu

import "testing"

func TestPredictorStaticBackwardBias(t *testing.T) {
	p := newPredictor(8)
	if !p.predict(100, 50) {
		t.Error("untrained backward branch should predict taken")
	}
	if p.predict(100, 200) {
		t.Error("untrained forward branch should predict not taken")
	}
}

func TestPredictorLearnsTaken(t *testing.T) {
	p := newPredictor(8)
	for i := 0; i < 4; i++ {
		p.update(40, true)
	}
	if !p.predict(40, 200) {
		t.Error("trained-taken forward branch should predict taken")
	}
	// Saturates: many more updates then a couple of not-taken should
	// still predict taken (hysteresis).
	for i := 0; i < 10; i++ {
		p.update(40, true)
	}
	p.update(40, false)
	if !p.predict(40, 200) {
		t.Error("2-bit counter lost hysteresis")
	}
	p.update(40, false)
	p.update(40, false)
	if p.predict(40, 200) {
		t.Error("repeated not-taken should flip the prediction")
	}
}

func TestPredictorCounterSaturation(t *testing.T) {
	p := newPredictor(4)
	for i := 0; i < 100; i++ {
		p.update(3, false)
	}
	if p.counters[3] != 0 {
		t.Errorf("counter = %d, want saturated 0", p.counters[3])
	}
	for i := 0; i < 100; i++ {
		p.update(3, true)
	}
	if p.counters[3] != 3 {
		t.Errorf("counter = %d, want saturated 3", p.counters[3])
	}
}

func TestPredictorIndexMasking(t *testing.T) {
	p := newPredictor(4) // 16 entries
	p.update(5, true)
	p.update(5, true)
	p.update(5, true)
	if !p.predict(5+16, 1000) {
		t.Error("aliased pc should share the counter")
	}
}
