package cpu

import (
	"sort"

	"sfence/internal/isa"
)

// FenceSite aggregates the behaviour of one static fence instruction.
// Sites travel inside kernels.Result, which the results pipeline caches
// and serializes, so the JSON tags are part of the results schema.
type FenceSite struct {
	PC          int    `json:"pc"`
	Scope       string `json:"scope"`       // rendered fence mnemonic
	Executions  uint64 `json:"executions"`  // committed executions
	StallCycles uint64 `json:"stallCycles"` // cycles this site blocked issue or retirement
	IdleCycles  uint64 `json:"idleCycles"`  // stall cycles with an otherwise empty pipeline
}

// fenceProfile accumulates per-PC fence statistics. Fences are few and
// static, so a map is fine off the hot path (one lookup per stalled cycle
// or commit, not per cycle).
type fenceProfile struct {
	sites map[int]*FenceSite
}

// site returns (creating on first use) the profile slot for the fence at
// pc. The rendered mnemonic is only materialized on creation — site sits
// on the fence-stall path, which runs every stalled cycle, and rendering
// an instruction allocates.
func (p *fenceProfile) site(pc int, in isa.Instruction) *FenceSite {
	if p.sites == nil {
		p.sites = make(map[int]*FenceSite)
	}
	s := p.sites[pc]
	if s == nil {
		s = &FenceSite{PC: pc, Scope: in.String()}
		p.sites[pc] = s
	}
	return s
}

// FenceProfile returns the per-site fence statistics, sorted by stall
// cycles (highest first) — the fences a programmer would scope first.
func (c *Core) FenceProfile() []FenceSite {
	out := make([]FenceSite, 0, len(c.profile.sites))
	for _, s := range c.profile.sites {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StallCycles != out[j].StallCycles {
			return out[i].StallCycles > out[j].StallCycles
		}
		return out[i].PC < out[j].PC
	})
	return out
}

// MergeFenceProfiles combines per-core profiles into one per-site view.
func MergeFenceProfiles(profiles ...[]FenceSite) []FenceSite {
	merged := map[int]*FenceSite{}
	for _, prof := range profiles {
		for _, s := range prof {
			m := merged[s.PC]
			if m == nil {
				cp := s
				merged[s.PC] = &cp
				continue
			}
			m.Executions += s.Executions
			m.StallCycles += s.StallCycles
			m.IdleCycles += s.IdleCycles
		}
	}
	out := make([]FenceSite, 0, len(merged))
	for _, s := range merged {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].StallCycles != out[j].StallCycles {
			return out[i].StallCycles > out[j].StallCycles
		}
		return out[i].PC < out[j].PC
	})
	return out
}
