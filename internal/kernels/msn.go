package kernels

import (
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
)

func init() {
	register(Info{
		Name:        "msn",
		ScopeType:   "class",
		Group:       "lock-free",
		Description: "Michael-Scott non-blocking queue [33]; class-scoped fences inside enqueue/dequeue",
		Build:       buildMSN,
	})
}

// msn class id for class-scoped fences.
const cidMSN = 2

// buildMSN builds the multi-producer multi-consumer Michael-Scott queue
// benchmark. Half the threads produce, half consume. Nodes come from
// per-thread bump allocators and are never reused, so there is no ABA
// hazard. The verifier checks exact delivery (every value dequeued exactly
// once) and per-producer FIFO order within each consumer's record — the
// queue's linearizability footprint that is checkable without timestamps.
//
// Fences under RMO: a release fence in enqueue after node initialization
// (before the node becomes reachable), and an acquire-style fence in
// dequeue between the head/next snapshot and the value read. Both are
// class-scoped: node fields, QHEAD, QTAIL, and next pointers are all
// touched inside the queue's methods.
func buildMSN(opts Options) (*Kernel, error) {
	opts = opts.withDefaults(4, 120, 2)
	if opts.Threads < 2 || opts.Threads%2 != 0 || opts.Threads > 16 {
		return nil, fmt.Errorf("msn: threads must be even in [2,16], got %d", opts.Threads)
	}
	s := newScopeCtx(opts, isa.ScopeClass)
	producers := opts.Threads / 2
	consumers := opts.Threads - producers
	perProducer := int64(opts.Ops) / int64(producers)
	if perProducer < 1 {
		return nil, fmt.Errorf("msn: too few ops (%d) for %d producers", opts.Ops, producers)
	}
	total := perProducer * int64(producers)

	lay := memsys.NewLayout(4096, 48<<20)
	qhead := lay.Word("QHEAD")
	lay.AlignTo(64)
	qtail := lay.Word("QTAIL")
	lay.AlignTo(64)
	deqCount := lay.Word("DEQCOUNT")
	lay.AlignTo(64)
	dummy := lay.Array("dummy", 2) // initial sentinel node {value, next}
	nodePool := make([]int64, producers)
	for p := 0; p < producers; p++ {
		lay.AlignTo(64)
		nodePool[p] = lay.Array(fmt.Sprintf("nodes%d", p), (perProducer+2)*2)
	}
	recBase := make([]int64, consumers)
	recCnt := make([]int64, consumers)
	for c := 0; c < consumers; c++ {
		lay.AlignTo(64)
		recCnt[c] = lay.Word(fmt.Sprintf("recCnt%d", c))
		lay.AlignTo(64)
		recBase[c] = lay.Array(fmt.Sprintf("rec%d", c), total+8)
	}
	workBase := make([]int64, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		lay.AlignTo(64)
		workBase[t] = lay.Array(fmt.Sprintf("work%d", t), workRegionWords)
	}

	const (
		rQHead  = isa.R20
		rQTail  = isa.R21
		rNode   = isa.R22 // bump pointer into the node pool
		rVal    = isa.R23
		rLeft   = isa.R24 // loop counter
		rRec    = isa.R25
		rRecCnt = isa.R26
		rCntA   = isa.R27
		rDeqC   = isa.R28
		rTotal  = isa.R29
		rTmp    = isa.R30
		rTmp2   = isa.R31
		rTail   = isa.R32
		rNext   = isa.R33
		rHead   = isa.R34
		rOk     = isa.R35
	)

	b := isa.NewBuilder()

	// enqueue(rVal): allocates from rNode and publishes. Every queue
	// access is SetFlagged via s.shared so the set-scope variant
	// (Figure 14) covers the same accesses class scope does.
	enqueue := func(b *isa.Builder) {
		s.enter(b, cidMSN)
		s.shared(b)
		b.Store(rNode, 0, rVal) // node.value = v
		s.shared(b)
		b.Store(rNode, 8, isa.R0) // node.next = nil
		s.fence(b)                // release: node init before publication
		b.Label("enq")
		s.shared(b)
		b.Load(rTail, rQTail, 0)
		s.shared(b)
		b.Load(rNext, rTail, 8) // tail->next
		b.Bne(rNext, isa.R0, "advance")
		s.shared(b)
		b.CAS(rOk, rTail, 8, isa.R0, rNode) // link node
		b.Beq(rOk, isa.R0, "enq")
		s.shared(b)
		b.CAS(rOk, rQTail, 0, rTail, rNode) // swing tail (best effort)
		b.Jmp("done")
		b.Label("advance")
		s.shared(b)
		b.CAS(rOk, rQTail, 0, rTail, rNext) // help a lagging enqueuer
		b.Jmp("enq")
		b.Label("done")
		b.AddI(rNode, rNode, 16)
		s.exit(b, cidMSN)
	}

	// dequeue: rVal = value or 0 when empty.
	dequeue := func(b *isa.Builder) {
		s.enter(b, cidMSN)
		b.Label("deq")
		s.shared(b)
		b.Load(rHead, rQHead, 0)
		s.shared(b)
		b.Load(rTail, rQTail, 0)
		s.shared(b)
		b.Load(rNext, rHead, 8) // head->next
		// Acquire: the snapshot loads must complete before the value
		// read and the CAS claim.
		s.fence(b)
		b.Bne(rHead, rTail, "nonempty")
		b.Beq(rNext, isa.R0, "empty")
		s.shared(b)
		b.CAS(rOk, rQTail, 0, rTail, rNext) // tail is lagging: help
		b.Jmp("deq")
		b.Label("nonempty")
		b.Beq(rNext, isa.R0, "deq") // transient: retry
		s.shared(b)
		b.Load(rVal, rNext, 0) // value of the new head
		s.shared(b)
		b.CAS(rOk, rQHead, 0, rHead, rNext)
		b.Beq(rOk, isa.R0, "deq")
		b.Jmp("out")
		b.Label("empty")
		b.MovI(rVal, 0)
		b.Label("out")
		s.exit(b, cidMSN)
	}

	b.Entry("producer")
	b.Inline(func(b *isa.Builder) {
		// rVal starts at the producer's value base; counts down rLeft.
		b.Label("produce")
		b.Inline(enqueue)
		b.Inline(func(b *isa.Builder) { emitWorkload(b, opts.Workload) })
		b.AddI(rVal, rVal, 1)
		b.AddI(rLeft, rLeft, -1)
		b.Bne(rLeft, isa.R0, "produce")
		b.Halt()
	})

	b.Entry("consumer")
	b.Inline(func(b *isa.Builder) {
		b.MovI(rRecCnt, 0)
		b.Label("consume")
		b.Inline(dequeue)
		b.Beq(rVal, isa.R0, "checkdone")
		// Record and count the delivery.
		b.ShlI(rTmp, rRecCnt, 3)
		b.Add(rTmp, rRec, rTmp)
		b.Store(rTmp, 0, rVal)
		b.AddI(rRecCnt, rRecCnt, 1)
		emitAtomicAdd(b, rDeqC, 1)
		b.Inline(func(b *isa.Builder) { emitWorkload(b, opts.Workload) })
		b.Jmp("consume")
		b.Label("checkdone")
		b.Load(rTmp2, rDeqC, 0)
		b.Bne(rTmp2, rTotal, "consume")
		b.Store(rCntA, 0, rRecCnt)
		b.Halt()
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	const valueStride = 1 << 20 // value = producer*stride + k + 1
	threads := make([]machine.Thread, 0, opts.Threads)
	for pidx := 0; pidx < producers; pidx++ {
		threads = append(threads, machine.Thread{Entry: "producer", Regs: map[isa.Reg]int64{
			rQHead: qhead, rQTail: qtail, rDeqC: deqCount,
			rNode: nodePool[pidx], rVal: int64(pidx)*valueStride + 1, rLeft: perProducer,
			regWorkBase: workBase[pidx], regWorkPtr: int64(pidx * 104),
		}})
	}
	for cidx := 0; cidx < consumers; cidx++ {
		t := producers + cidx
		threads = append(threads, machine.Thread{Entry: "consumer", Regs: map[isa.Reg]int64{
			rQHead: qhead, rQTail: qtail, rDeqC: deqCount, rTotal: total,
			rRec: recBase[cidx], rCntA: recCnt[cidx],
			regWorkBase: workBase[t], regWorkPtr: int64(t * 104),
		}})
	}

	return &Kernel{
		Name:    "msn",
		Program: p,
		Regions: regionsFor(lay, func(name string) (scopecheck.Sharing, int) {
			// rec/recCnt are owned by consumer c = thread producers+c;
			// node pools are published through the queue, so shared.
			if c, ok := ownedSuffix(name, "recCnt"); ok {
				return scopecheck.Private, producers + c
			}
			if c, ok := ownedSuffix(name, "rec"); ok {
				return scopecheck.Private, producers + c
			}
			if t, ok := ownedSuffix(name, "work"); ok {
				return scopecheck.Private, t
			}
			return scopecheck.SharedRW, -1
		}),
		Threads: threads,
		MemInit: map[int64]int64{qhead: dummy, qtail: dummy},
		Verify: func(img *memsys.Image) error {
			if got := img.Load(deqCount); got != total {
				return fmt.Errorf("msn: DEQCOUNT = %d, want %d", got, total)
			}
			seen := make(map[int64]int, total)
			for c := 0; c < consumers; c++ {
				cnt := img.Load(recCnt[c])
				if cnt < 0 || cnt > total {
					return fmt.Errorf("msn: consumer %d recorded %d values", c, cnt)
				}
				lastPerProducer := make(map[int64]int64)
				for i := int64(0); i < cnt; i++ {
					v := img.Load(recBase[c] + i*8)
					seen[v]++
					prod := (v - 1) / valueStride
					if last, ok := lastPerProducer[prod]; ok && v <= last {
						return fmt.Errorf("msn: consumer %d saw producer %d values out of FIFO order (%d after %d)", c, prod, v, last)
					}
					lastPerProducer[prod] = v
				}
			}
			if int64(len(seen)) != total {
				return fmt.Errorf("msn: %d distinct values dequeued, want %d", len(seen), total)
			}
			for pidx := 0; pidx < producers; pidx++ {
				for k := int64(0); k < perProducer; k++ {
					v := int64(pidx)*valueStride + k + 1
					if seen[v] != 1 {
						return fmt.Errorf("msn: value %d dequeued %d times", v, seen[v])
					}
				}
			}
			return nil
		},
	}, nil
}
