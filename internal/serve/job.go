package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"sfence/internal/cpu"
	"sfence/internal/exp"
	"sfence/internal/kernels"
	"sfence/internal/machine"
	"sfence/internal/results"
	"sfence/internal/trace"
)

// Job states, as reported by JobStatus.State and "state" events. A job is
// terminal in StateDone, StateFailed, and StateCanceled.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobRequest is the POST /v1/jobs body: which experiment to run and how.
type JobRequest struct {
	// Experiment is a registry experiment ID ("fig12", "table4",
	// "ablation/fsb-entries", ...). Unknown IDs are rejected at submit.
	Experiment string `json:"experiment"`
	// Scale is "quick" or "full"; empty uses the server default.
	Scale string `json:"scale,omitempty"`
	// Workers runs each simulation on the epoch-barriered parallel
	// machine runner with this many worker threads (results are
	// bit-identical at any width).
	Workers int `json:"workers,omitempty"`
	// Parallelism bounds the job's simulation worker pool
	// (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// TimeoutMs time-boxes the job's simulations; the server caps it at
	// its configured maximum.
	TimeoutMs int64 `json:"timeoutMs,omitempty"`
	// CancelOnDisconnect cancels the job when its last events-stream
	// watcher disconnects before completion, propagating the client's
	// disconnect through context into the cycle loop.
	CancelOnDisconnect bool `json:"cancelOnDisconnect,omitempty"`
}

// JobStatus describes one job's identity and current state.
type JobStatus struct {
	ID         string `json:"id"`
	Experiment string `json:"experiment"`
	Tenant     string `json:"tenant"`
	Scale      string `json:"scale"`
	State      string `json:"state"`
	Error      string `json:"error,omitempty"`
}

// Event is one NDJSON line of a job's event stream: state transitions
// ("queued", "running", terminal states) and per-experiment progress
// carrying live simulator throughput read off the fast path by a
// counter-only observer. Progress rates are wall-clock and therefore
// nondeterministic; the result envelope bytes never are.
type Event struct {
	Type       string `json:"type"` // "state" or "progress"
	Job        string `json:"job"`
	State      string `json:"state,omitempty"`
	Error      string `json:"error,omitempty"`
	Experiment string `json:"experiment,omitempty"`
	Done       int    `json:"done"`
	Total      int    `json:"total,omitempty"`
	// SimCycles is the total simulated cycles executed so far (cache
	// hits contribute nothing — they simulate nothing).
	SimCycles       int64   `json:"simCycles,omitempty"`
	SimCyclesPerSec float64 `json:"simCyclesPerSec,omitempty"`
	// FenceStallShare is the running fence-stall fraction of core time
	// across the job's executed simulations.
	FenceStallShare float64 `json:"fenceStallShare,omitempty"`
	ElapsedMs       int64   `json:"elapsedMs,omitempty"`
}

// job is one submitted experiment run: its request, its cancellable
// context, its event history, and its terminal result.
type job struct {
	id     string
	tenant string
	req    JobRequest
	spec   results.ExperimentSpec
	scale  exp.Scale

	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    string
	errMsg   string
	result   []byte // the schema-versioned envelope, set in StateDone
	events   []Event
	notify   chan struct{} // closed and replaced on every append
	watchers int
}

func newJob(id, tenant string, req JobRequest, spec results.ExperimentSpec, scale exp.Scale, parent context.Context) *job {
	ctx, cancel := context.WithCancel(parent)
	j := &job{
		id: id, tenant: tenant, req: req, spec: spec, scale: scale,
		ctx: ctx, cancel: cancel,
		state:  StateQueued,
		notify: make(chan struct{}),
	}
	j.events = append(j.events, Event{Type: "state", Job: id, State: StateQueued, Experiment: req.Experiment})
	return j
}

// status snapshots the job's public state.
func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:         j.id,
		Experiment: j.req.Experiment,
		Tenant:     j.tenant,
		Scale:      results.ScaleName(j.scale),
		State:      j.state,
		Error:      j.errMsg,
	}
}

// emit appends an event and wakes every watcher.
func (j *job) emit(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// setState transitions the job and emits the matching state event.
// Transitions out of a terminal state are ignored (a cancel racing a
// completed job changes nothing).
func (j *job) setState(state, errMsg string) {
	j.mu.Lock()
	if terminalState(j.state) {
		j.mu.Unlock()
		return
	}
	j.state = state
	j.errMsg = errMsg
	j.events = append(j.events, Event{Type: "state", Job: j.id, State: state, Error: errMsg, Experiment: j.req.Experiment})
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

func terminalState(s string) bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// attachWatcher registers an events-stream client.
func (j *job) attachWatcher() {
	j.mu.Lock()
	j.watchers++
	j.mu.Unlock()
}

// detachWatcher unregisters an events-stream client; when the job was
// submitted with CancelOnDisconnect and the last watcher left before the
// job finished, the job's context is cancelled — the disconnect
// propagates into the cycle loop.
func (j *job) detachWatcher() {
	j.mu.Lock()
	j.watchers--
	cancel := j.req.CancelOnDisconnect && j.watchers == 0 && !terminalState(j.state)
	j.mu.Unlock()
	if cancel {
		j.cancel()
	}
}

// runJob executes one dequeued job on a fresh session sharing the
// server's cache, streaming progress events as simulations complete.
func (s *Server) runJob(j *job) {
	if j.ctx.Err() != nil {
		// Cancelled while still queued (DELETE, watcher disconnect, or
		// server shutdown): never run, never partial.
		j.setState(StateCanceled, context.Cause(j.ctx).Error())
		s.canceled.Add(1)
		return
	}
	ctx := j.ctx
	if ms := s.effectiveTimeoutMs(j.req.TimeoutMs); ms > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
		defer cancel()
	}

	s.running.Add(1)
	defer s.running.Add(-1)
	j.setState(StateRunning, "")

	// Live observability: a counter-only observer tallies pipeline
	// events off the fast path, and a wrapping runner sums the simulated
	// cycles of every simulation this job actually executes. With a
	// shared cache, hits and coalesced waits contribute nothing — the
	// stream reports real simulation work, not cache traffic.
	obs := trace.NewCountingObserver()
	var simCycles, coreCycles atomic.Int64
	base := exp.ObservedRunner(obs)
	runner := exp.Runner(func(ctx context.Context, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
		res, err := base(ctx, bench, opts, cfg)
		if err == nil {
			simCycles.Add(res.Cycles)
			coreCycles.Add(int64(res.CoreCycles))
		}
		return res, err
	})
	if s.cache != nil {
		runner = s.cache.Runner(runner)
	}
	if s.opts.WrapRunner != nil {
		runner = s.opts.WrapRunner(runner)
	}

	start := time.Now()
	progress := func(experiment string, done, total int) {
		elapsed := time.Since(start)
		ev := Event{
			Type: "progress", Job: j.id, Experiment: experiment,
			Done: done, Total: total,
			SimCycles: simCycles.Load(),
			ElapsedMs: elapsed.Milliseconds(),
		}
		if secs := elapsed.Seconds(); secs > 0 {
			ev.SimCyclesPerSec = float64(ev.SimCycles) / secs
		}
		if cc := coreCycles.Load(); cc > 0 {
			ev.FenceStallShare = float64(obs.Count(cpu.TraceFenceStall)) / float64(cc)
		}
		j.emit(ev)
	}

	session := exp.NewSession(runner, progress, j.req.Parallelism).WithWorkers(j.req.Workers)
	data, err := j.spec.Run(ctx, session, j.scale)
	if err != nil {
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.failed.Add(1)
			j.setState(StateFailed, "job timeout exceeded: "+err.Error())
		case errors.Is(err, context.Canceled):
			s.canceled.Add(1)
			j.setState(StateCanceled, err.Error())
		default:
			s.failed.Add(1)
			j.setState(StateFailed, err.Error())
		}
		return
	}
	envelope, err := j.spec.JSON(data, j.scale)
	if err != nil {
		s.failed.Add(1)
		j.setState(StateFailed, "encode envelope: "+err.Error())
		return
	}
	j.mu.Lock()
	j.result = envelope
	j.mu.Unlock()
	s.completed.Add(1)
	j.setState(StateDone, "")
}
