package cpu

import (
	"sfence/internal/isa"
	"sfence/internal/stats"
)

// TraceEvent identifies a pipeline event reported to a Tracer.
type TraceEvent uint8

// Pipeline trace events.
const (
	TraceDecode     TraceEvent = iota // instruction entered the ROB
	TraceExecute                      // execution began (detail: readyAt)
	TraceComplete                     // result available (detail: value)
	TraceRetire                       // architecturally committed
	TraceSquash                       // discarded by misprediction/replay
	TraceFenceStall                   // issue or retire blocked by a fence
	TraceSBIssue                      // store left the SB for memory (detail: readyAt)
	TraceSBComplete                   // store became globally visible (detail: address)
)

func (e TraceEvent) String() string {
	switch e {
	case TraceDecode:
		return "decode"
	case TraceExecute:
		return "execute"
	case TraceComplete:
		return "complete"
	case TraceRetire:
		return "retire"
	case TraceSquash:
		return "squash"
	case TraceFenceStall:
		return "fence-stall"
	case TraceSBIssue:
		return "sb-issue"
	case TraceSBComplete:
		return "sb-complete"
	}
	return "event?"
}

// Tracer receives pipeline events. Implementations must be cheap: the core
// calls them inline. A nil tracer costs one branch per event site.
type Tracer interface {
	Trace(cycle int64, core int, ev TraceEvent, seq uint64, in isa.Instruction, detail int64)
}

// SetTracer attaches (or detaches, with nil) a pipeline tracer. Attaching
// one drops any spin detection in progress: traced cores step cycle by
// cycle.
func (c *Core) SetTracer(t Tracer) {
	c.tracer = t
	c.spinReset()
}

// SetObserver attaches (or detaches, with nil) a counter-only observer.
// The observer receives the same pipeline events a Tracer does, but only
// as (event, count) increments — no cycle, sequence, or instruction
// detail — which is exactly what keeps it compatible with the two-speed
// clock: the machine keeps fast-forwarding with an observer attached, and
// FastForward credits skipped stall-cycle events in bulk (see clock.go).
// Attaching an observer never changes simulation results.
func (c *Core) SetObserver(o stats.Observer) {
	c.observer = o
	c.spinReset() // event bookkeeping baseline changed; re-detect
}

func (c *Core) trace(ev TraceEvent, seq uint64, in isa.Instruction, detail int64) {
	if c.observer != nil {
		c.observer.Observe(c.id, uint8(ev), 1)
		if c.spin.phase == spinArmed {
			// Tally the armed window's events so a confirmed spin can
			// credit the observer per skipped period.
			c.spin.evAt[ev]++
		}
	}
	if c.tracer != nil {
		c.tracer.Trace(c.cycle, c.id, ev, seq, in, detail)
	}
}
