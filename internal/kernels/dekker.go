package kernels

import (
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
)

func init() {
	register(Info{
		Name:        "dekker",
		ScopeType:   "set",
		Group:       "lock-free",
		Description: "Dekker mutual-exclusion algorithm [12]; set-scoped fences over {flag0, flag1, turn, counter}",
		Build:       buildDekker,
	})
}

// buildDekker builds the two-thread Dekker benchmark. Each thread executes
// Ops critical sections; between lock operations it runs the private
// workload. The critical section performs a deliberately non-atomic
// read-modify-write of a shared counter, so any mutual-exclusion or
// memory-ordering violation shows up as a lost update in verification.
//
// Fence placement under RMO (following the fence-inference literature the
// paper cites): an entry fence between the flag store and the peer-flag
// load (the classic Dekker fence of Fig. 11), an acquire fence after
// winning the spin, and a release fence before dropping the flag. With set
// scope all three only order the flagged accesses {flag0, flag1, turn,
// counter}, letting the workload's private misses drain in parallel.
func buildDekker(opts Options) (*Kernel, error) {
	opts = opts.withDefaults(2, 60, 2)
	if opts.Threads != 2 {
		return nil, fmt.Errorf("dekker: requires exactly 2 threads, got %d", opts.Threads)
	}
	s := newScopeCtx(opts, isa.ScopeSet)
	if s.mode == Scoped && s.kind != isa.ScopeSet {
		return nil, fmt.Errorf("dekker: only set scope is meaningful (flags are plain globals)")
	}

	lay := memsys.NewLayout(4096, 32<<20)
	flag0 := lay.Word("flag0")
	lay.AlignTo(64)
	flag1 := lay.Word("flag1")
	lay.AlignTo(64)
	turn := lay.Word("turn")
	lay.AlignTo(64)
	counter := lay.Word("counter")
	lay.AlignTo(64)
	work0 := lay.Array("work0", workRegionWords)
	work1 := lay.Array("work1", workRegionWords)

	const (
		rMyFlag   = isa.R1
		rPeerFlag = isa.R2
		rTurn     = isa.R3
		rCnt      = isa.R4
		rMe       = isa.R5
		rIter     = isa.R7
		rOne      = isa.R8
		rTmp      = isa.R10
		rC        = isa.R11
	)

	b := isa.NewBuilder()
	body := func(b *isa.Builder) {
		b.MovI(rOne, 1)
		b.Label("iter")
		b.Inline(func(b *isa.Builder) { emitWorkload(b, opts.Workload) })

		// flag[me] = 1; FENCE; spin on flag[other].
		s.shared(b)
		b.Store(rMyFlag, 0, rOne)
		s.fence(b)
		b.Label("try")
		s.shared(b)
		b.Load(rTmp, rPeerFlag, 0)
		b.Beq(rTmp, isa.R0, "enter")
		s.shared(b)
		b.Load(rTmp, rTurn, 0)
		b.Beq(rTmp, rMe, "try") // my turn: keep waiting politely
		// Not my turn: back off until it is.
		s.shared(b)
		b.Store(rMyFlag, 0, isa.R0)
		b.Label("waitturn")
		s.shared(b)
		b.Load(rTmp, rTurn, 0)
		b.Bne(rTmp, rMe, "waitturn")
		s.shared(b)
		b.Store(rMyFlag, 0, rOne)
		s.fence(b)
		b.Jmp("try")

		b.Label("enter")
		// Acquire: the peer-flag read must be complete before the
		// critical section's loads issue.
		s.fence(b)
		// Critical section: non-atomic increment with a widened window.
		s.shared(b)
		b.Load(rC, rCnt, 0)
		b.AddI(rC, rC, 1)
		b.Mul(rTmp, rC, rC) // padding work inside the window
		b.Nop()
		s.shared(b)
		b.Store(rCnt, 0, rC)
		// Release: counter store must be visible before the flag drops.
		s.fence(b)
		b.XorI(rTmp, rMe, 1) // other's id
		s.shared(b)
		b.Store(rTurn, 0, rTmp)
		s.shared(b)
		b.Store(rMyFlag, 0, isa.R0)

		b.AddI(rIter, rIter, -1)
		b.Bne(rIter, isa.R0, "iter")
		b.Halt()
	}
	b.Entry("t0")
	b.Inline(body)
	b.Entry("t1")
	b.Inline(body)
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	mkRegs := func(me int64, myFlag, peerFlag, work int64) map[isa.Reg]int64 {
		return map[isa.Reg]int64{
			rMyFlag: myFlag, rPeerFlag: peerFlag, rTurn: turn, rCnt: counter,
			rMe: me, rIter: int64(opts.Ops),
			regWorkBase: work, regWorkPtr: (me * 128) % (workRegionWords * 8),
		}
	}
	want := int64(2 * opts.Ops)
	return &Kernel{
		Name:    "dekker",
		Program: p,
		Regions: regionsFor(lay, func(name string) (scopecheck.Sharing, int) {
			if t, ok := ownedSuffix(name, "work"); ok {
				return scopecheck.Private, t
			}
			return scopecheck.SharedRW, -1
		}),
		Threads: []machine.Thread{
			{Entry: "t0", Regs: mkRegs(0, flag0, flag1, work0)},
			{Entry: "t1", Regs: mkRegs(1, flag1, flag0, work1)},
		},
		Verify: func(img *memsys.Image) error {
			if got := img.Load(counter); got != want {
				return fmt.Errorf("dekker: counter = %d, want %d (lost updates => mutual exclusion or ordering violated)", got, want)
			}
			if f0, f1 := img.Load(flag0), img.Load(flag1); f0 != 0 || f1 != 0 {
				return fmt.Errorf("dekker: flags not released: %d %d", f0, f1)
			}
			return nil
		},
	}, nil
}
