package isa

import (
	"fmt"
	"sort"
)

// Builder assembles a Program. It supports forward label references,
// named entry points, and macro inlining with label scoping so the same
// function body can be expanded at several call sites without label
// collisions.
//
// All emit methods return the Builder to allow chaining, but chaining is
// optional. Errors (duplicate labels, unresolved references) are gathered
// and reported by Build.
type Builder struct {
	code    []Instruction
	labels  map[string]int
	refs    []labelRef
	entries map[string]int
	scopes  []string // label-scope prefixes for inlining
	nextID  int
	errs    []error

	// pendingSetFlag marks the next emitted memory instruction as
	// belonging to the set scope.
	pendingSetFlag bool
}

type labelRef struct {
	pc    int    // instruction whose Imm needs patching
	label string // fully-qualified label name
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		labels:  make(map[string]int),
		entries: make(map[string]int),
	}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

func (b *Builder) errorf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("isa: "+format, args...))
}

// qualify applies the current label scope prefix.
func (b *Builder) qualify(label string) string {
	if len(b.scopes) == 0 {
		return label
	}
	return b.scopes[len(b.scopes)-1] + label
}

// Label defines a label at the current position. Labels are local to the
// current inline expansion (if any).
func (b *Builder) Label(name string) *Builder {
	q := b.qualify(name)
	if _, dup := b.labels[q]; dup {
		b.errorf("duplicate label %q", q)
		return b
	}
	b.labels[q] = len(b.code)
	return b
}

// Entry defines a named entry point at the current position. Entry points
// are global (never scoped by inlining).
func (b *Builder) Entry(name string) *Builder {
	if _, dup := b.entries[name]; dup {
		b.errorf("duplicate entry %q", name)
		return b
	}
	b.entries[name] = len(b.code)
	return b
}

// Inline expands the macro body with a fresh label scope, so labels defined
// inside the body are private to this expansion.
func (b *Builder) Inline(body func(*Builder)) *Builder {
	b.nextID++
	b.scopes = append(b.scopes, fmt.Sprintf("$%d.", b.nextID))
	body(b)
	b.scopes = b.scopes[:len(b.scopes)-1]
	return b
}

func (b *Builder) emit(in Instruction) *Builder {
	if b.pendingSetFlag {
		if !in.IsMem() {
			b.errorf("SetFlagged applied to non-memory instruction %s", in.Op)
		}
		in.SetFlag = true
		b.pendingSetFlag = false
	}
	b.code = append(b.code, in)
	return b
}

func (b *Builder) emitBranch(op Op, rs1, rs2 Reg, label string) *Builder {
	b.refs = append(b.refs, labelRef{pc: len(b.code), label: b.qualify(label)})
	return b.emit(Instruction{Op: op, Rs1: rs1, Rs2: rs2})
}

// SetFlagged marks the next emitted memory instruction as a set-scope
// access (the paper's compiler flagging of accesses to the fence's
// variable set).
func (b *Builder) SetFlagged() *Builder {
	b.pendingSetFlag = true
	return b
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instruction{Op: OpNop}) }

// Halt emits a halt; the core stops fetching and drains.
func (b *Builder) Halt() *Builder { return b.emit(Instruction{Op: OpHalt}) }

// MovI emits rd = imm.
func (b *Builder) MovI(rd Reg, imm int64) *Builder {
	return b.emit(Instruction{Op: OpMovI, Rd: rd, Imm: imm})
}

// Mov emits rd = rs (encoded as addi rd, rs, 0).
func (b *Builder) Mov(rd, rs Reg) *Builder {
	return b.emit(Instruction{Op: OpAddI, Rd: rd, Rs1: rs})
}

// Add emits rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpAdd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AddI emits rd = rs1 + imm.
func (b *Builder) AddI(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instruction{Op: OpAddI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Sub emits rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpSub, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Mul emits rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpMul, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Div emits rd = rs1 / rs2 (0 when rs2 == 0).
func (b *Builder) Div(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpDiv, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Rem emits rd = rs1 % rs2 (0 when rs2 == 0).
func (b *Builder) Rem(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpRem, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// And emits rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpAnd, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// AndI emits rd = rs1 & imm.
func (b *Builder) AndI(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instruction{Op: OpAndI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Or emits rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpOr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Xor emits rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpXor, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// XorI emits rd = rs1 ^ imm.
func (b *Builder) XorI(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instruction{Op: OpXorI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shl emits rd = rs1 << (rs2 & 63).
func (b *Builder) Shl(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpShl, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// ShlI emits rd = rs1 << (imm & 63).
func (b *Builder) ShlI(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instruction{Op: OpShlI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shr emits rd = rs1 >> (rs2 & 63) (arithmetic).
func (b *Builder) Shr(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpShr, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// ShrI emits rd = rs1 >> (imm & 63) (arithmetic).
func (b *Builder) ShrI(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instruction{Op: OpShrI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Slt emits rd = (rs1 < rs2) signed.
func (b *Builder) Slt(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpSlt, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// SltI emits rd = (rs1 < imm) signed.
func (b *Builder) SltI(rd, rs1 Reg, imm int64) *Builder {
	return b.emit(Instruction{Op: OpSltI, Rd: rd, Rs1: rs1, Imm: imm})
}

// Seq emits rd = (rs1 == rs2).
func (b *Builder) Seq(rd, rs1, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpSeq, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// Load emits rd = mem[rs1 + disp].
func (b *Builder) Load(rd, rs1 Reg, disp int64) *Builder {
	return b.emit(Instruction{Op: OpLoad, Rd: rd, Rs1: rs1, Imm: disp})
}

// Store emits mem[rs1 + disp] = rs2.
func (b *Builder) Store(rs1 Reg, disp int64, rs2 Reg) *Builder {
	return b.emit(Instruction{Op: OpStore, Rs1: rs1, Imm: disp, Rs2: rs2})
}

// CAS emits rd = CAS(mem[rs1+disp], old=rs2, new=rs3).
func (b *Builder) CAS(rd, rs1 Reg, disp int64, old, new Reg) *Builder {
	return b.emit(Instruction{Op: OpCAS, Rd: rd, Rs1: rs1, Imm: disp, Rs2: old, Rs3: new})
}

// Jmp emits an unconditional jump to label.
func (b *Builder) Jmp(label string) *Builder {
	b.refs = append(b.refs, labelRef{pc: len(b.code), label: b.qualify(label)})
	return b.emit(Instruction{Op: OpJmp})
}

// Beq emits: if rs1 == rs2 goto label.
func (b *Builder) Beq(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(OpBeq, rs1, rs2, label)
}

// Bne emits: if rs1 != rs2 goto label.
func (b *Builder) Bne(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(OpBne, rs1, rs2, label)
}

// Blt emits: if rs1 < rs2 goto label (signed).
func (b *Builder) Blt(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(OpBlt, rs1, rs2, label)
}

// Bge emits: if rs1 >= rs2 goto label (signed).
func (b *Builder) Bge(rs1, rs2 Reg, label string) *Builder {
	return b.emitBranch(OpBge, rs1, rs2, label)
}

// Fence emits a full-order fence with the given scope. ScopeGlobal is a
// traditional full fence; ScopeClass and ScopeSet are the paper's S-Fence
// variants.
func (b *Builder) Fence(scope ScopeKind) *Builder {
	return b.emit(Instruction{Op: OpFence, Scope: scope})
}

// FenceOrdered emits a fence with an explicit ordering kind, combining
// fence scoping with finer fences (e.g. a scoped store-store fence).
func (b *Builder) FenceOrdered(scope ScopeKind, order FenceOrder) *Builder {
	return b.emit(Instruction{Op: OpFence, Scope: scope, Order: order})
}

// FsStart emits fs_start cid, opening a class scope.
func (b *Builder) FsStart(cid int64) *Builder {
	return b.emit(Instruction{Op: OpFsStart, Imm: cid})
}

// FsEnd emits fs_end cid, closing a class scope.
func (b *Builder) FsEnd(cid int64) *Builder {
	return b.emit(Instruction{Op: OpFsEnd, Imm: cid})
}

// Build resolves all label references and returns the assembled program.
func (b *Builder) Build() (*Program, error) {
	if b.pendingSetFlag {
		b.errorf("dangling SetFlagged at end of program")
	}
	for _, ref := range b.refs {
		target, ok := b.labels[ref.label]
		if !ok {
			b.errorf("undefined label %q referenced at pc %d", ref.label, ref.pc)
			continue
		}
		b.code[ref.pc].Imm = int64(target)
	}
	if len(b.errs) > 0 {
		// Deterministic error report: join sorted messages.
		msgs := make([]string, len(b.errs))
		for i, e := range b.errs {
			msgs[i] = e.Error()
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("isa: %d assembly error(s), first: %s", len(msgs), msgs[0])
	}
	code := make([]Instruction, len(b.code))
	copy(code, b.code)
	entries := make(map[string]int, len(b.entries))
	for k, v := range b.entries {
		entries[k] = v
	}
	return &Program{Code: code, Entries: entries}, nil
}

// MustBuild is Build that panics on error; for statically-known kernels.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
