// Litmus example: demonstrate that the simulated machine implements a
// genuinely relaxed memory model, and that fence scope is load-bearing:
// the store-buffering (SB) outcome appears without fences, disappears with
// correctly scoped fences, and reappears when the fence's scope does not
// cover the racing accesses.
//
//	go run ./examples/litmus
package main

import (
	"context"
	"fmt"
	"log"

	"sfence"
)

const (
	addrX  = 4096
	addrY  = 4096 + 64
	addrR1 = 8192
	addrR2 = 8192 + 64
)

type variant int

const (
	noFence variant = iota
	fullFence
	scopedCoveringFence // accesses inside the class scope
	scopedLeakyFence    // accesses OUTSIDE the class scope: orders nothing
)

func buildSB(v variant) *sfence.Program {
	b := sfence.NewBuilder()
	thread := func(store, load, result int64) func(*sfence.Builder) {
		return func(b *sfence.Builder) {
			b.MovI(sfence.R1, store)
			b.MovI(sfence.R2, 1)
			b.MovI(sfence.R3, load)
			b.MovI(sfence.R5, result)
			switch v {
			case noFence:
				b.Store(sfence.R1, 0, sfence.R2)
				b.Load(sfence.R4, sfence.R3, 0)
			case fullFence:
				b.Store(sfence.R1, 0, sfence.R2)
				b.Fence(sfence.ScopeGlobal)
				b.Load(sfence.R4, sfence.R3, 0)
			case scopedCoveringFence:
				b.FsStart(1)
				b.Store(sfence.R1, 0, sfence.R2)
				b.Fence(sfence.ScopeClass)
				b.Load(sfence.R4, sfence.R3, 0)
				b.FsEnd(1)
			case scopedLeakyFence:
				b.Store(sfence.R1, 0, sfence.R2) // outside the scope!
				b.FsStart(1)
				b.Fence(sfence.ScopeClass) // orders nothing
				b.Load(sfence.R4, sfence.R3, 0)
				b.FsEnd(1)
			}
			b.Store(sfence.R5, 0, sfence.R4)
			b.Halt()
		}
	}
	b.Entry("p0")
	b.Inline(thread(addrX, addrY, addrR1))
	b.Entry("p1")
	b.Inline(thread(addrY, addrX, addrR2))
	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	return prog
}

func run(v variant) (r1, r2 int64) {
	cfg := sfence.DefaultConfig()
	cfg.Cores = 2
	m, err := sfence.NewMachine(cfg, buildSB(v), []sfence.Thread{{Entry: "p0"}, {Entry: "p1"}})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	return m.Image().Load(addrR1), m.Image().Load(addrR2)
}

func main() {
	fmt.Println("Store-buffering litmus (P0: X=1; r1=Y    P1: Y=1; r2=X)")
	fmt.Println("r1=0 && r2=0 is the relaxed outcome forbidden under SC.")
	fmt.Println()
	names := map[variant]string{
		noFence:             "no fences",
		fullFence:           "traditional full fences",
		scopedCoveringFence: "S-FENCE[class], accesses in scope",
		scopedLeakyFence:    "S-FENCE[class], accesses OUT of scope",
	}
	for _, v := range []variant{noFence, fullFence, scopedCoveringFence, scopedLeakyFence} {
		r1, r2 := run(v)
		verdict := "SC-consistent"
		if r1 == 0 && r2 == 0 {
			verdict = "RELAXED outcome observed"
		}
		fmt.Printf("%-42s r1=%d r2=%d   %s\n", names[v]+":", r1, r2, verdict)
	}
	fmt.Println("\nThe last line shows why scope placement matters: a scoped fence")
	fmt.Println("only orders accesses within its scope (S-Fence semantics, Section III).")
}
