package cpu

import "sfence/internal/isa"

// TraceEvent identifies a pipeline event reported to a Tracer.
type TraceEvent uint8

// Pipeline trace events.
const (
	TraceDecode     TraceEvent = iota // instruction entered the ROB
	TraceExecute                      // execution began (detail: readyAt)
	TraceComplete                     // result available (detail: value)
	TraceRetire                       // architecturally committed
	TraceSquash                       // discarded by misprediction/replay
	TraceFenceStall                   // issue or retire blocked by a fence
	TraceSBIssue                      // store left the SB for memory (detail: readyAt)
	TraceSBComplete                   // store became globally visible (detail: address)
)

func (e TraceEvent) String() string {
	switch e {
	case TraceDecode:
		return "decode"
	case TraceExecute:
		return "execute"
	case TraceComplete:
		return "complete"
	case TraceRetire:
		return "retire"
	case TraceSquash:
		return "squash"
	case TraceFenceStall:
		return "fence-stall"
	case TraceSBIssue:
		return "sb-issue"
	case TraceSBComplete:
		return "sb-complete"
	}
	return "event?"
}

// Tracer receives pipeline events. Implementations must be cheap: the core
// calls them inline. A nil tracer costs one branch per event site.
type Tracer interface {
	Trace(cycle int64, core int, ev TraceEvent, seq uint64, in isa.Instruction, detail int64)
}

// SetTracer attaches (or detaches, with nil) a pipeline tracer.
func (c *Core) SetTracer(t Tracer) { c.tracer = t }

func (c *Core) trace(ev TraceEvent, seq uint64, in isa.Instruction, detail int64) {
	if c.tracer != nil {
		c.tracer.Trace(c.cycle, c.id, ev, seq, in, detail)
	}
}
