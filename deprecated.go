package sfence

import (
	"context"
	"sync"

	"sfence/internal/exp"
)

// This file is the one-release compatibility layer for the pre-Lab API:
// figure-named experiment functions and the process-global runner and
// progress hooks. The hooks no longer exist inside internal/exp — all
// experiment state is per-Lab — so these shims keep a single facade-level
// default configuration that only the deprecated functions below consult.
// New code should build a Lab instead; see the README migration table.

var (
	compatMu       sync.RWMutex
	compatRunner   ExperimentRunner
	compatProgress ExperimentProgress
)

// SetExperimentRunner routes the deprecated package-level experiment
// functions below through a custom runner and returns the previous one.
//
// Deprecated: runners are per-session now. Use
// NewLab(WithCache(cache)) — or NewLab(WithRunner(r)) for a custom
// runner — so concurrent callers cannot stomp each other's runner. Note
// the Runner signature gained a leading context.Context.
func SetExperimentRunner(r ExperimentRunner) ExperimentRunner {
	compatMu.Lock()
	defer compatMu.Unlock()
	prev := compatRunner
	compatRunner = r
	return prev
}

// SetExperimentProgress installs a progress callback for the deprecated
// package-level experiment functions below and returns the previous one.
//
// Deprecated: progress sinks are per-session now. Use
// NewLab(WithProgress(p)).
func SetExperimentProgress(p ExperimentProgress) ExperimentProgress {
	compatMu.Lock()
	defer compatMu.Unlock()
	prev := compatProgress
	compatProgress = p
	return prev
}

// compatSession builds a one-shot session from the deprecated global
// hooks.
func compatSession() *exp.Session {
	compatMu.RLock()
	defer compatMu.RUnlock()
	return exp.NewSession(compatRunner, compatProgress, 0)
}

// Figure12 reproduces the paper's "Impact of workload" experiment.
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "fig12") — or the
// typed session equivalent — so the run is cancellable and per-session.
func Figure12(sc Scale) ([]SpeedupSeries, error) {
	return compatSession().Figure12(context.Background(), sc)
}

// Figure13 reproduces "Performance on full applications" (T, S, T+, S+).
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "fig13").
func Figure13(sc Scale) ([]BenchGroup, error) {
	return compatSession().Figure13(context.Background(), sc)
}

// Figure14 reproduces "Class scope vs. Set scope".
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "fig14").
func Figure14(sc Scale) ([]BenchGroup, error) {
	return compatSession().Figure14(context.Background(), sc)
}

// Figure15 reproduces "Varying memory access latency".
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "fig15").
func Figure15(sc Scale) ([]BenchGroup, error) {
	return compatSession().Figure15(context.Background(), sc)
}

// Figure16 reproduces "Varying ROB size".
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "fig16").
func Figure16(sc Scale) ([]BenchGroup, error) {
	return compatSession().Figure16(context.Background(), sc)
}

// AblationFSBEntries sweeps the FSB entry count.
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "ablation/fsb-entries").
func AblationFSBEntries(sc Scale) ([]AblationRow, error) {
	return compatSession().AblationFSBEntries(context.Background(), sc)
}

// AblationFSSDepth sweeps the fence scope stack depth.
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "ablation/fss-depth").
func AblationFSSDepth(sc Scale) ([]AblationRow, error) {
	return compatSession().AblationFSSDepth(context.Background(), sc)
}

// AblationStoreBuffer sweeps store-buffer capacity.
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "ablation/store-buffer").
func AblationStoreBuffer(sc Scale) ([]AblationRow, error) {
	return compatSession().AblationStoreBuffer(context.Background(), sc)
}

// AblationFIFOStoreBuffer compares RMO and TSO-like store buffers.
//
// Deprecated: use
// NewLab(WithScale(sc)).Run(ctx, "ablation/fifo-store-buffer").
func AblationFIFOStoreBuffer(sc Scale) ([]AblationRow, error) {
	return compatSession().AblationFIFOStoreBuffer(context.Background(), sc)
}

// AblationFinerFences measures the Section VII scoped store-store fence.
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "ablation/finer-fences").
func AblationFinerFences(sc Scale) ([]AblationRow, error) {
	return compatSession().AblationFinerFences(context.Background(), sc)
}

// AblationNestedScopes sweeps scope-hardware sizes on the nested-scope
// microbenchmark.
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "ablation/nested-scopes").
func AblationNestedScopes(sc Scale) ([]AblationRow, error) {
	return compatSession().AblationNestedScopes(context.Background(), sc)
}

// AblationRecovery compares the FSS recovery mechanisms.
//
// Deprecated: use NewLab(WithScale(sc)).Run(ctx, "ablation/fss-recovery").
func AblationRecovery(sc Scale) ([]AblationRow, error) {
	return compatSession().AblationRecovery(context.Background(), sc)
}
