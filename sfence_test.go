package sfence_test

import (
	"context"
	"strings"
	"testing"

	"sfence"
)

// The public facade must be sufficient to write, run, and inspect a scoped
// program end to end.
func TestPublicAPIEndToEnd(t *testing.T) {
	b := sfence.NewBuilder()
	b.Entry("main")
	b.MovI(sfence.R1, 4096)
	b.MovI(sfence.R2, 5)
	b.FsStart(1)
	b.SetFlagged()
	b.Store(sfence.R1, 0, sfence.R2)
	b.Fence(sfence.ScopeClass)
	b.FenceOrdered(sfence.ScopeSet, sfence.OrderSS)
	b.Load(sfence.R3, sfence.R1, 0)
	b.FsEnd(1)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := sfence.NewMachine(sfence.DefaultConfig(), prog, []sfence.Thread{{Entry: "main"}})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Error("no cycles elapsed")
	}
	if got := m.Core(0).Reg(sfence.R3); got != 5 {
		t.Errorf("r3 = %d, want 5", got)
	}
	if got := m.Image().Load(4096); got != 5 {
		t.Errorf("mem = %d, want 5", got)
	}
	if m.Core(0).Stats().CommittedFences != 2 {
		t.Errorf("fences = %d, want 2", m.Core(0).Stats().CommittedFences)
	}
}

func TestDefaultConfigIsTableIII(t *testing.T) {
	cfg := sfence.DefaultConfig()
	if cfg.Cores != 8 || cfg.Core.ROBSize != 128 || cfg.Mem.MemLatency != 300 ||
		cfg.Core.FSBEntries != 4 || cfg.Core.FSSEntries != 4 {
		t.Errorf("DefaultConfig diverges from Table III: %+v", cfg)
	}
}

func TestBenchmarksRegistryExposed(t *testing.T) {
	infos := sfence.Benchmarks()
	if len(infos) != 8 {
		t.Fatalf("got %d benchmarks, want 8", len(infos))
	}
	names := map[string]bool{}
	for _, info := range infos {
		names[info.Name] = true
	}
	for _, want := range []string{"dekker", "wsq", "msn", "harris", "barnes", "radiosity", "pst", "ptc"} {
		if !names[want] {
			t.Errorf("missing benchmark %s", want)
		}
	}
}

func TestRunBenchmarkThroughFacade(t *testing.T) {
	res, err := sfence.RunBenchmark("wsq", sfence.BenchmarkOptions{
		Mode: sfence.Scoped, Threads: 4, Ops: 30, Workload: 1,
	}, sfence.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles <= 0 || res.Stats.CommittedFences == 0 {
		t.Errorf("empty result: %+v", res)
	}
	if _, err := sfence.RunBenchmark("bogus", sfence.BenchmarkOptions{}, sfence.DefaultConfig()); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestHardwareCostExposed(t *testing.T) {
	rep := sfence.HardwareCost(sfence.DefaultConfig().Core)
	if !rep.PaperClaimOK {
		t.Errorf("cost %.1f bytes exceeds paper claim", rep.TotalBytes)
	}
}

func TestRendersExposed(t *testing.T) {
	if !strings.Contains(sfence.RenderTableIII(sfence.DefaultConfig()), "8 core CMP") {
		t.Error("Table III render broken")
	}
	if !strings.Contains(sfence.RenderTableIV(), "wsq") {
		t.Error("Table IV render broken")
	}
}

func TestBuildBenchmarkExposesVerifier(t *testing.T) {
	k, err := sfence.BuildBenchmark("dekker", sfence.BenchmarkOptions{Ops: 5, Workload: 1})
	if err != nil {
		t.Fatal(err)
	}
	if k.Verify == nil || k.Program == nil || len(k.Threads) != 2 {
		t.Error("kernel incomplete")
	}
}
