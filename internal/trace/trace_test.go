package trace

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"sfence/internal/cpu"
	"sfence/internal/isa"
	"sfence/internal/machine"
)

func traceProgram() *isa.Program {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 4096)
	b.MovI(isa.R2, 5)
	b.Store(isa.R1, 0, isa.R2)
	b.Fence(isa.ScopeGlobal)
	b.Load(isa.R3, isa.R1, 0)
	b.Halt()
	return b.MustBuild()
}

func runTraced(t *testing.T, tr cpu.Tracer) {
	t.Helper()
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg, traceProgram(), []machine.Thread{{Entry: "main"}})
	if err != nil {
		t.Fatal(err)
	}
	Attach(m, tr)
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestTextTracerOutput(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTextTracer(&buf, 0)
	runTraced(t, tr)
	out := buf.String()
	for _, want := range []string{"decode", "execute", "complete", "retire", "sb-issue", "sb-complete", "fence-stall", "store [r1+0], r2", "fence.global"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, firstLines(out, 20))
		}
	}
	if tr.Lines() == 0 {
		t.Error("no lines recorded")
	}
}

func TestTextTracerCycleLimit(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTextTracer(&buf, 2)
	runTraced(t, tr)
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var cycle int64
		if _, err := fmt.Sscan(line, &cycle); err == nil && cycle > 2 {
			t.Errorf("event after the cycle limit: %q", line)
		}
	}
}

func TestCountingTracerEventBalance(t *testing.T) {
	tr := NewCountingTracer()
	runTraced(t, tr)
	// Every committed instruction decoded and retired; no squashes in
	// this straight-line program.
	if tr.Count(cpu.TraceDecode) != tr.Count(cpu.TraceRetire) {
		t.Errorf("decode %d != retire %d for a squash-free program",
			tr.Count(cpu.TraceDecode), tr.Count(cpu.TraceRetire))
	}
	if tr.Count(cpu.TraceSquash) != 0 {
		t.Errorf("unexpected squashes: %d", tr.Count(cpu.TraceSquash))
	}
	if tr.Count(cpu.TraceSBComplete) != 1 {
		t.Errorf("sb completions = %d, want 1", tr.Count(cpu.TraceSBComplete))
	}
	if tr.Count(cpu.TraceFenceStall) == 0 {
		t.Error("fence never stalled despite a draining store")
	}
}

func TestSquashEventsOnMisprediction(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 0)
	b.MovI(isa.R2, 8)
	b.Label("loop")
	b.AddI(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R2, "loop") // final iteration mispredicts
	b.Halt()
	cfg := machine.DefaultConfig()
	cfg.Cores = 1
	m, err := machine.New(cfg, b.MustBuild(), []machine.Thread{{Entry: "main"}})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewCountingTracer()
	Attach(m, tr)
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if tr.Count(cpu.TraceSquash) == 0 {
		t.Error("loop exit produced no squash events")
	}
}

// Tracing must not change architectural results or timing.
func TestTracingIsTransparent(t *testing.T) {
	run := func(tr cpu.Tracer) int64 {
		cfg := machine.DefaultConfig()
		cfg.Cores = 1
		m, err := machine.New(cfg, traceProgram(), []machine.Thread{{Entry: "main"}})
		if err != nil {
			t.Fatal(err)
		}
		if tr != nil {
			Attach(m, tr)
		}
		cycles, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	plain := run(nil)
	traced := run(NewCountingTracer())
	if plain != traced {
		t.Errorf("tracing changed timing: %d vs %d cycles", plain, traced)
	}
}

func firstLines(s string, n int) string {
	lines := strings.SplitN(s, "\n", n+1)
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
