package cpu

import (
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/memsys"
)

// Pipeline stages of a ROB entry.
const (
	stWaiting   uint8 = iota // operands or ordering constraints outstanding
	stExecuting              // execution begun; completes at readyAt
	stDone                   // result available / ready to retire
)

// robEntry is one reorder-buffer slot.
type robEntry struct {
	inst isa.Instruction
	pc   int

	stage   uint8
	readyAt int64

	val  int64 // result (ALU/load/CAS success flag)
	addr int64 // normalized effective address (memory ops)
	sval int64 // store data / CAS new value

	casOld int64 // CAS expected value, latched at execution start

	addrOK   bool
	resolved bool // branches: outcome computed
	faulted  bool // architectural fault if this entry commits

	predTaken bool

	// fence scope state
	fsb        uint8 // fence scope bits (the paper's FSB)
	fenceEntry uint8 // captured scope entry for a speculative fence
	fenceFull  bool  // speculative fence demoted to full-fence behaviour

	specPastFence bool // load executed past an unretired fence (spec mode)
	accessedMem   bool // load/CAS reached the cache hierarchy

	// operand producer seqs (-1: read the committed register file)
	src1, src2, src3 int64

	snap fssSnapshot // FSS checkpoint taken before this entry decoded
}

// sbEntry is one store-buffer slot. Entries are kept in program order;
// completion may happen out of order (non-FIFO drain under RMO).
type sbEntry struct {
	addr     int64
	val      int64
	fsb      uint8
	inflight bool
	readyAt  int64
}

// Core simulates one out-of-order core executing a thread of the program.
// All state transitions are driven by Tick and are fully deterministic.
type Core struct {
	id   int
	cfg  Config
	prog *isa.Program
	img  *memsys.Image
	hier *memsys.Hierarchy

	regs   [isa.NumRegs]int64
	regTag [isa.NumRegs]int64 // seq of newest in-flight writer, -1 if none

	entries []robEntry
	robMask uint64
	head    uint64 // seq of oldest in-flight instruction
	tail    uint64 // seq of next instruction to decode

	sb         []sbEntry
	sbInflight int

	scope *scopeHW
	pred  *predictor

	fetchPC       int
	redirectUntil int64

	haltInROB          int
	haltDone           bool
	unresolvedBranches int
	fenceSeqs          []uint64 // in-flight fences (in-window speculation)

	robIncompleteMem int // loads/CAS in ROB not yet completed
	robStoreCount    int // stores still in ROB

	snoopPending []int64

	// OnStoreComplete, if set, is invoked when a store drains from the
	// store buffer and its value becomes globally visible. The machine
	// uses it to deliver snoop notifications to other cores.
	OnStoreComplete func(core int, addr int64)

	tracer  Tracer
	profile fenceProfile

	stats Stats
	fault error
	cycle int64

	fenceStallSeen bool // one fence-stall count per cycle
	robFullSeen    bool
	sbFullSeen     bool
}

// NewCore builds a core executing prog from startPC with the given initial
// register values.
func NewCore(id int, cfg Config, prog *isa.Program, startPC int, initRegs map[isa.Reg]int64, img *memsys.Image, hier *memsys.Hierarchy) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if startPC < 0 || startPC > len(prog.Code) {
		return nil, fmt.Errorf("cpu: start pc %d out of range", startPC)
	}
	c := &Core{
		id:      id,
		cfg:     cfg,
		prog:    prog,
		img:     img,
		hier:    hier,
		entries: make([]robEntry, cfg.ROBSize),
		robMask: uint64(cfg.ROBSize - 1),
		sb:      make([]sbEntry, 0, cfg.SBSize),
		pred:    newPredictor(cfg.PredictorBits),
		fetchPC: startPC,
	}
	c.scope = newScopeHW(&c.cfg, &c.stats)
	for i := range c.regTag {
		c.regTag[i] = -1
	}
	for r, v := range initRegs {
		if r == isa.R0 {
			continue
		}
		c.regs[r] = v
	}
	return c, nil
}

// slot returns the ROB entry for seq.
func (c *Core) slot(seq uint64) *robEntry { return &c.entries[seq&c.robMask] }

// Done reports whether the core has committed a halt and fully drained.
func (c *Core) Done() bool {
	return c.haltDone && c.head == c.tail && len(c.sb) == 0
}

// Fault returns the architectural fault that stopped the core, if any.
func (c *Core) Fault() error { return c.fault }

// Stats returns the core's statistics.
func (c *Core) Stats() *Stats { return &c.stats }

// Reg returns the committed value of a register.
func (c *Core) Reg(r isa.Reg) int64 { return c.regs[r] }

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// NoteRemoteStore records that another core made a store to addr globally
// visible; used to replay loads that speculatively executed past a fence.
func (c *Core) NoteRemoteStore(addr int64) {
	if !c.cfg.InWindowSpec || c.Done() {
		return
	}
	c.snoopPending = append(c.snoopPending, addr)
}

// Tick advances the core by one cycle.
func (c *Core) Tick(cycle int64) {
	if c.Done() || c.fault != nil {
		return
	}
	c.cycle = cycle
	c.stats.Cycles++
	c.fenceStallSeen = false
	c.robFullSeen = false
	c.sbFullSeen = false

	c.processSnoops()
	c.completeSB()
	c.completeROB()
	c.retire()
	c.issueSB()
	c.schedule()
	c.fetch()

	occ := int(c.tail - c.head)
	c.stats.SumROBOccupancy += uint64(occ)
	if occ > c.stats.MaxROBOccupancy {
		c.stats.MaxROBOccupancy = occ
	}
}

// --- helpers ---

func (c *Core) decBits(counts []int, bits uint8) {
	for e := 0; bits != 0; e++ {
		if bits&1 != 0 {
			counts[e]--
		}
		bits >>= 1
	}
}

func (c *Core) incBits(counts []int, bits uint8) {
	for e := 0; bits != 0; e++ {
		if bits&1 != 0 {
			counts[e]++
		}
		bits >>= 1
	}
}

// srcReady reports whether the producer of an operand has its value
// available.
func (c *Core) srcReady(src int64) bool {
	if src < 0 || uint64(src) < c.head {
		return true // committed register file
	}
	return c.slot(uint64(src)).stage == stDone
}

// readSrc returns an operand value (producer's result or committed
// register). Callers must have checked srcReady.
func (c *Core) readSrc(src int64, r isa.Reg) int64 {
	if src >= 0 && uint64(src) >= c.head {
		return c.slot(uint64(src)).val
	}
	return c.regs[r]
}

// resolveSrc captures the operand's producer at decode time.
func (c *Core) resolveSrc(r isa.Reg) int64 {
	if r == isa.R0 {
		return -1
	}
	return c.regTag[r]
}

// --- snoop-triggered replay of speculative loads ---

func (c *Core) processSnoops() {
	if len(c.snoopPending) == 0 {
		return
	}
	addrs := c.snoopPending
	c.snoopPending = c.snoopPending[:0]
	for _, addr := range addrs {
		for seq := c.head; seq < c.tail; seq++ {
			e := c.slot(seq)
			if e.inst.Op == isa.OpLoad && e.specPastFence && e.stage != stWaiting &&
				e.addrOK && e.addr == addr {
				// Replay from this load: it may have observed a value
				// inconsistent with the fence it bypassed.
				c.stats.SpecLoadFlush++
				c.squash(seq)
				c.fetchPC = e.pc
				c.redirectUntil = c.cycle + 1 + int64(c.cfg.BranchPenalty)
				break
			}
		}
	}
}

// --- store buffer ---

func (c *Core) completeSB() {
	w := 0
	for i := range c.sb {
		e := &c.sb[i]
		if e.inflight && e.readyAt <= c.cycle {
			c.img.Store(e.addr, e.val)
			c.decBits(c.scope.sbCnt, e.fsb)
			c.sbInflight--
			c.trace(TraceSBComplete, 0, isa.Instruction{Op: isa.OpStore}, e.addr)
			if c.OnStoreComplete != nil {
				c.OnStoreComplete(c.id, e.addr)
			}
			continue // drop entry
		}
		c.sb[w] = *e
		w++
	}
	c.sb = c.sb[:w]
}

func (c *Core) issueSB() {
	for i := range c.sb {
		e := &c.sb[i]
		if e.inflight {
			continue
		}
		if c.sbInflight >= c.cfg.MSHRs {
			break
		}
		if c.cfg.FIFOStoreBuffer && i != 0 {
			break
		}
		// Per-location ordering: an older incomplete same-address store
		// must drain first.
		blocked := false
		for j := 0; j < i; j++ {
			if c.sb[j].addr == e.addr {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		lat := c.hier.Access(c.id, e.addr, true)
		e.inflight = true
		e.readyAt = c.cycle + int64(lat)
		c.sbInflight++
		c.trace(TraceSBIssue, 0, isa.Instruction{Op: isa.OpStore}, e.readyAt)
	}
}

// --- completion ---

func (c *Core) completeROB() {
	for seq := c.head; seq < c.tail; seq++ {
		e := c.slot(seq)
		if e.stage != stExecuting || e.readyAt > c.cycle {
			continue
		}
		c.trace(TraceComplete, seq, e.inst, e.val)
		switch e.inst.Op {
		case isa.OpLoad:
			e.stage = stDone
			c.robIncompleteMem--
			c.decBits(c.scope.robCnt, e.fsb)
			c.decBits(c.scope.robLoadCnt, e.fsb)
		case isa.OpCAS:
			// The read-modify-write happens atomically at completion.
			if c.img.CompareAndSwap(e.addr, e.casOld, e.sval) {
				e.val = 1
				if c.OnStoreComplete != nil {
					c.OnStoreComplete(c.id, e.addr)
				}
			} else {
				e.val = 0
			}
			e.stage = stDone
			c.robIncompleteMem--
			c.decBits(c.scope.robCnt, e.fsb)
			c.decBits(c.scope.robLoadCnt, e.fsb)
		default:
			e.stage = stDone
		}
	}
}

// --- retirement ---

func (c *Core) retire() {
	for n := 0; n < c.cfg.RetireWidth && c.head < c.tail; n++ {
		e := c.slot(c.head)
		op := e.inst.Op

		if op == isa.OpFence && (c.cfg.InWindowSpec || e.inst.Order == isa.OrderSS) {
			if !c.fenceMayRetire(e) {
				if !c.fenceStallSeen {
					c.stats.FenceStallCycles++
					c.stats.FenceStallRetire++
					if c.tail-c.head == 1 {
						// Only the fence itself is in flight: a pure
						// drain wait.
						c.stats.FenceIdleCycles++
					}
					c.fenceStallSeen = true
				}
				site := c.profile.site(e.pc, e.inst.String())
				site.StallCycles++
				if c.tail-c.head == 1 {
					site.IdleCycles++
				}
				c.trace(TraceFenceStall, c.head, e.inst, 1)
				return
			}
		}
		if e.stage != stDone {
			return
		}
		if e.faulted {
			c.fault = fmt.Errorf("cpu: core %d: invalid memory access at pc %d (%s)", c.id, e.pc, e.inst)
			return
		}

		if op == isa.OpStore {
			if len(c.sb) >= c.cfg.SBSize {
				if !c.sbFullSeen {
					c.stats.SBFullCycles++
					c.sbFullSeen = true
				}
				return
			}
			c.sb = append(c.sb, sbEntry{addr: e.addr, val: e.sval, fsb: e.fsb})
			c.robStoreCount--
			c.decBits(c.scope.robCnt, e.fsb)
			c.incBits(c.scope.sbCnt, e.fsb)
		}

		if e.inst.Writes() {
			c.regs[e.inst.Rd] = e.val
			if c.regTag[e.inst.Rd] == int64(c.head) {
				c.regTag[e.inst.Rd] = -1
			}
		}

		c.stats.Committed++
		c.trace(TraceRetire, c.head, e.inst, e.val)
		switch op {
		case isa.OpLoad:
			c.stats.CommittedLoads++
		case isa.OpStore:
			c.stats.CommittedStores++
		case isa.OpCAS:
			c.stats.CommittedCAS++
		case isa.OpFence:
			c.stats.CommittedFences++
			c.profile.site(e.pc, e.inst.String()).Executions++
			if c.cfg.InWindowSpec {
				c.removeFenceSeq(c.head)
			}
		case isa.OpHalt:
			c.haltInROB--
			c.haltDone = true
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			c.stats.Branches++
		}
		c.head++
	}
}

func (c *Core) removeFenceSeq(seq uint64) {
	for i, s := range c.fenceSeqs {
		if s == seq {
			c.fenceSeqs = append(c.fenceSeqs[:i], c.fenceSeqs[i+1:]...)
			return
		}
	}
}

// fenceMayRetire is the in-window-speculation retirement check: the fence
// consults the store-buffer FSBs (all older loads have completed, since
// loads retire only when done). A load-load fence never waits for stores:
// by the time it reaches the ROB head its ordering obligation is already
// met.
func (c *Core) fenceMayRetire(e *robEntry) bool {
	if e.inst.Order == isa.OrderLL {
		return true
	}
	if e.fenceFull {
		return len(c.sb) == 0
	}
	return c.scope.sbCnt[e.fenceEntry] == 0
}

// --- execution scheduling ---

func (c *Core) schedule() {
	for seq := c.head; seq < c.tail; seq++ {
		e := c.slot(seq)
		if e.stage != stWaiting {
			continue
		}
		switch e.inst.Op {
		case isa.OpLoad:
			c.tryStartLoad(e, seq)
		case isa.OpStore:
			c.tryStartStore(e)
		case isa.OpCAS:
			c.tryStartCAS(e, seq)
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			c.tryResolveBranch(e, seq)
		default:
			c.tryStartALU(e)
		}
		if c.tracer != nil && seq < c.tail && e.stage == stExecuting {
			c.trace(TraceExecute, seq, e.inst, e.readyAt)
		}
	}
}

func aluLatency(op isa.Op) int64 {
	switch op {
	case isa.OpMul:
		return 3
	case isa.OpDiv, isa.OpRem:
		return 12
	default:
		return 1
	}
}

func (c *Core) tryStartALU(e *robEntry) {
	if !c.srcReady(e.src1) || !c.srcReady(e.src2) {
		return
	}
	a := c.readSrc(e.src1, e.inst.Rs1)
	b := c.readSrc(e.src2, e.inst.Rs2)
	in := &e.inst
	var v int64
	switch in.Op {
	case isa.OpMovI:
		v = in.Imm
	case isa.OpAdd:
		v = a + b
	case isa.OpAddI:
		v = a + in.Imm
	case isa.OpSub:
		v = a - b
	case isa.OpMul:
		v = a * b
	case isa.OpDiv:
		if b != 0 {
			v = a / b
		}
	case isa.OpRem:
		if b != 0 {
			v = a % b
		}
	case isa.OpAnd:
		v = a & b
	case isa.OpAndI:
		v = a & in.Imm
	case isa.OpOr:
		v = a | b
	case isa.OpXor:
		v = a ^ b
	case isa.OpXorI:
		v = a ^ in.Imm
	case isa.OpShl:
		v = a << (uint64(b) & 63)
	case isa.OpShlI:
		v = a << (uint64(in.Imm) & 63)
	case isa.OpShr:
		v = a >> (uint64(b) & 63)
	case isa.OpShrI:
		v = a >> (uint64(in.Imm) & 63)
	case isa.OpSlt:
		if a < b {
			v = 1
		}
	case isa.OpSltI:
		if a < in.Imm {
			v = 1
		}
	case isa.OpSeq:
		if a == b {
			v = 1
		}
	}
	e.val = v
	e.stage = stExecuting
	e.readyAt = c.cycle + aluLatency(in.Op)
}

func (c *Core) tryResolveBranch(e *robEntry, seq uint64) {
	if !c.srcReady(e.src1) || !c.srcReady(e.src2) {
		return
	}
	a := c.readSrc(e.src1, e.inst.Rs1)
	b := c.readSrc(e.src2, e.inst.Rs2)
	var taken bool
	switch e.inst.Op {
	case isa.OpBeq:
		taken = a == b
	case isa.OpBne:
		taken = a != b
	case isa.OpBlt:
		taken = a < b
	case isa.OpBge:
		taken = a >= b
	}
	e.resolved = true
	e.stage = stExecuting
	e.readyAt = c.cycle + 1
	c.unresolvedBranches--
	c.pred.update(e.pc, taken)
	if taken == e.predTaken {
		return
	}
	// Misprediction: squash the wrong path and redirect fetch.
	c.stats.Mispredicts++
	c.squash(seq + 1)
	if taken {
		c.fetchPC = int(e.inst.Imm)
	} else {
		c.fetchPC = e.pc + 1
	}
	c.redirectUntil = c.cycle + 1 + int64(c.cfg.BranchPenalty)
}

// olderStoreBlocks scans program-order-older ROB stores for address
// conflicts with a load at addr. It returns (blocked, forward, fval):
// blocked when the load must wait, forward when a value can be bypassed.
func (c *Core) olderStoreBlocks(seq uint64, addr int64) (bool, bool, int64) {
	for s := seq; s > c.head; {
		s--
		f := c.slot(s)
		switch f.inst.Op {
		case isa.OpStore:
			if !f.addrOK {
				return true, false, 0 // unresolved older store address
			}
			if f.addr != addr {
				continue
			}
			if f.stage == stDone {
				return false, true, f.sval // store-to-load forwarding
			}
			return true, false, 0 // matching store, data not ready
		case isa.OpCAS:
			if !f.addrOK {
				return true, false, 0
			}
			if f.addr != addr {
				continue
			}
			if f.stage == stDone {
				// CAS already applied to memory; read from the image.
				return false, false, 0
			}
			return true, false, 0
		}
	}
	return false, false, 0
}

func (c *Core) tryStartLoad(e *robEntry, seq uint64) {
	if !c.srcReady(e.src1) {
		return
	}
	raw := c.readSrc(e.src1, e.inst.Rs1) + e.inst.Imm
	if !e.addrOK {
		e.addr = c.img.Norm(raw)
		e.faulted = !c.img.Valid(raw)
		e.addrOK = true
	}
	blocked, forward, fval := c.olderStoreBlocks(seq, e.addr)
	if blocked {
		return
	}
	if forward {
		e.val = fval
		e.stage = stExecuting
		e.readyAt = c.cycle + int64(c.cfg.ForwardLatency)
		return
	}
	// Forward from the youngest same-address store-buffer entry, if any.
	for i := len(c.sb) - 1; i >= 0; i-- {
		if c.sb[i].addr == e.addr {
			e.val = c.sb[i].val
			e.stage = stExecuting
			e.readyAt = c.cycle + int64(c.cfg.ForwardLatency)
			return
		}
	}
	lat := c.hier.Access(c.id, e.addr, false)
	e.val = c.img.Load(e.addr)
	e.accessedMem = true
	e.stage = stExecuting
	e.readyAt = c.cycle + int64(lat)
	if c.cfg.InWindowSpec {
		for _, fs := range c.fenceSeqs {
			if fs < seq {
				e.specPastFence = true
				break
			}
		}
	}
}

func (c *Core) tryStartStore(e *robEntry) {
	if c.srcReady(e.src1) && !e.addrOK {
		raw := c.readSrc(e.src1, e.inst.Rs1) + e.inst.Imm
		e.addr = c.img.Norm(raw)
		e.faulted = !c.img.Valid(raw)
		e.addrOK = true
	}
	if !e.addrOK || !c.srcReady(e.src2) {
		return
	}
	e.sval = c.readSrc(e.src2, e.inst.Rs2)
	e.stage = stExecuting
	e.readyAt = c.cycle + 1
}

func (c *Core) tryStartCAS(e *robEntry, seq uint64) {
	if c.srcReady(e.src1) && !e.addrOK {
		raw := c.readSrc(e.src1, e.inst.Rs1) + e.inst.Imm
		e.addr = c.img.Norm(raw)
		e.faulted = !c.img.Valid(raw)
		e.addrOK = true
	}
	if !e.addrOK || !c.srcReady(e.src2) || !c.srcReady(e.src3) {
		return
	}
	// A CAS executes only from the ROB head (oldest in flight) and after
	// same-address buffered stores have drained, keeping the
	// read-modify-write per-location ordered.
	if seq != c.head {
		return
	}
	for i := range c.sb {
		if c.sb[i].addr == e.addr {
			return
		}
	}
	e.casOld = c.readSrc(e.src2, e.inst.Rs2)
	e.sval = c.readSrc(e.src3, e.inst.Rs3)
	lat := c.hier.Access(c.id, e.addr, true)
	e.accessedMem = true
	e.stage = stExecuting
	e.readyAt = c.cycle + int64(lat)
}

// --- squash ---

func (c *Core) squash(fromSeq uint64) {
	if fromSeq >= c.tail {
		return
	}
	// Restore the fence scope stack to its state before fromSeq decoded.
	switch c.cfg.Recovery {
	case RecoverySnapshot:
		c.scope.restoreSnapshot(c.slot(fromSeq).snap)
	case RecoveryShadow:
		c.scope.restoreShadow()
	}
	for seq := fromSeq; seq < c.tail; seq++ {
		e := c.slot(seq)
		c.trace(TraceSquash, seq, e.inst, 0)
		switch e.inst.Op {
		case isa.OpLoad, isa.OpCAS:
			if e.stage != stDone {
				c.robIncompleteMem--
				c.decBits(c.scope.robCnt, e.fsb)
				c.decBits(c.scope.robLoadCnt, e.fsb)
			}
			if e.accessedMem {
				c.stats.WrongPathMem++
			}
		case isa.OpStore:
			c.robStoreCount--
			c.decBits(c.scope.robCnt, e.fsb)
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			if !e.resolved {
				c.unresolvedBranches--
			}
		case isa.OpHalt:
			c.haltInROB--
		}
		c.stats.Squashed++
	}
	c.tail = fromSeq
	// Rebuild the register rename tags from the surviving entries.
	for i := range c.regTag {
		c.regTag[i] = -1
	}
	for seq := c.head; seq < c.tail; seq++ {
		e := c.slot(seq)
		if e.inst.Writes() {
			c.regTag[e.inst.Rd] = int64(seq)
		}
	}
	// Drop squashed fences.
	w := 0
	for _, s := range c.fenceSeqs {
		if s < fromSeq {
			c.fenceSeqs[w] = s
			w++
		}
	}
	c.fenceSeqs = c.fenceSeqs[:w]
}

// --- fetch / decode / issue ---

// canIssueFence is the non-speculative fence issue check (the paper's
// "Issuing Fence" step): the fence may issue only when no prior in-scope
// access of the ordered kind is incomplete. OrderLL only waits for loads
// (prior stores and the store buffer are not ordered by it).
func (c *Core) canIssueFence(scope isa.ScopeKind, order isa.FenceOrder) bool {
	full := scope == isa.ScopeGlobal
	var entry uint8
	switch scope {
	case isa.ScopeClass:
		entry, full = c.scope.fenceClassEntry()
	case isa.ScopeSet:
		if c.scope.fenceSetFull() {
			full = true
		} else {
			entry = c.scope.setEntry()
		}
	}
	if order == isa.OrderLL {
		if full {
			return c.robIncompleteMem == 0
		}
		return c.scope.robLoadCnt[entry] == 0
	}
	if full {
		return c.robIncompleteMem == 0 && c.robStoreCount == 0 && len(c.sb) == 0
	}
	return c.scope.robCnt[entry] == 0 && c.scope.sbCnt[entry] == 0
}

func (c *Core) fetch() {
	if c.redirectUntil > c.cycle {
		return
	}
	for n := 0; n < c.cfg.IssueWidth; n++ {
		if c.haltInROB > 0 || c.haltDone {
			return
		}
		if c.tail-c.head >= uint64(c.cfg.ROBSize) {
			if !c.robFullSeen {
				c.stats.ROBFullCycles++
				c.robFullSeen = true
			}
			return
		}
		pc := c.fetchPC
		var in isa.Instruction
		if pc >= 0 && pc < len(c.prog.Code) {
			in = c.prog.Code[pc]
		} else {
			in = isa.Instruction{Op: isa.OpHalt} // running off the end halts
		}

		if in.Op == isa.OpFence && in.Order != isa.OrderSS &&
			!c.cfg.InWindowSpec && !c.canIssueFence(in.Scope, in.Order) {
			if !c.fenceStallSeen {
				c.stats.FenceStallCycles++
				c.stats.FenceStallIssue++
				if c.head == c.tail {
					// Nothing left in flight: the core is purely
					// waiting for the fence's memory drain.
					c.stats.FenceIdleCycles++
				}
				c.fenceStallSeen = true
			}
			site := c.profile.site(pc, in.String())
			site.StallCycles++
			if c.head == c.tail {
				site.IdleCycles++
			}
			c.trace(TraceFenceStall, c.tail, in, 0)
			return
		}

		seq := c.tail
		e := c.slot(seq)
		*e = robEntry{inst: in, pc: pc, src1: -1, src2: -1, src3: -1}
		e.snap = c.scope.snapshot()
		c.trace(TraceDecode, seq, in, int64(pc))

		nextPC := pc + 1
		switch in.Op {
		case isa.OpNop:
			e.stage = stDone
		case isa.OpHalt:
			e.stage = stDone
			c.haltInROB++
		case isa.OpMovI:
			e.stage = stWaiting
		case isa.OpJmp:
			e.stage = stDone
			nextPC = int(in.Imm)
		case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
			e.src1 = c.resolveSrc(in.Rs1)
			e.src2 = c.resolveSrc(in.Rs2)
			e.predTaken = c.pred.predict(pc, int(in.Imm))
			if e.predTaken {
				nextPC = int(in.Imm)
			}
			c.unresolvedBranches++
			e.stage = stWaiting
		case isa.OpFence:
			e.stage = stDone
			if c.cfg.InWindowSpec || in.Order == isa.OrderSS {
				// Capture the fence's effective scope at decode. A
				// store-store fence always takes this path: it never
				// blocks issue, only its own retirement — younger
				// stores cannot enter the store buffer before it
				// retires, while younger loads pass freely.
				switch in.Scope {
				case isa.ScopeGlobal:
					e.fenceFull = true
				case isa.ScopeClass:
					e.fenceEntry, e.fenceFull = c.scope.fenceClassEntry()
				case isa.ScopeSet:
					if c.scope.fenceSetFull() {
						e.fenceFull = true
					} else {
						e.fenceEntry = c.scope.setEntry()
					}
				}
				if c.cfg.InWindowSpec && in.Order != isa.OrderSS {
					// Full and load-load fences constrain speculative
					// loads; store-store fences do not.
					c.fenceSeqs = append(c.fenceSeqs, seq)
				}
			}
		case isa.OpFsStart:
			e.stage = stDone
			c.scope.fsStart(in.Imm, c.unresolvedBranches == 0)
		case isa.OpFsEnd:
			e.stage = stDone
			c.scope.fsEnd(c.unresolvedBranches == 0)
			c.scope.drainGuard()
		case isa.OpLoad:
			e.src1 = c.resolveSrc(in.Rs1)
			e.fsb = c.memFSB(in)
			c.incBits(c.scope.robCnt, e.fsb)
			c.incBits(c.scope.robLoadCnt, e.fsb)
			c.robIncompleteMem++
			e.stage = stWaiting
		case isa.OpStore:
			e.src1 = c.resolveSrc(in.Rs1)
			e.src2 = c.resolveSrc(in.Rs2)
			e.fsb = c.memFSB(in)
			c.incBits(c.scope.robCnt, e.fsb)
			c.robStoreCount++
			e.stage = stWaiting
		case isa.OpCAS:
			e.src1 = c.resolveSrc(in.Rs1)
			e.src2 = c.resolveSrc(in.Rs2)
			e.src3 = c.resolveSrc(in.Rs3)
			e.fsb = c.memFSB(in)
			c.incBits(c.scope.robCnt, e.fsb)
			c.incBits(c.scope.robLoadCnt, e.fsb)
			c.robIncompleteMem++
			e.stage = stWaiting
		default: // remaining ALU ops
			e.src1 = c.resolveSrc(in.Rs1)
			e.src2 = c.resolveSrc(in.Rs2)
			e.stage = stWaiting
		}

		if in.Writes() {
			c.regTag[in.Rd] = int64(seq)
		}
		c.tail = seq + 1
		c.fetchPC = nextPC
	}
}

// memFSB computes the fence scope bits for a decoded memory operation: one
// bit per active class scope on the FSS, plus the reserved set-scope bit
// for compiler-flagged accesses.
func (c *Core) memFSB(in isa.Instruction) uint8 {
	m := c.scope.currentMask()
	if in.SetFlag {
		m |= c.scope.setBit()
	}
	return m
}
