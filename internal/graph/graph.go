// Package graph provides the synthetic graph substrate for the parallel
// spanning tree (pst) and parallel transitive closure (ptc) benchmarks:
// deterministic random connected graphs in CSR form, plus verifiers for
// spanning trees and reachability closures.
package graph

import (
	"fmt"
	"math/rand"
)

// Graph is an undirected graph in compressed-sparse-row form.
type Graph struct {
	V      int
	RowPtr []int32 // len V+1
	Col    []int32 // len RowPtr[V]
}

// Edges returns the number of directed edge slots (2x undirected edges).
func (g *Graph) Edges() int { return len(g.Col) }

// Neighbors returns the adjacency list of v.
func (g *Graph) Neighbors(v int) []int32 {
	return g.Col[g.RowPtr[v]:g.RowPtr[v+1]]
}

// RandomConnected builds a deterministic random connected graph: a random
// spanning tree (guaranteeing connectivity) plus extra random edges up to
// the requested average degree.
func RandomConnected(v int, avgDegree float64, seed int64) (*Graph, error) {
	if v < 2 {
		return nil, fmt.Errorf("graph: need at least 2 vertices, got %d", v)
	}
	if avgDegree < 2 {
		return nil, fmt.Errorf("graph: average degree %v must be >= 2 (tree edges alone use ~2)", avgDegree)
	}
	rng := rand.New(rand.NewSource(seed))
	// Adjacency as sorted edge slices with binary-search dedup: no
	// per-vertex map allocation, and the lists come out already in the
	// deterministic ascending order the CSR wants. Identical edges and RNG
	// draw order to the previous map-based builder, so generated graphs —
	// and everything simulated on them — are unchanged.
	adj := make([][]int32, v)
	insert := func(a, b int32) {
		row := adj[a]
		lo, hi := 0, len(row)
		for lo < hi {
			mid := (lo + hi) / 2
			if row[mid] < b {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if lo < len(row) && row[lo] == b {
			return // duplicate edge
		}
		row = append(row, 0)
		copy(row[lo+1:], row[lo:])
		row[lo] = b
		adj[a] = row
	}
	addEdge := func(a, b int32) {
		if a == b {
			return
		}
		insert(a, b)
		insert(b, a)
	}
	// Random spanning tree via a random attachment order.
	perm := rng.Perm(v)
	for i := 1; i < v; i++ {
		a := int32(perm[i])
		b := int32(perm[rng.Intn(i)])
		addEdge(a, b)
	}
	// Extra edges to reach the target degree.
	target := int(avgDegree * float64(v) / 2)
	for e := v - 1; e < target; e++ {
		addEdge(int32(rng.Intn(v)), int32(rng.Intn(v)))
	}
	g := &Graph{V: v, RowPtr: make([]int32, v+1)}
	for i := 0; i < v; i++ {
		g.RowPtr[i+1] = g.RowPtr[i] + int32(len(adj[i]))
	}
	g.Col = make([]int32, g.RowPtr[v])
	for i := 0; i < v; i++ {
		copy(g.Col[g.RowPtr[i]:], adj[i])
	}
	return g, nil
}

// HasEdge reports whether (a, b) is an edge.
func (g *Graph) HasEdge(a, b int32) bool {
	for _, nb := range g.Neighbors(int(a)) {
		if nb == b {
			return true
		}
	}
	return false
}

// VerifySpanningTree checks that parent[] encodes a spanning tree of g
// rooted at root: every vertex reaches root through parent edges that
// exist in g, with no cycles.
func VerifySpanningTree(g *Graph, root int32, parent []int64) error {
	if len(parent) < g.V {
		return fmt.Errorf("graph: parent array too short: %d < %d", len(parent), g.V)
	}
	state := make([]uint8, g.V) // 0 unvisited, 1 in progress, 2 ok
	var walk func(v int32) error
	walk = func(v int32) error {
		switch state[v] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("graph: cycle through vertex %d", v)
		}
		state[v] = 1
		if v != root {
			p := int32(parent[v])
			if p < 0 || int(p) >= g.V {
				return fmt.Errorf("graph: vertex %d has invalid parent %d", v, p)
			}
			if !g.HasEdge(v, p) {
				return fmt.Errorf("graph: parent edge (%d,%d) not in graph", v, p)
			}
			if err := walk(p); err != nil {
				return err
			}
		}
		state[v] = 2
		return nil
	}
	for v := 0; v < g.V; v++ {
		if err := walk(int32(v)); err != nil {
			return err
		}
	}
	return nil
}

// ReachClosure computes the reference fixpoint for the ptc benchmark:
// reach[v] is the bitmask of sources that can reach v (undirected, so
// membership in the source's connected component).
func ReachClosure(g *Graph, sources []int32) []int64 {
	reach := make([]int64, g.V)
	for i, s := range sources {
		reach[s] |= 1 << uint(i)
	}
	changed := true
	for changed {
		changed = false
		for v := 0; v < g.V; v++ {
			rv := reach[v]
			if rv == 0 {
				continue
			}
			for _, nb := range g.Neighbors(v) {
				if reach[nb]|rv != reach[nb] {
					reach[nb] |= rv
					changed = true
				}
			}
		}
	}
	return reach
}
