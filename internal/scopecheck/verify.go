package scopecheck

import (
	"fmt"

	"sfence/internal/isa"
)

// Verify analyzes the scenario and checks every fence annotation.
//
// The soundness criterion is the synchronization-domain rule. Define
// domain(C) as every location accessed under an fs_start(C) bracket by
// any thread, and setDomain as every location accessed by a flagged
// instruction. At a class-scoped fence whose innermost bracket is C, a
// pending thread-escaping access that touches domain(C) but was not
// issued under a C bracket has leaked out of the synchronized region the
// scope promises to order — an Error (the fence will not wait for it,
// yet the region's protocol involves its location). The same holds for
// an unflagged escaping access touching setDomain at a set fence.
// Escaping pending accesses outside the fence's domain are reported as
// Notes: orderings a traditional fence would impose but that no
// synchronization discipline of this program demands (e.g. a relaxed
// CAS counter); whether they matter is exactly what the dynamic oracle
// cross-check in ref.CheckConcurrent decides, which is why the fuzz loop
// asserts static-clean ∧ dynamic-clean together.
//
// Atomic RMWs (CAS) are single-location-atomic at completion, so an
// uncovered escaping CAS is a Warning, not an Error: lock and counter
// idioms legally leave relaxed CASes unordered.
//
// Global fences additionally get over-scope Notes when their escaping
// pending set provably fits a narrower scope — the optimization report
// the paper's compiler would act on.
func Verify(sc *Scenario) (*Report, error) {
	a, err := analyze(sc)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Scenario: sc.Name,
		Escaping: a.escaping.describe(a.rv),
		Fences:   len(a.fences),
	}

	for _, obs := range a.sortedFences() {
		a.verifyFence(obs, rep)
	}
	sortFindings(rep.Findings)
	return rep, nil
}

// domainFor returns the fence's synchronization domain: the locations
// its scope claims responsibility for.
func (a *analysis) domainFor(obs *fenceObs) locSet {
	switch obs.scope {
	case isa.ScopeClass:
		if obs.cid < 0 {
			return locSet{}
		}
		idx, ok := a.cidIdx[obs.cid]
		if !ok {
			return locSet{}
		}
		if d := a.cidDomain[idx]; d != nil {
			return *d
		}
		return locSet{}
	case isa.ScopeSet:
		return a.setDomain
	}
	return locSet{}
}

func (a *analysis) verifyFence(obs *fenceObs, rep *Report) {
	rv := a.rv
	domain := a.domainFor(obs)

	if obs.scope == isa.ScopeClass && obs.cid == -1 {
		rep.Findings = append(rep.Findings, Finding{
			Severity: SevWarning, Thread: obs.thread, PC: obs.pc, Kind: "under-scope",
			Msg: "class fence with unresolvable bracket context (join of different cids); coverage not verified",
		})
		return
	}

	// Over-scope candidates for global fences.
	escPendings := 0
	allFlagged, allInBracket := true, true
	bracketBit := uint64(0)
	if obs.cid >= 0 {
		bracketBit = a.cidBit(obs.cid)
	}

	for _, spc := range sortedPend(obs.pend) {
		p := obs.pend[spc]
		if !relevant(obs.order, p) {
			continue
		}
		esc := p.locs.intersect(rv, a.escaping)
		if esc.empty() {
			continue
		}
		escPendings++
		if !p.flagged {
			allFlagged = false
		}
		if bracketBit == 0 || p.cids&bracketBit == 0 {
			allInBracket = false
		}
		if a.covered(obs, p) {
			continue
		}
		// Uncovered escaping pending access at a scoped fence.
		inDomain := esc.intersects(rv, domain)
		switch {
		case inDomain && p.cas:
			rep.Findings = append(rep.Findings, Finding{
				Severity: SevWarning, Thread: obs.thread, PC: obs.pc, Kind: "unordered-atomic",
				Msg: fmt.Sprintf("escaping atomic RMW at pc %d (%s) is in this %s fence's domain but not covered by it",
					spc, esc.describe(rv), obs.scope),
			})
		case inDomain && esc.approx:
			// The access's address did not resolve (pointer-chased); its
			// broad attribution may alias the domain spuriously, so this
			// cannot anchor an Error.
			rep.Findings = append(rep.Findings, Finding{
				Severity: SevWarning, Thread: obs.thread, PC: obs.pc, Kind: "under-scope",
				Msg: fmt.Sprintf("escaping access at pc %d has an unresolved address that may alias this %s fence's domain; coverage not proven",
					spc, scopeDesc(obs)),
			})
		case inDomain:
			rep.Findings = append(rep.Findings, Finding{
				Severity: SevError, Thread: obs.thread, PC: obs.pc, Kind: "under-scope",
				Msg: fmt.Sprintf("escaping access at pc %d touches %s inside this %s fence's synchronization domain but is outside its scope (fence will not order it)",
					spc, esc.describe(rv), scopeDesc(obs)),
			})
		default:
			rep.Findings = append(rep.Findings, Finding{
				Severity: SevNote, Thread: obs.thread, PC: obs.pc, Kind: "unscoped-escape",
				Msg: fmt.Sprintf("escaping access at pc %d (%s) is pending but outside this %s fence's domain; no discipline of this program orders it here",
					spc, esc.describe(rv), obs.scope),
			})
		}
	}

	if obs.scope == isa.ScopeGlobal && obs.order == isa.OrderFull {
		switch {
		case escPendings == 0:
			rep.Findings = append(rep.Findings, Finding{
				Severity: SevNote, Thread: obs.thread, PC: obs.pc, Kind: "over-scope",
				Msg: "global fence orders no escaping pending access; a set-scoped fence with no flags would do",
			})
		case allFlagged:
			rep.Findings = append(rep.Findings, Finding{
				Severity: SevNote, Thread: obs.thread, PC: obs.pc, Kind: "over-scope",
				Msg: "every escaping pending access is flagged; this fence could be set-scoped",
			})
		case allInBracket:
			rep.Findings = append(rep.Findings, Finding{
				Severity: SevNote, Thread: obs.thread, PC: obs.pc, Kind: "over-scope",
				Msg: fmt.Sprintf("every escaping pending access was issued under the active bracket (cid %d); this fence could be class-scoped", obs.cid),
			})
		}
	}
}

func scopeDesc(obs *fenceObs) string {
	if obs.scope == isa.ScopeClass {
		return fmt.Sprintf("class(cid %d)", obs.cid)
	}
	return obs.scope.String()
}
