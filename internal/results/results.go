// Package results is the structured results pipeline for the paper's
// evaluation: typed, schema-versioned JSON records for every figure,
// table, and ablation (the BENCH_*.json artifacts), a content-addressed
// run cache that memoizes simulations across experiments, and the
// generator for EXPERIMENTS.md — the paper-claimed vs. measured record
// promised by the root package documentation.
//
// The package sits above internal/exp (it consumes the experiment
// functions' structured outputs) and hooks below it (the RunCache
// installs itself as the exp runner), so experiments themselves stay
// unaware of serialization or caching.
package results

import (
	"bytes"
	"encoding/json"
	"fmt"

	"sfence/internal/exp"
	"sfence/internal/kernels"
	"sfence/internal/machine"
)

// SchemaVersion is bumped whenever the JSON layout of envelopes or cached
// run records changes incompatibly; readers must reject other versions.
// v2: SimPerfRow grew per-kernel spin accounting (spinJumps,
// spinSkippedCycles) and the simperf suite covers every Table IV kernel.
// v3: the cache key ignores machine.Config.Parallel (simulated results
// are worker-invariant), new fig-cores and fig-heatmap artifacts, and
// SimPerfRow grew the parallel-runner block (workers, wall-clock
// speedup, epoch accounting).
const SchemaVersion = 3

// Paper identifies the reproduced paper in every envelope.
const Paper = "conf_sc_LinNG14 (Fence Scoping, Lin/Nagarajan/Gupta, SC '14)"

// Envelope wraps one experiment's data with provenance: schema version,
// paper id, the experiment kind, a human title, and the scale it ran at.
// Envelopes are what the BENCH_*.json artifacts contain.
type Envelope[T any] struct {
	Schema int    `json:"schema"`
	Paper  string `json:"paper"`
	Kind   string `json:"kind"`
	Title  string `json:"title"`
	Scale  string `json:"scale"`
	Data   T      `json:"data"`
}

// NewEnvelope builds an envelope at the current schema version.
func NewEnvelope[T any](kind, title string, sc exp.Scale, data T) Envelope[T] {
	return Envelope[T]{
		Schema: SchemaVersion,
		Paper:  Paper,
		Kind:   kind,
		Title:  title,
		Scale:  ScaleName(sc),
		Data:   data,
	}
}

// Marshal renders v as indented JSON with a trailing newline. The output
// is deterministic for a given value, so artifacts regenerated from
// identical measurements are byte-identical.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Unmarshal decodes an envelope previously produced by Marshal, rejecting
// foreign schema versions.
func Unmarshal[T any](data []byte) (Envelope[T], error) {
	var env Envelope[T]
	if err := json.Unmarshal(data, &env); err != nil {
		return Envelope[T]{}, err
	}
	if env.Schema != SchemaVersion {
		return Envelope[T]{}, fmt.Errorf("results: envelope schema %d, want %d", env.Schema, SchemaVersion)
	}
	return env, nil
}

// ScaleName names an experiment scale for envelopes and reports.
func ScaleName(sc exp.Scale) string {
	if sc == exp.Quick {
		return "quick"
	}
	return "full"
}

// AblationSet is one ablation sweep's identity plus its rows.
type AblationSet struct {
	Name  string            `json:"name"`
	Title string            `json:"title"`
	Rows  []exp.AblationRow `json:"rows"`
}

// BenchmarkInfo is the JSON-safe mirror of kernels.Info (which carries a
// non-serializable builder function) for the Table IV artifact.
type BenchmarkInfo struct {
	Name        string `json:"name"`
	ScopeType   string `json:"scopeType"`
	Group       string `json:"group"`
	Description string `json:"description"`
}

// TableIVInfos converts the registry metadata into serializable records.
func TableIVInfos() []BenchmarkInfo {
	infos := kernels.All()
	out := make([]BenchmarkInfo, len(infos))
	for i, info := range infos {
		out[i] = BenchmarkInfo{
			Name:        info.Name,
			ScopeType:   info.ScopeType,
			Group:       info.Group,
			Description: info.Description,
		}
	}
	return out
}

// Envelope kinds, one per artifact.
const (
	KindFigure12     = "figure12"
	KindFigure13     = "figure13"
	KindFigure14     = "figure14"
	KindFigure15     = "figure15"
	KindFigure16     = "figure16"
	KindFigureDepth  = "figure-depth"
	KindFigureCores  = "figure-cores"
	KindHeatmap      = "heatmap"
	KindInferred     = "figure-inferred"
	KindAblations    = "ablations"
	KindTableIII     = "tableIII"
	KindTableIV      = "tableIV"
	KindHardwareCost = "hardware-cost"
)

// Titles for the envelope kinds (also used as report section headers).
var kindTitles = map[string]string{
	KindFigure12:     "Figure 12 — Impact of workload",
	KindFigure13:     "Figure 13 — Performance on full applications (T, S, T+, S+)",
	KindFigure14:     "Figure 14 — Class scope vs. set scope",
	KindFigure15:     "Figure 15 — Varying memory access latency (200/300/500 cycles)",
	KindFigure16:     "Figure 16 — Varying ROB size (64/128/256 entries)",
	KindFigureDepth:  "Depth sweep — Varying memory-hierarchy depth (2/3/4 levels, beyond the paper)",
	KindFigureCores:  "Core-count sweep — scale kernels at 8/64/256 cores (beyond the paper)",
	KindHeatmap:      "Fence-site stall-intensity heatmap (beyond the paper)",
	KindInferred:     "Inferred scopes — hand annotations vs. static scope inference (beyond the paper)",
	KindAblations:    "Ablations — design-choice sweeps beyond the paper",
	KindTableIII:     "Table III — Architectural parameters",
	KindTableIV:      "Table IV — Benchmark description",
	KindHardwareCost: "Section VI-E — Hardware cost per core",
}

// Figure12JSON renders the Figure 12 artifact.
func Figure12JSON(series []exp.SpeedupSeries, sc exp.Scale) ([]byte, error) {
	return Marshal(NewEnvelope(KindFigure12, kindTitles[KindFigure12], sc, series))
}

// GroupsJSON renders a grouped-bar figure artifact (Figures 13-16).
func GroupsJSON(kind string, groups []exp.BenchGroup, sc exp.Scale) ([]byte, error) {
	title, ok := kindTitles[kind]
	if !ok {
		return nil, fmt.Errorf("results: unknown figure kind %q", kind)
	}
	return Marshal(NewEnvelope(kind, title, sc, groups))
}

// CoresJSON renders the core-count sweep artifact.
func CoresJSON(rows []exp.CoresRow, sc exp.Scale) ([]byte, error) {
	return Marshal(NewEnvelope(KindFigureCores, kindTitles[KindFigureCores], sc, rows))
}

// HeatmapJSON renders the fence-site heatmap artifact.
func HeatmapJSON(rows []exp.HeatmapRow, sc exp.Scale) ([]byte, error) {
	return Marshal(NewEnvelope(KindHeatmap, kindTitles[KindHeatmap], sc, rows))
}

// AblationsJSON renders the combined ablation artifact.
func AblationsJSON(sets []AblationSet, sc exp.Scale) ([]byte, error) {
	return Marshal(NewEnvelope(KindAblations, kindTitles[KindAblations], sc, sets))
}

// TableIIIJSON renders the architectural-parameter artifact.
func TableIIIJSON(cfg machine.Config, sc exp.Scale) ([]byte, error) {
	return Marshal(NewEnvelope(KindTableIII, kindTitles[KindTableIII], sc, exp.TableIII(cfg)))
}

// TableIVJSON renders the benchmark-description artifact.
func TableIVJSON(sc exp.Scale) ([]byte, error) {
	return Marshal(NewEnvelope(KindTableIV, kindTitles[KindTableIV], sc, TableIVInfos()))
}

// HardwareCostJSON renders the Section VI-E cost-model artifact.
func HardwareCostJSON(rep exp.HardwareCostReport, sc exp.Scale) ([]byte, error) {
	return Marshal(NewEnvelope(KindHardwareCost, kindTitles[KindHardwareCost], sc, rep))
}
