package sfence

import (
	"fmt"

	"sfence/internal/kernels"
	"sfence/internal/litmus"
	"sfence/internal/ref"
	"sfence/internal/scopecheck"
)

// Static fence-scope analysis (see DESIGN.md, "Static scope analysis"):
// a per-thread abstract interpreter computes every fence's pending-access
// footprint and every location's thread-escape status, from which the
// verifier checks hand-written class/set annotations and the inference
// pass derives annotations for unannotated programs.
type (
	// ScopeScenario is a multi-thread program plus its memory-map
	// declarations, the unit of static scope analysis.
	ScopeScenario = scopecheck.Scenario
	// ScopeRegion declares one named memory region's sharing discipline.
	ScopeRegion = scopecheck.Region
	// ScopeThread is one thread of a scenario (entry plus initial
	// registers).
	ScopeThread = scopecheck.Thread
	// ScopeReport is the verifier's findings for one scenario.
	ScopeReport = scopecheck.Report
	// ScopeFinding is one diagnostic of a ScopeReport.
	ScopeFinding = scopecheck.Finding
	// ScopeSeverity ranks findings: Note, Warning, Error.
	ScopeSeverity = scopecheck.Severity
	// ScopeSharing classifies a region: SharedRW, ReadShared, or Private.
	ScopeSharing = scopecheck.Sharing
	// ScopeInferInfo summarizes one inference pass (fences rewritten,
	// accesses flagged).
	ScopeInferInfo = scopecheck.InferInfo
)

// Scope-finding severities.
const (
	ScopeNote    = scopecheck.SevNote
	ScopeWarning = scopecheck.SevWarning
	ScopeError   = scopecheck.SevError
)

// Region sharing disciplines for ScopeScenario declarations.
const (
	SharedRW   = scopecheck.SharedRW
	ReadShared = scopecheck.ReadShared
	Private    = scopecheck.Private
)

// VerifyScopes statically verifies a scenario's fence-scope annotations:
// Errors are provable scope leaks (an escaping access the fence's scope
// should cover but does not), Notes flag global fences provably
// narrowable and escapes outside any synchronization domain.
func VerifyScopes(sc *ScopeScenario) (*ScopeReport, error) {
	return scopecheck.Verify(sc)
}

// InferScopes rewrites a scenario's program with statically inferred
// minimal scopes: every fence becomes set-scoped and exactly the
// escaping, order-relevant accesses are flagged. The input program is
// not modified.
func InferScopes(sc *ScopeScenario) (*Program, *ScopeInferInfo, error) {
	return scopecheck.Infer(sc)
}

// BenchmarkScenario builds a named Table IV benchmark and adapts it for
// static scope analysis.
func BenchmarkScenario(name string, opts BenchmarkOptions) (ScopeScenario, error) {
	k, err := kernels.Build(name, opts)
	if err != nil {
		return ScopeScenario{}, err
	}
	return k.Scenario(), nil
}

// ScopeGateEntry is one verified target of the static scope gate.
type ScopeGateEntry struct {
	// Target names the verified program ("kernel harris/scoped",
	// "litmus mp+fences", "corpus seed 149", ...).
	Target string
	// Errors, Warnings, and Notes count the report's findings (zero for
	// inference-only entries).
	Errors, Warnings, Notes int
	// OK reports whether the entry met its expectation — no errors, or,
	// for the deliberately mis-scoped litmus control, at least one.
	OK bool
	// Detail carries the rendered findings (or error) when !OK.
	Detail string
}

func gateEntry(target string, rep *ScopeReport, err error, wantErrors bool) ScopeGateEntry {
	e := ScopeGateEntry{Target: target}
	if err != nil {
		e.Detail = err.Error()
		return e
	}
	for _, f := range rep.Findings {
		switch f.Severity {
		case ScopeError:
			e.Errors++
		case ScopeWarning:
			e.Warnings++
		default:
			e.Notes++
		}
	}
	e.OK = (e.Errors > 0) == wantErrors
	if !e.OK {
		e.Detail = rep.String()
		if wantErrors {
			e.Detail = "expected scope errors on the mis-scoped control, found none"
		}
	}
	return e
}

// ScopeGate statically verifies every program the repository ships: all
// Table IV kernels (traditional and scoped builds, plus the inferred
// rewrite), every litmus family (the deliberately mis-scoped control
// must be flagged; everything else must be clean), every under-scoped
// mutant (which must be flagged), and the given generated-scenario
// corpus seeds. It returns one entry per target and whether the whole
// gate passed.
func ScopeGate(corpusSeeds []int64) ([]ScopeGateEntry, bool) {
	var entries []ScopeGateEntry
	for _, info := range kernels.All() {
		for _, mode := range []FenceMode{Traditional, Scoped} {
			target := fmt.Sprintf("kernel %s/%s", info.Name, mode)
			k, err := kernels.Build(info.Name, BenchmarkOptions{Mode: mode})
			if err != nil {
				entries = append(entries, ScopeGateEntry{Target: target, Detail: err.Error()})
				continue
			}
			sc := k.Scenario()
			rep, err := scopecheck.Verify(&sc)
			entries = append(entries, gateEntry(target, rep, err, false))
		}
		entries = append(entries, kernelInferEntry(info.Name))
	}
	for _, t := range litmus.All() {
		sc := t.Scenario()
		rep, err := scopecheck.Verify(&sc)
		entries = append(entries, gateEntry("litmus "+t.Name, rep, err, litmus.MisScoped(t.Name)))
	}
	for _, t := range append(litmus.UnderScopedMutants(), litmus.StaticOnlyMutants()...) {
		sc := t.Scenario()
		rep, err := scopecheck.Verify(&sc)
		entries = append(entries, gateEntry("mutant "+t.Name, rep, err, true))
	}
	for _, seed := range corpusSeeds {
		target := fmt.Sprintf("corpus seed %d", seed)
		e := ScopeGateEntry{Target: target, OK: true}
		if _, err := ref.VerifyScopes(seed); err != nil {
			e.OK, e.Detail = false, err.Error()
		}
		entries = append(entries, e)
	}
	ok := true
	for _, e := range entries {
		ok = ok && e.OK
	}
	return entries, ok
}

// kernelInferEntry runs inference on a kernel's unannotated build and
// verifies the inferred program clean.
func kernelInferEntry(name string) ScopeGateEntry {
	target := "kernel " + name + "/inferred"
	sc, err := BenchmarkScenario(name, BenchmarkOptions{Mode: Traditional})
	if err != nil {
		return ScopeGateEntry{Target: target, Detail: err.Error()}
	}
	prog, _, err := scopecheck.Infer(&sc)
	if err != nil {
		return ScopeGateEntry{Target: target, Detail: err.Error()}
	}
	inf := ScopeScenario{Name: sc.Name, Prog: prog, Threads: sc.Threads, Regions: sc.Regions}
	rep, err := scopecheck.Verify(&inf)
	return gateEntry(target, rep, err, false)
}
