package cpu

import (
	"testing"

	"sfence/internal/isa"
	"sfence/internal/memsys"
)

// runCore executes a single-core program to completion and returns the
// core and the cycle count.
func runCore(t *testing.T, cfg Config, p *isa.Program, entry string, regs map[isa.Reg]int64, img *memsys.Image) (*Core, int64) {
	t.Helper()
	if img == nil {
		img = memsys.NewImage(1 << 20)
	}
	hier := memsys.MustHierarchy(1, memsys.DefaultConfig())
	core, err := NewCore(0, cfg, p, p.MustEntry(entry), regs, img, hier)
	if err != nil {
		t.Fatal(err)
	}
	var cycle int64
	for !core.Done() {
		if core.Fault() != nil {
			t.Fatalf("core fault: %v", core.Fault())
		}
		if cycle > 5_000_000 {
			t.Fatal("runaway program")
		}
		core.Tick(cycle)
		cycle++
	}
	return core, cycle
}

func TestALUProgram(t *testing.T) {
	// sum = 1+2+...+10; also exercise mul/div/rem/logic.
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 0)  // i
	b.MovI(isa.R2, 0)  // sum
	b.MovI(isa.R3, 10) // limit
	b.Label("loop")
	b.AddI(isa.R1, isa.R1, 1)
	b.Add(isa.R2, isa.R2, isa.R1)
	b.Blt(isa.R1, isa.R3, "loop")
	b.MovI(isa.R4, 7)
	b.Mul(isa.R5, isa.R2, isa.R4)  // 55*7 = 385
	b.Div(isa.R6, isa.R5, isa.R4)  // 385/7 = 55
	b.Rem(isa.R7, isa.R5, isa.R3)  // 385%10 = 5
	b.XorI(isa.R8, isa.R2, 0xff)   // 55^255 = 200
	b.ShlI(isa.R9, isa.R2, 2)      // 220
	b.ShrI(isa.R10, isa.R9, 1)     // 110
	b.SltI(isa.R11, isa.R2, 100)   // 1
	b.Seq(isa.R12, isa.R6, isa.R2) // 1
	b.Halt()
	p := b.MustBuild()
	core, _ := runCore(t, DefaultConfig(), p, "main", nil, nil)
	want := map[isa.Reg]int64{
		isa.R2: 55, isa.R5: 385, isa.R6: 55, isa.R7: 5,
		isa.R8: 200, isa.R9: 220, isa.R10: 110, isa.R11: 1, isa.R12: 1,
	}
	for r, v := range want {
		if got := core.Reg(r); got != v {
			t.Errorf("r%d = %d, want %d", r, got, v)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R0, 99) // must be discarded
	b.AddI(isa.R1, isa.R0, 5)
	b.Halt()
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
	if core.Reg(isa.R0) != 0 {
		t.Error("write to R0 was not discarded")
	}
	if core.Reg(isa.R1) != 5 {
		t.Errorf("r1 = %d, want 5", core.Reg(isa.R1))
	}
}

func TestLoadStoreAndForwarding(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 4096) // base address
	b.MovI(isa.R2, 1234)
	b.Store(isa.R1, 0, isa.R2)
	b.Load(isa.R3, isa.R1, 0) // must forward 1234 from the store
	b.MovI(isa.R4, 77)
	b.Store(isa.R1, 8, isa.R4)
	b.Load(isa.R5, isa.R1, 8)
	b.Halt()
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
	if core.Reg(isa.R3) != 1234 || core.Reg(isa.R5) != 77 {
		t.Errorf("r3=%d r5=%d, want 1234, 77", core.Reg(isa.R3), core.Reg(isa.R5))
	}
}

func TestStoreToLoadForwardingIsFast(t *testing.T) {
	// A load that forwards from an in-flight store must not pay the
	// cold-miss latency.
	mk := func(withStore bool) int64 {
		b := isa.NewBuilder()
		b.Entry("main")
		b.MovI(isa.R1, 4096)
		b.MovI(isa.R2, 42)
		if withStore {
			b.Store(isa.R1, 0, isa.R2)
		}
		b.Load(isa.R3, isa.R1, 0)
		b.Halt()
		_, cycles := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
		return cycles
	}
	withFwd := mk(true)
	coldLoad := mk(false)
	// The forwarded run still pays the store's own drain, but the load
	// itself is fast; the cold-load run pays a ~312-cycle load at halt...
	// both runs end after drain, so compare load visibility instead:
	// the forwarded value must be correct (checked elsewhere) and the
	// forwarded run must not be dramatically slower.
	if withFwd > coldLoad+400 {
		t.Errorf("forwarding run took %d cycles vs cold %d", withFwd, coldLoad)
	}
}

func TestCASSemantics(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 4096)
	b.MovI(isa.R2, 10)
	b.Store(isa.R1, 0, isa.R2) // mem = 10
	b.MovI(isa.R3, 10)         // expected
	b.MovI(isa.R4, 20)         // new
	b.CAS(isa.R5, isa.R1, 0, isa.R3, isa.R4)
	b.Load(isa.R6, isa.R1, 0) // 20
	b.MovI(isa.R7, 999)       // stale expected
	b.CAS(isa.R8, isa.R1, 0, isa.R7, isa.R2)
	b.Load(isa.R9, isa.R1, 0) // still 20
	b.Halt()
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
	if core.Reg(isa.R5) != 1 || core.Reg(isa.R6) != 20 {
		t.Errorf("successful CAS: flag=%d mem=%d", core.Reg(isa.R5), core.Reg(isa.R6))
	}
	if core.Reg(isa.R8) != 0 || core.Reg(isa.R9) != 20 {
		t.Errorf("failed CAS: flag=%d mem=%d", core.Reg(isa.R8), core.Reg(isa.R9))
	}
}

func TestBranchMispredictionRecovery(t *testing.T) {
	// Alternate taken/not-taken on a data-dependent branch; the result
	// must be architecturally exact despite mispredictions.
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 0)  // i
	b.MovI(isa.R2, 20) // limit
	b.MovI(isa.R3, 0)  // even counter
	b.Label("loop")
	b.AndI(isa.R4, isa.R1, 1)
	b.Bne(isa.R4, isa.R0, "odd")
	b.AddI(isa.R3, isa.R3, 1)
	b.Label("odd")
	b.AddI(isa.R1, isa.R1, 1)
	b.Blt(isa.R1, isa.R2, "loop")
	b.Halt()
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
	if got := core.Reg(isa.R3); got != 10 {
		t.Errorf("even counter = %d, want 10", got)
	}
	if core.Stats().Mispredicts == 0 {
		t.Error("alternating branch produced no mispredictions (suspicious)")
	}
}

func TestWrongPathStoreNeverCommits(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 0)    // i
	b.MovI(isa.R2, 5)    // limit
	b.MovI(isa.R3, 4096) // arr base
	b.Label("loop")
	b.Blt(isa.R1, isa.R2, "body")
	b.Jmp("exit")
	b.Label("body")
	b.ShlI(isa.R5, isa.R1, 3)
	b.Add(isa.R4, isa.R3, isa.R5)
	b.MovI(isa.R6, 99)
	b.Store(isa.R4, 0, isa.R6)
	b.AddI(isa.R1, isa.R1, 1)
	b.Jmp("loop")
	b.Label("exit")
	b.MovI(isa.R7, 8192)
	b.MovI(isa.R8, 1)
	b.Store(isa.R7, 0, isa.R8)
	b.Halt()
	img := memsys.NewImage(1 << 20)
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, img)
	for i := int64(0); i < 5; i++ {
		if got := img.Load(4096 + 8*i); got != 99 {
			t.Errorf("arr[%d] = %d, want 99", i, got)
		}
	}
	// On the final iteration the trained-taken branch mispredicts and
	// the wrong path runs the body with i==5: that store must vanish.
	if got := img.Load(4096 + 8*5); got != 0 {
		t.Errorf("wrong-path store committed: arr[5] = %d", got)
	}
	if got := img.Load(8192); got != 1 {
		t.Errorf("flag = %d, want 1", got)
	}
	if core.Stats().Squashed == 0 {
		t.Error("no squashes recorded despite misprediction")
	}
}

// buildFenceProgram creates: warm up in-scope address A; cold out-of-scope
// store to X; then a fenced in-scope store to A. The fence variant
// determines how long the fence waits.
func buildFenceProgram(scope isa.ScopeKind, flagSet bool) *isa.Program {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 4096)  // A (in scope)
	b.MovI(isa.R2, 1<<18) // X (out of scope, different line)
	b.MovI(isa.R3, 1)
	// Warm A into M state and drain.
	b.Store(isa.R1, 0, isa.R3)
	b.Fence(isa.ScopeGlobal)
	// Cold store to X: a long-latency out-of-scope access.
	b.Store(isa.R2, 0, isa.R3)
	// In-scope fenced sequence.
	b.FsStart(1)
	if flagSet {
		b.SetFlagged()
	}
	b.Store(isa.R1, 0, isa.R3) // fast (warm, owned)
	b.Fence(scope)
	if flagSet {
		b.SetFlagged()
	}
	b.Load(isa.R4, isa.R1, 8)
	b.FsEnd(1)
	// Post-fence long-latency work: a cold load that a scoped fence lets
	// overlap with the draining out-of-scope store, but a full fence
	// serializes behind it.
	b.MovI(isa.R5, 1<<19)
	b.Load(isa.R6, isa.R5, 0)
	b.Halt()
	return b.MustBuild()
}

func TestClassFenceSkipsOutOfScopeStall(t *testing.T) {
	_, globalCycles := runCore(t, DefaultConfig(), buildFenceProgram(isa.ScopeGlobal, false), "main", nil, nil)
	_, classCycles := runCore(t, DefaultConfig(), buildFenceProgram(isa.ScopeClass, false), "main", nil, nil)
	if classCycles >= globalCycles {
		t.Errorf("class fence (%d cycles) not faster than global fence (%d cycles)", classCycles, globalCycles)
	}
	// The gap should be on the order of the memory latency the class
	// fence avoided waiting for.
	if globalCycles-classCycles < 100 {
		t.Errorf("class fence saved only %d cycles; expected a miss-latency-scale gap", globalCycles-classCycles)
	}
}

func TestSetFenceSkipsOutOfScopeStall(t *testing.T) {
	_, globalCycles := runCore(t, DefaultConfig(), buildFenceProgram(isa.ScopeGlobal, true), "main", nil, nil)
	_, setCycles := runCore(t, DefaultConfig(), buildFenceProgram(isa.ScopeSet, true), "main", nil, nil)
	if setCycles >= globalCycles {
		t.Errorf("set fence (%d cycles) not faster than global fence (%d cycles)", setCycles, globalCycles)
	}
}

func TestGlobalFenceWaitsForAllStores(t *testing.T) {
	// With the fence: the load after the fence cannot start until the
	// cold store drains; the fence-stall stat must be non-zero.
	p := buildFenceProgram(isa.ScopeGlobal, false)
	core, _ := runCore(t, DefaultConfig(), p, "main", nil, nil)
	if core.Stats().FenceStallCycles == 0 {
		t.Error("global fence produced no stall cycles")
	}
	if core.Stats().FenceStallIssue == 0 {
		t.Error("non-speculative fence stalls must be issue stalls")
	}
	if core.Stats().CommittedFences != 2 {
		t.Errorf("committed fences = %d, want 2", core.Stats().CommittedFences)
	}
}

func TestInWindowSpeculationReducesStalls(t *testing.T) {
	p := buildFenceProgram(isa.ScopeGlobal, false)
	cfg := DefaultConfig()
	_, tCycles := runCore(t, cfg, p, "main", nil, nil)
	cfg.InWindowSpec = true
	core, tPlusCycles := runCore(t, cfg, p, "main", nil, nil)
	if tPlusCycles > tCycles {
		t.Errorf("in-window speculation slower: %d vs %d", tPlusCycles, tCycles)
	}
	if s := core.Stats(); s.FenceStallIssue != 0 {
		t.Errorf("speculative mode recorded %d issue stalls", s.FenceStallIssue)
	}
}

func TestDeterminism(t *testing.T) {
	p := buildFenceProgram(isa.ScopeClass, false)
	_, c1 := runCore(t, DefaultConfig(), p, "main", nil, nil)
	_, c2 := runCore(t, DefaultConfig(), p, "main", nil, nil)
	if c1 != c2 {
		t.Errorf("two identical runs took %d and %d cycles", c1, c2)
	}
}

func TestFaultOnMisalignedCommittedAccess(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 4097) // misaligned
	b.Load(isa.R2, isa.R1, 0)
	b.Halt()
	img := memsys.NewImage(1 << 20)
	hier := memsys.MustHierarchy(1, memsys.DefaultConfig())
	p := b.MustBuild()
	core, err := NewCore(0, DefaultConfig(), p, 0, nil, img, hier)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 100_000 && !core.Done(); i++ {
		core.Tick(i)
		if core.Fault() != nil {
			return // expected
		}
	}
	t.Fatal("misaligned committed load did not fault")
}

func TestInitialRegisters(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.Add(isa.R3, isa.R1, isa.R2)
	b.Halt()
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main",
		map[isa.Reg]int64{isa.R1: 30, isa.R2: 12}, nil)
	if core.Reg(isa.R3) != 42 {
		t.Errorf("r3 = %d, want 42", core.Reg(isa.R3))
	}
}

func TestRunningOffEndHalts(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 7) // no explicit halt
	p := b.MustBuild()
	core, _ := runCore(t, DefaultConfig(), p, "main", nil, nil)
	if core.Reg(isa.R1) != 7 {
		t.Error("instruction before implicit halt lost")
	}
}

func TestCommittedInstructionCounts(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 4096)
	b.MovI(isa.R2, 5)
	b.Store(isa.R1, 0, isa.R2)
	b.Load(isa.R3, isa.R1, 0)
	b.CAS(isa.R4, isa.R1, 0, isa.R2, isa.R3)
	b.Fence(isa.ScopeGlobal)
	b.Halt()
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
	s := core.Stats()
	if s.CommittedLoads != 1 || s.CommittedStores != 1 || s.CommittedCAS != 1 || s.CommittedFences != 1 {
		t.Errorf("counts: %+v", s)
	}
	if s.Committed != 7 {
		t.Errorf("committed = %d, want 7", s.Committed)
	}
}

func TestSmallROBConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ROBSize = 4
	cfg.SBSize = 1
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 4096)
	for i := int64(0); i < 20; i++ {
		b.MovI(isa.R2, i)
		b.Store(isa.R1, i*8, isa.R2)
	}
	b.Halt()
	img := memsys.NewImage(1 << 20)
	core, _ := runCore(t, cfg, b.MustBuild(), "main", nil, img)
	for i := int64(0); i < 20; i++ {
		if img.Load(4096+i*8) != i {
			t.Fatalf("mem[%d] = %d, want %d", i, img.Load(4096+i*8), i)
		}
	}
	if core.Stats().SBFullCycles == 0 {
		t.Error("1-entry SB never reported full (suspicious)")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.ROBSize = 100 // not a power of two
	if bad.Validate() == nil {
		t.Error("non-power-of-two ROB accepted")
	}
	bad = DefaultConfig()
	bad.FSBEntries = 1
	if bad.Validate() == nil {
		t.Error("FSBEntries=1 accepted (no room for class + set)")
	}
	bad = DefaultConfig()
	bad.FSSEntries = 9
	if bad.Validate() == nil {
		t.Error("FSSEntries=9 accepted (snapshot capacity is 8)")
	}
	b := isa.NewBuilder()
	b.Entry("main")
	b.Halt()
	p := b.MustBuild()
	img := memsys.NewImage(1 << 20)
	hier := memsys.MustHierarchy(1, memsys.DefaultConfig())
	if _, err := NewCore(0, DefaultConfig(), p, 99, nil, img, hier); err == nil {
		t.Error("out-of-range start pc accepted")
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Committed: 1, FenceStallCycles: 2, MaxROBOccupancy: 5, Cycles: 10, SumROBOccupancy: 50}
	b := Stats{Committed: 2, FenceStallCycles: 3, MaxROBOccupancy: 9, Cycles: 10, SumROBOccupancy: 30}
	a.Add(&b)
	if a.Committed != 3 || a.FenceStallCycles != 5 || a.MaxROBOccupancy != 9 {
		t.Errorf("Add result: %+v", a)
	}
	if a.AvgROBOccupancy() != 4 {
		t.Errorf("AvgROBOccupancy = %v, want 4", a.AvgROBOccupancy())
	}
}
