// Golden determinism test: a committed checksum of (final cycles, retired
// instructions, fence idle cycles) for every Table IV kernel at Quick
// scale — on the Table III default machine AND a depth-3 hierarchy — plus
// (cycles, outcome) for every litmus test on its default configuration.
// The simulator is fully deterministic, so these numbers must never move
// unless the timing model itself is deliberately changed — any accidental
// perturbation (a reordered scan, a broken fast-forward credit, an
// off-by-one in a latency) fails loudly here. This is the regression net
// the differential fuzzer inherits: a fuzz-found fix that perturbs timing
// shows up here, not just in the fuzzer's own pass/fail.
//
// Regenerate after an intentional timing change with:
//
//	go test -run TestGoldenDeterminism -update-golden
package sfence_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"sfence"
	"sfence/internal/isa"
	"sfence/internal/litmus"
	"sfence/internal/machine"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/golden_quick.json from the current simulator")

// goldenRecord is one kernel configuration's determinism checksum.
type goldenRecord struct {
	Cycles     int64  `json:"cycles"`
	Committed  uint64 `json:"committed"`
	FenceIdle  uint64 `json:"fenceIdleCycles"`
	CoreCycles uint64 `json:"coreCycles"`
}

// litmusRecord pins one litmus test's timing and observed outcome on its
// default machine configuration.
type litmusRecord struct {
	Cycles  int64    `json:"cycles"`
	Outcome [4]int64 `json:"outcome"`
}

// goldenFile is the committed golden schema: per-kernel records keyed
// bench -> mode (default machine) and bench -> mode@depth3 (three-level
// hierarchy), plus per-litmus-test records keyed by test name.
type goldenFile struct {
	Kernels map[string]map[string]goldenRecord `json:"kernels"`
	Litmus  map[string]litmusRecord            `json:"litmus"`
}

const goldenPath = "testdata/golden_quick.json"

func goldenCases() map[string]sfence.BenchmarkOptions {
	ops := map[string]int{
		"dekker": 25, "wsq": 50, "msn": 32, "harris": 40,
		"pst": 160, "ptc": 64, "barnes": 16, "radiosity": 16,
		"nested-scope": 40, "fence-drain": 60,
	}
	cases := map[string]sfence.BenchmarkOptions{}
	for bench, n := range ops {
		for _, mode := range []sfence.FenceMode{sfence.Traditional, sfence.Scoped} {
			key := fmt.Sprintf("%s/%s", bench, mode)
			cases[key] = sfence.BenchmarkOptions{Mode: mode, Ops: n, Workload: 2}
		}
	}
	return cases
}

// goldenLitmusTests returns the litmus set the golden file pins, in a
// deterministic construction.
func goldenLitmusTests() []*litmus.Test {
	return []*litmus.Test{
		litmus.StoreBuffering(false, isa.ScopeGlobal),
		litmus.StoreBuffering(true, isa.ScopeGlobal),
		litmus.StoreBuffering(true, isa.ScopeSet),
		litmus.MessagePassing(false),
		litmus.MessagePassing(true),
		litmus.LoadBuffering(),
		litmus.IRIW(),
		litmus.ClassScopedSB(),
		litmus.ScopedSBLeaky(),
		litmus.SBWithStoreStoreFence(),
		litmus.MessagePassingSS(isa.ScopeGlobal),
		litmus.MessagePassingSS(isa.ScopeClass),
		litmus.CASIncrement(4, 16),
		litmus.CoWW(),
		litmus.MessagePassingFiner(),
	}
}

func measureGolden(t *testing.T) goldenFile {
	t.Helper()
	out := goldenFile{
		Kernels: map[string]map[string]goldenRecord{},
		Litmus:  map[string]litmusRecord{},
	}
	configs := map[string]sfence.Config{
		"":        sfence.DefaultConfig(),
		"@depth3": func() sfence.Config { c := sfence.DefaultConfig(); c.Mem = sfence.DepthMemConfig(3); return c }(),
	}
	for key, opts := range goldenCases() {
		bench := key[:len(key)-len("/"+opts.Mode.String())]
		for suffix, cfg := range configs {
			res, err := sfence.RunBenchmark(bench, opts, cfg)
			if err != nil {
				t.Fatalf("%s%s: %v", key, suffix, err)
			}
			if out.Kernels[bench] == nil {
				out.Kernels[bench] = map[string]goldenRecord{}
			}
			out.Kernels[bench][opts.Mode.String()+suffix] = goldenRecord{
				Cycles:     res.Cycles,
				Committed:  res.Stats.Committed,
				FenceIdle:  res.FenceStall,
				CoreCycles: res.CoreCycles,
			}
		}
	}
	for _, lt := range goldenLitmusTests() {
		cfg := litmus.DefaultMachineConfig()
		m, err := machine.New(cfg, lt.Program, lt.Threads)
		if err != nil {
			t.Fatalf("litmus %s: %v", lt.Name, err)
		}
		cycles, err := m.Run(nil)
		if err != nil {
			t.Fatalf("litmus %s: %v", lt.Name, err)
		}
		var o litmus.Outcome
		o.R[0] = m.Image().Load(litmus.AddrR1)
		o.R[1] = m.Image().Load(litmus.AddrR2)
		o.R[2] = m.Image().Load(litmus.AddrR3)
		o.R[3] = m.Image().Load(litmus.AddrR4)
		// Golden pins timing and the observed outcome; whether an outcome
		// is *allowed* is the litmus suite's job (the fence-less variants
		// here exist precisely to exhibit the relaxed outcome).
		out.Litmus[lt.Name] = litmusRecord{Cycles: cycles, Outcome: o.R}
	}
	return out
}

func TestGoldenDeterminism(t *testing.T) {
	got := measureGolden(t)
	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-golden to create): %v", err)
	}
	var want goldenFile
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}

	var benches []string
	for b := range want.Kernels {
		benches = append(benches, b)
	}
	sort.Strings(benches)
	for _, bench := range benches {
		for mode, w := range want.Kernels[bench] {
			g, ok := got.Kernels[bench][mode]
			if !ok {
				t.Errorf("%s/%s: in golden file but not measured", bench, mode)
				continue
			}
			if g != w {
				t.Errorf("%s/%s: timing perturbed:\n  golden   %+v\n  measured %+v\n(if this change is intentional, regenerate with -update-golden)", bench, mode, w, g)
			}
		}
	}
	for name, w := range want.Litmus {
		g, ok := got.Litmus[name]
		if !ok {
			t.Errorf("litmus %s: in golden file but not measured", name)
			continue
		}
		if g != w {
			t.Errorf("litmus %s: perturbed:\n  golden   %+v\n  measured %+v\n(if this change is intentional, regenerate with -update-golden)", name, w, g)
		}
	}
	// Both directions: a case added to the measurement set without
	// regenerating the file must fail as unpinned, not pass silently.
	for bench, modes := range got.Kernels {
		for mode := range modes {
			if _, ok := want.Kernels[bench][mode]; !ok {
				t.Errorf("%s/%s: measured but missing from golden file (regenerate with -update-golden)", bench, mode)
			}
		}
	}
	for name := range got.Litmus {
		if _, ok := want.Litmus[name]; !ok {
			t.Errorf("litmus %s: measured but missing from golden file (regenerate with -update-golden)", name)
		}
	}
}
