package cpu

import "testing"

func newScopeForTest(fsb, fss, mt int) (*scopeHW, *Stats) {
	cfg := DefaultConfig()
	cfg.FSBEntries = fsb
	cfg.FSSEntries = fss
	cfg.MapEntries = mt
	stats := &Stats{}
	return newScopeHW(&cfg, stats), stats
}

func TestScopeNestedMask(t *testing.T) {
	s, _ := newScopeForTest(4, 4, 4)
	if s.currentMask() != 0 {
		t.Fatal("fresh scope has non-empty mask")
	}
	s.fsStart(10, true)
	outer := s.currentMask()
	if outer == 0 {
		t.Fatal("outer scope not reflected in mask")
	}
	s.fsStart(20, true)
	inner := s.currentMask()
	if inner&outer != outer {
		t.Error("inner scope mask must include outer scope bit")
	}
	if inner == outer {
		t.Error("inner scope should add a distinct bit")
	}
	s.fsEnd(true)
	if s.currentMask() != outer {
		t.Error("fs_end did not restore outer mask")
	}
	s.fsEnd(true)
	if s.currentMask() != 0 {
		t.Error("fs_end did not empty mask")
	}
}

func TestScopeSameCIDReusesEntry(t *testing.T) {
	s, _ := newScopeForTest(4, 4, 4)
	s.fsStart(10, true)
	m1 := s.currentMask()
	s.fsEnd(true)
	s.fsStart(10, true)
	if s.currentMask() != m1 {
		t.Error("same cid should map to the same FSB entry")
	}
}

func TestScopeFenceClassEntryTracksTop(t *testing.T) {
	s, _ := newScopeForTest(4, 4, 4)
	if _, full := s.fenceClassEntry(); !full {
		t.Error("class fence outside any scope must behave as full fence")
	}
	s.fsStart(1, true)
	e1, full := s.fenceClassEntry()
	if full {
		t.Fatal("unexpected full-fence demotion")
	}
	s.fsStart(2, true)
	e2, _ := s.fenceClassEntry()
	if e1 == e2 {
		t.Error("nested scope should present a different top entry")
	}
	s.fsEnd(true)
	top, _ := s.fenceClassEntry()
	if top != e1 {
		t.Error("fs_end did not restore the outer top entry")
	}
}

func TestScopeEntrySharingWhenFSBExhausted(t *testing.T) {
	// 3 FSB entries: 2 class + 1 reserved set entry. Opening 3 distinct
	// scopes forces sharing, never the reserved set entry.
	s, stats := newScopeForTest(3, 8, 8)
	s.fsStart(1, true)
	s.fsStart(2, true)
	s.fsStart(3, true)
	if stats.ScopeShared == 0 {
		t.Error("exhausted FSB should record sharing")
	}
	if s.currentMask()&s.setBit() != 0 {
		t.Error("class scope leaked into the reserved set-scope entry")
	}
}

func TestScopeOverflowCounterFullFenceFallback(t *testing.T) {
	s, stats := newScopeForTest(4, 2, 8) // FSS depth 2
	s.fsStart(1, true)
	s.fsStart(2, true)
	s.fsStart(3, true) // FSS full -> overflow counter
	if stats.ScopeOverflow == 0 {
		t.Fatal("FSS overflow not recorded")
	}
	if _, full := s.fenceClassEntry(); !full {
		t.Error("fence during overflow must be full")
	}
	s.fsEnd(true) // drains the counter, not the stack
	if _, full := s.fenceClassEntry(); full {
		t.Error("fence after overflow drained should be scoped again")
	}
	if len(s.fss) != 2 {
		t.Errorf("FSS depth = %d, want 2", len(s.fss))
	}
}

func TestScopeMappingTableFullOverflow(t *testing.T) {
	s, stats := newScopeForTest(8, 8, 2) // tiny mapping table
	s.fsStart(1, true)
	s.fsStart(2, true)
	s.fsStart(3, true) // no free MT slot
	if stats.ScopeOverflow == 0 {
		t.Error("MT overflow not recorded")
	}
	if _, full := s.fenceClassEntry(); !full {
		t.Error("fence during MT overflow must be full")
	}
}

func TestScopeMappingReleasedWhenIdle(t *testing.T) {
	s, _ := newScopeForTest(4, 4, 2)
	s.fsStart(1, true)
	s.fsEnd(true)
	s.fsStart(2, true)
	s.fsEnd(true)
	// Both mappings idle (no outstanding accesses, off the stack):
	// a third scope must not overflow.
	s.fsStart(3, true)
	if _, full := s.fenceClassEntry(); full {
		t.Error("idle mappings were not released")
	}
}

func TestScopeMappingPinnedByOutstandingAccesses(t *testing.T) {
	s, _ := newScopeForTest(4, 4, 1)
	s.fsStart(1, true)
	e, _ := s.fenceClassEntry()
	s.robCnt[e]++ // an in-flight access in scope 1
	s.fsEnd(true)
	// Scope 1's mapping must survive (outstanding access), so with a
	// 1-entry MT the next fs_start overflows.
	s.fsStart(2, true)
	if _, full := s.fenceClassEntry(); !full {
		t.Error("mapping with outstanding accesses was released prematurely")
	}
}

func TestScopeFsEndOnEmptyStackIgnored(t *testing.T) {
	s, stats := newScopeForTest(4, 4, 4)
	s.fsEnd(true)
	if stats.FSEndIgnored != 1 {
		t.Error("unmatched fs_end not recorded")
	}
}

func TestScopeSnapshotRestore(t *testing.T) {
	s, _ := newScopeForTest(4, 4, 4)
	s.fsStart(1, true)
	snap := s.snapshot()
	s.fsStart(2, true)
	s.fsStart(3, true)
	s.restoreSnapshot(snap)
	if len(s.fss) != 1 {
		t.Errorf("restored FSS depth = %d, want 1", len(s.fss))
	}
	e, full := s.fenceClassEntry()
	if full {
		t.Fatal("unexpected full fence after restore")
	}
	if got := s.currentMask(); got != 1<<e {
		t.Errorf("mask after restore = %b", got)
	}
}

func TestScopeShadowRecoveryExact(t *testing.T) {
	// Shadow kept in sync (no unconfirmed branches): recovery is exact.
	s, _ := newScopeForTest(4, 4, 4)
	s.fsStart(1, true)
	s.fsStart(2, false) // decoded under an unconfirmed branch
	s.restoreShadow()
	if len(s.fss) != 1 {
		t.Errorf("shadow recovery FSS depth = %d, want 1", len(s.fss))
	}
	if !s.forceFull {
		t.Error("lagging shadow must engage the full-fence guard")
	}
	// Guard clears once the stack drains.
	s.fsEnd(true)
	s.drainGuard()
	if s.forceFull {
		t.Error("full-fence guard not cleared after drain")
	}
}

func TestScopeShadowNoLagNoGuard(t *testing.T) {
	s, _ := newScopeForTest(4, 4, 4)
	s.fsStart(1, true)
	s.fsStart(2, true)
	s.restoreShadow()
	if s.forceFull {
		t.Error("in-sync shadow must not engage the guard")
	}
	if len(s.fss) != 2 {
		t.Errorf("FSS depth = %d, want 2", len(s.fss))
	}
}

func TestScopeSetEntryReserved(t *testing.T) {
	s, _ := newScopeForTest(4, 4, 4)
	if s.setEntry() != 3 {
		t.Errorf("set entry = %d, want 3", s.setEntry())
	}
	if s.setBit() != 8 {
		t.Errorf("set bit = %b, want 1000", s.setBit())
	}
	if s.classEntries() != 3 {
		t.Errorf("class entries = %d, want 3", s.classEntries())
	}
}

func TestScopeDeepNestingDistinctEntriesThenShared(t *testing.T) {
	s, _ := newScopeForTest(4, 8, 8)
	seen := map[uint8]bool{}
	for cid := int64(1); cid <= 3; cid++ {
		s.fsStart(cid, true)
		e, full := s.fenceClassEntry()
		if full {
			t.Fatalf("unexpected overflow at cid %d", cid)
		}
		seen[e] = true
	}
	if len(seen) != 3 {
		t.Errorf("3 nested scopes used %d distinct entries, want 3", len(seen))
	}
}
