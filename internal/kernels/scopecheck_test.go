package kernels_test

import (
	"context"
	"testing"
	"time"

	"sfence/internal/kernels"
	"sfence/internal/machine"
	"sfence/internal/scopecheck"
)

// TestKernelScopesVerify is the static gate over Table IV: every
// kernel's hand annotations verify clean under the scope checker, in
// both the traditional (all-global) and scoped builds. The issue's
// explicit criterion — harris's class annotations verify clean — is a
// row of this table.
func TestKernelScopesVerify(t *testing.T) {
	for _, info := range kernels.All() {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			k, err := kernels.Build(info.Name, kernels.Options{Mode: mode})
			if err != nil {
				t.Fatalf("%s/%s: build: %v", info.Name, mode, err)
			}
			sc := k.Scenario()
			rep, err := scopecheck.Verify(&sc)
			if err != nil {
				t.Fatalf("%s/%s: %v", info.Name, mode, err)
			}
			if rep.HasErrors() {
				t.Errorf("%s/%s: scope verification errors:\n%s", info.Name, mode, rep)
			}
		}
	}
}

// TestKernelScopesInfer checks that inference produces an analyzable,
// clean program for every kernel: the inferred set-scope rewrite must
// itself verify with no errors, and must flag at least one access on
// every kernel (they all communicate through shared memory).
func TestKernelScopesInfer(t *testing.T) {
	for _, info := range kernels.All() {
		k, err := kernels.Build(info.Name, kernels.Options{Mode: kernels.Traditional})
		if err != nil {
			t.Fatalf("%s: build: %v", info.Name, err)
		}
		sc := k.Scenario()
		prog, inf, err := scopecheck.Infer(&sc)
		if err != nil {
			t.Fatalf("%s: infer: %v", info.Name, err)
		}
		if inf.Fences == 0 {
			t.Errorf("%s: inference rewrote no fences", info.Name)
		}
		if len(inf.Flagged) == 0 {
			t.Errorf("%s: inference flagged no accesses", info.Name)
		}
		inferred := scopecheck.Scenario{Name: sc.Name, Prog: prog, Threads: sc.Threads, Regions: sc.Regions}
		rep, err := scopecheck.Verify(&inferred)
		if err != nil {
			t.Fatalf("%s: verify inferred: %v", info.Name, err)
		}
		if rep.HasErrors() {
			t.Errorf("%s: inferred program has scope errors:\n%s", info.Name, rep)
		}
	}
}

// TestInferredKernelsRun executes inferred-scope builds on the simulated
// machine and checks the kernels' own architectural verifiers: the
// dynamic half of inference soundness on real programs.
func TestInferredKernelsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	cases := []struct {
		name string
		opts kernels.Options
	}{
		{"dekker", kernels.Options{Mode: kernels.Inferred, Ops: 20, Workload: 1}},
		{"wsq", kernels.Options{Mode: kernels.Inferred, Ops: 40, Workload: 1}},
		{"harris", kernels.Options{Mode: kernels.Inferred, Ops: 24, Workload: 1}},
	}
	for _, tc := range cases {
		k, err := kernels.Build(tc.name, tc.opts)
		if err != nil {
			t.Fatalf("%s: build: %v", tc.name, err)
		}
		cfg := machine.DefaultConfig()
		cfg.Cores = len(k.Threads)
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		if _, err := kernels.Run(ctx, k, cfg); err != nil {
			t.Errorf("%s (inferred): %v", tc.name, err)
		}
		cancel()
	}
}
