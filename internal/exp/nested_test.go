package exp

import (
	"context"
	"testing"
)

func TestNestedScopePressure(t *testing.T) {
	rows, err := testSession().AblationNestedScopes(context.Background(), Quick)
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]AblationRow{}
	for _, r := range rows {
		byKey[r.Bench+"/"+intLabel(r.Value)] = r
		t.Logf("%-16s fss=%d cycles=%d stall=%.3f", r.Bench, r.Value, r.Cycles, r.Stall)
	}
	// Ample hardware (fsb4/fss4) must beat the entry-sharing config
	// (fsb2) and the FSS-overflow config (fss1).
	ample := byKey["nested/fsb4/4"]
	sharing := byKey["nested/fsb2/4"]
	overflow := byKey["nested/fsb4/1"]
	if ample.Cycles >= sharing.Cycles {
		t.Errorf("FSB sharing did not cost anything: ample %d vs sharing %d", ample.Cycles, sharing.Cycles)
	}
	if ample.Cycles >= overflow.Cycles {
		t.Errorf("FSS overflow did not cost anything: ample %d vs overflow %d", ample.Cycles, overflow.Cycles)
	}
}
