package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderResolvesForwardAndBackwardLabels(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.Label("top")
	b.MovI(R1, 1)
	b.Beq(R1, R0, "end") // forward
	b.Jmp("top")         // backward
	b.Label("end")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := p.Code[1].Imm; got != 3 {
		t.Errorf("forward branch target = %d, want 3", got)
	}
	if got := p.Code[2].Imm; got != 0 {
		t.Errorf("backward jump target = %d, want 0", got)
	}
	if pc := p.MustEntry("main"); pc != 0 {
		t.Errorf("entry main = %d, want 0", pc)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder()
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with undefined label")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder()
	b.Label("x").Nop().Label("x")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with duplicate label")
	}
}

func TestBuilderDuplicateEntry(t *testing.T) {
	b := NewBuilder()
	b.Entry("e").Nop().Entry("e")
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with duplicate entry")
	}
}

func TestInlineScopesLabels(t *testing.T) {
	loopBody := func(b *Builder) {
		b.Label("loop")
		b.AddI(R1, R1, 1)
		b.Blt(R1, R2, "loop")
	}
	b := NewBuilder()
	b.MovI(R1, 0)
	b.MovI(R2, 3)
	b.Inline(loopBody)
	b.Inline(loopBody) // same labels again: must not collide
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build with repeated inline: %v", err)
	}
	// First expansion's branch targets its own loop head (pc 2), second
	// expansion's branch targets pc 4.
	if p.Code[3].Imm != 2 {
		t.Errorf("first inline branch target = %d, want 2", p.Code[3].Imm)
	}
	if p.Code[5].Imm != 4 {
		t.Errorf("second inline branch target = %d, want 4", p.Code[5].Imm)
	}
}

func TestInlineNesting(t *testing.T) {
	inner := func(b *Builder) {
		b.Label("l")
		b.Jmp("l")
	}
	outer := func(b *Builder) {
		b.Label("l") // same name as inner's label
		b.Inline(inner)
		b.Jmp("l")
	}
	b := NewBuilder()
	b.Inline(outer)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build nested inline: %v", err)
	}
	if p.Code[0].Imm != 0 { // inner jmp -> inner label
		t.Errorf("inner jmp target = %d, want 0", p.Code[0].Imm)
	}
	if p.Code[1].Imm != 0 { // outer jmp -> outer label (also pc 0)
		t.Errorf("outer jmp target = %d, want 0", p.Code[1].Imm)
	}
}

func TestSetFlaggedAppliesToNextMemOp(t *testing.T) {
	b := NewBuilder()
	b.SetFlagged().Load(R1, R2, 8)
	b.Store(R2, 0, R1)
	b.SetFlagged().CAS(R3, R2, 0, R1, R4)
	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if !p.Code[0].SetFlag {
		t.Error("flagged load lost SetFlag")
	}
	if p.Code[1].SetFlag {
		t.Error("unflagged store gained SetFlag")
	}
	if !p.Code[2].SetFlag {
		t.Error("flagged CAS lost SetFlag")
	}
}

func TestSetFlaggedOnNonMemoryIsError(t *testing.T) {
	b := NewBuilder()
	b.SetFlagged().AddI(R1, R1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with SetFlagged on ALU op")
	}
}

func TestDanglingSetFlaggedIsError(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.SetFlagged()
	if _, err := b.Build(); err == nil {
		t.Fatal("Build succeeded with dangling SetFlagged")
	}
}

func TestInstructionClassPredicates(t *testing.T) {
	cases := []struct {
		in     Instruction
		mem    bool
		branch bool
		writes bool
	}{
		{Instruction{Op: OpLoad, Rd: R1}, true, false, true},
		{Instruction{Op: OpLoad, Rd: R0}, true, false, false}, // writes to R0 discarded
		{Instruction{Op: OpStore}, true, false, false},
		{Instruction{Op: OpCAS, Rd: R2}, true, false, true},
		{Instruction{Op: OpBeq}, false, true, false},
		{Instruction{Op: OpBge}, false, true, false},
		{Instruction{Op: OpJmp}, false, false, false},
		{Instruction{Op: OpAdd, Rd: R3}, false, false, true},
		{Instruction{Op: OpFence}, false, false, false},
		{Instruction{Op: OpFsStart}, false, false, false},
	}
	for _, c := range cases {
		if got := c.in.IsMem(); got != c.mem {
			t.Errorf("%s IsMem = %v, want %v", c.in.Op, got, c.mem)
		}
		if got := c.in.IsBranch(); got != c.branch {
			t.Errorf("%s IsBranch = %v, want %v", c.in.Op, got, c.branch)
		}
		if got := c.in.Writes(); got != c.writes {
			t.Errorf("%s Writes = %v, want %v", c.in.Op, got, c.writes)
		}
	}
}

func TestScopeKindString(t *testing.T) {
	if ScopeGlobal.String() != "global" || ScopeClass.String() != "class" || ScopeSet.String() != "set" {
		t.Error("ScopeKind String mismatch")
	}
	if !strings.Contains(ScopeKind(9).String(), "9") {
		t.Error("unknown ScopeKind String should include numeric value")
	}
}

func TestDisassembleContainsEntriesAndOps(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.MovI(R1, 42)
	b.SetFlagged().Store(R2, 16, R1)
	b.Fence(ScopeSet)
	b.FsStart(7)
	b.Fence(ScopeClass)
	b.FsEnd(7)
	b.Halt()
	p := b.MustBuild()
	d := p.Disassemble()
	for _, want := range []string{"main:", "movi r1, 42", "store.set [r2+16], r1", "fence.set", "fs_start 7", "fence.class", "fs_end 7", "halt"} {
		if !strings.Contains(d, want) {
			t.Errorf("disassembly missing %q:\n%s", want, d)
		}
	}
}

func TestProgramEntryUnknown(t *testing.T) {
	p := &Program{Entries: map[string]int{}}
	if _, err := p.Entry("missing"); err == nil {
		t.Fatal("Entry returned nil error for unknown name")
	}
}

// Property: every opcode has a non-placeholder String, and every
// instruction String is non-empty.
func TestOpStringsTotal(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "Op(") {
			t.Errorf("op %d has placeholder name %q", op, s)
		}
	}
}

// Property-based: label resolution is position-independent — prepending
// nops shifts all branch targets by exactly the prefix length.
func TestLabelResolutionShiftInvariant(t *testing.T) {
	f := func(prefix uint8) bool {
		n := int(prefix % 32)
		b := NewBuilder()
		for i := 0; i < n; i++ {
			b.Nop()
		}
		b.Label("t")
		b.AddI(R1, R1, 1)
		b.Bne(R1, R2, "t")
		p, err := b.Build()
		if err != nil {
			return false
		}
		return p.Code[n+1].Imm == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
