// Command sfence-bench regenerates every table and figure of the paper's
// evaluation section (and the repository's extra ablations) on the
// simulated machine.
//
// Examples:
//
//	sfence-bench -all            # everything, full scale
//	sfence-bench -fig12 -quick   # just Figure 12, reduced sizing
//	sfence-bench -table3 -table4 -hwcost
package main

import (
	"flag"
	"fmt"
	"os"

	"sfence"
)

func main() {
	var (
		all       = flag.Bool("all", false, "run every experiment")
		fig12     = flag.Bool("fig12", false, "Figure 12: impact of workload")
		fig13     = flag.Bool("fig13", false, "Figure 13: full applications (T/S/T+/S+)")
		fig14     = flag.Bool("fig14", false, "Figure 14: class vs set scope")
		fig15     = flag.Bool("fig15", false, "Figure 15: memory latency sweep")
		fig16     = flag.Bool("fig16", false, "Figure 16: ROB size sweep")
		table3    = flag.Bool("table3", false, "Table III: architectural parameters")
		table4    = flag.Bool("table4", false, "Table IV: benchmark descriptions")
		hwcost    = flag.Bool("hwcost", false, "Section VI-E: hardware cost")
		ablations = flag.Bool("ablations", false, "design-choice ablations (beyond the paper)")
		quick     = flag.Bool("quick", false, "reduced workload sizes")
	)
	flag.Parse()

	sc := sfence.Full
	if *quick {
		sc = sfence.Quick
	}
	any := false
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if *all || *table3 {
		any = true
		fmt.Println(sfence.RenderTableIII(sfence.DefaultConfig()))
	}
	if *all || *table4 {
		any = true
		fmt.Println(sfence.RenderTableIV())
	}
	if *all || *hwcost {
		any = true
		fmt.Println(sfence.RenderHardwareCost(sfence.HardwareCost(sfence.DefaultConfig().Core)))
	}
	if *all || *fig12 {
		any = true
		series, err := sfence.Figure12(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(sfence.RenderFigure12(series))
	}
	if *all || *fig13 {
		any = true
		groups, err := sfence.Figure13(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(sfence.RenderGroups("Figure 13 — Normalized execution time (T, S, T+, S+)", groups))
	}
	if *all || *fig14 {
		any = true
		groups, err := sfence.Figure14(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(sfence.RenderGroups("Figure 14 — Class scope vs. set scope", groups))
	}
	if *all || *fig15 {
		any = true
		groups, err := sfence.Figure15(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(sfence.RenderGroups("Figure 15 — Varying memory access latency (200/300/500 cycles)", groups))
	}
	if *all || *fig16 {
		any = true
		groups, err := sfence.Figure16(sc)
		if err != nil {
			fail(err)
		}
		fmt.Println(sfence.RenderGroups("Figure 16 — Varying ROB size (64/128/256 entries)", groups))
	}
	if *all || *ablations {
		any = true
		type abl struct {
			title string
			fn    func(sfence.Scale) ([]sfence.AblationRow, error)
		}
		for _, a := range []abl{
			{"Ablation — FSB entry count", sfence.AblationFSBEntries},
			{"Ablation — FSS depth", sfence.AblationFSSDepth},
			{"Ablation — store buffer size", sfence.AblationStoreBuffer},
			{"Ablation — FIFO (TSO-like) vs non-FIFO (RMO) store buffer", sfence.AblationFIFOStoreBuffer},
			{"Ablation — store-store put fence (Section VII combination); 0=full, 1=SS", sfence.AblationFinerFences},
			{"Ablation — nested-scope pressure (FSB sharing / FSS overflow)", sfence.AblationNestedScopes},
			{"Ablation — FSS recovery: snapshot (0) vs paper shadow (1)", sfence.AblationRecovery},
		} {
			rows, err := a.fn(sc)
			if err != nil {
				fail(err)
			}
			fmt.Println(sfence.RenderAblation(a.title, rows))
		}
	}
	if !any {
		flag.Usage()
		os.Exit(2)
	}
}
