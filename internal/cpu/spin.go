package cpu

import (
	"slices"

	"sfence/internal/memsys"
)

// Spin-aware fast-forward. The two-speed clock's FastForward covers cores
// that make NO progress; busy-wait loops defeat it because every iteration
// decodes, executes, and retires instructions (progressed == true forever).
// This file closes that gap: a per-core detector that recognizes when the
// core's architectural orbit has become exactly periodic with a frozen
// memory system, captures the per-period statistics delta once, and lets
// the machine jump whole spans of spin iterations in O(1) while crediting
// every counter — core stats, memory-system stats, fence-site profile,
// observer events — exactly as the skipped live iterations would have.
//
// Correctness rests on three facts, each enforced elsewhere:
//
//  1. Tick is a deterministic function of normalized core state. If the
//     full architectural state (registers, ROB window, store buffer,
//     scope hardware, fetch state — with times taken relative to the
//     clock and producer seqs relative to the ROB head) recurs after P
//     cycles while the environment was frozen, the orbit repeats with
//     period P forever, from any phase, until the environment changes.
//  2. "Environment frozen" is checkable: memsys.CoreVersion advances on
//     every hierarchy mutation visible to this core (a steady spin
//     performs only idempotent MRU hits — see l1Cache.touch), the
//     predictor version advances when any counter actually changes, and
//     a core-local event counter advances on squashes, snoops, store
//     drains, and CAS commits. Remote stores that change Image words the
//     spin reads are delivered by Machine.broadcastStore through
//     SpinNoteRemoteStore against the watched-address set.
//  3. Per-period statistic deltas are phase-invariant: the delta over ANY
//     P consecutive cycles of a periodic orbit equals the delta captured
//     between the anchor and its first recurrence, so crediting k copies
//     of the captured delta is exact for a jump of k*P cycles.
const (
	// spinWarmup is how many consecutive unperturbed ticks precede an
	// anchor capture attempt. Spin phases between background perturbations
	// (e.g. a store-buffer drain every few dozen cycles) are often short,
	// so the warm-up is kept small; the occupancy-settle gate below is what
	// keeps mid-transient anchors rare.
	spinWarmup = 6
	// spinOccSettle is how many consecutive ticks the ROB occupancy must
	// hold constant before an anchor is captured. A refilling or draining
	// pipeline changes occupancy almost every tick, so this single integer
	// comparison filters out the monotone transients that a full state
	// capture would reject anyway — at none of the capture cost.
	spinOccSettle = 4
	// spinWindow bounds how long an anchor waits for its recurrence; real
	// spin loops are a handful of cycles per iteration.
	spinWindow = 64
	// spinRearmMax is how many times an expired window re-anchors from the
	// current state before giving up. The first anchor after a perturbation
	// is often mid-transient — the ROB is still refilling, so the settled
	// orbit is a superset of it and can never match; re-anchoring from the
	// settled state is what lets tight spin loops confirm.
	spinRearmMax = 4
	// Failed windows back off exponentially between attempts so
	// non-periodic compute phases don't pay the capture cost repeatedly.
	spinCooldownMin = 64
	spinCooldownMax = 4096
	// spinWatchMax bounds the watched-address set; an orbit touching more
	// distinct Image words than this treats every remote store as a hit.
	spinWatchMax = 8
)

// Spin-detector phases.
const (
	spinIdle      uint8 = iota // counting stable ticks
	spinPending                // cheap gate quad recorded, awaiting its recurrence
	spinArmed                  // anchor captured, awaiting recurrence
	spinConfirmed              // periodic orbit proven; jumps allowed
)

// spinSiteDelta is one fence site's per-period profile growth.
type spinSiteDelta struct {
	site              *FenceSite
	exec, stall, idle uint64
}

// spinState is the per-core detector.
type spinState struct {
	phase    uint8
	stable   int64 // consecutive unperturbed ticks
	cooldown int64 // extra stable ticks required before the next arm
	rearms   int   // consecutive expired windows re-anchored in place
	armTicks int64 // observed ticks since the anchor was captured

	// events counts core-local perturbations (squash, snoop batch, store
	// drain, CAS commit); the seen* fields are the values at the last
	// spinObserve, so any advance is detected exactly once.
	events     uint64
	seenEvents uint64
	seenMem    uint64 // memsys.CoreVersion at last observe
	seenPred   uint64 // predictor version at last observe

	// lastOcc/occStable track how long the ROB occupancy has been
	// constant; anchors are only captured against a settled pipeline.
	lastOcc   uint64
	occStable int64
	growTicks int64 // consecutive armed ticks with occupancy above the anchor

	anchorAt  int64
	anchorPC  int    // fetchPC at the anchor — cheap recurrence prefilter
	anchorOcc uint64 // ROB occupancy at the anchor — ditto
	anchorNC  int64  // nextComplete − cycle at the anchor — ditto
	anchorND  int64  // nextSBDrain − cycle at the anchor — ditto
	anchorBuf []uint64
	curBuf    []uint64

	// Captures taken at the anchor, turned into per-period deltas at
	// confirmation.
	statsAt Stats
	memAt   memsys.CoreStats
	profAt  map[int]FenceSite
	evAt    [8]uint64 // observer events emitted while armed

	// watch is the set of Image addresses the orbit reads from memory; a
	// remote store to one of them perturbs the spin even when it causes
	// no coherence traffic here (the value changes at drain time, not at
	// the store's own cache access).
	watch         []int64
	watchOverflow bool

	// Confirmed-period results.
	period  int64
	dStats  Stats
	dMem    memsys.CoreStats
	dSites  []spinSiteDelta
	dEvents [8]uint64

	jumps   uint64
	skipped uint64
}

// spinReset abandons any detection in progress (tracer/observer attach,
// remote perturbation).
func (c *Core) spinReset() {
	c.spin.phase = spinIdle
	c.spin.stable = 0
	c.spin.rearms = 0
}

// SpinActive reports whether the core is in a confirmed periodic spin with
// its environment still frozen — the machine treats such a core as
// quiescent and may SpinForward it in whole periods. The live checks
// (snoops, memory version) catch perturbations delivered by cores that
// ticked after this one in the current cycle.
func (c *Core) SpinActive() bool {
	s := &c.spin
	return s.phase == spinConfirmed && c.fault == nil && !c.Done() &&
		len(c.snoopPending) == 0 && c.hier.CoreVersion(c.id) == s.seenMem
}

// SpinPeriod returns the confirmed orbit period in cycles (0 if none).
func (c *Core) SpinPeriod() int64 {
	if c.spin.phase != spinConfirmed {
		return 0
	}
	return c.spin.period
}

// SpinJumps returns how many times this core was spin-forwarded.
func (c *Core) SpinJumps() uint64 { return c.spin.jumps }

// SpinSkippedCycles returns the total cycles this core skipped inside
// confirmed spins.
func (c *Core) SpinSkippedCycles() uint64 { return c.spin.skipped }

// SpinNoteRemoteStore tells the core another core's store to addr became
// globally visible (store-buffer drain or CAS commit). If the address is
// one the spin orbit reads — or the watch set overflowed — the detection
// is dropped immediately: the next load of that word returns a different
// value, so the orbit is no longer periodic. Demotion must be immediate
// (not deferred to the next tick) because the machine decides whether to
// jump at the end of the cycle in which the remote store completed.
func (c *Core) SpinNoteRemoteStore(addr int64) {
	s := &c.spin
	if s.phase == spinIdle {
		return
	}
	if !s.watchOverflow {
		hit := false
		norm := c.img.Norm(addr)
		for _, a := range s.watch {
			if a == norm {
				hit = true
				break
			}
		}
		if !hit {
			return
		}
	}
	c.spinReset()
}

// SpinNoteLineDisturb tells the core a remote coherence action
// (invalidation, downgrade, back-invalidation) touched one of its private
// cache lines. If the line holds any word the spin orbit reads, the
// detection is dropped immediately: the orbit's next access to it would
// miss or upgrade, breaking periodicity. Disturbs on unrelated lines are
// ignored — the orbit never touches them, so its behavior is unchanged
// (the stats the disturb charged to this core are kept exact by the
// purity check in spinConfirm). Immediacy matters for the same reason as
// in SpinNoteRemoteStore: the machine decides whether to jump at the end
// of the cycle in which the disturb happened.
func (c *Core) SpinNoteLineDisturb(line int64) {
	s := &c.spin
	if s.phase == spinIdle {
		return
	}
	if !s.watchOverflow {
		hit := false
		for _, a := range s.watch {
			if c.hier.LineOf(a) == line {
				hit = true
				break
			}
		}
		if !hit {
			return
		}
	}
	c.spinReset()
}

// spinWatch records an Image address the in-flight orbit reads.
func (c *Core) spinWatch(addr int64) {
	s := &c.spin
	if s.phase == spinIdle || s.watchOverflow {
		return
	}
	for _, a := range s.watch {
		if a == addr {
			return
		}
	}
	if len(s.watch) >= spinWatchMax {
		s.watchOverflow = true
		return
	}
	s.watch = append(s.watch, addr)
}

// spinObserve runs at the end of every Tick: it tracks environment
// stability, arms an anchor after a warm-up of unperturbed ticks, and
// confirms a periodic orbit when the anchor state recurs within the
// window. Tracers see per-cycle detail, so a traced core never spins fast.
func (c *Core) spinObserve() {
	s := &c.spin
	if c.tracer != nil {
		c.spinReset()
		return
	}
	if occ := c.tail - c.head; occ != s.lastOcc {
		s.lastOcc = occ
		s.occStable = 0
	} else {
		s.occStable++
	}
	mv := c.hier.CoreVersion(c.id)
	pv := c.pred.ver
	if s.events != s.seenEvents || mv != s.seenMem || pv != s.seenPred || len(c.snoopPending) > 0 {
		s.seenEvents, s.seenMem, s.seenPred = s.events, mv, pv
		s.phase = spinIdle
		s.stable = 0
		s.rearms = 0
		// Decay (rather than keep) the expiry backoff: an external
		// perturbation usually means a phase change, and a new phase's
		// periodicity should not pay for an older phase's failed windows.
		// Truly aperiodic phases still back off — their windows expire
		// faster than the perturbations halve the penalty.
		s.cooldown /= 2
		return
	}
	s.stable++
	switch s.phase {
	case spinIdle:
		// Arm against a settled pipeline when possible; a spin whose
		// occupancy oscillates every tick (retire and refill interleaved)
		// never reads as settled, so after a longer clean streak arm
		// anyway — the recurrence prefilter below keeps mistakes cheap.
		if s.stable >= spinWarmup+s.cooldown &&
			(s.occStable >= spinOccSettle || s.stable >= 3*spinWarmup+s.cooldown) {
			s.spinPend(c)
		}
	case spinPending:
		// The quad was recorded for free; a full anchor capture is paid
		// only once the quad has recurred, i.e. the phase has produced
		// evidence of candidate periodicity. Aperiodic compute phases
		// live their whole lives here at O(1) per tick.
		s.armTicks++
		occ := c.tail - c.head
		nc, nd := spinRelGates(c)
		switch {
		case occ == s.anchorOcc && c.fetchPC == s.anchorPC &&
			nc == s.anchorNC && nd == s.anchorND:
			s.spinArm(c)
			return
		case occ > s.anchorOcc:
			s.growTicks++
			if s.growTicks >= spinOccSettle {
				// Quad recorded mid-refill; refresh it from the fuller
				// pipeline (free — no capture has happened yet).
				s.spinPend(c)
				return
			}
		default:
			s.growTicks = 0
		}
		if s.armTicks > spinWindow {
			if s.rearms < spinRearmMax {
				s.rearms++
				s.spinPend(c)
				return
			}
			s.rearms = 0
			s.phase = spinIdle
			s.stable = 0
			s.cooldown = min(max(s.cooldown*2, spinCooldownMin), spinCooldownMax)
		}
	case spinArmed:
		s.armTicks++
		occ := c.tail - c.head
		if occ > s.anchorOcc {
			s.growTicks++
		} else {
			s.growTicks = 0
		}
		nc, nd := spinRelGates(c)
		switch {
		case occ == s.anchorOcc && c.fetchPC == s.anchorPC &&
			nc == s.anchorNC && nd == s.anchorND:
			// Recurrence candidate: only here is the full capture paid.
			// The prefilter is exact-negative (fetchPC and occupancy are
			// both part of the capture, so unequal means not recurred) and
			// fires at most once per orbit period.
			s.curBuf = c.spinCapture(s.curBuf[:0])
			if slices.Equal(s.curBuf, s.anchorBuf) {
				s.spinConfirm(c)
				return
			}
		case s.growTicks >= spinOccSettle:
			// The pipeline has held strictly more state than the anchor
			// for several consecutive ticks: the anchor was captured
			// mid-refill and can never recur (an orbit's occupancy would
			// swing back). Move it up. Each move strictly grows the
			// anchor, bounded by the ROB capacity, so this converges.
			s.spinArm(c)
			return
		}
		if s.armTicks > spinWindow {
			if s.rearms < spinRearmMax {
				// The anchor never recurred within the window; retry from
				// the current state.
				s.rearms++
				s.spinArm(c)
				return
			}
			s.rearms = 0
			s.phase = spinIdle
			s.stable = 0
			s.cooldown = min(max(s.cooldown*2, spinCooldownMin), spinCooldownMax)
		}
	}
}

// spinRelGates returns the completion and drain gates relative to the
// clock (−1 when unscheduled). Together with fetchPC and ROB occupancy
// they form the O(1) recurrence prefilter: all four are part of the full
// capture, so a mismatch on any of them is an exact negative. The gates
// matter because they are the fields that change every tick while the
// rest of a stalled pipeline is frozen — a core parked on an in-flight
// miss keeps fetchPC and occupancy constant for hundreds of cycles, and
// without the gate check every one of those ticks would pay for a full
// state capture that the countdown then fails.
func spinRelGates(c *Core) (nc, nd int64) {
	nc, nd = -1, -1
	if c.nextComplete != NeverWakes {
		nc = c.nextComplete - c.cycle
	}
	if c.nextSBDrain != NeverWakes {
		nd = c.nextSBDrain - c.cycle
	}
	return nc, nd
}

// spinPend records the O(1) prefilter quad and waits for it to recur
// before any capture cost is paid.
func (s *spinState) spinPend(c *Core) {
	s.phase = spinPending
	s.armTicks = 0
	s.growTicks = 0
	s.anchorPC = c.fetchPC
	s.anchorOcc = c.tail - c.head
	s.anchorNC, s.anchorND = spinRelGates(c)
}

// spinArm captures the anchor state and the counter baselines the
// confirmation will diff against.
func (s *spinState) spinArm(c *Core) {
	s.phase = spinArmed
	s.anchorAt = c.cycle
	s.armTicks = 0
	s.growTicks = 0
	s.anchorPC = c.fetchPC
	s.anchorOcc = c.tail - c.head
	s.anchorNC, s.anchorND = spinRelGates(c)
	s.anchorBuf = c.spinCapture(s.anchorBuf[:0])
	s.statsAt = c.stats
	s.memAt = c.hier.SnapshotCoreStats(c.id)
	if s.profAt == nil {
		s.profAt = make(map[int]FenceSite, len(c.profile.sites))
	} else {
		clear(s.profAt)
	}
	for pc, site := range c.profile.sites {
		s.profAt[pc] = *site
	}
	s.evAt = [8]uint64{}
	s.watch = s.watch[:0]
	s.watchOverflow = false
}

// spinConfirm turns the anchor-to-recurrence window into the per-period
// deltas SpinForward replays.
func (s *spinState) spinConfirm(c *Core) {
	s.period = c.cycle - s.anchorAt
	s.dStats = spinDeltaStats(&c.stats, &s.statsAt)
	s.dMem = c.hier.DeltaCoreStats(c.id, s.memAt)
	if !spinMemDeltaPure(&s.dMem) {
		// A remote coherence action charged stats to this core inside the
		// window (e.g. an invalidation of a line the orbit does not read —
		// behaviorally invisible, so the anchor still recurred, but the
		// one-off charge must not be multiplied). Restart the window from
		// here; the new baselines are clean.
		s.spinArm(c)
		return
	}
	s.dSites = s.dSites[:0]
	for pc, site := range c.profile.sites {
		old := s.profAt[pc]
		d := spinSiteDelta{
			site:  site,
			exec:  site.Executions - old.Executions,
			stall: site.StallCycles - old.StallCycles,
			idle:  site.IdleCycles - old.IdleCycles,
		}
		if d.exec|d.stall|d.idle != 0 {
			s.dSites = append(s.dSites, d)
		}
	}
	s.dEvents = s.evAt
	s.phase = spinConfirmed
	s.cooldown = 0
	s.rearms = 0
}

// SpinForward advances a confirmed spinning core by delta cycles (delta
// must be a whole number of periods): every absolute timestamp in flight
// shifts by delta, and k = delta/period copies of the captured per-period
// delta land on the statistics, the memory-system counters, the fence
// profile, and the attached observer. The result is bit-identical to
// ticking the core delta more times against a frozen environment.
func (c *Core) SpinForward(delta int64) {
	s := &c.spin
	if delta <= 0 {
		return
	}
	if s.phase != spinConfirmed || s.period <= 0 || delta%s.period != 0 {
		panic("cpu: SpinForward without a confirmed spin period")
	}
	k := uint64(delta / s.period)
	for seq := c.head; seq < c.tail; seq++ {
		if e := c.slot(seq); e.stage == stExecuting {
			e.readyAt += delta
		}
	}
	for i := range c.compHeap {
		c.compHeap[i].at += delta
	}
	for i := range c.sb {
		if c.sb[i].inflight {
			c.sb[i].readyAt += delta
		}
	}
	if c.redirectUntil > c.cycle {
		c.redirectUntil += delta
	}
	if c.nextComplete != NeverWakes {
		c.nextComplete += delta
	}
	if c.nextSBDrain != NeverWakes {
		c.nextSBDrain += delta
	}
	spinCreditStats(&c.stats, &s.dStats, k)
	c.hier.CreditCoreStats(c.id, s.dMem, k)
	for _, d := range s.dSites {
		d.site.Executions += d.exec * k
		d.site.StallCycles += d.stall * k
		d.site.IdleCycles += d.idle * k
	}
	if c.observer != nil {
		for ev, n := range s.dEvents {
			if n > 0 {
				c.observer.Observe(c.id, uint8(ev), n*k)
			}
		}
	}
	s.jumps++
	s.skipped += uint64(delta)
	c.cycle += delta
}

// spinMemDeltaPure reports whether a per-period memory-system delta could
// have been produced by the orbit alone. A stable orbit performs only
// idempotent innermost-level hits (anything else bumps the core version
// and resets detection), so the only fields allowed to grow are Loads,
// Stores, and innermost Hits; growth anywhere else — Invalidations,
// Writebacks, upgrades, outer-level traffic — was charged to this core by
// a remote access and must not be replayed per period.
func spinMemDeltaPure(d *memsys.CoreStats) bool {
	if d.Upgrades != 0 || d.Invalidations != 0 || d.Writebacks != 0 || d.RemoteDirty != 0 {
		return false
	}
	for k := range d.Level {
		if d.Level[k].Misses != 0 || (k > 0 && d.Level[k].Hits != 0) {
			return false
		}
	}
	return true
}

// spinDeltaStats returns the counter growth since anchor. Gauges are
// excluded on purpose: a periodic orbit reached its steady-state maxima
// during the live window, so skipped iterations cannot raise them.
func spinDeltaStats(cur, anchor *Stats) Stats {
	return Stats{
		Committed:        cur.Committed - anchor.Committed,
		CommittedLoads:   cur.CommittedLoads - anchor.CommittedLoads,
		CommittedStores:  cur.CommittedStores - anchor.CommittedStores,
		CommittedCAS:     cur.CommittedCAS - anchor.CommittedCAS,
		CommittedFences:  cur.CommittedFences - anchor.CommittedFences,
		FenceStallCycles: cur.FenceStallCycles - anchor.FenceStallCycles,
		FenceStallIssue:  cur.FenceStallIssue - anchor.FenceStallIssue,
		FenceStallRetire: cur.FenceStallRetire - anchor.FenceStallRetire,
		FenceIdleCycles:  cur.FenceIdleCycles - anchor.FenceIdleCycles,
		ROBFullCycles:    cur.ROBFullCycles - anchor.ROBFullCycles,
		SBFullCycles:     cur.SBFullCycles - anchor.SBFullCycles,
		Branches:         cur.Branches - anchor.Branches,
		Mispredicts:      cur.Mispredicts - anchor.Mispredicts,
		Squashed:         cur.Squashed - anchor.Squashed,
		WrongPathMem:     cur.WrongPathMem - anchor.WrongPathMem,
		SpecLoadFlush:    cur.SpecLoadFlush - anchor.SpecLoadFlush,
		ScopeOverflow:    cur.ScopeOverflow - anchor.ScopeOverflow,
		ScopeShared:      cur.ScopeShared - anchor.ScopeShared,
		FSEndIgnored:     cur.FSEndIgnored - anchor.FSEndIgnored,
		SumROBOccupancy:  cur.SumROBOccupancy - anchor.SumROBOccupancy,
		Cycles:           cur.Cycles - anchor.Cycles,
	}
}

// spinCreditStats adds d×times into s.
func spinCreditStats(s, d *Stats, times uint64) {
	t := times
	s.Committed.Add(uint64(d.Committed) * t)
	s.CommittedLoads.Add(uint64(d.CommittedLoads) * t)
	s.CommittedStores.Add(uint64(d.CommittedStores) * t)
	s.CommittedCAS.Add(uint64(d.CommittedCAS) * t)
	s.CommittedFences.Add(uint64(d.CommittedFences) * t)
	s.FenceStallCycles.Add(uint64(d.FenceStallCycles) * t)
	s.FenceStallIssue.Add(uint64(d.FenceStallIssue) * t)
	s.FenceStallRetire.Add(uint64(d.FenceStallRetire) * t)
	s.FenceIdleCycles.Add(uint64(d.FenceIdleCycles) * t)
	s.ROBFullCycles.Add(uint64(d.ROBFullCycles) * t)
	s.SBFullCycles.Add(uint64(d.SBFullCycles) * t)
	s.Branches.Add(uint64(d.Branches) * t)
	s.Mispredicts.Add(uint64(d.Mispredicts) * t)
	s.Squashed.Add(uint64(d.Squashed) * t)
	s.WrongPathMem.Add(uint64(d.WrongPathMem) * t)
	s.SpecLoadFlush.Add(uint64(d.SpecLoadFlush) * t)
	s.ScopeOverflow.Add(uint64(d.ScopeOverflow) * t)
	s.ScopeShared.Add(uint64(d.ScopeShared) * t)
	s.FSEndIgnored.Add(uint64(d.FSEndIgnored) * t)
	s.SumROBOccupancy.Add(uint64(d.SumROBOccupancy) * t)
	s.Cycles.Add(uint64(d.Cycles) * t)
}

// spinCapture serializes the core's complete loop-carried architectural
// state into buf as a flat normalized word list. Two states whose captures
// are equal behave identically under Tick against a frozen environment:
//
//   - every absolute time is taken relative to the clock (readyAt, the
//     completion/drain gates, the fetch redirect), so the capture is
//     invariant under shifting the whole core in time;
//   - every producer seq is taken relative to the ROB head (register
//     rename tags, entry operand sources, in-flight fence seqs), so the
//     capture is invariant under the seq growth across iterations;
//   - derived structures are excluded because they are functions of what
//     is captured: the completion heap is exactly the executing entries
//     (popped in deterministic (readyAt, seq) order), the wakeup lists are
//     exactly the waiting entries' not-yet-done producers, and per-tick
//     scratch (accrual, stall dedup flags) is rebuilt from scratch each
//     Tick.
func (c *Core) spinCapture(buf []uint64) []uint64 {
	const none = ^uint64(0)
	relSeq := func(s int64) uint64 {
		if s < 0 || uint64(s) < c.head {
			return none
		}
		return uint64(s) - c.head
	}

	buf = append(buf, uint64(c.fetchPC))
	rd := int64(0)
	if c.redirectUntil > c.cycle {
		rd = c.redirectUntil - c.cycle
	}
	buf = append(buf, uint64(rd))
	nc, nd := none, none
	if c.nextComplete != NeverWakes {
		nc = uint64(c.nextComplete - c.cycle)
	}
	if c.nextSBDrain != NeverWakes {
		nd = uint64(c.nextSBDrain - c.cycle)
	}
	dp := c.donePrefix
	if dp < c.head {
		dp = c.head
	}
	var flags uint64
	for i, b := range [...]bool{
		c.haltDone, c.schedDirty, c.wakePending, c.progressed,
		c.fenceStallSeen, c.robFullSeen, c.sbFullSeen,
		c.scope.shadowLag, c.scope.forceFull,
	} {
		if b {
			flags |= 1 << i
		}
	}
	buf = append(buf, nc, nd, c.tail-c.head, dp-c.head, flags,
		uint64(c.haltInROB), uint64(c.unresolvedBranches),
		uint64(c.robIncompleteMem), uint64(c.robStoreCount),
		uint64(c.specLoads), uint64(c.casWaiting), uint64(c.sbInflight))

	for i := range c.regs {
		buf = append(buf, uint64(c.regs[i]), relSeq(c.regTag[i]))
	}

	buf = append(buf, uint64(len(c.fenceSeqs)))
	for _, fs := range c.fenceSeqs {
		buf = append(buf, fs-c.head)
	}

	sc := c.scope
	buf = append(buf, uint64(sc.overflow), uint64(sc.shadowOverflow))
	for i := range sc.mapCID {
		u := uint64(0)
		if sc.mapUsed[i] {
			u = 1
		}
		buf = append(buf, uint64(sc.mapCID[i]), uint64(sc.mapEntry[i])|u<<8)
	}
	buf = append(buf, uint64(len(sc.fss)))
	for _, e := range sc.fss {
		buf = append(buf, uint64(e))
	}
	buf = append(buf, uint64(len(sc.shadow)))
	for _, e := range sc.shadow {
		buf = append(buf, uint64(e))
	}
	for i := range sc.robCnt {
		buf = append(buf, uint64(sc.robCnt[i]), uint64(sc.robLoadCnt[i]), uint64(sc.sbCnt[i]))
	}

	buf = append(buf, uint64(len(c.sb)))
	for i := range c.sb {
		e := &c.sb[i]
		meta := uint64(e.fsb)
		ready := uint64(0)
		if e.inflight {
			meta |= 1 << 8
			ready = uint64(e.readyAt - c.cycle)
		}
		buf = append(buf, uint64(e.addr), uint64(e.val), meta, ready)
	}

	for seq := c.head; seq < c.tail; seq++ {
		e := c.slot(seq)
		ready := uint64(0)
		if e.stage == stExecuting {
			ready = uint64(e.readyAt - c.cycle)
		}
		slot := seq & c.robMask
		var ef uint64
		for i, b := range [...]bool{
			e.addrOK, e.resolved, e.faulted, e.predTaken, e.fenceFull,
			e.specPastFence, e.accessedMem,
			c.readyBits[slot>>6]>>(slot&63)&1 != 0,
		} {
			if b {
				ef |= 1 << i
			}
		}
		var snapWord uint64
		for i, se := range e.snap.entries {
			snapWord |= uint64(se) << (8 * i)
		}
		buf = append(buf,
			uint64(e.pc), uint64(e.stage), ready,
			uint64(e.val), uint64(e.addr), uint64(e.sval), uint64(e.casOld),
			ef, uint64(e.fsb)|uint64(e.fenceEntry)<<8,
			relSeq(e.src1), relSeq(e.src2), relSeq(e.src3),
			snapWord, uint64(e.snap.depth), uint64(e.snap.overflow))
	}
	return buf
}
