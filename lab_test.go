// Tests of the Lab session API: per-session isolation (two Labs running
// full suites concurrently), cancellation (a cancelled context aborts
// simulations mid-cycle-loop and produces no artifacts), and the typed
// unknown-experiment error.
package sfence_test

import (
	"bytes"
	"context"
	"errors"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"sfence"
)

// TestTwoLabsConcurrentSuites runs the full Quick suite in two Labs with
// distinct caches at the same time — the ROADMAP's two-independent-
// callers scenario. Nothing is shared between the sessions, so the run
// must be race-free (CI executes this under -race) and both suites must
// produce byte-identical artifacts.
func TestTwoLabsConcurrentSuites(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite is slow")
	}
	type outcome struct {
		arts []sfence.ResultArtifact
		md   string
		err  error
	}
	run := func() outcome {
		lab := sfence.NewLab(
			sfence.WithScale(sfence.Quick),
			sfence.WithCache(sfence.NewMemCache()),
			sfence.WithProgress(func(string, int, int) {}), // exercise the sink concurrently
		)
		suite, err := lab.RunSuite(context.Background())
		if err != nil {
			return outcome{err: err}
		}
		arts, err := suite.Artifacts()
		if err != nil {
			return outcome{err: err}
		}
		return outcome{arts: arts, md: suite.ExperimentsMD()}
	}

	var wg sync.WaitGroup
	results := make([]outcome, 2)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = run()
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil {
			t.Fatalf("lab %d: %v", i, r.err)
		}
	}
	a, b := results[0], results[1]
	if len(a.arts) != len(b.arts) {
		t.Fatalf("artifact counts differ: %d vs %d", len(a.arts), len(b.arts))
	}
	for i := range a.arts {
		if a.arts[i].Name != b.arts[i].Name || !bytes.Equal(a.arts[i].Data, b.arts[i].Data) {
			t.Errorf("artifact %s differs between concurrent labs", a.arts[i].Name)
		}
	}
	if a.md != b.md {
		t.Error("EXPERIMENTS.md differs between concurrent labs")
	}
}

// TestTwoLabsSharedCacheConcurrent runs one experiment in two Labs that
// share a cache: coalescing must keep the results identical and simulate
// each distinct configuration at most once across both sessions.
func TestTwoLabsSharedCacheConcurrent(t *testing.T) {
	cache := sfence.NewMemCache()
	newLab := func() *sfence.Lab {
		return sfence.NewLab(sfence.WithScale(sfence.Quick), sfence.WithCache(cache))
	}
	var wg sync.WaitGroup
	payloads := make([]any, 2)
	errs := make([]error, 2)
	for i := range payloads {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := newLab().Run(context.Background(), "fig12")
			if err != nil {
				errs[i] = err
				return
			}
			payloads[i] = res.Data
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("lab %d: %v", i, err)
		}
	}
	a := payloads[0].([]sfence.SpeedupSeries)
	b := payloads[1].([]sfence.SpeedupSeries)
	if len(a) != len(b) {
		t.Fatalf("series counts differ: %d vs %d", len(a), len(b))
	}
	st := cache.Stats()
	// Figure 12 at quick scale requests 48 simulations; two labs ask for
	// 96, but the shared cache must simulate each distinct configuration
	// exactly once.
	if st.Misses != 48 {
		t.Errorf("shared cache simulated %d configs, want 48", st.Misses)
	}
	if st.Hits != 48 {
		t.Errorf("shared cache served %d hits, want 48", st.Hits)
	}
}

// TestLabRunCancelledProducesNothing cancels a suite run shortly after it
// starts: RunSuite must return the context error (no partial Suite), so
// no artifact can be written — the output directory stays empty.
func TestLabRunCancelledProducesNothing(t *testing.T) {
	lab := sfence.NewLab(sfence.WithScale(sfence.Quick))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	suite, err := lab.RunSuite(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSuite returned %v, want context.Canceled", err)
	}
	if suite != nil {
		t.Fatal("cancelled RunSuite returned a partial suite")
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	// The report flow only writes after a successful run; with no suite
	// there is nothing to write.
	dir := t.TempDir()
	if err == nil {
		t.Fatal("unreachable")
	}
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(entries) != 0 {
		t.Errorf("output directory not empty after cancelled run: %v", entries)
	}
}

// TestLabRunFigDepthCancelMidRun cancels the "fig-depth" experiment —
// the depth 2/3/4 hierarchy sweep, so depth-3 simulations are in flight —
// from its own progress callback, i.e. genuinely mid-run. Run must return
// the context error with no result (hence nothing to write as an
// artifact), and the same Lab must afterwards complete the experiment
// cleanly: cancellation may not poison the session.
func TestLabRunFigDepthCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	dir := t.TempDir()
	lab := sfence.NewLab(
		sfence.WithScale(sfence.Quick),
		sfence.WithProgress(func(exp string, done, total int) {
			// First completed simulation of the sweep: cancel with the
			// rest still pending.
			once.Do(cancel)
		}),
	)
	res, err := lab.Run(ctx, "fig-depth")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled Run returned a partial result")
	}
	// No result means no artifact was encoded or written anywhere.
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(entries) != 0 {
		t.Errorf("artifact directory not empty after cancelled run: %v", entries)
	}
	// The session survives: a fresh context on the same Lab runs the
	// experiment to completion and yields an encodable artifact.
	res2, err := lab.Run(context.Background(), "fig-depth")
	if err != nil {
		t.Fatalf("rerun after cancellation: %v", err)
	}
	if _, err := res2.JSON(); err != nil {
		t.Fatalf("rerun artifact failed to encode: %v", err)
	}
}

// TestLabRunUnknownExperiment asserts the typed error path: an unknown ID
// returns an *ErrUnknownExperiment that names every valid ID.
func TestLabRunUnknownExperiment(t *testing.T) {
	lab := sfence.NewLab(sfence.WithScale(sfence.Quick))
	_, err := lab.Run(context.Background(), "fig99")
	if err == nil {
		t.Fatal("unknown experiment accepted")
	}
	var unknown *sfence.ErrUnknownExperiment
	if !errors.As(err, &unknown) {
		t.Fatalf("error is %T, want *ErrUnknownExperiment", err)
	}
	if unknown.ID != "fig99" {
		t.Errorf("error carries ID %q", unknown.ID)
	}
	if len(unknown.Valid) != len(sfence.ExperimentIDs()) {
		t.Errorf("error lists %d IDs, registry has %d", len(unknown.Valid), len(sfence.ExperimentIDs()))
	}
	for _, want := range []string{"fig12", "table4", "ablation/fsb-entries", "simperf"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error message does not name %q: %v", want, err)
		}
	}
}

// TestExperimentRegistryComplete pins the registry contents: every
// figure, every ablation, the tables, the cost model, and simperf, each
// self-describing (runnable, encodable, renderable).
func TestExperimentRegistryComplete(t *testing.T) {
	specs := sfence.Experiments()
	byID := map[string]sfence.ExperimentSpec{}
	for _, s := range specs {
		if s.Run == nil || s.JSON == nil || s.Render == nil {
			t.Errorf("%s: spec not self-describing", s.ID)
		}
		byID[s.ID] = s
	}
	want := []string{
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig-depth",
		"fig-cores", "fig-heatmap", "fig-inferred",
		"ablation/fsb-entries", "ablation/fss-depth", "ablation/store-buffer",
		"ablation/fifo-store-buffer", "ablation/finer-fences",
		"ablation/nested-scopes", "ablation/fss-recovery",
		"table3", "table4", "hwcost", "stats", "simperf",
	}
	if len(specs) != len(want) {
		t.Errorf("registry has %d specs, want %d", len(specs), len(want))
	}
	for _, id := range want {
		if _, ok := byID[id]; !ok {
			t.Errorf("registry missing %s", id)
		}
	}
	if byID["simperf"].InSuite() {
		t.Error("simperf must be excluded from the deterministic suite")
	}
	if byID["stats"].InSuite() {
		t.Error("stats must be excluded from the deterministic suite (it is a drill-down artifact, not a paper figure)")
	}
	if !byID["fig12"].InSuite() || byID["fig12"].Artifact != "BENCH_FIG12.json" {
		t.Errorf("fig12 spec malformed: %+v", byID["fig12"])
	}
	if !byID["fig-depth"].InSuite() || byID["fig-depth"].Artifact != "BENCH_DEPTH.json" {
		t.Errorf("fig-depth spec malformed: %+v", byID["fig-depth"])
	}
	if !byID["fig-cores"].InSuite() || byID["fig-cores"].Artifact != "BENCH_CORES.json" {
		t.Errorf("fig-cores spec malformed: %+v", byID["fig-cores"])
	}
	if !byID["fig-heatmap"].InSuite() || byID["fig-heatmap"].Artifact != "BENCH_HEATMAP.json" {
		t.Errorf("fig-heatmap spec malformed: %+v", byID["fig-heatmap"])
	}
}

// TestLabRunArtifactEncoding runs a no-simulation experiment end to end
// through Lab.Run and checks the self-describing encoder and renderer.
func TestLabRunArtifactEncoding(t *testing.T) {
	lab := sfence.NewLab(sfence.WithScale(sfence.Quick))
	res, err := lab.Run(context.Background(), "hwcost")
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.JSON()
	if err != nil {
		t.Fatal(err)
	}
	want, err := sfence.HardwareCostJSON(sfence.HardwareCost(sfence.DefaultConfig().Core), sfence.Quick)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want) {
		t.Error("Lab.Run JSON differs from the direct encoder")
	}
	if out := res.Render(); !strings.Contains(out, "bytes") {
		t.Errorf("render missing content: %q", out)
	}
}
