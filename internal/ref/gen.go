package ref

import (
	"fmt"
	"math/rand"

	"sfence/internal/isa"
)

// GenProgram deterministically generates a random, guaranteed-terminating
// single-threaded program for differential testing: structured blocks of
// ALU operations, loads/stores/CAS over a bounded memory region, counted
// loops, forward branches, fences of every scope, and balanced
// fs_start/fs_end brackets. It returns the program, initial registers, and
// initial memory.
//
// Register conventions: R1-R12 data, R13 address scratch, R14/R15 loop
// counters (outer/inner).
func GenProgram(seed int64) (*isa.Program, map[isa.Reg]int64, map[int64]int64) {
	rng := rand.New(rand.NewSource(seed))
	b := isa.NewBuilder()
	b.Entry("main")
	g := &gen{rng: rng, b: b, base: memBase, words: memWords}
	g.block(0)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		// Generation bugs are programming errors, not data-dependent.
		panic(fmt.Sprintf("ref: generated program failed to assemble: %v", err))
	}
	regs := map[isa.Reg]int64{}
	for r := isa.R1; r <= isa.R12; r++ {
		regs[r] = rng.Int63n(1 << 20)
	}
	mem := map[int64]int64{}
	for i := 0; i < 64; i++ {
		mem[memBase+rng.Int63n(memWords)*8] = rng.Int63n(1 << 16)
	}
	return prog, regs, mem
}

const (
	memBase  = 4096
	memWords = 128
)

// gen emits structured random code over a private memory window. The
// window is parameterized so the concurrent generator can expand one gen
// per thread over disjoint per-thread regions.
type gen struct {
	rng    *rand.Rand
	b      *isa.Builder
	labels int
	base   int64 // memory window base address
	words  int64 // window size in words (power of two)
}

func (g *gen) dataReg() isa.Reg { return isa.Reg(1 + g.rng.Intn(12)) }

func (g *gen) label(prefix string) string {
	g.labels++
	return fmt.Sprintf("%s%d", prefix, g.labels)
}

// address computes a bounded aligned address into R13 from a random data
// register.
func (g *gen) address() {
	g.b.AndI(isa.R13, g.dataReg(), g.words-1)
	g.b.ShlI(isa.R13, isa.R13, 3)
	g.b.AddI(isa.R13, isa.R13, g.base)
}

func (g *gen) block(depth int) {
	n := 3 + g.rng.Intn(8)
	for i := 0; i < n; i++ {
		switch pick := g.rng.Intn(14); {
		case pick < 5:
			g.alu()
		case pick < 7:
			g.address()
			g.b.Load(g.dataReg(), isa.R13, 0)
		case pick < 9:
			g.address()
			g.b.Store(isa.R13, 0, g.dataReg())
		case pick == 9:
			g.address()
			g.b.CAS(g.dataReg(), isa.R13, 0, g.dataReg(), g.dataReg())
		case pick == 10:
			g.fence()
		case pick == 11 && depth < 2:
			g.loop(depth)
		case pick == 12 && depth < 3:
			g.ifBlock(depth)
		case pick == 13:
			g.scoped(depth)
		default:
			g.alu()
		}
	}
}

func (g *gen) alu() {
	rd, r1, r2 := g.dataReg(), g.dataReg(), g.dataReg()
	switch g.rng.Intn(8) {
	case 0:
		g.b.Add(rd, r1, r2)
	case 1:
		g.b.Sub(rd, r1, r2)
	case 2:
		g.b.Mul(rd, r1, r2)
	case 3:
		g.b.Xor(rd, r1, r2)
	case 4:
		g.b.AndI(rd, r1, int64(g.rng.Intn(1<<12)))
	case 5:
		g.b.ShrI(rd, r1, int64(1+g.rng.Intn(8)))
	case 6:
		g.b.Slt(rd, r1, r2)
	default:
		g.b.AddI(rd, r1, int64(g.rng.Intn(64))-32)
	}
}

func (g *gen) fence() {
	switch g.rng.Intn(5) {
	case 0:
		g.b.Fence(isa.ScopeGlobal)
	case 1:
		g.b.Fence(isa.ScopeClass)
	case 2:
		g.b.FenceOrdered(isa.ScopeGlobal, isa.OrderSS)
	case 3:
		g.b.FenceOrdered(isa.ScopeClass, isa.OrderLL)
	default:
		// A flagged store followed by a set-scope fence (SetFlagged
		// attaches to the next memory instruction, so it must come
		// after the address computation).
		g.address()
		g.b.SetFlagged()
		g.b.Store(isa.R13, 0, g.dataReg())
		g.b.Fence(isa.ScopeSet)
	}
}

func (g *gen) loop(depth int) {
	counter := isa.R14
	if depth > 0 {
		counter = isa.R15
	}
	iters := int64(1 + g.rng.Intn(4))
	top := g.label("loop")
	g.b.MovI(counter, iters)
	g.b.Label(top)
	g.block(depth + 1)
	g.b.AddI(counter, counter, -1)
	g.b.Bne(counter, isa.R0, top)
}

func (g *gen) ifBlock(depth int) {
	skip := g.label("skip")
	g.b.Beq(g.dataReg(), g.dataReg(), skip)
	g.block(depth + 1)
	g.b.Label(skip)
}

// scoped wraps a sub-block in fs_start/fs_end with a class fence inside.
func (g *gen) scoped(depth int) {
	cid := int64(1 + g.rng.Intn(3))
	g.b.FsStart(cid)
	if depth < 2 {
		g.block(depth + 1)
	} else {
		g.alu()
	}
	g.b.Fence(isa.ScopeClass)
	g.b.FsEnd(cid)
}
