// Command sfence-report runs the full evaluation suite and regenerates
// the repository's paper-vs-measured record in one shot: EXPERIMENTS.md
// plus the machine-readable BENCH_*.json envelopes.
//
// Simulations are memoized in a content-addressed run cache (disabled
// with -no-cache), so experiments sharing baseline configurations are
// simulated once, and a second invocation against a warm cache re-runs
// nothing at all — the final "cache:" line reports exactly how many
// simulations were executed vs. served from the cache.
//
// Examples:
//
//	sfence-report                 # full scale, cache under .sfence-cache
//	sfence-report -quick          # CI-sized workloads
//	sfence-report -out docs -cache /tmp/sfc
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sfence"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced workload sizes")
		out      = flag.String("out", ".", "directory for EXPERIMENTS.md and BENCH_*.json")
		cacheDir = flag.String("cache", ".sfence-cache", "run-cache directory")
		noCache  = flag.Bool("no-cache", false, "disable the run cache")
		progress = flag.Bool("progress", true, "report per-experiment progress on stderr")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	sc := sfence.Full
	if *quick {
		sc = sfence.Quick
	}
	opts := sfence.SuiteOptions{Scale: sc}
	if !*noCache {
		cache, err := sfence.NewRunCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		opts.Cache = cache
	}
	if *progress {
		opts.Progress = func(experiment string, done, total int) {
			fmt.Fprintf(os.Stderr, "\r%-24s %3d/%3d", experiment, done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
		}
	}

	suite, err := sfence.RunSuite(opts)
	if err != nil {
		fail(err)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fail(err)
	}
	paths, err := suite.WriteArtifacts(*out)
	if err != nil {
		fail(err)
	}
	mdPath := filepath.Join(*out, "EXPERIMENTS.md")
	if err := os.WriteFile(mdPath, []byte(suite.ExperimentsMD()), 0o644); err != nil {
		fail(err)
	}

	fmt.Printf("wrote %s and %d JSON artifacts to %s\n", mdPath, len(paths), *out)
	if suite.CacheStats != nil {
		st := suite.CacheStats
		fmt.Printf("cache: %d simulations run, %d hits (%d memory, %d disk)\n",
			st.Misses, st.Hits, st.MemHits, st.DiskHits)
		if st.WriteErrors > 0 {
			fmt.Fprintf(os.Stderr, "warning: %d run records could not be persisted (results kept in memory)\n", st.WriteErrors)
		}
	} else {
		fmt.Println("cache: disabled")
	}
}
