package results

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"sfence/internal/cpu"
	"sfence/internal/exp"
	"sfence/internal/kernels"
	"sfence/internal/machine"
)

// SuiteOptions parameterize a full evaluation run.
type SuiteOptions struct {
	// Scale selects Quick or Full experiment sizing.
	Scale exp.Scale
	// Cache, when non-nil, memoizes every simulation (and is installed as
	// the exp runner for the duration of the run).
	Cache *RunCache
	// Progress, when non-nil, receives per-experiment completion updates
	// from the worker pool.
	Progress exp.ProgressFunc
}

// Suite holds every structured result of the paper's evaluation section
// plus the repository's extra ablations — the full input to both the
// BENCH_*.json artifacts and EXPERIMENTS.md.
type Suite struct {
	Scale        exp.Scale
	Figure12     []exp.SpeedupSeries
	Figure13     []exp.BenchGroup
	Figure14     []exp.BenchGroup
	Figure15     []exp.BenchGroup
	Figure16     []exp.BenchGroup
	Ablations    []AblationSet
	HardwareCost exp.HardwareCostReport
	TableIII     []exp.TableIIIRow
	TableIV      []BenchmarkInfo

	// SimRequests and SimDistinct count the simulations the experiments
	// asked for and the distinct configurations among them. Both are
	// properties of the suite alone — independent of cache presence or
	// warmth — so EXPERIMENTS.md can report them and stay diff-clean.
	SimRequests int
	SimDistinct int

	// CacheStats is the cache traffic observed during this run (nil when
	// the suite ran uncached).
	CacheStats *CacheStats
}

// AblationSpec names one ablation sweep: its artifact identity and the
// experiment function producing its rows.
type AblationSpec struct {
	Name  string
	Title string
	Fn    func(exp.Scale) ([]exp.AblationRow, error)
}

// AblationSpecs lists the ablation sweeps in presentation order. It is
// the single registry shared by RunSuite, sfence-report, and
// sfence-bench, so every producer emits identical artifact identities.
func AblationSpecs() []AblationSpec {
	return []AblationSpec{
		{"fsb-entries", "FSB entry count", exp.AblationFSBEntries},
		{"fss-depth", "FSS depth", exp.AblationFSSDepth},
		{"store-buffer", "Store buffer size", exp.AblationStoreBuffer},
		{"fifo-store-buffer", "FIFO (TSO-like) vs non-FIFO (RMO) store buffer", exp.AblationFIFOStoreBuffer},
		{"finer-fences", "Store-store put fence (Section VII combination); 0=full, 1=SS", exp.AblationFinerFences},
		{"nested-scopes", "Nested-scope pressure (FSB sharing / FSS overflow)", exp.AblationNestedScopes},
		{"fss-recovery", "FSS recovery: snapshot (0) vs paper shadow (1)", exp.AblationRecovery},
	}
}

// RunSuite executes every experiment at the given scale. Deltas of the
// cache counters across the run are recorded in the returned suite.
func RunSuite(opts SuiteOptions) (*Suite, error) {
	// Count requested simulations and distinct configurations on the way
	// through, so the suite knows its own shape regardless of how many
	// requests the cache absorbed.
	var mu sync.Mutex
	requests := 0
	seen := map[string]struct{}{}
	var base exp.Runner
	counting := func(bench string, kopts kernels.Options, cfg machine.Config) (kernels.Result, error) {
		mu.Lock()
		requests++
		seen[Key(bench, kopts, cfg)] = struct{}{}
		mu.Unlock()
		return base(bench, kopts, cfg)
	}
	prevRunner := exp.SetRunner(counting)
	defer exp.SetRunner(prevRunner)
	var before CacheStats
	switch {
	case opts.Cache != nil:
		before = opts.Cache.Stats()
		base = opts.Cache.Run
	case prevRunner != nil:
		// Respect a runner the caller installed (e.g. cache.Install()).
		base = prevRunner
	default:
		base = exp.DirectRun
	}
	if opts.Progress != nil {
		prev := exp.SetProgress(opts.Progress)
		defer exp.SetProgress(prev)
	}

	s := &Suite{
		Scale:        opts.Scale,
		HardwareCost: exp.HardwareCost(cpu.DefaultConfig()),
		TableIII:     exp.TableIII(machine.DefaultConfig()),
		TableIV:      TableIVInfos(),
	}
	var err error
	if s.Figure12, err = exp.Figure12(opts.Scale); err != nil {
		return nil, fmt.Errorf("results: figure 12: %w", err)
	}
	if s.Figure13, err = exp.Figure13(opts.Scale); err != nil {
		return nil, fmt.Errorf("results: figure 13: %w", err)
	}
	if s.Figure14, err = exp.Figure14(opts.Scale); err != nil {
		return nil, fmt.Errorf("results: figure 14: %w", err)
	}
	if s.Figure15, err = exp.Figure15(opts.Scale); err != nil {
		return nil, fmt.Errorf("results: figure 15: %w", err)
	}
	if s.Figure16, err = exp.Figure16(opts.Scale); err != nil {
		return nil, fmt.Errorf("results: figure 16: %w", err)
	}
	for _, spec := range AblationSpecs() {
		rows, err := spec.Fn(opts.Scale)
		if err != nil {
			return nil, fmt.Errorf("results: ablation %s: %w", spec.Name, err)
		}
		s.Ablations = append(s.Ablations, AblationSet{Name: spec.Name, Title: spec.Title, Rows: rows})
	}
	s.SimRequests = requests
	s.SimDistinct = len(seen)
	if opts.Cache != nil {
		after := opts.Cache.Stats()
		s.CacheStats = &CacheStats{
			Hits:        after.Hits - before.Hits,
			MemHits:     after.MemHits - before.MemHits,
			DiskHits:    after.DiskHits - before.DiskHits,
			Misses:      after.Misses - before.Misses,
			WriteErrors: after.WriteErrors - before.WriteErrors,
		}
	}
	return s, nil
}

// Artifact is one named JSON results file.
type Artifact struct {
	Name string
	Data []byte
}

// Artifacts renders the suite's BENCH_*.json file set from the stored
// results.
func (s *Suite) Artifacts() ([]Artifact, error) {
	type gen struct {
		name string
		fn   func() ([]byte, error)
	}
	gens := []gen{
		{"BENCH_FIG12.json", func() ([]byte, error) { return Figure12JSON(s.Figure12, s.Scale) }},
		{"BENCH_FIG13.json", func() ([]byte, error) { return GroupsJSON(KindFigure13, s.Figure13, s.Scale) }},
		{"BENCH_FIG14.json", func() ([]byte, error) { return GroupsJSON(KindFigure14, s.Figure14, s.Scale) }},
		{"BENCH_FIG15.json", func() ([]byte, error) { return GroupsJSON(KindFigure15, s.Figure15, s.Scale) }},
		{"BENCH_FIG16.json", func() ([]byte, error) { return GroupsJSON(KindFigure16, s.Figure16, s.Scale) }},
		{"BENCH_ABLATIONS.json", func() ([]byte, error) { return AblationsJSON(s.Ablations, s.Scale) }},
		{"BENCH_TABLE3.json", func() ([]byte, error) {
			return Marshal(NewEnvelope(KindTableIII, kindTitles[KindTableIII], s.Scale, s.TableIII))
		}},
		{"BENCH_TABLE4.json", func() ([]byte, error) {
			return Marshal(NewEnvelope(KindTableIV, kindTitles[KindTableIV], s.Scale, s.TableIV))
		}},
		{"BENCH_HWCOST.json", func() ([]byte, error) { return HardwareCostJSON(s.HardwareCost, s.Scale) }},
	}
	out := make([]Artifact, 0, len(gens))
	for _, g := range gens {
		data, err := g.fn()
		if err != nil {
			return nil, fmt.Errorf("results: %s: %w", g.name, err)
		}
		out = append(out, Artifact{Name: g.name, Data: data})
	}
	return out, nil
}

// WriteArtifacts writes the BENCH_*.json set into dir and returns the
// file paths written.
func (s *Suite) WriteArtifacts(dir string) ([]string, error) {
	arts, err := s.Artifacts()
	if err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(arts))
	for _, a := range arts {
		p := filepath.Join(dir, a.Name)
		if err := os.WriteFile(p, a.Data, 0o644); err != nil {
			return nil, fmt.Errorf("results: write %s: %w", p, err)
		}
		paths = append(paths, p)
	}
	return paths, nil
}
