package kernels

import (
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
)

func init() {
	register(Info{
		Name:      "fence-drain",
		ScopeType: "set",
		Group:     "micro",
		Description: "Fence-drain microbenchmark (the paper's Fig. 10 pattern): every iteration " +
			"writes a fresh cold line out of scope, dirties an in-scope flag, and fences. " +
			"Traditional fences idle the pipeline for the full memory round-trip; set-scoped " +
			"fences wait only for the warm flag (not part of the paper's Table IV)",
		Hidden: true,
		Build:  buildFenceDrain,
	})
}

// buildFenceDrain assembles the fence-heavy, miss-heavy microbenchmark
// used by BenchmarkStepThroughput and the simulator-performance artifact:
// per iteration, a private store to a never-before-touched cache line (an
// L2 miss that drains from the store buffer at full memory latency), an
// in-scope flag store, a fence, and an in-scope flag load. Under
// Traditional fences the core spends almost the entire iteration stalled
// at the fence with an empty pipeline — the worst case for a per-cycle
// simulator loop and the best case for the event-driven clock — while the
// Scoped variant (set scope over the flag) barely stalls at all, exactly
// the contrast of the paper's Figure 10.
//
// Threads (default 2) run fully privately: disjoint cold regions and
// per-thread flags on separate lines, so the measurement is free of
// coherence noise. Ops bounds the iteration count (and the region size).
func buildFenceDrain(opts Options) (*Kernel, error) {
	opts = opts.withDefaults(2, 200, 0)
	if opts.Threads < 1 || opts.Threads > 8 {
		return nil, fmt.Errorf("fence-drain: thread count %d out of range [1,8]", opts.Threads)
	}
	s := newScopeCtx(opts, isa.ScopeSet)
	if s.mode == Scoped && s.kind != isa.ScopeSet {
		return nil, fmt.Errorf("fence-drain: only set scope is meaningful (the cold stores are deliberately unscoped)")
	}

	lay := memsys.NewLayout(4096, 48<<20)
	flags := make([]int64, opts.Threads)
	for t := range flags {
		lay.AlignTo(64)
		flags[t] = lay.Word(fmt.Sprintf("flag%d", t))
	}
	regions := make([]int64, opts.Threads)
	for t := range regions {
		lay.AlignTo(64)
		regions[t] = lay.Array(fmt.Sprintf("cold%d", t), int64(opts.Ops)*8)
	}

	const (
		rPtr  = isa.R1
		rFlag = isa.R2
		rIter = isa.R3
		rVal  = isa.R4
		rTmp  = isa.R5
	)

	b := isa.NewBuilder()
	for t := 0; t < opts.Threads; t++ {
		b.Entry(fmt.Sprintf("t%d", t))
		b.Inline(func(b *isa.Builder) {
			b.MovI(rPtr, regions[t]-64)
			b.MovI(rFlag, flags[t])
			b.MovI(rIter, int64(opts.Ops))
			b.MovI(rVal, 0)
			b.Label("loop")
			b.AddI(rPtr, rPtr, 64) // fresh cache line every iteration
			b.AddI(rVal, rVal, 1)
			b.Store(rPtr, 0, rVal) // cold, out of every fence scope
			s.shared(b)
			b.Store(rFlag, 0, rVal) // warm, in scope
			s.fence(b)
			s.shared(b)
			b.Load(rTmp, rFlag, 0)
			b.AddI(rIter, rIter, -1)
			b.Bne(rIter, isa.R0, "loop")
			b.Halt()
		})
	}
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	threads := make([]machine.Thread, opts.Threads)
	for t := range threads {
		threads[t] = machine.Thread{Entry: fmt.Sprintf("t%d", t)}
	}
	ops := opts.Ops
	nthreads := opts.Threads
	return &Kernel{
		Name:    "fence-drain",
		Program: prog,
		Regions: regionsFor(lay, func(name string) (scopecheck.Sharing, int) {
			if t, ok := ownedSuffix(name, "flag"); ok {
				return scopecheck.Private, t
			}
			if t, ok := ownedSuffix(name, "cold"); ok {
				return scopecheck.Private, t
			}
			return scopecheck.SharedRW, -1
		}),
		Threads: threads,
		Verify: func(img *memsys.Image) error {
			for t := 0; t < nthreads; t++ {
				if got := img.Load(flags[t]); got != int64(ops) {
					return fmt.Errorf("fence-drain: thread %d flag = %d, want %d", t, got, ops)
				}
				// Every cold line must hold its iteration index: the
				// store buffer drained each private store exactly once.
				for i := 0; i < ops; i++ {
					if got := img.Load(regions[t] + int64(i)*64); got != int64(i)+1 {
						return fmt.Errorf("fence-drain: thread %d word %d = %d, want %d", t, i, got, i+1)
					}
				}
			}
			return nil
		},
	}, nil
}
