package litmus

import (
	"testing"

	"sfence/internal/isa"
	"sfence/internal/scopecheck"
)

// Every under-scoped mutant must be caught by BOTH oracles: the static
// analyzer flags an Error, and the machine actually exhibits the relaxed
// SB outcome the weakened fence no longer forbids. Together with the
// clean verification of every correctly annotated program (litmus
// families, kernels, fuzz corpus), this pins the analyzer's precision
// from both sides.
func TestUnderScopedMutantsFlaggedStatically(t *testing.T) {
	for _, lt := range append(UnderScopedMutants(), StaticOnlyMutants()...) {
		sc := lt.Scenario()
		rep, err := scopecheck.Verify(&sc)
		if err != nil {
			t.Fatalf("%s: %v", lt.Name, err)
		}
		if !rep.HasErrors() {
			t.Errorf("%s: static verification found no Error; report:\n%s", lt.Name, rep)
		}
	}
}

func TestUnderScopedMutantsViolateDynamically(t *testing.T) {
	for _, lt := range UnderScopedMutants() {
		o := runTest(t, lt, DefaultMachineConfig())
		if !(o.R[0] == 0 && o.R[1] == 0) {
			t.Errorf("%s: relaxed SB outcome not observed (got %v) — the weakened fence still orders the stores, so this mutant is not a faithful negative control", lt.Name, o)
		}
	}
}

// The correctly annotated SB variants the mutants were derived from must
// stay clean — the analyzer separates a sound annotation from its
// one-mutation-away neighbours.
func TestMutantBaselinesVerifyClean(t *testing.T) {
	for _, lt := range []*Test{
		StoreBuffering(true, isa.ScopeSet),
		ClassScopedSB(),
	} {
		sc := lt.Scenario()
		rep, err := scopecheck.Verify(&sc)
		if err != nil {
			t.Fatalf("%s: %v", lt.Name, err)
		}
		if rep.HasErrors() {
			t.Errorf("%s: correct annotations flagged:\n%s", lt.Name, rep)
		}
	}
}
