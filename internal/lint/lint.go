// Package lint is the repository's own vet: a small, stdlib-only
// analyzer framework (go/parser + go/ast, no external dependencies) plus
// the repo-native analyzers that used to live in CI as grep/sed gates.
// cmd/sfence-vet drives it; the analyzers are exported individually so
// tests can run them against synthetic packages.
//
// The framework is deliberately syntactic: analyzers see parsed files,
// not type information, so a run needs no build cache and no network —
// it parses the tree in milliseconds and works in a bare container. Each
// analyzer's rule is chosen to be decidable at that level (identifier
// bans, struct-field shape, package documentation).
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic at a source position.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Msg, f.Analyzer)
}

// Package is one parsed directory of Go files.
type Package struct {
	// Dir is the root-relative directory ("internal/cpu", "." for the
	// module root).
	Dir string
	// Name is the primary (non _test) package name.
	Name string
	Fset *token.FileSet
	// Files maps root-relative file names to their parse trees, comments
	// included.
	Files map[string]*ast.File
}

// Analyzer is one check over a parsed package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Package) []Finding
}

// Load parses every Go package under root (testdata, hidden, and
// vendored directories skipped), comments included, test files included.
// The returned packages are sorted by directory.
func Load(root string) ([]*Package, error) {
	fset := token.NewFileSet()
	byDir := map[string]*Package{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lint: %s: %w", path, err)
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			rel = path
		}
		dir := filepath.Dir(rel)
		p := byDir[dir]
		if p == nil {
			p = &Package{Dir: dir, Fset: fset, Files: map[string]*ast.File{}}
			byDir[dir] = p
		}
		p.Files[rel] = file
		if pkg := file.Name.Name; !strings.HasSuffix(pkg, "_test") && (p.Name == "" || !strings.HasSuffix(p.Name, "_test")) {
			p.Name = pkg
		} else if p.Name == "" {
			p.Name = pkg
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(byDir))
	for _, p := range byDir {
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Dir < pkgs[j].Dir })
	return pkgs, nil
}

// Run applies every analyzer to every package and returns the combined
// findings in (file, line) order.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			out = append(out, a.Run(p)...)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		return out[i].Pos.Offset < out[j].Pos.Offset
	})
	return out
}

// sortedFileNames returns p's file names in deterministic order.
func sortedFileNames(p *Package) []string {
	names := make([]string, 0, len(p.Files))
	for n := range p.Files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
