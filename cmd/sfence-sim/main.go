// Command sfence-sim runs a single benchmark on the simulated machine and
// prints its result and statistics.
//
// Examples:
//
//	sfence-sim -bench wsq -mode scoped -workload 3
//	sfence-sim -bench pst -mode traditional -ops 400 -threads 8
//	sfence-sim -bench barnes -mode scoped -spec -memlat 500
//	sfence-sim -bench pst -timeout 2s   # time-box the simulation
//	sfence-sim -bench wsq -stats        # full hierarchical stats snapshot
//	sfence-sim -bench wsq -stats-json   # the same snapshot as JSON
//	sfence-sim -gen 149                 # replay fuzz scenario 149 differentially
//	sfence-sim -gen 149 -gen-dump set   # print its set-scoped disassembly
//	sfence-sim -bench wsq -mode inferred  # run with statically inferred scopes
//	sfence-sim -scopecheck              # static scope gate: kernels, litmus, corpus
//	sfence-sim -infer harris            # per-pc scope-inference drill-down
//	sfence-sim -list
//
// The run is cancellable: Ctrl-C (or the -timeout deadline) stops the
// simulation mid-cycle-loop with a clean context error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"

	"sfence"
)

func main() {
	var (
		bench     = flag.String("bench", "wsq", "benchmark name (see -list)")
		mode      = flag.String("mode", "scoped", "fence mode: traditional | scoped | inferred")
		scope     = flag.String("scope", "", "override scope for scoped mode: class | set")
		threads   = flag.Int("threads", 0, "thread count (0 = benchmark default)")
		cores     = flag.Int("cores", 0, "machine core count (0 = Table III default, grown to fit -threads)")
		ops       = flag.Int("ops", 0, "operation count (0 = benchmark default)")
		workload  = flag.Int("workload", 0, "workload units between operations")
		seed      = flag.Int64("seed", 1, "deterministic input seed")
		spec      = flag.Bool("spec", false, "enable in-window speculation (T+/S+)")
		memlat    = flag.Int("memlat", 0, "memory latency override in cycles")
		depth     = flag.Int("depth", 0, "memory-hierarchy depth (2-4; 0 = the 2-level Table III default)")
		robsize   = flag.Int("rob", 0, "ROB size override")
		fifo      = flag.Bool("fifosb", false, "FIFO (TSO-like) store buffer")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		traceCyc  = flag.Int64("trace", 0, "write a pipeline trace of the first N cycles to stderr")
		profile   = flag.Bool("profile", false, "print the per-fence stall profile")
		stats     = flag.Bool("stats", false, "print the full hierarchical stats snapshot (every registered counter)")
		statsJSON = flag.Bool("stats-json", false, "emit the stats snapshot as JSON on stdout (implies quiet summary)")
		timeout   = flag.Duration("timeout", 0, "abort the simulation after this wall-clock duration (0 = no limit)")
		workers   = flag.Int("workers", 0, "machine worker threads for the epoch-barriered parallel runner (0 = GOMAXPROCS; 1 = sequential; results are bit-identical either way)")
		genSeed   = flag.Int64("gen", 0, "replay the generated fuzz scenario with this seed through the full differential check (ignores -bench)")
		genDump   = flag.String("gen-dump", "", "with -gen: print the named fence variant's disassembly (traditional | class | set) instead of checking")
		scopeGate = flag.Bool("scopecheck", false, "statically verify fence scopes: all kernels, all litmus families, and the committed fuzz corpus (ignores -bench)")
		corpus    = flag.String("corpus", "internal/ref/testdata/fuzz/FuzzConcDifferential", "with -scopecheck: directory of committed fuzz seeds to verify")
		infer     = flag.String("infer", "", "infer minimal fence scopes for this benchmark's unannotated build and print the report (ignores -bench)")
	)
	flag.Parse()

	if *list {
		fmt.Print(sfence.RenderTableIV())
		return
	}
	if *scopeGate {
		runScopeGate(*corpus)
		return
	}
	if *infer != "" {
		runInfer(*infer)
		return
	}

	genSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "gen" {
			genSet = true
		}
	})
	if genSet {
		runGenerated(*genSeed, *genDump, *depth)
		return
	}

	opts := sfence.BenchmarkOptions{
		Threads: *threads, Ops: *ops, Workload: *workload, Seed: *seed,
	}
	switch *mode {
	case "traditional":
		opts.Mode = sfence.Traditional
	case "scoped":
		opts.Mode = sfence.Scoped
	case "inferred":
		opts.Mode = sfence.Inferred
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	switch *scope {
	case "":
	case "class":
		opts.Scope = sfence.ForceClass
	case "set":
		opts.Scope = sfence.ForceSet
	default:
		fmt.Fprintf(os.Stderr, "unknown scope %q\n", *scope)
		os.Exit(2)
	}

	cfg := sfence.DefaultConfig()
	if *cores > 0 {
		cfg.Cores = *cores
	} else if *threads > cfg.Cores {
		cfg.Cores = *threads
	}
	cfg.Core.InWindowSpec = *spec
	cfg.Core.FIFOStoreBuffer = *fifo
	if *depth > 0 {
		if *depth < 2 || *depth > 4 {
			fmt.Fprintf(os.Stderr, "depth %d out of range [2,4]\n", *depth)
			os.Exit(2)
		}
		cfg.Mem = sfence.DepthMemConfig(*depth)
	}
	if *memlat > 0 {
		cfg.Mem.MemLatency = *memlat
	}
	if *robsize > 0 {
		cfg.Core.ROBSize = *robsize
	}
	if *workers == 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	cfg.Parallel.Workers = *workers

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var res sfence.BenchmarkResult
	var err error
	if *traceCyc > 0 {
		res, err = sfence.RunBenchmarkTraced(ctx, *bench, opts, cfg, sfence.NewTextTracer(os.Stderr, *traceCyc))
	} else {
		res, err = sfence.RunBenchmarkContext(ctx, *bench, opts, cfg)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *statsJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Snapshot); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	fmt.Printf("benchmark:          %s (%s fences)\n", *bench, *mode)
	fmt.Printf("cycles:             %d\n", res.Cycles)
	fmt.Printf("committed insts:    %d\n", res.Stats.Committed)
	fmt.Printf("committed fences:   %d\n", res.Stats.CommittedFences)
	fmt.Printf("fence stall cycles: %d (%.1f%% of core time)\n", res.FenceStall, 100*res.FenceStallFraction())
	fmt.Printf("mispredictions:     %d\n", res.Stats.Mispredicts)
	// One miss line per configured cache level (the last level's misses
	// are the memory fetches), read from the stats snapshot.
	for k := 1; ; k++ {
		smp, ok := res.Snapshot.Lookup(fmt.Sprintf("machine.mem.l%d_misses", k))
		if !ok {
			break
		}
		fmt.Printf("%-20s%d\n", fmt.Sprintf("L%d misses:", k), smp.Value)
	}
	fmt.Println("verification:       PASSED")
	if *profile {
		fmt.Println("\nFence profile (stalls by static fence site):")
		fmt.Printf("  %-6s %-20s %10s %12s %12s\n", "pc", "fence", "execs", "stall-cyc", "idle-cyc")
		for _, s := range res.Profile {
			fmt.Printf("  %-6d %-20s %10d %12d %12d\n", s.PC, s.Scope, s.Executions, s.StallCycles, s.IdleCycles)
		}
	}
	if *stats {
		fmt.Println("\nStats snapshot (every registered stat, schema", res.Snapshot.Schema, "):")
		for _, s := range res.Snapshot.Samples {
			switch s.Kind {
			case "formula":
				fmt.Printf("  %-42s %14.4f  %s\n", s.Name, s.Float, s.Desc)
			default:
				fmt.Printf("  %-42s %14d  %s\n", s.Name, s.Value, s.Desc)
			}
		}
	}
}

// corpusSeeds extracts the int64 seeds from a committed go-fuzz corpus
// directory ("go test fuzz v1" files with one int64 argument).
func corpusSeeds(dir string) ([]int64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seeds []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			var s int64
			if _, err := fmt.Sscanf(strings.TrimSpace(line), "int64(%d)", &s); err == nil {
				seeds = append(seeds, s)
			}
		}
	}
	return seeds, nil
}

// runScopeGate statically verifies every program the repository ships —
// the CI scope gate behind -scopecheck.
func runScopeGate(corpusDir string) {
	seeds, err := corpusSeeds(corpusDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reading corpus %s: %v\n", corpusDir, err)
		os.Exit(2)
	}
	entries, ok := sfence.ScopeGate(seeds)
	fmt.Printf("%-32s %7s %9s %6s  %s\n", "target", "errors", "warnings", "notes", "verdict")
	for _, e := range entries {
		verdict := "ok"
		if !e.OK {
			verdict = "FAIL"
		}
		fmt.Printf("%-32s %7d %9d %6d  %s\n", e.Target, e.Errors, e.Warnings, e.Notes, verdict)
		if !e.OK && e.Detail != "" {
			fmt.Println(e.Detail)
		}
	}
	if !ok {
		fmt.Println("scope gate:         FAILED")
		os.Exit(1)
	}
	fmt.Printf("scope gate:         PASSED (%d targets, %d corpus seeds)\n", len(entries), len(seeds))
}

// runInfer infers minimal scopes for one benchmark's unannotated build
// and prints what the analysis decided.
func runInfer(bench string) {
	sc, err := sfence.BenchmarkScenario(bench, sfence.BenchmarkOptions{Mode: sfence.Traditional})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	prog, info, err := sfence.InferScopes(&sc)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("benchmark:          %s (unannotated build)\n", bench)
	fmt.Printf("fences rewritten:   %d (all to set scope)\n", info.Fences)
	fmt.Printf("accesses flagged:   %d\n", len(info.Flagged))
	for _, pc := range info.Flagged {
		fmt.Printf("  pc %4d: %v\n", pc, prog.Code[pc])
	}
	inferred := sfence.ScopeScenario{Name: sc.Name, Prog: prog, Threads: sc.Threads, Regions: sc.Regions}
	rep, err := sfence.VerifyScopes(&inferred)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if rep.HasErrors() {
		fmt.Println(rep)
		fmt.Println("inferred scopes:    FAILED VERIFICATION")
		os.Exit(1)
	}
	fmt.Println("inferred scopes:    verify clean")
}

// runGenerated replays one generated fuzz scenario standalone: either
// dumping a variant's disassembly or running the full differential check
// (SC oracle vs machine, three fence variants, naive vs event-driven
// clocks, the requested hierarchy depths). This is the bridge from a
// fuzzer-found seed to a debuggable standalone reproduction.
func runGenerated(seed int64, dump string, depth int) {
	if dump != "" {
		asm, threads, err := sfence.GeneratedScenario(seed, dump)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("# generated scenario seed=%d variant=%s threads=%d\n", seed, dump, threads)
		fmt.Print(asm)
		return
	}
	var depths []int
	if depth > 0 {
		depths = []int{depth}
	}
	rep, err := sfence.CheckGenerated(seed, depths)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("scenario seed:      %d\n", rep.Seed)
	fmt.Printf("threads:            %d\n", rep.Threads)
	fmt.Printf("instructions:       traditional=%d class=%d set=%d\n", rep.Insts[0], rep.Insts[1], rep.Insts[2])
	fmt.Printf("oracle steps:       %d\n", rep.OracleSteps)
	fmt.Printf("%-14s %6s %10s %12s %14s\n", "variant", "depth", "cycles", "slow-ticks", "skipped-cycles")
	for _, r := range rep.Runs {
		fmt.Printf("%-14s %6d %10d %12d %14d\n", r.Variant, r.Depth, r.Cycles, r.SlowTicks, r.SkippedCycles)
	}
	fmt.Println("differential:       PASSED")
}
