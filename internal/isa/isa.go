// Package isa defines the mini instruction set executed by the simulated
// cores, together with an assembler (Builder) for constructing programs.
//
// The ISA is a small RISC-like register machine:
//
//   - 64 general-purpose 64-bit integer registers; R0 is hardwired to zero.
//   - Word-granular memory: every load/store moves one 64-bit word and the
//     byte address must be 8-byte aligned.
//   - Explicit fence instructions carrying a scope (global, class, or set)
//     as proposed by the Fence Scoping paper (Lin et al., SC '14).
//   - fs_start/fs_end scope-bracketing instructions, the paper's compiler
//     support for class scope.
//   - An atomic compare-and-swap that does not imply a fence (RMO).
//
// There are no call/ret instructions: the Builder inlines function bodies
// (see Builder.Inline), which both sidesteps return-address speculation in
// the core model and matches how the small, hot lock-free methods the paper
// studies are compiled in practice. fs_start/fs_end still bracket each
// inlined body, so nested class scopes arise naturally.
package isa

import "fmt"

// Reg names one of the 64 architectural registers. R0 always reads zero and
// writes to it are discarded.
type Reg uint8

// NumRegs is the size of the architectural register file.
const NumRegs = 64

// Register name constants. R0 is the hardwired zero register.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31
	R32
	R33
	R34
	R35
	R36
	R37
	R38
	R39
	R40
	R41
	R42
	R43
	R44
	R45
	R46
	R47
	R48
	R49
	R50
	R51
	R52
	R53
	R54
	R55
	R56
	R57
	R58
	R59
	R60
	R61
	R62
	R63
)

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode values.
const (
	OpNop Op = iota
	OpHalt

	// ALU operations. Rd = Rs1 <op> Rs2 unless noted.
	OpMovI // Rd = Imm
	OpAdd
	OpAddI // Rd = Rs1 + Imm
	OpSub
	OpMul
	OpDiv // Rd = Rs1 / Rs2; division by zero yields 0
	OpRem // Rd = Rs1 % Rs2; modulo by zero yields 0
	OpAnd
	OpAndI // Rd = Rs1 & Imm
	OpOr
	OpXor
	OpXorI // Rd = Rs1 ^ Imm
	OpShl  // Rd = Rs1 << (Rs2 & 63)
	OpShlI // Rd = Rs1 << (Imm & 63)
	OpShr  // Rd = int64(Rs1) >> (Rs2 & 63) (arithmetic)
	OpShrI
	OpSlt  // Rd = 1 if Rs1 < Rs2 else 0 (signed)
	OpSltI // Rd = 1 if Rs1 < Imm else 0 (signed)
	OpSeq  // Rd = 1 if Rs1 == Rs2 else 0

	// Memory operations. Effective address = Rs1 + Imm (bytes).
	OpLoad  // Rd = mem[Rs1+Imm]
	OpStore // mem[Rs1+Imm] = Rs2
	OpCAS   // atomically: if mem[Rs1+Imm]==Rs2 { mem[...]=Rs3; Rd=1 } else { Rd=0 }

	// Control flow. Target is Imm (an absolute instruction index after
	// assembly; a label during building).
	OpJmp
	OpBeq // if Rs1 == Rs2 goto target
	OpBne
	OpBlt // signed <
	OpBge // signed >=

	// Fences and scope bracketing (the paper's ISA extension).
	OpFence   // scope in Scope field; a global-scope fence is a traditional full fence
	OpFsStart // start of class scope; class id (cid) in Imm
	OpFsEnd   // end of class scope; cid in Imm

	numOps // sentinel
)

// ScopeKind selects which scope an OpFence orders, mirroring the three
// customized fence statements of the paper (Fig. 4).
type ScopeKind uint8

const (
	// ScopeGlobal is a traditional full fence: all prior memory accesses
	// must complete before any later access is issued.
	ScopeGlobal ScopeKind = iota
	// ScopeClass orders only accesses made inside the current class scope
	// (the innermost active fs_start/fs_end bracket, including nested
	// scopes entered from it).
	ScopeClass
	// ScopeSet orders only memory accesses whose instructions carry the
	// SetFlag bit (the compiler-flagged accesses to the fence's variable
	// set).
	ScopeSet
)

func (k ScopeKind) String() string {
	switch k {
	case ScopeGlobal:
		return "global"
	case ScopeClass:
		return "class"
	case ScopeSet:
		return "set"
	}
	return fmt.Sprintf("ScopeKind(%d)", uint8(k))
}

// FenceOrder selects which access pair a fence orders — the combination of
// fence scoping with the "finer fences" of commercial ISAs that Section
// VII of the paper describes as complementary (mfence/sfence, SPARC
// MEMBAR variants).
type FenceOrder uint8

const (
	// OrderFull orders all prior in-scope accesses before all later
	// accesses (the paper's default S-Fence semantics).
	OrderFull FenceOrder = iota
	// OrderSS is a store-store fence: prior in-scope stores must complete
	// before any later store becomes visible; later loads may pass it
	// freely (like SPARC MEMBAR #StoreStore or the storestore fence in
	// the paper's Fig. 2 put()).
	OrderSS
	// OrderLL is a load-load fence: prior in-scope loads must complete
	// before any later access issues; prior stores (and the store
	// buffer) are not waited for (like SPARC MEMBAR #LoadLoad; what the
	// Chase-Lev steal() needs under RMO).
	OrderLL
)

func (o FenceOrder) String() string {
	switch o {
	case OrderFull:
		return "full"
	case OrderSS:
		return "ss"
	case OrderLL:
		return "ll"
	}
	return fmt.Sprintf("FenceOrder(%d)", uint8(o))
}

// Instruction is one decoded instruction. The zero value is a Nop.
type Instruction struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Rs3 Reg // CAS new-value register

	// Imm holds the immediate operand: ALU immediate, load/store byte
	// displacement, branch/jump target (instruction index), or fs_start/
	// fs_end class id.
	Imm int64

	// Scope is the fence scope for OpFence.
	Scope ScopeKind

	// Order is the fence ordering kind for OpFence (full or
	// store-store).
	Order FenceOrder

	// SetFlag marks a load/store/CAS as belonging to the set scope: the
	// ISA-level encoding of the paper's "instructions flagging memory
	// operations" (Table II).
	SetFlag bool
}

// IsMem reports whether the instruction accesses memory.
func (in *Instruction) IsMem() bool {
	return in.Op == OpLoad || in.Op == OpStore || in.Op == OpCAS
}

// IsBranch reports whether the instruction is a conditional branch.
func (in *Instruction) IsBranch() bool {
	switch in.Op {
	case OpBeq, OpBne, OpBlt, OpBge:
		return true
	}
	return false
}

// Writes reports whether the instruction writes register Rd.
func (in *Instruction) Writes() bool {
	switch in.Op {
	case OpMovI, OpAdd, OpAddI, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpAndI,
		OpOr, OpXor, OpXorI, OpShl, OpShlI, OpShr, OpShrI, OpSlt, OpSltI,
		OpSeq, OpLoad, OpCAS:
		return in.Rd != R0
	}
	return false
}

var opNames = [numOps]string{
	OpNop: "nop", OpHalt: "halt",
	OpMovI: "movi", OpAdd: "add", OpAddI: "addi", OpSub: "sub",
	OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpAndI: "andi", OpOr: "or", OpXor: "xor", OpXorI: "xori",
	OpShl: "shl", OpShlI: "shli", OpShr: "shr", OpShrI: "shri",
	OpSlt: "slt", OpSltI: "slti", OpSeq: "seq",
	OpLoad: "load", OpStore: "store", OpCAS: "cas",
	OpJmp: "jmp", OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpFence: "fence", OpFsStart: "fs_start", OpFsEnd: "fs_end",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// String renders the instruction in a compact assembly-like syntax.
func (in Instruction) String() string {
	flag := ""
	if in.SetFlag {
		flag = ".set"
	}
	switch in.Op {
	case OpNop, OpHalt:
		return in.Op.String()
	case OpMovI:
		return fmt.Sprintf("movi r%d, %d", in.Rd, in.Imm)
	case OpAddI, OpAndI, OpXorI, OpShlI, OpShrI, OpSltI:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Rs1, in.Imm)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSlt, OpSeq:
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Rs1, in.Rs2)
	case OpLoad:
		return fmt.Sprintf("load%s r%d, [r%d+%d]", flag, in.Rd, in.Rs1, in.Imm)
	case OpStore:
		return fmt.Sprintf("store%s [r%d+%d], r%d", flag, in.Rs1, in.Imm, in.Rs2)
	case OpCAS:
		return fmt.Sprintf("cas%s r%d, [r%d+%d], r%d, r%d", flag, in.Rd, in.Rs1, in.Imm, in.Rs2, in.Rs3)
	case OpJmp:
		return fmt.Sprintf("jmp %d", in.Imm)
	case OpBeq, OpBne, OpBlt, OpBge:
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rs1, in.Rs2, in.Imm)
	case OpFence:
		if in.Order != OrderFull {
			return fmt.Sprintf("fence.%s.%s", in.Scope, in.Order)
		}
		return fmt.Sprintf("fence.%s", in.Scope)
	case OpFsStart:
		return fmt.Sprintf("fs_start %d", in.Imm)
	case OpFsEnd:
		return fmt.Sprintf("fs_end %d", in.Imm)
	}
	return fmt.Sprintf("op%d", in.Op)
}

// Program is an assembled instruction sequence. Threads may start at
// different entry points within the same program.
type Program struct {
	Code []Instruction

	// Entries maps entry-point names to instruction indices; populated by
	// Builder.Entry.
	Entries map[string]int
}

// Entry returns the instruction index of a named entry point.
func (p *Program) Entry(name string) (int, error) {
	pc, ok := p.Entries[name]
	if !ok {
		return 0, fmt.Errorf("isa: no entry point %q", name)
	}
	return pc, nil
}

// MustEntry is like Entry but panics on unknown names; intended for
// statically-known kernels and tests.
func (p *Program) MustEntry(name string) int {
	pc, err := p.Entry(name)
	if err != nil {
		panic(err)
	}
	return pc
}

// Disassemble renders the whole program with instruction indices, for
// debugging and golden tests.
func (p *Program) Disassemble() string {
	out := make([]byte, 0, len(p.Code)*24)
	rev := map[int]string{}
	for name, pc := range p.Entries {
		if prev, ok := rev[pc]; !ok || name < prev {
			rev[pc] = name
		}
	}
	for i, in := range p.Code {
		if name, ok := rev[i]; ok {
			out = append(out, fmt.Sprintf("%s:\n", name)...)
		}
		out = append(out, fmt.Sprintf("%5d  %s\n", i, in.String())...)
	}
	return string(out)
}
