package machine

import (
	"context"
	"os"
	"sync"
	"sync/atomic"

	"sfence/internal/cpu"
)

// Optimistic-epoch parallel runner.
//
// The sequential loop interleaves all cores cycle by cycle because any
// core might interact with any other at any cycle. In practice the
// interesting workloads spend most cycles in private-L1-resident
// compute, where cores are mutually invisible. The parallel runner
// exploits that: it picks a horizon E, checkpoints every core
// (cpu.EpochState + the core's slice of the hierarchy), and lets worker
// threads step disjoint core subsets independently from T to E under
// the local-only access gate (cpu's epoch support). Two outcomes:
//
//   - No core hit the gate: the epoch is exactly what per-cycle
//     stepping would have produced — every access was a private hit,
//     so no core could observe another — and it commits wholesale.
//   - Any core hit the gate (or faulted): the whole epoch aborts.
//     Every core restores its checkpoint, in-epoch Image writes are
//     undone, and the span re-runs either as an immediate shorter epoch
//     over the provably-local prefix, or on the sequential loop, which
//     performs the cross-core interaction at its exact cycle.
//
// Three kinds of pre-epoch state could breach core isolation and are
// handled up front (see epochHorizon / epochSafe):
//
//   - In-flight writes that already paid their hierarchy access (issued
//     store-buffer entries, executing CAS) complete in-epoch
//     unconditionally; if the directory says the target line may still
//     be shared — or no longer knows it — the horizon is clamped below
//     the completion cycle, so the drain lands outside the epoch.
//   - Loads that speculatively executed past a fence may need a replay
//     triggered by a remote store at a precise cycle; any in flight
//     veto the attempt entirely (they are transient).
//   - Tracers and observers receive interleaved per-event callbacks;
//     machines carrying either run sequentially, as before.
//
// Determinism: an epoch either commits bit-identically to sequential
// stepping or vanishes without trace, so the worker count — and the
// scheduling of worker threads — cannot leak into results. Only the
// machine.clock.* accounting (epochs, fails, committed cycles) tells
// the modes apart.
const (
	// epochMin is the smallest horizon worth a checkpoint; hazard-clamped
	// attempts below it burst sequentially instead.
	epochMin = 256
	// epochStart/epochMax bound the adaptive epoch length: grown gently
	// after every committed epoch, re-learned from observed block points
	// on failures.
	epochStart = 4096
	epochMax   = 1 << 16
	// failSlackMin/failSlackMax bound the doubling sequential backoff
	// after failed or declined attempts.
	failSlackMin = 256
	failSlackMax = 1 << 20
	// epochSlice is the time-slice granularity at which workers advance
	// their cores (see the cadence note in runParallel).
	epochSlice = 512
	// epochMarkInterval is how many loop iterations a core runs between
	// polls of the shared early-abort watermark within a slice.
	epochMarkInterval = 64
)

var epochDebug = os.Getenv("SFENCE_EPOCH_DEBUG") != ""

// epochResult is one core's outcome for one epoch attempt.
type epochResult struct {
	wasDone   bool  // already finished when the epoch began (not checkpointed)
	blocked   bool  // hit the local-only gate or faulted: abort everything
	blockedAt int64 // cycle of the gated tick (exact for the earliest across cores)
	doneAt    int64 // cycle whose tick finished the core; -1 if it reached the horizon
}

// coreCursor is one core's resumable position within an epoch attempt:
// workers step cores slice by slice, so a core's in-epoch loop state
// lives here between slices.
type coreCursor struct {
	cur      int64 // next cycle to execute (the core's own clock trails by one)
	begun    bool  // EpochBegin ran: the core must be committed or aborted
	finished bool  // res is final; no further slices
	res      epochResult
}

// runParallel drives Run when cfg.Parallel.Workers > 1: sequential legs
// glued by optimistic epochs. Entry conditions match runSeq's (no
// fault, not done, ctx live).
func (m *Machine) runParallel(ctx context.Context, limit int64) (int64, error) {
	workers := m.cfg.Parallel.Workers
	if workers > len(m.cores) {
		workers = len(m.cores)
	}
	if workers < 2 || m.traced() || m.observed() {
		_, err := m.runSeq(ctx, limit, limit)
		return m.cycle, err
	}
	states := make([]cpu.EpochState, len(m.cores))
	cursors := make([]coreCursor, len(m.cores))
	epochLen := int64(epochStart)
	failSlack := int64(failSlackMin)
	burstUntil := m.cycle
	// knownBlock is a discovered interaction cycle: when an aborted
	// epoch's purely-local prefix is retried and committed, its horizon
	// is exactly the earliest interaction, so attempting another epoch
	// there would abort immediately — burst sequentially instead.
	knownBlock := int64(-1)
	done := ctx.Done()
	for {
		fin, err := m.runSeq(ctx, limit, burstUntil)
		if fin || err != nil {
			return m.cycle, err
		}
		select {
		case <-done:
			return m.cycle, ctx.Err()
		default:
		}
		T := m.cycle
		if !m.epochSafe() {
			// Speculative loads in flight: transient; burst past them.
			burstUntil = T + failSlack
			failSlack = min(failSlack*2, failSlackMax)
			continue
		}
		E := m.epochHorizon(T, min(T+epochLen, limit))
		if E-T < epochMin {
			// A pending drain on a possibly-shared line lands too soon for
			// an epoch to pay off; step sequentially through it.
			burstUntil = max(E+1, T+failSlack)
			failSlack = min(failSlack*2, failSlackMax)
			continue
		}
		m.clock.Epochs++
		// abortMark is the early-stop watermark: the minimum cycle at
		// which any core has blocked so far. Once a core blocks, the
		// epoch is doomed; other cores stop as soon as they notice they
		// are past the watermark instead of running to the horizon. A
		// core that stops early has provably not blocked before its stop
		// cycle (>= the watermark), so the minimum over reported
		// blockedAt values stays the exact earliest interaction.
		//
		// Workers advance their cores in epochSlice-sized time slices
		// rather than running each core to the horizon: that bounds the
		// work wasted on a doomed epoch to roughly one slice per core —
		// in particular on few-CPU hosts, where a worker goroutine could
		// otherwise finish its whole share before the goroutine holding
		// the earliest blocker ever got scheduled.
		var abortMark atomic.Int64
		abortMark.Store(E)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for lo := T; lo < E; lo += epochSlice {
					if abortMark.Load() <= lo {
						// Every live core this worker owns has advanced to at
						// least lo, at or past the earliest block: stop.
						break
					}
					hi := min(lo+epochSlice, E)
					live := false
					for i := w; i < len(m.cores); i += workers {
						if m.runCoreEpochSlice(i, T, hi, E, &cursors[i], &states[i], &abortMark) {
							live = true
						}
					}
					if !live {
						break
					}
				}
			}(w)
		}
		wg.Wait()

		blockedAt := int64(-1)
		allDone := true
		maxDone := int64(-1)
		for i := range cursors {
			cc := &cursors[i]
			if !cc.begun && !cc.finished {
				// Never started: its worker stopped before the core's first
				// slice, which only happens on a doomed attempt. Nothing to
				// restore, and its (unknown) block point cannot lower the
				// minimum below the watermark that stopped the worker.
				allDone = false
				continue
			}
			r := &cc.res
			if r.wasDone {
				continue
			}
			if r.blocked {
				if blockedAt < 0 || r.blockedAt < blockedAt {
					blockedAt = r.blockedAt
				}
				continue
			}
			if r.doneAt < 0 {
				allDone = false
			} else if r.doneAt > maxDone {
				maxDone = r.doneAt
			}
		}
		if blockedAt >= 0 {
			// Abort: restore every checkpointed core and re-run the span.
			// blockedAt is the exact cycle of the earliest cross-core
			// interaction — before it, every core ran purely locally,
			// i.e. exactly its sequential trajectory.
			for i := range m.cores {
				if cursors[i].begun {
					m.cores[i].EpochAbort(&states[i])
				}
				cursors[i] = coreCursor{}
			}
			m.clock.EpochFails++
			if epochDebug {
				println("epoch abort: T=", T, "E=", E, "blockedAt=", blockedAt)
			}
			if gap := blockedAt - T; gap >= 2*epochMin {
				// Long purely-local prefix. Before the earliest blockedAt
				// every core ran purely locally, and per-core epoch
				// stepping is deterministic, so retrying right now with
				// the horizon set exactly to blockedAt is guaranteed to
				// commit (barring a fresh hazard clamp): the prefix is
				// recovered in parallel instead of re-run sequentially.
				// Workloads that interleave long compute phases with
				// periodic synchronization land here once per phase.
				epochLen = gap
				burstUntil = m.cycle // == T: no sequential leg, retry now
				failSlack = failSlackMin
				knownBlock = blockedAt
			} else {
				// Interaction-dense: stretch the sequential leg with a
				// doubling backoff so clustered interactions are crossed
				// in one go. Keep the learned epoch length — the dense
				// cluster says nothing about the next compute phase.
				burstUntil = blockedAt + failSlack
				failSlack = min(failSlack*2, failSlackMax)
			}
			continue
		}
		for i := range m.cores {
			if cursors[i].begun {
				m.cores[i].EpochCommit()
			}
			cursors[i] = coreCursor{}
		}
		if allDone {
			// Sequential stepping would have returned right after the tick
			// that finished the last core.
			m.cycle = maxDone + 1
			m.clock.EpochCycles += m.cycle - T
			return m.cycle, nil
		}
		m.cycle = E
		m.clock.EpochCycles += E - T
		failSlack = failSlackMin
		// Probe gently upward after a commit: an abort throws away the
		// whole attempt, so overshooting a periodic interaction cadence
		// by 2x (doubling) would forfeit every other epoch.
		epochLen = min(epochLen+epochLen/4, epochMax)
		burstUntil = m.cycle
		if E == knownBlock {
			// This commit recovered an aborted epoch's local prefix; its
			// horizon is the exact cycle of the earliest interaction, so
			// cross it sequentially rather than aborting into it.
			burstUntil = m.cycle + failSlackMin
		}
		knownBlock = -1
	}
}

// observed reports whether any core has a counter-only observer
// attached (observer callbacks are not required to be goroutine-safe,
// so observed machines stay sequential).
func (m *Machine) observed() bool {
	for _, c := range m.cores {
		if c.Observed() {
			return true
		}
	}
	return false
}

// epochSafe reports the transient epoch precondition: no load anywhere
// is speculatively past a fence. Such a load's replay depends on
// remote-store deliveries the isolated epoch cores cannot exchange.
func (m *Machine) epochSafe() bool {
	for _, c := range m.cores {
		if c.SpecLoadsInFlight() > 0 {
			return false
		}
	}
	return true
}

// epochHorizon clamps the proposed horizon below the completion cycle
// of every pre-epoch in-flight write whose target line the directory
// says another core may still share (or whose line it no longer
// tracks). Such writes complete in-epoch unconditionally — they paid
// their hierarchy access before the epoch — and a foreign reader of the
// line would race with the Image mutation; excluding the completion
// cycle from the epoch makes the drain happen on the sequential side.
func (m *Machine) epochHorizon(from, proposed int64) int64 {
	e := proposed
	for i, c := range m.cores {
		c.ForEachPendingGlobalWrite(func(addr, at int64) {
			if at < e && m.hier.SharersBesides(i, addr) {
				e = at
			}
		})
	}
	if e < from {
		e = from
	}
	return e
}

// runCoreEpochSlice advances core i within the current epoch attempt
// from its cursor to at most cycle hi (the slice bound; to is the
// epoch horizon), with the local-only gate armed. The first slice
// checkpoints the core. Inside the epoch the core runs its own private
// two-speed loop — slow ticks while active, whole-period spin jumps
// while in a confirmed spin, fast-forwards while quiescent — which by
// the clock-equivalence invariant yields the same state as pure
// ticking. The cursor keeps the sequential loop's phase convention:
// the core's own clock trails the cursor by one. Returns whether the
// core is still live (wants further slices).
func (m *Machine) runCoreEpochSlice(i int, from, hi, to int64, cc *coreCursor, s *cpu.EpochState, abortMark *atomic.Int64) bool {
	if cc.finished {
		return false
	}
	c := m.cores[i]
	if !cc.begun {
		if c.Done() {
			cc.res = epochResult{wasDone: true}
			cc.finished = true
			return false
		}
		c.EpochBegin(s)
		cc.begun = true
		cc.cur = from
	}
	cur := cc.cur
	if cur >= abortMark.Load() {
		// Another core blocked at or before our cursor: the epoch will
		// abort, and this core has provably not blocked up to here, so
		// its remaining span cannot lower the minimum.
		cc.res = epochResult{doneAt: -1}
		cc.finished = true
		return false
	}
	markCheck := epochMarkInterval
	for cur < hi {
		if markCheck--; markCheck <= 0 {
			markCheck = epochMarkInterval
			if cur >= abortMark.Load() {
				cc.res = epochResult{doneAt: -1}
				cc.finished = true
				return false
			}
		}
		// Mirror the sequential loop's structure: tick first, and only
		// consult the fast-path predicates on a core that just reported a
		// quiet tick. (A core that has not been ticked at the current
		// cycle is "inactive" with no scheduled wakeup — jumping on that
		// reading would skip its entire program.)
		c.Tick(cur)
		cur++
		if c.EpochBlocked() || c.Fault() != nil {
			// A fault aborts too: the sequential re-run rediscovers it at
			// its exact cycle, with every other core in its true state.
			// Publish the block cycle so sibling cores stop early.
			for {
				old := abortMark.Load()
				if cur-1 >= old || abortMark.CompareAndSwap(old, cur-1) {
					break
				}
			}
			cc.res = epochResult{blocked: true, blockedAt: cur - 1}
			cc.finished = true
			return false
		}
		if c.Done() {
			cc.res = epochResult{doneAt: cur - 1}
			cc.finished = true
			return false
		}
		if c.SpinActive() {
			// A confirmed spinner is Active (it executes instructions), so
			// this check must come first. Whole spin periods jump in bulk;
			// the sub-period remainder near the slice bound is slow-ticked.
			if p := c.SpinPeriod(); p > 0 {
				if k := (hi - cur) / p; k > 0 {
					c.SpinForward(k * p)
					cur += k * p
				}
			}
			continue
		}
		if c.Active() {
			continue
		}
		if w := c.NextWakeup(); w > cur {
			if w > hi {
				w = hi
			}
			c.FastForward(w - cur)
			cur = w
		}
	}
	cc.cur = cur
	if cur >= to {
		cc.res = epochResult{doneAt: -1}
		cc.finished = true
		return false
	}
	return true
}
