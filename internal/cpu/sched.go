package cpu

// This file holds the event-driven scheduling structures that replace the
// per-cycle full-window scans of completeROB and schedule: a completion
// min-heap and producer->consumer wakeup lists. Both are pure accelerators
// — every shortcut is provably equivalent to the scan it replaces, and the
// differential clock test (naive stepping vs. event-driven Run) plus the
// golden determinism test pin that equivalence down.

// compNode schedules one executing entry's completion.
type compNode struct {
	at  int64  // readyAt cycle
	seq uint64 // ROB sequence number
}

// less orders the completion heap by (readyAt, seq). Entries complete
// exactly at their readyAt cycle (the gate opens no later than the
// earliest readyAt), so popping due nodes in this order visits them in
// ascending seq — identical to the ascending scan it replaces.
func (a compNode) less(b compNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (c *Core) heapPush(n compNode) {
	h := append(c.compHeap, n)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h[i].less(h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	c.compHeap = h
}

func (c *Core) heapPop() compNode {
	h := c.compHeap
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h[l].less(h[s]) {
			s = l
		}
		if r < n && h[r].less(h[s]) {
			s = r
		}
		if s == i {
			break
		}
		h[i], h[s] = h[s], h[i]
		i = s
	}
	c.compHeap = h
	return top
}

// rebuildCompHeap repopulates the completion heap from the surviving
// window after a squash, dropping nodes for squashed entries.
func (c *Core) rebuildCompHeap() {
	c.compHeap = c.compHeap[:0]
	next := NeverWakes
	for seq := c.head; seq < c.tail; seq++ {
		if e := c.slot(seq); e.stage == stExecuting {
			c.heapPush(compNode{at: e.readyAt, seq: seq})
			if e.readyAt < next {
				next = e.readyAt
			}
		}
	}
	c.nextComplete = next
}

// regWake registers the entry in slot `consumer` to be woken when the
// in-flight producer of operand k completes. Producers already done (or
// committed) need no registration: the decode-triggered full scan tries
// the consumer at least once.
func (c *Core) regWake(src int64, consumer uint64, k int) {
	if src < 0 || uint64(src) < c.head {
		return
	}
	p := src & int64(c.robMask)
	if c.entries[p].stage == stDone {
		return
	}
	id := int32(consumer&c.robMask)*3 + int32(k)
	c.wakeNext[id] = c.wakeHead[p]
	c.wakeHead[p] = id
}

// regWakes registers all in-flight operand producers of a freshly decoded
// (or squash-surviving) waiting entry.
func (c *Core) regWakes(e *robEntry, seq uint64) {
	c.regWake(e.src1, seq, 0)
	c.regWake(e.src2, seq, 1)
	c.regWake(e.src3, seq, 2)
}

// fireWakes marks every consumer registered on the completing entry as
// ready for a scheduling retry and empties the list.
func (c *Core) fireWakes(seq uint64) {
	s := seq & c.robMask
	id := c.wakeHead[s]
	if id < 0 {
		return
	}
	c.wakeHead[s] = -1
	for id >= 0 {
		cs := uint64(id) / 3
		c.readyBits[cs>>6] |= 1 << (cs & 63)
		id = c.wakeNext[id]
	}
	c.wakePending = true
}

// wipeWakes clears every wakeup list (used by squash before surviving
// waiting entries re-register, so no registration node can ever sit in
// two lists).
func (c *Core) wipeWakes() {
	for i := range c.wakeHead {
		c.wakeHead[i] = -1
	}
}
