package memsys

import (
	"reflect"
	"testing"
)

// threeLevel returns a tiny, fully controllable 3-level hierarchy config:
// 4-set L1, 8-set private L2, 16-set shared L3 with the directory.
func threeLevel() Config {
	return Config{
		Levels: []CacheConfig{
			{SizeBytes: 1 << 10, Ways: 4, LineBytes: 64, Latency: 2},
			{SizeBytes: 2 << 10, Ways: 4, LineBytes: 64, Latency: 6},
			{SizeBytes: 8 << 10, Ways: 8, LineBytes: 64, Latency: 24, Shared: true},
		},
		MemLatency:         300,
		RemoteDirtyPenalty: 10,
	}
}

func TestDepthConfigShapes(t *testing.T) {
	for depth := 2; depth <= 4; depth++ {
		cfg := DepthConfig(depth)
		if err := cfg.Validate(); err != nil {
			t.Errorf("DepthConfig(%d) invalid: %v", depth, err)
		}
		if cfg.Depth() != depth {
			t.Errorf("DepthConfig(%d) has %d levels", depth, cfg.Depth())
		}
	}
	if !reflect.DeepEqual(DepthConfig(2), DefaultConfig()) {
		t.Error("DepthConfig(2) must be the Table III default exactly")
	}
	defer func() {
		if recover() == nil {
			t.Error("DepthConfig(5) did not panic")
		}
	}()
	DepthConfig(5)
}

func TestValidateRejectsBadShapes(t *testing.T) {
	cases := map[string]Config{
		"one level": {
			Levels:     []CacheConfig{{SizeBytes: 1 << 10, Ways: 4, LineBytes: 64, Latency: 2, Shared: true}},
			MemLatency: 300,
		},
		"shared L1": {
			Levels: []CacheConfig{
				{SizeBytes: 1 << 10, Ways: 4, LineBytes: 64, Latency: 2, Shared: true},
				{SizeBytes: 8 << 10, Ways: 8, LineBytes: 64, Latency: 10, Shared: true},
			},
			MemLatency: 300,
		},
		"private last level": {
			Levels: []CacheConfig{
				{SizeBytes: 1 << 10, Ways: 4, LineBytes: 64, Latency: 2},
				{SizeBytes: 8 << 10, Ways: 8, LineBytes: 64, Latency: 10},
			},
			MemLatency: 300,
		},
		"private outside shared": {
			Levels: []CacheConfig{
				{SizeBytes: 1 << 10, Ways: 4, LineBytes: 64, Latency: 2},
				{SizeBytes: 4 << 10, Ways: 4, LineBytes: 64, Latency: 6, Shared: true},
				{SizeBytes: 8 << 10, Ways: 8, LineBytes: 64, Latency: 10, Shared: true},
				{SizeBytes: 16 << 10, Ways: 8, LineBytes: 64, Latency: 20},
			},
			MemLatency: 300,
		},
	}
	for name, cfg := range cases {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := threeLevel().Validate(); err != nil {
		t.Fatalf("threeLevel config invalid: %v", err)
	}
}

// TestThreeLevelMissRouting walks one line through every latency shape of
// a 3-level hierarchy: memory fetch, L1 hit, private-L2 hit after an L1
// eviction, and shared-L3 hit after a private-L2 eviction.
func TestThreeLevelMissRouting(t *testing.T) {
	cfg := threeLevel()
	h := MustHierarchy(2, cfg)
	l1Sets := int64(cfg.Levels[0].Sets()) // 4
	line := int64(cfg.Levels[0].LineBytes)
	// addr(i) maps every i to L1 set 0; L2 set alternates 0/4; L3 set
	// cycles 0/4/8/12.
	addr := func(i int) int64 { return int64(i) * line * l1Sets }

	coldLat := cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.Levels[2].Latency + cfg.MemLatency
	if got := h.Access(0, addr(0), false); got != coldLat {
		t.Errorf("cold read latency = %d, want %d", got, coldLat)
	}
	if got := h.Access(0, addr(0), false); got != cfg.Levels[0].Latency {
		t.Errorf("L1 hit latency = %d, want %d", got, cfg.Levels[0].Latency)
	}
	s := h.Stats(0)
	if s.Level[0].Hits != 1 || s.Level[0].Misses != 1 || s.Level[1].Misses != 1 || s.Level[2].Misses != 1 {
		t.Errorf("stats after cold+hit = %+v", s)
	}

	// Evict addr(0) from L1 (4 ways, same set) — the copy must survive in
	// the private L2, so the re-read costs exactly L1+L2.
	for i := 1; i <= 4; i++ {
		h.Access(0, addr(i), false)
	}
	wantL2 := cfg.Levels[0].Latency + cfg.Levels[1].Latency
	if got := h.Access(0, addr(0), false); got != wantL2 {
		t.Errorf("private-L2 hit latency = %d, want %d", got, wantL2)
	}
	if s := h.Stats(0); s.Level[1].Hits == 0 {
		t.Error("private-L2 hit not counted")
	}

	// Another core's hierarchy is untouched: its access to the same line
	// hits the shared L3 (installed above), costing L1+L2+L3.
	wantL3 := cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.Levels[2].Latency
	if got := h.Access(1, addr(0), false); got != wantL3 {
		t.Errorf("shared-L3 hit latency for core1 = %d, want %d", got, wantL3)
	}
	if s := h.Stats(1); s.Level[2].Hits != 1 {
		t.Errorf("core1 L3 hit not counted: %+v", s)
	}
}

// TestInvalidationThroughMiddleLevel pins the coherence rule the 2-level
// model never needed: a remote write must invalidate a core's copies in
// ALL of its private levels, not just the innermost one.
func TestInvalidationThroughMiddleLevel(t *testing.T) {
	cfg := threeLevel()
	h := MustHierarchy(2, cfg)
	l1Sets := int64(cfg.Levels[0].Sets())
	line := int64(cfg.Levels[0].LineBytes)
	addr := func(i int) int64 { return int64(i) * line * l1Sets }

	h.Access(0, addr(0), false) // core0: line in L1+L2+L3
	for i := 1; i <= 4; i++ {   // evict from core0's L1, keep in its L2
		h.Access(0, addr(i), false)
	}
	h.Access(1, addr(0), true) // core1 writes: core0's private copies must die

	if s := h.Stats(0); s.Invalidations == 0 {
		t.Error("middle-level invalidation not counted against core0")
	}
	// core0's next read must not be served by its (stale) private L2: the
	// line now lives modified in core1's L1, so the read pays the full
	// path to the directory plus the remote-dirty penalty.
	want := cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.Levels[2].Latency + cfg.RemoteDirtyPenalty
	if got := h.Access(0, addr(0), false); got != want {
		t.Errorf("read after remote write = %d, want %d (remote dirty through directory)", got, want)
	}
	if s := h.Stats(0); s.RemoteDirty != 1 {
		t.Errorf("remote-dirty not counted: %+v", s)
	}
}

// TestRemoteWriteChargesOneInvalidation pins the per-event stat
// semantics at depth 3: a remote write that rips a modified line out of
// a core's L1 *and* its private L2 is one coherence event and must
// charge the victim core exactly one Invalidation (not one per level).
func TestRemoteWriteChargesOneInvalidation(t *testing.T) {
	cfg := threeLevel()
	h := MustHierarchy(2, cfg)

	h.Access(0, 0, true) // core0: M in L1, copies in private L2 + L3
	h.Access(1, 0, true) // core1 write: remote-M supply path
	if got := h.Stats(0).Invalidations; got != 1 {
		t.Errorf("core0 Invalidations = %d after one remote write, want 1", got)
	}
	// core0's private-L2 copy must be gone too: its next read pays the
	// full path to the directory (remote dirty, core1 now owns M).
	want := cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.Levels[2].Latency + cfg.RemoteDirtyPenalty
	if got := h.Access(0, 0, false); got != want {
		t.Errorf("read after remote write = %d, want %d", got, want)
	}
}

// TestSharersDepth3 checks the directory accessor at depth 3: the set
// lives at the outermost shared level and keeps naming a core whose copy
// only survives in a middle private level.
func TestSharersDepth3(t *testing.T) {
	cfg := threeLevel()
	h := MustHierarchy(4, cfg)
	l1Sets := int64(cfg.Levels[0].Sets())
	line := int64(cfg.Levels[0].LineBytes)
	addr := func(i int) int64 { return int64(i) * line * l1Sets }

	if _, ok := h.Sharers(addr(0)); ok {
		t.Fatal("untouched line present in directory")
	}
	h.Access(0, addr(0), false)
	h.Access(1, addr(0), false)
	if set, ok := h.Sharers(addr(0)); !ok || !reflect.DeepEqual(set, []int{0, 1}) {
		t.Fatalf("sharers after reads = %v (present=%v), want [0 1]", set, ok)
	}
	// Evict core0's L1 copy; the private-L2 copy keeps core0 a sharer.
	for i := 1; i <= 4; i++ {
		h.Access(0, addr(i), false)
	}
	if set, _ := h.Sharers(addr(0)); !reflect.DeepEqual(set, []int{0, 1}) {
		t.Fatalf("sharers after core0 L1 eviction = %v, want [0 1] (middle-level copy remains)", set)
	}
	// A write resets the mask to the writer alone.
	h.Access(2, addr(0), true)
	if set, ok := h.Sharers(addr(0)); !ok || !reflect.DeepEqual(set, []int{2}) {
		t.Fatalf("sharers after write by core 2 = %v (present=%v), want [2]", set, ok)
	}
}

// TestLastLevelEvictionPreservesInclusionDepth3 forces an eviction at the
// shared last level and checks the line is back-invalidated out of both
// private levels.
func TestLastLevelEvictionPreservesInclusionDepth3(t *testing.T) {
	cfg := threeLevel()
	// Tiny 2-set direct-mapped L3 so evictions are easy to force.
	cfg.Levels[2] = CacheConfig{SizeBytes: 128, Ways: 1, LineBytes: 64, Latency: 24, Shared: true}
	h, err := NewHierarchy(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 0, false)   // line 0 -> L3 set 0 (and L1, L2)
	h.Access(0, 128, false) // line 2 -> L3 set 0: evicts line 0 everywhere
	lat := h.Access(0, 0, false)
	want := cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.Levels[2].Latency + cfg.MemLatency
	if lat != want {
		t.Errorf("read after last-level eviction = %d, want full miss %d (inclusion violated)", lat, want)
	}
	if h.Stats(0).Invalidations == 0 {
		t.Error("back-invalidation not counted")
	}
}

// TestAccessLatencyShapesDepth3 is the depth-3 version of the legal-shape
// property: every access cost is a sum of a level-walk prefix plus
// optional memory and remote-dirty terms, and state converges.
func TestAccessLatencyShapesDepth3(t *testing.T) {
	cfg := threeLevel()
	h := MustHierarchy(4, cfg)
	l0, l1, l2 := cfg.Levels[0].Latency, cfg.Levels[1].Latency, cfg.Levels[2].Latency
	legal := map[int]bool{
		l0:                                    true,
		l0 + l1:                               true,
		l0 + l1 + l2:                          true,
		l0 + l1 + l2 + cfg.RemoteDirtyPenalty: true,
		l0 + l1 + l2 + cfg.MemLatency:         true,
		l0 + l1 + l2 + cfg.MemLatency + cfg.RemoteDirtyPenalty: true,
	}
	for i := 0; i < 4000; i++ {
		c := i % 4
		write := i%3 == 0
		a := int64((i * 7919 % 1024)) &^ 7
		lat := h.Access(c, a, write)
		if !legal[lat] {
			t.Fatalf("illegal latency %d for core %d addr %d write %v", lat, c, a, write)
		}
		if h.Access(c, a, write) != l0 {
			t.Fatalf("second identical access by core %d to %d not an L1 hit", c, a)
		}
	}
}
