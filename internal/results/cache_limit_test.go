package results

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sfence/internal/kernels"
	"sfence/internal/machine"
)

// limitOpts returns distinct tiny dekker configurations: each Ops value
// is a different content address.
func limitOpts(ops int) kernels.Options {
	return kernels.Options{Mode: kernels.Traditional, Threads: 2, Ops: ops, Workload: 1}
}

// diskUsage walks dir and returns the byte total and count of run
// records, the ground truth the cache's accounting must match.
func diskUsage(t *testing.T, dir string) (int64, int) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var bytes int64
	var n int
	for _, e := range entries {
		if !strings.HasPrefix(e.Name(), "run_") || !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		bytes += info.Size()
		n++
	}
	return bytes, n
}

// fillN runs n distinct configurations through the cache and returns
// their keys in insertion order.
func fillN(t *testing.T, c *RunCache, n int) []string {
	t.Helper()
	cfg := machine.DefaultConfig()
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		opts := limitOpts(5 + i)
		if _, err := c.Run(context.Background(), "dekker", opts, cfg); err != nil {
			t.Fatal(err)
		}
		keys[i] = Key("dekker", opts, cfg)
	}
	return keys
}

// TestCacheSizeAccountingExact checks the cache's byte and entry gauges
// against a literal directory walk, after fills, after disk reloads, and
// after evictions trim the tier.
func TestCacheSizeAccountingExact(t *testing.T) {
	dir := t.TempDir()
	c, err := NewRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	fillN(t, c, 4)

	wantBytes, wantEntries := diskUsage(t, dir)
	st := c.Stats()
	if st.DiskBytes != wantBytes || st.DiskEntries != wantEntries {
		t.Errorf("accounting %d bytes/%d entries, directory holds %d bytes/%d entries",
			st.DiskBytes, st.DiskEntries, wantBytes, wantEntries)
	}
	if wantEntries != 4 {
		t.Fatalf("expected 4 records on disk, found %d", wantEntries)
	}

	// A second instance adopting the directory must account identically.
	c2, err := NewRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st2 := c2.Stats(); st2.DiskBytes != wantBytes || st2.DiskEntries != wantEntries {
		t.Errorf("adopted accounting %d/%d, want %d/%d", st2.DiskBytes, st2.DiskEntries, wantBytes, wantEntries)
	}
}

// TestCacheLRUEviction bounds the budget so any two of three records fit
// but all three never do, and checks the least-recently-used record — not
// the least-recently-stored — is the one evicted.
func TestCacheLRUEviction(t *testing.T) {
	// Measure real record sizes on an unbounded cache first.
	refDir := t.TempDir()
	ref, err := NewRunCache(refDir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillN(t, ref, 3)
	sizes := make(map[string]int64, 3)
	var total int64
	for _, k := range keys {
		info, err := os.Stat(filepath.Join(refDir, "run_"+k+".json"))
		if err != nil {
			t.Fatal(err)
		}
		sizes[k] = info.Size()
		total += info.Size()
	}

	// Any two records fit in total-1 bytes; all three exceed it.
	dir := t.TempDir()
	c, err := NewRunCacheLimited(dir, total-1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	for _, ops := range []int{5, 6} { // records A, B
		if _, err := c.Run(context.Background(), "dekker", limitOpts(ops), cfg); err != nil {
			t.Fatal(err)
		}
	}
	// Freshen A in the disk LRU (a memory hit would not touch the disk
	// tier, so reload the record the way a cold cache would).
	if _, ok := c.loadDisk(keys[0], "dekker"); !ok {
		t.Fatal("record A unreadable before eviction")
	}
	// Store C: now over budget, and B is the least recently used.
	if _, err := c.Run(context.Background(), "dekker", limitOpts(7), cfg); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, "run_"+keys[1]+".json")); !os.IsNotExist(err) {
		t.Errorf("record B (least recently used) still on disk: %v", err)
	}
	for _, k := range []string{keys[0], keys[2]} {
		if _, err := os.Stat(filepath.Join(dir, "run_"+k+".json")); err != nil {
			t.Errorf("record %s should have survived eviction: %v", k[:12], err)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.DiskBytes > total-1 {
		t.Errorf("disk tier %d bytes over its %d budget", st.DiskBytes, total-1)
	}
	wantBytes, wantEntries := diskUsage(t, dir)
	if st.DiskBytes != wantBytes || st.DiskEntries != wantEntries {
		t.Errorf("post-eviction accounting %d/%d, directory holds %d/%d",
			st.DiskBytes, st.DiskEntries, wantBytes, wantEntries)
	}
}

// TestCacheEvictionSkipsInflight pins a key as in-flight and checks the
// evictor refuses to remove its record even far over budget, then
// reclaims it as soon as the in-flight entry resolves.
func TestCacheEvictionSkipsInflight(t *testing.T) {
	dir := t.TempDir()
	c, err := NewRunCacheLimited(dir, 1) // nothing fits
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	opts := limitOpts(5)
	key := Key("dekker", opts, cfg)

	// Pin the key as a coalesced load in flight, then land its record on
	// disk the way fill does.
	c.mu.Lock()
	c.inflight[key] = &inflightRun{done: make(chan struct{})}
	c.mu.Unlock()
	res, err := c.Runner(nil)(context.Background(), "dekker", limitOpts(6), cfg) // unrelated fill, evictable
	if err != nil {
		t.Fatal(err)
	}
	if err := c.storeDisk(key, "dekker", opts, cfg, res); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(c.path(key)); err != nil {
		t.Fatalf("in-flight record was evicted: %v", err)
	}
	st := c.Stats()
	if st.DiskEntries != 1 {
		t.Errorf("disk tier holds %d entries, want only the exempt one", st.DiskEntries)
	}

	// Resolve the in-flight entry; the next eviction pass reclaims it.
	c.mu.Lock()
	delete(c.inflight, key)
	c.evictLocked()
	c.mu.Unlock()
	if _, err := os.Stat(c.path(key)); !os.IsNotExist(err) {
		t.Errorf("record still on disk after the in-flight exemption ended: %v", err)
	}
	if st := c.Stats(); st.DiskBytes != 0 || st.DiskEntries != 0 {
		t.Errorf("disk tier not empty after final eviction: %+v", st)
	}
}

// TestCacheEvictionReMissByteIdentical evicts a record, then re-misses it
// from a fresh cache instance: the re-simulated record must be
// byte-identical to the evicted one (the determinism contract that makes
// eviction safe at all).
func TestCacheEvictionReMissByteIdentical(t *testing.T) {
	cfg := machine.DefaultConfig()
	optsA := limitOpts(5)
	keyA := Key("dekker", optsA, cfg)

	// Reference bytes for record A from an unbounded cache.
	refDir := t.TempDir()
	ref, err := NewRunCache(refDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(context.Background(), "dekker", optsA, cfg); err != nil {
		t.Fatal(err)
	}
	wantRecord, err := os.ReadFile(filepath.Join(refDir, "run_"+keyA+".json"))
	if err != nil {
		t.Fatal(err)
	}

	// A budget that holds one record: storing B evicts A.
	dir := t.TempDir()
	c, err := NewRunCacheLimited(dir, int64(len(wantRecord))+16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), "dekker", optsA, cfg); err != nil {
		t.Fatal(err)
	}
	if got, err := os.ReadFile(filepath.Join(dir, "run_"+keyA+".json")); err != nil {
		t.Fatal(err)
	} else if !bytes.Equal(got, wantRecord) {
		t.Fatal("record A differs across caches before any eviction")
	}
	if _, err := c.Run(context.Background(), "dekker", limitOpts(6), cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "run_"+keyA+".json")); !os.IsNotExist(err) {
		t.Fatalf("record A should have been evicted: %v", err)
	}

	// A fresh instance over the trimmed directory re-misses A: the memory
	// tier is gone, the disk record is gone, so it must re-simulate — and
	// land the exact same bytes.
	c2, err := NewRunCacheLimited(dir, int64(len(wantRecord))+16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Run(context.Background(), "dekker", optsA, cfg); err != nil {
		t.Fatal(err)
	}
	if st := c2.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Errorf("re-miss stats = %+v, want exactly 1 miss and no disk hit", st)
	}
	got, err := os.ReadFile(filepath.Join(dir, "run_"+keyA+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, wantRecord) {
		t.Error("re-simulated record is not byte-identical to the evicted one")
	}
}

// TestCachePartialWriteIsMiss plants a crash-truncated record and writer
// debris, and checks construction reclaims the debris while the truncated
// record reads as a miss — not an error — and is overwritten whole.
func TestCachePartialWriteIsMiss(t *testing.T) {
	cfg := machine.DefaultConfig()
	opts := limitOpts(5)
	key := Key("dekker", opts, cfg)

	// Build a valid record first, to truncate realistically.
	refDir := t.TempDir()
	ref, err := NewRunCache(refDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Run(context.Background(), "dekker", opts, cfg); err != nil {
		t.Fatal(err)
	}
	whole, err := os.ReadFile(filepath.Join(refDir, "run_"+key+".json"))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "run_"+key+".json"), whole[:len(whole)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "run_deadbeef.tmp"), []byte("crash debris"), 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := NewRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "run_deadbeef.tmp")); !os.IsNotExist(err) {
		t.Errorf("writer debris not reclaimed at construction: %v", err)
	}
	if _, err := c.Run(context.Background(), "dekker", opts, cfg); err != nil {
		t.Fatalf("truncated record surfaced as an error instead of a miss: %v", err)
	}
	if st := c.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Errorf("stats = %+v, want the truncated record to count as a miss", st)
	}
	got, err := os.ReadFile(filepath.Join(dir, "run_"+key+".json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, whole) {
		t.Error("repaired record is not byte-identical to a clean write")
	}
}

// TestCacheAdoptionEvictsOldestFirst pre-populates a directory, then
// opens it with a budget that fits only some records: the construction
// trim must drop the oldest-modified records first.
func TestCacheAdoptionEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	seed, err := NewRunCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	keys := fillN(t, seed, 3)

	// Make the mtime order unambiguous: keys[0] oldest, keys[2] newest.
	now := time.Now()
	for i, k := range keys {
		ts := now.Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, "run_"+k+".json"), ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	for _, k := range keys {
		info, err := os.Stat(filepath.Join(dir, "run_"+k+".json"))
		if err != nil {
			t.Fatal(err)
		}
		total += info.Size()
	}

	c, err := NewRunCacheLimited(dir, total-1) // any two fit, three never
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "run_"+keys[0]+".json")); !os.IsNotExist(err) {
		t.Errorf("oldest record survived the adoption trim: %v", err)
	}
	for _, k := range keys[1:] {
		if _, err := os.Stat(filepath.Join(dir, "run_"+k+".json")); err != nil {
			t.Errorf("newer record %s dropped by the adoption trim: %v", k[:12], err)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.DiskEntries != 2 {
		t.Errorf("adoption trim stats = %+v, want 1 eviction leaving 2 entries", st)
	}
}
