package memsys_test

import (
	"fmt"

	"sfence/internal/memsys"
)

// ExampleConfig builds a three-level hierarchy by hand: two private
// levels backed by one shared last level that carries the directory.
// Levels are listed innermost first; private levels must precede shared
// ones, and the outermost level must be shared.
func ExampleConfig() {
	cfg := memsys.Config{
		Levels: []memsys.CacheConfig{
			{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, Latency: 2},                // private L1
			{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, Latency: 6},               // private L2
			{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64, Latency: 24, Shared: true}, // shared L3 + directory
		},
		MemLatency:         300,
		RemoteDirtyPenalty: 10,
	}
	if err := cfg.Validate(); err != nil {
		fmt.Println("invalid:", err)
		return
	}
	h := memsys.MustHierarchy(2, cfg)

	// A cold read walks every level and memory; a re-read hits the L1.
	cold := h.Access(0, 0, false)
	warm := h.Access(0, 0, false)
	fmt.Printf("levels: %d\n", h.Depth())
	fmt.Printf("cold read:  %d cycles\n", cold)
	fmt.Printf("warm read:  %d cycles\n", warm)
	// Output:
	// levels: 3
	// cold read:  332 cycles
	// warm read:  2 cycles
}
