package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Client talks to a running sfence-serve instance. It is the one client
// implementation shared by the end-to-end tests and sfence-bench
// (-server), so every consumer exercises the same wire protocol.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// Tenant, when non-empty, is sent as the X-Tenant header on every
	// request.
	Tenant string
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimSuffix(c.BaseURL, "/") + path
}

func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.Tenant != "" {
		req.Header.Set("X-Tenant", c.Tenant)
	}
	return c.http().Do(req)
}

// apiError decodes the server's {"error": ...} body into a Go error.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return fmt.Errorf("serve: %s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return fmt.Errorf("serve: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Experiments lists the server's experiment registry.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var infos []ExperimentInfo
	if err := c.getJSON(ctx, "/v1/experiments", &infos); err != nil {
		return nil, err
	}
	return infos, nil
}

// Submit enqueues a job and returns its accepted status.
func (c *Client) Submit(ctx context.Context, req JobRequest) (JobStatus, error) {
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", req)
	if err != nil {
		return JobStatus{}, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return JobStatus{}, apiError(resp)
	}
	defer resp.Body.Close()
	var st JobStatus
	err = json.NewDecoder(resp.Body).Decode(&st)
	return st, err
}

// Status fetches a job's current status.
func (c *Client) Status(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	err := c.getJSON(ctx, "/v1/jobs/"+id, &st)
	return st, err
}

// Cancel cancels a job; the cancellation propagates into the simulation
// cycle loop.
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	resp.Body.Close()
	return nil
}

// Events streams the job's NDJSON events, invoking fn per event, until
// the job reaches a terminal state, fn returns an error (which Events
// returns), or ctx is cancelled (which disconnects the stream — for
// CancelOnDisconnect jobs that cancels the job). The terminal state
// event is delivered to fn like any other.
func (c *Client) Events(ctx context.Context, id string, fn func(Event) error) error {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var ev Event
		if err := json.Unmarshal(line, &ev); err != nil {
			return fmt.Errorf("serve: decode event: %w", err)
		}
		if fn != nil {
			if err := fn(ev); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

// Result fetches a finished job's schema-versioned BENCH envelope bytes.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	resp, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Run is the convenience round trip: submit the job, follow its event
// stream (fn may be nil) until it terminates, and fetch the envelope.
// A failed or cancelled job returns the server's error.
func (c *Client) Run(ctx context.Context, req JobRequest, fn func(Event) error) ([]byte, error) {
	st, err := c.Submit(ctx, req)
	if err != nil {
		return nil, err
	}
	if err := c.Events(ctx, st.ID, fn); err != nil {
		return nil, err
	}
	return c.Result(ctx, st.ID)
}
