package ref

import (
	"fmt"
	"math/rand"

	"sfence/internal/isa"
)

// Variant selects how GenConcurrent lowers the scenario's synchronization
// annotations into fence instructions. The three variants correspond to
// the paper's configurations: traditional full fences (T), class-scoped
// S-Fences with fs_start/fs_end brackets (S/class), and set-scoped
// S-Fences with compiler-flagged accesses (S/set).
type Variant uint8

const (
	VariantTraditional Variant = iota
	VariantClass
	VariantSet

	// NumVariants is the number of fence lowerings of every scenario.
	NumVariants = 3
)

func (v Variant) String() string {
	switch v {
	case VariantTraditional:
		return "traditional"
	case VariantClass:
		return "class"
	case VariantSet:
		return "set"
	case VariantInferred:
		return "inferred"
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// ParseVariant resolves a variant by its String name.
func ParseVariant(s string) (Variant, error) {
	for v := Variant(0); v < NumVariants; v++ {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("ref: unknown fence variant %q (want traditional, class, or set)", s)
}

// lowering emits one variant's synchronization skeleton: scope brackets,
// access flagging, and the fence itself. It mirrors how the paper's
// compiler support lowers annotated synchronization — the generator calls
// these hooks at annotation points and everything else is emitted
// identically across variants.
type lowering struct{ v Variant }

// enter opens a class scope around a synchronized "method" (class variant
// only).
func (l lowering) enter(b *isa.Builder, cid int64) {
	if l.v == VariantClass {
		b.FsStart(cid)
	}
}

// exit closes the class scope opened by enter.
func (l lowering) exit(b *isa.Builder, cid int64) {
	if l.v == VariantClass {
		b.FsEnd(cid)
	}
}

// shared marks the next memory instruction as part of the fence's variable
// set (set variant only).
func (l lowering) shared(b *isa.Builder) {
	if l.v == VariantSet {
		b.SetFlagged()
	}
}

// fence emits the variant's ordering fence at a synchronization point.
func (l lowering) fence(b *isa.Builder) {
	switch l.v {
	case VariantTraditional:
		b.Fence(isa.ScopeGlobal)
	case VariantClass:
		b.Fence(isa.ScopeClass)
	default:
		b.Fence(isa.ScopeSet)
	}
}

// Class ids of the generated synchronized objects.
const (
	cidCounter = 1
	cidLock    = 2
	cidChan    = 3
	cidDekker  = 4
)

// Shared-memory layout of generated scenarios. Counters sit 8 bytes apart
// on one cache line (deliberate false sharing under CAS contention); locks
// and channels get a line-plus of separation; each thread owns a disjoint
// private window for its random compute blocks.
const (
	// concTurnAddr is the dekker idiom's turn word. It sits BELOW
	// concCounterBase on purpose: the turn's final value is whichever
	// thread exited its last critical section first — genuinely
	// interleaving-dependent — so it must stay outside the checked
	// footprint while everything the idiom protects stays inside.
	concTurnAddr    = 4032
	concCounterBase = 4096
	concScratchBase = 4608 // one shared line; thread t owns word t
	concLockBase    = 5120 // lock l at +l*128; protected cells follow the lock word
	concDekkerBase  = 5888 // flag0 at +0, flag1 at +64, protected cell at +128
	concChanBase    = 8192 // channel e at +e*128: flag at +0, payload at +8...
	concPrivBase    = 16384
	concPrivWords   = 64 // private window size in words (power of two)
	concPrivStride  = 1024
	concMaxThreads  = 5
)

// Wide scenarios: a seed with concWideSeedBit set generates
// concWideMinThreads..concWideMaxThreads threads instead of the usual
// 2..concMaxThreads, exercising the directory's many-sharer paths and
// the parallel runner's worker partitioning on machines wider than a
// typical fuzz draw. The bit lives far above the small integers the
// seed corpus uses, so every historical seed keeps generating exactly
// the scenario its corpus filename describes.
const (
	concWideSeedBit    = int64(1) << 40
	concWideMinThreads = 16
	concWideMaxThreads = 24
)

// concPrivAddr returns thread t's private window base.
func concPrivAddr(t int) int64 { return concPrivBase + int64(t)*concPrivStride }

// concMemEnd returns the exclusive end of the scenario's memory footprint:
// every generated access falls in [concCounterBase, concMemEnd).
func concMemEnd(threads int) int64 { return concPrivAddr(threads) }

// ConcEntry returns thread t's entry-point name (shared by all variants).
func ConcEntry(t int) string { return fmt.Sprintf("t%d", t) }

// ConcProgram is one generated N-thread scenario in its three fence
// lowerings. All variants share entry names ("t0".."tN-1"), initial
// registers, and initial memory; they differ only in fence scopes,
// fs_start/fs_end brackets, and set flags — the instruction streams are
// otherwise identical, which TestGenConcurrentVariantsAligned pins down.
type ConcProgram struct {
	Seed       int64
	NumThreads int
	Variants   [NumVariants]*isa.Program
	// Regs holds per-thread initial data registers (R1-R12).
	Regs []map[isa.Reg]int64
	// Mem seeds the private windows (and nothing else: every shared
	// synchronization word starts at zero).
	Mem map[int64]int64
}

// GenConcurrent deterministically generates a random, guaranteed-
// terminating N-thread scenario for differential testing of the full
// machine: thread-private compute blocks (reusing the single-threaded
// generator), CAS counter contention on a shared line, spinlock-protected
// critical sections with commutative updates (optionally held across a
// delay loop so contenders busy-wait at length), a dekker-style flag/turn
// mutual-exclusion idiom between threads 0 and 1, message-passing channels
// in a chain or ring, and per-thread stores to a falsely-shared scratch
// line. The spin-heavy shapes (lock holds, dekker polling, channel waits)
// are deliberate: they drive the spin-aware fast-forward machinery through
// confirmation, remote-store demotion, and whole-period jumps, all under
// the bit-identity check against naive stepping.
// Synchronization is annotation-driven: the same scenario is lowered three
// times (traditional, class-scoped, set-scoped fences).
//
// Every idiom is determinate: the final contents of the scenario's memory
// footprint and of data registers R1-R12 are the same in every fair
// execution — sequentially consistent or relaxed-with-correct-fences —
// which is exactly what makes differential checking against the
// round-robin RunConc oracle sound (see DESIGN.md, "Differential
// fuzzing").
func GenConcurrent(seed int64) *ConcProgram {
	cp := &ConcProgram{Seed: seed}
	for v := Variant(0); v < NumVariants; v++ {
		cp.Variants[v], cp.NumThreads = emitConc(seed, v)
	}
	// Initial state comes from its own stream so it is identical for all
	// variants by construction.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed1e55c0ffee))
	cp.Regs = make([]map[isa.Reg]int64, cp.NumThreads)
	cp.Mem = map[int64]int64{}
	for t := 0; t < cp.NumThreads; t++ {
		regs := map[isa.Reg]int64{}
		for r := isa.R1; r <= isa.R12; r++ {
			regs[r] = rng.Int63n(1 << 20)
		}
		cp.Regs[t] = regs
		for i := 0; i < 24; i++ {
			cp.Mem[concPrivAddr(t)+rng.Int63n(concPrivWords)*8] = rng.Int63n(1 << 16)
		}
	}
	return cp
}

// concEdge is one message-passing channel: thread from produces a payload
// and flips the flag; thread (from+1) mod N spins on the flag and reads
// the payload back.
type concEdge struct {
	id   int
	from int
	vals []int64 // payload words (deterministic)
}

// concGen emits one variant of a scenario. All random draws happen in the
// same order for every variant (the lowering hooks never consume
// randomness), so the three instruction streams stay aligned.
type concGen struct {
	rng      *rand.Rand
	b        *isa.Builder
	l        lowering
	threads  int
	counters int
	locks    int
	edges    []concEdge
}

func emitConc(seed int64, v Variant) (*isa.Program, int) {
	g := &concGen{rng: rand.New(rand.NewSource(seed)), b: isa.NewBuilder(), l: lowering{v}}
	g.threads = 2 + g.rng.Intn(concMaxThreads-1)
	if seed&concWideSeedBit != 0 {
		// The narrow draw above still happens so non-wide seeds keep
		// their historical random stream; wide seeds just override the
		// thread count with a second draw.
		g.threads = concWideMinThreads + g.rng.Intn(concWideMaxThreads-concWideMinThreads+1)
	}
	g.counters = 1 + g.rng.Intn(3)
	g.locks = g.rng.Intn(3)
	nEdges := g.threads - 1 // chain t0 -> t1 -> ... by default
	if g.rng.Intn(2) == 1 {
		nEdges = g.threads // ring: the last thread feeds t0
	}
	for e := 0; e < nEdges; e++ {
		vals := make([]int64, 1+g.rng.Intn(4))
		for j := range vals {
			vals[j] = 1 + g.rng.Int63n(1<<16)
		}
		g.edges = append(g.edges, concEdge{id: e, from: e, vals: vals})
	}
	for t := 0; t < g.threads; t++ {
		g.b.Entry(ConcEntry(t))
		g.thread(t)
		g.b.Halt()
	}
	p, err := g.b.Build()
	if err != nil {
		panic(fmt.Sprintf("ref: generated concurrent program failed to assemble: %v", err))
	}
	if err := p.Validate(); err != nil {
		panic(fmt.Sprintf("ref: generated concurrent program failed validation: %v", err))
	}
	return p, g.threads
}

// outEdge returns the channel thread t produces on, if any.
func (g *concGen) outEdge(t int) *concEdge {
	for i := range g.edges {
		if g.edges[i].from == t {
			return &g.edges[i]
		}
	}
	return nil
}

// inEdge returns the channel thread t consumes from, if any.
func (g *concGen) inEdge(t int) *concEdge {
	from := (t - 1 + g.threads) % g.threads
	for i := range g.edges {
		if g.edges[i].from == from {
			return &g.edges[i]
		}
	}
	return nil
}

// thread emits thread t's body: a shuffled sequence of idiom phases with
// the produce phase strictly before the consume phase in program order.
// That single constraint keeps rings deadlock-free — every thread flips
// its outgoing flag unconditionally before it starts spinning on its
// incoming one — and therefore keeps every generated scenario terminating.
func (g *concGen) thread(t int) {
	var phases []func()
	phases = append(phases, func() { g.private(t) })
	for c := 0; c < g.counters; c++ {
		if g.rng.Intn(2) == 1 {
			c, times, delta := c, 1+g.rng.Intn(3), 1+g.rng.Int63n(9)
			phases = append(phases, func() { g.counterBump(c, times, delta) })
		}
	}
	for lk := 0; lk < g.locks; lk++ {
		if g.rng.Intn(2) == 1 {
			lk, cells, delta := lk, 1+g.rng.Intn(4), 1+g.rng.Int63n(9)
			hold := 0
			if g.rng.Intn(2) == 1 {
				hold = 8 + g.rng.Intn(17)
			}
			phases = append(phases, func() { g.critical(lk, cells, delta, hold) })
		}
	}
	if t < 2 && g.rng.Intn(2) == 1 {
		times, delta := 1+g.rng.Intn(4), 1+g.rng.Int63n(9)
		hold := 0
		if g.rng.Intn(2) == 1 {
			hold = 8 + g.rng.Intn(17)
		}
		phases = append(phases, func() { g.dekker(t, times, delta, hold) })
	}
	if g.rng.Intn(2) == 1 {
		phases = append(phases, func() { g.scratch(t) })
	}
	if g.rng.Intn(3) > 0 {
		phases = append(phases, func() { g.private(t) })
	}
	g.rng.Shuffle(len(phases), func(i, j int) { phases[i], phases[j] = phases[j], phases[i] })

	produceAt := -1
	if out := g.outEdge(t); out != nil {
		produceAt = g.rng.Intn(len(phases) + 1)
		phases = insertPhase(phases, produceAt, func() { g.produce(out) })
	}
	if in := g.inEdge(t); in != nil {
		lo := produceAt + 1
		at := lo + g.rng.Intn(len(phases)-lo+1)
		phases = insertPhase(phases, at, func() { g.consume(in, t) })
	}
	for _, ph := range phases {
		ph()
	}
}

func insertPhase(phases []func(), at int, ph func()) []func() {
	phases = append(phases, nil)
	copy(phases[at+1:], phases[at:])
	phases[at] = ph
	return phases
}

// private expands a random single-threaded compute block over thread t's
// private window. The block's own fences, loops, and nested fs brackets
// ride along identically in every variant: out-of-scope noise the scoped
// fences must not wait for, and in-scope nesting for the class hardware.
func (g *concGen) private(t int) {
	g.b.Inline(func(b *isa.Builder) {
		pg := &gen{rng: g.rng, b: b, base: concPrivAddr(t), words: concPrivWords}
		pg.block(1)
	})
}

// counterBump emits `times` CAS-increments of shared counter c by delta.
// The final counter value is the sum of all increments in every fair
// execution; the observed old/new scratch registers (R17/R18) are
// interleaving-dependent and excluded from the checked projection.
func (g *concGen) counterBump(c, times int, delta int64) {
	fenced := g.rng.Intn(2) == 1
	g.b.Inline(func(b *isa.Builder) {
		g.l.enter(b, cidCounter)
		b.MovI(isa.R16, concCounterBase+int64(c)*8)
		for i := 0; i < times; i++ {
			retry := fmt.Sprintf("retry%d", i)
			b.Label(retry)
			g.l.shared(b)
			b.Load(isa.R17, isa.R16, 0)
			b.AddI(isa.R18, isa.R17, delta)
			g.l.shared(b)
			b.CAS(isa.R19, isa.R16, 0, isa.R17, isa.R18)
			b.Beq(isa.R19, isa.R0, retry)
		}
		if fenced {
			g.l.fence(b)
		}
		g.l.exit(b, cidCounter)
	})
}

// critical emits a spinlock-protected critical section on lock lk: acquire
// by CAS(0->1), an acquire fence, commutative read-modify-writes of the
// protected cells, a release fence, and the unlock store. Mutual exclusion
// plus the two fences make the cell updates atomic with respect to every
// other thread, so the final cell values are interleaving-independent.
// A nonzero hold inserts a register-only delay loop while the lock is
// held, stretching the window in which contending threads busy-wait on
// the CAS — the spin-dominated shape the detector's fast path compresses.
func (g *concGen) critical(lk, cells int, delta int64, hold int) {
	base := concLockBase + int64(lk)*128
	g.b.Inline(func(b *isa.Builder) {
		g.l.enter(b, cidLock)
		b.MovI(isa.R16, base)
		b.MovI(isa.R17, 1)
		b.Label("acquire")
		g.l.shared(b)
		b.CAS(isa.R19, isa.R16, 0, isa.R0, isa.R17)
		b.Beq(isa.R19, isa.R0, "acquire")
		g.l.fence(b) // acquire: protected accesses stay after lock acquisition
		if hold > 0 {
			b.MovI(isa.R20, int64(hold))
			b.Label("hold")
			b.AddI(isa.R20, isa.R20, -1)
			b.Bne(isa.R20, isa.R0, "hold")
		}
		for j := 0; j < cells; j++ {
			g.l.shared(b)
			b.Load(isa.R18, isa.R16, int64(8*(1+j)))
			b.AddI(isa.R18, isa.R18, delta+int64(j))
			g.l.shared(b)
			b.Store(isa.R16, int64(8*(1+j)), isa.R18)
		}
		g.l.fence(b) // release: protected stores become visible before the unlock
		g.l.shared(b)
		b.Store(isa.R16, 0, isa.R0)
		g.l.exit(b, cidLock)
	})
}

// dekker emits a dekker-style mutual-exclusion idiom for thread t (only
// threads 0 and 1 participate): publish my flag, the classic store→load
// dekker fence, poll the peer's flag with turn-based backoff, then a
// non-atomic read-modify-write of the protected cell under acquire and
// release fences. Flag words sit on separate lines, so the loser's
// polling loop is a steady all-hit spin — together with the hold delay it
// is the generator's most spin-dominated shape, exercising confirmation,
// remote-store demotion (the winner's flag drop lands mid-spin), and
// spin-forward crediting in the differential check. The cell updates
// commute, so the final cell is deterministic; the turn word is not, and
// lives outside the checked footprint (see concTurnAddr).
func (g *concGen) dekker(t, times int, delta int64, hold int) {
	me := int64(concDekkerBase + t*64)
	peer := int64(concDekkerBase + (1-t)*64)
	g.b.Inline(func(b *isa.Builder) {
		g.l.enter(b, cidDekker)
		b.MovI(isa.R16, me)
		b.MovI(isa.R17, peer)
		b.MovI(isa.R18, concTurnAddr)
		b.MovI(isa.R22, concDekkerBase+128)
		b.MovI(isa.R21, int64(times))
		b.Label("iter")
		b.MovI(isa.R20, 1)
		g.l.shared(b)
		b.Store(isa.R16, 0, isa.R20) // flag[me] = 1
		g.l.fence(b)                 // dekker: my flag store before the peer-flag load
		b.Label("try")
		g.l.shared(b)
		b.Load(isa.R19, isa.R17, 0)
		b.Beq(isa.R19, isa.R0, "enter")
		g.l.shared(b)
		b.Load(isa.R19, isa.R18, 0)
		b.XorI(isa.R19, isa.R19, int64(t))
		b.Beq(isa.R19, isa.R0, "try") // my turn: keep polling the peer flag
		g.l.shared(b)
		b.Store(isa.R16, 0, isa.R0) // back off: drop my flag until my turn
		b.Label("waitturn")
		g.l.shared(b)
		b.Load(isa.R19, isa.R18, 0)
		b.XorI(isa.R19, isa.R19, int64(t))
		b.Bne(isa.R19, isa.R0, "waitturn")
		g.l.shared(b)
		b.Store(isa.R16, 0, isa.R20) // re-publish and retry
		g.l.fence(b)
		b.Jmp("try")

		b.Label("enter")
		g.l.fence(b) // acquire: the peer-flag read completes before the cell load
		if hold > 0 {
			b.MovI(isa.R20, int64(hold))
			b.Label("hold")
			b.AddI(isa.R20, isa.R20, -1)
			b.Bne(isa.R20, isa.R0, "hold")
		}
		g.l.shared(b)
		b.Load(isa.R19, isa.R22, 0)
		b.AddI(isa.R19, isa.R19, delta)
		g.l.shared(b)
		b.Store(isa.R22, 0, isa.R19)
		g.l.fence(b) // release: the cell store is visible before the flag drops
		b.MovI(isa.R19, int64(1-t))
		g.l.shared(b)
		b.Store(isa.R18, 0, isa.R19) // turn = peer
		g.l.shared(b)
		b.Store(isa.R16, 0, isa.R0) // flag[me] = 0
		b.AddI(isa.R21, isa.R21, -1)
		b.Bne(isa.R21, isa.R0, "iter")
		g.l.exit(b, cidDekker)
	})
}

// produce writes channel e's payload and then flips its flag, with a
// release fence in between: the consumer must never observe the flag
// without the payload.
func (g *concGen) produce(e *concEdge) {
	base := concChanBase + int64(e.id)*128
	g.b.Inline(func(b *isa.Builder) {
		g.l.enter(b, cidChan)
		b.MovI(isa.R16, base)
		for j, v := range e.vals {
			b.MovI(isa.R17, v)
			g.l.shared(b)
			b.Store(isa.R16, int64(8*(1+j)), isa.R17)
		}
		g.l.fence(b) // release: payload visible before the flag flips
		b.MovI(isa.R17, 1)
		g.l.shared(b)
		b.Store(isa.R16, 0, isa.R17)
		g.l.exit(b, cidChan)
	})
}

// consume spins on channel e's flag, then — after an acquire fence — reads
// the payload, folding it into a random checked data register and storing
// the sum into the consumer's private window.
func (g *concGen) consume(e *concEdge, t int) {
	base := concChanBase + int64(e.id)*128
	acc := g.rng.Intn(12) // offset into R1-R12: part of the checked projection
	slot := g.rng.Int63n(concPrivWords) * 8
	g.b.Inline(func(b *isa.Builder) {
		accReg := isa.Reg(1 + acc)
		g.l.enter(b, cidChan)
		b.MovI(isa.R16, base)
		b.Label("spin")
		g.l.shared(b)
		b.Load(isa.R17, isa.R16, 0)
		b.Beq(isa.R17, isa.R0, "spin")
		g.l.fence(b) // acquire: payload reads stay after the flag observation
		for j := range e.vals {
			g.l.shared(b)
			b.Load(isa.R18, isa.R16, int64(8*(1+j)))
			b.Add(accReg, accReg, isa.R18)
		}
		g.l.exit(b, cidChan)
		b.MovI(isa.R16, concPrivAddr(t)+slot)
		b.Store(isa.R16, 0, accReg)
	})
}

// scratch hammers thread t's own word of the shared scratch line: heavy
// false-sharing coherence traffic with a deterministic final value, and —
// being outside every scope — traffic that a correctly scoped fence must
// not wait for.
func (g *concGen) scratch(t int) {
	n := 2 + g.rng.Intn(4)
	val := g.rng.Int63n(1 << 16)
	g.b.Inline(func(b *isa.Builder) {
		b.MovI(isa.R16, concScratchBase)
		for i := 0; i < n; i++ {
			b.MovI(isa.R17, val+int64(i))
			b.Store(isa.R16, int64(8*t), isa.R17)
		}
	})
}
