package results

import (
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"sfence/internal/exp"
	"sfence/internal/kernels"
	"sfence/internal/machine"
	"sfence/internal/stats"
)

// CacheStats counts cache traffic. Hits = MemHits + DiskHits; Misses is
// the number of simulations actually executed. WriteErrors counts run
// records that could not be persisted (the results were still returned
// and kept in the memory tier). Evictions counts disk records removed by
// the LRU byte budget; DiskBytes and DiskEntries are the current disk
// tier occupancy (levels, not counters).
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	MemHits     uint64 `json:"memHits"`
	DiskHits    uint64 `json:"diskHits"`
	Misses      uint64 `json:"misses"`
	WriteErrors uint64 `json:"writeErrors"`
	Evictions   uint64 `json:"evictions"`
	DiskBytes   int64  `json:"diskBytes"`
	DiskEntries int    `json:"diskEntries"`
}

// RunCache memoizes kernel simulations, content-addressed by a hash of
// (machine configuration, kernel name, kernel options). The simulator is
// deterministic, so a cached kernels.Result is bit-identical to a fresh
// run of the same triple; experiments that share baseline configurations
// (Figures 13-16 all re-run the Table III Traditional/Scoped baselines)
// therefore simulate each distinct configuration exactly once.
//
// The cache has two tiers: an in-process map (always on) and an optional
// directory of JSON run records that persists results across invocations.
// Concurrent requests for the same key are coalesced: one simulates, the
// rest wait and count as memory hits.
//
// The disk tier can be bounded (NewRunCacheLimited): every record's byte
// size is accounted, and storing past the budget evicts records in
// least-recently-used order. Eviction never removes a record whose key
// has an in-flight coalesced load — the filler may be mid-read — and an
// evicted record simply re-misses: the simulator is deterministic, so the
// re-simulated record is byte-identical to the evicted one.
type RunCache struct {
	dir          string // "" = memory only
	maxDiskBytes int64  // 0 = unbounded

	mu       sync.Mutex
	mem      map[string]kernels.Result
	inflight map[string]*inflightRun

	// Disk-tier accounting (dir != "" only): per-record byte sizes and
	// recency order. lru front = most recently used.
	diskSize  map[string]int64
	lru       *list.List
	lruElem   map[string]*list.Element
	diskBytes int64

	memHits   atomic.Uint64
	diskHits  atomic.Uint64
	misses    atomic.Uint64
	writeErrs atomic.Uint64
	evictions atomic.Uint64
}

type inflightRun struct {
	done chan struct{}
	res  kernels.Result
	err  error
}

// NewRunCache returns a cache persisting run records under dir (created
// if missing) with no byte budget. An empty dir yields a memory-only
// cache.
func NewRunCache(dir string) (*RunCache, error) {
	return NewRunCacheLimited(dir, 0)
}

// NewRunCacheLimited returns a cache persisting run records under dir
// (created if missing) whose disk tier is bounded to maxDiskBytes
// (0 = unbounded). Records already in dir are adopted into the size
// accounting in modification-time order (oldest = first eviction
// candidate) and trimmed to the budget immediately; leftover temp files
// from a crashed writer are removed.
func NewRunCacheLimited(dir string, maxDiskBytes int64) (*RunCache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("results: cache dir: %w", err)
		}
	}
	c := &RunCache{
		dir:          dir,
		maxDiskBytes: maxDiskBytes,
		mem:          make(map[string]kernels.Result),
		inflight:     make(map[string]*inflightRun),
		diskSize:     make(map[string]int64),
		lru:          list.New(),
		lruElem:      make(map[string]*list.Element),
	}
	if dir != "" {
		if err := c.scanDisk(); err != nil {
			return nil, err
		}
		c.mu.Lock()
		c.evictLocked()
		c.mu.Unlock()
	}
	return c, nil
}

// NewMemCache returns an in-process-only cache.
func NewMemCache() *RunCache {
	c, _ := NewRunCache("")
	return c
}

// scanDisk seeds the size accounting and LRU order from records already
// on disk, and removes temp-file debris a crashed writer left behind.
// Corrupt or truncated records are counted too — they occupy bytes, and
// loadDisk treats them as misses, so the next fill overwrites them.
func (c *RunCache) scanDisk() error {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("results: cache scan: %w", err)
	}
	type rec struct {
		key   string
		size  int64
		mtime int64
	}
	var recs []rec
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() {
			continue
		}
		if filepath.Ext(name) == ".tmp" {
			// A writer crashed between CreateTemp and Rename; the partial
			// file can never be addressed, so reclaim it.
			os.Remove(filepath.Join(c.dir, name))
			continue
		}
		if !strings.HasPrefix(name, "run_") || !strings.HasSuffix(name, ".json") {
			continue
		}
		key := strings.TrimSuffix(strings.TrimPrefix(name, "run_"), ".json")
		if key == "" {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		recs = append(recs, rec{key: key, size: info.Size(), mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].mtime < recs[j].mtime })
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range recs {
		c.diskSize[r.key] = r.size
		c.diskBytes += r.size
		c.lruElem[r.key] = c.lru.PushFront(r.key)
	}
	return nil
}

// Stats returns a snapshot of the cache counters.
func (c *RunCache) Stats() CacheStats {
	mem, disk := c.memHits.Load(), c.diskHits.Load()
	c.mu.Lock()
	bytes, entries := c.diskBytes, len(c.diskSize)
	c.mu.Unlock()
	return CacheStats{
		Hits:        mem + disk,
		MemHits:     mem,
		DiskHits:    disk,
		Misses:      c.misses.Load(),
		WriteErrors: c.writeErrs.Load(),
		Evictions:   c.evictions.Load(),
		DiskBytes:   bytes,
		DiskEntries: entries,
	}
}

// MaxDiskBytes returns the disk tier's byte budget (0 = unbounded).
func (c *RunCache) MaxDiskBytes() int64 { return c.maxDiskBytes }

// cacheKeyPayload is what gets hashed into a cache key. The schema
// version is included so format changes invalidate old disk records.
type cacheKeyPayload struct {
	Schema int             `json:"schema"`
	Bench  string          `json:"bench"`
	Opts   kernels.Options `json:"opts"`
	Cfg    machine.Config  `json:"cfg"`
}

// Key returns the content address of one simulation: a hex SHA-256 of
// the canonical JSON encoding of (schema, benchmark, options, config).
// The parallel-runner knobs are excluded: simulated results are
// bit-identical at every worker count, so a record produced at one
// worker count must satisfy requests at any other.
func Key(bench string, opts kernels.Options, cfg machine.Config) string {
	h := sha256.New()
	cfg.Parallel = machine.ParallelConfig{}
	// Struct field order is fixed, so this encoding is canonical.
	if err := json.NewEncoder(h).Encode(cacheKeyPayload{SchemaVersion, bench, opts, cfg}); err != nil {
		panic("results: cache key encoding cannot fail: " + err.Error())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runRecord is the on-disk form of one memoized simulation. The inputs
// are stored alongside the result so a record can be validated against
// the key that addressed it.
type runRecord struct {
	Schema int             `json:"schema"`
	Bench  string          `json:"bench"`
	Opts   kernels.Options `json:"opts"`
	Cfg    machine.Config  `json:"cfg"`
	Result kernels.Result  `json:"result"`
}

func (c *RunCache) path(key string) string {
	return filepath.Join(c.dir, "run_"+key+".json")
}

// Run returns the memoized result for the triple, simulating on a miss.
// It is an exp.Runner: a Lab session with a cache installs this method as
// its runner. Run is safe for concurrent use and coalesces duplicate
// in-flight keys: one caller simulates, the rest wait and count as memory
// hits. Cancellation stays per-caller — a waiter whose own context is
// cancelled stops waiting with its ctx.Err(), and if the simulating
// caller was cancelled the surviving waiters retry the simulation under
// their own contexts instead of inheriting the foreign cancellation
// (essential when two independent Labs share one cache).
func (c *RunCache) Run(ctx context.Context, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
	return c.run(ctx, nil, bench, opts, cfg)
}

// Runner returns an exp.Runner that memoizes sim through this cache: on a
// miss the triple is simulated by sim instead of exp.DirectRun, with the
// same coalescing, persistence, and eviction behavior as Run. This is how
// a caller attaches instrumentation (e.g. a counter-only observer) to the
// simulations a shared cache actually executes — coalesced waiters and
// cache hits never invoke sim. A nil sim is exactly Run.
func (c *RunCache) Runner(sim exp.Runner) exp.Runner {
	return func(ctx context.Context, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
		return c.run(ctx, sim, bench, opts, cfg)
	}
}

func (c *RunCache) run(ctx context.Context, sim exp.Runner, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
	key := Key(bench, opts, cfg)

	for {
		c.mu.Lock()
		if res, ok := c.mem[key]; ok {
			c.mu.Unlock()
			c.memHits.Add(1)
			return res, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return kernels.Result{}, ctx.Err()
			}
			if f.err == nil {
				c.memHits.Add(1)
				return f.res, nil
			}
			if ctx.Err() == nil && (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
				// The filler's context died, not ours: retry the lookup.
				continue
			}
			return f.res, f.err
		}
		f := &inflightRun{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		f.res, f.err = c.fill(ctx, sim, key, bench, opts, cfg)

		c.mu.Lock()
		if f.err == nil {
			c.mem[key] = f.res
		}
		delete(c.inflight, key)
		// The store above may have pushed the disk tier past its budget
		// while this key was eviction-exempt (in flight); settle now.
		c.evictLocked()
		c.mu.Unlock()
		close(f.done)
		return f.res, f.err
	}
}

// fill resolves a memory miss: disk first, then a real simulation (whose
// result is written back to disk).
func (c *RunCache) fill(ctx context.Context, sim exp.Runner, key, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
	if c.dir != "" {
		if res, ok := c.loadDisk(key, bench); ok {
			c.diskHits.Add(1)
			return res, nil
		}
	}
	c.misses.Add(1)
	if sim == nil {
		sim = exp.DirectRun
	}
	res, err := sim(ctx, bench, opts, cfg)
	if err != nil {
		return kernels.Result{}, err
	}
	if c.dir != "" {
		// Persistence is an optimization: a full disk or read-only cache
		// dir must not discard a completed simulation. The result still
		// lands in the memory tier; WriteErrors records the failure.
		if err := c.storeDisk(key, bench, opts, cfg, res); err != nil {
			c.writeErrs.Add(1)
		}
	}
	return res, nil
}

// loadDisk reads and validates a run record; any mismatch, unreadable
// file, or corruption (including a crash-truncated write) is treated as
// a miss — the cache can always fall back to simulating. A valid load
// freshens the record's LRU position.
func (c *RunCache) loadDisk(key, bench string) (kernels.Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return kernels.Result{}, false
	}
	var rec runRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return kernels.Result{}, false
	}
	// The stored inputs must hash back to the key that addressed the
	// record; a renamed or hand-edited file is a miss, not a wrong hit.
	// A record predating the stats registry (no snapshot) is also a miss:
	// re-simulating is deterministic and cheap, while serving it would
	// silently hand the "stats" experiment an empty snapshot.
	if rec.Schema != SchemaVersion || rec.Bench != bench ||
		rec.Result.Snapshot.Schema != stats.SnapshotSchema ||
		Key(rec.Bench, rec.Opts, rec.Cfg) != key {
		return kernels.Result{}, false
	}
	c.mu.Lock()
	c.touchLocked(key, int64(len(data)))
	c.mu.Unlock()
	return rec.Result, true
}

// storeDisk writes a run record atomically (temp file + fsync + rename)
// so neither a concurrent reader nor a crash mid-write can ever surface
// a partial record under the key's path: an interrupted write leaves only
// a .tmp file, which addresses nothing and is reclaimed on the next
// cache construction. A successful store updates the size accounting and
// evicts least-recently-used records past the byte budget.
func (c *RunCache) storeDisk(key, bench string, opts kernels.Options, cfg machine.Config, res kernels.Result) error {
	data, err := Marshal(runRecord{SchemaVersion, bench, opts, cfg, res})
	if err != nil {
		return fmt.Errorf("results: encode run record: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "run_*.tmp")
	if err != nil {
		return fmt.Errorf("results: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: cache write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: cache write: %w", err)
	}
	c.mu.Lock()
	c.touchLocked(key, int64(len(data)))
	c.evictLocked()
	c.mu.Unlock()
	return nil
}

// touchLocked records key's current byte size and moves it to the
// most-recently-used end. Callers hold c.mu.
func (c *RunCache) touchLocked(key string, size int64) {
	if old, ok := c.diskSize[key]; ok {
		c.diskBytes += size - old
		c.diskSize[key] = size
		c.lru.MoveToFront(c.lruElem[key])
		return
	}
	c.diskSize[key] = size
	c.diskBytes += size
	c.lruElem[key] = c.lru.PushFront(key)
}

// evictLocked removes least-recently-used disk records until the tier
// fits its byte budget. Records whose key has an in-flight coalesced
// load are exempt — the filler may be mid-read of that very file — and
// are retried on the next eviction pass (run() settles accounts when an
// in-flight entry completes). Callers hold c.mu.
func (c *RunCache) evictLocked() {
	if c.maxDiskBytes <= 0 {
		return
	}
	for e := c.lru.Back(); e != nil && c.diskBytes > c.maxDiskBytes; {
		key := e.Value.(string)
		prev := e.Prev()
		if _, busy := c.inflight[key]; busy {
			e = prev
			continue
		}
		os.Remove(c.path(key))
		c.diskBytes -= c.diskSize[key]
		delete(c.diskSize, key)
		c.lru.Remove(e)
		delete(c.lruElem, key)
		c.evictions.Add(1)
		e = prev
	}
}
