package results

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"

	"sfence/internal/stats"
)

// BaselineChange summarizes one artifact's drift against the committed
// baseline file of the same name.
type BaselineChange struct {
	Artifact string
	// Status is "unchanged", "changed", or "new" (no baseline file).
	Status string
	// Deltas lists the leaf-level value changes for a "changed"
	// artifact: every numeric leaf of the JSON document, addressed by
	// path ("data.groups[0].bars[2].total"), diffed via
	// stats.Snapshot.Diff.
	Deltas []stats.Delta
}

// DiffBaseline renders the suite's artifacts and compares each against
// the file already in dir — the committed baseline when dir is the repo
// root. Nothing is written; the result says exactly what a subsequent
// WriteArtifacts(dir) would change. Byte-identical artifacts report
// "unchanged"; otherwise the two documents are flattened into synthetic
// snapshots (one sample per numeric leaf) and diffed.
func (s *Suite) DiffBaseline(dir string) ([]BaselineChange, error) {
	arts, err := s.Artifacts()
	if err != nil {
		return nil, err
	}
	out := make([]BaselineChange, 0, len(arts))
	for _, a := range arts {
		c := BaselineChange{Artifact: a.Name}
		old, err := os.ReadFile(filepath.Join(dir, a.Name))
		switch {
		case os.IsNotExist(err):
			c.Status = "new"
		case err != nil:
			return nil, fmt.Errorf("results: baseline %s: %w", a.Name, err)
		case string(old) == string(a.Data):
			c.Status = "unchanged"
		default:
			c.Status = "changed"
			c.Deltas = flattenJSON(a.Data).Diff(flattenJSON(old))
		}
		out = append(out, c)
	}
	return out, nil
}

// flattenJSON decodes a JSON document into a synthetic snapshot with one
// sample per numeric or boolean leaf, named by its path. Unparseable
// documents flatten to a single marker sample, so a corrupt baseline
// shows up as a wholesale change rather than an error.
func flattenJSON(data []byte) stats.Snapshot {
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		return stats.Snapshot{Samples: []stats.Sample{{Name: "(unparseable)", Kind: "text"}}}
	}
	var samples []stats.Sample
	var walk func(path string, v any)
	walk = func(path string, v any) {
		switch x := v.(type) {
		case map[string]any:
			keys := make([]string, 0, len(x))
			for k := range x {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				p := k
				if path != "" {
					p = path + "." + k
				}
				walk(p, x[k])
			}
		case []any:
			for i, e := range x {
				walk(fmt.Sprintf("%s[%d]", path, i), e)
			}
		case float64:
			if x == math.Trunc(x) && math.Abs(x) < 1e15 {
				samples = append(samples, stats.Sample{Name: path, Kind: "value", Value: int64(x)})
			} else {
				samples = append(samples, stats.Sample{Name: path, Kind: stats.KindFormula, Float: x})
			}
		case bool:
			var b int64
			if x {
				b = 1
			}
			samples = append(samples, stats.Sample{Name: path, Kind: "value", Value: b})
		}
	}
	walk("", doc)
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	return stats.Snapshot{Samples: samples}
}
