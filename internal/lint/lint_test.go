package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// parsePkg builds a Package from in-memory sources (filename -> content).
func parsePkg(t *testing.T, dir string, files map[string]string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	p := &Package{Dir: dir, Fset: fset, Files: map[string]*ast.File{}}
	for name, src := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		p.Files[filepath.Join(dir, name)] = f
		if p.Name == "" {
			p.Name = f.Name.Name
		}
	}
	return p
}

func TestNoGlobalHooksFlagsIdentifiers(t *testing.T) {
	p := parsePkg(t, "internal/demo", map[string]string{
		"demo.go": `// Package demo is a test fixture.
package demo

// SetProgress in a comment is fine; the identifier below is not.
func SetRunner(f func()) { hooks = append(hooks, f) }

var hooks []func()
`,
	})
	got := NoGlobalHooks.Run(p)
	if len(got) != 1 || !strings.Contains(got[0].Msg, "SetRunner") {
		t.Fatalf("findings = %v, want one SetRunner finding", got)
	}
	if got[0].Pos.Line != 5 {
		t.Errorf("finding at line %d, want 5 (comments must not be flagged)", got[0].Pos.Line)
	}
}

func TestNoGlobalHooksCleanPackage(t *testing.T) {
	p := parsePkg(t, "internal/demo", map[string]string{
		"demo.go": "// Package demo is a test fixture.\npackage demo\n\nfunc SetLimit(n int) {}\n",
	})
	if got := NoGlobalHooks.Run(p); len(got) != 0 {
		t.Fatalf("findings = %v, want none", got)
	}
}

func TestRegistryCountersFlagsRawFields(t *testing.T) {
	p := parsePkg(t, "internal/cpu", map[string]string{
		"config.go": `// Package cpu is a test fixture.
package cpu

type Stats struct {
	Retired Counter
	Stalls  uint64
	Buckets []int64
}

type Counter struct{ v uint64 }

type Unguarded struct{ N int }
`,
	})
	got := RegistryCounters.Run(p)
	if len(got) != 2 {
		t.Fatalf("findings = %v, want raw uint64 and []int64 fields flagged", got)
	}
	for _, f := range got {
		if !strings.Contains(f.Msg, "Stats declares a raw") {
			t.Errorf("unexpected finding: %v", f)
		}
	}
}

func TestRegistryCountersIgnoresOtherPackages(t *testing.T) {
	p := parsePkg(t, "internal/exp", map[string]string{
		"exp.go": "// Package exp is a test fixture.\npackage exp\n\ntype Stats struct{ N int }\n",
	})
	if got := RegistryCounters.Run(p); len(got) != 0 {
		t.Fatalf("findings = %v, want none outside guarded packages", got)
	}
}

func TestPackageDocs(t *testing.T) {
	missing := parsePkg(t, "internal/demo", map[string]string{
		"a.go": "package demo\n",
		"b.go": "// helper file\npackage demo\n",
	})
	if got := PackageDocs.Run(missing); len(got) != 1 {
		t.Fatalf("findings = %v, want one missing-doc finding", got)
	}
	documented := parsePkg(t, "internal/demo", map[string]string{
		"a.go": "package demo\n",
		"doc.go": `// Package demo is a test fixture with a proper doc
// comment spanning two lines.
package demo
`,
	})
	if got := PackageDocs.Run(documented); len(got) != 0 {
		t.Fatalf("findings = %v, want none", got)
	}
	outside := parsePkg(t, "cmd/demo", map[string]string{"main.go": "package main\n"})
	if got := PackageDocs.Run(outside); len(got) != 0 {
		t.Fatalf("findings = %v, want none outside internal/", got)
	}
}

// TestRepositoryIsClean runs the full analyzer set over the actual
// repository — the same invocation CI's vet step performs.
func TestRepositoryIsClean(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded %d packages, expected the full repository", len(pkgs))
	}
	for _, f := range Run(pkgs, Analyzers()) {
		t.Errorf("%s", f)
	}
}

func TestLoadSkipsTestdata(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if strings.Contains(p.Dir, "testdata") {
			t.Errorf("Load descended into %s", p.Dir)
		}
	}
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
