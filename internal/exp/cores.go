package exp

import (
	"context"
	"fmt"
	"strings"

	"sfence/internal/kernels"
)

// CoreCounts are the machine widths the fig-cores experiment sweeps. 8 is
// the paper's Table III machine, 64 the old directory-bitmask ceiling,
// and 256 exercises the paged sharer representation end to end.
var CoreCounts = []int{8, 64, 256}

// coresBenches are the scalable workloads of the sweep: the balanced
// ring-synchronized scale kernel and its straggler variant, whose
// barrier tail grows with core count (see internal/kernels/scale.go).
var coresBenches = []string{"scale", "scale-imb"}

// CoresRow is one (benchmark, cores, mode) cell of the core-count sweep.
// Everything in it is simulated (deterministic) data; wall-clock
// measurements of the parallel simulator itself live in BENCH_SIMPERF.
type CoresRow struct {
	Bench    string `json:"bench"`
	Cores    int    `json:"cores"`
	Mode     string `json:"mode"`
	Ops      int    `json:"ops"`
	Workload int    `json:"workload"`
	Cycles   int64  `json:"cycles"`
	// FenceStallFrac is the fence-stall share of total core time.
	FenceStallFrac float64 `json:"fenceStallFrac"`
	Committed      uint64  `json:"committed"`
	L1Misses       uint64  `json:"l1Misses"`
}

// coresSizing returns (ops, workload) for the sweep at a scale. The
// straggler variant multiplies thread 0's compute by 8x internally, so
// these stay small to keep the 256-core rows affordable.
func coresSizing(sc Scale) (int, int) {
	if sc == Quick {
		return 2, 1
	}
	return 4, 2
}

// FigureCores is the core-count sweep (beyond the paper): the scale
// kernels at 8, 64, and 256 cores under traditional and scoped fences.
// It answers the scaling form of the paper's question — does S-Fence's
// advantage survive machine width? — and doubles as the end-to-end
// exercise of the many-core memory system (paged sharer sets, 256-way
// invalidation broadcasts) inside the ordinary experiment pipeline.
func (s *Session) FigureCores(ctx context.Context, sc Scale) ([]CoresRow, error) {
	ops, wl := coresSizing(sc)
	modes := []struct {
		label string
		mode  kernels.FenceMode
	}{{"T", kernels.Traditional}, {"S", kernels.Scoped}}

	var runs []*figRun
	type cell struct {
		bench string
		cores int
		mode  string
	}
	var cells []cell
	for _, bench := range coresBenches {
		for _, cores := range CoreCounts {
			for _, mc := range modes {
				cfg := baseConfig()
				cfg.Cores = cores
				runs = append(runs, &figRun{bench: bench, opts: kernels.Options{
					Mode: mc.mode, Threads: cores, Ops: ops, Workload: wl,
				}, cfg: cfg})
				cells = append(cells, cell{bench, cores, mc.label})
			}
		}
	}
	if err := s.execute(ctx, "Core-count sweep", runs); err != nil {
		return nil, err
	}
	out := make([]CoresRow, len(runs))
	for i, r := range runs {
		out[i] = CoresRow{
			Bench:          cells[i].bench,
			Cores:          cells[i].cores,
			Mode:           cells[i].mode,
			Ops:            ops,
			Workload:       wl,
			Cycles:         r.res.Cycles,
			FenceStallFrac: r.res.FenceStallFraction(),
			Committed:      r.res.Stats.Committed,
			L1Misses:       r.res.Stats.L1Misses,
		}
	}
	return out, nil
}

// RenderCores formats the core-count sweep as a table with one line per
// (benchmark, cores) pair and an S-Fence speedup column.
func RenderCores(rows []CoresRow) string {
	var sb strings.Builder
	sb.WriteString("Core-count sweep — scale kernels at 8/64/256 cores\n")
	sb.WriteString(fmt.Sprintf("%-11s%7s%14s%14s%9s%12s%12s\n",
		"bench", "cores", "T cycles", "S cycles", "T/S", "T stall", "S stall"))
	byKey := map[[2]string]CoresRow{}
	for _, r := range rows {
		byKey[[2]string{fmt.Sprintf("%s/%d", r.Bench, r.Cores), r.Mode}] = r
	}
	seen := map[string]bool{}
	for _, r := range rows {
		key := fmt.Sprintf("%s/%d", r.Bench, r.Cores)
		if seen[key] {
			continue
		}
		seen[key] = true
		T, S := byKey[[2]string{key, "T"}], byKey[[2]string{key, "S"}]
		speedup := 0.0
		if S.Cycles > 0 {
			speedup = float64(T.Cycles) / float64(S.Cycles)
		}
		sb.WriteString(fmt.Sprintf("%-11s%7d%14d%14d%8.3fx%11.1f%%%11.1f%%\n",
			T.Bench, T.Cores, T.Cycles, S.Cycles, speedup,
			100*T.FenceStallFrac, 100*S.FenceStallFrac))
	}
	return sb.String()
}
