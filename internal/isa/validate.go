package isa

import "fmt"

// Validate checks the structural well-formedness a correct compiler must
// guarantee (Section IV's compiler support):
//
//   - every entry point and branch/jump target is inside the program,
//   - register indices are in range,
//   - class-scope brackets are balanced along every control-flow path:
//     each pc has one consistent fs_start/fs_end nesting depth, no fs_end
//     appears at depth zero, and no halt (or fall-off-the-end) occurs
//     inside an open scope.
//
// The check is a depth-flow analysis over the CFG from every entry
// point. Code unreachable from any entry is then flowed from depth zero
// — an assembler must not emit dead regions that would be ill-scoped if
// ever branched to, and a program whose only entries are mid-code still
// gets its prefix checked.
func (p *Program) Validate() error {
	depth := make([]int, len(p.Code)+1) // +1: the implicit-halt pc
	seen := make([]bool, len(p.Code)+1)

	for name, pc := range p.Entries {
		if pc < 0 || pc > len(p.Code) {
			return fmt.Errorf("isa: entry %q: pc %d outside program of %d instructions", name, pc, len(p.Code))
		}
	}
	for i, in := range p.Code {
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs || in.Rs3 >= NumRegs {
			return fmt.Errorf("isa: pc %d: register out of range in %s", i, in)
		}
		if in.Op == OpJmp || in.IsBranch() {
			if in.Imm < 0 || in.Imm > int64(len(p.Code)) {
				return fmt.Errorf("isa: pc %d: control target %d out of range", i, in.Imm)
			}
		}
	}

	type node struct {
		pc, depth int
	}
	var stack []node
	for _, pc := range p.Entries {
		stack = append(stack, node{pc, 0})
	}
	if len(stack) == 0 && len(p.Code) > 0 {
		stack = append(stack, node{0, 0})
	}
	push := func(pc, d int) error {
		if pc >= len(p.Code) { // implicit halt
			if d != 0 {
				return fmt.Errorf("isa: program can run off the end inside %d open class scope(s)", d)
			}
			return nil
		}
		if seen[pc] {
			if depth[pc] != d {
				return fmt.Errorf("isa: pc %d reachable at scope depths %d and %d (unbalanced fs_start/fs_end)", pc, depth[pc], d)
			}
			return nil
		}
		seen[pc] = true
		depth[pc] = d
		stack = append(stack, node{pc, d})
		return nil
	}
	// Seed entries through push for consistent bookkeeping.
	entrySeeds := stack
	stack = nil
	for _, n := range entrySeeds {
		if err := push(n.pc, n.depth); err != nil {
			return err
		}
	}

	drain := func() error {
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			in := p.Code[n.pc]
			d := n.depth
			switch in.Op {
			case OpHalt:
				if d != 0 {
					return fmt.Errorf("isa: pc %d: halt inside %d open class scope(s)", n.pc, d)
				}
				continue
			case OpFsStart:
				d++
			case OpFsEnd:
				if d == 0 {
					return fmt.Errorf("isa: pc %d: fs_end with no open scope", n.pc)
				}
				d--
			case OpJmp:
				if err := push(int(in.Imm), d); err != nil {
					return err
				}
				continue
			case OpBeq, OpBne, OpBlt, OpBge:
				if err := push(int(in.Imm), d); err != nil {
					return err
				}
			}
			if err := push(n.pc+1, d); err != nil {
				return err
			}
		}
		return nil
	}
	if err := drain(); err != nil {
		return err
	}
	// Unreachable code is flowed from depth zero: its brackets must be
	// balanced in their own right, exactly as if the dead pc were an
	// entry point.
	for pc := range p.Code {
		if seen[pc] {
			continue
		}
		if err := push(pc, 0); err != nil {
			return err
		}
		if err := drain(); err != nil {
			return err
		}
	}
	return nil
}
