package kernels

import (
	"fmt"

	"sfence/internal/graph"
	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
)

func init() {
	register(Info{
		Name:        "ptc",
		ScopeType:   "class",
		Group:       "full-app",
		Description: "Parallel transitive closure [15]: multi-source reachability propagation over work-stealing queues; class scope in the WSQ",
		Build:       buildPTC,
	})
}

// ptcSources is the number of closure sources (one bit each);
// ptcSourceBits is the task-encoding shift (log2 of ptcSources).
const (
	ptcSources    = 16
	ptcSourceBits = 4
)

// buildPTC builds the parallel transitive closure application: reach[v] is
// a bitmask of sources that reach v. A task is a (vertex, source) pair;
// processing it claims the source bit in every unreached neighbor with a
// CAS and enqueues exactly one follow-up task per claimed bit, so the
// total work is V*sources claims regardless of thread interleaving —
// which keeps traditional-vs-scoped comparisons meaningful. Task
// processing is heavier than pst (per-edge CAS merge plus a compute
// block), so fences are a smaller share of execution — the paper's ptc
// profile. Termination uses a pending-task counter: a task is counted
// from enqueue until its processing completes.
func buildPTC(opts Options) (*Kernel, error) {
	opts = opts.withDefaults(8, 256, 0)
	if opts.Threads < 2 || opts.Threads > 16 {
		return nil, fmt.Errorf("ptc: threads %d out of range [2,16]", opts.Threads)
	}
	s := newScopeCtx(opts, isa.ScopeClass)
	g, err := graph.RandomConnected(opts.Ops, 4, opts.Seed+7)
	if err != nil {
		return nil, err
	}
	lay := memsys.NewLayout(4096, 48<<20)
	// A vertex can be re-enqueued once per new reach bit, so the total
	// number of puts (and hence any queue's outstanding tasks) is bounded
	// by V * sources.
	pl := buildPSTLayout(lay, g, opts.Threads, false, int64(g.V)*ptcSources)

	const (
		rgRV   = isa.R17 // reach value of the current vertex
		rgOld  = isa.R16
		rgNew  = isa.R15
		rgComp = isa.R14
	)

	b := isa.NewBuilder()
	b.Entry("worker")
	b.Inline(func(b *isa.Builder) {
		b.MovI(rgNeg1, -1)
		b.Label("mainloop")
		emitWSQTake(b, s, rgMyQ, rgTask, pl.mask)
		b.Bne(rgTask, isa.R0, "process")
		b.MovI(rgVict, 0)
		b.Label("sweep")
		b.Beq(rgVict, rgMe, "nextvict")
		b.MovI(rgTmp, wsqDescStride)
		b.Mul(rgTmp, rgVict, rgTmp)
		b.Add(rgTmp, rgQBase, rgTmp)
		emitWSQSteal(b, s, rgTmp, rgTask, pl.mask)
		b.Blt(isa.R0, rgTask, "process")
		b.Label("nextvict")
		b.AddI(rgVict, rgVict, 1)
		b.Blt(rgVict, rgNT, "sweep")
		// Quiescent when no task is queued or in flight.
		b.Load(rgTmp, rgCnt, 0)
		b.Bne(rgTmp, isa.R0, "mainloop")
		b.Halt()

		b.Label("process")
		// Task encoding: ((vertex << sourceShift) | source) + 1.
		b.AddI(rgTask, rgTask, -1)
		b.AndI(rgRV, rgTask, ptcSources-1)   // source index
		b.ShrI(rgVtx, rgTask, ptcSourceBits) // vertex
		b.MovI(rgTmp, 1)
		b.Shl(rgRV, rgTmp, rgRV) // source bit
		b.ShlI(rgTmp, rgVtx, 3)
		b.Add(rgTmp, rgRowPtr, rgTmp)
		b.Load(rgBeg, rgTmp, 0)
		b.Load(rgEnd, rgTmp, 8)
		b.Label("nbloop")
		b.Bge(rgBeg, rgEnd, "taskdone")
		b.ShlI(rgTmp, rgBeg, 3)
		b.Add(rgTmp, rgCol, rgTmp)
		b.Load(rgNb, rgTmp, 0)
		b.ShlI(rgAddr, rgNb, 3)
		b.Add(rgAddr, rgData, rgAddr)
		// Claim the source bit in the neighbor: whoever sets the bit
		// (exactly one thread) publishes the follow-up task.
		b.Label("merge")
		b.Load(rgOld, rgAddr, 0)
		b.And(rgNew, rgOld, rgRV)
		b.Bne(rgNew, isa.R0, "nextnb") // bit already set: claimed before
		b.Or(rgNew, rgOld, rgRV)
		b.CAS(rgVal, rgAddr, 0, rgOld, rgNew)
		b.Beq(rgVal, isa.R0, "merge")
		// Claimed: account the new task, then publish it.
		emitAtomicAdd(b, rgCnt, 1)
		b.ShlI(rgTmp2, rgNb, ptcSourceBits)
		b.AndI(rgTmp, rgTask, ptcSources-1) // source index again
		b.Or(rgTmp2, rgTmp2, rgTmp)
		b.AddI(rgTmp2, rgTmp2, 1)
		emitWSQPut(b, s, rgMyQ, rgTmp2, pl.mask)
		b.Label("nextnb")
		// Per-edge compute block (closure work is heavier than pst).
		b.MovI(rgComp, 6)
		b.Label("edgework")
		b.Mul(rgNew, rgNew, rgNew)
		b.XorI(rgNew, rgNew, 5)
		b.AddI(rgComp, rgComp, -1)
		b.Bne(rgComp, isa.R0, "edgework")
		b.AddI(rgBeg, rgBeg, 1)
		b.Jmp("nbloop")
		b.Label("taskdone")
		emitAtomicAdd(b, rgCnt, -1)
		b.Jmp("mainloop")
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	sources := make([]int32, ptcSources)
	for i := range sources {
		sources[i] = int32(i * (g.V / ptcSources))
	}
	memInit := map[int64]int64{}
	// Seed the sources round-robin into the queues; PENDING counts them.
	perQ := make([]int64, opts.Threads)
	for i, src := range sources {
		t := i % opts.Threads
		memInit[pl.bufs[t]+perQ[t]*8] = int64(src)<<ptcSourceBits + int64(i) + 1
		perQ[t]++
	}
	for t := 0; t < opts.Threads; t++ {
		memInit[pl.qdescs+int64(t)*wsqDescStride+wsqTailOff] = perQ[t]
		memInit[pl.qdescs+int64(t)*wsqDescStride+wsqBufOff] = pl.bufs[t]
	}
	memInit[pl.counter] = int64(len(sources))

	threads := make([]machine.Thread, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		threads[t] = machine.Thread{Entry: "worker", Regs: map[isa.Reg]int64{
			rgMyQ: pl.qdescs + int64(t)*wsqDescStride, rgQBase: pl.qdescs,
			rgRowPtr: pl.rowPtr, rgCol: pl.col, rgData: pl.perNode,
			rgCnt: pl.counter,
			rgNT:  int64(opts.Threads), rgMe: int64(t),
		}}
	}

	want := graph.ReachClosure(g, sources)
	return &Kernel{
		Name:    "ptc",
		Program: p,
		Regions: regionsFor(lay, classifyPSTRegion),
		Threads: threads,
		MemInit: memInit,
		InitImage: func(img *memsys.Image) {
			pl.initGraph(img)
			for i, src := range sources {
				img.Store(pl.perNode+int64(src)*8, 1<<uint(i))
			}
		},
		Verify: func(img *memsys.Image) error {
			if got := img.Load(pl.counter); got != 0 {
				return fmt.Errorf("ptc: pending counter = %d at exit", got)
			}
			for v := 0; v < g.V; v++ {
				got := img.Load(pl.perNode + int64(v)*8)
				if got != want[v] {
					return fmt.Errorf("ptc: reach[%d] = %b, want %b", v, got, want[v])
				}
			}
			return nil
		},
	}, nil
}
