package ref

import "testing"

// FuzzConcDifferential is the concurrent, full-machine differential: any
// seed generates an N-thread scenario in three fence lowerings
// (traditional, class-scoped, set-scoped) and CheckConcurrent asserts
//
//	(a) every variant's machine execution matches the sequentially-
//	    consistent round-robin oracle on the checked projection
//	    (per-thread R1-R12 plus the scenario's memory footprint) —
//	    i.e. equivalence modulo the memory model's allowed reorderings;
//	(b) all three variants therefore agree on final architectural state:
//	    fence scoping is semantics-preserving, the paper's core claim;
//	(c) naive vs event-driven clocks stay bit-identical at hierarchy
//	    depths 2 and 3 — the clock-equivalence suite as a generative
//	    property.
//
// Run with: go test -fuzz=FuzzConcDifferential ./internal/ref
// The committed corpus under testdata/fuzz/FuzzConcDifferential replays
// on every plain `go test` run.
func FuzzConcDifferential(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		if _, err := CheckConcurrent(seed, []int{2, 3}); err != nil {
			t.Fatal(err)
		}
	})
}
