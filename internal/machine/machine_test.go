package machine

import (
	"context"
	"strings"
	"testing"
	"time"

	"sfence/internal/cpu"
	"sfence/internal/isa"
)

// twoThreadSum builds a program where each thread sums its own range into
// its own result slot.
func twoThreadSum() *isa.Program {
	b := isa.NewBuilder()
	body := func(b *isa.Builder) {
		// r1 = base index, r2 = count, r3 = result address
		b.MovI(isa.R4, 0) // sum
		b.Label("loop")
		b.Add(isa.R4, isa.R4, isa.R1)
		b.AddI(isa.R1, isa.R1, 1)
		b.AddI(isa.R2, isa.R2, -1)
		b.Bne(isa.R2, isa.R0, "loop")
		b.Store(isa.R3, 0, isa.R4)
		b.Halt()
	}
	b.Entry("t0")
	b.Inline(body)
	b.Entry("t1")
	b.Inline(body)
	return b.MustBuild()
}

func TestTwoCoresRunIndependently(t *testing.T) {
	p := twoThreadSum()
	cfg := DefaultConfig()
	cfg.Cores = 2
	m, err := New(cfg, p, []Thread{
		{Entry: "t0", Regs: map[isa.Reg]int64{isa.R1: 1, isa.R2: 10, isa.R3: 4096}},
		{Entry: "t1", Regs: map[isa.Reg]int64{isa.R1: 100, isa.R2: 5, isa.R3: 8192}},
	})
	if err != nil {
		t.Fatal(err)
	}
	cycles, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cycles <= 0 {
		t.Error("no cycles elapsed")
	}
	if got := m.Image().Load(4096); got != 55 {
		t.Errorf("t0 sum = %d, want 55", got)
	}
	if got := m.Image().Load(8192); got != 510 {
		t.Errorf("t1 sum = %d, want 510", got)
	}
}

func TestMachineDeterminism(t *testing.T) {
	run := func() int64 {
		p := twoThreadSum()
		cfg := DefaultConfig()
		cfg.Cores = 2
		m, err := New(cfg, p, []Thread{
			{Entry: "t0", Regs: map[isa.Reg]int64{isa.R1: 1, isa.R2: 50, isa.R3: 4096}},
			{Entry: "t1", Regs: map[isa.Reg]int64{isa.R1: 1, isa.R2: 50, isa.R3: 8192}},
		})
		if err != nil {
			t.Fatal(err)
		}
		cycles, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs took %d and %d cycles", a, b)
	}
}

func TestMachineRejectsBadConfigs(t *testing.T) {
	p := twoThreadSum()
	cfg := DefaultConfig()
	cfg.Cores = 1
	if _, err := New(cfg, p, []Thread{{Entry: "t0"}, {Entry: "t1"}}); err == nil {
		t.Error("more threads than cores accepted")
	}
	if _, err := New(DefaultConfig(), p, nil); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := New(DefaultConfig(), p, []Thread{{Entry: "missing"}}); err == nil {
		t.Error("unknown entry accepted")
	}
	bad := DefaultConfig()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("0-core config accepted")
	}
	bad = DefaultConfig()
	bad.ImageSize = 10
	if err := bad.Validate(); err == nil {
		t.Error("tiny image accepted")
	}
}

func TestMachineRejectsUnbalancedScopes(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("bad")
	b.FsStart(1)
	b.Halt() // halt inside an open scope
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.Cores = 1
	if _, err := New(cfg, p, []Thread{{Entry: "bad"}}); err == nil {
		t.Error("unbalanced scope program accepted")
	}
}

func TestRunawayDetection(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("spin")
	b.Label("l")
	b.Jmp("l")
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.MaxCycles = 1000
	m, err := New(cfg, p, []Thread{{Entry: "spin"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "exceeded") {
		t.Errorf("runaway not detected: %v", err)
	}
}

func TestFaultPropagation(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("bad")
	b.MovI(isa.R1, 3) // misaligned
	b.Load(isa.R2, isa.R1, 0)
	b.Halt()
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.Cores = 1
	m, err := New(cfg, p, []Thread{{Entry: "bad"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err == nil {
		t.Error("fault did not propagate from Run")
	}
}

func TestTotalStatsAggregates(t *testing.T) {
	p := twoThreadSum()
	cfg := DefaultConfig()
	cfg.Cores = 2
	m, err := New(cfg, p, []Thread{
		{Entry: "t0", Regs: map[isa.Reg]int64{isa.R1: 1, isa.R2: 3, isa.R3: 4096}},
		{Entry: "t1", Regs: map[isa.Reg]int64{isa.R1: 1, isa.R2: 3, isa.R3: 8192}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	tot := m.TotalStats()
	var manual cpu.Stats
	for i := 0; i < m.Cores(); i++ {
		manual.Add(m.Core(i).Stats())
	}
	if tot != manual {
		t.Error("TotalStats != sum of per-core stats")
	}
	if tot.CommittedStores != 2 {
		t.Errorf("stores = %d, want 2", tot.CommittedStores)
	}
}

// spinMachine builds a single-core machine that loops essentially forever
// (bounded only by MaxCycles), for cancellation tests. The loop carries an
// ever-growing counter so its architectural state never recurs: a bare
// Jmp-to-self is a periodic orbit the spin detector confirms and
// fast-forwards through any cycle budget in microseconds, which would let
// MaxCycles win the race against the context every time.
func spinMachine(t *testing.T, maxCycles int64) *Machine {
	t.Helper()
	b := isa.NewBuilder()
	b.Entry("spin")
	b.Label("l")
	b.AddI(1, 1, 1)
	b.Jmp("l")
	p := b.MustBuild()
	cfg := DefaultConfig()
	cfg.Cores = 1
	cfg.MaxCycles = maxCycles
	m, err := New(cfg, p, []Thread{{Entry: "spin"}})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunCancelledMidRun(t *testing.T) {
	m := spinMachine(t, 0) // DefaultMaxCycles: far longer than the test budget
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	cycles, err := m.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	if cycles <= 0 || cycles != m.Cycle() {
		t.Errorf("cancelled Run reported %d cycles, machine at %d", cycles, m.Cycle())
	}
}

func TestRunDeadlineTimeBoxes(t *testing.T) {
	m := spinMachine(t, 0)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := m.Run(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v to take effect", elapsed)
	}
}

func TestRunPreCancelledDoesNotStep(t *testing.T) {
	m := spinMachine(t, 1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cycles, err := m.Run(ctx)
	if err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if cycles != 0 {
		t.Errorf("pre-cancelled Run stepped %d cycles", cycles)
	}
}

// A nil context must behave like context.Background(): never cancel.
func TestRunNilContext(t *testing.T) {
	p := twoThreadSum()
	cfg := DefaultConfig()
	cfg.Cores = 2
	m, err := New(cfg, p, []Thread{
		{Entry: "t0", Regs: map[isa.Reg]int64{isa.R1: 1, isa.R2: 3, isa.R3: 4096}},
		{Entry: "t1", Regs: map[isa.Reg]int64{isa.R1: 1, isa.R2: 3, isa.R3: 8192}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(nil); err != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Fatalf("nil-context run failed: %v", err)
	}
}
