package exp

import (
	"context"
	"fmt"

	"sfence/internal/kernels"
)

// AblationNestedScopes sweeps the scope-hardware sizes on the
// nested-scope microbenchmark (the hidden "nested-scope" kernel),
// exposing the FSB entry-sharing and FSS overflow fallbacks that the
// Table IV benchmarks (nesting depth 1) never trigger. Like every other
// experiment, the runs go through the session's worker pool and runner,
// and hence its run cache.
func (s *Session) AblationNestedScopes(ctx context.Context, sc Scale) ([]AblationRow, error) {
	iters := 60
	if sc == Quick {
		iters = 25
	}
	var jobs []ablationJob
	for _, fsb := range []int{2, 3, 4} {
		for _, fss := range []int{1, 2, 4} {
			cfg := baseConfig()
			cfg.Cores = 1
			cfg.Core.FSBEntries = fsb
			cfg.Core.FSSEntries = fss
			jobs = append(jobs, ablationJob{
				row: AblationRow{Bench: fmt.Sprintf("nested/fsb%d", fsb), Param: "FSSEntries", Value: fss},
				run: figRun{bench: "nested-scope", opts: kernels.Options{
					Mode: kernels.Scoped, Ops: iters,
				}, cfg: cfg},
			})
		}
	}
	return s.runAblation(ctx, "Ablation NestedScopes", jobs)
}
