// Quickstart: assemble a tiny two-thread program that uses a class-scoped
// fence, run it on the simulated 8-core machine, and read the results.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"sfence"
)

func main() {
	b := sfence.NewBuilder()

	// Thread 0: a "producer" method of a message class. The stores to the
	// message fields and the mailbox flag are inside the class scope
	// (cid 1); the private scratch store before them is not, so the
	// class-scoped fence does not wait for it.
	b.Entry("producer")
	b.MovI(sfence.R1, 1<<16) // private scratch (cold line: slow store)
	b.MovI(sfence.R2, 4096)  // message base
	b.MovI(sfence.R3, 42)    // payload
	b.MovI(sfence.R4, 1)     // flag value
	b.Store(sfence.R1, 0, sfence.R3)
	b.FsStart(1)
	b.Store(sfence.R2, 0, sfence.R3)  // message.payload = 42
	b.Fence(sfence.ScopeClass)        // order payload before flag...
	b.Store(sfence.R2, 64, sfence.R4) // message.ready = 1
	b.FsEnd(1)
	b.Halt()

	// Thread 1: spin on the flag, then read the payload.
	b.Entry("consumer")
	b.MovI(sfence.R2, 4096)
	b.Label("spin")
	b.Load(sfence.R5, sfence.R2, 64)
	b.Beq(sfence.R5, sfence.R0, "spin")
	b.Fence(sfence.ScopeGlobal)
	b.Load(sfence.R6, sfence.R2, 0) // guaranteed to see 42
	b.MovI(sfence.R7, 8192)
	b.Store(sfence.R7, 0, sfence.R6) // publish the observation
	b.Halt()

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	m, err := sfence.NewMachine(sfence.DefaultConfig(), prog, []sfence.Thread{
		{Entry: "producer"},
		{Entry: "consumer"},
	})
	if err != nil {
		log.Fatal(err)
	}
	// Simulations are cancellable: this context time-boxes the run (it
	// finishes in microseconds; the deadline is a safety net).
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	cycles, err := m.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("finished in %d cycles\n", cycles)
	fmt.Printf("consumer observed payload: %d\n", m.Image().Load(8192))
	for i := 0; i < m.Cores(); i++ {
		s := m.Core(i).Stats()
		fmt.Printf("core %d: %d instructions, %d fences, %d fence-stall cycles\n",
			i, s.Committed, s.CommittedFences, s.FenceStallCycles)
	}
}
