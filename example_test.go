package sfence_test

import (
	"context"
	"fmt"
	"log"

	"sfence"
)

// ExampleNewBuilder assembles a two-thread message-passing program whose
// producer uses a class-scoped fence: the fence orders the message
// stores against the ready flag without waiting for the private scratch
// store outside the scope.
func ExampleNewBuilder() {
	b := sfence.NewBuilder()

	b.Entry("producer")
	b.MovI(sfence.R1, 1<<16) // private scratch, outside the scope
	b.MovI(sfence.R2, 4096)  // message base
	b.MovI(sfence.R3, 42)    // payload
	b.MovI(sfence.R4, 1)     // flag value
	b.Store(sfence.R1, 0, sfence.R3)
	b.FsStart(1)
	b.Store(sfence.R2, 0, sfence.R3)  // message.payload = 42
	b.Fence(sfence.ScopeClass)        // payload before flag
	b.Store(sfence.R2, 64, sfence.R4) // message.ready = 1
	b.FsEnd(1)
	b.Halt()

	b.Entry("consumer")
	b.MovI(sfence.R2, 4096)
	b.Label("spin")
	b.Load(sfence.R5, sfence.R2, 64)
	b.Beq(sfence.R5, sfence.R0, "spin")
	b.Fence(sfence.ScopeGlobal)
	b.Load(sfence.R6, sfence.R2, 0)
	b.MovI(sfence.R7, 8192)
	b.Store(sfence.R7, 0, sfence.R6)
	b.Halt()

	prog, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	m, err := sfence.NewMachine(sfence.DefaultConfig(), prog, []sfence.Thread{
		{Entry: "producer"}, {Entry: "consumer"},
	})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("consumer observed payload: %d\n", m.Image().Load(8192))
	// Output: consumer observed payload: 42
}

// ExampleRunBenchmark runs one of the paper's Table IV benchmarks —
// Chase-Lev work-stealing queues with scoped fences — and inspects the
// measurements. Every benchmark run verifies its architectural result,
// so a returned Result is also a correctness witness.
func ExampleRunBenchmark() {
	res, err := sfence.RunBenchmark("wsq", sfence.BenchmarkOptions{
		Mode: sfence.Scoped, Threads: 4, Ops: 30, Workload: 1,
	}, sfence.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified: %t\n", res.Cycles > 0)
	fmt.Printf("committed fences: %t\n", res.Stats.CommittedFences > 0)
	fmt.Printf("fence-stall fraction in [0,1]: %t\n",
		res.FenceStallFraction() >= 0 && res.FenceStallFraction() <= 1)
	// Output:
	// verified: true
	// committed fences: true
	// fence-stall fraction in [0,1]: true
}

// ExampleNewLab builds a Lab session — the context-aware, option-based
// experiment API — and regenerates the paper's workload-sweep experiment
// at quick scale through the experiment registry. The Lab owns its run
// cache, worker pool, and progress sink, so several Labs can run
// experiments concurrently in one process; the context can cancel or
// time-box every simulation mid-cycle-loop.
func ExampleNewLab() {
	lab := sfence.NewLab(
		sfence.WithScale(sfence.Quick),
		sfence.WithCache(sfence.NewMemCache()),
	)
	res, err := lab.Run(context.Background(), "fig12")
	if err != nil {
		log.Fatal(err)
	}
	series := res.Data.([]sfence.SpeedupSeries)
	fmt.Printf("curves: %d\n", len(series))
	allWin := true
	for _, s := range series {
		peak, _ := s.Peak()
		if peak <= 1.0 {
			allWin = false
		}
	}
	fmt.Printf("every benchmark peaks above 1.0x: %t\n", allWin)
	// The simulator is deterministic, so the qualitative result —
	// S-Fence always wins somewhere on the sweep — is stable.
	// Output:
	// curves: 4
	// every benchmark peaks above 1.0x: true
}

// ExampleLab_stats drills into the full hierarchical stats snapshot of a
// benchmark run — every per-core pipeline, S-Fence hardware, and cache
// counter plus machine totals, under stable dotted names. The same
// snapshot set for every Table IV benchmark is available as the "stats"
// experiment (lab.Run(ctx, "stats")); here a single run's snapshot is
// read through BenchmarkResult.Snapshot.
func ExampleLab_stats() {
	res, err := sfence.RunBenchmarkContext(context.Background(), "dekker",
		sfence.BenchmarkOptions{Mode: sfence.Scoped, Ops: 10}, sfence.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	snap := res.Snapshot
	fmt.Printf("schema: %d\n", snap.Schema)
	// Exact counter values are pinned by the golden determinism test;
	// here we read the structure: stable dotted names, per-core and
	// machine-level views of the same counters.
	c0, _ := snap.Lookup("core0.fence.stall_cycles")
	c1, _ := snap.Lookup("core1.fence.stall_cycles")
	fmt.Printf("per-core fence stalls sum to machine total: %t\n",
		c0.Value+c1.Value == snap.Value("machine.fence_stall_cycles"))
	fmt.Printf("committed matches headline stats: %t\n",
		snap.UValue("machine.committed") == res.Stats.Committed)
	fmt.Printf("fast-forward engaged: %t\n", snap.Value("machine.clock.skipped_cycles") > 0)
	fmt.Printf("tracer pinned: %d\n", snap.Value("machine.clock.tracer_pinned"))
	// Output:
	// schema: 1
	// per-core fence stalls sum to machine total: true
	// committed matches headline stats: true
	// fast-forward engaged: true
	// tracer pinned: 0
}

// ExampleNewCountingObserver attaches a counter-only observer to a
// benchmark run. Unlike a Tracer, an observer never pins the two-speed
// clock's per-cycle slow path: the machine keeps fast-forwarding and
// credits skipped stall-cycle events in bulk, so observability costs
// almost nothing — and cannot change a single measurement.
func ExampleNewCountingObserver() {
	opts := sfence.BenchmarkOptions{Mode: sfence.Traditional, Ops: 20}
	obs := sfence.NewCountingObserver()
	observed, err := sfence.RunBenchmarkObserved(context.Background(), "fence-drain", opts, sfence.DefaultConfig(), obs)
	if err != nil {
		log.Fatal(err)
	}
	unobserved, err := sfence.RunBenchmarkContext(context.Background(), "fence-drain", opts, sfence.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observer saw fence stalls: %t\n", obs.Count(sfence.TraceFenceStall) > 0)
	fmt.Printf("still fast-forwarding: %t\n", observed.Snapshot.Value("machine.clock.skipped_cycles") > 0)
	fmt.Printf("identical to unobserved run: %t\n", observed.Snapshot.Equal(unobserved.Snapshot))
	// Output:
	// observer saw fence stalls: true
	// still fast-forwarding: true
	// identical to unobserved run: true
}
