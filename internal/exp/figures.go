package exp

import (
	"context"
	"strconv"
	"sync/atomic"

	"sfence/internal/kernels"
	"sfence/internal/machine"
)

// figRun is one (benchmark, configuration) simulation inside a figure.
type figRun struct {
	bench string
	opts  kernels.Options
	cfg   machine.Config
	res   kernels.Result
}

// execute fills in the res fields of all runs on the session's worker
// pool, reporting per-experiment progress as simulations complete. A
// cancelled context stops dispatching and surfaces ctx.Err() from the
// in-flight simulations.
func (s *Session) execute(ctx context.Context, experiment string, runs []*figRun) error {
	progress := s.progress
	var done atomic.Int64
	if progress != nil {
		progress(experiment, 0, len(runs))
	}
	jobs := make([]func() error, len(runs))
	for i, r := range runs {
		r := r
		jobs[i] = func() error {
			res, err := s.runOne(ctx, r.bench, r.opts, r.cfg)
			if err != nil {
				return err
			}
			r.res = res
			if progress != nil {
				progress(experiment, int(done.Add(1)), len(runs))
			}
			return nil
		}
	}
	return runParallel(ctx, s.parallelism, jobs)
}

// Figure12 reproduces "Impact of workload": the speedup of S-Fence over
// traditional fences for the four lock-free algorithms across six workload
// levels. The paper reports hump-shaped curves with peaks between 1.13x
// and 1.34x, dekker peaking earliest.
func (s *Session) Figure12(ctx context.Context, sc Scale) ([]SpeedupSeries, error) {
	benches := []string{"dekker", "wsq", "msn", "harris"}
	levels := []int{1, 2, 3, 4, 5, 6}
	modes := []kernels.FenceMode{kernels.Traditional, kernels.Scoped}

	grid := map[[3]int]*figRun{}
	var runs []*figRun
	for bi, bench := range benches {
		for li, w := range levels {
			for mi, mode := range modes {
				r := &figRun{bench: bench, opts: kernels.Options{
					Mode: mode, Ops: opsFor(bench, sc), Workload: w,
				}, cfg: baseConfig()}
				grid[[3]int{bi, li, mi}] = r
				runs = append(runs, r)
			}
		}
	}
	if err := s.execute(ctx, "Figure 12", runs); err != nil {
		return nil, err
	}
	out := make([]SpeedupSeries, 0, len(benches))
	for bi, bench := range benches {
		series := SpeedupSeries{Bench: bench, Workload: levels}
		for li := range levels {
			trad := grid[[3]int{bi, li, 0}].res.Cycles
			scoped := grid[[3]int{bi, li, 1}].res.Cycles
			series.Speedup = append(series.Speedup, float64(trad)/float64(scoped))
		}
		out = append(out, series)
	}
	return out, nil
}

// Figure13 reproduces "Performance on full applications": normalized
// execution time of pst, ptc, barnes, and radiosity under T (traditional),
// S (S-Fence), T+ and S+ (with in-window speculation), split into fence
// stalls and the rest and normalized to T.
func (s *Session) Figure13(ctx context.Context, sc Scale) ([]BenchGroup, error) {
	benches := []string{"pst", "ptc", "barnes", "radiosity"}
	grid := map[[2]int]*figRun{}
	var runs []*figRun
	for bi, bench := range benches {
		for ci, c := range fig13Configs {
			r := &figRun{bench: bench, opts: kernels.Options{
				Mode: c.Mode, Ops: opsFor(bench, sc),
			}, cfg: withSpec(baseConfig(), c.Spec)}
			grid[[2]int{bi, ci}] = r
			runs = append(runs, r)
		}
	}
	if err := s.execute(ctx, "Figure 13", runs); err != nil {
		return nil, err
	}
	out := make([]BenchGroup, 0, len(benches))
	for bi, bench := range benches {
		group := BenchGroup{Bench: bench}
		baseline := grid[[2]int{bi, 0}].res.Cycles // "T"
		for ci, c := range fig13Configs {
			group.Bars = append(group.Bars, barFrom(c.Label, grid[[2]int{bi, ci}].res, baseline))
		}
		out = append(out, group)
	}
	return out, nil
}

// Figure14 reproduces "Class scope vs. Set scope" for msn, harris, pst,
// and ptc: both scoped variants, normalized to class scope.
func (s *Session) Figure14(ctx context.Context, sc Scale) ([]BenchGroup, error) {
	benches := []string{"msn", "harris", "pst", "ptc"}
	variants := []struct {
		Label string
		Scope kernels.ScopeOverride
	}{
		{"C.S.", kernels.ForceClass},
		{"S.S.", kernels.ForceSet},
	}
	grid := map[[2]int]*figRun{}
	var runs []*figRun
	for bi, bench := range benches {
		for vi, v := range variants {
			r := &figRun{bench: bench, opts: kernels.Options{
				Mode: kernels.Scoped, Scope: v.Scope, Ops: opsFor(bench, sc),
			}, cfg: baseConfig()}
			grid[[2]int{bi, vi}] = r
			runs = append(runs, r)
		}
	}
	if err := s.execute(ctx, "Figure 14", runs); err != nil {
		return nil, err
	}
	out := make([]BenchGroup, 0, len(benches))
	for bi, bench := range benches {
		group := BenchGroup{Bench: bench}
		baseline := grid[[2]int{bi, 0}].res.Cycles
		for vi, v := range variants {
			group.Bars = append(group.Bars, barFrom(v.Label, grid[[2]int{bi, vi}].res, baseline))
		}
		out = append(out, group)
	}
	return out, nil
}

// FigureInferred is the static-inference experiment (beyond the paper):
// every Table IV benchmark under traditional fences (T), the hand-written
// scope annotations (S), and the compiler-derived configuration (I) —
// scopecheck.Infer run over the unannotated build — normalized to T. The
// claim it feeds: inference recovers the hand annotations' benefit
// without any programmer involvement, the paper's Section IV compiler
// support realized as a working analysis.
func (s *Session) FigureInferred(ctx context.Context, sc Scale) ([]BenchGroup, error) {
	benches := []string{"dekker", "wsq", "msn", "harris", "pst", "ptc", "barnes", "radiosity"}
	modes := []struct {
		Label string
		Mode  kernels.FenceMode
	}{
		{"T", kernels.Traditional},
		{"S", kernels.Scoped},
		{"I", kernels.Inferred},
	}
	grid := map[[2]int]*figRun{}
	var runs []*figRun
	for bi, bench := range benches {
		for mi, m := range modes {
			r := &figRun{bench: bench, opts: kernels.Options{
				Mode: m.Mode, Ops: opsFor(bench, sc),
			}, cfg: baseConfig()}
			grid[[2]int{bi, mi}] = r
			runs = append(runs, r)
		}
	}
	if err := s.execute(ctx, "Inferred scopes", runs); err != nil {
		return nil, err
	}
	out := make([]BenchGroup, 0, len(benches))
	for bi, bench := range benches {
		group := BenchGroup{Bench: bench}
		baseline := grid[[2]int{bi, 0}].res.Cycles
		for mi, m := range modes {
			group.Bars = append(group.Bars, barFrom(m.Label, grid[[2]int{bi, mi}].res, baseline))
		}
		out = append(out, group)
	}
	return out, nil
}

// fullApps are the four full applications the paper's sensitivity
// figures (15 and 16) sweep.
var fullApps = []string{"pst", "ptc", "barnes", "radiosity"}

// sweepFigure runs a T/S pair per parameter value per benchmark, with bars
// normalized to the baseline value's traditional run.
func (s *Session) sweepFigure(ctx context.Context, name string, benches []string, sc Scale, values []int, baseline int, label func(int) string, apply func(machine.Config, int) machine.Config) ([]BenchGroup, error) {
	modes := []struct {
		suffix string
		mode   kernels.FenceMode
	}{{"T", kernels.Traditional}, {"S", kernels.Scoped}}

	grid := map[[3]int]*figRun{}
	var runs []*figRun
	for bi, bench := range benches {
		for vi, v := range values {
			for mi, mc := range modes {
				r := &figRun{bench: bench, opts: kernels.Options{
					Mode: mc.mode, Ops: opsFor(bench, sc),
				}, cfg: apply(baseConfig(), v)}
				grid[[3]int{bi, vi, mi}] = r
				runs = append(runs, r)
			}
		}
	}
	if err := s.execute(ctx, name, runs); err != nil {
		return nil, err
	}
	baseIdx := 0
	for vi, v := range values {
		if v == baseline {
			baseIdx = vi
		}
	}
	out := make([]BenchGroup, 0, len(benches))
	for bi, bench := range benches {
		group := BenchGroup{Bench: bench}
		base := grid[[3]int{bi, baseIdx, 0}].res.Cycles
		for vi, v := range values {
			for mi, mc := range modes {
				group.Bars = append(group.Bars, barFrom(label(v)+mc.suffix, grid[[3]int{bi, vi, mi}].res, base))
			}
		}
		out = append(out, group)
	}
	return out, nil
}

// Figure15 reproduces "Varying memory access latency": pst, ptc, barnes,
// radiosity under traditional and scoped fences at 200-, 300-, and
// 500-cycle memory latency, normalized per benchmark to the 300-cycle
// traditional run (the Table III default, matching the paper's
// normalization to the traditional-fence total).
func (s *Session) Figure15(ctx context.Context, sc Scale) ([]BenchGroup, error) {
	return s.sweepFigure(ctx, "Figure 15", fullApps, sc, []int{200, 300, 500}, 300, intLabel,
		func(cfg machine.Config, lat int) machine.Config {
			cfg.Mem.MemLatency = lat
			return cfg
		})
}

// Figure16 reproduces "Varying ROB size": 64-, 128-, and 256-entry reorder
// buffers under traditional and scoped fences, normalized per benchmark to
// the 128-entry traditional run.
func (s *Session) Figure16(ctx context.Context, sc Scale) ([]BenchGroup, error) {
	return s.sweepFigure(ctx, "Figure 16", fullApps, sc, []int{64, 128, 256}, 128, intLabel,
		func(cfg machine.Config, size int) machine.Config {
			cfg.Core.ROBSize = size
			return cfg
		})
}

func intLabel(v int) string { return strconv.Itoa(v) }
