package exp

import (
	"context"
	"sync"
)

// runParallel executes the jobs on at most limit workers and returns the
// first error (all started jobs are always waited for). A cancelled
// context stops further jobs from being dispatched; jobs already running
// observe the cancellation through their own ctx plumbing and surface
// ctx.Err() as their error.
func runParallel(ctx context.Context, limit int, jobs []func() error) error {
	if limit < 1 {
		limit = 1
	}
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, job := range jobs {
		wg.Add(1)
		go func(job func() error) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			if err := job(); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(job)
	}
	wg.Wait()
	return firstErr
}
