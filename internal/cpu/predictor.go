package cpu

// predictor is a table of 2-bit saturating counters indexed by PC, with a
// static backward-taken/forward-not-taken initial bias. It is fully
// deterministic.
type predictor struct {
	counters []uint8
	mask     int
	// ver advances whenever a counter actually changes value; a saturated
	// update leaves it alone. The spin detector reads it: a steady spin's
	// loop branch is fully trained, so its updates are all saturated.
	ver uint64
}

func newPredictor(bits int) *predictor {
	n := 1 << bits
	p := &predictor{counters: make([]uint8, n), mask: n - 1}
	for i := range p.counters {
		p.counters[i] = 1 // weakly not taken
	}
	return p
}

// predict returns the predicted direction for a branch at pc with the
// given target (backward branches with untrained counters predict taken).
func (p *predictor) predict(pc, target int) bool {
	c := p.counters[pc&p.mask]
	if c == 1 && target <= pc {
		// Untrained backward branch: static loop heuristic.
		return true
	}
	return c >= 2
}

// update trains the counter with the actual outcome.
func (p *predictor) update(pc int, taken bool) {
	i := pc & p.mask
	c := p.counters[i]
	n := c
	if taken {
		if n < 3 {
			n++
		}
	} else if n > 0 {
		n--
	}
	if n != c {
		p.counters[i] = n
		p.ver++
	}
}
