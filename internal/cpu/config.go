// Package cpu models an out-of-order superscalar core with a reorder
// buffer, a non-FIFO store buffer (yielding an RMO-like relaxed memory
// model), branch prediction with wrong-path fetch, and the Fence Scoping
// hardware proposed by Lin et al. (SC '14): fence scope bits (FSB) on every
// ROB and store-buffer entry, a fence scope stack (FSS) with a shadow copy
// (FSS'), and a cid-to-FSB-entry mapping table.
package cpu

import "fmt"

// FSSRecovery selects how the fence scope stack is repaired after a branch
// misprediction.
type FSSRecovery uint8

const (
	// RecoverySnapshot checkpoints the FSS at every predicted branch and
	// restores the exact checkpoint on misprediction. This is slightly
	// stronger than the paper's mechanism and never over- or
	// under-synchronizes; it is the default.
	RecoverySnapshot FSSRecovery = iota
	// RecoveryShadow is the paper's FSS' mechanism: fs_start/fs_end update
	// the shadow only when no unconfirmed branch precedes them, and on
	// misprediction FSS is overwritten with FSS'. When the shadow is known
	// to lag (scope operations were skipped), this implementation falls
	// back to treating fences as full fences until the stack empties, so
	// the approximation can never under-synchronize.
	RecoveryShadow
)

func (r FSSRecovery) String() string {
	switch r {
	case RecoverySnapshot:
		return "snapshot"
	case RecoveryShadow:
		return "shadow"
	}
	return fmt.Sprintf("FSSRecovery(%d)", uint8(r))
}

// Config holds the core parameters. DefaultConfig matches Table III of the
// paper where the paper specifies a value.
type Config struct {
	ROBSize     int // reorder buffer entries (power of two)
	SBSize      int // store buffer entries
	IssueWidth  int // instructions decoded/issued into the ROB per cycle
	RetireWidth int // instructions retired per cycle
	MSHRs       int // concurrent outstanding store misses from the SB

	// BranchPenalty is the fetch-redirect bubble after a misprediction,
	// in cycles.
	BranchPenalty int
	// PredictorBits is the log2 size of the 2-bit-counter branch
	// predictor table.
	PredictorBits int

	// ForwardLatency is the store-to-load forwarding latency in cycles.
	ForwardLatency int

	// FSBEntries is the number of fence scope bits per ROB/SB entry. The
	// last entry is reserved for set scope; the rest hold class scopes.
	FSBEntries int
	// FSSEntries is the fence scope stack depth.
	FSSEntries int
	// MapEntries is the cid->FSB mapping table capacity.
	MapEntries int

	// InWindowSpec enables in-window speculation: fences issue
	// speculatively and are checked against the store buffer before
	// retiring (the paper's T+/S+ configurations).
	InWindowSpec bool

	// FIFOStoreBuffer drains stores strictly in order (a TSO-like
	// baseline used for ablations); the default non-FIFO buffer models
	// RMO.
	FIFOStoreBuffer bool

	// Recovery selects the FSS misprediction-recovery mechanism.
	Recovery FSSRecovery
}

// DefaultConfig returns the paper's core parameters (Table III): 128-entry
// ROB, 4 FSB entries, 4 FSS entries. Parameters the paper does not specify
// use conventional academic-simulator values.
func DefaultConfig() Config {
	return Config{
		ROBSize:        128,
		SBSize:         8,
		IssueWidth:     4,
		RetireWidth:    4,
		MSHRs:          8,
		BranchPenalty:  3,
		PredictorBits:  10,
		ForwardLatency: 2,
		FSBEntries:     4,
		FSSEntries:     4,
		MapEntries:     4,
		InWindowSpec:   false,
		Recovery:       RecoverySnapshot,
	}
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.ROBSize < 2 || c.ROBSize&(c.ROBSize-1) != 0 {
		return fmt.Errorf("cpu: ROBSize %d must be a power of two >= 2", c.ROBSize)
	}
	if c.SBSize < 1 {
		return fmt.Errorf("cpu: SBSize %d must be >= 1", c.SBSize)
	}
	if c.IssueWidth < 1 || c.RetireWidth < 1 {
		return fmt.Errorf("cpu: issue/retire width must be >= 1")
	}
	if c.MSHRs < 1 {
		return fmt.Errorf("cpu: MSHRs must be >= 1")
	}
	if c.BranchPenalty < 0 || c.ForwardLatency < 1 {
		return fmt.Errorf("cpu: bad latency parameters")
	}
	if c.PredictorBits < 1 || c.PredictorBits > 24 {
		return fmt.Errorf("cpu: PredictorBits %d out of range [1,24]", c.PredictorBits)
	}
	if c.FSBEntries < 2 || c.FSBEntries > 8 {
		return fmt.Errorf("cpu: FSBEntries %d out of range [2,8] (one entry is reserved for set scope)", c.FSBEntries)
	}
	if c.FSSEntries < 1 || c.FSSEntries > 8 {
		return fmt.Errorf("cpu: FSSEntries %d out of range [1,8]", c.FSSEntries)
	}
	if c.MapEntries < 1 {
		return fmt.Errorf("cpu: MapEntries must be >= 1")
	}
	return nil
}

// Stats accumulates per-core execution statistics.
type Stats struct {
	Committed       uint64 // architecturally committed instructions
	CommittedLoads  uint64
	CommittedStores uint64
	CommittedCAS    uint64
	CommittedFences uint64

	// FenceStallCycles counts cycles in which the core could make no
	// forward progress at a fence: issue blocked by an unissuable fence,
	// or (with in-window speculation) retirement blocked by a fence at
	// the ROB head. This is the "Fence Stalls" component of the paper's
	// stacked bars.
	FenceStallCycles uint64
	// FenceStallIssue / FenceStallRetire break FenceStallCycles down by
	// where the stall occurred.
	FenceStallIssue  uint64
	FenceStallRetire uint64
	// FenceIdleCycles is the refined stall metric: cycles in which the
	// core was blocked at a fence with an otherwise empty pipeline — no
	// in-flight instruction left to execute, the fence purely waiting for
	// outstanding memory (typically the store-buffer drain of Fig. 10).
	// This is the "Fence Stalls" component used for the paper's stacked
	// bars; FenceStallCycles additionally counts cycles where pre-fence
	// work was still executing under the blocked fence.
	FenceIdleCycles uint64

	ROBFullCycles uint64 // issue blocked: ROB full
	SBFullCycles  uint64 // retire blocked: store buffer full

	Branches      uint64 // committed branches
	Mispredicts   uint64
	Squashed      uint64 // instructions discarded by squashes
	WrongPathMem  uint64 // wrong-path memory accesses issued
	SpecLoadFlush uint64 // speculative loads replayed by remote stores

	ScopeOverflow uint64 // fs_start demoted to full-fence mode (MT/FSS full)
	ScopeShared   uint64 // scopes that had to share an FSB entry
	FSEndIgnored  uint64 // fs_end with empty FSS (wrong-path artifacts)

	SumROBOccupancy uint64 // per-cycle sum, for average occupancy
	MaxROBOccupancy int
	Cycles          uint64 // cycles this core was active (not yet done)
}

// AvgROBOccupancy returns the mean ROB occupancy over the core's active
// cycles.
func (s *Stats) AvgROBOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.SumROBOccupancy) / float64(s.Cycles)
}

// Add accumulates other into s.
func (s *Stats) Add(o *Stats) {
	s.Committed += o.Committed
	s.CommittedLoads += o.CommittedLoads
	s.CommittedStores += o.CommittedStores
	s.CommittedCAS += o.CommittedCAS
	s.CommittedFences += o.CommittedFences
	s.FenceStallCycles += o.FenceStallCycles
	s.FenceStallIssue += o.FenceStallIssue
	s.FenceStallRetire += o.FenceStallRetire
	s.FenceIdleCycles += o.FenceIdleCycles
	s.ROBFullCycles += o.ROBFullCycles
	s.SBFullCycles += o.SBFullCycles
	s.Branches += o.Branches
	s.Mispredicts += o.Mispredicts
	s.Squashed += o.Squashed
	s.WrongPathMem += o.WrongPathMem
	s.SpecLoadFlush += o.SpecLoadFlush
	s.ScopeOverflow += o.ScopeOverflow
	s.ScopeShared += o.ScopeShared
	s.FSEndIgnored += o.FSEndIgnored
	s.SumROBOccupancy += o.SumROBOccupancy
	if o.MaxROBOccupancy > s.MaxROBOccupancy {
		s.MaxROBOccupancy = o.MaxROBOccupancy
	}
	s.Cycles += o.Cycles
}
