package results

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"sfence/internal/exp"
	"sfence/internal/kernels"
	"sfence/internal/machine"
	"sfence/internal/stats"
)

// CacheStats counts cache traffic. Hits = MemHits + DiskHits; Misses is
// the number of simulations actually executed. WriteErrors counts run
// records that could not be persisted (the results were still returned
// and kept in the memory tier).
type CacheStats struct {
	Hits        uint64 `json:"hits"`
	MemHits     uint64 `json:"memHits"`
	DiskHits    uint64 `json:"diskHits"`
	Misses      uint64 `json:"misses"`
	WriteErrors uint64 `json:"writeErrors"`
}

// RunCache memoizes kernel simulations, content-addressed by a hash of
// (machine configuration, kernel name, kernel options). The simulator is
// deterministic, so a cached kernels.Result is bit-identical to a fresh
// run of the same triple; experiments that share baseline configurations
// (Figures 13-16 all re-run the Table III Traditional/Scoped baselines)
// therefore simulate each distinct configuration exactly once.
//
// The cache has two tiers: an in-process map (always on) and an optional
// directory of JSON run records that persists results across invocations.
// Concurrent requests for the same key are coalesced: one simulates, the
// rest wait and count as memory hits.
type RunCache struct {
	dir string // "" = memory only

	mu       sync.Mutex
	mem      map[string]kernels.Result
	inflight map[string]*inflightRun

	memHits   atomic.Uint64
	diskHits  atomic.Uint64
	misses    atomic.Uint64
	writeErrs atomic.Uint64
}

type inflightRun struct {
	done chan struct{}
	res  kernels.Result
	err  error
}

// NewRunCache returns a cache persisting run records under dir (created
// if missing). An empty dir yields a memory-only cache.
func NewRunCache(dir string) (*RunCache, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("results: cache dir: %w", err)
		}
	}
	return &RunCache{
		dir:      dir,
		mem:      make(map[string]kernels.Result),
		inflight: make(map[string]*inflightRun),
	}, nil
}

// NewMemCache returns an in-process-only cache.
func NewMemCache() *RunCache {
	c, _ := NewRunCache("")
	return c
}

// Stats returns a snapshot of the cache counters.
func (c *RunCache) Stats() CacheStats {
	mem, disk := c.memHits.Load(), c.diskHits.Load()
	return CacheStats{
		Hits:        mem + disk,
		MemHits:     mem,
		DiskHits:    disk,
		Misses:      c.misses.Load(),
		WriteErrors: c.writeErrs.Load(),
	}
}

// cacheKeyPayload is what gets hashed into a cache key. The schema
// version is included so format changes invalidate old disk records.
type cacheKeyPayload struct {
	Schema int             `json:"schema"`
	Bench  string          `json:"bench"`
	Opts   kernels.Options `json:"opts"`
	Cfg    machine.Config  `json:"cfg"`
}

// Key returns the content address of one simulation: a hex SHA-256 of
// the canonical JSON encoding of (schema, benchmark, options, config).
// The parallel-runner knobs are excluded: simulated results are
// bit-identical at every worker count, so a record produced at one
// worker count must satisfy requests at any other.
func Key(bench string, opts kernels.Options, cfg machine.Config) string {
	h := sha256.New()
	cfg.Parallel = machine.ParallelConfig{}
	// Struct field order is fixed, so this encoding is canonical.
	if err := json.NewEncoder(h).Encode(cacheKeyPayload{SchemaVersion, bench, opts, cfg}); err != nil {
		panic("results: cache key encoding cannot fail: " + err.Error())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// runRecord is the on-disk form of one memoized simulation. The inputs
// are stored alongside the result so a record can be validated against
// the key that addressed it.
type runRecord struct {
	Schema int             `json:"schema"`
	Bench  string          `json:"bench"`
	Opts   kernels.Options `json:"opts"`
	Cfg    machine.Config  `json:"cfg"`
	Result kernels.Result  `json:"result"`
}

func (c *RunCache) path(key string) string {
	return filepath.Join(c.dir, "run_"+key+".json")
}

// Run returns the memoized result for the triple, simulating on a miss.
// It is an exp.Runner: a Lab session with a cache installs this method as
// its runner. Run is safe for concurrent use and coalesces duplicate
// in-flight keys: one caller simulates, the rest wait and count as memory
// hits. Cancellation stays per-caller — a waiter whose own context is
// cancelled stops waiting with its ctx.Err(), and if the simulating
// caller was cancelled the surviving waiters retry the simulation under
// their own contexts instead of inheriting the foreign cancellation
// (essential when two independent Labs share one cache).
func (c *RunCache) Run(ctx context.Context, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
	key := Key(bench, opts, cfg)

	for {
		c.mu.Lock()
		if res, ok := c.mem[key]; ok {
			c.mu.Unlock()
			c.memHits.Add(1)
			return res, nil
		}
		if f, ok := c.inflight[key]; ok {
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return kernels.Result{}, ctx.Err()
			}
			if f.err == nil {
				c.memHits.Add(1)
				return f.res, nil
			}
			if ctx.Err() == nil && (errors.Is(f.err, context.Canceled) || errors.Is(f.err, context.DeadlineExceeded)) {
				// The filler's context died, not ours: retry the lookup.
				continue
			}
			return f.res, f.err
		}
		f := &inflightRun{done: make(chan struct{})}
		c.inflight[key] = f
		c.mu.Unlock()

		f.res, f.err = c.fill(ctx, key, bench, opts, cfg)

		c.mu.Lock()
		if f.err == nil {
			c.mem[key] = f.res
		}
		delete(c.inflight, key)
		c.mu.Unlock()
		close(f.done)
		return f.res, f.err
	}
}

// fill resolves a memory miss: disk first, then a real simulation (whose
// result is written back to disk).
func (c *RunCache) fill(ctx context.Context, key, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
	if c.dir != "" {
		if res, ok := c.loadDisk(key, bench); ok {
			c.diskHits.Add(1)
			return res, nil
		}
	}
	c.misses.Add(1)
	res, err := exp.DirectRun(ctx, bench, opts, cfg)
	if err != nil {
		return kernels.Result{}, err
	}
	if c.dir != "" {
		// Persistence is an optimization: a full disk or read-only cache
		// dir must not discard a completed simulation. The result still
		// lands in the memory tier; WriteErrors records the failure.
		if err := c.storeDisk(key, bench, opts, cfg, res); err != nil {
			c.writeErrs.Add(1)
		}
	}
	return res, nil
}

// loadDisk reads and validates a run record; any mismatch, unreadable
// file, or corruption is treated as a miss — the cache can always fall
// back to simulating.
func (c *RunCache) loadDisk(key, bench string) (kernels.Result, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return kernels.Result{}, false
	}
	var rec runRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return kernels.Result{}, false
	}
	// The stored inputs must hash back to the key that addressed the
	// record; a renamed or hand-edited file is a miss, not a wrong hit.
	// A record predating the stats registry (no snapshot) is also a miss:
	// re-simulating is deterministic and cheap, while serving it would
	// silently hand the "stats" experiment an empty snapshot.
	if rec.Schema != SchemaVersion || rec.Bench != bench ||
		rec.Result.Snapshot.Schema != stats.SnapshotSchema ||
		Key(rec.Bench, rec.Opts, rec.Cfg) != key {
		return kernels.Result{}, false
	}
	return rec.Result, true
}

// storeDisk writes a run record atomically (temp file + rename) so a
// concurrent reader never observes a partial record.
func (c *RunCache) storeDisk(key, bench string, opts kernels.Options, cfg machine.Config, res kernels.Result) error {
	data, err := Marshal(runRecord{SchemaVersion, bench, opts, cfg, res})
	if err != nil {
		return fmt.Errorf("results: encode run record: %w", err)
	}
	tmp, err := os.CreateTemp(c.dir, "run_*.tmp")
	if err != nil {
		return fmt.Errorf("results: cache write: %w", err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("results: cache write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: cache write: %w", err)
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("results: cache write: %w", err)
	}
	return nil
}
