// Benchmark harness: one testing.B benchmark per table and figure of the
// paper (regenerating the experiment at Quick scale and reporting the
// headline metric), plus simulator micro-benchmarks.
//
// Run with: go test -bench=. -benchmem
package sfence_test

import (
	"context"
	"testing"

	"sfence"
)

// benchLab returns an uncached quick-scale Lab: each iteration should
// re-simulate, so the benchmark measures regeneration, not cache hits.
func benchLab() *sfence.Lab { return sfence.NewLab(sfence.WithScale(sfence.Quick)) }

// runExperiment runs one registry experiment on a fresh Lab and returns
// its payload.
func runExperiment[T any](b *testing.B, id string) T {
	b.Helper()
	res, err := benchLab().Run(context.Background(), id)
	if err != nil {
		b.Fatal(err)
	}
	payload, ok := res.Data.(T)
	if !ok {
		b.Fatalf("%s payload is %T", id, res.Data)
	}
	return payload
}

// BenchmarkTable3Defaults pins the Table III defaults (configuration
// construction is trivially cheap; the benchmark exists so the table has a
// regeneration entry point alongside the figures).
func BenchmarkTable3Defaults(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := sfence.TableIII(sfence.DefaultConfig())
		if len(rows) != 7 {
			b.Fatalf("Table III has %d rows", len(rows))
		}
	}
}

// BenchmarkTable4Registry regenerates the benchmark-description table.
func BenchmarkTable4Registry(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(sfence.TableIV()) != 8 {
			b.Fatal("Table IV incomplete")
		}
	}
}

// BenchmarkFigure12 regenerates the workload-impact experiment and reports
// the mean peak speedup across the four lock-free algorithms.
func BenchmarkFigure12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series := runExperiment[[]sfence.SpeedupSeries](b, "fig12")
		sum := 0.0
		for _, s := range series {
			peak, _ := s.Peak()
			sum += peak
		}
		b.ReportMetric(sum/float64(len(series)), "mean-peak-speedup")
	}
}

// BenchmarkFigure13 regenerates the full-application experiment and
// reports the mean S-over-T speedup.
func BenchmarkFigure13(b *testing.B) {
	for i := 0; i < b.N; i++ {
		groups := runExperiment[[]sfence.BenchGroup](b, "fig13")
		sum := 0.0
		for _, g := range groups {
			sum += 1 / g.Bars[1].Total() // S normalized against T=1
		}
		b.ReportMetric(sum/float64(len(groups)), "mean-S-speedup")
	}
}

// BenchmarkFigure14 regenerates the class-vs-set-scope comparison and
// reports the mean set-scope time normalized to class scope.
func BenchmarkFigure14(b *testing.B) {
	for i := 0; i < b.N; i++ {
		groups := runExperiment[[]sfence.BenchGroup](b, "fig14")
		sum := 0.0
		for _, g := range groups {
			sum += g.Bars[1].Total()
		}
		b.ReportMetric(sum/float64(len(groups)), "set-vs-class-time")
	}
}

// BenchmarkFigure15 regenerates the memory-latency sweep and reports the
// S-Fence speedup at 500-cycle latency (where the paper's gains are
// largest for the set-scope applications).
func BenchmarkFigure15(b *testing.B) {
	for i := 0; i < b.N; i++ {
		groups := runExperiment[[]sfence.BenchGroup](b, "fig15")
		var speedup float64
		var n int
		for _, g := range groups {
			var t500, s500 float64
			for _, bar := range g.Bars {
				switch bar.Label {
				case "500T":
					t500 = bar.Total()
				case "500S":
					s500 = bar.Total()
				}
			}
			if s500 > 0 {
				speedup += t500 / s500
				n++
			}
		}
		b.ReportMetric(speedup/float64(n), "speedup@500cy")
	}
}

// BenchmarkFigure16 regenerates the ROB-size sweep and reports the
// S-Fence speedup with a 256-entry ROB.
func BenchmarkFigure16(b *testing.B) {
	for i := 0; i < b.N; i++ {
		groups := runExperiment[[]sfence.BenchGroup](b, "fig16")
		var speedup float64
		var n int
		for _, g := range groups {
			var t, s float64
			for _, bar := range g.Bars {
				switch bar.Label {
				case "256T":
					t = bar.Total()
				case "256S":
					s = bar.Total()
				}
			}
			if s > 0 {
				speedup += t / s
				n++
			}
		}
		b.ReportMetric(speedup/float64(n), "speedup@rob256")
	}
}

// BenchmarkHardwareCost evaluates the Section VI-E cost model.
func BenchmarkHardwareCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := sfence.HardwareCost(sfence.DefaultConfig().Core)
		if !rep.PaperClaimOK {
			b.Fatalf("cost %.1f bytes exceeds the paper's 80-byte claim", rep.TotalBytes)
		}
		b.ReportMetric(rep.TotalBytes, "bytes/core")
	}
}

// BenchmarkAblationFSBEntries regenerates the FSB-size ablation.
func BenchmarkAblationFSBEntries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment[sfence.AblationSet](b, "ablation/fsb-entries")
	}
}

// BenchmarkAblationFIFOStoreBuffer regenerates the TSO-vs-RMO ablation.
func BenchmarkAblationFIFOStoreBuffer(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExperiment[sfence.AblationSet](b, "ablation/fifo-store-buffer")
	}
}

// BenchmarkStepThroughput measures the simulator's clock speed (simulated
// cycles per second) on the Table III machine running the fence-drain
// microbenchmark with traditional fences — the fence-heavy, miss-heavy
// shape of the paper's Fig. 10, where the core idles at a fence for a full
// memory round-trip every iteration. This is the workload the two-speed
// event-driven clock exists for, and the benchmark tracked by the
// BENCH_SIMPERF.json artifact (sfence-report -simperf).
func BenchmarkStepThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sfence.RunBenchmark("fence-drain", sfence.BenchmarkOptions{
			Mode: sfence.Traditional, Ops: 400,
		}, sfence.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// cycles per second on the wsq benchmark.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		res, err := sfence.RunBenchmark("wsq", sfence.BenchmarkOptions{
			Mode: sfence.Scoped, Ops: 60, Workload: 2, Threads: 4,
		}, sfence.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "simcycles/s")
}

// BenchmarkKernelBuild measures program-assembly cost (no simulation).
func BenchmarkKernelBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := sfence.BuildBenchmark("harris", sfence.BenchmarkOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}
