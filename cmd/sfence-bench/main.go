// Command sfence-bench regenerates individual tables and figures of the
// paper's evaluation section (and the repository's extra ablations) on
// the simulated machine, by experiment ID from the shared registry.
//
// Examples:
//
//	sfence-bench -list                   # print every experiment ID
//	sfence-bench -all                    # every deterministic experiment
//	sfence-bench -quick fig12            # just Figure 12, reduced sizing
//	sfence-bench table3 table4 hwcost
//	sfence-bench -json fig13             # schema-versioned JSON envelope
//	sfence-bench -quick ablation/fsb-entries ablation/fss-depth
//	sfence-bench -cache /tmp/sfc -all    # memoize simulations on disk
//	sfence-bench simperf                 # measure the simulator itself
//	sfence-bench -server http://localhost:8080 table4
//	                                     # run on a sfence-serve instance
//
// With -server the experiments run remotely on a sfence-serve instance
// sharing its bounded cache with every other tenant; the output is the
// schema-versioned JSON envelope (byte-identical to a local -json run,
// since the simulator is deterministic), and -progress follows the
// server's live NDJSON event stream. Ctrl-C disconnects the stream,
// which cancels the remote job mid-cycle-loop.
//
// An unknown experiment ID fails with an error listing every valid ID.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"time"

	"sfence"
	"sfence/internal/serve"
)

func main() {
	var (
		all        = flag.Bool("all", false, "run every deterministic experiment (excludes simperf, which is wall-clock based)")
		list       = flag.Bool("list", false, "list experiment IDs and exit")
		quick      = flag.Bool("quick", false, "reduced workload sizes")
		asJSON     = flag.Bool("json", false, "emit schema-versioned JSON envelopes instead of ASCII")
		progress   = flag.Bool("progress", false, "report per-experiment progress on stderr")
		cacheDir   = flag.String("cache", "", "memoize simulations in this run-cache directory")
		server     = flag.String("server", "", "run experiments on the sfence-serve instance at this base URL instead of locally (output is the JSON envelope)")
		tenant     = flag.String("tenant", "", "tenant label sent with -server requests (X-Tenant header)")
		parallel   = flag.Int("parallel", 0, "worker-pool width (0 = GOMAXPROCS)")
		workers    = flag.Int("workers", 0, "machine worker threads per simulation (0 = GOMAXPROCS left over by -parallel; 1 = sequential)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "error:", err)
		pprof.StopCPUProfile() // flush a partial profile before exiting
		os.Exit(1)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fail(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fail(err)
			}
		}()
	}

	if *list {
		for _, spec := range sfence.Experiments() {
			fmt.Printf("%-26s %s\n", spec.ID, spec.Title)
		}
		return
	}

	ids := flag.Args()
	if *all {
		for _, spec := range sfence.Experiments() {
			if spec.InSuite() { // simperf is wall-clock based: explicit only
				ids = append(ids, spec.ID)
			}
		}
	}
	if len(ids) == 0 {
		flag.Usage()
		fmt.Fprintln(os.Stderr, "\nname experiments to run (see -list), or pass -all")
		pprof.StopCPUProfile()
		os.Exit(2)
	}
	// Validate every ID up front (an unknown ID must not discard the
	// wall-clock already spent on earlier experiments) and drop
	// duplicates, e.g. from combining -all with explicit IDs.
	seen := make(map[string]bool, len(ids))
	valid := ids[:0]
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		if _, err := sfence.LookupExperiment(id); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			pprof.StopCPUProfile()
			os.Exit(2)
		}
		valid = append(valid, id)
	}
	ids = valid

	sc := sfence.Full
	if *quick {
		sc = sfence.Quick
	}

	if *server != "" {
		// Remote mode: every experiment becomes a job on the shared
		// server. Ctrl-C cancels the stream, and the jobs are submitted
		// with CancelOnDisconnect so the disconnect cancels the remote
		// simulations too instead of burning server cycles.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
		defer stop()
		client := &serve.Client{BaseURL: *server, Tenant: *tenant}
		scaleName := "full"
		if *quick {
			scaleName = "quick"
		}
		for _, id := range ids {
			req := serve.JobRequest{
				Experiment:         id,
				Scale:              scaleName,
				Workers:            *workers,
				Parallelism:        *parallel,
				CancelOnDisconnect: true,
			}
			var onEvent func(serve.Event) error
			if *progress {
				onEvent = func(ev serve.Event) error {
					switch ev.Type {
					case "progress":
						fmt.Fprintf(os.Stderr, "\r%-24s %3d/%3d  %11.0f simcyc/s  fence-stall %5.1f%%",
							ev.Experiment, ev.Done, ev.Total, ev.SimCyclesPerSec, ev.FenceStallShare*100)
						if ev.Done == ev.Total {
							fmt.Fprintln(os.Stderr)
						}
					case "state":
						fmt.Fprintf(os.Stderr, "%s: %s\n", ev.Job, ev.State)
					}
					return nil
				}
			}
			data, err := client.Run(ctx, req, onEvent)
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
		}
		return
	}
	// The two parallelism axes compose: -parallel spreads independent
	// simulations across a pool, -workers parallelizes inside each
	// machine. The default gives each axis its fair share of GOMAXPROCS
	// so their product never oversubscribes the host.
	w := *workers
	if w == 0 {
		pool := *parallel
		if pool <= 0 {
			pool = runtime.GOMAXPROCS(0)
		}
		if w = runtime.GOMAXPROCS(0) / pool; w < 1 {
			w = 1
		}
	}
	labOpts := []sfence.LabOption{
		sfence.WithScale(sc),
		sfence.WithParallelism(*parallel),
		sfence.WithWorkers(w),
	}
	if *cacheDir != "" {
		cache, err := sfence.NewRunCache(*cacheDir)
		if err != nil {
			fail(err)
		}
		labOpts = append(labOpts, sfence.WithCache(cache))
	}
	if *progress {
		// Progress lines carry live simulator throughput and the running
		// fence-stall share, tallied by a counter-only observer attached
		// to every simulated machine. Observers ride the two-speed clock's
		// fast path (skipped stall cycles arrive as bulk credits), so the
		// instrumentation cannot change any measurement. With a run cache
		// the simulations may not execute at all, so the instrumented
		// runner is only installed for direct runs and cached sessions
		// keep the plain done/total line.
		if *cacheDir == "" {
			obs := sfence.NewCountingObserver()
			var simCycles, coreCycles atomic.Int64
			start := time.Now()
			labOpts = append(labOpts,
				sfence.WithRunner(func(ctx context.Context, bench string, opts sfence.BenchmarkOptions, cfg sfence.Config) (sfence.BenchmarkResult, error) {
					res, err := sfence.RunBenchmarkObserved(ctx, bench, opts, cfg, obs)
					if err == nil {
						simCycles.Add(res.Cycles)
						coreCycles.Add(int64(res.CoreCycles))
					}
					return res, err
				}),
				sfence.WithProgress(func(experiment string, done, total int) {
					rate := float64(simCycles.Load()) / time.Since(start).Seconds()
					var share float64
					if cc := coreCycles.Load(); cc > 0 {
						share = float64(obs.Count(sfence.TraceFenceStall)) / float64(cc)
					}
					fmt.Fprintf(os.Stderr, "\r%-24s %3d/%3d  %11.0f simcyc/s  fence-stall %5.1f%%",
						experiment, done, total, rate, share*100)
					if done == total {
						fmt.Fprintln(os.Stderr)
					}
				}))
		} else {
			labOpts = append(labOpts, sfence.WithProgress(func(experiment string, done, total int) {
				fmt.Fprintf(os.Stderr, "\r%-24s %3d/%3d", experiment, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}))
		}
	}
	lab := sfence.NewLab(labOpts...)

	// Ctrl-C cancels the in-flight simulations mid-cycle-loop.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	for _, id := range ids {
		res, err := lab.Run(ctx, id)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			data, err := res.JSON()
			if err != nil {
				fail(err)
			}
			os.Stdout.Write(data)
			continue
		}
		fmt.Println(res.Render())
	}
}
