package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"sfence/internal/kernels"
)

// HeatCell is one fence site of one benchmark run in the stall-intensity
// heatmap: where the fence is (static PC), what it is (rendered
// mnemonic), and how hard it stalls the pipeline.
type HeatCell struct {
	PC          int    `json:"pc"`
	Scope       string `json:"scope"`
	Executions  uint64 `json:"executions"`
	StallCycles uint64 `json:"stallCycles"`
	IdleCycles  uint64 `json:"idleCycles"`
	// StallShare is this site's share of the run's total fence stall.
	StallShare float64 `json:"stallShare"`
	// AvgStall is stall cycles per committed execution of the site.
	AvgStall float64 `json:"avgStall"`
}

// HeatmapRow is one benchmark × fence-mode row: every fence site of the
// run, hottest first.
type HeatmapRow struct {
	Bench string `json:"bench"`
	Mode  string `json:"mode"`
	// TotalStall is the run's total fence-stall cycles across all sites.
	TotalStall uint64     `json:"totalStall"`
	Sites      []HeatCell `json:"sites"`
}

// FigureHeatmap is the fence-site stall-intensity heatmap (a ROADMAP
// item beyond the paper): every Table IV benchmark under traditional and
// scoped fences on the Table III machine, broken down per static fence
// site through the FenceProfile plumbing. It shows *which* fences the
// scoped semantics rescue: under T a few sites carry almost all the
// stall; under S the same sites either vanish from the profile (scoped
// fences skip the remote drain) or keep only their local share. The runs
// reuse the Figure 13/14 baseline configurations, so a cached session
// pays nothing extra for them.
func (s *Session) FigureHeatmap(ctx context.Context, sc Scale) ([]HeatmapRow, error) {
	infos := kernels.All()
	modes := []struct {
		label string
		mode  kernels.FenceMode
	}{{"T", kernels.Traditional}, {"S", kernels.Scoped}}

	var runs []*figRun
	var labels [][2]string
	for _, info := range infos {
		for _, mc := range modes {
			runs = append(runs, &figRun{bench: info.Name, opts: kernels.Options{
				Mode: mc.mode, Ops: opsFor(info.Name, sc),
			}, cfg: baseConfig()})
			labels = append(labels, [2]string{info.Name, mc.label})
		}
	}
	if err := s.execute(ctx, "Fence heatmap", runs); err != nil {
		return nil, err
	}
	out := make([]HeatmapRow, len(runs))
	for i, r := range runs {
		row := HeatmapRow{Bench: labels[i][0], Mode: labels[i][1]}
		for _, site := range r.res.Profile {
			row.TotalStall += site.StallCycles
		}
		for _, site := range r.res.Profile {
			cell := HeatCell{
				PC:          site.PC,
				Scope:       site.Scope,
				Executions:  site.Executions,
				StallCycles: site.StallCycles,
				IdleCycles:  site.IdleCycles,
			}
			if row.TotalStall > 0 {
				cell.StallShare = float64(site.StallCycles) / float64(row.TotalStall)
			}
			if site.Executions > 0 {
				cell.AvgStall = float64(site.StallCycles) / float64(site.Executions)
			}
			row.Sites = append(row.Sites, cell)
		}
		// Hottest sites first; PC breaks ties so the artifact is stable.
		sort.Slice(row.Sites, func(a, b int) bool {
			if row.Sites[a].StallCycles != row.Sites[b].StallCycles {
				return row.Sites[a].StallCycles > row.Sites[b].StallCycles
			}
			return row.Sites[a].PC < row.Sites[b].PC
		})
		out[i] = row
	}
	return out, nil
}

// heatBar renders a 10-char intensity bar for a share in [0,1].
func heatBar(share float64) string {
	n := int(share*10 + 0.5)
	if n > 10 {
		n = 10
	}
	return strings.Repeat("#", n) + strings.Repeat(".", 10-n)
}

// RenderHeatmap formats the heatmap as a site-per-line table grouped by
// benchmark, with intensity bars scaled to each run's total fence stall.
func RenderHeatmap(rows []HeatmapRow) string {
	var sb strings.Builder
	sb.WriteString("Fence-site stall-intensity heatmap (per run; bar = share of that run's fence stall)\n")
	sb.WriteString(fmt.Sprintf("%-11s%-6s%6s%-14s%12s%12s%10s  %s\n",
		"bench", "mode", "pc", " scope", "execs", "stall", "avg", "intensity"))
	for _, row := range rows {
		if len(row.Sites) == 0 {
			sb.WriteString(fmt.Sprintf("%-11s%-6s%s\n", row.Bench, row.Mode, "  (no fence sites)"))
			continue
		}
		for _, c := range row.Sites {
			sb.WriteString(fmt.Sprintf("%-11s%-6s%6d %-13s%12d%12d%10.1f  %s\n",
				row.Bench, row.Mode, c.PC, c.Scope, c.Executions, c.StallCycles, c.AvgStall, heatBar(c.StallShare)))
		}
	}
	return sb.String()
}
