// Differential test of the optimistic-epoch parallel runner: every
// Table IV kernel and every litmus configuration is simulated with the
// sequential two-speed clock (Workers=1, the reference) and with
// Workers=2 and Workers=4, and the runs must be bit-identical — same
// final cycle, same registers, same memory image, same full stats
// registry outside machine.clock.*. This is the safety proof the
// parallel core rests on: an epoch either commits exactly what
// per-cycle stepping would have produced, or aborts without trace.
// Run it under -race to also certify the epoch workers share nothing
// they should not.
package sfence_test

import (
	"context"
	"fmt"
	"testing"

	"sfence/internal/cpu"
	"sfence/internal/isa"
	"sfence/internal/kernels"
	"sfence/internal/litmus"
	"sfence/internal/machine"
	"sfence/internal/memsys"
)

// parallelWorkerCounts are the worker counts differenced against the
// sequential reference.
var parallelWorkerCounts = []int{2, 4}

// runWorkers builds and runs one kernel machine with the given worker
// count, returning the machine and its final cycle.
func runWorkers(t *testing.T, bench string, opts kernels.Options, cfg machine.Config, workers int) (*machine.Machine, int64) {
	t.Helper()
	cfg.Parallel.Workers = workers
	_, m := buildKernelMachine(t, bench, opts, cfg)
	cyc, err := m.Run(context.Background())
	if err != nil {
		t.Fatalf("run (workers=%d): %v", workers, err)
	}
	return m, cyc
}

// assertParallelClock checks the parallel runner's extended cycle
// identity: slow ticks, fast-forwarded cycles, and epoch-committed
// cycles partition the run.
func assertParallelClock(t *testing.T, m *machine.Machine, cycles int64) {
	t.Helper()
	cs := m.Clock()
	if cs.SlowTicks+cs.SkippedCycles+cs.EpochCycles != cycles {
		t.Errorf("clock accounting broken: %d slow + %d skipped + %d epoch != %d cycles (%+v)",
			cs.SlowTicks, cs.SkippedCycles, cs.EpochCycles, cycles, cs)
	}
	if cs.EpochFails > cs.Epochs {
		t.Errorf("more epoch failures than attempts: %+v", cs)
	}
}

// TestParallelEquivalenceKernels differences Workers=2,4 against the
// sequential runner for every Table IV kernel under traditional and
// scoped fences, with and without in-window speculation.
func TestParallelEquivalenceKernels(t *testing.T) {
	benches := []string{"dekker", "wsq", "msn", "harris", "barnes", "radiosity", "pst", "ptc", "nested-scope", "fence-drain"}
	for _, bench := range benches {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			for _, spec := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/spec=%v", bench, mode, spec)
				t.Run(name, func(t *testing.T) {
					opts := kernels.Options{Mode: mode, Ops: quickOps[bench], Workload: 2}
					cfg := machine.DefaultConfig()
					cfg.Core.InWindowSpec = spec
					mSeq, seqCyc := runWorkers(t, bench, opts, cfg, 1)
					for _, w := range parallelWorkerCounts {
						mPar, parCyc := runWorkers(t, bench, opts, cfg, w)
						assertMachinesEqual(t, fmt.Sprintf("%s/workers=%d", name, w), mSeq, mPar, seqCyc, parCyc)
						assertParallelClock(t, mPar, parCyc)
					}
				})
			}
		}
	}
}

// TestParallelEquivalenceDepth3 re-runs the kernel differential on a
// three-level hierarchy, where hazard scans see middle private banks
// and different latency structure.
func TestParallelEquivalenceDepth3(t *testing.T) {
	for _, info := range kernels.All() {
		bench := info.Name
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			name := fmt.Sprintf("depth3/%s/%v", bench, mode)
			t.Run(name, func(t *testing.T) {
				opts := kernels.Options{Mode: mode, Ops: quickOps[bench], Workload: 2}
				cfg := machine.DefaultConfig()
				cfg.Mem = memsys.DepthConfig(3)
				mSeq, seqCyc := runWorkers(t, bench, opts, cfg, 1)
				for _, w := range parallelWorkerCounts {
					mPar, parCyc := runWorkers(t, bench, opts, cfg, w)
					assertMachinesEqual(t, fmt.Sprintf("%s/workers=%d", name, w), mSeq, mPar, seqCyc, parCyc)
					assertParallelClock(t, mPar, parCyc)
				}
			})
		}
	}
}

// TestParallelEquivalenceLitmus differences every litmus test and
// machine configuration across worker counts. Litmus programs are
// all-interaction, so these runs mostly exercise the abort path — every
// epoch must vanish without trace.
func TestParallelEquivalenceLitmus(t *testing.T) {
	tests := []*litmus.Test{
		litmus.StoreBuffering(false, isa.ScopeGlobal),
		litmus.StoreBuffering(true, isa.ScopeGlobal),
		litmus.StoreBuffering(true, isa.ScopeSet),
		litmus.MessagePassing(false),
		litmus.MessagePassing(true),
		litmus.LoadBuffering(),
		litmus.IRIW(),
		litmus.ClassScopedSB(),
		litmus.ScopedSBLeaky(),
		litmus.SBWithStoreStoreFence(),
		litmus.MessagePassingSS(isa.ScopeGlobal),
		litmus.MessagePassingSS(isa.ScopeClass),
		litmus.CASIncrement(4, 16),
		litmus.CoWW(),
		litmus.MessagePassingFiner(),
	}
	cfgs := map[string]func(*machine.Config){
		"base": func(*machine.Config) {},
		"spec": func(c *machine.Config) { c.Core.InWindowSpec = true },
		"fifo": func(c *machine.Config) { c.Core.FIFOStoreBuffer = true },
		"spec-shadow": func(c *machine.Config) {
			c.Core.InWindowSpec = true
			c.Core.Recovery = cpu.RecoveryShadow
		},
	}
	for cfgName, tweak := range cfgs {
		for _, lt := range tests {
			name := fmt.Sprintf("%s/%s", cfgName, lt.Name)
			t.Run(name, func(t *testing.T) {
				cfg := litmus.DefaultMachineConfig()
				tweak(&cfg)
				run := func(workers int) (*machine.Machine, int64) {
					c := cfg
					c.Parallel.Workers = workers
					m, err := machine.New(c, lt.Program, lt.Threads)
					if err != nil {
						t.Fatalf("machine: %v", err)
					}
					cyc, err := m.Run(context.Background())
					if err != nil {
						t.Fatalf("run (workers=%d): %v", workers, err)
					}
					return m, cyc
				}
				mSeq, seqCyc := run(1)
				for _, w := range parallelWorkerCounts {
					mPar, parCyc := run(w)
					assertMachinesEqual(t, fmt.Sprintf("%s/workers=%d", name, w), mSeq, mPar, seqCyc, parCyc)
					assertParallelClock(t, mPar, parCyc)
				}
			})
		}
	}
}

// TestParallelEquivalenceManyCore differences the scale kernels on wide
// machines — 65 cores (first paged-sharer configuration past the inline
// bitmask) and 256 cores — and additionally requires that the epoch
// machinery actually engaged: the scale kernels' long private compute
// phases are exactly the traffic optimistic epochs exist to commit, so a
// run that never commits an epoch means the parallel core silently
// degraded to sequential stepping.
func TestParallelEquivalenceManyCore(t *testing.T) {
	if testing.Short() {
		t.Skip("many-core differential is slow")
	}
	for _, tc := range []struct {
		bench    string
		cores    int
		workload int // scale's balanced ring needs longer compute phases than the straggler variant
	}{
		{"scale", 65, 4},
		{"scale-imb", 65, 1},
		{"scale", 256, 4},
		{"scale-imb", 256, 1},
	} {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			name := fmt.Sprintf("%s/%d/%v", tc.bench, tc.cores, mode)
			t.Run(name, func(t *testing.T) {
				opts := kernels.Options{Mode: mode, Threads: tc.cores, Ops: 2, Workload: tc.workload}
				cfg := machine.DefaultConfig()
				cfg.Cores = tc.cores
				mSeq, seqCyc := runWorkers(t, tc.bench, opts, cfg, 1)
				for _, w := range parallelWorkerCounts {
					mPar, parCyc := runWorkers(t, tc.bench, opts, cfg, w)
					assertMachinesEqual(t, fmt.Sprintf("%s/workers=%d", name, w), mSeq, mPar, seqCyc, parCyc)
					assertParallelClock(t, mPar, parCyc)
					cs := mPar.Clock()
					if cs.Epochs == cs.EpochFails {
						t.Errorf("no epoch ever committed on %s (workers=%d): %+v", name, w, cs)
					}
					if cs.EpochCycles == 0 {
						t.Errorf("epochs committed zero cycles on %s (workers=%d): %+v", name, w, cs)
					}
				}
			})
		}
	}
}

// TestParallelTracedFallsBack pins the sequential fallback: a traced
// machine must never attempt an epoch, whatever Workers says.
func TestParallelTracedFallsBack(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Parallel.Workers = 4
	_, m := buildKernelMachine(t, "fence-drain",
		kernels.Options{Mode: kernels.Traditional, Ops: 20}, cfg)
	for i := 0; i < m.Cores(); i++ {
		m.Core(i).SetTracer(countingTracer{})
	}
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	cs := m.Clock()
	if cs.Epochs != 0 {
		t.Fatalf("traced machine attempted epochs: %+v", cs)
	}
	if !cs.TracerPinned {
		t.Fatalf("traced fallback did not pin: %+v", cs)
	}
}
