package memsys

import (
	"fmt"

	"sfence/internal/stats"
)

// CacheConfig describes one cache level.
type CacheConfig struct {
	SizeBytes int // total capacity
	Ways      int // associativity
	LineBytes int // line size
	Latency   int // access latency in cycles
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

func (c CacheConfig) validate(name string) error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 || c.Latency < 0 {
		return fmt.Errorf("memsys: %s config has non-positive field: %+v", name, c)
	}
	if c.LineBytes%WordBytes != 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("memsys: %s line size %d must be a power-of-two multiple of %d", name, c.LineBytes, WordBytes)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("memsys: %s size %d not divisible by ways*line (%d*%d)", name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("memsys: %s set count %d must be a power of two", name, sets)
	}
	return nil
}

// Config describes the whole hierarchy. The defaults in DefaultConfig
// mirror Table III of the paper.
type Config struct {
	L1 CacheConfig // private, per core
	L2 CacheConfig // shared, inclusive, holds the directory
	// MemLatency is the DRAM round-trip latency in cycles.
	MemLatency int
	// RemoteDirtyPenalty is the extra latency when the line must be
	// fetched from another core's modified L1 copy.
	RemoteDirtyPenalty int
}

// DefaultConfig returns the paper's Table III memory-system parameters:
// private 32 KB 4-way L1 with 2-cycle latency, shared 1 MB 8-way L2 with
// 10-cycle latency, and 300-cycle memory.
func DefaultConfig() Config {
	return Config{
		L1:                 CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, Latency: 2},
		L2:                 CacheConfig{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, Latency: 10},
		MemLatency:         300,
		RemoteDirtyPenalty: 10,
	}
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if err := c.L1.validate("L1"); err != nil {
		return err
	}
	if err := c.L2.validate("L2"); err != nil {
		return err
	}
	if c.L1.LineBytes != c.L2.LineBytes {
		return fmt.Errorf("memsys: L1 line %d != L2 line %d", c.L1.LineBytes, c.L2.LineBytes)
	}
	if c.MemLatency < 0 || c.RemoteDirtyPenalty < 0 {
		return fmt.Errorf("memsys: negative latency")
	}
	return nil
}

// L1 line states.
const (
	l1Invalid uint8 = iota
	l1Shared
	l1Exclusive // clean, sole owner (E of MESI)
	l1Modified
)

type l1Line struct {
	tag   int64
	state uint8
	lru   uint64
}

type l1Cache struct {
	cfg   CacheConfig
	sets  int
	lines []l1Line // sets*ways
	tick  uint64
}

type l2Line struct {
	tag     int64
	valid   bool
	dirty   bool
	sharers uint64 // bitmask of cores with an L1 copy (S/E/M)
	owner   int8   // core index holding E/M, or -1
	lru     uint64
}

type l2Cache struct {
	cfg   CacheConfig
	sets  int
	lines []l2Line
	tick  uint64
}

// CoreStats counts memory-system events for one core. Fields are
// registry-typed (stats.Counter) and published into the machine's stats
// registry by RegisterStats; CI's stale-counter gate keeps raw uint64
// fields from creeping back in.
type CoreStats struct {
	Loads         stats.Counter
	Stores        stats.Counter
	L1Hits        stats.Counter
	L1Misses      stats.Counter
	L2Hits        stats.Counter
	L2Misses      stats.Counter
	Upgrades      stats.Counter // S->M ownership upgrades
	Invalidations stats.Counter // lines invalidated in this core's L1 by others
	Writebacks    stats.Counter // dirty L1 evictions
	RemoteDirty   stats.Counter // misses serviced from another core's M line
}

// register publishes the counters into g under stable dotted names.
func (s *CoreStats) register(g *stats.Group) {
	g.Counter(&s.Loads, "loads", "demand loads reaching the hierarchy")
	g.Counter(&s.Stores, "stores", "stores and CAS read-for-ownership accesses")
	g.Counter(&s.L1Hits, "l1_hits", "L1 hits")
	g.Counter(&s.L1Misses, "l1_misses", "L1 misses")
	g.Counter(&s.L2Hits, "l2_hits", "L2 hits")
	g.Counter(&s.L2Misses, "l2_misses", "L2 misses (memory fetches)")
	g.Counter(&s.Upgrades, "upgrades", "S->M ownership upgrades")
	g.Counter(&s.Invalidations, "invalidations", "L1 lines invalidated by other cores")
	g.Counter(&s.Writebacks, "writebacks", "dirty L1 evictions")
	g.Counter(&s.RemoteDirty, "remote_dirty", "misses serviced from another core's modified line")
}

// Hierarchy is the shared two-level cache model. It is purely a timing and
// coherence-state model: Access returns the latency of an access and
// updates tag/directory state; values live in the Image.
type Hierarchy struct {
	cfg   Config
	cores int
	l1    []l1Cache
	l2    l2Cache
	stats []CoreStats

	lineShift uint
}

// NewHierarchy builds a hierarchy for the given core count.
func NewHierarchy(cores int, cfg Config) (*Hierarchy, error) {
	if cores <= 0 || cores > 64 {
		return nil, fmt.Errorf("memsys: core count %d out of range [1,64]", cores)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, cores: cores, stats: make([]CoreStats, cores)}
	for lb := cfg.L1.LineBytes; lb > 1; lb >>= 1 {
		h.lineShift++
	}
	h.l1 = make([]l1Cache, cores)
	for i := range h.l1 {
		h.l1[i] = l1Cache{
			cfg:   cfg.L1,
			sets:  cfg.L1.Sets(),
			lines: make([]l1Line, cfg.L1.Sets()*cfg.L1.Ways),
		}
	}
	h.l2 = l2Cache{
		cfg:   cfg.L2,
		sets:  cfg.L2.Sets(),
		lines: make([]l2Line, cfg.L2.Sets()*cfg.L2.Ways),
	}
	for i := range h.l2.lines {
		h.l2.lines[i].owner = -1
	}
	return h, nil
}

// MustHierarchy is NewHierarchy that panics on error.
func MustHierarchy(cores int, cfg Config) *Hierarchy {
	h, err := NewHierarchy(cores, cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Stats returns the per-core statistics accumulated so far.
func (h *Hierarchy) Stats(core int) CoreStats { return h.stats[core] }

// RegisterStats publishes one core's memory-system counters into g
// (typically the machine registry's "coreN.mem" group).
func (h *Hierarchy) RegisterStats(g *stats.Group, core int) { h.stats[core].register(g) }

// TotalStats sums statistics across cores.
func (h *Hierarchy) TotalStats() CoreStats {
	var t CoreStats
	for i := range h.stats {
		s := &h.stats[i]
		t.Loads += s.Loads
		t.Stores += s.Stores
		t.L1Hits += s.L1Hits
		t.L1Misses += s.L1Misses
		t.L2Hits += s.L2Hits
		t.L2Misses += s.L2Misses
		t.Upgrades += s.Upgrades
		t.Invalidations += s.Invalidations
		t.Writebacks += s.Writebacks
		t.RemoteDirty += s.RemoteDirty
	}
	return t
}

func (h *Hierarchy) lineOf(addr int64) int64 { return addr >> h.lineShift }

// Sharers returns the directory's sharer bitmask for the line containing
// addr — the cores whose L1 may hold a copy — and whether the line is
// present in the L2 directory at all (an absent line means the mask is
// unknown and callers must assume every core).
//
// Note the mask is a snapshot, not a history: a write Access to the line
// resets it to the writer alone, and an L2 eviction discards it, while
// loads that used the line may still be in flight in some core's ROB.
// Machine.broadcastStore therefore does NOT use it as a snoop filter —
// doing so could skip a core holding a speculative load that must replay —
// and relies on the exact per-core spec-load occupancy count instead (see
// DESIGN.md, "Snoop filtering").
func (h *Hierarchy) Sharers(addr int64) (uint64, bool) {
	if l := h.l2.find(h.lineOf(addr)); l != nil {
		return l.sharers, true
	}
	return 0, false
}

// --- L1 helpers ---

func (c *l1Cache) find(line int64) *l1Line {
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if l.state != l1Invalid && l.tag == line {
			return l
		}
	}
	return nil
}

// victim returns the line to fill (an invalid way if any, else LRU).
func (c *l1Cache) victim(line int64) *l1Line {
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	var v *l1Line
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if l.state == l1Invalid {
			return l
		}
		if v == nil || l.lru < v.lru {
			v = l
		}
	}
	return v
}

func (c *l1Cache) touch(l *l1Line) {
	c.tick++
	l.lru = c.tick
}

// --- L2 helpers ---

func (c *l2Cache) find(line int64) *l2Line {
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == line {
			return l
		}
	}
	return nil
}

func (c *l2Cache) victim(line int64) *l2Line {
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	var v *l2Line
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if !l.valid {
			return l
		}
		if v == nil || l.lru < v.lru {
			v = l
		}
	}
	return v
}

func (c *l2Cache) touch(l *l2Line) {
	c.tick++
	l.lru = c.tick
}

// invalidateL1Copies removes the line from every L1 named in the sharer
// mask (back-invalidation or coherence invalidation), charging the
// Invalidations stat to the cores losing the line. It returns whether any
// invalidated copy was modified.
func (h *Hierarchy) invalidateL1Copies(line int64, sharers uint64, except int) bool {
	dirty := false
	for c := 0; c < h.cores; c++ {
		if c == except || sharers&(1<<uint(c)) == 0 {
			continue
		}
		if l := h.l1[c].find(line); l != nil {
			if l.state == l1Modified {
				dirty = true
				h.stats[c].Writebacks++
			}
			l.state = l1Invalid
			h.stats[c].Invalidations++
		}
	}
	return dirty
}

// Access simulates one memory access by `core` to byte address addr and
// returns its latency in cycles. write=true covers stores and the
// read-for-ownership of CAS.
func (h *Hierarchy) Access(core int, addr int64, write bool) int {
	line := h.lineOf(addr)
	st := &h.stats[core]
	if write {
		st.Stores++
	} else {
		st.Loads++
	}
	l1 := &h.l1[core]
	if l := l1.find(line); l != nil {
		l1.touch(l)
		switch {
		case !write: // read hit in any valid state
			st.L1Hits++
			return h.cfg.L1.Latency
		case l.state == l1Modified:
			st.L1Hits++
			return h.cfg.L1.Latency
		case l.state == l1Exclusive: // silent E->M upgrade
			l.state = l1Modified
			st.L1Hits++
			return h.cfg.L1.Latency
		default: // Shared write: upgrade through directory
			st.L1Hits++
			st.Upgrades++
			lat := h.cfg.L1.Latency + h.cfg.L2.Latency
			if l2l := h.l2.find(line); l2l != nil {
				h.invalidateL1Copies(line, l2l.sharers, core)
				l2l.sharers = 1 << uint(core)
				l2l.owner = int8(core)
				l2l.dirty = true
				h.l2.touch(l2l)
			}
			l.state = l1Modified
			return lat
		}
	}

	// L1 miss.
	st.L1Misses++
	lat := h.cfg.L1.Latency + h.cfg.L2.Latency
	l2l := h.l2.find(line)
	if l2l == nil {
		// L2 miss: fetch from memory, install in L2 (evicting with
		// back-invalidation to preserve inclusion).
		st.L2Misses++
		lat += h.cfg.MemLatency
		v := h.l2.victim(line)
		if v.valid {
			h.invalidateL1Copies(v.tag, v.sharers, -1)
		}
		*v = l2Line{tag: line, valid: true, owner: -1}
		l2l = v
	} else {
		st.L2Hits++
		// If another core holds the line modified, it must supply the
		// data (and lose or downgrade its copy).
		if l2l.owner >= 0 && int(l2l.owner) != core {
			if ol := h.l1[l2l.owner].find(line); ol != nil && (ol.state == l1Modified || ol.state == l1Exclusive) {
				if ol.state == l1Modified {
					lat += h.cfg.RemoteDirtyPenalty
					st.RemoteDirty++
					h.stats[l2l.owner].Writebacks++
					l2l.dirty = true
				}
				if write {
					ol.state = l1Invalid
					h.stats[l2l.owner].Invalidations++
				} else {
					ol.state = l1Shared
				}
			}
			if !write {
				l2l.owner = -1
			}
		}
	}
	h.l2.touch(l2l)

	// Coherence action at the directory.
	if write {
		h.invalidateL1Copies(line, l2l.sharers, core)
		l2l.sharers = 1 << uint(core)
		l2l.owner = int8(core)
		l2l.dirty = true
	} else {
		l2l.sharers |= 1 << uint(core)
		if l2l.sharers != 1<<uint(core) {
			l2l.owner = -1
		}
	}

	// Install in L1, evicting as needed.
	v := l1.victim(line)
	if v.state != l1Invalid {
		if v.state == l1Modified {
			st.Writebacks++
			if old := h.l2.find(v.tag); old != nil {
				old.dirty = true
			}
		}
		// Leave the old line's directory bit stale; a later invalidation
		// of the stale sharer is a harmless no-op.
		v.state = l1Invalid
	}
	v.tag = line
	switch {
	case write:
		v.state = l1Modified
	case l2l.sharers == 1<<uint(core):
		v.state = l1Exclusive
		l2l.owner = int8(core)
	default:
		v.state = l1Shared
	}
	l1.touch(v)
	return lat
}
