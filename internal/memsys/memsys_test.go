package memsys

import (
	"testing"
	"testing/quick"
)

func TestImageRoundTrip(t *testing.T) {
	im := NewImage(1 << 12)
	im.Store(64, 12345)
	if got := im.Load(64); got != 12345 {
		t.Errorf("Load(64) = %d, want 12345", got)
	}
	if got := im.Load(72); got != 0 {
		t.Errorf("Load(72) = %d, want 0 (untouched)", got)
	}
}

func TestImageSizeRoundsToPowerOfTwo(t *testing.T) {
	im := NewImage(3000)
	if im.Size() != 4096 {
		t.Errorf("Size = %d, want 4096", im.Size())
	}
	im = NewImage(1)
	if im.Size() != 1024 {
		t.Errorf("minimum Size = %d, want 1024", im.Size())
	}
}

func TestImageNormWrapsAndAligns(t *testing.T) {
	im := NewImage(1 << 12) // 4096
	if got := im.Norm(4096 + 16); got != 16 {
		t.Errorf("Norm wrap = %d, want 16", got)
	}
	if got := im.Norm(21); got != 16 {
		t.Errorf("Norm align = %d, want 16", got)
	}
	if got := im.Norm(-8); got >= 0 && got < 4096 && got%8 == 0 {
		// negative addresses must still normalize into range
	} else {
		t.Errorf("Norm(-8) = %d out of range", got)
	}
}

func TestImageValid(t *testing.T) {
	im := NewImage(1 << 12)
	cases := []struct {
		addr int64
		want bool
	}{
		{0, true}, {8, true}, {4088, true},
		{4096, false}, {-8, false}, {12, false},
	}
	for _, c := range cases {
		if got := im.Valid(c.addr); got != c.want {
			t.Errorf("Valid(%d) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestImageCAS(t *testing.T) {
	im := NewImage(1 << 12)
	im.Store(8, 5)
	if !im.CompareAndSwap(8, 5, 9) {
		t.Error("CAS with matching old failed")
	}
	if im.Load(8) != 9 {
		t.Error("CAS did not write")
	}
	if im.CompareAndSwap(8, 5, 11) {
		t.Error("CAS with stale old succeeded")
	}
	if im.Load(8) != 9 {
		t.Error("failed CAS mutated memory")
	}
}

// Property: store-then-load returns the stored value for any in-range
// address, and never touches neighbours.
func TestImageStoreLoadProperty(t *testing.T) {
	im := NewImage(1 << 14)
	f := func(rawAddr int64, val int64) bool {
		addr := im.Norm(rawAddr)
		neighbor := im.Norm(addr + 8)
		before := im.Load(neighbor)
		im.Store(addr, val)
		if im.Load(addr) != val {
			return false
		}
		return neighbor == addr || im.Load(neighbor) == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLayoutAllocation(t *testing.T) {
	l := NewLayout(100, 1<<12) // unaligned base rounds up to 104
	a := l.Word("a")
	if a != 104 {
		t.Errorf("first word at %d, want 104", a)
	}
	arr := l.Array("arr", 4)
	if arr != 112 {
		t.Errorf("array at %d, want 112", arr)
	}
	if l.Addr("a") != a || l.Addr("arr") != arr {
		t.Error("Addr lookup mismatch")
	}
	l.AlignTo(64)
	if l.End()%64 != 0 {
		t.Errorf("AlignTo(64) left End = %d", l.End())
	}
}

func TestLayoutPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	l := NewLayout(0, 64)
	l.Word("x")
	expectPanic("duplicate name", func() { l.Word("x") })
	expectPanic("overflow", func() { l.Array("big", 100) })
	expectPanic("unknown addr", func() { l.Addr("nope") })
	expectPanic("bad align", func() { l.AlignTo(7) })
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("DefaultConfig invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.Levels[0].LineBytes = 48 // not a power of two
	if err := bad.Validate(); err == nil {
		t.Error("48-byte line accepted")
	}
	bad = DefaultConfig()
	bad.Levels[1].LineBytes = 128 // mismatched line sizes
	if err := bad.Validate(); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	bad = DefaultConfig()
	bad.MemLatency = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative memory latency accepted")
	}
}

func TestDefaultConfigMatchesTableIII(t *testing.T) {
	c := DefaultConfig()
	if c.Levels[0].SizeBytes != 32<<10 || c.Levels[0].Ways != 4 || c.Levels[0].Latency != 2 || c.Levels[0].Shared {
		t.Errorf("L1 config %+v does not match Table III", c.Levels[0])
	}
	if c.Levels[1].SizeBytes != 1<<20 || c.Levels[1].Ways != 8 || c.Levels[1].Latency != 10 || !c.Levels[1].Shared {
		t.Errorf("L2 config %+v does not match Table III", c.Levels[1])
	}
	if c.MemLatency != 300 {
		t.Errorf("MemLatency = %d, want 300", c.MemLatency)
	}
}

func newH(t *testing.T, cores int) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(cores, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestColdMissThenHit(t *testing.T) {
	h := newH(t, 2)
	cfg := h.Config()
	missLat := cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.MemLatency
	if got := h.Access(0, 0, false); got != missLat {
		t.Errorf("cold read latency = %d, want %d", got, missLat)
	}
	if got := h.Access(0, 0, false); got != cfg.Levels[0].Latency {
		t.Errorf("L1 hit latency = %d, want %d", got, cfg.Levels[0].Latency)
	}
	// Same line, different word: still an L1 hit.
	if got := h.Access(0, 8, false); got != cfg.Levels[0].Latency {
		t.Errorf("same-line hit latency = %d, want %d", got, cfg.Levels[0].Latency)
	}
	s := h.Stats(0)
	if s.Level[0].Hits != 2 || s.Level[0].Misses != 1 || s.Level[1].Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestExclusiveReadThenWriteIsSilent(t *testing.T) {
	h := newH(t, 2)
	cfg := h.Config()
	h.Access(0, 0, false) // cold read -> E
	if got := h.Access(0, 0, true); got != cfg.Levels[0].Latency {
		t.Errorf("E->M write latency = %d, want silent %d", got, cfg.Levels[0].Latency)
	}
	if h.Stats(0).Upgrades != 0 {
		t.Error("silent E->M counted as directory upgrade")
	}
}

func TestSharedWriteUpgradesAndInvalidates(t *testing.T) {
	h := newH(t, 2)
	cfg := h.Config()
	h.Access(0, 0, false) // core0 E
	h.Access(1, 0, false) // core1 joins: both S
	got := h.Access(0, 0, true)
	want := cfg.Levels[0].Latency + cfg.Levels[1].Latency
	if got != want {
		t.Errorf("S->M upgrade latency = %d, want %d", got, want)
	}
	if h.Stats(0).Upgrades != 1 {
		t.Error("upgrade not counted")
	}
	if h.Stats(1).Invalidations != 1 {
		t.Error("sharer not invalidated")
	}
	// Core1 read now misses (L2 hit, dirty in core0's L1).
	got = h.Access(1, 0, false)
	want = cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.RemoteDirtyPenalty
	if got != want {
		t.Errorf("remote-dirty read latency = %d, want %d", got, want)
	}
}

func TestWriteMissInvalidatesRemoteModified(t *testing.T) {
	h := newH(t, 2)
	cfg := h.Config()
	h.Access(0, 0, true) // core0 M
	got := h.Access(1, 0, true)
	want := cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.RemoteDirtyPenalty
	if got != want {
		t.Errorf("write miss to remote-M latency = %d, want %d", got, want)
	}
	// Core0's copy must now be invalid: its next read misses.
	if got := h.Access(0, 0, false); got == cfg.Levels[0].Latency {
		t.Error("stale M copy survived remote write")
	}
}

func TestL1EvictionLRU(t *testing.T) {
	h := newH(t, 1)
	cfg := h.Config()
	sets := cfg.Levels[0].Sets()
	line := int64(cfg.Levels[0].LineBytes)
	// Fill one set (4 ways), then touch way 0 again, then bring a 5th
	// line: the LRU victim should be way 1's line, not way 0's.
	addr := func(i int) int64 { return int64(i) * line * int64(sets) } // same set
	for i := 0; i < 4; i++ {
		h.Access(0, addr(i), false)
	}
	h.Access(0, addr(0), false) // refresh line 0
	h.Access(0, addr(4), false) // evicts line 1
	if got := h.Access(0, addr(0), false); got != cfg.Levels[0].Latency {
		t.Error("recently-used line was evicted")
	}
	if got := h.Access(0, addr(1), false); got == cfg.Levels[0].Latency {
		t.Error("LRU line was not evicted")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	h := newH(t, 1)
	cfg := h.Config()
	sets := cfg.Levels[0].Sets()
	line := int64(cfg.Levels[0].LineBytes)
	addr := func(i int) int64 { return int64(i) * line * int64(sets) }
	h.Access(0, addr(0), true) // dirty
	for i := 1; i <= 4; i++ {
		h.Access(0, addr(i), false) // force eviction of addr(0)
	}
	if h.Stats(0).Writebacks == 0 {
		t.Error("dirty eviction produced no writeback")
	}
}

func TestL2BackInvalidationPreservesInclusion(t *testing.T) {
	cfg := DefaultConfig()
	// Tiny L2 so we can force L2 evictions easily: 2 sets, 1 way.
	cfg.Levels[1] = CacheConfig{SizeBytes: 128, Ways: 1, LineBytes: 64, Latency: 10, Shared: true}
	cfg.Levels[0] = CacheConfig{SizeBytes: 1 << 10, Ways: 4, LineBytes: 64, Latency: 2}
	h, err := NewHierarchy(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h.Access(0, 0, false)   // line 0 -> L2 set 0
	h.Access(0, 128, false) // line 2 -> L2 set 0, evicts line 0, must back-invalidate L1
	if got := h.Access(0, 0, false); got == cfg.Levels[0].Latency {
		t.Error("L1 kept line after L2 eviction (inclusion violated)")
	}
	if h.Stats(0).Invalidations == 0 {
		t.Error("back-invalidation not counted")
	}
}

func TestHierarchyRejectsBadCoreCount(t *testing.T) {
	if _, err := NewHierarchy(0, DefaultConfig()); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := NewHierarchy(MaxCores+1, DefaultConfig()); err == nil {
		t.Errorf("%d cores accepted", MaxCores+1)
	}
	if _, err := NewHierarchy(65, DefaultConfig()); err != nil {
		t.Errorf("65 cores rejected: %v", err)
	}
}

func TestTotalStatsSums(t *testing.T) {
	h := newH(t, 2)
	h.Access(0, 0, false)
	h.Access(1, 4096, true)
	tot := h.TotalStats()
	if tot.Loads != 1 || tot.Stores != 1 || tot.Level[0].Misses != 2 {
		t.Errorf("TotalStats = %+v", tot)
	}
}

// Property: latency is always one of the five legal shapes and state
// converges (a second access by the same core to the same address with the
// same kind is always an L1 hit).
func TestAccessLatencyShapesProperty(t *testing.T) {
	h := newH(t, 4)
	cfg := h.Config()
	legal := map[int]bool{
		cfg.Levels[0].Latency:                                                                   true,
		cfg.Levels[0].Latency + cfg.Levels[1].Latency:                                           true,
		cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.RemoteDirtyPenalty:                  true,
		cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.MemLatency:                          true,
		cfg.Levels[0].Latency + cfg.Levels[1].Latency + cfg.MemLatency + cfg.RemoteDirtyPenalty: true,
	}
	f := func(core uint8, rawAddr int64, write bool) bool {
		c := int(core % 4)
		addr := (rawAddr & 0xffff) &^ 7
		if addr < 0 {
			addr = -addr
		}
		lat := h.Access(c, addr, write)
		if !legal[lat] {
			t.Logf("illegal latency %d", lat)
			return false
		}
		return h.Access(c, addr, write) == cfg.Levels[0].Latency
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
