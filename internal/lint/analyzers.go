package lint

import (
	"fmt"
	"go/ast"
	"strings"
)

// Analyzers returns the repository's analyzer set in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{NoGlobalHooks, RegistryCounters, PackageDocs}
}

// globalHookNames are the process-global observer setters that were
// removed when progress reporting moved to explicit plumbing. Nothing may
// reintroduce them — not as a definition, not as a call, not even as a
// forwarding method — because a global hook makes simulation output
// depend on ambient state and breaks run-to-run determinism.
var globalHookNames = map[string]bool{
	"SetRunner":             true,
	"SetProgress":           true,
	"SetExperimentRunner":   true,
	"SetExperimentProgress": true,
}

// NoGlobalHooks flags any identifier naming a banned process-global hook
// setter. Scanning identifiers (rather than grepping text) means prose in
// comments may discuss the old API freely; only code is flagged.
var NoGlobalHooks = &Analyzer{
	Name: "noglobalhooks",
	Doc:  "forbid reintroduction of process-global progress/runner hook setters",
	Run: func(p *Package) []Finding {
		var out []Finding
		for _, name := range sortedFileNames(p) {
			ast.Inspect(p.Files[name], func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if ok && globalHookNames[id.Name] {
					out = append(out, Finding{
						Pos:      p.Fset.Position(id.Pos()),
						Analyzer: "noglobalhooks",
						Msg:      fmt.Sprintf("identifier %s reintroduces a banned process-global hook setter", id.Name),
					})
				}
				return true
			})
		}
		return out
	},
}

// guardedStats maps a package directory to the stats-registry struct
// types whose fields must route through the stats package. These are the
// structs sfence-report diffs between runs; a plain numeric field would
// be invisible to snapshotting and silently drift from the report.
var guardedStats = map[string][]string{
	"internal/cpu":    {"Stats"},
	"internal/memsys": {"CoreStats", "LevelStats"},
}

// numericIdents are the built-in numeric types a guarded struct may not
// use directly as field types.
var numericIdents = map[string]bool{
	"int": true, "int8": true, "int16": true, "int32": true, "int64": true,
	"uint": true, "uint8": true, "uint16": true, "uint32": true, "uint64": true,
	"uintptr": true, "byte": true, "rune": true, "float32": true, "float64": true,
	"complex64": true, "complex128": true,
}

// RegistryCounters checks that the counter-registry structs declare every
// field through the stats package (stats.Counter, stats.Gauge, or nested
// guarded structs) rather than as raw numeric types.
var RegistryCounters = &Analyzer{
	Name: "registrycounters",
	Doc:  "registry stat structs must not declare raw numeric fields",
	Run: func(p *Package) []Finding {
		want := guardedStats[p.Dir]
		if len(want) == 0 {
			return nil
		}
		guarded := map[string]bool{}
		for _, t := range want {
			guarded[t] = true
		}
		var out []Finding
		for _, name := range sortedFileNames(p) {
			ast.Inspect(p.Files[name], func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok || !guarded[ts.Name.Name] {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if id := rawNumericType(field.Type); id != nil {
						out = append(out, Finding{
							Pos:      p.Fset.Position(field.Pos()),
							Analyzer: "registrycounters",
							Msg: fmt.Sprintf("%s declares a raw %s field; use stats.Counter or stats.Gauge so snapshots and reports see it",
								ts.Name.Name, id.Name),
						})
					}
				}
				return true
			})
		}
		return out
	},
}

// rawNumericType reports the built-in numeric identifier at the core of a
// field type (unwrapping pointers, slices, and arrays), or nil if the
// type routes through a named type such as stats.Counter.
func rawNumericType(t ast.Expr) *ast.Ident {
	switch e := t.(type) {
	case *ast.Ident:
		if numericIdents[e.Name] {
			return e
		}
	case *ast.StarExpr:
		return rawNumericType(e.X)
	case *ast.ArrayType:
		return rawNumericType(e.Elt)
	}
	return nil
}

// PackageDocs requires every internal package to open with a standard
// "Package <name>" doc comment so `go doc` output stays complete.
var PackageDocs = &Analyzer{
	Name: "packagedocs",
	Doc:  "every internal package must carry a 'Package <name>' doc comment",
	Run: func(p *Package) []Finding {
		if !strings.HasPrefix(p.Dir, "internal/") || strings.HasSuffix(p.Name, "_test") {
			return nil
		}
		prefix := "Package " + p.Name + " "
		for _, name := range sortedFileNames(p) {
			f := p.Files[name]
			if strings.HasSuffix(f.Name.Name, "_test") {
				continue
			}
			if f.Doc != nil && strings.HasPrefix(f.Doc.Text(), prefix) {
				return nil
			}
		}
		first := sortedFileNames(p)[0]
		return []Finding{{
			Pos:      p.Fset.Position(p.Files[first].Package),
			Analyzer: "packagedocs",
			Msg:      fmt.Sprintf("package %s has no doc comment starting %q", p.Name, strings.TrimSpace(prefix)),
		}}
	},
}
