package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sfence"
	"sfence/internal/exp"
	"sfence/internal/kernels"
	"sfence/internal/machine"
	"sfence/internal/results"
	"sfence/internal/serve"
	"sfence/internal/stats"
)

// simExperiment is the cheapest registry experiment that actually runs
// simulations (6 quick-scale runs), used wherever a test needs a job
// whose runner is really invoked.
const simExperiment = "ablation/fss-depth"

// startServer builds a Server over opts, fronts it with httptest, and
// returns a client pointed at it. Cleanup closes the server first (which
// cancels in-flight jobs and thereby unblocks any open event streams)
// and the listener second.
func startServer(t *testing.T, opts serve.Options) (*serve.Server, *serve.Client) {
	t.Helper()
	srv := serve.NewServer(opts)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		srv.Close()
		hs.Close()
	})
	return srv, &serve.Client{BaseURL: hs.URL}
}

// gatedRunner returns a WrapRunner whose simulations block until gate is
// closed (or the job's context is cancelled), plus a channel that receives
// one value when the first simulation has actually started.
func gatedRunner(gate <-chan struct{}) (func(exp.Runner) exp.Runner, <-chan struct{}) {
	started := make(chan struct{}, 1024)
	wrap := func(next exp.Runner) exp.Runner {
		return func(ctx context.Context, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			select {
			case <-gate:
			case <-ctx.Done():
				return kernels.Result{}, ctx.Err()
			}
			return next(ctx, bench, opts, cfg)
		}
	}
	return wrap, started
}

// waitState polls a job until it reaches want or the deadline passes.
func waitState(t *testing.T, c *serve.Client, id, want string) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := c.Status(context.Background(), id)
		if err != nil {
			t.Fatalf("status %s: %v", id, err)
		}
		if st.State == want {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: state %q, want %q (timed out)", id, st.State, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServedEnvelopeByteIdentity is the core serving contract: for every
// suite experiment ID, the envelope served over HTTP is byte-identical to
// the artifact a direct lab run produces — on a cold cache (the job
// simulates) and again on a warm cache (the job is served from the shared
// RunCache without simulating). -short keeps the simulation-free registry
// rows plus one real sweep; the full sweep covers every suite ID.
func TestServedEnvelopeByteIdentity(t *testing.T) {
	ids := []string{"table3", "table4", "hwcost", simExperiment}
	if !testing.Short() {
		ids = ids[:0]
		for _, spec := range results.Experiments() {
			if spec.InSuite() {
				ids = append(ids, spec.ID)
			}
		}
	}

	cache, err := sfence.NewRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, client := startServer(t, serve.Options{Cache: cache, Scale: exp.Quick})

	directCache, err := sfence.NewRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	lab := sfence.NewLab(sfence.WithScale(sfence.Quick), sfence.WithCache(directCache))

	ctx := context.Background()
	for _, id := range ids {
		res, err := lab.Run(ctx, id)
		if err != nil {
			t.Fatalf("direct lab.Run(%s): %v", id, err)
		}
		want, err := res.JSON()
		if err != nil {
			t.Fatalf("direct envelope %s: %v", id, err)
		}

		cold, err := client.Run(ctx, serve.JobRequest{Experiment: id}, nil)
		if err != nil {
			t.Fatalf("served cold %s: %v", id, err)
		}
		if string(cold) != string(want) {
			t.Errorf("%s: cold served envelope differs from direct lab.Run artifact", id)
		}
		warm, err := client.Run(ctx, serve.JobRequest{Experiment: id}, nil)
		if err != nil {
			t.Fatalf("served warm %s: %v", id, err)
		}
		if string(warm) != string(want) {
			t.Errorf("%s: warm served envelope differs from direct lab.Run artifact", id)
		}
	}

	st := cache.Stats()
	if st.Hits == 0 {
		t.Errorf("warm round produced no cache hits: %+v", st)
	}
}

// TestServeExperimentsEndpoint checks the registry listing matches the
// in-process registry, including the suite membership flags.
func TestServeExperimentsEndpoint(t *testing.T) {
	_, client := startServer(t, serve.Options{Scale: exp.Quick})
	infos, err := client.Experiments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	specs := results.Experiments()
	if len(infos) != len(specs) {
		t.Fatalf("got %d experiments, want %d", len(infos), len(specs))
	}
	for i, spec := range specs {
		if infos[i].ID != spec.ID {
			t.Errorf("experiment %d: ID %q, want %q", i, infos[i].ID, spec.ID)
		}
		if infos[i].InSuite != spec.InSuite() {
			t.Errorf("experiment %s: InSuite %v, want %v", spec.ID, infos[i].InSuite, spec.InSuite())
		}
	}
}

// TestServeSubmitValidation exercises the 400 paths: unknown experiment
// IDs and unknown scales are rejected at submit with a real error body.
func TestServeSubmitValidation(t *testing.T) {
	_, client := startServer(t, serve.Options{Scale: exp.Quick})
	ctx := context.Background()
	if _, err := client.Submit(ctx, serve.JobRequest{Experiment: "no-such-figure"}); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("unknown experiment: got %v, want unknown-experiment error", err)
	}
	if _, err := client.Submit(ctx, serve.JobRequest{Experiment: "table4", Scale: "huge"}); err == nil || !strings.Contains(err.Error(), "unknown scale") {
		t.Errorf("unknown scale: got %v, want unknown-scale error", err)
	}
	if _, err := client.Status(ctx, "j999"); err == nil || !strings.Contains(err.Error(), "unknown job") {
		t.Errorf("unknown job: got %v, want unknown-job error", err)
	}
}

// TestServeEventStream follows one cold-cache job end to end and checks
// the stream's shape: queued, then running, monotonic progress with live
// simulated-cycle throughput, and a terminal done event.
func TestServeEventStream(t *testing.T) {
	cache, err := sfence.NewRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, client := startServer(t, serve.Options{Cache: cache, Scale: exp.Quick})

	var states []string
	var progress []serve.Event
	sawRunningBeforeProgress := true
	running := false
	err = func() error {
		st, err := client.Submit(context.Background(), serve.JobRequest{Experiment: simExperiment})
		if err != nil {
			return err
		}
		return client.Events(context.Background(), st.ID, func(ev serve.Event) error {
			switch ev.Type {
			case "state":
				states = append(states, ev.State)
				running = running || ev.State == serve.StateRunning
			case "progress":
				if !running {
					sawRunningBeforeProgress = false
				}
				progress = append(progress, ev)
			default:
				return fmt.Errorf("unexpected event type %q", ev.Type)
			}
			return nil
		})
	}()
	if err != nil {
		t.Fatal(err)
	}

	if len(states) < 3 || states[0] != serve.StateQueued || states[len(states)-1] != serve.StateDone {
		t.Fatalf("state sequence %v, want queued ... done", states)
	}
	if !sawRunningBeforeProgress {
		t.Error("saw progress before the running state event")
	}
	if len(progress) == 0 {
		t.Fatal("no progress events")
	}
	for i := 1; i < len(progress); i++ {
		if progress[i].Done < progress[i-1].Done {
			t.Errorf("progress Done went backwards: %d after %d", progress[i].Done, progress[i-1].Done)
		}
	}
	last := progress[len(progress)-1]
	if last.Done != last.Total {
		t.Errorf("final progress %d/%d, want complete", last.Done, last.Total)
	}
	if last.SimCycles <= 0 {
		t.Errorf("cold-cache job reported %d simulated cycles, want > 0", last.SimCycles)
	}
	if last.FenceStallShare < 0 || last.FenceStallShare > 1 {
		t.Errorf("fence-stall share %v outside [0,1]", last.FenceStallShare)
	}
}

// TestServeJobTimeout submits a job whose simulations block forever and a
// tiny timeout; the job must fail with the timeout error, and the result
// endpoint must report it.
func TestServeJobTimeout(t *testing.T) {
	gate := make(chan struct{}) // never closed: simulations block until timeout
	wrap, _ := gatedRunner(gate)
	_, client := startServer(t, serve.Options{Scale: exp.Quick, WrapRunner: wrap})

	st, err := client.Submit(context.Background(), serve.JobRequest{Experiment: simExperiment, TimeoutMs: 50})
	if err != nil {
		t.Fatal(err)
	}
	got := waitState(t, client, st.ID, serve.StateFailed)
	if !strings.Contains(got.Error, "job timeout exceeded") {
		t.Errorf("failed job error %q, want timeout message", got.Error)
	}
	if _, err := client.Result(context.Background(), st.ID); err == nil || !strings.Contains(err.Error(), "HTTP 500") {
		t.Errorf("result of timed-out job: got %v, want HTTP 500", err)
	}
}

// TestServeMaxJobTimeoutCap checks the server-side cap applies both to
// requests that ask for too much and to requests that ask for nothing.
func TestServeMaxJobTimeoutCap(t *testing.T) {
	gate := make(chan struct{})
	wrap, _ := gatedRunner(gate)
	_, client := startServer(t, serve.Options{
		Scale: exp.Quick, WrapRunner: wrap, MaxJobTimeout: 50 * time.Millisecond,
	})
	ctx := context.Background()
	for _, req := range []serve.JobRequest{
		{Experiment: simExperiment},                    // no timeout requested: cap supplies one
		{Experiment: simExperiment, TimeoutMs: 600000}, // above the cap: clamped
	} {
		st, err := client.Submit(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		got := waitState(t, client, st.ID, serve.StateFailed)
		if !strings.Contains(got.Error, "job timeout exceeded") {
			t.Errorf("job %s error %q, want timeout message", st.ID, got.Error)
		}
	}
}

// TestServeCancel cancels a running job via DELETE and checks the
// cancellation propagates into the simulations and the result endpoint
// reports 410.
func TestServeCancel(t *testing.T) {
	gate := make(chan struct{})
	wrap, started := gatedRunner(gate)
	_, client := startServer(t, serve.Options{Scale: exp.Quick, WrapRunner: wrap})

	ctx := context.Background()
	st, err := client.Submit(ctx, serve.JobRequest{Experiment: simExperiment})
	if err != nil {
		t.Fatal(err)
	}
	<-started // a simulation is really blocked inside the runner
	if err := client.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	waitState(t, client, st.ID, serve.StateCanceled)
	if _, err := client.Result(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "job canceled") {
		t.Errorf("result of canceled job: got %v, want job-canceled error", err)
	}
}

// TestServeCancelOnDisconnect submits a CancelOnDisconnect job, attaches
// one event-stream watcher, and drops it mid-run; the disconnect must
// cancel the job through its context.
func TestServeCancelOnDisconnect(t *testing.T) {
	gate := make(chan struct{})
	wrap, started := gatedRunner(gate)
	_, client := startServer(t, serve.Options{Scale: exp.Quick, WrapRunner: wrap})

	st, err := client.Submit(context.Background(), serve.JobRequest{
		Experiment: simExperiment, CancelOnDisconnect: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	streamCtx, disconnect := context.WithCancel(context.Background())
	defer disconnect()
	attached := make(chan struct{})
	var once sync.Once
	streamDone := make(chan error, 1)
	go func() {
		streamDone <- client.Events(streamCtx, st.ID, func(serve.Event) error {
			// Receiving any event proves the watcher is attached
			// server-side; only then is a disconnect a real detach.
			once.Do(func() { close(attached) })
			return nil
		})
	}()

	<-attached   // the stream is attached
	<-started    // ... and the job is mid-simulation
	disconnect() // drop the only watcher
	<-streamDone
	waitState(t, client, st.ID, serve.StateCanceled)
}

// TestServeQueueFull saturates a Workers=1, QueueDepth=1 server with
// blocked jobs and checks the third submit is rejected with 503 while
// the first two drain to completion once unblocked.
func TestServeQueueFull(t *testing.T) {
	gate := make(chan struct{})
	wrap, started := gatedRunner(gate)
	srv, client := startServer(t, serve.Options{
		Scale: exp.Quick, WrapRunner: wrap, Workers: 1, QueueDepth: 1,
	})

	ctx := context.Background()
	st1, err := client.Submit(ctx, serve.JobRequest{Experiment: simExperiment})
	if err != nil {
		t.Fatal(err)
	}
	<-started // job 1 is running (dequeued), so job 2 owns the queue slot
	st2, err := client.Submit(ctx, serve.JobRequest{Experiment: simExperiment})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Submit(ctx, serve.JobRequest{Experiment: simExperiment}); err == nil || !strings.Contains(err.Error(), "job queue full") {
		t.Fatalf("third submit: got %v, want queue-full rejection", err)
	}

	close(gate)
	waitState(t, client, st1.ID, serve.StateDone)
	waitState(t, client, st2.ID, serve.StateDone)

	var rejected uint64
	for _, s := range srv.StatsRegistry().Snapshot().Samples {
		if s.Name == "serve.jobs.rejected" {
			rejected = uint64(s.Value)
		}
	}
	if rejected != 1 {
		t.Errorf("serve.jobs.rejected = %d, want 1", rejected)
	}
}

// TestServeResultBeforeDone checks the result endpoint answers 409 while
// the job is still running.
func TestServeResultBeforeDone(t *testing.T) {
	gate := make(chan struct{})
	wrap, started := gatedRunner(gate)
	_, client := startServer(t, serve.Options{Scale: exp.Quick, WrapRunner: wrap})

	ctx := context.Background()
	st, err := client.Submit(ctx, serve.JobRequest{Experiment: simExperiment})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := client.Result(ctx, st.ID); err == nil || !strings.Contains(err.Error(), "HTTP 409") {
		t.Errorf("result of running job: got %v, want HTTP 409", err)
	}
	close(gate)
	waitState(t, client, st.ID, serve.StateDone)
	if _, err := client.Result(ctx, st.ID); err != nil {
		t.Errorf("result after done: %v", err)
	}
}

// TestServeDrain checks graceful shutdown: during a drain, health flips
// to 503 and submits are refused, while the in-flight job is allowed to
// finish and Drain returns cleanly.
func TestServeDrain(t *testing.T) {
	gate := make(chan struct{})
	wrap, started := gatedRunner(gate)
	srv, client := startServer(t, serve.Options{Scale: exp.Quick, WrapRunner: wrap, Workers: 1})

	ctx := context.Background()
	st, err := client.Submit(ctx, serve.JobRequest{Experiment: simExperiment})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drainDone := make(chan error, 1)
	go func() { drainDone <- srv.Drain(context.Background()) }()

	// Draining is visible: /healthz turns 503 and submits bounce.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(client.BaseURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never flipped to 503 during drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := client.Submit(ctx, serve.JobRequest{Experiment: "table4"}); err == nil || !strings.Contains(err.Error(), "server draining") {
		t.Fatalf("submit during drain: got %v, want draining rejection", err)
	}

	close(gate) // let the in-flight job finish
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitState(t, client, st.ID, serve.StateDone)
}

// TestServeDrainDeadline checks the other drain path: when the drain
// context expires first, the in-flight jobs are cancelled through their
// contexts and Drain reports the context error.
func TestServeDrainDeadline(t *testing.T) {
	gate := make(chan struct{}) // never closed: the job can only end by cancellation
	wrap, started := gatedRunner(gate)
	srv, client := startServer(t, serve.Options{Scale: exp.Quick, WrapRunner: wrap, Workers: 1})

	st, err := client.Submit(context.Background(), serve.JobRequest{Experiment: simExperiment})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	drainCtx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Drain(drainCtx); err != context.DeadlineExceeded {
		t.Fatalf("drain: %v, want deadline exceeded", err)
	}
	waitState(t, client, st.ID, serve.StateCanceled)
}

// TestServeStatsz decodes the /statsz snapshot and checks the queue,
// job, and cache gauges are present and plausible after one served job.
func TestServeStatsz(t *testing.T) {
	cache, err := sfence.NewRunCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	_, client := startServer(t, serve.Options{Cache: cache, Scale: exp.Quick, QueueDepth: 7})

	if _, err := client.Run(context.Background(), serve.JobRequest{Experiment: simExperiment}, nil); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(client.BaseURL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap stats.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, s := range snap.Samples {
		got[s.Name] = s.Value
	}
	for name, want := range map[string]int64{
		"serve.jobs.submitted":   1,
		"serve.jobs.completed":   1,
		"serve.queue.capacity":   7,
		"serve.cache.misses":     int64(cache.Stats().Misses),
		"serve.cache.disk_bytes": cache.Stats().DiskBytes,
	} {
		if got[name] != want {
			t.Errorf("%s = %d, want %d", name, got[name], want)
		}
	}
	if got["serve.cache.misses"] == 0 {
		t.Error("cold job executed no simulations according to /statsz")
	}
}

// TestServeHealthz checks the healthy path answers 200 "ok".
func TestServeHealthz(t *testing.T) {
	_, client := startServer(t, serve.Options{Scale: exp.Quick})
	resp, err := http.Get(client.BaseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d, want 200", resp.StatusCode)
	}
}
