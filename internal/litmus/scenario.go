package litmus

import (
	"sfence/internal/isa"
	"sfence/internal/scopecheck"
)

// Scenario adapts the litmus test for static scope verification. Litmus
// programs form every address from constants, so no regions need to be
// declared: the analysis resolves every footprint word-exactly. The
// shared variables and the per-thread observation slots are still named
// as regions for readable reports.
func (t *Test) Scenario() scopecheck.Scenario {
	threads := make([]scopecheck.Thread, len(t.Threads))
	for i, th := range t.Threads {
		threads[i] = scopecheck.Thread{Entry: th.Entry, Regs: th.Regs}
	}
	return scopecheck.Scenario{
		Name:    t.Name,
		Prog:    t.Program,
		Threads: threads,
		Regions: []scopecheck.Region{
			{Name: "vars", Base: AddrX, Words: (AddrY - AddrX + 64) / 8, Sharing: scopecheck.SharedRW, Owner: -1},
			{Name: "results", Base: AddrR1, Words: (AddrR4 - AddrR1 + 64) / 8, Sharing: scopecheck.SharedRW, Owner: -1},
		},
	}
}

// All returns every litmus family at its default parameters — the
// enumeration the golden file, the clock-equivalence suite, and the
// static scope-verification gate share. MisScoped reports which tests
// are weak or mis-scoped by design (their annotations do not promise
// SC), so scope verification knows not to expect them clean.
func All() []*Test {
	return []*Test{
		StoreBuffering(false, isa.ScopeGlobal),
		StoreBuffering(true, isa.ScopeGlobal),
		StoreBuffering(true, isa.ScopeSet),
		MessagePassing(false),
		MessagePassing(true),
		LoadBuffering(),
		IRIW(),
		ClassScopedSB(),
		ScopedSBLeaky(),
		SBWithStoreStoreFence(),
		MessagePassingSS(isa.ScopeGlobal),
		MessagePassingSS(isa.ScopeClass),
		CASIncrement(4, 16),
		CoWW(),
		MessagePassingFiner(),
	}
}

// MisScoped reports whether the named test carries deliberately unsound
// scope annotations (ScopedSBLeaky): static verification must flag it,
// and must flag nothing else in All().
func MisScoped(name string) bool {
	return name == ScopedSBLeaky().Name
}
