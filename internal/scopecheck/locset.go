package scopecheck

import (
	"fmt"
	"sort"
	"strings"
)

// Location sets are the analysis's footprint representation: a bounded
// set of concrete word addresses plus a bitmask of whole regions. Bit
// maskUnmapped of the mask stands for "some shared word outside every
// declared region" — the attribution of an address the analysis could
// not resolve and that no region claims.
//
// A concrete word and a region atom intersect when the word lies inside
// the region; two masks intersect when they share a bit. This keeps
// escape analysis word-granular where addresses resolve (so per-thread
// words of a falsely-shared line do not escape) and region-granular
// where they do not (pointer-chased structures).

const (
	// maxRegions bounds the declared regions so each fits one mask bit.
	maxRegions = 63
	// maskUnmapped is the mask bit for unresolved addresses outside every
	// declared region.
	maskUnmapped = uint64(1) << 63
	// maxWords bounds the concrete words tracked per set; beyond it the
	// set coarsens to region atoms.
	maxWords = 96
)

// locSet is a may-set of memory locations. approx records that some
// atoms came from an unresolvable address (a pointer-chased load
// attributed to every shared region): such sets are sound for escape
// and coverage but too coarse to anchor an under-scope Error or to
// extend a synchronization domain — the verifier degrades them to
// Warnings (see Verify).
type locSet struct {
	words  map[int64]struct{}
	mask   uint64
	approx bool
}

func (l locSet) empty() bool { return len(l.words) == 0 && l.mask == 0 }

// clone returns an independent copy.
func (l locSet) clone() locSet {
	c := locSet{mask: l.mask, approx: l.approx}
	if len(l.words) > 0 {
		c.words = make(map[int64]struct{}, len(l.words))
		for w := range l.words {
			c.words[w] = struct{}{}
		}
	}
	return c
}

// resolver maps concrete addresses to region indices.
type resolver struct {
	regions []Region
}

// regionOf returns the index of the region containing addr, or -1.
func (rv *resolver) regionOf(addr int64) int {
	for i := range rv.regions {
		if rv.regions[i].Contains(addr) {
			return i
		}
	}
	return -1
}

// sharedMask is the attribution mask for fully unresolved addresses:
// every SharedRW region plus the unmapped bit.
func (rv *resolver) sharedMask() uint64 {
	m := maskUnmapped
	for i := range rv.regions {
		if rv.regions[i].Sharing == SharedRW {
			m |= uint64(1) << uint(i)
		}
	}
	return m
}

// addWord adds one concrete word address, coarsening to the containing
// region (or the unmapped bit) once the word budget is exhausted.
func (l *locSet) addWord(rv *resolver, addr int64) {
	if l.words == nil {
		l.words = make(map[int64]struct{})
	}
	if len(l.words) >= maxWords {
		if r := rv.regionOf(addr); r >= 0 {
			l.mask |= uint64(1) << uint(r)
		} else {
			l.mask |= maskUnmapped
		}
		return
	}
	l.words[addr] = struct{}{}
}

// union merges o into l.
func (l *locSet) union(rv *resolver, o locSet) {
	l.mask |= o.mask
	l.approx = l.approx || o.approx
	for w := range o.words {
		l.addWord(rv, w)
	}
}

// intersects reports whether the two may-sets can share a location.
func (l locSet) intersects(rv *resolver, o locSet) bool {
	small, big := l, o
	if len(big.words) < len(small.words) {
		small, big = big, small
	}
	for w := range small.words {
		if _, ok := big.words[w]; ok {
			return true
		}
	}
	if l.mask&o.mask != 0 {
		return true
	}
	wordHitsMask := func(words map[int64]struct{}, mask uint64) bool {
		if mask == 0 {
			return false
		}
		for w := range words {
			r := rv.regionOf(w)
			if r >= 0 {
				if mask&(uint64(1)<<uint(r)) != 0 {
					return true
				}
			} else if mask&maskUnmapped != 0 {
				return true
			}
		}
		return false
	}
	return wordHitsMask(l.words, o.mask) || wordHitsMask(o.words, l.mask)
}

// intersect returns the atoms of l that may alias o (words of l that hit
// o, regions of l that o touches). Used to over-approximate "the part of
// this footprint that escapes".
func (l locSet) intersect(rv *resolver, o locSet) locSet {
	out := locSet{approx: l.approx}
	for w := range l.words {
		hit := false
		if _, ok := o.words[w]; ok {
			hit = true
		} else if r := rv.regionOf(w); r >= 0 {
			hit = o.mask&(uint64(1)<<uint(r)) != 0
		} else {
			hit = o.mask&maskUnmapped != 0
		}
		if hit {
			out.addWord(rv, w)
		}
	}
	out.mask = l.mask & o.mask
	// A region atom of l also intersects o when o holds a concrete word
	// inside it.
	if l.mask != 0 {
		for w := range o.words {
			if r := rv.regionOf(w); r >= 0 && l.mask&(uint64(1)<<uint(r)) != 0 {
				out.mask |= uint64(1) << uint(r)
			} else if r < 0 && l.mask&maskUnmapped != 0 {
				out.mask |= maskUnmapped
			}
		}
	}
	return out
}

// describe renders the set compactly and deterministically.
func (l locSet) describe(rv *resolver) string {
	if l.empty() {
		return "∅"
	}
	var parts []string
	words := make([]int64, 0, len(l.words))
	for w := range l.words {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool { return words[i] < words[j] })
	shown := words
	if len(shown) > 8 {
		shown = shown[:8]
	}
	for _, w := range shown {
		parts = append(parts, fmt.Sprintf("0x%x", w))
	}
	if len(words) > 8 {
		parts = append(parts, fmt.Sprintf("+%d words", len(words)-8))
	}
	for i := 0; i < maxRegions && i < len(rv.regions); i++ {
		if l.mask&(uint64(1)<<uint(i)) != 0 {
			parts = append(parts, rv.regions[i].Name)
		}
	}
	if l.mask&maskUnmapped != 0 {
		parts = append(parts, "unmapped")
	}
	return "{" + strings.Join(parts, ",") + "}"
}
