package scopecheck

import (
	"fmt"
	"math"
	"sort"

	"sfence/internal/isa"
)

// Abstract value lattice: Bot ⊑ Const ⊑ Range ⊑ Region ⊑ Top.
//
//   - Const is a known 64-bit value.
//   - Range is a closed interval [lo,hi] (loop indices, masked offsets).
//   - Region says "some address inside these declared regions" (mask bit
//     per region, maskUnmapped for none-of-them). It arises from
//     pointer arithmetic combining a region base with an unresolved
//     offset — the region-closed contract: pointers derived from a
//     region base stay inside that region.
//   - Top is an arbitrary value; used as an address it attributes to
//     every SharedRW region (private regions are never reached through
//     loaded pointers — the second half of the contract).
const (
	vBot = iota
	vConst
	vRange
	vRegion
	vTop
)

type absVal struct {
	kind uint8
	lo   int64 // vConst (lo==hi) and vRange bounds
	hi   int64
	mask uint64 // vRegion
}

func cst(c int64) absVal { return absVal{kind: vConst, lo: c, hi: c} }
func top() absVal        { return absVal{kind: vTop} }

func rng(lo, hi int64) absVal {
	if lo == hi {
		return cst(lo)
	}
	if lo > hi {
		lo, hi = hi, lo
	}
	return absVal{kind: vRange, lo: lo, hi: hi}
}

// regionize maps a value onto the regions it may address: Const/Range by
// coverage, Region as-is, Top (and Bot) to every shared region.
func (rv *resolver) regionize(v absVal) absVal {
	switch v.kind {
	case vConst, vRange:
		return absVal{kind: vRegion, mask: rv.coverMask(v.lo, v.hi)}
	case vRegion:
		return v
	default:
		return absVal{kind: vRegion, mask: rv.sharedMask()}
	}
}

// coverMask returns the region atoms covering every byte of [lo,hi],
// with maskUnmapped standing in for any uncovered part.
func (rv *resolver) coverMask(lo, hi int64) uint64 {
	var mask uint64
	var covered int64
	for i := range rv.regions {
		r := rv.regions[i]
		rend := r.Base + 8*r.Words
		if r.Base > hi || rend <= lo {
			continue
		}
		mask |= uint64(1) << uint(i)
		a, b := max64(lo, r.Base), min64(hi, rend-1)
		covered += b - a + 1
	}
	if covered < hi-lo+1 {
		mask |= maskUnmapped
	}
	return mask
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// addOK reports whether a+b does not overflow.
func addOK(a, b int64) bool {
	s := a + b
	return !((a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0))
}

// joinVal is the lattice join; widen collapses growing ranges to Top so
// loop-carried indices converge (their addresses are recovered by the
// region-closed Add rule).
func joinVal(rv *resolver, a, b absVal, widen bool) absVal {
	if a.kind == vBot {
		return b
	}
	if b.kind == vBot {
		return a
	}
	if a.kind == vTop || b.kind == vTop {
		return top()
	}
	if a.kind == vRegion || b.kind == vRegion {
		am, bm := rv.regionize(a), rv.regionize(b)
		return absVal{kind: vRegion, mask: am.mask | bm.mask}
	}
	// Const/Range hull.
	if a.kind == vConst && b.kind == vConst && a.lo == b.lo {
		return a
	}
	if widen {
		return top()
	}
	return rng(min64(a.lo, b.lo), max64(a.hi, b.hi))
}

// regionBase returns the single region index a value provably points
// into, or -1. Used by the region-closed pointer-arithmetic rule.
func (rv *resolver) regionBase(v absVal) int {
	switch v.kind {
	case vConst:
		return rv.regionOf(v.lo)
	case vRange:
		r := rv.regionOf(v.lo)
		if r >= 0 && rv.regions[r].Contains(v.hi) {
			return r
		}
	case vRegion:
		if v.mask != 0 && v.mask&(v.mask-1) == 0 && v.mask != maskUnmapped {
			for i := 0; i < maxRegions; i++ {
				if v.mask == uint64(1)<<uint(i) {
					return i
				}
			}
		}
	}
	return -1
}

// addVals implements the Add transfer function with the region-closed
// contract: base-in-region + unresolved offset stays in the region.
func (rv *resolver) addVals(a, b absVal) absVal {
	if a.kind == vBot || b.kind == vBot {
		return top()
	}
	if (a.kind == vConst || a.kind == vRange) && (b.kind == vConst || b.kind == vRange) {
		if addOK(a.lo, b.lo) && addOK(a.hi, b.hi) {
			return rng(a.lo+b.lo, a.hi+b.hi)
		}
		return top()
	}
	// One side is Region or Top: keep the provable region of the other
	// side (or of the Region side itself).
	if a.kind == vRegion && b.kind == vRegion {
		return absVal{kind: vRegion, mask: a.mask | b.mask}
	}
	for _, pair := range [2][2]absVal{{a, b}, {b, a}} {
		x, y := pair[0], pair[1]
		if y.kind == vRegion || y.kind == vTop {
			if x.kind == vRegion {
				return x
			}
			if r := rv.regionBase(x); r >= 0 {
				return absVal{kind: vRegion, mask: uint64(1) << uint(r)}
			}
		}
	}
	return top()
}

// eval computes one ALU transfer. Unsupported shapes go to Top.
func (a *analysis) eval(ins *isa.Instruction, regs *[isa.NumRegs]absVal) absVal {
	rv := a.rv
	s1, s2 := regs[ins.Rs1], regs[ins.Rs2]
	switch ins.Op {
	case isa.OpMovI:
		return cst(ins.Imm)
	case isa.OpAdd:
		return rv.addVals(s1, s2)
	case isa.OpAddI:
		return rv.addVals(s1, cst(ins.Imm))
	case isa.OpSub:
		if s2.kind == vConst || s2.kind == vRange {
			return rv.addVals(s1, rng(-s2.hi, -s2.lo))
		}
		if s1.kind == vRegion {
			return s1
		}
		if r := rv.regionBase(s1); r >= 0 {
			return absVal{kind: vRegion, mask: uint64(1) << uint(r)}
		}
		return top()
	case isa.OpMul:
		if s1.kind == vConst && s2.kind == vConst {
			return cst(s1.lo * s2.lo)
		}
		if s2.kind == vConst {
			s1, s2 = s2, s1
		}
		if s1.kind == vConst && s2.kind == vRange {
			p1, p2 := s1.lo*s2.lo, s1.lo*s2.hi
			// Guard against overflow with a coarse magnitude check.
			if abs64(s1.lo) < 1<<20 && abs64(s2.lo) < 1<<40 && abs64(s2.hi) < 1<<40 {
				return rng(min64(p1, p2), max64(p1, p2))
			}
		}
		return top()
	case isa.OpDiv:
		if s1.kind == vConst && s2.kind == vConst {
			if s2.lo == 0 {
				return cst(0)
			}
			return cst(s1.lo / s2.lo)
		}
		return top()
	case isa.OpRem:
		if s1.kind == vConst && s2.kind == vConst {
			if s2.lo == 0 {
				return cst(0)
			}
			return cst(s1.lo % s2.lo)
		}
		if s2.kind == vConst && s2.lo > 0 {
			return rng(-(s2.lo - 1), s2.lo-1)
		}
		return top()
	case isa.OpAnd, isa.OpAndI:
		m := s2
		if ins.Op == isa.OpAndI {
			m = cst(ins.Imm)
		}
		if s1.kind == vConst && m.kind == vConst {
			return cst(s1.lo & m.lo)
		}
		if m.kind == vConst && m.lo >= 0 {
			return rng(0, m.lo)
		}
		// Any mask (including negative align masks like -8) can only clear
		// bits, so a nonnegative input bounds the result: 0 <= x&m <= x.
		if (s1.kind == vConst || s1.kind == vRange) && s1.lo >= 0 {
			return rng(0, s1.hi)
		}
		return top()
	case isa.OpOr:
		if s1.kind == vConst && s2.kind == vConst {
			return cst(s1.lo | s2.lo)
		}
		return top()
	case isa.OpXor, isa.OpXorI:
		m := s2
		if ins.Op == isa.OpXorI {
			m = cst(ins.Imm)
		}
		if s1.kind == vConst && m.kind == vConst {
			return cst(s1.lo ^ m.lo)
		}
		return top()
	case isa.OpShl, isa.OpShlI:
		k, ok := shiftAmount(ins, s2)
		if !ok {
			return top()
		}
		if s1.kind == vConst {
			return cst(s1.lo << k)
		}
		if s1.kind == vRange && s1.lo >= 0 && s1.hi < math.MaxInt64>>k {
			return rng(s1.lo<<k, s1.hi<<k)
		}
		return top()
	case isa.OpShr, isa.OpShrI:
		k, ok := shiftAmount(ins, s2)
		if !ok {
			return top()
		}
		switch s1.kind {
		case vConst:
			return cst(s1.lo >> k)
		case vRange:
			return rng(s1.lo>>k, s1.hi>>k)
		}
		return top()
	case isa.OpSlt, isa.OpSeq:
		if s1.kind == vConst && s2.kind == vConst {
			if (ins.Op == isa.OpSlt && s1.lo < s2.lo) || (ins.Op == isa.OpSeq && s1.lo == s2.lo) {
				return cst(1)
			}
			return cst(0)
		}
		return rng(0, 1)
	case isa.OpSltI:
		if s1.kind == vConst {
			if s1.lo < ins.Imm {
				return cst(1)
			}
			return cst(0)
		}
		return rng(0, 1)
	}
	return top()
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// shiftAmount resolves the shift count of a Shl/Shr (register or
// immediate form).
func shiftAmount(ins *isa.Instruction, s2 absVal) (uint, bool) {
	if ins.Op == isa.OpShlI || ins.Op == isa.OpShrI {
		return uint(ins.Imm & 63), true
	}
	if s2.kind == vConst {
		return uint(s2.lo & 63), true
	}
	return 0, false
}

// addrLocs maps an effective-address value (base register value + imm)
// onto the locations it may touch.
func (a *analysis) addrLocs(base absVal, imm int64) locSet {
	rv := a.rv
	v := rv.addVals(base, cst(imm))
	var ls locSet
	switch v.kind {
	case vConst:
		ls.addWord(rv, v.lo&^7)
	case vRange:
		// Enumerate aligned words for narrow ranges; coarsen to region
		// atoms otherwise.
		lo, hi := v.lo&^7, v.hi
		if n := (hi - lo) / 8; n >= 0 && n < maxWords {
			for w := lo; w <= hi; w += 8 {
				ls.addWord(rv, w)
			}
		} else {
			ls.mask = rv.coverMask(v.lo, v.hi)
		}
	case vRegion:
		ls.mask = v.mask
		if ls.mask&maskUnmapped != 0 {
			// Unmapped-unknown shares the attribution of Top.
			ls.mask |= rv.sharedMask()
			ls.approx = true
		}
	default:
		ls.mask = rv.sharedMask()
		ls.approx = true
	}
	return ls
}

// pendRec is one may-pending memory access, keyed by its site pc: an
// access that has been issued on some path and not yet provably ordered
// by a fence that covers it.
type pendRec struct {
	loads   bool // a load may be pending (CAS sets both)
	stores  bool
	cas     bool   // the site is an atomic RMW
	flagged bool   // static SetFlag on the instruction
	cids    uint64 // class brackets active at issue (bit per cid index; bit63 unknown)
	locs    locSet
}

func (p pendRec) clone() pendRec {
	p.locs = p.locs.clone()
	return p
}

// absState is the dataflow fact at a program point for one thread.
type absState struct {
	regs     [isa.NumRegs]absVal
	brackets []int64 // active fs_start cid stack; -1 = unknown (join mismatch)
	pend     map[int]pendRec
}

func (s *absState) clone() *absState {
	c := &absState{regs: s.regs}
	c.brackets = append([]int64(nil), s.brackets...)
	c.pend = make(map[int]pendRec, len(s.pend))
	for pc, p := range s.pend {
		c.pend[pc] = p.clone()
	}
	return c
}

// joinInto merges o into s, returning whether s changed.
func (a *analysis) joinInto(s, o *absState, widen bool) bool {
	changed := false
	for i := range s.regs {
		j := joinVal(a.rv, s.regs[i], o.regs[i], widen)
		if j != s.regs[i] {
			s.regs[i] = j
			changed = true
		}
	}
	// Bracket stacks at a join point have equal depth (isa.Validate
	// guarantees consistent scope depth per pc); mismatched cids become
	// unknown.
	if len(s.brackets) == len(o.brackets) {
		for i := range s.brackets {
			if s.brackets[i] != o.brackets[i] && s.brackets[i] != -1 {
				s.brackets[i] = -1
				changed = true
			}
		}
	} else if len(o.brackets) < len(s.brackets) {
		s.brackets = s.brackets[:len(o.brackets)]
		changed = true
	}
	for pc, po := range o.pend {
		ps, ok := s.pend[pc]
		if !ok {
			s.pend[pc] = po.clone()
			changed = true
			continue
		}
		before := ps
		beforeWords, beforeMask := len(ps.locs.words), ps.locs.mask
		ps.loads = ps.loads || po.loads
		ps.stores = ps.stores || po.stores
		ps.cas = ps.cas || po.cas
		ps.flagged = ps.flagged || po.flagged
		ps.cids |= po.cids
		ps.locs.union(a.rv, po.locs)
		if ps.loads != before.loads || ps.stores != before.stores || ps.cas != before.cas ||
			ps.flagged != before.flagged || ps.cids != before.cids ||
			len(ps.locs.words) != beforeWords || ps.locs.mask != beforeMask {
			changed = true
		}
		s.pend[pc] = ps
	}
	return changed
}

// siteInfo accumulates per-access-site facts across threads and paths.
type siteInfo struct {
	locs    locSet
	cids    uint64
	flagged bool
	loads   bool
	stores  bool
	cas     bool
}

// fenceObs is the joined pending set observed at one fence site by one
// thread, the unit the verification pass consumes.
type fenceObs struct {
	thread int
	pc     int
	scope  isa.ScopeKind
	order  isa.FenceOrder
	cid    int64 // innermost bracket cid (-2 none, -1 unknown)
	pend   map[int]pendRec
}

// analysis carries the cross-thread accumulations of one scenario.
type analysis struct {
	sc     *Scenario
	rv     *resolver
	cidIdx map[int64]int

	access    map[int]*siteInfo
	fences    map[[2]int]*fenceObs // (thread, pc) → joined observation
	writes    []locSet             // per-thread write footprint
	accesses  []locSet             // per-thread read∪write footprint
	cidDomain map[int]*locSet      // cid index → locations accessed under that bracket
	setDomain locSet
	escaping  locSet
}

const (
	widenAfter = 12
	// stepBudget bounds fixpoint work per thread as a multiple of code
	// size; exceeding it is an analysis bug, reported as an error.
	stepBudget = 1 << 14
)

// cidBit maps a class id to its mask bit (bit63 for unknown).
func (a *analysis) cidBit(cid int64) uint64 {
	if cid == -1 {
		return maskUnmapped
	}
	i, ok := a.cidIdx[cid]
	if !ok {
		return maskUnmapped
	}
	return uint64(1) << uint(i)
}

// bracketMask returns the bit set of all active brackets (inner implies
// outer, matching the hardware's FSB mask at decode).
func (a *analysis) bracketMask(brackets []int64) uint64 {
	var m uint64
	for _, cid := range brackets {
		m |= a.cidBit(cid)
	}
	return m
}

// analyze runs the per-thread abstract interpretation and fills the
// cross-thread accumulations.
func analyze(sc *Scenario) (*analysis, error) {
	if sc.Prog == nil || len(sc.Threads) == 0 {
		return nil, fmt.Errorf("scopecheck: scenario %q has no program or threads", sc.Name)
	}
	if len(sc.Regions) > maxRegions {
		return nil, fmt.Errorf("scopecheck: scenario %q declares %d regions (max %d)", sc.Name, len(sc.Regions), maxRegions)
	}
	if len(sc.Threads) > 64 {
		return nil, fmt.Errorf("scopecheck: scenario %q has %d threads (max 64)", sc.Name, len(sc.Threads))
	}
	a := &analysis{
		sc:        sc,
		rv:        &resolver{regions: sc.Regions},
		cidIdx:    map[int64]int{},
		access:    map[int]*siteInfo{},
		fences:    map[[2]int]*fenceObs{},
		writes:    make([]locSet, len(sc.Threads)),
		accesses:  make([]locSet, len(sc.Threads)),
		cidDomain: map[int]*locSet{},
	}
	// Assign cid bits in sorted order for determinism.
	var cids []int64
	seen := map[int64]bool{}
	for i := range sc.Prog.Code {
		if sc.Prog.Code[i].Op == isa.OpFsStart && !seen[sc.Prog.Code[i].Imm] {
			seen[sc.Prog.Code[i].Imm] = true
			cids = append(cids, sc.Prog.Code[i].Imm)
		}
	}
	sort.Slice(cids, func(i, j int) bool { return cids[i] < cids[j] })
	for i, cid := range cids {
		idx := i
		if idx >= 62 {
			idx = 62 // overflow bucket: cids beyond 62 share a bit (conservative)
		}
		a.cidIdx[cid] = idx
	}

	for t := range sc.Threads {
		if err := a.runThread(t); err != nil {
			return nil, err
		}
	}

	// Escape: written by one thread, read or written by another.
	for i := range sc.Threads {
		for j := range sc.Threads {
			if i == j {
				continue
			}
			inter := a.writes[i].intersect(a.rv, a.accesses[j])
			a.escaping.union(a.rv, inter)
		}
	}
	return a, nil
}

// runThread interprets one thread to fixpoint.
func (a *analysis) runThread(t int) error {
	sc := a.sc
	entry, ok := sc.Prog.Entries[sc.Threads[t].Entry]
	if !ok {
		return fmt.Errorf("scopecheck: scenario %q thread %d: unknown entry %q", sc.Name, t, sc.Threads[t].Entry)
	}
	init := &absState{pend: map[int]pendRec{}}
	for r, v := range sc.Threads[t].Regs {
		if r != isa.R0 {
			init.regs[r] = cst(v)
		}
	}
	for i := range init.regs {
		if init.regs[i].kind == vBot {
			init.regs[i] = cst(0)
		}
	}

	states := map[int]*absState{entry: init}
	visits := map[int]int{}
	work := []int{entry}
	steps := 0
	budget := stepBudget * (len(sc.Prog.Code) + 1)
	for len(work) > 0 {
		steps++
		if steps > budget {
			return fmt.Errorf("scopecheck: scenario %q thread %d: fixpoint exceeded %d steps", sc.Name, t, budget)
		}
		pc := work[len(work)-1]
		work = work[:len(work)-1]
		if pc < 0 || pc >= len(sc.Prog.Code) {
			continue
		}
		s := states[pc].clone()
		ins := &sc.Prog.Code[pc]
		succs := a.step(t, pc, ins, s)
		for _, succ := range succs {
			if succ < 0 || succ >= len(sc.Prog.Code) {
				continue
			}
			cur, ok := states[succ]
			if !ok {
				states[succ] = s.clone()
				work = append(work, succ)
				continue
			}
			visits[succ]++
			if a.joinInto(cur, s, visits[succ] > widenAfter) {
				work = append(work, succ)
			}
		}
	}
	return nil
}

// step executes one instruction on state s (mutating it) and returns the
// successor pcs.
func (a *analysis) step(t, pc int, ins *isa.Instruction, s *absState) []int {
	switch ins.Op {
	case isa.OpHalt:
		return nil
	case isa.OpJmp:
		return []int{int(ins.Imm)}
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBge:
		s1, s2 := s.regs[ins.Rs1], s.regs[ins.Rs2]
		if s1.kind == vConst && s2.kind == vConst {
			taken := false
			switch ins.Op {
			case isa.OpBeq:
				taken = s1.lo == s2.lo
			case isa.OpBne:
				taken = s1.lo != s2.lo
			case isa.OpBlt:
				taken = s1.lo < s2.lo
			case isa.OpBge:
				taken = s1.lo >= s2.lo
			}
			if taken {
				return []int{int(ins.Imm)}
			}
			return []int{pc + 1}
		}
		return []int{int(ins.Imm), pc + 1}
	case isa.OpFsStart:
		s.brackets = append(s.brackets, ins.Imm)
		return []int{pc + 1}
	case isa.OpFsEnd:
		if len(s.brackets) > 0 {
			s.brackets = s.brackets[:len(s.brackets)-1]
		}
		return []int{pc + 1}
	case isa.OpFence:
		a.observeFence(t, pc, ins, s)
		a.killPending(ins, s)
		return []int{pc + 1}
	case isa.OpLoad, isa.OpStore, isa.OpCAS:
		a.recordAccess(t, pc, ins, s)
		if ins.Op == isa.OpLoad && ins.Rd != isa.R0 {
			s.regs[ins.Rd] = top()
		}
		if ins.Op == isa.OpCAS && ins.Rd != isa.R0 {
			s.regs[ins.Rd] = rng(0, 1)
		}
		return []int{pc + 1}
	default:
		if ins.Writes() {
			s.regs[ins.Rd] = a.eval(ins, &s.regs)
		}
		return []int{pc + 1}
	}
}

// recordAccess folds one memory access into the footprints, domains, and
// the pending set.
func (a *analysis) recordAccess(t, pc int, ins *isa.Instruction, s *absState) {
	locs := a.addrLocs(s.regs[ins.Rs1], ins.Imm)
	cids := a.bracketMask(s.brackets)
	isLoad := ins.Op == isa.OpLoad || ins.Op == isa.OpCAS
	isStore := ins.Op == isa.OpStore || ins.Op == isa.OpCAS

	si := a.access[pc]
	if si == nil {
		si = &siteInfo{}
		a.access[pc] = si
	}
	si.locs.union(a.rv, locs)
	si.cids |= cids
	si.flagged = si.flagged || ins.SetFlag
	si.loads = si.loads || isLoad
	si.stores = si.stores || isStore
	si.cas = si.cas || ins.Op == isa.OpCAS

	a.accesses[t].union(a.rv, locs)
	if isStore {
		a.writes[t].union(a.rv, locs)
	}
	// Approximate footprints (pointer-chased, attributed to every shared
	// region) never extend a synchronization domain: letting them in
	// would make every out-of-scope escaping access look like a domain
	// leak. Precision loss only weakens Error detection to Notes, never
	// invents errors.
	if !locs.approx {
		for _, cid := range s.brackets {
			if cid == -1 {
				continue
			}
			idx, ok := a.cidIdx[cid]
			if !ok {
				continue
			}
			d := a.cidDomain[idx]
			if d == nil {
				d = &locSet{}
				a.cidDomain[idx] = d
			}
			d.union(a.rv, locs)
		}
		if ins.SetFlag {
			a.setDomain.union(a.rv, locs)
		}
	}

	p, ok := s.pend[pc]
	if !ok {
		p = pendRec{}
	}
	p.loads = p.loads || isLoad
	p.stores = p.stores || isStore
	p.cas = p.cas || ins.Op == isa.OpCAS
	p.flagged = p.flagged || ins.SetFlag
	p.cids |= cids
	p.locs.union(a.rv, locs)
	s.pend[pc] = p
}

// observeFence joins the current pending set into the fence site's
// observation.
func (a *analysis) observeFence(t, pc int, ins *isa.Instruction, s *absState) {
	cid := int64(-2)
	if len(s.brackets) > 0 {
		cid = s.brackets[len(s.brackets)-1]
	}
	key := [2]int{t, pc}
	obs := a.fences[key]
	if obs == nil {
		obs = &fenceObs{thread: t, pc: pc, scope: ins.Scope, order: ins.Order, cid: cid, pend: map[int]pendRec{}}
		a.fences[key] = obs
	} else if obs.cid != cid {
		obs.cid = -1
	}
	for spc, p := range s.pend {
		cur, ok := obs.pend[spc]
		if !ok {
			obs.pend[spc] = p.clone()
			continue
		}
		cur.loads = cur.loads || p.loads
		cur.stores = cur.stores || p.stores
		cur.cas = cur.cas || p.cas
		cur.flagged = cur.flagged || p.flagged
		cur.cids |= p.cids
		cur.locs.union(a.rv, p.locs)
		obs.pend[spc] = cur
	}
}

// covered reports whether the fence orders pending record p under the
// machine's scope semantics. A class fence outside any bracket (or with
// an empty FSS) degrades to a full fence in hardware, so it covers
// everything.
func (a *analysis) covered(obs *fenceObs, p pendRec) bool {
	switch obs.scope {
	case isa.ScopeGlobal:
		return true
	case isa.ScopeClass:
		switch obs.cid {
		case -2:
			return true // degenerate: acts as a full fence
		case -1:
			return false // unknown bracket: assume nothing covered
		default:
			return p.cids&a.cidBit(obs.cid) != 0
		}
	case isa.ScopeSet:
		return p.flagged
	}
	return false
}

// relevant reports whether the fence's order kind constrains this
// pending record at all (an SS fence only orders prior stores, an LL
// fence only prior loads).
func relevant(order isa.FenceOrder, p pendRec) bool {
	switch order {
	case isa.OrderSS:
		return p.stores
	case isa.OrderLL:
		return p.loads
	}
	return p.loads || p.stores
}

// killPending removes the pending records the fence provably orders.
// Order kinds kill only their own direction: an SS fence completes prior
// covered stores, an LL fence prior covered loads.
func (a *analysis) killPending(ins *isa.Instruction, s *absState) {
	obs := fenceObs{scope: ins.Scope, order: ins.Order, cid: -2}
	if len(s.brackets) > 0 {
		obs.cid = s.brackets[len(s.brackets)-1]
	}
	for pc, p := range s.pend {
		if !a.covered(&obs, p) {
			continue
		}
		switch ins.Order {
		case isa.OrderSS:
			p.stores = false
			p.cas = false
		case isa.OrderLL:
			p.loads = false
		default:
			p.loads, p.stores, p.cas = false, false, false
		}
		if !p.loads && !p.stores {
			delete(s.pend, pc)
		} else {
			s.pend[pc] = p
		}
	}
}

// sortedFences returns the fence observations in deterministic order.
func (a *analysis) sortedFences() []*fenceObs {
	out := make([]*fenceObs, 0, len(a.fences))
	for _, obs := range a.fences {
		out = append(out, obs)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].thread != out[j].thread {
			return out[i].thread < out[j].thread
		}
		return out[i].pc < out[j].pc
	})
	return out
}

// sortedPend returns a fence observation's pending site pcs in order.
func sortedPend(pend map[int]pendRec) []int {
	pcs := make([]int, 0, len(pend))
	for pc := range pend {
		pcs = append(pcs, pc)
	}
	sort.Ints(pcs)
	return pcs
}
