package cpu

import (
	"testing"

	"sfence/internal/isa"
)

func TestFenceProfileIdentifiesStallingSite(t *testing.T) {
	// Two fences: one behind a cold store (stalls hard), one behind
	// nothing (stalls briefly or not at all).
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 1<<16)
	b.MovI(isa.R2, 3)
	b.Store(isa.R1, 0, isa.R2)
	b.Fence(isa.ScopeGlobal) // hot site
	b.Nop()
	b.Fence(isa.ScopeGlobal) // cheap site
	b.Halt()
	p := b.MustBuild()
	core, _ := runCore(t, DefaultConfig(), p, "main", nil, nil)
	prof := core.FenceProfile()
	if len(prof) != 2 {
		t.Fatalf("profile has %d sites, want 2", len(prof))
	}
	hot := prof[0]
	if hot.StallCycles < 200 {
		t.Errorf("hot fence stalled only %d cycles", hot.StallCycles)
	}
	if hot.Executions != 1 {
		t.Errorf("hot fence executed %d times", hot.Executions)
	}
	if prof[1].StallCycles > hot.StallCycles {
		t.Error("profile not sorted by stall cycles")
	}
	if hot.Scope != "fence.global" {
		t.Errorf("scope mnemonic %q", hot.Scope)
	}
	if hot.IdleCycles == 0 {
		t.Error("hot fence recorded no idle cycles despite an empty pipeline wait")
	}
}

func TestFenceProfileLoop(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 1<<16)
	b.MovI(isa.R2, 5) // iterations
	b.Label("loop")
	b.AddI(isa.R1, isa.R1, 64)
	b.Store(isa.R1, 0, isa.R2)
	b.Fence(isa.ScopeGlobal)
	b.AddI(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "loop")
	b.Halt()
	core, _ := runCore(t, DefaultConfig(), b.MustBuild(), "main", nil, nil)
	prof := core.FenceProfile()
	if len(prof) != 1 {
		t.Fatalf("profile has %d sites, want 1 (same static fence)", len(prof))
	}
	if prof[0].Executions != 5 {
		t.Errorf("executions = %d, want 5", prof[0].Executions)
	}
}

func TestMergeFenceProfiles(t *testing.T) {
	a := []FenceSite{{PC: 4, Scope: "fence.global", Executions: 2, StallCycles: 100, IdleCycles: 50}}
	b := []FenceSite{
		{PC: 4, Scope: "fence.global", Executions: 3, StallCycles: 30, IdleCycles: 10},
		{PC: 9, Scope: "fence.class", Executions: 1, StallCycles: 400, IdleCycles: 300},
	}
	m := MergeFenceProfiles(a, b)
	if len(m) != 2 {
		t.Fatalf("merged %d sites, want 2", len(m))
	}
	if m[0].PC != 9 {
		t.Error("merge not sorted by stall cycles")
	}
	if m[1].Executions != 5 || m[1].StallCycles != 130 || m[1].IdleCycles != 60 {
		t.Errorf("merge sums wrong: %+v", m[1])
	}
}
