package exp

import (
	"context"

	"sfence/internal/cpu"
	"sfence/internal/kernels"
	"sfence/internal/machine"
)

// AblationRow is one configuration point of an ablation sweep.
type AblationRow struct {
	Bench  string  `json:"bench"`
	Param  string  `json:"param"`
	Value  int     `json:"value"`
	Cycles int64   `json:"cycles"`
	Stall  float64 `json:"stall"` // fence-stall fraction
}

// ablationJob pairs a prefilled row (Bench/Param/Value) with the
// simulation that produces its measurements.
type ablationJob struct {
	row AblationRow
	run figRun
}

// runAblation executes the jobs on the session's worker pool and fills in
// each row's cycle count and fence-stall fraction, preserving job order.
func (s *Session) runAblation(ctx context.Context, experiment string, jobs []ablationJob) ([]AblationRow, error) {
	runs := make([]*figRun, len(jobs))
	for i := range jobs {
		runs[i] = &jobs[i].run
	}
	if err := s.execute(ctx, experiment, runs); err != nil {
		return nil, err
	}
	out := make([]AblationRow, len(jobs))
	for i := range jobs {
		res := jobs[i].run.res
		out[i] = jobs[i].row
		out[i].Cycles = res.Cycles
		out[i].Stall = res.FenceStallFraction()
	}
	return out, nil
}

// AblationFSBEntries sweeps the number of fence scope bits per entry
// (1 class entry + reserved set entry up to 7+1). The paper fixes 4; the
// sweep shows that small FSBs force entry sharing (stricter ordering,
// slightly slower) while more than 4 buys nothing for these workloads.
func (s *Session) AblationFSBEntries(ctx context.Context, sc Scale) ([]AblationRow, error) {
	var jobs []ablationJob
	for _, bench := range []string{"wsq", "pst"} {
		for _, n := range []int{2, 3, 4, 8} {
			cfg := baseConfig()
			cfg.Core.FSBEntries = n
			jobs = append(jobs, ablationJob{
				row: AblationRow{Bench: bench, Param: "FSBEntries", Value: n},
				run: figRun{bench: bench, opts: kernels.Options{Mode: kernels.Scoped, Ops: opsFor(bench, sc)}, cfg: cfg},
			})
		}
	}
	return s.runAblation(ctx, "Ablation FSBEntries", jobs)
}

// AblationFSSDepth sweeps the fence scope stack depth; depth 1 overflows
// on every nested scope, demoting fences to full fences.
func (s *Session) AblationFSSDepth(ctx context.Context, sc Scale) ([]AblationRow, error) {
	var jobs []ablationJob
	for _, bench := range []string{"wsq", "msn"} {
		for _, n := range []int{1, 2, 4} {
			cfg := baseConfig()
			cfg.Core.FSSEntries = n
			jobs = append(jobs, ablationJob{
				row: AblationRow{Bench: bench, Param: "FSSEntries", Value: n},
				run: figRun{bench: bench, opts: kernels.Options{Mode: kernels.Scoped, Ops: opsFor(bench, sc)}, cfg: cfg},
			})
		}
	}
	return s.runAblation(ctx, "Ablation FSSEntries", jobs)
}

// AblationStoreBuffer sweeps store-buffer capacity: small buffers throttle
// both fence flavors; larger buffers widen the traditional fence's drain
// window and hence S-Fence's advantage.
func (s *Session) AblationStoreBuffer(ctx context.Context, sc Scale) ([]AblationRow, error) {
	var jobs []ablationJob
	for _, bench := range []string{"wsq", "barnes"} {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			for _, n := range []int{2, 8, 16} {
				cfg := baseConfig()
				cfg.Core.SBSize = n
				jobs = append(jobs, ablationJob{
					row: AblationRow{Bench: bench + "/" + mode.String(), Param: "SBSize", Value: n},
					run: figRun{bench: bench, opts: kernels.Options{Mode: mode, Ops: opsFor(bench, sc)}, cfg: cfg},
				})
			}
		}
	}
	return s.runAblation(ctx, "Ablation SBSize", jobs)
}

// AblationFIFOStoreBuffer compares the RMO (non-FIFO) store buffer with a
// TSO-like FIFO drain: under FIFO, stores cannot overtake each other, so
// the scoped fence's ability to skip out-of-scope stores matters less for
// store-store ordering but still pays off at store-load fences.
func (s *Session) AblationFIFOStoreBuffer(ctx context.Context, sc Scale) ([]AblationRow, error) {
	var jobs []ablationJob
	for _, bench := range []string{"wsq", "barnes"} {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			for i, fifo := range []bool{false, true} {
				cfg := baseConfig()
				cfg.Core.FIFOStoreBuffer = fifo
				jobs = append(jobs, ablationJob{
					row: AblationRow{Bench: bench + "/" + mode.String(), Param: "FIFO", Value: i},
					run: figRun{bench: bench, opts: kernels.Options{Mode: mode, Ops: opsFor(bench, sc)}, cfg: cfg},
				})
			}
		}
	}
	return s.runAblation(ctx, "Ablation FIFO", jobs)
}

// AblationFinerFences measures the Section VII combination: the wsq put()
// fence only needs store-store ordering (Fig. 2's "storestore" comment),
// so replacing it with a scoped store-store fence removes its issue stall
// entirely. Value 0 = full fences, 1 = SS put fence.
func (s *Session) AblationFinerFences(ctx context.Context, sc Scale) ([]AblationRow, error) {
	var jobs []ablationJob
	for _, bench := range []string{"wsq", "pst"} {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			for i, finer := range []bool{false, true} {
				jobs = append(jobs, ablationJob{
					row: AblationRow{Bench: bench + "/" + mode.String(), Param: "SSPutFence", Value: i},
					run: figRun{bench: bench, opts: kernels.Options{
						Mode: mode, Ops: opsFor(bench, sc), FinerFences: finer,
					}, cfg: baseConfig()},
				})
			}
		}
	}
	return s.runAblation(ctx, "Ablation SSPutFence", jobs)
}

// AblationRecovery compares the exact snapshot FSS recovery with the
// paper's shadow-FSS mechanism (with its conservative post-recovery
// guard); the shadow variant may demote some fences to full fences after
// mispredictions.
func (s *Session) AblationRecovery(ctx context.Context, sc Scale) ([]AblationRow, error) {
	var jobs []ablationJob
	for _, bench := range []string{"wsq", "pst"} {
		for i := 0; i < 2; i++ {
			jobs = append(jobs, ablationJob{
				row: AblationRow{Bench: bench, Param: "Recovery", Value: i},
				run: figRun{bench: bench, opts: kernels.Options{Mode: kernels.Scoped, Ops: opsFor(bench, sc)}, cfg: recCfg(i)},
			})
		}
	}
	return s.runAblation(ctx, "Ablation Recovery", jobs)
}

func recCfg(r int) machine.Config {
	cfg := baseConfig()
	cfg.Core.Recovery = cpu.FSSRecovery(r)
	return cfg
}
