package results

import (
	"context"
	"fmt"
	"maps"
	"runtime"
	"time"

	"sfence/internal/exp"
	"sfence/internal/kernels"
	"sfence/internal/machine"
	"sfence/internal/trace"
)

// KindSimPerf is the envelope kind of the simulator-performance artifact
// (BENCH_SIMPERF.json). Unlike every other artifact it records wall-clock
// measurements of the simulator itself, so it is not deterministic and is
// only written when explicitly requested (sfence-report -simperf).
const KindSimPerf = "simperf"

const simPerfTitle = "Simulator performance — naive per-cycle stepping vs. event-driven clock"

// SimPerfRow is one workload's clock comparison: the same simulation run
// under naive per-cycle stepping (Step/Done/Fault, the pre-event-driven
// Run loop) and under the two-speed event-driven Run, with identical
// results asserted before the timings are recorded.
type SimPerfRow struct {
	Bench    string `json:"bench"`
	Mode     string `json:"mode"`
	Threads  int    `json:"threads"`
	Ops      int    `json:"ops"`
	Workload int    `json:"workload,omitempty"`
	// Observer marks the counting-observer row: a counter-only
	// stats.Observer is attached to both machines, which must not pin the
	// event-driven clock (SkippedCycles stays nonzero) nor perturb any
	// result, and both clocks must deliver identical event tallies.
	Observer  bool  `json:"observer,omitempty"`
	SimCycles int64 `json:"simCycles"`

	NaiveNs int64 `json:"naiveNs"`
	EventNs int64 `json:"eventNs"`

	NaiveCyclesPerSec float64 `json:"naiveCyclesPerSec"`
	EventCyclesPerSec float64 `json:"eventCyclesPerSec"`
	// Speedup is event-driven over naive wall clock for the same machine.
	Speedup float64 `json:"speedup"`

	// Clock accounting of the event-driven run: cycles stepped one by one
	// vs. covered by fast-forward jumps.
	SlowTicks     int64 `json:"slowTicks"`
	SkippedCycles int64 `json:"skippedCycles"`
	Jumps         int64 `json:"jumps"`
	// Spin accounting: jumps that carried at least one core through a
	// confirmed busy-wait orbit, and the cycles those jumps covered.
	SpinJumps         int64 `json:"spinJumps"`
	SpinSkippedCycles int64 `json:"spinSkippedCycles"`

	// Parallel-runner block (rows with Workers > 1): the same machine run
	// sequentially (Workers=1) and under the epoch-barriered parallel
	// runner, bit-identity asserted before the timings are recorded. For
	// these rows NaiveNs/EventNs and the clock accounting above describe
	// the PARALLEL run; SeqNs is the sequential wall clock it is compared
	// against.
	Workers     int     `json:"workers,omitempty"`
	Cores       int     `json:"cores,omitempty"`
	SeqNs       int64   `json:"seqNs,omitempty"`
	ParSpeedup  float64 `json:"parSpeedup,omitempty"`
	Epochs      int64   `json:"epochs,omitempty"`
	EpochFails  int64   `json:"epochFails,omitempty"`
	EpochCycles int64   `json:"epochCycles,omitempty"`
}

// SimPerfReport is the BENCH_SIMPERF.json payload.
type SimPerfReport struct {
	GoVersion string       `json:"goVersion"`
	Rows      []SimPerfRow `json:"rows"`
}

// simPerfCase is one tracked workload; observer attaches a counter-only
// counting observer to both machines.
type simPerfCase struct {
	bench    string
	opts     kernels.Options
	observer bool
}

// simPerfKernelOps sizes the per-kernel rows: enough iterations that the
// steady-state clock behavior dominates warm-up, small enough that the
// full matrix (8 kernels x 2 fence modes x 2 clocks) stays respectable on
// a laptop. Full scale doubles the quick sizes.
var simPerfKernelOps = map[string]int{
	"dekker": 60, "wsq": 50, "msn": 32, "harris": 40,
	"pst": 160, "ptc": 64, "barnes": 16, "radiosity": 16,
}

// simPerfKernels fixes the row order of the per-kernel block.
var simPerfKernels = []string{
	"dekker", "wsq", "msn", "harris", "pst", "ptc", "barnes", "radiosity",
}

// simPerfCases are the tracked workloads: the fence-drain microbenchmark
// is the paper's Fig. 10 pattern (fence-heavy, miss-heavy — the
// event-driven clock's home turf), followed by every Table IV kernel
// under both fence modes, which is where the spin detector earns its
// keep: contended kernels busy-wait with the pipeline fully active, so
// only spin-aware jumps can compress them. The observer row repeats the
// first workload with a counting observer attached, pinning down that
// counter-only observability stays on the fast path (nonzero skipped
// cycles) with identical results.
func simPerfCases(sc exp.Scale) []simPerfCase {
	ops := 400
	wl := 8
	scale := 2
	if sc == exp.Quick {
		ops = 200
		wl = 4
		scale = 1
	}
	cases := []simPerfCase{
		{bench: "fence-drain", opts: kernels.Options{Mode: kernels.Traditional, Ops: ops}},
		{bench: "fence-drain", opts: kernels.Options{Mode: kernels.Scoped, Ops: ops}},
	}
	for _, bench := range simPerfKernels {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			cases = append(cases, simPerfCase{
				bench: bench,
				opts:  kernels.Options{Mode: mode, Ops: simPerfKernelOps[bench] * scale, Workload: wl},
			})
		}
	}
	return append(cases,
		simPerfCase{bench: "fence-drain", opts: kernels.Options{Mode: kernels.Traditional, Ops: ops}, observer: true})
}

// buildMachine assembles a ready-to-run machine for one case on the
// Table III configuration.
func buildMachine(bench string, opts kernels.Options) (*kernels.Kernel, *machine.Machine, error) {
	return buildMachineCfg(bench, opts, machine.DefaultConfig())
}

// buildMachineCfg assembles a ready-to-run machine on an explicit
// configuration (the parallel rows vary Cores and Parallel.Workers).
func buildMachineCfg(bench string, opts kernels.Options, cfg machine.Config) (*kernels.Kernel, *machine.Machine, error) {
	k, err := kernels.Build(bench, opts)
	if err != nil {
		return nil, nil, err
	}
	m, err := machine.New(cfg, k.Program, k.Threads)
	if err != nil {
		return nil, nil, err
	}
	for addr, val := range k.MemInit {
		m.Image().Store(addr, val)
	}
	if k.InitImage != nil {
		k.InitImage(m.Image())
	}
	return k, m, nil
}

// runNaive drives the machine with the pre-event-driven loop: one Step per
// cycle with the Done/Fault scans Run used to perform.
func runNaive(ctx context.Context, m *machine.Machine) (int64, error) {
	limit := int64(machine.DefaultMaxCycles)
	for !m.Done() {
		if m.Cycle()%4096 == 0 {
			if err := ctx.Err(); err != nil {
				return m.Cycle(), err
			}
		}
		if err := m.Fault(); err != nil {
			return m.Cycle(), err
		}
		if m.Cycle() >= limit {
			return m.Cycle(), fmt.Errorf("results: naive run exceeded %d cycles", limit)
		}
		m.Step()
	}
	return m.Cycle(), nil
}

// RunSimPerf measures every tracked workload under both clocks and
// asserts the runs are bit-identical (cycle count and aggregate core
// statistics) before recording the timings. The context cancels the
// event-driven runs; the naive loop polls it between steps.
func RunSimPerf(ctx context.Context, sc exp.Scale) (SimPerfReport, error) {
	rep := SimPerfReport{GoVersion: runtime.Version()}
	for _, tc := range simPerfCases(sc) {
		kN, mN, err := buildMachine(tc.bench, tc.opts)
		if err != nil {
			return rep, fmt.Errorf("results: simperf %s: %w", tc.bench, err)
		}
		_, mE, err := buildMachine(tc.bench, tc.opts)
		if err != nil {
			return rep, fmt.Errorf("results: simperf %s: %w", tc.bench, err)
		}
		var obsN, obsE *trace.CountingObserver
		if tc.observer {
			obsN, obsE = trace.NewCountingObserver(), trace.NewCountingObserver()
			trace.AttachObserver(mN, obsN)
			trace.AttachObserver(mE, obsE)
		}

		t0 := time.Now()
		naiveCycles, err := runNaive(ctx, mN)
		naiveNs := time.Since(t0).Nanoseconds()
		if err != nil {
			return rep, fmt.Errorf("results: simperf %s (naive): %w", tc.bench, err)
		}
		t0 = time.Now()
		eventCycles, err := mE.Run(ctx)
		eventNs := time.Since(t0).Nanoseconds()
		if err != nil {
			return rep, fmt.Errorf("results: simperf %s (event): %w", tc.bench, err)
		}

		if naiveCycles != eventCycles {
			return rep, fmt.Errorf("results: simperf %s: clock divergence: naive %d cycles, event-driven %d", tc.bench, naiveCycles, eventCycles)
		}
		sn, se := mN.TotalStats(), mE.TotalStats()
		if sn != se {
			return rep, fmt.Errorf("results: simperf %s: clock divergence in core stats:\nnaive %+v\nevent %+v", tc.bench, sn, se)
		}
		if tc.observer {
			if !maps.Equal(obsN.Counts(), obsE.Counts()) {
				return rep, fmt.Errorf("results: simperf %s: observer tallies diverged across clocks:\nnaive %v\nevent %v", tc.bench, obsN.Counts(), obsE.Counts())
			}
			if cs := mE.Clock(); cs.SkippedCycles == 0 {
				return rep, fmt.Errorf("results: simperf %s: counting observer pinned the slow path: %+v", tc.bench, cs)
			}
		}
		if kN.Verify != nil {
			if err := kN.Verify(mE.Image()); err != nil {
				return rep, fmt.Errorf("results: simperf %s: %w", tc.bench, err)
			}
		}

		cs := mE.Clock()
		row := SimPerfRow{
			Bench:     tc.bench,
			Mode:      tc.opts.Mode.String(),
			Threads:   len(kN.Threads),
			Ops:       tc.opts.Ops,
			Workload:  tc.opts.Workload,
			Observer:  tc.observer,
			SimCycles: eventCycles,
			NaiveNs:   naiveNs,
			EventNs:   eventNs,
			Speedup:   float64(naiveNs) / float64(eventNs),

			SlowTicks:     cs.SlowTicks,
			SkippedCycles: cs.SkippedCycles,
			Jumps:         cs.Jumps,

			SpinJumps:         cs.SpinJumps,
			SpinSkippedCycles: cs.SpinSkippedCycles,
		}
		if naiveNs > 0 {
			row.NaiveCyclesPerSec = float64(naiveCycles) / (float64(naiveNs) / 1e9)
		}
		if eventNs > 0 {
			row.EventCyclesPerSec = float64(eventCycles) / (float64(eventNs) / 1e9)
		}
		rep.Rows = append(rep.Rows, row)
	}
	if err := runParallelPerf(ctx, sc, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// simPerfParCase is one parallel-runner comparison: a wide machine run
// sequentially and with an epoch-barriered worker pool.
type simPerfParCase struct {
	bench   string
	cores   int
	workers int
}

// simPerfParCases picks the parallel rows. The straggler kernel is the
// representative multi-core-heavy workload: one slow thread keeps the
// machine active while everyone else spins at the barrier, which is
// exactly the shape the sequential clock cannot fast-forward (one active
// core pins it) but per-core epochs can. The case list is deliberately
// scale-invariant: the CI simperf smoke compares a -quick run's row set
// against the committed artifact, so every row must exist at both
// scales (only the wall-clock numbers differ).
func simPerfParCases(sc exp.Scale) []simPerfParCase {
	return []simPerfParCase{
		{bench: "scale-imb", cores: 64, workers: 4},
		{bench: "scale-imb", cores: 256, workers: 4},
	}
}

// runParallelPerf appends the parallel-runner rows: sequential vs
// epoch-barriered wall clock on wide machines, with bit-identity
// (cycles, aggregate core stats, kernel verification) asserted first.
func runParallelPerf(ctx context.Context, sc exp.Scale, rep *SimPerfReport) error {
	for _, tc := range simPerfParCases(sc) {
		opts := kernels.Options{Mode: kernels.Traditional, Threads: tc.cores, Ops: 2, Workload: 2}
		cfg := machine.DefaultConfig()
		cfg.Cores = tc.cores

		kS, mS, err := buildMachineCfg(tc.bench, opts, cfg)
		if err != nil {
			return fmt.Errorf("results: simperf %s/%d: %w", tc.bench, tc.cores, err)
		}
		cfgP := cfg
		cfgP.Parallel.Workers = tc.workers
		_, mP, err := buildMachineCfg(tc.bench, opts, cfgP)
		if err != nil {
			return fmt.Errorf("results: simperf %s/%d: %w", tc.bench, tc.cores, err)
		}

		t0 := time.Now()
		seqCycles, err := mS.Run(ctx)
		seqNs := time.Since(t0).Nanoseconds()
		if err != nil {
			return fmt.Errorf("results: simperf %s/%d (sequential): %w", tc.bench, tc.cores, err)
		}
		t0 = time.Now()
		parCycles, err := mP.Run(ctx)
		parNs := time.Since(t0).Nanoseconds()
		if err != nil {
			return fmt.Errorf("results: simperf %s/%d (workers=%d): %w", tc.bench, tc.cores, tc.workers, err)
		}

		if seqCycles != parCycles {
			return fmt.Errorf("results: simperf %s/%d: worker divergence: sequential %d cycles, workers=%d %d",
				tc.bench, tc.cores, seqCycles, tc.workers, parCycles)
		}
		if ss, sp := mS.TotalStats(), mP.TotalStats(); ss != sp {
			return fmt.Errorf("results: simperf %s/%d: worker divergence in core stats:\nsequential %+v\nparallel %+v",
				tc.bench, tc.cores, ss, sp)
		}
		if kS.Verify != nil {
			if err := kS.Verify(mP.Image()); err != nil {
				return fmt.Errorf("results: simperf %s/%d: %w", tc.bench, tc.cores, err)
			}
		}

		cs := mP.Clock()
		row := SimPerfRow{
			Bench:     tc.bench,
			Mode:      opts.Mode.String(),
			Threads:   tc.cores,
			Ops:       opts.Ops,
			Workload:  opts.Workload,
			SimCycles: parCycles,
			EventNs:   parNs,

			SlowTicks:         cs.SlowTicks,
			SkippedCycles:     cs.SkippedCycles,
			Jumps:             cs.Jumps,
			SpinJumps:         cs.SpinJumps,
			SpinSkippedCycles: cs.SpinSkippedCycles,

			Workers:     tc.workers,
			Cores:       tc.cores,
			SeqNs:       seqNs,
			Epochs:      cs.Epochs,
			EpochFails:  cs.EpochFails,
			EpochCycles: cs.EpochCycles,
		}
		if parNs > 0 {
			row.ParSpeedup = float64(seqNs) / float64(parNs)
			row.EventCyclesPerSec = float64(parCycles) / (float64(parNs) / 1e9)
		}
		rep.Rows = append(rep.Rows, row)
	}
	return nil
}

// SimPerfJSON renders the simulator-performance artifact.
func SimPerfJSON(rep SimPerfReport, sc exp.Scale) ([]byte, error) {
	return Marshal(NewEnvelope(KindSimPerf, simPerfTitle, sc, rep))
}
