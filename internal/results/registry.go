package results

import (
	"context"
	"fmt"
	"strings"

	"sfence/internal/cpu"
	"sfence/internal/exp"
	"sfence/internal/machine"
)

// ErrUnknownExperiment reports a lookup of an experiment ID that is not in
// the registry; Valid carries every registered ID so CLIs can print a real
// error instead of a silent no-op.
type ErrUnknownExperiment struct {
	ID    string
	Valid []string
}

func (e *ErrUnknownExperiment) Error() string {
	return fmt.Sprintf("results: unknown experiment %q (valid IDs: %s)", e.ID, strings.Join(e.Valid, ", "))
}

// ExperimentSpec describes one runnable experiment: a stable ID, the
// envelope kind and artifact its payload becomes, and the functions to
// run, encode, and render it. The registry returned by Experiments() is
// the single table that RunSuite, sfence-report, and sfence-bench
// iterate, so every consumer agrees on identities and encodings.
type ExperimentSpec struct {
	// ID is the stable experiment identifier: "fig12", "table4",
	// "ablation/fsb-entries", "simperf", ...
	ID string
	// Title is the human heading (also the envelope title).
	Title string
	// Kind is the JSON envelope kind of the payload.
	Kind string
	// Artifact names the BENCH_*.json file this experiment's payload
	// becomes in a suite regeneration. It is empty for the individual
	// ablation sweeps, whose payloads fold into the combined
	// BENCH_ABLATIONS.json.
	Artifact string
	// Run executes the experiment on a session at the given scale and
	// returns its payload (the concrete type behind the JSON/Render
	// functions below).
	Run func(ctx context.Context, s *exp.Session, sc exp.Scale) (any, error)
	// JSON encodes a payload produced by Run into its schema-versioned
	// envelope.
	JSON func(data any, sc exp.Scale) ([]byte, error)
	// Render formats a payload produced by Run as the ASCII equivalent of
	// the paper's chart.
	Render func(data any) string

	// store installs a payload into a Suite; nil marks experiments that
	// RunSuite skips (simperf measures wall clock, so it is not part of
	// the deterministic suite).
	store func(*Suite, any)
	// fromSuite reads the payload back out of a stored Suite, for
	// artifact regeneration.
	fromSuite func(*Suite) any
}

// InSuite reports whether RunSuite executes this experiment (everything
// deterministic; simperf is the exception).
func (e ExperimentSpec) InSuite() bool { return e.store != nil }

// typedSpec adapts strongly-typed experiment functions to the any-typed
// ExperimentSpec fields, with a defensive payload type check on encode.
func typedSpec[T any](
	id, title, kind, artifact string,
	run func(ctx context.Context, s *exp.Session, sc exp.Scale) (T, error),
	encode func(T, exp.Scale) ([]byte, error),
	render func(T) string,
	store func(*Suite, T),
	fromSuite func(*Suite) T,
) ExperimentSpec {
	es := ExperimentSpec{ID: id, Title: title, Kind: kind, Artifact: artifact}
	es.Run = func(ctx context.Context, s *exp.Session, sc exp.Scale) (any, error) {
		return run(ctx, s, sc)
	}
	es.JSON = func(data any, sc exp.Scale) ([]byte, error) {
		v, ok := data.(T)
		if !ok {
			return nil, fmt.Errorf("results: experiment %s: payload is %T, want %T", id, data, *new(T))
		}
		return encode(v, sc)
	}
	es.Render = func(data any) string {
		v, ok := data.(T)
		if !ok {
			return fmt.Sprintf("results: experiment %s: payload is %T", id, data)
		}
		return render(v)
	}
	if store != nil {
		es.store = func(su *Suite, data any) { store(su, data.(T)) }
	}
	if fromSuite != nil {
		es.fromSuite = func(su *Suite) any { return fromSuite(su) }
	}
	return es
}

// groupFigureSpec builds the spec of one grouped-bar figure (13-16).
func groupFigureSpec(id, kind, artifact, renderTitle string,
	run func(*exp.Session, context.Context, exp.Scale) ([]exp.BenchGroup, error),
	store func(*Suite, []exp.BenchGroup),
	fromSuite func(*Suite) []exp.BenchGroup,
) ExperimentSpec {
	return typedSpec(id, kindTitles[kind], kind, artifact,
		func(ctx context.Context, s *exp.Session, sc exp.Scale) ([]exp.BenchGroup, error) {
			return run(s, ctx, sc)
		},
		func(v []exp.BenchGroup, sc exp.Scale) ([]byte, error) { return GroupsJSON(kind, v, sc) },
		func(v []exp.BenchGroup) string { return exp.RenderGroups(renderTitle, v) },
		store, fromSuite,
	)
}

// ablationExperimentSpec builds the spec of one ablation sweep. The
// payload is a single AblationSet; standalone JSON output wraps it in a
// one-set ablations envelope, while suite regeneration folds all sweeps
// into the combined BENCH_ABLATIONS.json.
func ablationExperimentSpec(a AblationSpec) ExperimentSpec {
	fn := ablationFns[a.Name]
	return typedSpec("ablation/"+a.Name, a.Title, KindAblations, "",
		func(ctx context.Context, s *exp.Session, sc exp.Scale) (AblationSet, error) {
			rows, err := fn(s, ctx, sc)
			if err != nil {
				return AblationSet{}, err
			}
			return AblationSet{Name: a.Name, Title: a.Title, Rows: rows}, nil
		},
		func(v AblationSet, sc exp.Scale) ([]byte, error) { return AblationsJSON([]AblationSet{v}, sc) },
		func(v AblationSet) string { return exp.RenderAblation("Ablation — "+v.Title, v.Rows) },
		func(su *Suite, v AblationSet) { su.Ablations = append(su.Ablations, v) },
		func(su *Suite) AblationSet {
			for _, set := range su.Ablations {
				if set.Name == a.Name {
					return set
				}
			}
			return AblationSet{Name: a.Name, Title: a.Title}
		},
	)
}

// Experiments returns the registry in presentation order: the figures,
// the ablation sweeps, the tables, the hardware-cost model, and finally
// the (non-deterministic, suite-excluded) simulator-performance
// experiment. The slice is freshly built on every call; callers may
// reorder or filter it freely.
func Experiments() []ExperimentSpec {
	specs := []ExperimentSpec{
		typedSpec("fig12", kindTitles[KindFigure12], KindFigure12, "BENCH_FIG12.json",
			func(ctx context.Context, s *exp.Session, sc exp.Scale) ([]exp.SpeedupSeries, error) {
				return s.Figure12(ctx, sc)
			},
			Figure12JSON,
			exp.RenderFigure12,
			func(su *Suite, v []exp.SpeedupSeries) { su.Figure12 = v },
			func(su *Suite) []exp.SpeedupSeries { return su.Figure12 },
		),
		groupFigureSpec("fig13", KindFigure13, "BENCH_FIG13.json",
			"Figure 13 — Normalized execution time (T, S, T+, S+)",
			(*exp.Session).Figure13,
			func(su *Suite, v []exp.BenchGroup) { su.Figure13 = v },
			func(su *Suite) []exp.BenchGroup { return su.Figure13 }),
		groupFigureSpec("fig14", KindFigure14, "BENCH_FIG14.json",
			"Figure 14 — Class scope vs. set scope",
			(*exp.Session).Figure14,
			func(su *Suite, v []exp.BenchGroup) { su.Figure14 = v },
			func(su *Suite) []exp.BenchGroup { return su.Figure14 }),
		groupFigureSpec("fig15", KindFigure15, "BENCH_FIG15.json",
			"Figure 15 — Varying memory access latency (200/300/500 cycles)",
			(*exp.Session).Figure15,
			func(su *Suite, v []exp.BenchGroup) { su.Figure15 = v },
			func(su *Suite) []exp.BenchGroup { return su.Figure15 }),
		groupFigureSpec("fig16", KindFigure16, "BENCH_FIG16.json",
			"Figure 16 — Varying ROB size (64/128/256 entries)",
			(*exp.Session).Figure16,
			func(su *Suite, v []exp.BenchGroup) { su.Figure16 = v },
			func(su *Suite) []exp.BenchGroup { return su.Figure16 }),
		groupFigureSpec("fig-depth", KindFigureDepth, "BENCH_DEPTH.json",
			"Depth sweep — Varying memory-hierarchy depth (2/3/4 levels)",
			(*exp.Session).FigureDepth,
			func(su *Suite, v []exp.BenchGroup) { su.FigureDepth = v },
			func(su *Suite) []exp.BenchGroup { return su.FigureDepth }),
		typedSpec("fig-cores", kindTitles[KindFigureCores], KindFigureCores, "BENCH_CORES.json",
			func(ctx context.Context, s *exp.Session, sc exp.Scale) ([]exp.CoresRow, error) {
				return s.FigureCores(ctx, sc)
			},
			CoresJSON,
			exp.RenderCores,
			func(su *Suite, v []exp.CoresRow) { su.FigureCores = v },
			func(su *Suite) []exp.CoresRow { return su.FigureCores },
		),
		typedSpec("fig-heatmap", kindTitles[KindHeatmap], KindHeatmap, "BENCH_HEATMAP.json",
			func(ctx context.Context, s *exp.Session, sc exp.Scale) ([]exp.HeatmapRow, error) {
				return s.FigureHeatmap(ctx, sc)
			},
			HeatmapJSON,
			exp.RenderHeatmap,
			func(su *Suite, v []exp.HeatmapRow) { su.Heatmap = v },
			func(su *Suite) []exp.HeatmapRow { return su.Heatmap },
		),
		groupFigureSpec("fig-inferred", KindInferred, "BENCH_INFERRED.json",
			"Inferred scopes — T (traditional), S (hand annotations), I (static inference)",
			(*exp.Session).FigureInferred,
			func(su *Suite, v []exp.BenchGroup) { su.FigureInferred = v },
			func(su *Suite) []exp.BenchGroup { return su.FigureInferred }),
	}
	for _, a := range AblationSpecs() {
		specs = append(specs, ablationExperimentSpec(a))
	}
	specs = append(specs,
		typedSpec("table3", kindTitles[KindTableIII], KindTableIII, "BENCH_TABLE3.json",
			func(context.Context, *exp.Session, exp.Scale) ([]exp.TableIIIRow, error) {
				return exp.TableIII(machine.DefaultConfig()), nil
			},
			func(v []exp.TableIIIRow, sc exp.Scale) ([]byte, error) {
				return Marshal(NewEnvelope(KindTableIII, kindTitles[KindTableIII], sc, v))
			},
			exp.RenderTableIIIRows,
			func(su *Suite, v []exp.TableIIIRow) { su.TableIII = v },
			func(su *Suite) []exp.TableIIIRow { return su.TableIII },
		),
		typedSpec("table4", kindTitles[KindTableIV], KindTableIV, "BENCH_TABLE4.json",
			func(context.Context, *exp.Session, exp.Scale) ([]BenchmarkInfo, error) {
				return TableIVInfos(), nil
			},
			func(v []BenchmarkInfo, sc exp.Scale) ([]byte, error) {
				return Marshal(NewEnvelope(KindTableIV, kindTitles[KindTableIV], sc, v))
			},
			renderTableIVInfos,
			func(su *Suite, v []BenchmarkInfo) { su.TableIV = v },
			func(su *Suite) []BenchmarkInfo { return su.TableIV },
		),
		typedSpec("hwcost", kindTitles[KindHardwareCost], KindHardwareCost, "BENCH_HWCOST.json",
			func(context.Context, *exp.Session, exp.Scale) (exp.HardwareCostReport, error) {
				return exp.HardwareCost(cpu.DefaultConfig()), nil
			},
			HardwareCostJSON,
			exp.RenderHardwareCost,
			func(su *Suite, v exp.HardwareCostReport) { su.HardwareCost = v },
			func(su *Suite) exp.HardwareCostReport { return su.HardwareCost },
		),
		typedSpec("stats", statsTitle, KindStats, "BENCH_STATS.json",
			func(ctx context.Context, s *exp.Session, sc exp.Scale) ([]exp.KernelSnapshot, error) {
				return s.KernelStats(ctx, sc)
			},
			StatsJSON,
			exp.RenderKernelStats,
			nil, nil,
		),
		typedSpec("simperf", simPerfTitle, KindSimPerf, "BENCH_SIMPERF.json",
			func(ctx context.Context, _ *exp.Session, sc exp.Scale) (SimPerfReport, error) {
				return RunSimPerf(ctx, sc)
			},
			SimPerfJSON,
			renderSimPerf,
			nil, nil,
		),
	)
	return specs
}

// KindStats is the envelope kind of the per-kernel snapshot experiment.
// Like simperf it is excluded from the deterministic suite — its payload
// is a drill-down artifact, not one of the paper's figures — so it is
// produced only on explicit request (sfence-bench stats).
const KindStats = "stats"

const statsTitle = "Per-kernel statistics snapshots — the full hierarchical registry per Table IV benchmark and configuration"

// StatsJSON renders the per-kernel snapshot artifact.
func StatsJSON(rows []exp.KernelSnapshot, sc exp.Scale) ([]byte, error) {
	return Marshal(NewEnvelope(KindStats, statsTitle, sc, rows))
}

// ExperimentIDs lists every registered experiment ID in registry order.
func ExperimentIDs() []string {
	specs := Experiments()
	ids := make([]string, len(specs))
	for i, s := range specs {
		ids[i] = s.ID
	}
	return ids
}

// LookupExperiment resolves an experiment ID, returning an
// *ErrUnknownExperiment naming every valid ID on a miss.
func LookupExperiment(id string) (ExperimentSpec, error) {
	for _, s := range Experiments() {
		if s.ID == id {
			return s, nil
		}
	}
	return ExperimentSpec{}, &ErrUnknownExperiment{ID: id, Valid: ExperimentIDs()}
}

// renderSimPerf formats the simulator-performance report: the clock
// comparison first, then the parallel-runner rows (if any).
func renderSimPerf(rep SimPerfReport) string {
	var sb strings.Builder
	sb.WriteString(simPerfTitle + "\n")
	sb.WriteString(fmt.Sprintf("%-14s%-12s%12s%14s%14s%9s\n",
		"bench", "mode", "simcycles", "naive cyc/s", "event cyc/s", "speedup"))
	var par []SimPerfRow
	for _, r := range rep.Rows {
		if r.Workers > 0 {
			par = append(par, r)
			continue
		}
		mode := r.Mode
		if r.Observer {
			mode += "+obs"
		}
		sb.WriteString(fmt.Sprintf("%-14s%-12s%12d%14.0f%14.0f%8.2fx\n",
			r.Bench, mode, r.SimCycles, r.NaiveCyclesPerSec, r.EventCyclesPerSec, r.Speedup))
	}
	if len(par) > 0 {
		sb.WriteString("\nParallel runner — sequential vs epoch-barriered wall clock (bit-identical results)\n")
		sb.WriteString(fmt.Sprintf("%-14s%7s%9s%12s%12s%12s%9s%12s%8s\n",
			"bench", "cores", "workers", "simcycles", "seq ms", "par ms", "speedup", "epochcyc", "fails"))
		for _, r := range par {
			sb.WriteString(fmt.Sprintf("%-14s%7d%9d%12d%12.1f%12.1f%8.2fx%12d%8d\n",
				r.Bench, r.Cores, r.Workers, r.SimCycles,
				float64(r.SeqNs)/1e6, float64(r.EventNs)/1e6, r.ParSpeedup,
				r.EpochCycles, r.EpochFails))
		}
	}
	return sb.String()
}
