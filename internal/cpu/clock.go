package cpu

import "math"

// This file is the core half of the event-driven two-speed clock: a
// quiescence detector (progressed), a conservative next-event bound
// (NextWakeup), and a bulk idle-cycle crediting routine (FastForward) that
// reproduces, counter for counter, what per-cycle stepping would have
// accumulated while the core spins waiting for memory.
//
// The contract that makes fast-forwarding bit-identical to naive stepping:
// Tick is a deterministic function of (core state, cycle). If a Tick
// mutated nothing (progressed == false), the next Tick repeats the exact
// same control flow — the only cycle-dependent comparisons are readyAt and
// redirectUntil bounds — until the earliest of those bounds arrives. A
// quiescent cycle therefore accrues exactly: Cycles++, the ROB-occupancy
// integral, and whichever once-per-cycle stall counters the last Tick
// bumped (recorded in stallAccrual). FastForward(delta) credits delta
// copies of that accrual in O(1).

// NeverWakes is the NextWakeup value of a core with no scheduled event:
// done, faulted, or deadlocked. The machine clamps it to the cycle budget,
// so a deadlocked program reaches the budget with the same stats the naive
// clock would have spun its way to.
const NeverWakes int64 = math.MaxInt64

// stallAccrual records which once-per-cycle stall counters the current
// Tick incremented. While the core is quiescent every subsequent cycle
// increments exactly the same set, so FastForward can multiply instead of
// iterate. sites holds at most two entries: a retirement-blocked fence and
// an issue-blocked fence can each charge one site per cycle.
type stallAccrual struct {
	fenceStall  bool // stats.FenceStallCycles
	fenceRetire bool // variant: retirement stall (else issue stall)
	fenceIdle   bool // stats.FenceIdleCycles
	robFull     bool // stats.ROBFullCycles
	sbFull      bool // stats.SBFullCycles

	// fenceTraces counts the TraceFenceStall events this Tick emitted
	// (0-2: a retirement-blocked and an issue-blocked fence can each fire
	// once per cycle). It is what makes counter-only observers
	// fast-forward-compatible: a quiescent cycle repeats exactly these
	// events, so FastForward credits an attached stats.Observer with
	// fenceTraces*delta occurrences in one call.
	fenceTraces uint8

	nSites   int
	sites    [2]*FenceSite
	siteIdle [2]bool
}

func (a *stallAccrual) addSite(s *FenceSite, idle bool) {
	if a.nSites < len(a.sites) {
		a.sites[a.nSites] = s
		a.siteIdle[a.nSites] = idle
		a.nSites++
	}
}

// Active reports whether the core can make forward progress on the very
// next cycle: its last Tick mutated state, or snoops are waiting to be
// processed. Done and faulted cores are never active.
func (c *Core) Active() bool {
	if c.fault != nil || c.Done() {
		return false
	}
	return c.progressed || len(c.snoopPending) > 0
}

// Traced reports whether a pipeline tracer is attached. Tracers observe
// per-cycle events (notably one TraceFenceStall per stalled cycle), so the
// machine must step a traced core cycle by cycle.
func (c *Core) Traced() bool { return c.tracer != nil }

// SpecLoadsInFlight returns the number of in-flight loads that executed
// speculatively past an unretired fence. The machine uses it as an exact
// snoop filter: a core with none cannot replay, so delivering a remote
// store notification to it is a guaranteed no-op.
func (c *Core) SpecLoadsInFlight() int { return c.specLoads }

// NextWakeup returns a conservative lower bound on the next cycle at which
// the core's state can change: never later than the true next change,
// possibly earlier. For an active core that is the next cycle; for a
// quiescent core it is the earliest scheduled event — the minimum readyAt
// across executing ROB entries and in-flight store-buffer entries, and the
// fetch-redirect release point. A core with no scheduled event returns
// NeverWakes.
func (c *Core) NextWakeup() int64 {
	if c.fault != nil || c.Done() {
		return NeverWakes
	}
	if c.progressed || len(c.snoopPending) > 0 {
		return c.cycle + 1
	}
	// The completion and drain gates are conservative lower bounds on the
	// next scheduled event (stale-early at worst, e.g. after a squash), so
	// the minimum below can wake the machine early — an extra quiescent
	// tick — but never late.
	w := NeverWakes
	if c.redirectUntil > c.cycle {
		w = c.redirectUntil
	}
	if c.nextComplete < w {
		w = c.nextComplete
	}
	if c.nextSBDrain < w {
		w = c.nextSBDrain
	}
	return w
}

// FastForward credits delta skipped idle cycles to the core's statistics,
// exactly as delta quiescent Ticks would have: the active-cycle count, the
// ROB-occupancy integral, and the once-per-cycle stall counters captured
// by the last Tick. It must only be called when the core is quiescent
// (progressed false, no pending snoops) and every skipped cycle is
// strictly before NextWakeup.
func (c *Core) FastForward(delta int64) {
	if delta <= 0 || c.fault != nil || c.Done() {
		return
	}
	d := uint64(delta)
	c.stats.Cycles.Add(d)
	c.stats.SumROBOccupancy.Add((c.tail - c.head) * d)
	a := &c.accrual
	if a.fenceStall {
		c.stats.FenceStallCycles.Add(d)
		if a.fenceRetire {
			c.stats.FenceStallRetire.Add(d)
		} else {
			c.stats.FenceStallIssue.Add(d)
		}
		if a.fenceIdle {
			c.stats.FenceIdleCycles.Add(d)
		}
	}
	if a.robFull {
		c.stats.ROBFullCycles.Add(d)
	}
	if a.sbFull {
		c.stats.SBFullCycles.Add(d)
	}
	for i := 0; i < a.nSites; i++ {
		a.sites[i].StallCycles += d
		if a.siteIdle[i] {
			a.sites[i].IdleCycles += d
		}
	}
	// Counter-only observers receive the skipped cycles' events in bulk:
	// a quiescent cycle emits exactly the TraceFenceStall events the last
	// Tick did, so delta skipped cycles emit fenceTraces*delta of them.
	// This is why an Observer — unlike a Tracer — never pins the slow
	// path.
	if c.observer != nil && a.fenceTraces > 0 {
		c.observer.Observe(c.id, uint8(TraceFenceStall), uint64(a.fenceTraces)*d)
		if c.spin.phase == spinArmed {
			// An armed spin window can contain fast-forwarded quiescent
			// spans; their bulk-credited events belong to the window tally
			// exactly like per-tick ones.
			c.spin.evAt[TraceFenceStall] += uint64(a.fenceTraces) * d
		}
	}
	c.cycle += delta
}
