package kernels

import (
	"strconv"
	"strings"

	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
)

// Scenario adapts a built kernel for static scope analysis: the program,
// the thread entry points with their concrete initial registers, and the
// kernel's declared data regions.
func (k *Kernel) Scenario() scopecheck.Scenario {
	threads := make([]scopecheck.Thread, len(k.Threads))
	for i, th := range k.Threads {
		threads[i] = scopecheck.Thread{Entry: th.Entry, Regs: th.Regs}
	}
	return scopecheck.Scenario{
		Name:    k.Name,
		Prog:    k.Program,
		Threads: threads,
		Regions: k.Regions,
	}
}

// regionsFor converts a layout's named allocations into scope-analysis
// region declarations. classify maps an allocation name to its sharing
// class and owning thread (-1 when unowned); nil classifies everything
// SharedRW. The classification is a declaration the analyzer relies on
// for attributing unresolved (pointer-chased) addresses: only SharedRW
// regions may be reached through loaded pointers.
func regionsFor(lay *memsys.Layout, classify func(name string) (scopecheck.Sharing, int)) []scopecheck.Region {
	named := lay.Regions()
	out := make([]scopecheck.Region, 0, len(named))
	for _, nr := range named {
		sharing, owner := scopecheck.SharedRW, -1
		if classify != nil {
			sharing, owner = classify(nr.Name)
		}
		out = append(out, scopecheck.Region{
			Name: nr.Name, Base: nr.Base, Words: nr.Words,
			Sharing: sharing, Owner: owner,
		})
	}
	return out
}

// ownedSuffix matches allocation names of the form prefix<N> (work3,
// rec0, ...) and returns N.
func ownedSuffix(name, prefix string) (int, bool) {
	if !strings.HasPrefix(name, prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(name[len(prefix):])
	if err != nil {
		return 0, false
	}
	return n, true
}
