package kernels

import (
	"sfence/internal/isa"
	"sfence/internal/machine"
)

func init() {
	register(Info{
		Name:      "nested-scope",
		ScopeType: "class",
		Group:     "micro",
		Description: "Nested class-scope pressure microbenchmark: an outer scope with a cold " +
			"store around an inner scope with a warm store and a class fence, exposing FSB " +
			"entry sharing and FSS overflow (not part of the paper's Table IV)",
		Hidden: true,
		Build:  buildNestedScope,
	})
}

// buildNestedScope assembles the scope-pressure microbenchmark: two
// nested class scopes per iteration, where the outer scope performs a
// cold (long-latency) store and the inner scope performs a warm store
// followed by a class fence. With enough FSB entries the inner fence
// only waits for the warm store; when class scopes must share one FSB
// entry (FSBEntries == 2) the inner fence inherits the outer scope's
// cold store, and when the FSS is too shallow (FSSEntries == 1) the
// inner fs_start overflows and every fence degrades to a full fence.
// Ops is the iteration count; the kernel is single-threaded.
func buildNestedScope(opts Options) (*Kernel, error) {
	opts = opts.withDefaults(1, 60, 0)
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 1<<16) // cold region base (outer scope)
	b.MovI(isa.R2, 4096)  // warm word (inner scope)
	b.MovI(isa.R3, 1)
	b.MovI(isa.R4, int64(opts.Ops))
	// Warm the inner word.
	b.Store(isa.R2, 0, isa.R3)
	b.Fence(isa.ScopeGlobal)
	b.Label("loop")
	b.FsStart(1)
	b.AddI(isa.R1, isa.R1, 64) // fresh line each iteration
	b.Store(isa.R1, 0, isa.R4) // outer-scope cold store
	b.FsStart(2)
	b.Store(isa.R2, 0, isa.R4) // inner-scope warm store
	b.Fence(isa.ScopeClass)    // should wait only for the warm store
	b.Load(isa.R5, isa.R2, 0)
	b.FsEnd(2)
	b.FsEnd(1)
	b.AddI(isa.R4, isa.R4, -1)
	b.Bne(isa.R4, isa.R0, "loop")
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Kernel{
		Name:    "nested-scope",
		Program: prog,
		Threads: []machine.Thread{{Entry: "main"}},
	}, nil
}
