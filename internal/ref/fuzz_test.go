package ref

import (
	"testing"

	"sfence/internal/cpu"
	"sfence/internal/isa"
	"sfence/internal/memsys"
)

// FuzzDifferential drives the differential oracle from the fuzzer: any
// seed must produce a random program whose architectural result on the
// out-of-order core matches the sequential reference interpreter.
//
// Run with: go test -fuzz=FuzzDifferential ./internal/ref
func FuzzDifferential(f *testing.F) {
	for seed := int64(0); seed < 10; seed++ {
		f.Add(seed)
	}
	cfgs := []cpu.Config{cpu.DefaultConfig()}
	spec := cpu.DefaultConfig()
	spec.InWindowSpec = true
	cfgs = append(cfgs, spec)

	f.Fuzz(func(t *testing.T, seed int64) {
		p, regs, mem := GenProgram(seed)
		st, err := Run(p, p.MustEntry("main"), regs, mem, 2_000_000)
		if err != nil {
			// GenProgram only emits counted loops and forward branches, so
			// every generated program terminates well inside the step
			// budget: exhausting it means the generator or the interpreter
			// is broken, and skipping would silently mask that.
			t.Fatalf("seed %d: reference interpreter failed on a guaranteed-terminating program: %v", seed, err)
		}
		for _, cfg := range cfgs {
			img := memsys.NewImage(1 << 20)
			for a, v := range mem {
				img.Store(a, v)
			}
			hier := memsys.MustHierarchy(1, memsys.DefaultConfig())
			core, err := cpu.NewCore(0, cfg, p, p.MustEntry("main"), regs, img, hier)
			if err != nil {
				t.Fatal(err)
			}
			for cycle := int64(0); !core.Done(); cycle++ {
				if err := core.Fault(); err != nil {
					t.Fatalf("seed %d: core fault: %v", seed, err)
				}
				if cycle > 50_000_000 {
					t.Fatalf("seed %d: core did not finish", seed)
				}
				core.Tick(cycle)
			}
			for r := isa.R1; r <= isa.R12; r++ {
				if core.Reg(r) != st.Regs[r] {
					t.Errorf("seed %d: r%d = %d, want %d", seed, r, core.Reg(r), st.Regs[r])
				}
			}
			for i := int64(0); i < memWords; i++ {
				addr := memBase + i*8
				if img.Load(addr) != st.Load(addr) {
					t.Errorf("seed %d: mem[%d] = %d, want %d", seed, addr, img.Load(addr), st.Load(addr))
				}
			}
		}
	})
}
