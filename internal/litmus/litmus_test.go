package litmus

import (
	"context"
	"testing"

	"sfence/internal/isa"
	"sfence/internal/machine"
)

func runTest(t *testing.T, lt *Test, cfg machine.Config) Outcome {
	t.Helper()
	o, err := lt.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", lt.Name, err)
	}
	return o
}

// The machine must actually be relaxed: without fences the SB litmus
// exhibits the store-buffering outcome (both threads read 0).
func TestSBWithoutFenceIsRelaxed(t *testing.T) {
	lt := StoreBuffering(false, isa.ScopeGlobal)
	o := runTest(t, lt, DefaultMachineConfig())
	if !(o.R[0] == 0 && o.R[1] == 0) {
		t.Errorf("expected the relaxed SB outcome (0,0); got %v — the machine is not reordering", o)
	}
}

// Full fences forbid the SB outcome.
func TestSBWithFullFence(t *testing.T) {
	lt := StoreBuffering(true, isa.ScopeGlobal)
	o := runTest(t, lt, DefaultMachineConfig())
	if lt.Forbidden(o) {
		t.Errorf("forbidden outcome %v observed with full fences", o)
	}
}

// Set-scoped fences over {X, Y} must be as strong as full fences here,
// since every access in the test is in the set.
func TestSBWithSetScopedFence(t *testing.T) {
	lt := StoreBuffering(true, isa.ScopeSet)
	o := runTest(t, lt, DefaultMachineConfig())
	if lt.Forbidden(o) {
		t.Errorf("forbidden outcome %v observed with set-scoped fences", o)
	}
}

// Class-scoped fences with the accesses inside the scope: forbidden
// outcome must not appear.
func TestSBWithClassScopedFence(t *testing.T) {
	lt := ClassScopedSB()
	o := runTest(t, lt, DefaultMachineConfig())
	if lt.Forbidden(o) {
		t.Errorf("forbidden outcome %v observed with class-scoped fences", o)
	}
}

// Mis-scoped fences do NOT order out-of-scope accesses: the relaxed
// outcome must still be observable (this pins down S-Fence semantics).
func TestMisScopedFenceStillRelaxed(t *testing.T) {
	lt := ScopedSBLeaky()
	o := runTest(t, lt, DefaultMachineConfig())
	if !(o.R[0] == 0 && o.R[1] == 0) {
		t.Errorf("mis-scoped fence unexpectedly ordered out-of-scope stores: %v", o)
	}
}

func TestMPWithFences(t *testing.T) {
	lt := MessagePassing(true)
	o := runTest(t, lt, DefaultMachineConfig())
	if lt.Forbidden(o) {
		t.Errorf("MP violation with fences: %v", o)
	}
}

func TestMPWithoutFencesMayFail(t *testing.T) {
	// Without fences the outcome is unconstrained; just verify the run
	// terminates and produces a legal value.
	lt := MessagePassing(false)
	o := runTest(t, lt, DefaultMachineConfig())
	if o.R[0] != 0 && o.R[0] != 1 {
		t.Errorf("MP produced impossible value %v", o)
	}
}

func TestLBNeverProducesBothOnes(t *testing.T) {
	lt := LoadBuffering()
	o := runTest(t, lt, DefaultMachineConfig())
	if lt.Forbidden(o) {
		t.Errorf("LB produced (1,1): stores leaked ahead of retirement: %v", o)
	}
}

func TestIRIWMultiCopyAtomic(t *testing.T) {
	lt := IRIW()
	o := runTest(t, lt, DefaultMachineConfig())
	if lt.Forbidden(o) {
		t.Errorf("IRIW non-SC outcome observed: %v", o)
	}
}

// All fence-bearing litmus tests must also hold under in-window
// speculation (T+/S+), where the speculative-load replay mechanism is
// responsible for correctness.
func TestLitmusUnderInWindowSpeculation(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.Core.InWindowSpec = true
	for _, lt := range []*Test{
		StoreBuffering(true, isa.ScopeGlobal),
		StoreBuffering(true, isa.ScopeSet),
		ClassScopedSB(),
		MessagePassing(true),
		IRIW(),
	} {
		o := runTest(t, lt, cfg)
		if lt.Forbidden(o) {
			t.Errorf("%s: forbidden outcome %v under in-window speculation", lt.Name, o)
		}
	}
}

// The fences must also hold under the paper's shadow-FSS recovery.
func TestLitmusUnderShadowRecovery(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.Core.Recovery = 1 // RecoveryShadow
	for _, lt := range []*Test{
		StoreBuffering(true, isa.ScopeGlobal),
		ClassScopedSB(),
		MessagePassing(true),
	} {
		o := runTest(t, lt, cfg)
		if lt.Forbidden(o) {
			t.Errorf("%s: forbidden outcome %v under shadow FSS recovery", lt.Name, o)
		}
	}
}

// A FIFO store buffer (TSO-like ablation) also forbids MP reordering from
// the store side.
func TestMPUnderFIFOStoreBuffer(t *testing.T) {
	cfg := DefaultMachineConfig()
	cfg.Core.FIFOStoreBuffer = true
	lt := MessagePassing(true)
	o := runTest(t, lt, cfg)
	if lt.Forbidden(o) {
		t.Errorf("MP violation under FIFO SB: %v", o)
	}
}

// A store-store fence must NOT forbid the SB outcome (it does not order a
// store against a later load).
func TestSBWithSSFenceStillRelaxed(t *testing.T) {
	lt := SBWithStoreStoreFence()
	o := runTest(t, lt, DefaultMachineConfig())
	if !(o.R[0] == 0 && o.R[1] == 0) {
		t.Errorf("SS fence unexpectedly ordered store->load: %v", o)
	}
}

// A store-store fence on the producer side is exactly strong enough for
// message passing, at global and class scope, with and without in-window
// speculation.
func TestMPWithSSFence(t *testing.T) {
	for _, spec := range []bool{false, true} {
		cfg := DefaultMachineConfig()
		cfg.Core.InWindowSpec = spec
		for _, scope := range []isa.ScopeKind{isa.ScopeGlobal, isa.ScopeClass} {
			lt := MessagePassingSS(scope)
			o := runTest(t, lt, cfg)
			if lt.Forbidden(o) {
				t.Errorf("%s (spec=%v): MP violation %v", lt.Name, spec, o)
			}
		}
	}
}

// CAS increments under contention must never lose an update, in every
// store-buffer and speculation configuration.
func TestCASIncrementExact(t *testing.T) {
	for _, mode := range []string{"default", "spec", "fifo"} {
		cfg := DefaultMachineConfig()
		switch mode {
		case "spec":
			cfg.Core.InWindowSpec = true
		case "fifo":
			cfg.Core.FIFOStoreBuffer = true
		}
		lt := CASIncrement(4, 25)
		m, err := machine.New(cfg, lt.Program, lt.Threads)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(context.Background()); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if got := m.Image().Load(AddrX); got != 100 {
			t.Errorf("%s: counter = %d, want 100 (lost CAS updates)", mode, got)
		}
	}
}

// Same-address stores must complete in program order even through the
// non-FIFO store buffer (per-location coherence).
func TestCoWWPerLocationOrder(t *testing.T) {
	lt := CoWW()
	cfg := DefaultMachineConfig()
	m, err := machine.New(cfg, lt.Program, lt.Threads)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := m.Image().Load(AddrX); got != 2 {
		t.Errorf("final value %d, want 2 (same-address stores reordered)", got)
	}
}

// A load-load fence on the consumer side of MP (with an SS fence on the
// producer) is exactly the minimal RMO fencing; the violation must stay
// forbidden, with and without in-window speculation.
func TestMPWithMinimalFinerFences(t *testing.T) {
	for _, spec := range []bool{false, true} {
		cfg := DefaultMachineConfig()
		cfg.Core.InWindowSpec = spec
		lt := MessagePassingFiner()
		o := runTest(t, lt, cfg)
		if lt.Forbidden(o) {
			t.Errorf("spec=%v: MP violation with minimal finer fences: %v", spec, o)
		}
	}
}

// Litmus outcomes are deterministic.
func TestLitmusDeterminism(t *testing.T) {
	a := runTest(t, StoreBuffering(false, isa.ScopeGlobal), DefaultMachineConfig())
	b := runTest(t, StoreBuffering(false, isa.ScopeGlobal), DefaultMachineConfig())
	if a != b {
		t.Errorf("outcomes differ across identical runs: %v vs %v", a, b)
	}
}
