// Package litmus contains classic memory-model litmus tests expressed in
// the simulator's mini-ISA. They serve two purposes: they demonstrate that
// the simulated machine really is relaxed (store buffering and reordering
// are observable without fences), and they verify that fences — including
// scoped fences — restore the orderings the paper relies on.
package litmus

import (
	"context"
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/machine"
)

// Shared-variable addresses, placed on distinct cache lines.
const (
	AddrX  = 4096
	AddrY  = 4096 + 64
	AddrR1 = 8192 // observed results, one line apart
	AddrR2 = 8192 + 64
	AddrR3 = 8192 + 128
	AddrR4 = 8192 + 192
)

// Outcome is the observed result tuple of a litmus run.
type Outcome struct {
	R [4]int64
}

func (o Outcome) String() string {
	return fmt.Sprintf("r1=%d r2=%d r3=%d r4=%d", o.R[0], o.R[1], o.R[2], o.R[3])
}

// Test is one litmus test instance.
type Test struct {
	Name    string
	Program *isa.Program
	Threads []machine.Thread
	// Forbidden reports whether an outcome violates the consistency
	// contract the test checks.
	Forbidden func(Outcome) bool
}

// Run executes the litmus test on the given machine configuration and
// returns the observed outcome.
func (t *Test) Run(cfg machine.Config) (Outcome, error) {
	m, err := machine.New(cfg, t.Program, t.Threads)
	if err != nil {
		return Outcome{}, err
	}
	if _, err := m.Run(context.Background()); err != nil {
		return Outcome{}, err
	}
	var o Outcome
	o.R[0] = m.Image().Load(AddrR1)
	o.R[1] = m.Image().Load(AddrR2)
	o.R[2] = m.Image().Load(AddrR3)
	o.R[3] = m.Image().Load(AddrR4)
	return o, nil
}

// storeBufferThread emits: X = 1; [fence]; r = Y; result = r.
func storeBufferThread(b *isa.Builder, store, load, result int64, fence bool, scope isa.ScopeKind) {
	b.MovI(isa.R1, store)
	b.MovI(isa.R2, 1)
	if scope == isa.ScopeSet {
		b.SetFlagged()
	}
	b.Store(isa.R1, 0, isa.R2)
	if fence {
		b.Fence(scope)
	}
	b.MovI(isa.R3, load)
	if scope == isa.ScopeSet {
		b.SetFlagged()
	}
	b.Load(isa.R4, isa.R3, 0)
	b.MovI(isa.R5, result)
	b.Store(isa.R5, 0, isa.R4)
	b.Halt()
}

// StoreBuffering builds the SB litmus (Dekker core):
//
//	P0: X=1; [fence]; r1=Y        P1: Y=1; [fence]; r2=X
//
// r1==0 && r2==0 is forbidden under SC and with correct fences, but
// observable on the relaxed machine without them. With scope==ScopeSet the
// fences are set-scoped S-Fences over {X, Y}, which must be as strong as
// full fences for this test (all accesses are in the set).
func StoreBuffering(fence bool, scope isa.ScopeKind) *Test {
	b := isa.NewBuilder()
	b.Entry("p0")
	b.Inline(func(b *isa.Builder) { storeBufferThread(b, AddrX, AddrY, AddrR1, fence, scope) })
	b.Entry("p1")
	b.Inline(func(b *isa.Builder) { storeBufferThread(b, AddrY, AddrX, AddrR2, fence, scope) })
	return &Test{
		Name:    fmt.Sprintf("SB(fence=%v,%v)", fence, scope),
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			return o.R[0] == 0 && o.R[1] == 0
		},
	}
}

// MessagePassing builds the MP litmus:
//
//	P0: DATA=1; [fence]; FLAG=1     P1: while(FLAG==0); [fence]; r=DATA
//
// r==0 is forbidden with both fences present.
func MessagePassing(fence bool) *Test {
	b := isa.NewBuilder()
	b.Entry("p0")
	b.MovI(isa.R1, AddrX) // DATA
	b.MovI(isa.R2, 1)
	b.Store(isa.R1, 0, isa.R2)
	if fence {
		b.Fence(isa.ScopeGlobal)
	}
	b.MovI(isa.R3, AddrY) // FLAG
	b.Store(isa.R3, 0, isa.R2)
	b.Halt()

	b.Entry("p1")
	b.MovI(isa.R1, AddrY)
	b.Label("spin")
	b.Load(isa.R2, isa.R1, 0)
	b.Beq(isa.R2, isa.R0, "spin")
	if fence {
		b.Fence(isa.ScopeGlobal)
	}
	b.MovI(isa.R3, AddrX)
	b.Load(isa.R4, isa.R3, 0)
	b.MovI(isa.R5, AddrR1)
	b.Store(isa.R5, 0, isa.R4)
	b.Halt()
	return &Test{
		Name:    fmt.Sprintf("MP(fence=%v)", fence),
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			return o.R[0] == 0
		},
	}
}

// LoadBuffering builds the LB litmus:
//
//	P0: r1=X; Y=1     P1: r2=Y; X=1
//
// r1==1 && r2==1 is allowed under RMO but never produced by this machine
// (stores become visible only after retirement).
func LoadBuffering() *Test {
	b := isa.NewBuilder()
	thread := func(load, store, result int64) func(*isa.Builder) {
		return func(b *isa.Builder) {
			b.MovI(isa.R1, load)
			b.Load(isa.R2, isa.R1, 0)
			b.MovI(isa.R3, store)
			b.MovI(isa.R4, 1)
			b.Store(isa.R3, 0, isa.R4)
			b.MovI(isa.R5, result)
			b.Store(isa.R5, 0, isa.R2)
			b.Halt()
		}
	}
	b.Entry("p0")
	b.Inline(thread(AddrX, AddrY, AddrR1))
	b.Entry("p1")
	b.Inline(thread(AddrY, AddrX, AddrR2))
	return &Test{
		Name:    "LB",
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			return o.R[0] == 1 && o.R[1] == 1
		},
	}
}

// IRIW builds the independent-reads-of-independent-writes litmus with
// fenced readers. The machine writes through a single shared image, so
// stores are multi-copy atomic and the non-SC outcome must never appear.
func IRIW() *Test {
	b := isa.NewBuilder()
	b.Entry("w0")
	b.MovI(isa.R1, AddrX)
	b.MovI(isa.R2, 1)
	b.Store(isa.R1, 0, isa.R2)
	b.Halt()
	b.Entry("w1")
	b.MovI(isa.R1, AddrY)
	b.MovI(isa.R2, 1)
	b.Store(isa.R1, 0, isa.R2)
	b.Halt()
	reader := func(first, second, res1, res2 int64) func(*isa.Builder) {
		return func(b *isa.Builder) {
			b.MovI(isa.R1, first)
			b.Load(isa.R2, isa.R1, 0)
			b.Fence(isa.ScopeGlobal)
			b.MovI(isa.R3, second)
			b.Load(isa.R4, isa.R3, 0)
			b.MovI(isa.R5, res1)
			b.Store(isa.R5, 0, isa.R2)
			b.MovI(isa.R6, res2)
			b.Store(isa.R6, 0, isa.R4)
			b.Halt()
		}
	}
	b.Entry("r0")
	b.Inline(reader(AddrX, AddrY, AddrR1, AddrR2))
	b.Entry("r1")
	b.Inline(reader(AddrY, AddrX, AddrR3, AddrR4))
	return &Test{
		Name:    "IRIW",
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "w0"}, {Entry: "w1"}, {Entry: "r0"}, {Entry: "r1"}},
		Forbidden: func(o Outcome) bool {
			// r0 saw X then not Y; r1 saw Y then not X.
			return o.R[0] == 1 && o.R[1] == 0 && o.R[2] == 1 && o.R[3] == 0
		},
	}
}

// ClassScopedSB is the SB litmus with the store+load of each thread inside
// a class scope and a class-scoped fence: because both accesses are in the
// scope, the scoped fence must order them exactly like a full fence.
func ClassScopedSB() *Test {
	b := isa.NewBuilder()
	thread := func(store, load, result int64) func(*isa.Builder) {
		return func(b *isa.Builder) {
			b.FsStart(1)
			b.MovI(isa.R1, store)
			b.MovI(isa.R2, 1)
			b.Store(isa.R1, 0, isa.R2)
			b.Fence(isa.ScopeClass)
			b.MovI(isa.R3, load)
			b.Load(isa.R4, isa.R3, 0)
			b.FsEnd(1)
			b.MovI(isa.R5, result)
			b.Store(isa.R5, 0, isa.R4)
			b.Halt()
		}
	}
	b.Entry("p0")
	b.Inline(thread(AddrX, AddrY, AddrR1))
	b.Entry("p1")
	b.Inline(thread(AddrY, AddrX, AddrR2))
	return &Test{
		Name:    "SB(class-scoped)",
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			return o.R[0] == 0 && o.R[1] == 0
		},
	}
}

// ScopedSBLeaky is a deliberately mis-scoped SB: the stores happen OUTSIDE
// the class scope, so a class-scoped fence does not order them and the
// forbidden SB outcome remains observable. This documents (and pins down)
// the semantics: S-Fence only orders accesses within its scope.
func ScopedSBLeaky() *Test {
	b := isa.NewBuilder()
	thread := func(store, load, result int64) func(*isa.Builder) {
		return func(b *isa.Builder) {
			b.MovI(isa.R1, store)
			b.MovI(isa.R2, 1)
			b.Store(isa.R1, 0, isa.R2) // out of scope!
			b.FsStart(1)
			b.Fence(isa.ScopeClass) // orders nothing: scope is empty
			b.MovI(isa.R3, load)
			b.Load(isa.R4, isa.R3, 0)
			b.FsEnd(1)
			b.MovI(isa.R5, result)
			b.Store(isa.R5, 0, isa.R4)
			b.Halt()
		}
	}
	b.Entry("p0")
	b.Inline(thread(AddrX, AddrY, AddrR1))
	b.Entry("p1")
	b.Inline(thread(AddrY, AddrX, AddrR2))
	return &Test{
		Name:    "SB(mis-scoped, leaky by design)",
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			// Nothing is forbidden: the scoped fence does not cover the
			// stores, so the relaxed outcome is legal.
			return false
		},
	}
}

// SBWithStoreStoreFence is the SB litmus with store-store fences: an SS
// fence does not order a store against a later LOAD, so the relaxed SB
// outcome must remain observable — pinning down the finer-fence semantics
// (Section VII's mfence/sfence discussion).
func SBWithStoreStoreFence() *Test {
	b := isa.NewBuilder()
	thread := func(store, load, result int64) func(*isa.Builder) {
		return func(b *isa.Builder) {
			b.MovI(isa.R1, store)
			b.MovI(isa.R2, 1)
			b.Store(isa.R1, 0, isa.R2)
			b.FenceOrdered(isa.ScopeGlobal, isa.OrderSS) // does NOT order store->load
			b.MovI(isa.R3, load)
			b.Load(isa.R4, isa.R3, 0)
			b.MovI(isa.R5, result)
			b.Store(isa.R5, 0, isa.R4)
			b.Halt()
		}
	}
	b.Entry("p0")
	b.Inline(thread(AddrX, AddrY, AddrR1))
	b.Entry("p1")
	b.Inline(thread(AddrY, AddrX, AddrR2))
	return &Test{
		Name:      "SB(ss-fence: too weak by design)",
		Program:   b.MustBuild(),
		Threads:   []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(Outcome) bool { return false },
	}
}

// MessagePassingSS is the MP litmus with a store-store fence on the
// producer (exactly what MP's producer side needs) and a full fence on the
// consumer: r==0 remains forbidden.
func MessagePassingSS(scope isa.ScopeKind) *Test {
	b := isa.NewBuilder()
	b.Entry("p0")
	if scope == isa.ScopeClass {
		b.FsStart(1)
	}
	b.MovI(isa.R1, AddrX) // DATA
	b.MovI(isa.R2, 1)
	b.Store(isa.R1, 0, isa.R2)
	b.FenceOrdered(scope, isa.OrderSS)
	b.MovI(isa.R3, AddrY) // FLAG
	b.Store(isa.R3, 0, isa.R2)
	if scope == isa.ScopeClass {
		b.FsEnd(1)
	}
	b.Halt()

	b.Entry("p1")
	b.MovI(isa.R1, AddrY)
	b.Label("spin")
	b.Load(isa.R2, isa.R1, 0)
	b.Beq(isa.R2, isa.R0, "spin")
	b.Fence(isa.ScopeGlobal)
	b.MovI(isa.R3, AddrX)
	b.Load(isa.R4, isa.R3, 0)
	b.MovI(isa.R5, AddrR1)
	b.Store(isa.R5, 0, isa.R4)
	b.Halt()
	return &Test{
		Name:    fmt.Sprintf("MP(ss-fence,%v)", scope),
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			return o.R[0] == 0
		},
	}
}

// CASIncrement has every core CAS-increment one shared counter n times;
// the total must be exact (atomicity under contention), with no fences at
// all — CAS atomicity must not depend on fencing.
func CASIncrement(cores, perCore int) *Test {
	b := isa.NewBuilder()
	b.Entry("inc")
	b.MovI(isa.R1, AddrX)
	b.MovI(isa.R2, int64(perCore))
	b.Label("loop")
	b.Label("retry")
	b.Load(isa.R3, isa.R1, 0)
	b.AddI(isa.R4, isa.R3, 1)
	b.CAS(isa.R5, isa.R1, 0, isa.R3, isa.R4)
	b.Beq(isa.R5, isa.R0, "retry")
	b.AddI(isa.R2, isa.R2, -1)
	b.Bne(isa.R2, isa.R0, "loop")
	b.Halt()
	threads := make([]machine.Thread, cores)
	for i := range threads {
		threads[i] = machine.Thread{Entry: "inc"}
	}
	return &Test{
		Name:    fmt.Sprintf("CAS-increment(%dx%d)", cores, perCore),
		Program: b.MustBuild(),
		Threads: threads,
		// The invariant lives at AddrX, not in the outcome slots; tests
		// check the counter value directly.
		Forbidden: func(Outcome) bool { return false },
	}
}

// CoWW checks per-location write-write coherence: one core writes 1 then 2
// to the same address (no fence); the final value must be 2 — the
// non-FIFO store buffer must still respect same-address ordering.
func CoWW() *Test {
	b := isa.NewBuilder()
	b.Entry("w")
	b.MovI(isa.R1, AddrX)
	b.MovI(isa.R2, 1)
	b.Store(isa.R1, 0, isa.R2)
	b.MovI(isa.R2, 2)
	b.Store(isa.R1, 0, isa.R2)
	b.Halt()
	return &Test{
		Name:    "CoWW",
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "w"}},
		Forbidden: func(o Outcome) bool {
			return false // checked directly by the test via memory
		},
	}
}

// MessagePassingFiner is MP with the minimal RMO fencing expressed as
// finer fences: a store-store fence on the producer and a load-load fence
// on the consumer. r==0 remains forbidden.
func MessagePassingFiner() *Test {
	b := isa.NewBuilder()
	b.Entry("p0")
	b.MovI(isa.R1, AddrX) // DATA
	b.MovI(isa.R2, 1)
	b.Store(isa.R1, 0, isa.R2)
	b.FenceOrdered(isa.ScopeGlobal, isa.OrderSS)
	b.MovI(isa.R3, AddrY) // FLAG
	b.Store(isa.R3, 0, isa.R2)
	b.Halt()

	b.Entry("p1")
	b.MovI(isa.R1, AddrY)
	b.Label("spin")
	b.Load(isa.R2, isa.R1, 0)
	b.Beq(isa.R2, isa.R0, "spin")
	b.FenceOrdered(isa.ScopeGlobal, isa.OrderLL)
	b.MovI(isa.R3, AddrX)
	b.Load(isa.R4, isa.R3, 0)
	b.MovI(isa.R5, AddrR1)
	b.Store(isa.R5, 0, isa.R4)
	b.Halt()
	return &Test{
		Name:    "MP(ss+ll minimal fences)",
		Program: b.MustBuild(),
		Threads: []machine.Thread{{Entry: "p0"}, {Entry: "p1"}},
		Forbidden: func(o Outcome) bool {
			return o.R[0] == 0
		},
	}
}

// DefaultMachineConfig returns a 4-core machine for litmus runs.
func DefaultMachineConfig() machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	return cfg
}
