package exp

import (
	"context"
	"fmt"
	"strings"

	"sfence/internal/kernels"
	"sfence/internal/stats"
)

// KernelSnapshot is one benchmark configuration's full stats-registry
// snapshot: every per-core pipeline, S-Fence hardware, and cache counter,
// plus machine totals and clock accounting, deterministically ordered.
type KernelSnapshot struct {
	Bench    string         `json:"bench"`
	Config   string         `json:"config"` // T, S, T+, or S+
	Snapshot stats.Snapshot `json:"snapshot"`
}

// KernelStats is the "stats" experiment: the full registry snapshot of
// every Table IV benchmark under the paper's four configurations (T, S,
// T+, S+). It is the drill-down companion to the figures — any counter a
// new breakdown needs is already here, without plumbing a field through
// five layers — and it rides the same session runner, so a warm run cache
// answers it without re-simulation.
func (s *Session) KernelStats(ctx context.Context, sc Scale) ([]KernelSnapshot, error) {
	benches := kernels.All()
	grid := map[[2]int]*figRun{}
	var runs []*figRun
	for bi, info := range benches {
		for ci, c := range fig13Configs {
			r := &figRun{bench: info.Name, opts: kernels.Options{
				Mode: c.Mode, Ops: opsFor(info.Name, sc),
			}, cfg: withSpec(baseConfig(), c.Spec)}
			grid[[2]int{bi, ci}] = r
			runs = append(runs, r)
		}
	}
	if err := s.execute(ctx, "Stats", runs); err != nil {
		return nil, err
	}
	out := make([]KernelSnapshot, 0, len(runs))
	for bi, info := range benches {
		for ci, c := range fig13Configs {
			out = append(out, KernelSnapshot{
				Bench:    info.Name,
				Config:   c.Label,
				Snapshot: grid[[2]int{bi, ci}].res.Snapshot,
			})
		}
	}
	return out, nil
}

// RenderKernelStats formats the headline stats of every snapshot as a
// table; the full snapshots are in the JSON artifact.
func RenderKernelStats(rows []KernelSnapshot) string {
	var sb strings.Builder
	sb.WriteString("Per-kernel statistics snapshots (headline stats; full registry in JSON)\n")
	sb.WriteString(fmt.Sprintf("%-12s%-5s%12s%12s%14s%12s%12s\n",
		"bench", "cfg", "cycles", "committed", "fence-idle", "l1-miss", "skipped"))
	for _, r := range rows {
		s := r.Snapshot
		sb.WriteString(fmt.Sprintf("%-12s%-5s%12d%12d%14d%12d%12d\n",
			r.Bench, r.Config,
			s.Value("machine.cycles"),
			s.Value("machine.committed"),
			s.Value("machine.fence_idle_cycles"),
			s.Value("machine.mem.l1_misses"),
			s.Value("machine.clock.skipped_cycles")))
	}
	return sb.String()
}
