// Differential test of the event-driven clock: every Table IV kernel and
// every litmus test is simulated twice — once with naive per-cycle
// stepping (the public Step/Done/Fault loop, the pre-event-driven Run) and
// once with the two-speed Machine.Run — and the runs must be
// bit-identical: same final cycle count, same per-core statistics and
// registers, same fence profiles, same cache-hierarchy statistics, and
// the same memory image. This is the safety proof the fast-forward path
// rests on: NextWakeup may be conservative, but it must never change a
// single simulated outcome.
package sfence_test

import (
	"context"
	"fmt"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"

	"sfence/internal/cpu"
	"sfence/internal/isa"
	"sfence/internal/kernels"
	"sfence/internal/litmus"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/stats"
	"sfence/internal/trace"
)

// naiveRun drives m exactly like the pre-event-driven Run loop: one Step
// per cycle, with Done and Fault rechecked every cycle.
func naiveRun(t *testing.T, m *machine.Machine) int64 {
	t.Helper()
	limit := int64(machine.DefaultMaxCycles)
	for !m.Done() {
		if err := m.Fault(); err != nil {
			t.Fatalf("naive run faulted: %v", err)
		}
		if m.Cycle() >= limit {
			t.Fatalf("naive run exceeded %d cycles", limit)
		}
		m.Step()
	}
	return m.Cycle()
}

func imageHash(m *machine.Machine) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, w := range m.Image().Snapshot() {
		for i := 0; i < 8; i++ {
			buf[i] = byte(w >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// snapshotSansClock strips the "machine.clock." subtree from a snapshot:
// the clock accounting describes how the run was driven (slow ticks vs.
// fast-forward jumps), so it legitimately differs between the two clocks
// while every simulated stat must not.
func snapshotSansClock(s stats.Snapshot) stats.Snapshot {
	out := stats.Snapshot{Schema: s.Schema}
	for _, smp := range s.Samples {
		if strings.HasPrefix(smp.Name, "machine.clock.") {
			continue
		}
		out.Samples = append(out.Samples, smp)
	}
	return out
}

// assertMachinesEqual compares every observable of the two finished runs.
func assertMachinesEqual(t *testing.T, name string, naive, event *machine.Machine, nc, ec int64) {
	t.Helper()
	if nc != ec {
		t.Fatalf("%s: cycle count diverged: naive %d, event-driven %d", name, nc, ec)
	}
	// Fast-forward exactness for EVERY registered stat, not just the
	// headline counters: the full registry snapshots (per-core pipeline,
	// S-Fence hardware, cache, and machine-total stats) must be
	// bit-identical modulo the clock's own drive accounting.
	sn := snapshotSansClock(naive.StatsSnapshot())
	se := snapshotSansClock(event.StatsSnapshot())
	if !sn.Equal(se) {
		for i := range sn.Samples {
			if i < len(se.Samples) && sn.Samples[i] != se.Samples[i] {
				t.Errorf("%s: stat %s diverged: naive %+v, event %+v", name, sn.Samples[i].Name, sn.Samples[i], se.Samples[i])
			}
		}
		if len(sn.Samples) != len(se.Samples) {
			t.Errorf("%s: snapshot sizes diverged: naive %d, event %d", name, len(sn.Samples), len(se.Samples))
		}
	}
	for i := 0; i < naive.Cores(); i++ {
		cn, ce := naive.Core(i), event.Core(i)
		if *cn.Stats() != *ce.Stats() {
			t.Errorf("%s: core %d stats diverged:\nnaive %+v\nevent %+v", name, i, *cn.Stats(), *ce.Stats())
		}
		for r := 0; r < isa.NumRegs; r++ {
			if cn.Reg(isa.Reg(r)) != ce.Reg(isa.Reg(r)) {
				t.Errorf("%s: core %d R%d diverged: naive %d, event %d", name, i, r, cn.Reg(isa.Reg(r)), ce.Reg(isa.Reg(r)))
			}
		}
		if pn, pe := cn.FenceProfile(), ce.FenceProfile(); !reflect.DeepEqual(pn, pe) {
			t.Errorf("%s: core %d fence profile diverged:\nnaive %+v\nevent %+v", name, i, pn, pe)
		}
	}
	if hn, he := naive.Hierarchy().TotalStats(), event.Hierarchy().TotalStats(); !reflect.DeepEqual(hn, he) {
		t.Errorf("%s: hierarchy stats diverged:\nnaive %+v\nevent %+v", name, hn, he)
	}
	if hn, he := imageHash(naive), imageHash(event); hn != he {
		t.Errorf("%s: memory image diverged (fnv64a %x vs %x)", name, hn, he)
	}
}

func buildKernelMachine(t *testing.T, bench string, opts kernels.Options, cfg machine.Config) (*kernels.Kernel, *machine.Machine) {
	t.Helper()
	k, err := kernels.Build(bench, opts)
	if err != nil {
		t.Fatalf("build %s: %v", bench, err)
	}
	m, err := machine.New(cfg, k.Program, k.Threads)
	if err != nil {
		t.Fatalf("machine for %s: %v", bench, err)
	}
	for addr, val := range k.MemInit {
		m.Image().Store(addr, val)
	}
	if k.InitImage != nil {
		k.InitImage(m.Image())
	}
	return k, m
}

// quickOps is the shared Quick-scale sizing of the differential clock
// tests; both the default-machine and the depth-3 equivalence tests read
// it, so a newly added kernel cannot silently run at Ops 0 in one of
// them.
var quickOps = map[string]int{
	"dekker": 25, "wsq": 50, "msn": 32, "harris": 40,
	"pst": 160, "ptc": 64, "barnes": 16, "radiosity": 16,
	"nested-scope": 40, "fence-drain": 60,
}

// TestClockEquivalenceKernels runs every Table IV kernel (plus the hidden
// microbenchmarks) under both clocks, in the paper's T, S, T+, and S+
// configurations, at Quick-scale sizing.
func TestClockEquivalenceKernels(t *testing.T) {
	benches := []string{"dekker", "wsq", "msn", "harris", "barnes", "radiosity", "pst", "ptc", "nested-scope", "fence-drain"}
	for _, bench := range benches {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			for _, spec := range []bool{false, true} {
				name := fmt.Sprintf("%s/%v/spec=%v", bench, mode, spec)
				t.Run(name, func(t *testing.T) {
					opts := kernels.Options{Mode: mode, Ops: quickOps[bench], Workload: 2}
					cfg := machine.DefaultConfig()
					cfg.Core.InWindowSpec = spec
					kN, mN := buildKernelMachine(t, bench, opts, cfg)
					_, mE := buildKernelMachine(t, bench, opts, cfg)

					nc := naiveRun(t, mN)
					ec, err := mE.Run(context.Background())
					if err != nil {
						t.Fatalf("event-driven run: %v", err)
					}
					assertMachinesEqual(t, name, mN, mE, nc, ec)
					if kN.Verify != nil {
						if err := kN.Verify(mE.Image()); err != nil {
							t.Errorf("%s: event-driven result failed verification: %v", name, err)
						}
					}
					if cs := mE.Clock(); cs.SlowTicks+cs.SkippedCycles != ec {
						t.Errorf("%s: clock accounting broken: %d slow + %d skipped != %d cycles", name, cs.SlowTicks, cs.SkippedCycles, ec)
					}
				})
			}
		}
	}
}

// TestClockEquivalenceDepth3 re-runs the kernel differential on a
// three-level memory hierarchy: fast-forward must stay bit-exact when the
// latency structure (and therefore every wakeup bound) comes from a
// deeper hierarchy than the Table III default. Every Table IV kernel runs
// under traditional and scoped fences at Quick-scale sizing.
func TestClockEquivalenceDepth3(t *testing.T) {
	for _, info := range kernels.All() {
		bench := info.Name
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			name := fmt.Sprintf("depth3/%s/%v", bench, mode)
			t.Run(name, func(t *testing.T) {
				opts := kernels.Options{Mode: mode, Ops: quickOps[bench], Workload: 2}
				cfg := machine.DefaultConfig()
				cfg.Mem = memsys.DepthConfig(3)
				kN, mN := buildKernelMachine(t, bench, opts, cfg)
				_, mE := buildKernelMachine(t, bench, opts, cfg)

				nc := naiveRun(t, mN)
				ec, err := mE.Run(context.Background())
				if err != nil {
					t.Fatalf("event-driven run: %v", err)
				}
				assertMachinesEqual(t, name, mN, mE, nc, ec)
				if kN.Verify != nil {
					if err := kN.Verify(mE.Image()); err != nil {
						t.Errorf("%s: event-driven result failed verification: %v", name, err)
					}
				}
			})
		}
	}
}

// TestClockSpinForwardDepth3 pins the spin detector's behavior on a
// three-level hierarchy for the kernels whose busy-waits it targets.
// Detached (no tracer), the event-driven run must be bit-identical to the
// naive run AND — for the kernels that actually spin in confirmable
// periodic orbits (dekker's flag polls, wsq's empty-queue waits) — must
// cover part of the run with spin-aware jumps. harris rides along with
// wantSpin=false: its lock-free retry loops mutate list state every
// iteration, so the detector correctly never confirms a periodic orbit
// there, and the test documents that a zero is honest rather than a
// detector failure. With a per-cycle tracer attached the machine must pin
// the slow path instead: TracerPinned set, zero jumps of any kind, and
// the exact same simulated outcome.
func TestClockSpinForwardDepth3(t *testing.T) {
	cases := []struct {
		bench    string
		wantSpin bool
	}{
		{"dekker", true},
		{"wsq", true},
		{"harris", false},
	}
	for _, tc := range cases {
		for _, mode := range []kernels.FenceMode{kernels.Traditional, kernels.Scoped} {
			name := fmt.Sprintf("%s/%v", tc.bench, mode)
			t.Run(name, func(t *testing.T) {
				opts := kernels.Options{Mode: mode, Ops: quickOps[tc.bench], Workload: 2}
				cfg := machine.DefaultConfig()
				cfg.Mem = memsys.DepthConfig(3)

				// Detached: naive vs. event-driven differential, with the
				// spin fast path required to engage where an orbit exists.
				_, mN := buildKernelMachine(t, tc.bench, opts, cfg)
				_, mE := buildKernelMachine(t, tc.bench, opts, cfg)
				nc := naiveRun(t, mN)
				ec, err := mE.Run(context.Background())
				if err != nil {
					t.Fatalf("event-driven run: %v", err)
				}
				assertMachinesEqual(t, name, mN, mE, nc, ec)
				cs := mE.Clock()
				if cs.SlowTicks+cs.SkippedCycles != ec {
					t.Errorf("clock accounting broken: %d slow + %d skipped != %d cycles", cs.SlowTicks, cs.SkippedCycles, ec)
				}
				if cs.SpinJumps > cs.Jumps || cs.SpinSkippedCycles > cs.SkippedCycles {
					t.Errorf("spin accounting exceeds totals: %+v", cs)
				}
				if tc.wantSpin && cs.SpinJumps == 0 {
					t.Errorf("expected spin-aware jumps on %s, got none: %+v", name, cs)
				}
				if cs.SpinJumps > 0 && cs.SpinSkippedCycles == 0 {
					t.Errorf("spin jumps with zero skipped cycles: %+v", cs)
				}

				// Attached: a per-cycle tracer must pin the slow path and
				// still produce the identical simulated outcome.
				_, mT := buildKernelMachine(t, tc.bench, opts, cfg)
				for i := 0; i < mT.Cores(); i++ {
					mT.Core(i).SetTracer(countingTracer{})
				}
				tcyc, err := mT.Run(context.Background())
				if err != nil {
					t.Fatalf("traced run: %v", err)
				}
				assertMachinesEqual(t, name+"/traced", mN, mT, nc, tcyc)
				ts := mT.Clock()
				if !ts.TracerPinned {
					t.Errorf("traced run did not report TracerPinned: %+v", ts)
				}
				if ts.SkippedCycles != 0 || ts.Jumps != 0 || ts.SpinJumps != 0 || ts.SpinSkippedCycles != 0 {
					t.Errorf("traced run fast-forwarded: %+v", ts)
				}
				if ts.SlowTicks != tcyc {
					t.Errorf("traced run stepped %d cycles of %d", ts.SlowTicks, tcyc)
				}
			})
		}
	}
}

// TestClockEquivalenceLitmus runs every litmus test under both clocks and
// three machine configurations (baseline, in-window speculation, FIFO
// store buffer), covering the snoop-replay and recovery paths.
func TestClockEquivalenceLitmus(t *testing.T) {
	tests := []*litmus.Test{
		litmus.StoreBuffering(false, isa.ScopeGlobal),
		litmus.StoreBuffering(true, isa.ScopeGlobal),
		litmus.StoreBuffering(true, isa.ScopeSet),
		litmus.MessagePassing(false),
		litmus.MessagePassing(true),
		litmus.LoadBuffering(),
		litmus.IRIW(),
		litmus.ClassScopedSB(),
		litmus.ScopedSBLeaky(),
		litmus.SBWithStoreStoreFence(),
		litmus.MessagePassingSS(isa.ScopeGlobal),
		litmus.MessagePassingSS(isa.ScopeClass),
		litmus.CASIncrement(4, 16),
		litmus.CoWW(),
		litmus.MessagePassingFiner(),
	}
	cfgs := map[string]func(*machine.Config){
		"base": func(*machine.Config) {},
		"spec": func(c *machine.Config) { c.Core.InWindowSpec = true },
		"fifo": func(c *machine.Config) { c.Core.FIFOStoreBuffer = true },
		"spec-shadow": func(c *machine.Config) {
			c.Core.InWindowSpec = true
			c.Core.Recovery = cpu.RecoveryShadow
		},
	}
	for cfgName, tweak := range cfgs {
		for _, lt := range tests {
			name := fmt.Sprintf("%s/%s", cfgName, lt.Name)
			t.Run(name, func(t *testing.T) {
				cfg := litmus.DefaultMachineConfig()
				tweak(&cfg)

				newMachine := func() *machine.Machine {
					m, err := machine.New(cfg, lt.Program, lt.Threads)
					if err != nil {
						t.Fatalf("machine: %v", err)
					}
					return m
				}
				mN, mE := newMachine(), newMachine()
				nc := naiveRun(t, mN)
				ec, err := mE.Run(context.Background())
				if err != nil {
					t.Fatalf("event-driven run: %v", err)
				}
				assertMachinesEqual(t, name, mN, mE, nc, ec)
			})
		}
	}
}

// TestClockTracingPinsSlowPath checks that a machine with a tracer never
// fast-forwards: tracers observe per-cycle events, so every cycle must be
// stepped.
func TestClockTracingPinsSlowPath(t *testing.T) {
	_, m := buildKernelMachine(t, "fence-drain",
		kernels.Options{Mode: kernels.Traditional, Ops: 20}, machine.DefaultConfig())
	for i := 0; i < m.Cores(); i++ {
		m.Core(i).SetTracer(countingTracer{})
	}
	cycles, err := m.Run(context.Background())
	if err != nil {
		t.Fatalf("traced run: %v", err)
	}
	cs := m.Clock()
	if cs.SkippedCycles != 0 || cs.Jumps != 0 {
		t.Fatalf("traced run fast-forwarded: %+v", cs)
	}
	if cs.SlowTicks != cycles {
		t.Fatalf("traced run stepped %d cycles of %d", cs.SlowTicks, cycles)
	}
	// The clock must say WHY there were no jumps: fast-forward was
	// disabled by the tracer, not never needed.
	if !cs.TracerPinned {
		t.Fatalf("traced run did not report TracerPinned: %+v", cs)
	}
	if got := m.StatsSnapshot().Value("machine.clock.tracer_pinned"); got != 1 {
		t.Fatalf("machine.clock.tracer_pinned = %d, want 1", got)
	}
}

// TestClockObserverStaysOnFastPath is the counter-only-observer contract:
// a stats.Observer attached to every core must (1) not stop the clock
// from fast-forwarding, (2) not perturb a single simulated stat relative
// to an unobserved run, and (3) tally exactly the events per-cycle
// stepping would have delivered — the fast-forward bulk credits included.
func TestClockObserverStaysOnFastPath(t *testing.T) {
	opts := kernels.Options{Mode: kernels.Traditional, Ops: 60, Workload: 2}
	cfg := machine.DefaultConfig()

	// Unobserved event-driven run: the reference.
	_, mRef := buildKernelMachine(t, "fence-drain", opts, cfg)
	refCycles, err := mRef.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Observed event-driven run.
	_, mObs := buildKernelMachine(t, "fence-drain", opts, cfg)
	obsE := trace.NewCountingObserver()
	trace.AttachObserver(mObs, obsE)
	obsCycles, err := mObs.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Observed naive run: the per-cycle ground truth for the tallies.
	_, mNaive := buildKernelMachine(t, "fence-drain", opts, cfg)
	obsN := trace.NewCountingObserver()
	trace.AttachObserver(mNaive, obsN)
	naiveRun(t, mNaive)

	if refCycles != obsCycles {
		t.Fatalf("observer changed the cycle count: %d vs %d", refCycles, obsCycles)
	}
	if cs := mObs.Clock(); cs.SkippedCycles == 0 || cs.Jumps == 0 {
		t.Fatalf("observed run did not fast-forward: %+v", cs)
	}
	if cs := mObs.Clock(); cs.TracerPinned {
		t.Fatalf("observer reported as a pinning tracer: %+v", cs)
	}
	// Observed vs. unobserved snapshots identical — full registry,
	// including the clock subtree (both runs are event-driven).
	if sr, so := mRef.StatsSnapshot(), mObs.StatsSnapshot(); !sr.Equal(so) {
		t.Fatalf("observer perturbed the stats snapshot:\nref %+v\nobs %+v", sr, so)
	}
	// Event tallies identical across clocks: every per-cycle stall event
	// the naive run delivered one by one must arrive via bulk credits.
	ne, ee := obsN.Counts(), obsE.Counts()
	if !reflect.DeepEqual(ne, ee) {
		t.Fatalf("observer tallies diverged across clocks:\nnaive %v\nevent %v", ne, ee)
	}
	if ne[cpu.TraceFenceStall] == 0 {
		t.Fatal("fence-drain produced no fence-stall events; the bulk-credit path went untested")
	}
}

// TestClockFastForwardEngages pins the perf property the event-driven
// clock exists for: on the fence-heavy, miss-heavy fence-drain workload
// with traditional fences, the overwhelming majority of cycles must be
// covered by fast-forward jumps, not stepped.
func TestClockFastForwardEngages(t *testing.T) {
	_, m := buildKernelMachine(t, "fence-drain",
		kernels.Options{Mode: kernels.Traditional, Ops: 100}, machine.DefaultConfig())
	cycles, err := m.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	cs := m.Clock()
	if cs.SlowTicks+cs.SkippedCycles != cycles {
		t.Fatalf("clock accounting broken: %+v vs %d cycles", cs, cycles)
	}
	if frac := float64(cs.SkippedCycles) / float64(cycles); frac < 0.5 {
		t.Fatalf("fast-forward covered only %.1f%% of %d cycles (%+v); want > 50%%", 100*frac, cycles, cs)
	}
}

type countingTracer struct{}

func (countingTracer) Trace(int64, int, cpu.TraceEvent, uint64, isa.Instruction, int64) {}
