package memsys

// Parallel-epoch support: the machine's optimistic epochs run each core
// against its own private L1 only (gated by LocalHit), so the only
// hierarchy state a core can have mutated when an epoch fails is its own
// L1 bank, its perturbation version, and its stat counters. CoreEpoch
// captures exactly that slice of the hierarchy at epoch start and
// restores it in place on failure. Outer levels — including private
// middle banks — are never touched in-epoch (an access that would leave
// the L1 blocks the epoch before reaching them), so they need no
// checkpoint.

// CoreEpoch is one core's hierarchy checkpoint. The zero value is ready
// to use; Save reuses its buffers across epochs.
type CoreEpoch struct {
	lines []l1Line
	tick  uint64
	ver   uint64
	stats CoreStats
}

// SaveCore checkpoints core's private-L1 bank, version, and counters
// into cp, reusing cp's buffers when already sized.
func (h *Hierarchy) SaveCore(core int, cp *CoreEpoch) {
	l1 := &h.inner[core]
	if len(cp.lines) != len(l1.lines) {
		cp.lines = make([]l1Line, len(l1.lines))
	}
	copy(cp.lines, l1.lines)
	cp.tick = l1.tick
	cp.ver = h.ver[core]
	src := &h.stats[core]
	if len(cp.stats.Level) != len(src.Level) {
		cp.stats.Level = make([]LevelStats, len(src.Level))
	}
	lv := cp.stats.Level
	cp.stats = *src
	cp.stats.Level = lv
	copy(cp.stats.Level, src.Level)
}

// RestoreCore writes cp back into core's slice of the hierarchy. Counter
// values are restored through the existing CoreStats storage — the stats
// registry holds pointers into it, so the struct itself must not move.
func (h *Hierarchy) RestoreCore(core int, cp *CoreEpoch) {
	l1 := &h.inner[core]
	copy(l1.lines, cp.lines)
	l1.tick = cp.tick
	h.ver[core] = cp.ver
	dst := &h.stats[core]
	lv := dst.Level
	*dst = cp.stats
	dst.Level = lv
	copy(dst.Level, cp.stats.Level)
}
