// Command sfence-vet runs the repository's own static analyzers — the
// checks that used to live in CI as grep/sed one-liners, promoted to real
// AST analysis (see internal/lint):
//
//	noglobalhooks     no reintroduction of process-global hook setters
//	registrycounters  stat-registry structs declare no raw numeric fields
//	packagedocs       every internal package carries a doc comment
//
// Usage:
//
//	sfence-vet [root]
//
// root defaults to the current directory. Findings print one per line in
// file:line:col order; any finding exits nonzero.
package main

import (
	"flag"
	"fmt"
	"os"

	"sfence/internal/lint"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: sfence-vet [root]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Runs the repository's analyzers over the tree rooted at root (default .):\n")
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-18s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()
	root := "."
	if flag.NArg() > 0 {
		root = flag.Arg(0)
	}
	pkgs, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sfence-vet:", err)
		os.Exit(2)
	}
	findings := lint.Run(pkgs, lint.Analyzers())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "sfence-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("sfence-vet: clean (%d packages, %d analyzers)\n", len(pkgs), len(lint.Analyzers()))
}
