// Work-stealing example: run the paper's Chase-Lev work-stealing-queue
// benchmark (the motivating example of Sections II and IV) across workload
// levels and compare traditional fences with class-scoped S-Fences —
// reproducing one curve of Figure 12 from the public API.
//
//	go run ./examples/workstealing
package main

import (
	"context"
	"fmt"
	"log"

	"sfence"
)

func main() {
	ctx := context.Background()
	cfg := sfence.DefaultConfig()
	fmt.Println("Chase-Lev work-stealing queue: 1 owner + 3 thieves, 120 tasks")
	fmt.Printf("%-10s%14s%14s%10s%16s\n", "workload", "T cycles", "S cycles", "speedup", "stall cut")
	for _, w := range []int{1, 2, 3, 4, 5, 6} {
		var cycles [2]int64
		var stalls [2]uint64
		for i, mode := range []sfence.FenceMode{sfence.Traditional, sfence.Scoped} {
			res, err := sfence.RunBenchmarkContext(ctx, "wsq", sfence.BenchmarkOptions{
				Mode: mode, Threads: 4, Ops: 120, Workload: w,
			}, cfg)
			if err != nil {
				log.Fatal(err)
			}
			cycles[i] = res.Cycles
			stalls[i] = res.FenceStall
		}
		cut := 0.0
		if stalls[0] > 0 {
			cut = 100 * (1 - float64(stalls[1])/float64(stalls[0]))
		}
		fmt.Printf("%-10d%14d%14d%9.2fx%15.1f%%\n",
			w, cycles[0], cycles[1], float64(cycles[0])/float64(cycles[1]), cut)
	}
	fmt.Println("\nEvery run is verified: each task extracted exactly once.")
}
