package ref

import (
	"context"
	"fmt"
	"strings"

	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/stats"
)

// concOracleMaxSteps bounds the round-robin oracle. Generated scenarios
// terminate by construction; hitting this limit is a generator or
// interpreter bug and fails the check loudly.
const concOracleMaxSteps = 4_000_000

// concMaxCycles bounds each machine run of the checker. Far above any
// generated scenario's real runtime, far below DefaultMaxCycles so a
// livelock inside the fuzzer fails in seconds, not minutes.
const concMaxCycles = 50_000_000

// concWorkerCounts are the parallel worker counts every scenario is
// additionally run under; each must be bit-identical to the sequential
// event-driven run.
var concWorkerCounts = []int{2, 4}

// ConcRun records one (variant, depth, workers) machine execution of a
// scenario. Workers is 1 for the sequential event-driven run.
type ConcRun struct {
	Variant Variant
	Depth   int
	Workers int
	Cycles  int64
	// Clock accounting of the event-driven run (the naive run is pure
	// slow ticks by definition); EpochCycles is nonzero only for
	// parallel runs.
	SlowTicks     int64
	SkippedCycles int64
	EpochCycles   int64
}

// ConcReport summarizes one CheckConcurrent pass over a scenario.
type ConcReport struct {
	Seed        int64
	Threads     int
	Insts       [NumVariants]int // instruction count per variant
	OracleSteps int
	Runs        []ConcRun
	// Static scope-inference accounting for the fourth, analysis-derived
	// lowering (see checkScopesStatically).
	InferredFences  int // fences rewritten to set scope
	InferredFlagged int // accesses flagged by inference
}

// concMachineConfig returns the machine configuration the checker runs a
// scenario under: one core per thread, a hierarchy of the given depth, a
// 1 MiB image covering the scenario's footprint, and a tight cycle bound.
func concMachineConfig(threads, depth int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.Cores = threads
	cfg.Mem = memsys.DepthConfig(depth)
	cfg.ImageSize = 1 << 20
	cfg.MaxCycles = concMaxCycles
	return cfg
}

// newConcMachine builds a machine for one lowering of cp at the given
// hierarchy depth and worker count, with the scenario's initial
// registers and memory.
func newConcMachine(cp *ConcProgram, v Variant, prog *isa.Program, depth, workers int) (*machine.Machine, error) {
	threads := make([]machine.Thread, cp.NumThreads)
	for t := range threads {
		threads[t] = machine.Thread{Entry: ConcEntry(t), Regs: cp.Regs[t]}
	}
	cfg := concMachineConfig(cp.NumThreads, depth)
	cfg.Parallel.Workers = workers
	m, err := machine.New(cfg, prog, threads)
	if err != nil {
		return nil, fmt.Errorf("ref: machine for variant %v depth %d workers %d: %w", v, depth, workers, err)
	}
	for addr, val := range cp.Mem {
		m.Image().Store(addr, val)
	}
	return m, nil
}

// naiveRunMachine drives m with per-cycle stepping (the pre-event-driven
// loop), mirroring the naive side of the clock-equivalence suite.
func naiveRunMachine(m *machine.Machine) (int64, error) {
	for !m.Done() {
		if err := m.Fault(); err != nil {
			return m.Cycle(), err
		}
		if m.Cycle() >= concMaxCycles {
			return m.Cycle(), fmt.Errorf("ref: naive run exceeded %d cycles", int64(concMaxCycles))
		}
		m.Step()
	}
	return m.Cycle(), nil
}

// snapshotSansClock strips the "machine.clock." subtree: clock accounting
// describes how a run was driven, so it legitimately differs between the
// naive and event-driven clocks while every simulated stat must not.
func snapshotSansClock(s stats.Snapshot) stats.Snapshot {
	out := stats.Snapshot{Schema: s.Schema}
	for _, smp := range s.Samples {
		if strings.HasPrefix(smp.Name, "machine.clock.") {
			continue
		}
		out.Samples = append(out.Samples, smp)
	}
	return out
}

// bitIdentical asserts the naive and event-driven runs of the same
// (variant, depth) machine are indistinguishable: same cycle count, same
// full stats registry (modulo the clock's own drive accounting), all 64
// registers of every core, and the entire memory image. This is the
// clock-equivalence suite's property, promoted to a generative one.
func bitIdentical(label string, naive, event *machine.Machine, nc, ec int64) error {
	if nc != ec {
		return fmt.Errorf("%s: cycle count diverged: naive %d, event-driven %d", label, nc, ec)
	}
	sn, se := snapshotSansClock(naive.StatsSnapshot()), snapshotSansClock(event.StatsSnapshot())
	if !sn.Equal(se) {
		for i := range sn.Samples {
			if i < len(se.Samples) && sn.Samples[i] != se.Samples[i] {
				return fmt.Errorf("%s: stat %s diverged: naive %+v, event %+v",
					label, sn.Samples[i].Name, sn.Samples[i], se.Samples[i])
			}
		}
		return fmt.Errorf("%s: stats snapshots diverged (%d vs %d samples)", label, len(sn.Samples), len(se.Samples))
	}
	for i := 0; i < naive.Cores(); i++ {
		cn, ce := naive.Core(i), event.Core(i)
		for r := 0; r < isa.NumRegs; r++ {
			if cn.Reg(isa.Reg(r)) != ce.Reg(isa.Reg(r)) {
				return fmt.Errorf("%s: core %d R%d diverged: naive %d, event %d",
					label, i, r, cn.Reg(isa.Reg(r)), ce.Reg(isa.Reg(r)))
			}
		}
	}
	ni, ei := naive.Image().Snapshot(), event.Image().Snapshot()
	if len(ni) != len(ei) {
		return fmt.Errorf("%s: image sizes diverged: %d vs %d words", label, len(ni), len(ei))
	}
	for w := range ni {
		if ni[w] != ei[w] {
			return fmt.Errorf("%s: image word %d (addr %d) diverged: naive %d, event %d",
				label, w, 8*w, ni[w], ei[w])
		}
	}
	return nil
}

// checkAgainstOracle compares the checked projection of a finished
// machine run against the oracle's: per-thread data registers R1-R12 and
// every word of the scenario's shared-memory footprint. Scratch registers
// (R13-R19 and the loop counters) are interleaving-dependent — a CAS
// retry loop legitimately observes different intermediate values under
// different timings — so they are excluded by design; everything the
// generator's determinacy argument covers is compared exactly.
func checkAgainstOracle(label string, m *machine.Machine, oracle *ConcState, threads int) error {
	for t := 0; t < threads; t++ {
		for r := isa.R1; r <= isa.R12; r++ {
			got, want := m.Core(t).Reg(r), oracle.Threads[t].Regs[r]
			if got != want {
				return fmt.Errorf("%s: thread %d R%d = %d, oracle says %d", label, t, r, got, want)
			}
		}
	}
	for addr := int64(concCounterBase); addr < concMemEnd(threads); addr += 8 {
		got, want := m.Image().Load(addr), oracle.Mem[addr]
		if got != want {
			return fmt.Errorf("%s: mem[%d] = %d, oracle says %d", label, addr, got, want)
		}
	}
	return nil
}

// CheckConcurrent generates the scenario for seed and differentially
// checks it end to end:
//
//  1. the round-robin SC oracle (RunConc) executes the traditional
//     variant — fences are functionally transparent there, so one oracle
//     run covers every lowering;
//  2. the static scope analyzer verifies the class and set lowerings
//     clean (their annotations are correct by construction, so a finding
//     is an analyzer or generator bug) and infers a fourth, set-scoped
//     lowering from the unannotated traditional variant;
//  3. for every hierarchy depth in depths and every lowering — the three
//     generated ones plus the inferred one — the full machine runs the
//     scenario twice — naive per-cycle stepping and the two-speed
//     event-driven clock — and the two runs must be bit-identical
//     (cycles, full stats registry, all registers, whole image);
//  4. each machine run's checked projection (per-thread R1-R12 plus the
//     scenario's memory footprint) must equal the oracle's exactly.
//
// Step 4 against the one shared oracle transitively forces all lowerings
// and all depths to agree on final architectural state — the paper's
// semantics-preservation claim — while allowing them to differ on every
// timing observable. For the inferred lowering it is the dynamic half of
// inference soundness: the static narrowing must preserve the checked
// projection on real hardware timings, not just under the analyzer's own
// model. Any divergence returns a descriptive error; nil means the
// scenario passed everywhere.
func CheckConcurrent(seed int64, depths []int) (*ConcReport, error) {
	cp := GenConcurrent(seed)
	rep := &ConcReport{Seed: seed, Threads: cp.NumThreads}
	for v := Variant(0); v < NumVariants; v++ {
		rep.Insts[v] = len(cp.Variants[v].Code)
	}

	entries := make([]string, cp.NumThreads)
	for t := range entries {
		entries[t] = ConcEntry(t)
	}
	oracle, err := RunConc(cp.Variants[VariantTraditional], entries, cp.Regs, cp.Mem, concOracleMaxSteps)
	if err != nil {
		return rep, fmt.Errorf("seed %d: oracle failed on a guaranteed-terminating scenario: %w", seed, err)
	}
	rep.OracleSteps = oracle.Steps

	inferred, info, err := checkScopesStatically(cp)
	if err != nil {
		return rep, err
	}
	rep.InferredFences = info.Fences
	rep.InferredFlagged = len(info.Flagged)

	lowerings := []struct {
		v    Variant
		prog *isa.Program
	}{
		{VariantTraditional, cp.Variants[VariantTraditional]},
		{VariantClass, cp.Variants[VariantClass]},
		{VariantSet, cp.Variants[VariantSet]},
		{VariantInferred, inferred},
	}
	for _, depth := range depths {
		for _, low := range lowerings {
			v := low.v
			label := fmt.Sprintf("seed %d variant %v depth %d", seed, v, depth)
			mN, err := newConcMachine(cp, v, low.prog, depth, 1)
			if err != nil {
				return rep, err
			}
			mE, err := newConcMachine(cp, v, low.prog, depth, 1)
			if err != nil {
				return rep, err
			}
			nc, err := naiveRunMachine(mN)
			if err != nil {
				return rep, fmt.Errorf("%s: naive run: %w", label, err)
			}
			ec, err := mE.Run(context.Background())
			if err != nil {
				return rep, fmt.Errorf("%s: event-driven run: %w", label, err)
			}
			if err := bitIdentical(label, mN, mE, nc, ec); err != nil {
				return rep, err
			}
			if err := checkAgainstOracle(label, mE, oracle, cp.NumThreads); err != nil {
				return rep, err
			}
			cs := mE.Clock()
			if cs.SlowTicks+cs.SkippedCycles != ec {
				return rep, fmt.Errorf("%s: clock accounting broken: %d slow + %d skipped != %d cycles",
					label, cs.SlowTicks, cs.SkippedCycles, ec)
			}
			rep.Runs = append(rep.Runs, ConcRun{
				Variant: v, Depth: depth, Workers: 1, Cycles: ec,
				SlowTicks: cs.SlowTicks, SkippedCycles: cs.SkippedCycles,
			})
			// The optimistic-epoch parallel runner must reproduce the
			// sequential run bit for bit at every worker count: epochs
			// either commit exactly what per-cycle stepping would have
			// produced, or abort without trace.
			for _, w := range concWorkerCounts {
				plabel := fmt.Sprintf("%s workers %d", label, w)
				mP, err := newConcMachine(cp, v, low.prog, depth, w)
				if err != nil {
					return rep, err
				}
				pc, err := mP.Run(context.Background())
				if err != nil {
					return rep, fmt.Errorf("%s: parallel run: %w", plabel, err)
				}
				if err := bitIdentical(plabel, mE, mP, ec, pc); err != nil {
					return rep, err
				}
				ps := mP.Clock()
				if ps.SlowTicks+ps.SkippedCycles+ps.EpochCycles != pc {
					return rep, fmt.Errorf("%s: clock accounting broken: %d slow + %d skipped + %d epoch != %d cycles",
						plabel, ps.SlowTicks, ps.SkippedCycles, ps.EpochCycles, pc)
				}
				if ps.EpochFails > ps.Epochs {
					return rep, fmt.Errorf("%s: more epoch failures (%d) than attempts (%d)",
						plabel, ps.EpochFails, ps.Epochs)
				}
				rep.Runs = append(rep.Runs, ConcRun{
					Variant: v, Depth: depth, Workers: w, Cycles: pc,
					SlowTicks: ps.SlowTicks, SkippedCycles: ps.SkippedCycles,
					EpochCycles: ps.EpochCycles,
				})
			}
		}
	}
	return rep, nil
}
