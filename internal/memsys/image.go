package memsys

import "fmt"

// WordBytes is the size of every memory access.
const WordBytes = 8

// Image is the flat, word-addressable backing store shared by all cores.
// Addresses are byte addresses and must be WordBytes-aligned for
// architectural accesses. The image size is a power of two; Norm wraps any
// address into range, which the core model uses to keep speculative
// wrong-path accesses harmless.
type Image struct {
	words []int64
	mask  int64 // byte-address mask (size-1, with low 3 bits cleared by Norm)
}

// NewImage returns an image of the given size in bytes, rounded up to the
// next power of two (minimum 1 KiB).
func NewImage(sizeBytes int64) *Image {
	size := int64(1024)
	for size < sizeBytes {
		size <<= 1
	}
	return &Image{
		words: make([]int64, size/WordBytes),
		mask:  size - 1,
	}
}

// Size returns the image size in bytes.
func (im *Image) Size() int64 { return im.mask + 1 }

// Norm wraps an arbitrary (possibly wrong-path) byte address into a valid
// aligned address.
func (im *Image) Norm(addr int64) int64 {
	return addr & im.mask &^ (WordBytes - 1)
}

// Valid reports whether addr is an in-range, aligned architectural address.
func (im *Image) Valid(addr int64) bool {
	return addr >= 0 && addr <= im.mask && addr%WordBytes == 0
}

// Load returns the word at addr (normalized).
func (im *Image) Load(addr int64) int64 {
	return im.words[im.Norm(addr)/WordBytes]
}

// Store writes the word at addr (normalized).
func (im *Image) Store(addr, val int64) {
	im.words[im.Norm(addr)/WordBytes] = val
}

// CompareAndSwap atomically (with respect to the single-threaded simulation
// loop) replaces the word at addr with new if it currently equals old.
func (im *Image) CompareAndSwap(addr, old, new int64) bool {
	i := im.Norm(addr) / WordBytes
	if im.words[i] != old {
		return false
	}
	im.words[i] = new
	return true
}

// Snapshot copies the image contents; used by verifiers and tests.
func (im *Image) Snapshot() []int64 {
	out := make([]int64, len(im.words))
	copy(out, im.words)
	return out
}

// Layout is a simple bump allocator over an Image's address space, used by
// kernels to place named globals and arrays. It has no free operation: a
// kernel builds its whole data layout once.
type Layout struct {
	next  int64
	limit int64
	names map[string]int64
	order []NamedRegion
}

// NamedRegion records one named allocation of a Layout: base byte
// address and length in words. The static scope analyzer consumes these
// as its region declarations.
type NamedRegion struct {
	Name  string
	Base  int64
	Words int64
}

// NewLayout returns a Layout allocating from [base, limit).
func NewLayout(base, limit int64) *Layout {
	if base%WordBytes != 0 {
		base += WordBytes - base%WordBytes
	}
	return &Layout{next: base, limit: limit, names: make(map[string]int64)}
}

// Word allocates one named word and returns its byte address.
func (l *Layout) Word(name string) int64 { return l.Array(name, 1) }

// Array allocates n contiguous named words and returns the base byte
// address. It panics if the region is exhausted or the name reused, since
// kernel layouts are static.
func (l *Layout) Array(name string, n int64) int64 {
	if _, dup := l.names[name]; dup {
		panic(fmt.Sprintf("memsys: duplicate layout name %q", name))
	}
	addr := l.next
	l.next += n * WordBytes
	if l.next > l.limit {
		panic(fmt.Sprintf("memsys: layout overflow allocating %q (%d words)", name, n))
	}
	l.names[name] = addr
	l.order = append(l.order, NamedRegion{Name: name, Base: addr, Words: n})
	return addr
}

// AlignTo advances the allocation pointer to the next multiple of align
// bytes (e.g. a cache-line boundary to avoid false sharing).
func (l *Layout) AlignTo(align int64) {
	if align <= 0 || align%WordBytes != 0 {
		panic(fmt.Sprintf("memsys: bad alignment %d", align))
	}
	if rem := l.next % align; rem != 0 {
		l.next += align - rem
	}
}

// Addr returns the address previously allocated under name.
func (l *Layout) Addr(name string) int64 {
	addr, ok := l.names[name]
	if !ok {
		panic(fmt.Sprintf("memsys: unknown layout name %q", name))
	}
	return addr
}

// End returns the first unallocated byte address.
func (l *Layout) End() int64 { return l.next }

// Regions returns every named allocation in allocation order.
func (l *Layout) Regions() []NamedRegion {
	return append([]NamedRegion(nil), l.order...)
}
