package kernels

import "sfence/internal/isa"

// Chase-Lev work-stealing deque (Fig. 2 of the paper), generated as
// inline-expanded "class methods" over a queue descriptor:
//
//	descriptor+0:   HEAD
//	descriptor+64:  TAIL        (separate line: owner-written, thief-read)
//	descriptor+128: BUF         (slot array base address)
//
// Queues are sized so indices never wrap past capacity (no growth, no
// ABA), matching the paper's simplified pseudo-code. Under RMO the deque
// needs three fences (as found by the fence-inference work the paper
// cites): the put store-store fence, the take store-load fence, and a
// load-load fence in steal before reading the task slot.
//
// Register conventions: macros clobber R40-R49; the queue descriptor
// register and operand/result registers are caller-chosen outside that
// range. All wsq code shares class id cidWSQ — class scope is per class,
// not per instance, so every queue's fences share one scope.
const cidWSQ = 1

const (
	wsqHeadOff = 0
	wsqTailOff = 64
	wsqBufOff  = 128
	// wsqDescStride is the descriptor footprint (line-aligned).
	wsqDescStride = 192
)

const (
	rqTail  = isa.Reg(40)
	rqHead  = isa.Reg(41)
	rqBuf   = isa.Reg(42)
	rqIdx   = isa.Reg(43)
	rqSlot  = isa.Reg(44)
	rqTmp   = isa.Reg(45)
	rqOk    = isa.Reg(46)
	rqTask  = isa.Reg(47)
	rqTail2 = isa.Reg(48)
)

// emitWSQPut generates put(task): the owner appends taskReg at TAIL.
// wsqMask must be (capacity-1) of the slot array.
func emitWSQPut(b *isa.Builder, s scopeCtx, qreg, taskReg isa.Reg, wsqMask int64) {
	b.Inline(func(b *isa.Builder) {
		s.enter(b, cidWSQ)
		s.shared(b)
		b.Load(rqTail, qreg, wsqTailOff) // tail = TAIL
		b.Load(rqBuf, qreg, wsqBufOff)
		b.AndI(rqIdx, rqTail, wsqMask)
		b.ShlI(rqIdx, rqIdx, 3)
		b.Add(rqSlot, rqBuf, rqIdx)
		s.shared(b)
		b.Store(rqSlot, 0, taskReg) // wsq[tail] = task
		s.fenceSS(b)                // store-store fence (Fig. 2 line 4)
		b.AddI(rqTail2, rqTail, 1)
		s.shared(b)
		b.Store(qreg, wsqTailOff, rqTail2) // TAIL = tail + 1
		s.exit(b, cidWSQ)
	})
}

// emitWSQTake generates take(): resultReg gets the task (tasks are
// non-zero by convention) or 0 when the queue is empty.
func emitWSQTake(b *isa.Builder, s scopeCtx, qreg, resultReg isa.Reg, wsqMask int64) {
	b.Inline(func(b *isa.Builder) {
		s.enter(b, cidWSQ)
		s.shared(b)
		b.Load(rqTail, qreg, wsqTailOff)
		b.AddI(rqTail, rqTail, -1) // tail = TAIL - 1
		s.shared(b)
		b.Store(qreg, wsqTailOff, rqTail) // TAIL = tail
		s.fence(b)                        // store-load fence (Fig. 2 line 10)
		s.shared(b)
		b.Load(rqHead, qreg, wsqHeadOff) // head = HEAD
		b.Blt(rqTail, rqHead, "restore") // tail < head: empty
		b.Load(rqBuf, qreg, wsqBufOff)
		b.AndI(rqIdx, rqTail, wsqMask)
		b.ShlI(rqIdx, rqIdx, 3)
		b.Add(rqSlot, rqBuf, rqIdx)
		s.shared(b)
		b.Load(rqTask, rqSlot, 0)       // task = wsq[tail]
		b.Blt(rqHead, rqTail, "gotone") // tail > head: plain pop
		// tail == head: racing with thieves for the last element.
		b.AddI(rqTmp, rqHead, 1)
		s.shared(b)
		b.Store(qreg, wsqTailOff, rqTmp) // TAIL = head + 1
		s.shared(b)
		b.CAS(rqOk, qreg, wsqHeadOff, rqHead, rqTmp)
		b.Beq(rqOk, isa.R0, "empty") // lost the race
		b.Jmp("gotone")
		b.Label("restore")
		s.shared(b)
		b.Store(qreg, wsqTailOff, rqHead) // TAIL = head
		b.Label("empty")
		b.MovI(resultReg, 0)
		b.Jmp("out")
		b.Label("gotone")
		b.Mov(resultReg, rqTask)
		b.Label("out")
		s.exit(b, cidWSQ)
	})
}

// emitWSQSteal generates steal(): resultReg gets the task, 0 when the
// victim's queue is empty, or -1 when the CAS race was lost (ABORT).
func emitWSQSteal(b *isa.Builder, s scopeCtx, qreg, resultReg isa.Reg, wsqMask int64) {
	b.Inline(func(b *isa.Builder) {
		s.enter(b, cidWSQ)
		s.shared(b)
		b.Load(rqHead, qreg, wsqHeadOff) // head = HEAD
		// Load-load fence: TAIL must be read no earlier than HEAD.
		// Without it, a stale TAIL observed before the owner's take
		// decrement can combine with a fresh HEAD into a (head, tail)
		// snapshot that never existed, letting a thief steal the index
		// the owner is simultaneously popping on its no-CAS fast path
		// (a duplicate extraction). This matches the fence-inference
		// results for Chase-Lev under RMO that the paper cites.
		s.fenceLL(b)
		s.shared(b)
		b.Load(rqTail, qreg, wsqTailOff) // tail = TAIL
		// Second load-load fence: the task slot may only be read once
		// the observed TAIL (and with it the owner's slot store,
		// ordered by put's fence) is known to be complete.
		s.fenceLL(b)
		b.Bge(rqHead, rqTail, "empty")
		b.Load(rqBuf, qreg, wsqBufOff)
		b.AndI(rqIdx, rqHead, wsqMask)
		b.ShlI(rqIdx, rqIdx, 3)
		b.Add(rqSlot, rqBuf, rqIdx)
		s.shared(b)
		b.Load(rqTask, rqSlot, 0) // task = wsq[head]
		b.AddI(rqTmp, rqHead, 1)
		s.shared(b)
		b.CAS(rqOk, qreg, wsqHeadOff, rqHead, rqTmp)
		b.Beq(rqOk, isa.R0, "abort")
		b.Mov(resultReg, rqTask)
		b.Jmp("out")
		b.Label("empty")
		b.MovI(resultReg, 0)
		b.Jmp("out")
		b.Label("abort")
		b.MovI(resultReg, -1)
		b.Label("out")
		s.exit(b, cidWSQ)
	})
}
