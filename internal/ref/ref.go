// Package ref is a simple in-order, sequentially-consistent reference
// interpreter for the mini-ISA. It serves two purposes:
//
//   - a differential-testing oracle: for single-threaded programs, the
//     out-of-order core must produce exactly the same architectural state
//     (registers and memory) as this interpreter, whatever reordering,
//     speculation, or scoping it performed internally;
//   - a fast functional mode for program development (no timing).
package ref

import (
	"fmt"

	"sfence/internal/isa"
)

// State is the interpreter's architectural state.
type State struct {
	Regs [isa.NumRegs]int64
	Mem  map[int64]int64 // word-addressable, sparse

	// Steps is the number of instructions executed.
	Steps int
	// FencesExecuted counts fences (they are no-ops functionally).
	FencesExecuted int
	// ScopeDepth tracks fs_start/fs_end balance; ends non-zero if the
	// program exits inside a scope.
	ScopeDepth int
}

// Load reads a word (missing words read as zero).
func (s *State) Load(addr int64) int64 { return s.Mem[norm(addr)] }

// Store writes a word.
func (s *State) Store(addr, val int64) { s.Mem[norm(addr)] = val }

func norm(addr int64) int64 { return addr &^ 7 }

// seedRegs copies initial register values into the state (R0 stays zero).
func (s *State) seedRegs(regs map[isa.Reg]int64) {
	for r, v := range regs {
		if r != isa.R0 {
			s.Regs[r] = v
		}
	}
}

// Run interprets prog from entryPC until Halt, running off the end, or
// maxSteps. The initial registers and memory seed the state.
func Run(prog *isa.Program, entryPC int, regs map[isa.Reg]int64, mem map[int64]int64, maxSteps int) (*State, error) {
	st := &State{Mem: make(map[int64]int64, len(mem)+16)}
	st.seedRegs(regs)
	for a, v := range mem {
		st.Mem[norm(a)] = v
	}
	pc := entryPC
	for {
		if st.Steps >= maxSteps {
			return st, fmt.Errorf("ref: exceeded %d steps at pc %d", maxSteps, pc)
		}
		if pc < 0 || pc >= len(prog.Code) {
			return st, nil // running off the end halts
		}
		next, halted, err := st.step(prog.Code, pc)
		if err != nil {
			return st, err
		}
		if halted {
			return st, nil
		}
		pc = next
	}
}

// step executes code[pc] against the state and returns the next pc, or
// halted for OpHalt. The caller owns pc bounds checks and step limits;
// this is the shared single-instruction semantics behind both the
// single-threaded Run and the round-robin concurrent interpreter RunConc.
func (s *State) step(code []isa.Instruction, pc int) (next int, halted bool, err error) {
	in := code[pc]
	s.Steps++
	next = pc + 1
	a := s.Regs[in.Rs1]
	b := s.Regs[in.Rs2]
	var v int64
	writes := in.Writes()
	switch in.Op {
	case isa.OpNop:
	case isa.OpHalt:
		return pc, true, nil
	case isa.OpMovI:
		v = in.Imm
	case isa.OpAdd:
		v = a + b
	case isa.OpAddI:
		v = a + in.Imm
	case isa.OpSub:
		v = a - b
	case isa.OpMul:
		v = a * b
	case isa.OpDiv:
		if b != 0 {
			v = a / b
		}
	case isa.OpRem:
		if b != 0 {
			v = a % b
		}
	case isa.OpAnd:
		v = a & b
	case isa.OpAndI:
		v = a & in.Imm
	case isa.OpOr:
		v = a | b
	case isa.OpXor:
		v = a ^ b
	case isa.OpXorI:
		v = a ^ in.Imm
	case isa.OpShl:
		v = a << (uint64(b) & 63)
	case isa.OpShlI:
		v = a << (uint64(in.Imm) & 63)
	case isa.OpShr:
		v = a >> (uint64(b) & 63)
	case isa.OpShrI:
		v = a >> (uint64(in.Imm) & 63)
	case isa.OpSlt:
		if a < b {
			v = 1
		}
	case isa.OpSltI:
		if a < in.Imm {
			v = 1
		}
	case isa.OpSeq:
		if a == b {
			v = 1
		}
	case isa.OpLoad:
		v = s.Load(a + in.Imm)
	case isa.OpStore:
		s.Store(a+in.Imm, b)
	case isa.OpCAS:
		addr := a + in.Imm
		if s.Load(addr) == b {
			s.Store(addr, s.Regs[in.Rs3])
			v = 1
		}
	case isa.OpJmp:
		next = int(in.Imm)
	case isa.OpBeq:
		if a == b {
			next = int(in.Imm)
		}
	case isa.OpBne:
		if a != b {
			next = int(in.Imm)
		}
	case isa.OpBlt:
		if a < b {
			next = int(in.Imm)
		}
	case isa.OpBge:
		if a >= b {
			next = int(in.Imm)
		}
	case isa.OpFence:
		s.FencesExecuted++
	case isa.OpFsStart:
		s.ScopeDepth++
	case isa.OpFsEnd:
		s.ScopeDepth--
	default:
		return next, false, fmt.Errorf("ref: unknown opcode %d at pc %d", in.Op, pc)
	}
	if writes {
		s.Regs[in.Rd] = v
	}
	return next, false, nil
}
