package ref

import (
	"testing"

	"sfence/internal/cpu"
	"sfence/internal/isa"
	"sfence/internal/memsys"
)

func TestInterpreterBasics(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 6)
	b.MovI(isa.R2, 7)
	b.Mul(isa.R3, isa.R1, isa.R2)
	b.MovI(isa.R4, 4096)
	b.Store(isa.R4, 0, isa.R3)
	b.Load(isa.R5, isa.R4, 0)
	b.CAS(isa.R6, isa.R4, 0, isa.R3, isa.R1)
	b.Fence(isa.ScopeGlobal)
	b.FsStart(1)
	b.Fence(isa.ScopeClass)
	b.FsEnd(1)
	b.Halt()
	p := b.MustBuild()
	st, err := Run(p, 0, nil, nil, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Regs[isa.R3] != 42 || st.Regs[isa.R5] != 42 || st.Regs[isa.R6] != 1 {
		t.Errorf("regs: r3=%d r5=%d r6=%d", st.Regs[isa.R3], st.Regs[isa.R5], st.Regs[isa.R6])
	}
	if st.Load(4096) != 6 {
		t.Errorf("mem[4096] = %d after CAS, want 6", st.Load(4096))
	}
	if st.FencesExecuted != 2 {
		t.Errorf("fences = %d, want 2", st.FencesExecuted)
	}
	if st.ScopeDepth != 0 {
		t.Errorf("scope depth = %d, want 0", st.ScopeDepth)
	}
}

func TestInterpreterStepLimit(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.Label("l")
	b.Jmp("l")
	p := b.MustBuild()
	if _, err := Run(p, 0, nil, nil, 100); err == nil {
		t.Fatal("infinite loop not caught by step limit")
	}
}

func TestInterpreterRunsOffEnd(t *testing.T) {
	b := isa.NewBuilder()
	b.Entry("main")
	b.MovI(isa.R1, 9)
	p := b.MustBuild()
	st, err := Run(p, 0, nil, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st.Regs[isa.R1] != 9 {
		t.Error("result lost when running off the end")
	}
}

func TestGenProgramDeterministic(t *testing.T) {
	p1, r1, m1 := GenProgram(7)
	p2, r2, m2 := GenProgram(7)
	if len(p1.Code) != len(p2.Code) {
		t.Fatal("same seed produced different program sizes")
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Fatalf("same seed diverged at pc %d", i)
		}
	}
	if len(r1) != len(r2) || len(m1) != len(m2) {
		t.Fatal("same seed produced different initial state")
	}
}

// runOnCore executes the program on the out-of-order core model.
func runOnCore(t *testing.T, cfg cpu.Config, p *isa.Program, regs map[isa.Reg]int64, mem map[int64]int64) (*cpu.Core, *memsys.Image) {
	t.Helper()
	img := memsys.NewImage(1 << 20)
	for a, v := range mem {
		img.Store(a, v)
	}
	hier := memsys.MustHierarchy(1, memsys.DefaultConfig())
	core, err := cpu.NewCore(0, cfg, p, p.MustEntry("main"), regs, img, hier)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := int64(0); !core.Done(); cycle++ {
		if err := core.Fault(); err != nil {
			t.Fatalf("core fault: %v", err)
		}
		if cycle > 20_000_000 {
			t.Fatal("core did not finish")
		}
		core.Tick(cycle)
	}
	return core, img
}

// compareStates checks registers R1-R12 and the whole test memory region.
func compareStates(t *testing.T, seed int64, cfgName string, st *State, core *cpu.Core, img *memsys.Image) {
	t.Helper()
	for r := isa.R1; r <= isa.R12; r++ {
		if got, want := core.Reg(r), st.Regs[r]; got != want {
			t.Errorf("seed %d [%s]: r%d = %d, want %d", seed, cfgName, r, got, want)
		}
	}
	for i := int64(0); i < memWords; i++ {
		addr := memBase + i*8
		if got, want := img.Load(addr), st.Load(addr); got != want {
			t.Errorf("seed %d [%s]: mem[%d] = %d, want %d", seed, cfgName, addr, got, want)
		}
	}
}

// TestDifferentialRandomPrograms is the core correctness property of the
// whole simulator: for single-threaded programs, out-of-order execution
// with branch speculation, store buffering, scoped fences, and (optionally)
// in-window speculation must be architecturally invisible — the final
// state must equal the sequential reference interpreter's, under every
// core configuration.
func TestDifferentialRandomPrograms(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	tiny := cpu.DefaultConfig()
	tiny.ROBSize = 8
	tiny.SBSize = 2
	tiny.FSBEntries = 2
	tiny.FSSEntries = 1
	tiny.MapEntries = 1
	spec := cpu.DefaultConfig()
	spec.InWindowSpec = true
	shadow := cpu.DefaultConfig()
	shadow.Recovery = cpu.RecoveryShadow
	fifo := cpu.DefaultConfig()
	fifo.FIFOStoreBuffer = true
	narrow := cpu.DefaultConfig()
	narrow.IssueWidth = 1
	narrow.RetireWidth = 1
	narrow.MSHRs = 1
	configs := []struct {
		name string
		cfg  cpu.Config
	}{
		{"default", cpu.DefaultConfig()},
		{"tiny", tiny},
		{"spec", spec},
		{"shadow", shadow},
		{"fifo", fifo},
		{"narrow", narrow},
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		p, regs, mem := GenProgram(seed)
		st, err := Run(p, p.MustEntry("main"), regs, mem, 2_000_000)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for _, c := range configs {
			core, img := runOnCore(t, c.cfg, p, regs, mem)
			compareStates(t, seed, c.name, st, core, img)
			if t.Failed() {
				t.Fatalf("seed %d [%s]: architectural divergence (program has %d insts)", seed, c.name, len(p.Code))
			}
		}
	}
}
