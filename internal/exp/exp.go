// Package exp defines the paper's experiments: one regeneration method
// per table and figure of the evaluation section (Section VI), plus the
// ablations called out in DESIGN.md. Each method returns structured
// results and has an accompanying renderer producing the ASCII equivalent
// of the paper's chart.
//
// All experiment state is per-Session: a Session owns its runner, its
// progress sink, and its worker-pool width, so two sessions can run
// independent, cancellable evaluations in one process without sharing
// anything. The package has no mutable package-level state.
package exp

import (
	"context"
	"fmt"
	"runtime"

	"sfence/internal/cpu"
	"sfence/internal/kernels"
	"sfence/internal/machine"
	"sfence/internal/stats"
)

// Scale selects experiment sizing.
type Scale int

const (
	// Quick shrinks workloads for CI and unit tests.
	Quick Scale = iota
	// Full is the paper-shaped sizing used for EXPERIMENTS.md.
	Full
)

// opsFor returns the per-benchmark operation count at a scale.
func opsFor(bench string, sc Scale) int {
	quick := map[string]int{
		"dekker": 25, "wsq": 50, "msn": 32, "harris": 40,
		"pst": 160, "ptc": 64, "barnes": 16, "radiosity": 16,
	}
	full := map[string]int{
		"dekker": 60, "wsq": 120, "msn": 80, "harris": 90,
		"pst": 400, "ptc": 128, "barnes": 48, "radiosity": 48,
	}
	if sc == Quick {
		return quick[bench]
	}
	return full[bench]
}

// threadsFor returns the per-benchmark thread count (Table III: 8 cores).
func threadsFor(bench string) int {
	switch bench {
	case "nested-scope":
		return 1
	case "dekker":
		return 2
	case "wsq", "msn", "harris":
		return 4
	default:
		return 8
	}
}

// baseConfig is the Table III machine.
func baseConfig() machine.Config { return machine.DefaultConfig() }

// Runner executes one benchmark configuration. The default runner builds
// the kernel and simulates it directly; results.RunCache provides a
// memoizing runner so identical (benchmark, options, machine) triples are
// simulated once across a session's experiments.
type Runner func(ctx context.Context, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error)

// ProgressFunc receives per-experiment completion updates: done out of
// total simulations have finished for the named experiment.
type ProgressFunc func(experiment string, done, total int)

// Session owns everything one experiment run needs: the runner that
// executes (or memoizes) simulations, the progress sink, and the width of
// the worker pool. Sessions are immutable after construction and safe for
// concurrent use; independent sessions never share state, so two of them
// can run full evaluations in parallel in one process.
type Session struct {
	runner      Runner // nil = DirectRun
	progress    ProgressFunc
	parallelism int
	workers     int
}

// NewSession builds a session. A nil runner simulates directly, a nil
// progress disables reporting, and a non-positive parallelism defaults to
// runtime.GOMAXPROCS(0). Each run is an independent deterministic machine,
// so the pool width cannot change any result — only wall-clock time.
func NewSession(runner Runner, progress ProgressFunc, parallelism int) *Session {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	return &Session{runner: runner, progress: progress, parallelism: parallelism}
}

// WithWorkers returns a session whose simulations default to the
// epoch-barriered parallel machine runner with n worker threads.
// Explicit cfg.Parallel settings in an experiment still win; results are
// bit-identical at any worker count (the simulator asserts it), so this
// only changes wall-clock time. n <= 1 keeps the sequential loop.
func (s *Session) WithWorkers(n int) *Session {
	out := *s
	out.workers = n
	return &out
}

// DirectRun builds and simulates one benchmark configuration, bypassing
// any session runner. This is what runOne does when the session has no
// runner, and what a memoizing runner calls on a cache miss.
func DirectRun(ctx context.Context, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
	k, err := kernels.Build(bench, opts)
	if err != nil {
		return kernels.Result{}, err
	}
	return kernels.Run(ctx, k, cfg)
}

// ObservedRunner returns a Runner that simulates directly with the
// counter-only observer attached to every core. Observers ride the
// two-speed clock's fast path (skipped stall cycles arrive as bulk
// credits), so the instrumentation cannot change any measurement —
// results stay bit-identical to DirectRun. This is the runner a serving
// layer installs (usually behind a memoizing cache via RunCache.Runner)
// to stream live simulated-cycles and fence-stall tallies off runs that
// actually execute. A nil observer is exactly DirectRun.
func ObservedRunner(obs stats.Observer) Runner {
	if obs == nil {
		return DirectRun
	}
	return func(ctx context.Context, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
		k, err := kernels.Build(bench, opts)
		if err != nil {
			return kernels.Result{}, err
		}
		return kernels.RunObserved(ctx, k, cfg, obs)
	}
}

// runOne runs a benchmark under the given mode/config, after normalizing
// the thread count so equivalent runs present identical cache keys.
func (s *Session) runOne(ctx context.Context, bench string, opts kernels.Options, cfg machine.Config) (kernels.Result, error) {
	if opts.Threads == 0 {
		opts.Threads = threadsFor(bench)
	}
	if cfg.Parallel.Workers == 0 && s.workers > 1 {
		cfg.Parallel.Workers = s.workers
	}
	if s.runner != nil {
		return s.runner(ctx, bench, opts, cfg)
	}
	return DirectRun(ctx, bench, opts, cfg)
}

// Bar is one stacked bar of a normalized-execution-time chart: the fence
// stall portion and the rest, both normalized to the experiment's baseline
// total time (the paper's presentation in Figures 13-16).
type Bar struct {
	Label      string  `json:"label"`
	FenceStall float64 `json:"fenceStall"`
	Others     float64 `json:"others"`
}

// Total returns the bar height (normalized execution time).
func (b Bar) Total() float64 { return b.FenceStall + b.Others }

// barFrom converts a run into a Bar normalized against baselineCycles.
func barFrom(label string, r kernels.Result, baselineCycles int64) Bar {
	height := float64(r.Cycles) / float64(baselineCycles)
	stall := height * r.FenceStallFraction()
	return Bar{Label: label, FenceStall: stall, Others: height - stall}
}

// SpeedupSeries is one benchmark's curve in Figure 12.
type SpeedupSeries struct {
	Bench    string    `json:"bench"`
	Workload []int     `json:"workload"`
	Speedup  []float64 `json:"speedup"`
}

// Peak returns the peak speedup and its workload level.
func (s SpeedupSeries) Peak() (float64, int) {
	best, at := 0.0, 0
	for i, v := range s.Speedup {
		if v > best {
			best, at = v, s.Workload[i]
		}
	}
	return best, at
}

// BenchGroup is one benchmark's bars in a grouped figure.
type BenchGroup struct {
	Bench string `json:"bench"`
	Bars  []Bar  `json:"bars"`
}

// modeOpts builds options for the four paper configurations T, S, T+, S+.
var fig13Configs = []struct {
	Label string
	Mode  kernels.FenceMode
	Spec  bool
}{
	{"T", kernels.Traditional, false},
	{"S", kernels.Scoped, false},
	{"T+", kernels.Traditional, true},
	{"S+", kernels.Scoped, true},
}

func withSpec(cfg machine.Config, spec bool) machine.Config {
	cfg.Core.InWindowSpec = spec
	return cfg
}

// HardwareCost computes the per-core storage cost of the S-Fence hardware
// (Section VI-E): fence scope bits on every ROB and store-buffer entry,
// the mapping table, and both fence scope stacks.
type HardwareCostReport struct {
	ROBFSBBits   int     `json:"robFSBBits"`
	SBFSBBits    int     `json:"sbFSBBits"`
	MappingBits  int     `json:"mappingBits"`
	FSSBits      int     `json:"fssBits"`
	TotalBits    int     `json:"totalBits"`
	TotalBytes   float64 `json:"totalBytes"`
	PaperClaimOK bool    `json:"paperClaimOK"` // < 80 bytes per core for the Table III configuration
}

// HardwareCost evaluates the cost model for a core configuration.
func HardwareCost(cfg cpu.Config) HardwareCostReport {
	entryBits := cfg.FSBEntries
	rob := cfg.ROBSize * entryBits
	sb := cfg.SBSize * entryBits
	// Mapping table: an 8-bit cid tag (classes containing fences are
	// few), an FSB entry index, and a valid bit per slot.
	idxBits := 1
	for 1<<idxBits < cfg.FSBEntries {
		idxBits++
	}
	mt := cfg.MapEntries * (8 + idxBits + 1)
	// FSS and its shadow: entry indices plus a depth counter each.
	fss := 2 * (cfg.FSSEntries*idxBits + 8)
	total := rob + sb + mt + fss
	return HardwareCostReport{
		ROBFSBBits:   rob,
		SBFSBBits:    sb,
		MappingBits:  mt,
		FSSBits:      fss,
		TotalBits:    total,
		TotalBytes:   float64(total) / 8,
		PaperClaimOK: float64(total)/8 < 80,
	}
}

// TableIIIRow describes one architectural parameter.
type TableIIIRow struct {
	Parameter string `json:"parameter"`
	Value     string `json:"value"`
}

// TableIII returns the simulated machine's architectural parameters in
// the paper's Table III layout, with one row per configured cache level.
func TableIII(cfg machine.Config) []TableIIIRow {
	rows := []TableIIIRow{
		{"Processor", fmt.Sprintf("%d core CMP, out-of-order", cfg.Cores)},
		{"ROB size", fmt.Sprintf("%d", cfg.Core.ROBSize)},
	}
	for k, lv := range cfg.Mem.Levels {
		share := "private"
		if lv.Shared {
			share = "shared"
		}
		size := fmt.Sprintf("%d KB", lv.SizeBytes>>10)
		if lv.SizeBytes >= 1<<20 && lv.SizeBytes%(1<<20) == 0 {
			size = fmt.Sprintf("%d MB", lv.SizeBytes>>20)
		}
		rows = append(rows, TableIIIRow{
			fmt.Sprintf("L%d Cache", k+1),
			fmt.Sprintf("%s %s, %d way, %d-cycle latency", share, size, lv.Ways, lv.Latency),
		})
	}
	return append(rows,
		TableIIIRow{"Memory", fmt.Sprintf("%d-cycle latency", cfg.Mem.MemLatency)},
		TableIIIRow{"# of FSB entries", fmt.Sprintf("%d", cfg.Core.FSBEntries)},
		TableIIIRow{"# of FSS entries", fmt.Sprintf("%d", cfg.Core.FSSEntries)},
	)
}

// TableIV returns the benchmark descriptions (the paper's Table IV).
func TableIV() []kernels.Info { return kernels.All() }
