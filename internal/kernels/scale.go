package kernels

import (
	"fmt"

	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
)

func init() {
	register(Info{
		Name:        "scale",
		ScopeType:   "set",
		Group:       "micro",
		Hidden:      true,
		Description: "Many-core scaling microbenchmark: long private-L1-resident compute phases punctuated by one ring communication round (flagged store, fence, neighbor read) — runs on 2 up to memsys.MaxCores threads",
		Build:       func(opts Options) (*Kernel, error) { return buildScale(opts, 1) },
	})
	register(Info{
		Name:        "scale-imb",
		ScopeType:   "set",
		Group:       "micro",
		Hidden:      true,
		Description: "Imbalanced scale variant: thread 0 computes 8x per round and the rest wait at a flag barrier, so the straggler's solo tail dominates the run on wide machines",
		Build:       func(opts Options) (*Kernel, error) { return buildScale(opts, 8) },
	})
}

// The scale kernels are the core-count sweep workloads (fig-cores). Each
// thread owns a small private array (well inside the 32 KiB L1) and a
// tiny read-shared constant table, and alternates long phases of
// LCG-indexed read-modify-write compute over that array with one
// synchronization round. The compute phases are exactly the private-hit
// traffic the parallel runner's optimistic epochs commit; the per-round
// synchronization is the rare cross-core interaction that aborts back to
// the sequential loop. The read-shared table gives every line a
// full-machine sharer set, which at 65+ threads exercises the
// directory's paged sharer representation.
//
// scale (straggle == 1) synchronizes over a ring: publish the running
// checksum to a comm slot, fence, read the left neighbor's slot.
//
// scale-imb (straggle > 1) gives thread 0 straggle x the compute
// iterations per round and synchronizes over a flag barrier: every
// thread stores the round number to its own arrival slot (one cache
// line each — no contended CAS), the highest-numbered thread scans the
// slots and then releases a shared flag, and everyone else spins on the
// flag. While the straggler finishes its solo tail the other cores sit
// in confirmed spin loops on locally cached lines: the sequential
// two-speed clock cannot jump (one core is still active) and pays a
// full tick per spinning core per cycle, whereas the parallel runner's
// epochs fast-forward each spinner independently. That asymmetry is the
// workload's point — it is the barrier-tail pattern wide machines
// actually exhibit, and it is where the epoch core's wall-clock win
// lives.
const (
	scaleArrWords   = 256 // 2 KiB private array (32 lines)
	scaleTableWords = 64  // read-shared constant table (8 lines)
)

func scaleTableVal(i int64) int64 { return (i*40503 + 9176) & 0x7fff }

// buildScale emits a scale kernel. straggle multiplies thread 0's
// per-round compute iterations (1 = balanced ring variant). Per-thread
// parameters are register-fed, so every thread runs the same program
// text.
func buildScale(opts Options, straggle int64) (*Kernel, error) {
	opts = opts.withDefaults(8, 6, 2)
	if opts.Threads < 2 || opts.Threads > memsys.MaxCores {
		return nil, fmt.Errorf("scale: threads %d out of range [2,%d]", opts.Threads, memsys.MaxCores)
	}
	s := newScopeCtx(opts, isa.ScopeSet)
	if s.kind != isa.ScopeSet {
		return nil, fmt.Errorf("scale: only set scope applies")
	}
	rounds := int64(opts.Ops)
	computeIters := int64(128 * opts.Workload)

	lay := memsys.NewLayout(4096, 1<<30)
	table := lay.Array("table", scaleTableWords)
	lay.AlignTo(64)
	flag := lay.Word("flag")
	lay.AlignTo(64)
	comm := lay.Array("comm", int64(opts.Threads)*8) // one line per slot
	arr := make([]int64, opts.Threads)
	scr := make([]int64, opts.Threads)
	resSlot := make([]int64, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		lay.AlignTo(64)
		arr[t] = lay.Array(fmt.Sprintf("arr%d", t), scaleArrWords)
		lay.AlignTo(64)
		// One never-warmed line per round (line index = the round's rRound
		// value, so [1,rounds]; line 0 stays unused). Each round's
		// checkpoint store is a guaranteed cold miss pending at the fence.
		scr[t] = lay.Array(fmt.Sprintf("scr%d", t), (rounds+1)*8)
		lay.AlignTo(64)
		resSlot[t] = lay.Word(fmt.Sprintf("res%d", t))
	}

	const (
		rArr   = isa.R20
		rTab   = isa.R21
		rMine  = isa.R22
		rPeer  = isa.R23 // ring: left neighbor slot; barrier: flag address
		rRes   = isa.R24
		rX     = isa.R25 // LCG state
		rRound = isa.R26 // ring: rounds remaining; barrier: current round, counting up
		rIter  = isa.R27
		rAcc   = isa.R28
		rIdx   = isa.R29
		rA     = isa.R30
		rTmp   = isa.R31
		rSink  = isa.R32
		rMyIt  = isa.R33 // barrier: per-round compute iterations (straggler-scaled)
		rIsCol = isa.R34 // barrier: 1 on the collector thread
		rSlots = isa.R35 // barrier: arrival slot array base
		rScr   = isa.R36 // per-thread checkpoint scratch base
	)

	arrMask := int64(scaleArrWords - 1)
	tabMask := int64(scaleTableWords - 1)

	b := isa.NewBuilder()
	b.Entry("worker")
	b.Inline(func(b *isa.Builder) {
		b.MovI(rAcc, 0)
		b.MovI(rSink, 0)
		// Warmup: touch every private line (write for M state) and every
		// table line, so the cold misses are compact at the start of the
		// run instead of sprinkled through the first compute phase.
		b.MovI(rIdx, 0)
		b.Label("warm")
		b.Add(rA, rArr, rIdx)
		b.Store(rA, 0, isa.R0)
		b.AddI(rIdx, rIdx, 64)
		b.MovI(rTmp, scaleArrWords*8)
		b.Blt(rIdx, rTmp, "warm")
		b.MovI(rIdx, 0)
		b.Label("warmtab")
		b.Add(rA, rTab, rIdx)
		b.Load(rTmp, rA, 0)
		b.AddI(rIdx, rIdx, 64)
		b.MovI(rA, scaleTableWords*8)
		b.Blt(rIdx, rA, "warmtab")

		// Per-round private checkpoint: store the running checksum to this
		// round's own cold line, the canonical update-then-publish shape.
		// The store is a miss still pending in the store buffer when the
		// round's fence executes, so a traditional fence drains it while a
		// scoped fence — knowing no other thread reads the checkpoint —
		// skips it. This is where the T/S gap of the fig-cores sweep comes
		// from.
		checkpoint := func() {
			b.ShlI(rTmp, rRound, 6)
			b.Add(rA, rScr, rTmp)
			b.Store(rA, 0, rAcc)
		}

		if straggle == 1 {
			// --- ring variant: rRound is register-fed and counts down ---
			b.Label("roundloop")
			b.MovI(rIter, computeIters)
			emitScaleCompute(b, arrMask, tabMask)
			// Checkpoint privately, fence, then publish: the fence orders
			// the checkpoint before the flagged publish for T, while S
			// recognizes nothing in scope is pending.
			checkpoint()
			s.fence(b)
			// Communication round: publish the checksum, fence, read the
			// left neighbor. The neighbor value depends on global timing,
			// so it feeds the unverified sink only.
			s.shared(b)
			b.Store(rMine, 0, rAcc)
			s.fence(b)
			s.shared(b)
			b.Load(rTmp, rPeer, 0)
			b.Add(rSink, rSink, rTmp)
			b.AddI(rRound, rRound, -1)
			b.Bne(rRound, isa.R0, "roundloop")
		} else {
			// --- barrier variant: rRound counts up 1..rounds so it can
			// double as the arrival/flag value ---
			b.MovI(rRound, 1)
			b.Label("roundloop")
			b.Add(rIter, rMyIt, isa.R0)
			emitScaleCompute(b, arrMask, tabMask)
			checkpoint()
			s.fence(b)
			// Arrive: one flagged store to this thread's own slot line.
			s.shared(b)
			b.Store(rMine, 0, rRound)
			b.Bne(rIsCol, isa.R0, "collect")
			// Waiter: spin until the collector releases this round.
			b.Label("spinw")
			s.shared(b)
			b.Load(rTmp, rPeer, 0)
			b.Blt(rTmp, rRound, "spinw")
			b.Jmp("bdone")
			// Collector: scan every arrival slot, then release the flag.
			b.Label("collect")
			b.MovI(rIdx, 0)
			b.Label("scan")
			b.Add(rA, rSlots, rIdx)
			b.Label("scanspin")
			s.shared(b)
			b.Load(rTmp, rA, 0)
			b.Blt(rTmp, rRound, "scanspin")
			b.AddI(rIdx, rIdx, 64)
			b.MovI(rTmp, int64(opts.Threads)*64)
			b.Blt(rIdx, rTmp, "scan")
			s.shared(b)
			b.Store(rPeer, 0, rRound)
			b.Label("bdone")
			b.AddI(rRound, rRound, 1)
			b.MovI(rTmp, rounds+1)
			b.Blt(rRound, rTmp, "roundloop")
		}
		b.Store(rRes, 0, rAcc)
		b.Halt()
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	threads := make([]machine.Thread, opts.Threads)
	expect := make([]int64, opts.Threads)
	checkExpect := make([][]int64, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		seed := opts.Seed*1000003 + int64(t)*7919
		regs := map[isa.Reg]int64{
			rArr: arr[t], rTab: table, rScr: scr[t],
			rMine: comm + int64(t)*64,
			rRes:  resSlot[t], rX: seed,
		}
		iters := computeIters
		if straggle == 1 {
			regs[rRound] = rounds
			regs[rPeer] = comm + int64((t+1)%opts.Threads)*64
		} else {
			if t == 0 {
				iters = computeIters * straggle
			}
			regs[rMyIt] = iters
			regs[rPeer] = flag
			if t == opts.Threads-1 {
				regs[rIsCol] = 1
			}
			regs[rSlots] = comm
		}
		threads[t] = machine.Thread{Entry: "worker", Regs: regs}
		// Mirror the compute chain exactly (the ring variant's neighbor
		// reads feed the unverified sink only). checkAt[r] is the checksum
		// the round-r checkpoint line must hold; the ring variant indexes
		// checkpoints by its count-down register, so its round r lands on
		// line rounds-r.
		x := seed
		var acc int64
		mem := make([]int64, scaleArrWords)
		checkAt := make([]int64, rounds+1)
		for r := int64(0); r < rounds; r++ {
			for it := int64(0); it < iters; it++ {
				var idx, tidx int64
				x, idx = lcgNext(x, arrMask)
				acc += mem[idx]
				x, tidx = lcgNext(x, tabMask)
				acc ^= scaleTableVal(tidx)
				mem[idx] = acc
			}
			if straggle == 1 {
				checkAt[rounds-r] = acc
			} else {
				checkAt[r+1] = acc
			}
		}
		expect[t] = acc
		checkExpect[t] = checkAt
	}

	name := "scale"
	if straggle > 1 {
		name = "scale-imb"
	}
	return &Kernel{
		Name:    name,
		Program: p,
		Regions: regionsFor(lay, func(rn string) (scopecheck.Sharing, int) {
			if rn == "table" {
				return scopecheck.ReadShared, -1
			}
			if t, ok := ownedSuffix(rn, "arr"); ok {
				return scopecheck.Private, t
			}
			if t, ok := ownedSuffix(rn, "scr"); ok {
				return scopecheck.Private, t
			}
			if t, ok := ownedSuffix(rn, "res"); ok {
				return scopecheck.Private, t
			}
			return scopecheck.SharedRW, -1
		}),
		Threads: threads,
		InitImage: func(img *memsys.Image) {
			for i := int64(0); i < scaleTableWords; i++ {
				img.Store(table+i*8, scaleTableVal(i))
			}
		},
		Verify: func(img *memsys.Image) error {
			for t := 0; t < opts.Threads; t++ {
				if got := img.Load(resSlot[t]); got != expect[t] {
					return fmt.Errorf("scale: thread %d checksum = %d, want %d", t, got, expect[t])
				}
				for r := int64(1); r <= rounds; r++ {
					if got := img.Load(scr[t] + r*64); got != checkExpect[t][r] {
						return fmt.Errorf("scale: thread %d round-%d checkpoint = %d, want %d", t, r, got, checkExpect[t][r])
					}
				}
			}
			if straggle > 1 {
				// The barrier cells are deterministic too: every slot and
				// the flag end at the final round number.
				for t := 0; t < opts.Threads; t++ {
					if got := img.Load(comm + int64(t)*64); got != rounds {
						return fmt.Errorf("scale: arrival slot %d = %d, want %d", t, got, rounds)
					}
				}
				if got := img.Load(flag); got != rounds {
					return fmt.Errorf("scale: flag = %d, want %d", got, rounds)
				}
			}
			return nil
		},
	}, nil
}

// emitScaleCompute emits one compute phase: rIter iterations of
// LCG-indexed read-modify-write over the private array plus a
// read-shared table gather — all L1 hits after warmup, so the whole
// phase runs inside an optimistic epoch.
func emitScaleCompute(b *isa.Builder, arrMask, tabMask int64) {
	const (
		rX    = isa.R25
		rIter = isa.R27
		rAcc  = isa.R28
		rIdx  = isa.R29
		rA    = isa.R30
		rTmp  = isa.R31
		rArr  = isa.R20
		rTab  = isa.R21
	)
	b.Label("compute")
	emitLCG(b, rX, rIdx, arrMask)
	b.ShlI(rIdx, rIdx, 3)
	b.Add(rA, rArr, rIdx)
	b.Load(rTmp, rA, 0)
	b.Add(rAcc, rAcc, rTmp)
	emitLCG(b, rX, rIdx, tabMask)
	b.ShlI(rIdx, rIdx, 3)
	b.Add(rIdx, rTab, rIdx)
	b.Load(rTmp, rIdx, 0)
	b.Xor(rAcc, rAcc, rTmp)
	b.Store(rA, 0, rAcc)
	b.AddI(rIter, rIter, -1)
	b.Bne(rIter, isa.R0, "compute")
}
