package exp

import (
	"context"

	"sfence/internal/kernels"
	"sfence/internal/machine"
	"sfence/internal/memsys"
)

// DepthLevels are the hierarchy depths the fig-depth experiment sweeps.
// Depth 2 is the Table III machine exactly, so its runs share cache
// entries with the Figure 13 baselines.
var DepthLevels = []int{2, 3, 4}

// FigureDepth is the depth-sweep experiment (beyond the paper): every
// Table IV benchmark under traditional and scoped fences on 2-, 3-, and
// 4-level memory hierarchies (memsys.DepthConfig), with bars normalized
// per benchmark to the 2-level traditional run. It is the hierarchy-shape
// companion to Figure 15's latency sweep: deeper hierarchies stretch the
// store-buffer drain a traditional fence must wait out, so the experiment
// shows how much of the fence-stall cost is a property of the memory
// system rather than of fence semantics.
func (s *Session) FigureDepth(ctx context.Context, sc Scale) ([]BenchGroup, error) {
	infos := kernels.All()
	benches := make([]string, len(infos))
	for i, info := range infos {
		benches[i] = info.Name
	}
	return s.sweepFigure(ctx, "Depth sweep", benches, sc, DepthLevels, 2, intLabel,
		func(cfg machine.Config, depth int) machine.Config {
			cfg.Mem = memsys.DepthConfig(depth)
			return cfg
		})
}
