// Package cpu models an out-of-order superscalar core with a reorder
// buffer, a non-FIFO store buffer (yielding an RMO-like relaxed memory
// model), branch prediction with wrong-path fetch, and the Fence Scoping
// hardware proposed by Lin et al. (SC '14): fence scope bits (FSB) on every
// ROB and store-buffer entry, a fence scope stack (FSS) with a shadow copy
// (FSS'), and a cid-to-FSB-entry mapping table.
package cpu

import (
	"fmt"

	"sfence/internal/stats"
)

// FSSRecovery selects how the fence scope stack is repaired after a branch
// misprediction.
type FSSRecovery uint8

const (
	// RecoverySnapshot checkpoints the FSS at every predicted branch and
	// restores the exact checkpoint on misprediction. This is slightly
	// stronger than the paper's mechanism and never over- or
	// under-synchronizes; it is the default.
	RecoverySnapshot FSSRecovery = iota
	// RecoveryShadow is the paper's FSS' mechanism: fs_start/fs_end update
	// the shadow only when no unconfirmed branch precedes them, and on
	// misprediction FSS is overwritten with FSS'. When the shadow is known
	// to lag (scope operations were skipped), this implementation falls
	// back to treating fences as full fences until the stack empties, so
	// the approximation can never under-synchronize.
	RecoveryShadow
)

func (r FSSRecovery) String() string {
	switch r {
	case RecoverySnapshot:
		return "snapshot"
	case RecoveryShadow:
		return "shadow"
	}
	return fmt.Sprintf("FSSRecovery(%d)", uint8(r))
}

// Config holds the core parameters. DefaultConfig matches Table III of the
// paper where the paper specifies a value.
type Config struct {
	ROBSize     int // reorder buffer entries (power of two)
	SBSize      int // store buffer entries
	IssueWidth  int // instructions decoded/issued into the ROB per cycle
	RetireWidth int // instructions retired per cycle
	MSHRs       int // concurrent outstanding store misses from the SB

	// BranchPenalty is the fetch-redirect bubble after a misprediction,
	// in cycles.
	BranchPenalty int
	// PredictorBits is the log2 size of the 2-bit-counter branch
	// predictor table.
	PredictorBits int

	// ForwardLatency is the store-to-load forwarding latency in cycles.
	ForwardLatency int

	// FSBEntries is the number of fence scope bits per ROB/SB entry. The
	// last entry is reserved for set scope; the rest hold class scopes.
	FSBEntries int
	// FSSEntries is the fence scope stack depth.
	FSSEntries int
	// MapEntries is the cid->FSB mapping table capacity.
	MapEntries int

	// InWindowSpec enables in-window speculation: fences issue
	// speculatively and are checked against the store buffer before
	// retiring (the paper's T+/S+ configurations).
	InWindowSpec bool

	// FIFOStoreBuffer drains stores strictly in order (a TSO-like
	// baseline used for ablations); the default non-FIFO buffer models
	// RMO.
	FIFOStoreBuffer bool

	// Recovery selects the FSS misprediction-recovery mechanism.
	Recovery FSSRecovery
}

// DefaultConfig returns the paper's core parameters (Table III): 128-entry
// ROB, 4 FSB entries, 4 FSS entries. Parameters the paper does not specify
// use conventional academic-simulator values.
func DefaultConfig() Config {
	return Config{
		ROBSize:        128,
		SBSize:         8,
		IssueWidth:     4,
		RetireWidth:    4,
		MSHRs:          8,
		BranchPenalty:  3,
		PredictorBits:  10,
		ForwardLatency: 2,
		FSBEntries:     4,
		FSSEntries:     4,
		MapEntries:     4,
		InWindowSpec:   false,
		Recovery:       RecoverySnapshot,
	}
}

// Validate checks structural constraints.
func (c Config) Validate() error {
	if c.ROBSize < 2 || c.ROBSize&(c.ROBSize-1) != 0 {
		return fmt.Errorf("cpu: ROBSize %d must be a power of two >= 2", c.ROBSize)
	}
	if c.SBSize < 1 {
		return fmt.Errorf("cpu: SBSize %d must be >= 1", c.SBSize)
	}
	if c.IssueWidth < 1 || c.RetireWidth < 1 {
		return fmt.Errorf("cpu: issue/retire width must be >= 1")
	}
	if c.MSHRs < 1 {
		return fmt.Errorf("cpu: MSHRs must be >= 1")
	}
	if c.BranchPenalty < 0 || c.ForwardLatency < 1 {
		return fmt.Errorf("cpu: bad latency parameters")
	}
	if c.PredictorBits < 1 || c.PredictorBits > 24 {
		return fmt.Errorf("cpu: PredictorBits %d out of range [1,24]", c.PredictorBits)
	}
	if c.FSBEntries < 2 || c.FSBEntries > 8 {
		return fmt.Errorf("cpu: FSBEntries %d out of range [2,8] (one entry is reserved for set scope)", c.FSBEntries)
	}
	if c.FSSEntries < 1 || c.FSSEntries > 8 {
		return fmt.Errorf("cpu: FSSEntries %d out of range [1,8]", c.FSSEntries)
	}
	if c.MapEntries < 1 {
		return fmt.Errorf("cpu: MapEntries must be >= 1")
	}
	return nil
}

// Stats accumulates per-core execution statistics. Every field is a
// registry-typed stat (stats.Counter / stats.Gauge): the core owns the
// storage — hot-path increments stay plain memory ops — and register
// publishes each field into the machine's hierarchical stats registry
// under a stable dotted name (CI's stale-counter gate keeps raw uint64
// fields from creeping back in).
type Stats struct {
	Committed       stats.Counter // architecturally committed instructions
	CommittedLoads  stats.Counter
	CommittedStores stats.Counter
	CommittedCAS    stats.Counter
	CommittedFences stats.Counter

	// FenceStallCycles counts cycles in which the core could make no
	// forward progress at a fence: issue blocked by an unissuable fence,
	// or (with in-window speculation) retirement blocked by a fence at
	// the ROB head. This is the "Fence Stalls" component of the paper's
	// stacked bars.
	FenceStallCycles stats.Counter
	// FenceStallIssue / FenceStallRetire break FenceStallCycles down by
	// where the stall occurred.
	FenceStallIssue  stats.Counter
	FenceStallRetire stats.Counter
	// FenceIdleCycles is the refined stall metric: cycles in which the
	// core was blocked at a fence with an otherwise empty pipeline — no
	// in-flight instruction left to execute, the fence purely waiting for
	// outstanding memory (typically the store-buffer drain of Fig. 10).
	// This is the "Fence Stalls" component used for the paper's stacked
	// bars; FenceStallCycles additionally counts cycles where pre-fence
	// work was still executing under the blocked fence.
	FenceIdleCycles stats.Counter

	ROBFullCycles stats.Counter // issue blocked: ROB full
	SBFullCycles  stats.Counter // retire blocked: store buffer full

	Branches      stats.Counter // committed branches
	Mispredicts   stats.Counter
	Squashed      stats.Counter // instructions discarded by squashes
	WrongPathMem  stats.Counter // wrong-path memory accesses issued
	SpecLoadFlush stats.Counter // speculative loads replayed by remote stores

	ScopeOverflow stats.Counter // fs_start demoted to full-fence mode (MT/FSS full)
	ScopeShared   stats.Counter // scopes that had to share an FSB entry
	FSEndIgnored  stats.Counter // fs_end with empty FSS (wrong-path artifacts)

	SumROBOccupancy stats.Counter // per-cycle sum, for average occupancy
	MaxROBOccupancy stats.Gauge
	Cycles          stats.Counter // cycles this core was active (not yet done)
}

// register publishes every statistic into g under its stable dotted name.
// The descriptions double as the registry's documentation: `sfence-sim
// -stats` prints them next to the values.
func (s *Stats) register(g *stats.Group) {
	g.Counter(&s.Cycles, "cycles", "cycles this core was active (not yet done)")
	g.Counter(&s.Committed, "committed", "architecturally committed instructions")
	g.Counter(&s.CommittedLoads, "committed_loads", "committed loads")
	g.Counter(&s.CommittedStores, "committed_stores", "committed stores")
	g.Counter(&s.CommittedCAS, "committed_cas", "committed compare-and-swaps")
	g.Counter(&s.CommittedFences, "committed_fences", "committed fences")
	g.Counter(&s.Squashed, "squashed", "instructions discarded by squashes")
	g.Counter(&s.WrongPathMem, "wrong_path_mem", "wrong-path memory accesses issued")
	g.Counter(&s.SpecLoadFlush, "spec_load_flush", "speculative loads replayed by remote stores")

	fence := g.Sub("fence")
	fence.Counter(&s.FenceStallCycles, "stall_cycles", "cycles with no forward progress at a fence (issue or retirement blocked)")
	fence.Counter(&s.FenceStallIssue, "stall_issue", "fence stall cycles where issue was blocked")
	fence.Counter(&s.FenceStallRetire, "stall_retire", "fence stall cycles where retirement was blocked")
	fence.Counter(&s.FenceIdleCycles, "idle_cycles", "fence stall cycles with an otherwise empty pipeline (the paper's stacked-bar metric)")

	rob := g.Sub("rob")
	rob.Counter(&s.ROBFullCycles, "full_cycles", "issue-blocked cycles with a full reorder buffer")
	rob.Counter(&s.SumROBOccupancy, "occupancy_sum", "per-cycle ROB occupancy sum (integral for the average)")
	rob.Gauge(&s.MaxROBOccupancy, "occupancy_max", "peak ROB occupancy")
	rob.Formula("occupancy_avg", "mean ROB occupancy over active cycles", s.AvgROBOccupancy)

	g.Sub("sb").Counter(&s.SBFullCycles, "full_cycles", "retire-blocked cycles with a full store buffer")

	branch := g.Sub("branch")
	branch.Counter(&s.Branches, "committed", "committed branches")
	branch.Counter(&s.Mispredicts, "mispredicts", "branch mispredictions")

	scope := g.Sub("scope")
	scope.Counter(&s.ScopeOverflow, "overflow", "fs_start demoted to full-fence mode (mapping table or FSS full)")
	scope.Counter(&s.ScopeShared, "shared", "scopes that had to share an FSB entry")
	scope.Counter(&s.FSEndIgnored, "fs_end_ignored", "fs_end with empty FSS (wrong-path artifacts)")
}

// AvgROBOccupancy returns the mean ROB occupancy over the core's active
// cycles.
func (s *Stats) AvgROBOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.SumROBOccupancy) / float64(s.Cycles)
}

// FenceStallFraction returns the fence-idle share of active cycles.
func (s *Stats) FenceStallFraction() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.FenceIdleCycles) / float64(s.Cycles)
}

// Add accumulates other into s.
func (s *Stats) Add(o *Stats) {
	s.Committed += o.Committed
	s.CommittedLoads += o.CommittedLoads
	s.CommittedStores += o.CommittedStores
	s.CommittedCAS += o.CommittedCAS
	s.CommittedFences += o.CommittedFences
	s.FenceStallCycles += o.FenceStallCycles
	s.FenceStallIssue += o.FenceStallIssue
	s.FenceStallRetire += o.FenceStallRetire
	s.FenceIdleCycles += o.FenceIdleCycles
	s.ROBFullCycles += o.ROBFullCycles
	s.SBFullCycles += o.SBFullCycles
	s.Branches += o.Branches
	s.Mispredicts += o.Mispredicts
	s.Squashed += o.Squashed
	s.WrongPathMem += o.WrongPathMem
	s.SpecLoadFlush += o.SpecLoadFlush
	s.ScopeOverflow += o.ScopeOverflow
	s.ScopeShared += o.ScopeShared
	s.FSEndIgnored += o.FSEndIgnored
	s.SumROBOccupancy += o.SumROBOccupancy
	if o.MaxROBOccupancy > s.MaxROBOccupancy {
		s.MaxROBOccupancy = o.MaxROBOccupancy
	}
	s.Cycles += o.Cycles
}
