package kernels

import (
	"context"
	"strings"
	"testing"

	"sfence/internal/machine"
)

// smallOpts returns fast-but-meaningful options per benchmark for tests.
func smallOpts(bench string) Options {
	switch bench {
	case "dekker":
		return Options{Ops: 15, Workload: 1}
	case "wsq":
		return Options{Ops: 40, Workload: 1, Threads: 4}
	case "msn":
		return Options{Ops: 24, Workload: 1, Threads: 4}
	case "harris":
		return Options{Ops: 30, Workload: 1, Threads: 4}
	case "pst":
		return Options{Ops: 96, Threads: 4}
	case "ptc":
		return Options{Ops: 48, Threads: 4}
	case "barnes", "radiosity":
		return Options{Ops: 10, Threads: 4}
	}
	return Options{}
}

func runBench(t *testing.T, bench string, opts Options, cfg machine.Config) Result {
	t.Helper()
	k, err := Build(bench, opts)
	if err != nil {
		t.Fatalf("%s build: %v", bench, err)
	}
	res, err := Run(context.Background(), k, cfg)
	if err != nil {
		t.Fatalf("%s run: %v", bench, err)
	}
	return res
}

func TestRegistryMatchesTableIV(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("registry has %d benchmarks, want 8", len(all))
	}
	wantOrder := []string{"dekker", "wsq", "msn", "harris", "barnes", "radiosity", "pst", "ptc"}
	wantScope := map[string]string{
		"dekker": "set", "wsq": "class", "msn": "class", "harris": "class",
		"barnes": "set", "radiosity": "set", "pst": "class", "ptc": "class",
	}
	for i, info := range all {
		if info.Name != wantOrder[i] {
			t.Errorf("position %d: %s, want %s", i, info.Name, wantOrder[i])
		}
		if info.ScopeType != wantScope[info.Name] {
			t.Errorf("%s scope type %s, want %s (Table IV)", info.Name, info.ScopeType, wantScope[info.Name])
		}
		if info.Description == "" || info.Group == "" {
			t.Errorf("%s missing metadata", info.Name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := Build("nope", Options{}); err == nil {
		t.Error("Build of unknown benchmark succeeded")
	}
}

// Every benchmark must run to completion and pass its own verifier under
// both fence modes — these are simultaneously correctness tests of the
// S-Fence hardware (a scoping bug that under-synchronizes shows up as a
// verification failure).
func TestAllBenchmarksVerifyBothModes(t *testing.T) {
	for _, info := range All() {
		for _, mode := range []FenceMode{Traditional, Scoped} {
			opts := smallOpts(info.Name)
			opts.Mode = mode
			res := runBench(t, info.Name, opts, machine.DefaultConfig())
			if res.Cycles <= 0 || res.Stats.Committed == 0 {
				t.Errorf("%s/%v: empty run (%+v)", info.Name, mode, res)
			}
			if res.Stats.CommittedFences == 0 {
				t.Errorf("%s/%v: no fences executed", info.Name, mode)
			}
		}
	}
}

// Scoped fences must never lose to traditional fences by more than noise.
func TestScopedNotSlower(t *testing.T) {
	for _, info := range All() {
		optsT := smallOpts(info.Name)
		optsT.Mode = Traditional
		optsS := smallOpts(info.Name)
		optsS.Mode = Scoped
		rT := runBench(t, info.Name, optsT, machine.DefaultConfig())
		rS := runBench(t, info.Name, optsS, machine.DefaultConfig())
		// ptc's dynamic stealing schedule gives it the widest noise band.
		limit := 1.05
		if info.Name == "ptc" {
			limit = 1.10
		}
		if float64(rS.Cycles) > float64(rT.Cycles)*limit {
			t.Errorf("%s: scoped (%d) slower than traditional (%d)", info.Name, rS.Cycles, rT.Cycles)
		}
	}
}

// The store-buffer-bound benchmarks must show a real scoped-fence win.
func TestScopedFenceReducesStalls(t *testing.T) {
	for _, bench := range []string{"wsq", "msn", "barnes", "radiosity"} {
		optsT := smallOpts(bench)
		optsT.Mode = Traditional
		optsS := smallOpts(bench)
		optsS.Mode = Scoped
		rT := runBench(t, bench, optsT, machine.DefaultConfig())
		rS := runBench(t, bench, optsS, machine.DefaultConfig())
		if rS.FenceStall >= rT.FenceStall {
			t.Errorf("%s: scoped stalls %d >= traditional %d", bench, rS.FenceStall, rT.FenceStall)
		}
		if rS.Cycles >= rT.Cycles {
			t.Errorf("%s: no speedup (S=%d, T=%d)", bench, rS.Cycles, rT.Cycles)
		}
	}
}

// Figure 14's comparison: the class-scope benchmarks can also run with set
// scope (flagging the shared variables); both must verify.
func TestClassVsSetScope(t *testing.T) {
	for _, bench := range []string{"msn", "harris", "pst", "ptc"} {
		for _, ov := range []ScopeOverride{ForceClass, ForceSet} {
			opts := smallOpts(bench)
			opts.Mode = Scoped
			opts.Scope = ov
			runBench(t, bench, opts, machine.DefaultConfig())
		}
	}
}

// All benchmarks must stay correct under in-window speculation, where the
// speculative-load replay mechanism carries the correctness burden.
func TestBenchmarksUnderInWindowSpeculation(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Core.InWindowSpec = true
	for _, info := range All() {
		for _, mode := range []FenceMode{Traditional, Scoped} {
			opts := smallOpts(info.Name)
			opts.Mode = mode
			runBench(t, info.Name, opts, cfg)
		}
	}
}

// All benchmarks must stay correct under the paper's shadow-FSS recovery.
func TestBenchmarksUnderShadowRecovery(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Core.Recovery = 1 // cpu.RecoveryShadow
	for _, info := range All() {
		opts := smallOpts(info.Name)
		opts.Mode = Scoped
		runBench(t, info.Name, opts, cfg)
	}
}

// Scope-hardware pressure: a single FSB class entry plus tiny FSS/mapping
// table forces entry sharing and overflow fallback, which must stay
// correct (only more conservative).
func TestBenchmarksUnderTinyScopeHardware(t *testing.T) {
	cfg := machine.DefaultConfig()
	cfg.Core.FSBEntries = 2 // one class entry + reserved set entry
	cfg.Core.FSSEntries = 1
	cfg.Core.MapEntries = 1
	for _, bench := range []string{"wsq", "msn", "pst"} {
		opts := smallOpts(bench)
		opts.Mode = Scoped
		runBench(t, bench, opts, cfg)
	}
}

func TestKernelDeterminism(t *testing.T) {
	for _, bench := range []string{"dekker", "wsq", "msn", "harris"} {
		opts := smallOpts(bench)
		opts.Mode = Scoped
		a := runBench(t, bench, opts, machine.DefaultConfig())
		b := runBench(t, bench, opts, machine.DefaultConfig())
		if a.Cycles != b.Cycles {
			t.Errorf("%s: identical runs took %d and %d cycles", bench, a.Cycles, b.Cycles)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := Build("dekker", Options{Threads: 3}); err == nil {
		t.Error("dekker with 3 threads accepted")
	}
	if _, err := Build("msn", Options{Threads: 3}); err == nil {
		t.Error("msn with odd threads accepted")
	}
	if _, err := Build("wsq", Options{Threads: 1}); err == nil {
		t.Error("wsq with 1 thread accepted")
	}
	if _, err := Build("barnes", Options{Scope: ForceClass}); err == nil {
		t.Error("barnes with class scope accepted (set-scope-only benchmark)")
	}
	// Running on a machine with fewer cores than threads must error.
	k, err := Build("wsq", Options{Threads: 8, Ops: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := machine.DefaultConfig()
	cfg.Cores = 4
	if _, err := Run(context.Background(), k, cfg); err == nil || !strings.Contains(err.Error(), "cores") {
		t.Errorf("thread/core mismatch not rejected: %v", err)
	}
}

// The Figure 12 workload knob must produce the paper's hump: speedup rises
// from low workload, peaks, and falls at high workload.
func TestWorkloadHumpShape(t *testing.T) {
	if testing.Short() {
		t.Skip("hump sweep is slow")
	}
	speedups := make([]float64, 0, 4)
	for _, w := range []int{1, 3, 6, 12} {
		var cyc [2]int64
		for i, mode := range []FenceMode{Traditional, Scoped} {
			res := runBench(t, "wsq", Options{Mode: mode, Ops: 40, Workload: w, Threads: 4}, machine.DefaultConfig())
			cyc[i] = res.Cycles
		}
		speedups = append(speedups, float64(cyc[0])/float64(cyc[1]))
	}
	peak := 0
	for i, s := range speedups {
		if s > speedups[peak] {
			peak = i
		}
	}
	if peak == 0 || peak == len(speedups)-1 {
		t.Errorf("no interior hump: speedups %v", speedups)
	}
	for _, s := range speedups {
		// The paper's claim is "S-Fence always performs better"; allow a
		// 2% noise band at the high-workload end where the fence share
		// of runtime approaches zero.
		if s < 0.98 {
			t.Errorf("speedup below noise floor in sweep: %v", speedups)
		}
	}
}

// FinerFences (store-store put fence) must stay correct on every
// wsq-based kernel under both modes.
func TestFinerFencesCorrectEverywhere(t *testing.T) {
	for _, bench := range []string{"wsq", "pst", "ptc"} {
		for _, mode := range []FenceMode{Traditional, Scoped} {
			opts := smallOpts(bench)
			opts.Mode = mode
			opts.FinerFences = true
			runBench(t, bench, opts, machine.DefaultConfig())
		}
	}
}

// Every benchmark program must pass the CFG scope validator (balanced
// fs_start/fs_end on all paths) in every build variant.
func TestKernelProgramsValidate(t *testing.T) {
	for _, info := range All() {
		for _, mode := range []FenceMode{Traditional, Scoped} {
			opts := smallOpts(info.Name)
			opts.Mode = mode
			k, err := Build(info.Name, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := k.Program.Validate(); err != nil {
				t.Errorf("%s/%v: %v", info.Name, mode, err)
			}
		}
	}
}

// The fence profile of a traditional pst run must identify the
// application's full fence (not the queue fences) as a dominant idle-stall
// site — the diagnosis the paper makes in Section VI-B.
func TestFenceProfileFindsPSTFullFence(t *testing.T) {
	opts := smallOpts("pst")
	opts.Mode = Scoped
	res := runBench(t, "pst", opts, machine.DefaultConfig())
	if len(res.Profile) == 0 {
		t.Fatal("empty fence profile")
	}
	// In scoped mode the only global fence site is the color/parent
	// fence; the profile must attribute idle stalls to it, and class
	// fence sites must also appear (three queue-fence sites).
	var globalSites, classSites int
	var globalIdle uint64
	for _, s := range res.Profile {
		switch s.Scope {
		case "fence.global":
			globalSites++
			globalIdle += s.IdleCycles
		case "fence.class":
			classSites++
		}
	}
	if globalSites != 1 {
		t.Errorf("expected exactly 1 global fence site, got %d", globalSites)
	}
	if classSites < 3 {
		t.Errorf("expected >=3 class fence sites (put/take/steal), got %d", classSites)
	}
	if globalIdle == 0 {
		t.Error("the application full fence recorded no idle stalls")
	}
}

func TestResultFenceStallFraction(t *testing.T) {
	r := Result{FenceStall: 25, CoreCycles: 100}
	if got := r.FenceStallFraction(); got != 0.25 {
		t.Errorf("fraction = %v, want 0.25", got)
	}
	if (Result{}).FenceStallFraction() != 0 {
		t.Error("zero-cycle result should have zero fraction")
	}
}

func TestLCGGoISAEquivalence(t *testing.T) {
	// barnes verification already proves this end to end; this pins the
	// Go-side helper against drift.
	x := int64(42)
	var idx int64
	x, idx = lcgNext(x, 1023)
	if idx < 0 || idx > 1023 {
		t.Errorf("lcgNext index %d out of range", idx)
	}
	x2, idx2 := lcgNext(x, 1023)
	if x2 == x || idx2 == idx && x2 == x {
		t.Error("lcgNext did not advance")
	}
}
