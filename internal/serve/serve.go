// Package serve turns the S-Fence reproduction into a long-running
// simulation service: an HTTP/JSON API over the experiment registry.
// Clients POST jobs (an experiment ID plus sizing/parallelism knobs) into
// a bounded worker pool, stream NDJSON progress events — per-experiment
// completion plus live simulated-cycles/s and fence-stall share read off
// the fast path by a counter-only observer — and fetch the finished
// schema-versioned BENCH envelope, byte-identical to what a direct Lab
// run produces (the simulator is deterministic; the serving layer adds
// no entropy to results).
//
// Per-job sessions share one results.RunCache, so identical jobs across
// tenants coalesce to a single simulation and repeats are served from
// cache; a bounded cache (NewRunCacheLimited) evicts least-recently-used
// disk records under byte pressure without ever touching an in-flight
// coalesced load.
//
// Endpoints:
//
//	POST   /v1/jobs              submit  (202 + JobStatus; 503 when the queue is full or draining)
//	GET    /v1/jobs/{id}         status
//	DELETE /v1/jobs/{id}         cancel (propagates into the cycle loop)
//	GET    /v1/jobs/{id}/events  NDJSON event stream until the job is terminal
//	GET    /v1/jobs/{id}/result  the BENCH envelope (409 until done)
//	GET    /v1/experiments       the registry specs
//	GET    /healthz              "ok", or 503 while draining
//	GET    /statsz               stats-registry snapshot: queue depth, job and cache counters
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sfence/internal/exp"
	"sfence/internal/results"
	"sfence/internal/stats"
)

// Options configure a Server.
type Options struct {
	// Cache is the shared run cache every job's session memoizes
	// through; nil serves every job by direct simulation.
	Cache *results.RunCache
	// Scale is the default experiment sizing for jobs that do not name
	// one (exp.Quick or exp.Full).
	Scale exp.Scale
	// Workers is the number of concurrently running jobs (the worker
	// pool width); 0 defaults to GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// 0 defaults to 16. Submits beyond it are rejected with 503.
	QueueDepth int
	// MaxJobTimeout caps (and, for requests that set none, supplies)
	// the per-job timeout. 0 = no cap and no default timeout.
	MaxJobTimeout time.Duration
	// WrapRunner, when non-nil, wraps every job's fully composed runner
	// (observer + cache). It exists for tests — fault injection and
	// deterministic pool-saturation — and for extra instrumentation.
	WrapRunner func(exp.Runner) exp.Runner
}

// Server is the simulation service: a bounded job queue, a worker pool
// of per-job experiment sessions over one shared cache, and the HTTP
// handler exposing them. Create with NewServer, serve via Handler, stop
// with Drain (graceful) or Close (immediate).
type Server struct {
	opts  Options
	cache *results.RunCache
	mux   *http.ServeMux
	reg   *stats.Registry

	baseCtx    context.Context
	baseCancel context.CancelFunc

	// submitMu orders submits against drain: submits hold the read
	// lock to check draining and send on queue; Drain holds the write
	// lock to flip draining and close the queue, so no send can race
	// the close.
	submitMu sync.RWMutex
	draining bool
	queue    chan *job
	wg       sync.WaitGroup

	jobsMu sync.Mutex
	jobs   map[string]*job
	nextID atomic.Uint64

	submitted atomic.Uint64
	completed atomic.Uint64
	failed    atomic.Uint64
	canceled  atomic.Uint64
	rejected  atomic.Uint64
	running   atomic.Int64
}

// NewServer builds the service and starts its worker pool.
func NewServer(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:       opts,
		cache:      opts.Cache,
		baseCtx:    ctx,
		baseCancel: cancel,
		queue:      make(chan *job, opts.QueueDepth),
		jobs:       make(map[string]*job),
	}
	s.reg = s.buildRegistry()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperiments)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Handler returns the HTTP handler serving the API.
func (s *Server) Handler() http.Handler { return s.mux }

// StatsRegistry returns the server's observability registry (queue,
// job, and cache counters); snapshot it for /statsz-equivalent data
// in-process.
func (s *Server) StatsRegistry() *stats.Registry { return s.reg }

// Workers returns the resolved worker-pool width (max concurrent jobs).
func (s *Server) Workers() int { return s.opts.Workers }

// buildRegistry registers the service counters. Everything is a Derived
// closure over atomics (or the cache's own counters), so snapshots are
// safe against the worker pool's concurrent increments.
func (s *Server) buildRegistry() *stats.Registry {
	reg := stats.NewRegistry()
	root := reg.Root().Sub("serve")

	jobs := root.Sub("jobs")
	jobs.Derived("submitted", "jobs accepted into the queue", s.submitted.Load)
	jobs.Derived("completed", "jobs finished successfully", s.completed.Load)
	jobs.Derived("failed", "jobs that returned an error (timeouts included)", s.failed.Load)
	jobs.Derived("canceled", "jobs cancelled by DELETE, disconnect, or shutdown", s.canceled.Load)
	jobs.Derived("rejected", "submits refused because the queue was full or draining", s.rejected.Load)
	jobs.Derived("running", "jobs currently executing", func() uint64 { return uint64(s.running.Load()) })

	queue := root.Sub("queue")
	queue.Derived("depth", "jobs waiting in the bounded queue", func() uint64 { return uint64(len(s.queue)) })
	queue.Derived("capacity", "bounded queue capacity", func() uint64 { return uint64(cap(s.queue)) })
	queue.Derived("workers", "worker pool width (max concurrent jobs)", func() uint64 { return uint64(s.opts.Workers) })

	if s.cache != nil {
		cache := root.Sub("cache")
		stat := func(f func(results.CacheStats) uint64) func() uint64 {
			return func() uint64 { return f(s.cache.Stats()) }
		}
		cache.Derived("hits", "run-cache hits (memory + disk)", stat(func(st results.CacheStats) uint64 { return st.Hits }))
		cache.Derived("mem_hits", "run-cache memory-tier hits (coalesced waits included)", stat(func(st results.CacheStats) uint64 { return st.MemHits }))
		cache.Derived("disk_hits", "run-cache disk-tier hits", stat(func(st results.CacheStats) uint64 { return st.DiskHits }))
		cache.Derived("misses", "simulations actually executed", stat(func(st results.CacheStats) uint64 { return st.Misses }))
		cache.Derived("evictions", "disk records evicted by the LRU byte budget", stat(func(st results.CacheStats) uint64 { return st.Evictions }))
		cache.Derived("write_errors", "run records that could not be persisted", stat(func(st results.CacheStats) uint64 { return st.WriteErrors }))
		cache.Derived("disk_bytes", "current disk-tier occupancy in bytes", stat(func(st results.CacheStats) uint64 { return uint64(st.DiskBytes) }))
		cache.Derived("disk_entries", "current disk-tier record count", stat(func(st results.CacheStats) uint64 { return uint64(st.DiskEntries) }))
		cache.Derived("max_disk_bytes", "disk-tier byte budget (0 = unbounded)", func() uint64 { return uint64(s.cache.MaxDiskBytes()) })
	}
	return reg
}

// worker drains the job queue until it is closed by Drain/Close.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// effectiveTimeoutMs applies the server's cap to a requested timeout.
func (s *Server) effectiveTimeoutMs(requested int64) int64 {
	maxMs := s.opts.MaxJobTimeout.Milliseconds()
	if maxMs <= 0 {
		return requested
	}
	if requested <= 0 || requested > maxMs {
		return maxMs
	}
	return requested
}

// Drain gracefully stops the service: new submits are rejected with 503
// (and /healthz turns 503), queued and running jobs are allowed to
// finish. If ctx expires first, the remaining jobs are cancelled through
// their contexts — the cycle loops observe it mid-run — and Drain
// returns ctx.Err() after they unwind. Drain is idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.submitMu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.submitMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close stops the service immediately: running jobs are cancelled.
func (s *Server) Close() {
	s.baseCancel()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx) //nolint:errcheck // the expired ctx only forces the cancel path
}

// ExperimentInfo is one /v1/experiments entry.
type ExperimentInfo struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	Kind     string `json:"kind"`
	Artifact string `json:"artifact,omitempty"`
	InSuite  bool   `json:"inSuite"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := results.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encode response"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.jobsMu.Lock()
	j := s.jobs[id]
	s.jobsMu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", id))
	}
	return j
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req JobRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	spec, err := results.LookupExperiment(req.Experiment)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	scale := s.opts.Scale
	switch req.Scale {
	case "":
	case "quick":
		scale = exp.Quick
	case "full":
		scale = exp.Full
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown scale %q (want \"quick\" or \"full\")", req.Scale))
		return
	}
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "default"
	}

	id := fmt.Sprintf("j%d", s.nextID.Add(1))
	j := newJob(id, tenant, req, spec, scale, s.baseCtx)

	// Register before enqueueing so a worker can never pick up a job
	// that handlers cannot yet resolve.
	s.jobsMu.Lock()
	s.jobs[id] = j
	s.jobsMu.Unlock()

	s.submitMu.RLock()
	accepted, full := false, false
	if !s.draining {
		select {
		case s.queue <- j:
			accepted = true
		default:
			full = true
		}
	}
	s.submitMu.RUnlock()

	if !accepted {
		s.jobsMu.Lock()
		delete(s.jobs, id)
		s.jobsMu.Unlock()
		j.cancel()
		s.rejected.Add(1)
		if full {
			writeError(w, http.StatusServiceUnavailable, "job queue full")
		} else {
			writeError(w, http.StatusServiceUnavailable, "server draining")
		}
		return
	}
	s.submitted.Add(1)
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookupJob(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.status())
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

// handleEvents streams the job's events as NDJSON: full history first,
// then live until the job is terminal or the client disconnects. A
// disconnect detaches the watcher; for CancelOnDisconnect jobs the last
// detach cancels the job.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	flusher, _ := w.(http.Flusher)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	j.attachWatcher()
	defer j.detachWatcher()

	enc := json.NewEncoder(w)
	idx := 0
	for {
		j.mu.Lock()
		batch := j.events[idx:]
		idx = len(j.events)
		notify := j.notify
		terminal := terminalState(j.state)
		j.mu.Unlock()

		for _, ev := range batch {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		if len(batch) > 0 && flusher != nil {
			flusher.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-notify:
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.lookupJob(w, r)
	if j == nil {
		return
	}
	j.mu.Lock()
	state, errMsg, result := j.state, j.errMsg, j.result
	j.mu.Unlock()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "application/json")
		w.Write(result)
	case StateFailed:
		writeError(w, http.StatusInternalServerError, errMsg)
	case StateCanceled:
		writeError(w, http.StatusGone, "job canceled: "+errMsg)
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s is %s; stream /v1/jobs/%s/events and retry when done", j.id, state, j.id))
	}
}

func (s *Server) handleExperiments(w http.ResponseWriter, _ *http.Request) {
	specs := results.Experiments()
	infos := make([]ExperimentInfo, len(specs))
	for i, spec := range specs {
		infos[i] = ExperimentInfo{
			ID:       spec.ID,
			Title:    spec.Title,
			Kind:     spec.Kind,
			Artifact: spec.Artifact,
			InSuite:  spec.InSuite(),
		}
	}
	writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.submitMu.RLock()
	draining := s.draining
	s.submitMu.RUnlock()
	if draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStatsz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.reg.Snapshot())
}
