// Package scopecheck is the compiler side of fence scoping: a static
// analysis over multi-thread isa.Program scenarios that verifies and
// infers class/set fence scopes.
//
// The paper derives scopes statically — class scopes from compiler
// analysis of synchronized regions, set scopes from checked annotations —
// but the repository's kernels, litmus tests, and generated scenarios are
// hand-annotated, and nothing proved those annotations sound. This
// package closes that gap with three operations over a Scenario (one
// program, N threads, a set of declared memory regions):
//
//   - Analyze runs a per-thread abstract interpretation computing, for
//     every memory access, the set of locations it may touch, the class
//     brackets it was issued under, and whether it is still pending
//     (unordered by any earlier fence) at each fence site; cross-thread
//     footprints then classify locations as thread-escaping (written by
//     one thread, read or written by another).
//   - Verify flags class/set-scoped fences whose required ordering set
//     leaks outside their scope (unsound — Error) and global fences whose
//     ordering set provably fits a narrower scope (over-scoped —
//     optimization Note).
//   - Infer rewrites the program with minimal safe scopes: every fence
//     becomes set-scoped and exactly the accesses that are escaping and
//     pending at some fence are flagged.
//
// The abstract domain and the soundness argument against the dynamic
// oracle are documented in DESIGN.md ("Static scope analysis").
package scopecheck

import (
	"fmt"
	"sort"

	"sfence/internal/isa"
)

// Sharing classifies a declared region's cross-thread visibility. It is
// only consulted when an address cannot be resolved concretely: an
// unresolvable (pointer-chased) address is attributed to every SharedRW
// region, under the contract that private and read-only regions are never
// reached through loaded pointers.
type Sharing uint8

const (
	// SharedRW regions are read and written by multiple threads.
	SharedRW Sharing = iota
	// ReadShared regions are written only by initialization (the host,
	// not a thread) and read by any thread; they can never be escaping.
	ReadShared
	// Private regions are used by a single thread.
	Private
)

func (s Sharing) String() string {
	switch s {
	case SharedRW:
		return "shared"
	case ReadShared:
		return "readshared"
	case Private:
		return "private"
	}
	return fmt.Sprintf("Sharing(%d)", uint8(s))
}

// Region is one named, contiguous, word-aligned span of the memory image.
// Regions give the analysis two things: a sound attribution target for
// addresses it cannot resolve (see Sharing), and bounds to widen
// loop-carried address ranges into instead of losing them to Top.
type Region struct {
	Name    string
	Base    int64 // byte address of the first word
	Words   int64 // length in 64-bit words
	Sharing Sharing
	Owner   int // owning thread for Private regions; -1 when unowned
}

// Contains reports whether the byte address lies inside the region.
func (r Region) Contains(addr int64) bool {
	return addr >= r.Base && addr < r.Base+8*r.Words
}

// Thread is one hardware thread of a scenario: an entry point of the
// shared program plus its initial register file (unlisted registers are
// zero, matching the machine).
type Thread struct {
	Entry string
	Regs  map[isa.Reg]int64
}

// Scenario is the unit of analysis: one program, the threads that run it,
// and the declared regions of its memory image.
type Scenario struct {
	Name    string
	Prog    *isa.Program
	Threads []Thread
	Regions []Region
}

// Severity ranks a finding.
type Severity uint8

const (
	// SevError marks an unsound annotation: a scoped fence provably does
	// not order an escaping access its synchronization domain requires.
	SevError Severity = iota
	// SevWarning marks a suspicious but not provably unsound annotation
	// (e.g. an escaping atomic RMW pending uncovered at a scoped fence).
	SevWarning
	// SevNote marks an optimization opportunity (an over-scoped global
	// fence) or an informational observation.
	SevNote
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevNote:
		return "note"
	}
	return fmt.Sprintf("Severity(%d)", uint8(s))
}

// Finding is one verification result, anchored to the fence (or access)
// instruction it concerns.
type Finding struct {
	Severity Severity
	Thread   int    // thread whose execution exhibits the finding
	PC       int    // instruction index of the fence (or access)
	Kind     string // "under-scope" | "over-scope" | "unordered-atomic" | "unscoped-escape"
	Msg      string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: thread %d pc %d [%s]: %s", f.Severity, f.Thread, f.PC, f.Kind, f.Msg)
}

// Report is the outcome of verifying one scenario.
type Report struct {
	Scenario string
	Findings []Finding

	// Escaping is a human-readable summary of the escaping location set.
	Escaping string
	// Fences is the number of fence sites analyzed (per thread reaching
	// them).
	Fences int
}

// Errors returns only the SevError findings.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Severity == SevError {
			out = append(out, f)
		}
	}
	return out
}

// HasErrors reports whether any finding is an error.
func (r *Report) HasErrors() bool { return len(r.Errors()) > 0 }

func (r *Report) String() string {
	s := fmt.Sprintf("scopecheck %s: %d findings (%d errors), %d fence sites, escaping: %s",
		r.Scenario, len(r.Findings), len(r.Errors()), r.Fences, r.Escaping)
	for _, f := range r.Findings {
		s += "\n  " + f.String()
	}
	return s
}

// sortFindings orders findings deterministically: severity, then thread,
// then pc, then message.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Severity != b.Severity {
			return a.Severity < b.Severity
		}
		if a.Thread != b.Thread {
			return a.Thread < b.Thread
		}
		if a.PC != b.PC {
			return a.PC < b.PC
		}
		return a.Msg < b.Msg
	})
}
