package memsys

import (
	"fmt"

	"sfence/internal/stats"
)

// CacheConfig describes one cache level. A level is either private (one
// bank per core, like the paper's L1s) or shared (a single bank all cores
// reach, like the paper's L2). The outermost shared level additionally
// holds the coherence directory.
type CacheConfig struct {
	SizeBytes int  // total capacity (per bank)
	Ways      int  // associativity
	LineBytes int  // line size
	Latency   int  // access latency in cycles
	Shared    bool // one bank shared by all cores (false = one bank per core)
}

// Sets returns the number of sets implied by the configuration.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

func (c CacheConfig) validate(name string) error {
	if c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0 || c.Latency < 0 {
		return fmt.Errorf("memsys: %s config has non-positive field: %+v", name, c)
	}
	if c.LineBytes%WordBytes != 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("memsys: %s line size %d must be a power-of-two multiple of %d", name, c.LineBytes, WordBytes)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("memsys: %s size %d not divisible by ways*line (%d*%d)", name, c.SizeBytes, c.Ways, c.LineBytes)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("memsys: %s set count %d must be a power of two", name, sets)
	}
	return nil
}

// MaxLevels bounds the configurable hierarchy depth.
const MaxLevels = 8

// Config describes the whole hierarchy as an ordered list of cache
// levels, innermost first: Levels[0] is the L1, Levels[len-1] the last
// level before memory. Private levels must form a prefix and shared
// levels a suffix (a private cache behind a shared one has no physical
// meaning), the innermost level must be private, and the outermost must
// be shared — it carries the coherence directory. The defaults in
// DefaultConfig mirror Table III of the paper.
type Config struct {
	Levels []CacheConfig
	// MemLatency is the DRAM round-trip latency in cycles.
	MemLatency int
	// RemoteDirtyPenalty is the extra latency when the line must be
	// fetched from another core's modified private copy.
	RemoteDirtyPenalty int
}

// DefaultConfig returns the paper's Table III memory-system parameters:
// private 32 KB 4-way L1 with 2-cycle latency, shared 1 MB 8-way L2 with
// 10-cycle latency, and 300-cycle memory.
func DefaultConfig() Config {
	return Config{
		Levels: []CacheConfig{
			{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, Latency: 2},
			{SizeBytes: 1 << 20, Ways: 8, LineBytes: 64, Latency: 10, Shared: true},
		},
		MemLatency:         300,
		RemoteDirtyPenalty: 10,
	}
}

// DepthConfig returns the canonical hierarchy of the given depth used by
// the fig-depth sweep. Depth 2 is DefaultConfig (Table III) exactly;
// depth 3 inserts a private 256 KB L2 and widens the shared last level to
// 4 MB; depth 4 additionally splits the shared side into a 2 MB L3 and an
// 8 MB last level. Per-level latencies grow with capacity so a deeper
// hierarchy trades a slower last level for extra filtering, the same
// trade Figure 15 makes with memory latency. Depths outside [2,4] panic:
// callers pass literals, so an out-of-range depth is a programming error.
func DepthConfig(depth int) Config {
	cfg := Config{MemLatency: 300, RemoteDirtyPenalty: 10}
	l1 := CacheConfig{SizeBytes: 32 << 10, Ways: 4, LineBytes: 64, Latency: 2}
	switch depth {
	case 2:
		return DefaultConfig()
	case 3:
		cfg.Levels = []CacheConfig{
			l1,
			{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, Latency: 6},
			{SizeBytes: 4 << 20, Ways: 16, LineBytes: 64, Latency: 24, Shared: true},
		}
	case 4:
		cfg.Levels = []CacheConfig{
			l1,
			{SizeBytes: 256 << 10, Ways: 8, LineBytes: 64, Latency: 6},
			{SizeBytes: 2 << 20, Ways: 8, LineBytes: 64, Latency: 14, Shared: true},
			{SizeBytes: 8 << 20, Ways: 16, LineBytes: 64, Latency: 36, Shared: true},
		}
	default:
		panic(fmt.Sprintf("memsys: DepthConfig(%d) out of range [2,4]", depth))
	}
	return cfg
}

// Depth returns the number of cache levels.
func (c Config) Depth() int { return len(c.Levels) }

// Validate checks structural constraints.
func (c Config) Validate() error {
	if n := len(c.Levels); n < 2 || n > MaxLevels {
		return fmt.Errorf("memsys: %d cache levels out of range [2,%d]", n, MaxLevels)
	}
	seenShared := false
	for k, lv := range c.Levels {
		name := fmt.Sprintf("L%d", k+1)
		if err := lv.validate(name); err != nil {
			return err
		}
		if lv.LineBytes != c.Levels[0].LineBytes {
			return fmt.Errorf("memsys: L1 line %d != %s line %d", c.Levels[0].LineBytes, name, lv.LineBytes)
		}
		if seenShared && !lv.Shared {
			return fmt.Errorf("memsys: %s is private outside a shared level; private levels must be innermost", name)
		}
		seenShared = seenShared || lv.Shared
	}
	if c.Levels[0].Shared {
		return fmt.Errorf("memsys: L1 must be private (per core)")
	}
	if !c.Levels[len(c.Levels)-1].Shared {
		return fmt.Errorf("memsys: the outermost level must be shared (it holds the directory)")
	}
	if c.MemLatency < 0 || c.RemoteDirtyPenalty < 0 {
		return fmt.Errorf("memsys: negative latency")
	}
	return nil
}

// Innermost-level (L1) line states.
const (
	l1Invalid uint8 = iota
	l1Shared
	l1Exclusive // clean, sole owner (E of MESI)
	l1Modified
)

type l1Line struct {
	tag   int64
	state uint8
	lru   uint64
}

// l1Cache is one core's innermost cache — the only level carrying MESI
// ownership state; outer levels are tag stores (tagStore).
type l1Cache struct {
	cfg   CacheConfig
	sets  int
	lines []l1Line // sets*ways
	tick  uint64
}

// tagLine is one line of an outer level. The directory fields (sharers,
// owner, dirty) are maintained only at the outermost shared level; middle
// levels use just tag/valid/dirty/lru.
type tagLine struct {
	tag     int64
	valid   bool
	dirty   bool
	sharers sharerSet // cores with a private copy (S/E/M)
	owner   int16     // core index holding E/M, or -1
	lru     uint64
}

// reset re-points the line at tag with empty directory state, keeping
// the sharer set's extension pages for reuse. The caller touches the
// line afterwards, so the stale lru stamp never survives.
func (l *tagLine) reset(tag int64) {
	l.tag = tag
	l.valid = true
	l.dirty = false
	l.sharers.clear()
	l.owner = -1
}

// tagStore is one bank of an outer cache level: the single array of a
// shared level, or one core's slice of a private level.
type tagStore struct {
	cfg   CacheConfig
	sets  int
	lines []tagLine
	tick  uint64
}

// outerLevel is one cache level beyond the innermost: a banked tag store.
type outerLevel struct {
	cfg   CacheConfig
	banks []tagStore // one per core when private, a single bank when shared
}

// bank returns the tag store the given core reaches at this level.
func (lv *outerLevel) bank(core int) *tagStore {
	if lv.cfg.Shared {
		return &lv.banks[0]
	}
	return &lv.banks[core]
}

// LevelStats is one cache level's hit/miss pair for one core.
type LevelStats struct {
	Hits   stats.Counter
	Misses stats.Counter
}

// CoreStats counts memory-system events for one core. Fields are
// registry-typed (stats.Counter) and published into the machine's stats
// registry by RegisterStats; CI's stale-counter gate keeps raw counter
// fields from creeping back in.
type CoreStats struct {
	Loads  stats.Counter
	Stores stats.Counter
	// Level holds this core's per-level hit/miss counters, innermost
	// first: Level[k] describes the L(k+1) cache, registered as
	// coreN.mem.l<k+1>_hits / l<k+1>_misses.
	Level         []LevelStats
	Upgrades      stats.Counter // S->M ownership upgrades
	Invalidations stats.Counter // private-level lines invalidated by others
	Writebacks    stats.Counter // dirty private-level evictions
	RemoteDirty   stats.Counter // misses serviced from another core's M line
}

// register publishes the counters into g under stable dotted names: the
// per-level pairs as l<k>_hits / l<k>_misses (1-based, innermost first),
// everything else under its historical name.
func (s *CoreStats) register(g *stats.Group) {
	g.Counter(&s.Loads, "loads", "demand loads reaching the hierarchy")
	g.Counter(&s.Stores, "stores", "stores and CAS read-for-ownership accesses")
	for k := range s.Level {
		n := k + 1
		g.Counter(&s.Level[k].Hits, fmt.Sprintf("l%d_hits", n), fmt.Sprintf("L%d hits", n))
		missDesc := fmt.Sprintf("L%d misses", n)
		if k == len(s.Level)-1 {
			missDesc += " (memory fetches)"
		}
		g.Counter(&s.Level[k].Misses, fmt.Sprintf("l%d_misses", n), missDesc)
	}
	g.Counter(&s.Upgrades, "upgrades", "S->M ownership upgrades")
	g.Counter(&s.Invalidations, "invalidations", "private-level lines invalidated by other cores")
	g.Counter(&s.Writebacks, "writebacks", "dirty private-level evictions")
	g.Counter(&s.RemoteDirty, "remote_dirty", "misses serviced from another core's modified line")
}

// Hierarchy is the shared N-level cache model. It is purely a timing and
// coherence-state model: Access returns the latency of an access and
// updates tag/directory state; values live in the Image. The hierarchy is
// inclusive — a line present at level k is present at every level outside
// k — which is what lets the single directory at the outermost level
// stand in for per-level coherence state.
type Hierarchy struct {
	cfg   Config
	cores int
	inner []l1Cache    // innermost private level, one per core (MESI)
	outer []outerLevel // levels 2..N, outermost last (holds the directory)
	stats []CoreStats

	// ver[c] counts SELF-induced mutations of core c's view of the
	// hierarchy: any access by c that is not an idempotent private hit
	// (misses, ownership upgrades, LRU movement). The cpu spin detector
	// compares it across loop iterations — a stable spin must perform
	// only idempotent hits. Remote actions are deliberately excluded:
	// they are reported address-by-address through OnDisturb, so a
	// spinning core is only perturbed by remote traffic on lines its
	// loop actually reads. Monitoring state only: not registered in the
	// stats registry.
	ver []uint64

	// OnDisturb, when set, is called whenever a remote action
	// (coherence invalidation, ownership downgrade, inclusive
	// back-invalidation) touches one of core's private copies, with the
	// line tag (see LineOf). The machine wires it to the cpu spin
	// detectors: a disturb on a line a spin loop reads — or any disturb
	// while a per-period statistics window is being captured, since the
	// disturb charges Invalidations/Writebacks to this core — must drop
	// the detection. Called synchronously from inside Access.
	OnDisturb func(core int, line int64)

	lineShift uint
}

// LineOf returns the cache line tag of a byte address — the unit at which
// OnDisturb reports remote coherence actions.
func (h *Hierarchy) LineOf(addr int64) int64 { return addr >> h.lineShift }

// disturb reports a remote action on one of core's private copies.
func (h *Hierarchy) disturb(core int, line int64) {
	if h.OnDisturb != nil {
		h.OnDisturb(core, line)
	}
}

// NewHierarchy builds a hierarchy for the given core count.
func NewHierarchy(cores int, cfg Config) (*Hierarchy, error) {
	if cores <= 0 || cores > MaxCores {
		return nil, fmt.Errorf("memsys: core count %d out of range [1,%d]", cores, MaxCores)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{cfg: cfg, cores: cores, stats: make([]CoreStats, cores), ver: make([]uint64, cores)}
	for i := range h.stats {
		h.stats[i].Level = make([]LevelStats, len(cfg.Levels))
	}
	for lb := cfg.Levels[0].LineBytes; lb > 1; lb >>= 1 {
		h.lineShift++
	}
	h.inner = make([]l1Cache, cores)
	for i := range h.inner {
		h.inner[i] = l1Cache{
			cfg:   cfg.Levels[0],
			sets:  cfg.Levels[0].Sets(),
			lines: make([]l1Line, cfg.Levels[0].Sets()*cfg.Levels[0].Ways),
		}
	}
	h.outer = make([]outerLevel, len(cfg.Levels)-1)
	for j := range h.outer {
		lcfg := cfg.Levels[j+1]
		nbanks := 1
		if !lcfg.Shared {
			nbanks = cores
		}
		lv := outerLevel{cfg: lcfg, banks: make([]tagStore, nbanks)}
		for b := range lv.banks {
			lv.banks[b] = tagStore{
				cfg:   lcfg,
				sets:  lcfg.Sets(),
				lines: make([]tagLine, lcfg.Sets()*lcfg.Ways),
			}
			for i := range lv.banks[b].lines {
				lv.banks[b].lines[i].owner = -1
			}
		}
		h.outer[j] = lv
	}
	return h, nil
}

// MustHierarchy is NewHierarchy that panics on error.
func MustHierarchy(cores int, cfg Config) *Hierarchy {
	h, err := NewHierarchy(cores, cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// Config returns the hierarchy configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// Depth returns the number of cache levels.
func (h *Hierarchy) Depth() int { return len(h.cfg.Levels) }

// LevelConfig returns the configuration of level k (0-based, innermost
// first).
func (h *Hierarchy) LevelConfig(k int) CacheConfig { return h.cfg.Levels[k] }

// directory returns the outermost level's single shared bank — the home
// of the coherence directory.
func (h *Hierarchy) directory() *tagStore { return &h.outer[len(h.outer)-1].banks[0] }

// Stats returns the per-core statistics accumulated so far. The Level
// slice aliases the live counters; treat the result as read-only.
func (h *Hierarchy) Stats(core int) CoreStats { return h.stats[core] }

// RegisterStats publishes one core's memory-system counters into g
// (typically the machine registry's "coreN.mem" group).
func (h *Hierarchy) RegisterStats(g *stats.Group, core int) { h.stats[core].register(g) }

// LevelHits sums hits at level k (0-based) across cores.
func (h *Hierarchy) LevelHits(k int) uint64 {
	var t uint64
	for i := range h.stats {
		t += h.stats[i].Level[k].Hits.Get()
	}
	return t
}

// LevelMisses sums misses at level k (0-based) across cores.
func (h *Hierarchy) LevelMisses(k int) uint64 {
	var t uint64
	for i := range h.stats {
		t += h.stats[i].Level[k].Misses.Get()
	}
	return t
}

// TotalStats sums statistics across cores.
func (h *Hierarchy) TotalStats() CoreStats {
	t := CoreStats{Level: make([]LevelStats, len(h.cfg.Levels))}
	for i := range h.stats {
		s := &h.stats[i]
		t.Loads += s.Loads
		t.Stores += s.Stores
		for k := range s.Level {
			t.Level[k].Hits += s.Level[k].Hits
			t.Level[k].Misses += s.Level[k].Misses
		}
		t.Upgrades += s.Upgrades
		t.Invalidations += s.Invalidations
		t.Writebacks += s.Writebacks
		t.RemoteDirty += s.RemoteDirty
	}
	return t
}

func (h *Hierarchy) lineOf(addr int64) int64 { return addr >> h.lineShift }

// Sharers returns the directory's sharer set for the line containing
// addr as a sorted core-index slice — the cores whose private levels may
// hold a copy — and whether the line is present in the directory at all
// (an absent line means the set is unknown and callers must assume every
// core). The cost is O(sharers), independent of the machine's core
// count.
//
// Note the set is a snapshot, not a history: a write Access to the line
// resets it to the writer alone, and a last-level eviction discards it,
// while loads that used the line may still be in flight in some core's
// ROB. Machine.broadcastStore therefore does NOT use it as a snoop filter
// — doing so could skip a core holding a speculative load that must
// replay — and relies on the exact per-core spec-load occupancy count
// instead (see DESIGN.md, "Snoop filtering").
func (h *Hierarchy) Sharers(addr int64) ([]int, bool) {
	if l := h.directory().find(h.lineOf(addr)); l != nil {
		return l.sharers.members(), true
	}
	return nil, false
}

// SharersBesides reports whether the directory names any core other than
// core as a sharer of addr's line. An absent directory entry is
// conservatively reported as shared: the set is unknown, so callers must
// assume another core holds a copy. The probe is read-only — no LRU
// movement, no stats — so the parallel engine's hazard scan can call it
// without perturbing the simulation.
func (h *Hierarchy) SharersBesides(core int, addr int64) bool {
	if l := h.directory().find(h.lineOf(addr)); l != nil {
		return l.sharers.anyBesides(core)
	}
	return true
}

// LocalHit reports whether an access by core to addr would be a pure
// private-L1 hit: a read of any valid line, or a write to a Modified or
// Exclusive line (the silent E→M upgrade). Exactly these accesses touch
// only core-indexed state (the core's own L1 bank, ver[core],
// stats[core]) inside Access — a Shared-write upgrade travels to the
// directory and so reports false. The probe is read-only; the machine's
// parallel epochs use it to fence cores off the shared levels.
func (h *Hierarchy) LocalHit(core int, addr int64, write bool) bool {
	l := h.inner[core].find(h.lineOf(addr))
	if l == nil {
		return false
	}
	return !write || l.state == l1Modified || l.state == l1Exclusive
}

// --- innermost-level helpers ---

func (c *l1Cache) find(line int64) *l1Line {
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if l.state != l1Invalid && l.tag == line {
			return l
		}
	}
	return nil
}

// victim returns the line to fill (an invalid way if any, else LRU).
func (c *l1Cache) victim(line int64) *l1Line {
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	var v *l1Line
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if l.state == l1Invalid {
			return l
		}
		if v == nil || l.lru < v.lru {
			v = l
		}
	}
	return v
}

// stamp unconditionally marks l most recently used. Fills must use it:
// the victim way's lru field is stale (the previous occupant's, or zero),
// so the MRU shortcut in touch would mis-order a line filled into a
// near-empty set.
func (c *l1Cache) stamp(l *l1Line) {
	c.tick++
	l.lru = c.tick
}

// touch marks an already-resident line most recently used and reports
// whether any cache state actually changed. When l is already the MRU
// line of its set the update is skipped entirely: the recency ORDER — the
// only thing victim selection reads — is unchanged either way (valid
// lines carry distinct stamps, so the maximum is unique), and skipping
// makes a steady-state hit a true no-op. That idempotence is what the
// spin detector's stability check relies on: a core looping on L1 hits
// leaves the hierarchy bit-identical whether the iterations run or are
// skipped.
func (c *l1Cache) touch(l *l1Line) bool {
	set := int(l.tag) & (c.sets - 1)
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		o := &c.lines[base+i]
		if o != l && o.state != l1Invalid && o.lru > l.lru {
			c.stamp(l)
			return true
		}
	}
	return false
}

// --- outer-level helpers ---

func (c *tagStore) find(line int64) *tagLine {
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if l.valid && l.tag == line {
			return l
		}
	}
	return nil
}

func (c *tagStore) victim(line int64) *tagLine {
	set := int(line) & (c.sets - 1)
	base := set * c.cfg.Ways
	var v *tagLine
	for i := 0; i < c.cfg.Ways; i++ {
		l := &c.lines[base+i]
		if !l.valid {
			return l
		}
		if v == nil || l.lru < v.lru {
			v = l
		}
	}
	return v
}

func (c *tagStore) touch(l *tagLine) {
	c.tick++
	l.lru = c.tick
}

// dropPrivateMiddleCopies silently removes the line from core's private
// levels beyond the innermost one (no stats: the caller accounts for the
// coherence event itself, or the drop is the core's own eviction).
func (h *Hierarchy) dropPrivateMiddleCopies(core int, line int64) {
	for j := range h.outer {
		if h.outer[j].cfg.Shared {
			break // private levels are a prefix
		}
		if l := h.outer[j].banks[core].find(line); l != nil {
			l.valid = false
		}
	}
}

// invalidatePrivateCopies removes the line from every private level of
// every core named in the sharer set (back-invalidation or coherence
// invalidation), charging the Invalidations stat once per core losing a
// copy and Writebacks for a modified innermost copy. The walk visits
// sharers in ascending core order — the same order the historical
// all-cores loop produced — but costs O(sharers), not O(cores).
func (h *Hierarchy) invalidatePrivateCopies(line int64, sharers *sharerSet, except int) {
	sharers.forEach(func(c int) {
		if c == except || c >= h.cores {
			return
		}
		found := false
		if l := h.inner[c].find(line); l != nil {
			if l.state == l1Modified {
				h.stats[c].Writebacks++
			}
			l.state = l1Invalid
			found = true
		}
		for j := range h.outer {
			if h.outer[j].cfg.Shared {
				break // private levels are a prefix
			}
			if l := h.outer[j].banks[c].find(line); l != nil {
				l.valid = false
				found = true
			}
		}
		if found {
			h.stats[c].Invalidations++
			h.disturb(c, line)
		}
	})
}

// markOuterDirty records a writeback of tag into the nearest level at or
// beyond outer index fromOuter that holds the line along core's path.
func (h *Hierarchy) markOuterDirty(fromOuter, core int, tag int64) {
	for j := fromOuter; j < len(h.outer); j++ {
		if l := h.outer[j].bank(core).find(tag); l != nil {
			l.dirty = true
			return
		}
	}
}

// evictOuter removes victim v from outer level j ahead of a refill,
// preserving inclusion: evicting from a shared level drops the line from
// every inner level (private copies via the directory mask), evicting
// from one core's private bank drops only that core's inner copies —
// silently, mirroring the innermost victim path (the directory bit goes
// stale; a later invalidation of the stale sharer is a harmless no-op).
func (h *Hierarchy) evictOuter(j, core int, v *tagLine) {
	if h.outer[j].cfg.Shared {
		mask := &v.sharers
		if j != len(h.outer)-1 {
			// Middle shared level: the set lives at the directory; an
			// absent directory entry means assume every core.
			if dl := h.directory().find(v.tag); dl != nil {
				mask = &dl.sharers
			} else {
				var all sharerSet
				all.fill(h.cores)
				mask = &all
			}
		}
		h.invalidatePrivateCopies(v.tag, mask, -1)
		for i := 0; i < j; i++ {
			if !h.outer[i].cfg.Shared {
				continue
			}
			if l := h.outer[i].banks[0].find(v.tag); l != nil {
				l.valid = false
			}
		}
		return
	}
	if l := h.inner[core].find(v.tag); l != nil {
		if l.state == l1Modified {
			h.stats[core].Writebacks++
		}
		l.state = l1Invalid
	}
	for i := 0; i < j; i++ {
		if l := h.outer[i].banks[core].find(v.tag); l != nil {
			l.valid = false
		}
	}
	if v.dirty {
		// The victim's data drains outward, not to memory: dirty the next
		// outer copy (present by inclusion).
		h.markOuterDirty(j+1, core, v.tag)
	}
}

// pathLatency sums the access latencies from the innermost level through
// the directory — the cost of an ownership request that must reach the
// coherence point.
func (h *Hierarchy) pathLatency() int {
	lat := h.cfg.Levels[0].Latency
	for j := range h.outer {
		lat += h.outer[j].cfg.Latency
	}
	return lat
}

// Access simulates one memory access by `core` to byte address addr and
// returns its latency in cycles. write=true covers stores and the
// read-for-ownership of CAS.
//
// The walk is generic over hierarchy depth: an access missing the
// innermost level probes each outer level along the core's path (its own
// private banks, then the shared levels) until the line is found or
// memory supplies it, accumulating each probed level's latency; writes
// additionally travel on to the directory for ownership. The fill
// installs the line at every level between the supply point and the
// core. With the default two-level configuration every path below
// reduces exactly to the paper's private-L1 / shared-L2+directory model.
func (h *Hierarchy) Access(core int, addr int64, write bool) int {
	line := h.lineOf(addr)
	st := &h.stats[core]
	if write {
		st.Stores++
	} else {
		st.Loads++
	}
	l1 := &h.inner[core]
	if l := l1.find(line); l != nil {
		if l1.touch(l) {
			h.ver[core]++
		}
		switch {
		case !write: // read hit in any valid state
			st.Level[0].Hits++
			return h.cfg.Levels[0].Latency
		case l.state == l1Modified:
			st.Level[0].Hits++
			return h.cfg.Levels[0].Latency
		case l.state == l1Exclusive: // silent E->M upgrade
			l.state = l1Modified
			h.ver[core]++
			st.Level[0].Hits++
			return h.cfg.Levels[0].Latency
		default: // Shared write: upgrade through the directory
			h.ver[core]++
			st.Level[0].Hits++
			st.Upgrades++
			lat := h.pathLatency()
			if dl := h.directory().find(line); dl != nil {
				h.invalidatePrivateCopies(line, &dl.sharers, core)
				dl.sharers.only(core)
				dl.owner = int16(core)
				dl.dirty = true
				h.directory().touch(dl)
			}
			l.state = l1Modified
			return lat
		}
	}

	// Innermost miss: walk the outer levels until the line is found.
	h.ver[core]++
	st.Level[0].Misses++
	lat := h.cfg.Levels[0].Latency
	hitJ := -1
	for j := 0; j < len(h.outer); j++ {
		lat += h.outer[j].cfg.Latency
		if l := h.outer[j].bank(core).find(line); l != nil {
			st.Level[j+1].Hits++
			hitJ = j
			break
		}
		st.Level[j+1].Misses++
	}
	if write && hitJ >= 0 {
		// A write supplied by an inner level still travels to the
		// directory for ownership.
		for j := hitJ + 1; j < len(h.outer); j++ {
			lat += h.outer[j].cfg.Latency
		}
	}

	dir := h.directory()
	var dl *tagLine
	if hitJ < 0 {
		// Missed everywhere: fetch from memory and install at the
		// directory level (evicting with back-invalidation to preserve
		// inclusion).
		lat += h.cfg.MemLatency
		v := dir.victim(line)
		if v.valid {
			h.evictOuter(len(h.outer)-1, core, v)
		}
		v.reset(line)
		dl = v
	} else {
		// The line is present at the directory by inclusion (the
		// defensive install covers a stale directory after reconfiguring
		// state by hand in tests).
		dl = dir.find(line)
		if dl == nil {
			v := dir.victim(line)
			if v.valid {
				h.evictOuter(len(h.outer)-1, core, v)
			}
			v.reset(line)
			dl = v
		}
		// If another core holds the line modified, it must supply the
		// data (and lose or downgrade its copy).
		if dl.owner >= 0 && int(dl.owner) != core {
			if ol := h.inner[dl.owner].find(line); ol != nil && (ol.state == l1Modified || ol.state == l1Exclusive) {
				h.disturb(int(dl.owner), line)
				if ol.state == l1Modified {
					lat += h.cfg.RemoteDirtyPenalty
					st.RemoteDirty++
					h.stats[dl.owner].Writebacks++
					dl.dirty = true
				}
				if write {
					// One coherence event: invalidate the owner's whole
					// private path here, charged once, so the directory
					// sweep below finds nothing left to count.
					ol.state = l1Invalid
					h.dropPrivateMiddleCopies(int(dl.owner), line)
					h.stats[dl.owner].Invalidations++
				} else {
					ol.state = l1Shared
				}
			}
			if !write {
				dl.owner = -1
			}
		}
	}
	dir.touch(dl)

	// Coherence action at the directory.
	if write {
		h.invalidatePrivateCopies(line, &dl.sharers, core)
		dl.sharers.only(core)
		dl.owner = int16(core)
		dl.dirty = true
	} else {
		dl.sharers.add(core)
		if !dl.sharers.lone(core) {
			dl.owner = -1
		}
	}

	// Install the line at every middle level between the supply point and
	// the core, evicting as needed. (A memory fetch was installed at the
	// directory above; a directory-level hit leaves no middle levels.)
	startJ := hitJ - 1
	if hitJ < 0 {
		startJ = len(h.outer) - 2
	}
	for j := startJ; j >= 0; j-- {
		b := h.outer[j].bank(core)
		if l := b.find(line); l != nil {
			b.touch(l)
			continue
		}
		v := b.victim(line)
		if v.valid {
			h.evictOuter(j, core, v)
		}
		v.reset(line)
		b.touch(v)
	}

	// Install in the innermost level, evicting as needed.
	v := l1.victim(line)
	if v.state != l1Invalid {
		if v.state == l1Modified {
			st.Writebacks++
			h.markOuterDirty(0, core, v.tag)
		}
		// Leave the old line's directory bit stale; a later invalidation
		// of the stale sharer is a harmless no-op.
		v.state = l1Invalid
	}
	v.tag = line
	switch {
	case write:
		v.state = l1Modified
	case dl.sharers.lone(core):
		v.state = l1Exclusive
		dl.owner = int16(core)
	default:
		v.state = l1Shared
	}
	l1.stamp(v)
	return lat
}
