package sfence

import (
	"context"

	"sfence/internal/exp"
	"sfence/internal/results"
)

// Lab is a session handle for running the paper's experiments: it owns
// its runner, run cache, progress sink, and worker pool, so all
// experiment state is per-session instead of per-process. Two Labs can
// run independent, cancellable evaluations concurrently in one process
// without stomping each other's cache, runner, or progress reporting —
// they share state only if they share a RunCache (which is itself safe
// for concurrent use and coalesces duplicate simulations).
//
// Build one with NewLab and functional options:
//
//	cache, _ := sfence.NewRunCache(".sfence-cache")
//	lab := sfence.NewLab(
//		sfence.WithCache(cache),
//		sfence.WithScale(sfence.Quick),
//		sfence.WithProgress(func(exp string, done, total int) { ... }),
//	)
//	res, err := lab.Run(ctx, "fig12")
//
// Every experiment is identified by a stable ID from Experiments()
// ("fig12", "table4", "ablation/fsb-entries", "simperf", ...); an unknown
// ID returns an *ErrUnknownExperiment listing the valid IDs. The context
// passed to Run and RunSuite cancels or time-boxes the simulations
// mid-cycle-loop (see Machine.Run).
type Lab struct {
	scale       Scale
	cache       *RunCache
	runner      ExperimentRunner
	progress    ExperimentProgress
	parallelism int
	workers     int

	session *exp.Session
}

// LabOption configures a Lab under construction.
type LabOption func(*Lab)

// WithCache memoizes every simulation of the Lab in c. Multiple Labs may
// share one cache; a nil cache means every simulation runs directly.
func WithCache(c *RunCache) LabOption { return func(l *Lab) { l.cache = c } }

// WithScale selects the experiment sizing (Quick or Full; default Full).
func WithScale(sc Scale) LabOption { return func(l *Lab) { l.scale = sc } }

// WithProgress installs a per-experiment progress callback, invoked
// concurrently from the Lab's worker pool.
func WithProgress(p ExperimentProgress) LabOption { return func(l *Lab) { l.progress = p } }

// WithParallelism bounds the Lab's worker pool (0 = GOMAXPROCS). Each
// simulation is an independent deterministic machine, so the pool width
// cannot change any result — only wall-clock time.
func WithParallelism(n int) LabOption { return func(l *Lab) { l.parallelism = n } }

// WithWorkers runs each simulation on the epoch-barriered parallel
// machine runner with n worker threads (n <= 1 keeps the sequential
// loop; experiments that set cfg.Parallel explicitly still win). The
// parallel runner is bit-identical to the sequential one, so this —
// like WithParallelism — only changes wall-clock time. The two compose:
// Parallelism spreads independent simulations across the pool, Workers
// parallelizes inside each wide machine, which pays off when a single
// many-core simulation dominates the schedule.
func WithWorkers(n int) LabOption { return func(l *Lab) { l.workers = n } }

// WithRunner overrides how the Lab executes simulations, taking
// precedence over WithCache. This is the session-scoped replacement for
// the long-gone global runner hook.
func WithRunner(r ExperimentRunner) LabOption { return func(l *Lab) { l.runner = r } }

// NewLab builds an experiment session from the given options. The
// defaults are Full scale, no cache, no progress reporting, and a
// GOMAXPROCS-wide worker pool.
func NewLab(opts ...LabOption) *Lab {
	l := &Lab{scale: Full}
	for _, opt := range opts {
		opt(l)
	}
	// Resolve the runner exactly once (explicit runner > cache > direct)
	// so Run and RunSuite cannot diverge on how simulations execute.
	if l.runner == nil && l.cache != nil {
		l.runner = l.cache.Run
	}
	l.session = exp.NewSession(l.runner, l.progress, l.parallelism).WithWorkers(l.workers)
	return l
}

// Scale returns the Lab's experiment sizing.
func (l *Lab) Scale() Scale { return l.scale }

// Cache returns the Lab's run cache (nil when uncached).
func (l *Lab) Cache() *RunCache { return l.cache }

// Experiments returns the experiment registry (see the package-level
// Experiments function).
func (l *Lab) Experiments() []ExperimentSpec { return Experiments() }

// Run executes one experiment by ID on this Lab's session and returns
// its payload bundled with the spec's encoder and renderer. An unknown
// ID returns an *ErrUnknownExperiment naming every valid ID; a cancelled
// context aborts the in-flight simulations and returns the context
// error, producing no result (and hence no artifact).
func (l *Lab) Run(ctx context.Context, id string) (*ExperimentResult, error) {
	spec, err := results.LookupExperiment(id)
	if err != nil {
		return nil, err
	}
	data, err := spec.Run(ctx, l.session, l.scale)
	if err != nil {
		return nil, err
	}
	return &ExperimentResult{Spec: spec, Scale: l.scale, Data: data}, nil
}

// RunSuite executes every deterministic experiment of the registry on a
// session configured like this Lab's and returns the aggregate Suite
// (the input to WriteArtifacts and ExperimentsMD). Cancelling ctx aborts
// the run with no partial Suite and therefore no artifacts.
func (l *Lab) RunSuite(ctx context.Context) (*Suite, error) {
	return results.RunSuite(ctx, results.SuiteOptions{
		Scale:       l.scale,
		Cache:       l.cache,
		Runner:      l.runner,
		Progress:    l.progress,
		Parallelism: l.parallelism,
		Workers:     l.workers,
	})
}

// ExperimentResult is one experiment's payload plus the self-describing
// spec that produced it.
type ExperimentResult struct {
	Spec  ExperimentSpec
	Scale Scale
	// Data is the experiment's structured payload; its concrete type is
	// the one the corresponding typed API returns (e.g. []SpeedupSeries
	// for "fig12", AblationSet for "ablation/*", SimPerfReport for
	// "simperf").
	Data any
}

// JSON encodes the payload as its schema-versioned artifact envelope.
func (r *ExperimentResult) JSON() ([]byte, error) { return r.Spec.JSON(r.Data, r.Scale) }

// Render formats the payload as the ASCII equivalent of the paper's
// chart or table.
func (r *ExperimentResult) Render() string { return r.Spec.Render(r.Data) }

// ExperimentSpec describes one registry experiment: stable ID, title,
// envelope kind, artifact name, and its run/encode/render functions.
type ExperimentSpec = results.ExperimentSpec

// ErrUnknownExperiment is returned by Lab.Run for an ID that is not in
// the registry; it lists every valid ID.
type ErrUnknownExperiment = results.ErrUnknownExperiment

// Experiments returns the uniform experiment registry keyed by stable
// IDs ("fig12" ... "fig16", "ablation/<name>", "table3", "table4",
// "hwcost", "simperf"). RunSuite, sfence-report, and sfence-bench all
// iterate this one table instead of hand-listing entry points.
func Experiments() []ExperimentSpec { return results.Experiments() }

// ExperimentIDs lists every registered experiment ID in registry order.
func ExperimentIDs() []string { return results.ExperimentIDs() }

// LookupExperiment resolves an experiment ID, returning an
// *ErrUnknownExperiment naming every valid ID on a miss.
func LookupExperiment(id string) (ExperimentSpec, error) { return results.LookupExperiment(id) }
