package cpu

import (
	"sfence/internal/isa"
	"sfence/internal/memsys"
)

// Parallel-epoch support. The machine's parallel runner executes each
// core independently from a common start cycle T to a horizon E, under
// one rule: every cache access must be a private-L1 hit (reads in any
// valid state, writes only in M or E — see memsys.Hierarchy.LocalHit).
// MESI makes that rule a proof of isolation: a core that only hits its
// own L1 cannot observe or influence any other core, and a store it
// drains targets a line no other core holds a valid copy of, so the
// Image writes of concurrent cores land on disjoint words.
//
// The first access that would leave the L1 latches epochBlocked instead
// of touching the hierarchy, and the whole epoch is discarded: every
// core restores the checkpoint taken by EpochBegin (EpochAbort), the
// Image words written in-epoch are undone from the per-core undo log,
// and the machine re-runs the span sequentially. An epoch therefore
// either commits with exactly the state per-cycle stepping would have
// produced, or leaves no trace at all.
//
// Cross-core notifications are provably dead inside an epoch and are
// suppressed while localOnly is set:
//
//   - OnStoreComplete (snoop + spin broadcast): an in-epoch drain's line
//     has no foreign valid copies, so no foreign in-flight load — and in
//     particular no speculative load — can have read a word of it; a
//     remote core's snoop scan for the address would match nothing. A
//     foreign spin orbit likewise cannot be reading the word (its loads
//     hit its own L1), so only the watch-overflow pessimism is lost —
//     clock policy, not architecture.
//   - OnDisturb never fires: no in-epoch access reaches the directory.
//
// Pre-epoch in-flight writes (issued store-buffer entries and executing
// CAS entries, which paid their hierarchy access before the epoch
// began) complete inside the epoch unconditionally, so the machine's
// hazard scan clamps the horizon to exclude any such completion whose
// line the directory says another core may still share — or whose line
// the directory no longer knows (ForEachPendingGlobalWrite exposes
// them). Pre-epoch speculative loads have no such clamp and instead
// veto the epoch entirely (SpecLoadsInFlight precondition in the
// machine): a replay they might need depends on remote-store timing the
// epoch cannot see.
type EpochState struct {
	regs   [isa.NumRegs]int64
	regTag [isa.NumRegs]int64

	entries    []robEntry
	head       uint64
	tail       uint64
	donePrefix uint64

	sb         []sbEntry
	sbInflight int

	// scope hardware (scopeHW minus its stable cfg/stats pointers)
	mapCID         []int64
	mapEntry       []uint8
	mapUsed        []bool
	fss            []uint8
	shadow         []uint8
	overflow       int
	shadowOverflow int
	shadowLag      bool
	forceFull      bool
	robCnt         []int
	robLoadCnt     []int
	sbCnt          []int

	predCounters []uint8
	predVer      uint64

	fetchPC       int
	redirectUntil int64

	haltInROB          int
	haltDone           bool
	unresolvedBranches int
	fenceSeqs          []uint64

	robIncompleteMem int
	robStoreCount    int
	specLoads        int
	casWaiting       int

	nextComplete int64
	nextSBDrain  int64
	schedDirty   bool
	wakePending  bool

	wakeHead  []int32
	wakeNext  []int32
	readyBits []uint64
	compHeap  []compNode

	progressed   bool
	accrual      stallAccrual
	snoopPending []int64

	stats   Stats
	profile map[int]FenceSite
	cycle   int64

	spinJumps   uint64
	spinSkipped uint64

	fenceStallSeen bool
	robFullSeen    bool
	sbFullSeen     bool

	mem memsys.CoreEpoch
}

// imgUndo records one Image word overwritten inside an epoch.
type imgUndo struct {
	addr int64
	old  int64
}

// epochCopy copies src into dst, reusing dst's backing array when it is
// large enough — EpochState buffers are recycled across epochs so the
// steady-state checkpoint allocates nothing.
func epochCopy[T any](dst, src []T) []T {
	if cap(dst) < len(src) {
		dst = make([]T, len(src))
	}
	dst = dst[:len(src)]
	copy(dst, src)
	return dst
}

// access is the gated hierarchy access every scheduler path goes
// through. Outside an epoch it is a plain Hierarchy.Access. Inside one
// (localOnly set) an access that is not a private-L1 hit latches
// epochBlocked and reports ok=false WITHOUT touching the hierarchy: the
// caller abandons the operation, the epoch is aborted at the barrier,
// and the sequential re-run performs the access — charging its stats
// and coherence traffic exactly once, at the same cycle as always.
func (c *Core) access(addr int64, write bool) (lat int, ok bool) {
	if c.localOnly && !c.hier.LocalHit(c.id, addr, write) {
		c.epochBlocked = true
		return 0, false
	}
	return c.hier.Access(c.id, addr, write), true
}

// EpochBegin checkpoints the core's complete architectural and
// microarchitectural state (including its slice of the memory
// hierarchy) into s, arms the local-only access gate, and resets the
// Image undo log. The checkpoint is a deep copy into s's reused
// buffers; the core keeps running in place.
func (c *Core) EpochBegin(s *EpochState) {
	s.regs = c.regs
	s.regTag = c.regTag
	s.entries = epochCopy(s.entries, c.entries)
	s.head, s.tail, s.donePrefix = c.head, c.tail, c.donePrefix
	s.sb = epochCopy(s.sb, c.sb)
	s.sbInflight = c.sbInflight

	sc := c.scope
	s.mapCID = epochCopy(s.mapCID, sc.mapCID)
	s.mapEntry = epochCopy(s.mapEntry, sc.mapEntry)
	s.mapUsed = epochCopy(s.mapUsed, sc.mapUsed)
	s.fss = epochCopy(s.fss, sc.fss)
	s.shadow = epochCopy(s.shadow, sc.shadow)
	s.overflow, s.shadowOverflow = sc.overflow, sc.shadowOverflow
	s.shadowLag, s.forceFull = sc.shadowLag, sc.forceFull
	s.robCnt = epochCopy(s.robCnt, sc.robCnt)
	s.robLoadCnt = epochCopy(s.robLoadCnt, sc.robLoadCnt)
	s.sbCnt = epochCopy(s.sbCnt, sc.sbCnt)

	s.predCounters = epochCopy(s.predCounters, c.pred.counters)
	s.predVer = c.pred.ver

	s.fetchPC = c.fetchPC
	s.redirectUntil = c.redirectUntil
	s.haltInROB = c.haltInROB
	s.haltDone = c.haltDone
	s.unresolvedBranches = c.unresolvedBranches
	s.fenceSeqs = epochCopy(s.fenceSeqs, c.fenceSeqs)
	s.robIncompleteMem = c.robIncompleteMem
	s.robStoreCount = c.robStoreCount
	s.specLoads = c.specLoads
	s.casWaiting = c.casWaiting
	s.nextComplete, s.nextSBDrain = c.nextComplete, c.nextSBDrain
	s.schedDirty, s.wakePending = c.schedDirty, c.wakePending

	s.wakeHead = epochCopy(s.wakeHead, c.wakeHead)
	s.wakeNext = epochCopy(s.wakeNext, c.wakeNext)
	s.readyBits = epochCopy(s.readyBits, c.readyBits)
	s.compHeap = epochCopy(s.compHeap, c.compHeap)

	s.progressed = c.progressed
	s.accrual = c.accrual
	s.snoopPending = epochCopy(s.snoopPending, c.snoopPending)

	s.stats = c.stats
	if s.profile == nil {
		s.profile = make(map[int]FenceSite, len(c.profile.sites))
	} else {
		clear(s.profile)
	}
	for pc, site := range c.profile.sites {
		s.profile[pc] = *site
	}
	s.cycle = c.cycle
	s.spinJumps, s.spinSkipped = c.spin.jumps, c.spin.skipped
	s.fenceStallSeen, s.robFullSeen, s.sbFullSeen = c.fenceStallSeen, c.robFullSeen, c.sbFullSeen

	c.hier.SaveCore(c.id, &s.mem)

	c.localOnly = true
	c.epochBlocked = false
	c.undoLog = c.undoLog[:0]
}

// EpochCommit keeps the state the epoch computed and disarms the gate.
func (c *Core) EpochCommit() {
	c.localOnly = false
	c.epochBlocked = false
	c.undoLog = c.undoLog[:0]
}

// EpochAbort rewinds the core to the EpochBegin checkpoint: Image words
// written in-epoch are restored from the undo log in reverse order,
// every core field is restored in place (the stats registry holds
// pointers into c.stats, so the struct must not move), fence-profile
// sites created in-epoch are deleted and surviving ones restored by
// value (spin-delta and accrual pointers reference the survivors), and
// the spin detector is reset — re-arming from scratch is always sound,
// and only clock policy, never architecture, depends on it.
func (c *Core) EpochAbort(s *EpochState) {
	for i := len(c.undoLog) - 1; i >= 0; i-- {
		c.img.Store(c.undoLog[i].addr, c.undoLog[i].old)
	}
	c.undoLog = c.undoLog[:0]
	c.localOnly = false
	c.epochBlocked = false

	c.regs = s.regs
	c.regTag = s.regTag
	copy(c.entries, s.entries)
	c.head, c.tail, c.donePrefix = s.head, s.tail, s.donePrefix
	c.sb = append(c.sb[:0], s.sb...)
	c.sbInflight = s.sbInflight

	sc := c.scope
	copy(sc.mapCID, s.mapCID)
	copy(sc.mapEntry, s.mapEntry)
	copy(sc.mapUsed, s.mapUsed)
	sc.fss = append(sc.fss[:0], s.fss...)
	sc.shadow = append(sc.shadow[:0], s.shadow...)
	sc.overflow, sc.shadowOverflow = s.overflow, s.shadowOverflow
	sc.shadowLag, sc.forceFull = s.shadowLag, s.forceFull
	copy(sc.robCnt, s.robCnt)
	copy(sc.robLoadCnt, s.robLoadCnt)
	copy(sc.sbCnt, s.sbCnt)

	copy(c.pred.counters, s.predCounters)
	c.pred.ver = s.predVer

	c.fetchPC = s.fetchPC
	c.redirectUntil = s.redirectUntil
	c.haltInROB = s.haltInROB
	c.haltDone = s.haltDone
	c.unresolvedBranches = s.unresolvedBranches
	c.fenceSeqs = append(c.fenceSeqs[:0], s.fenceSeqs...)
	c.robIncompleteMem = s.robIncompleteMem
	c.robStoreCount = s.robStoreCount
	c.specLoads = s.specLoads
	c.casWaiting = s.casWaiting
	c.nextComplete, c.nextSBDrain = s.nextComplete, s.nextSBDrain
	c.schedDirty, c.wakePending = s.schedDirty, s.wakePending

	copy(c.wakeHead, s.wakeHead)
	copy(c.wakeNext, s.wakeNext)
	copy(c.readyBits, s.readyBits)
	c.compHeap = append(c.compHeap[:0], s.compHeap...)

	c.progressed = s.progressed
	c.accrual = s.accrual
	c.snoopPending = append(c.snoopPending[:0], s.snoopPending...)

	c.stats = s.stats
	for pc, site := range c.profile.sites {
		if saved, ok := s.profile[pc]; ok {
			*site = saved
		} else {
			delete(c.profile.sites, pc)
		}
	}
	c.cycle = s.cycle
	c.fault = nil // a fault raised in-epoch is re-discovered sequentially
	c.fenceStallSeen, c.robFullSeen, c.sbFullSeen = s.fenceStallSeen, s.robFullSeen, s.sbFullSeen

	c.hier.RestoreCore(c.id, &s.mem)

	c.spinReset()
	c.spin.jumps, c.spin.skipped = s.spinJumps, s.spinSkipped
}

// EpochBlocked reports whether the core hit the local-only gate since
// EpochBegin. A blocked core's remaining tick ran to completion against
// a dummy (untaken) access, so its state is garbage — the machine must
// abort the epoch for every core.
func (c *Core) EpochBlocked() bool { return c.epochBlocked }

// Observed reports whether a counter-only stats observer is attached.
// Observers are exact under fast-forward but the parallel runner
// declines epochs on observed machines (observer callbacks are not
// required to be goroutine-safe).
func (c *Core) Observed() bool { return c.observer != nil }

// ForEachPendingGlobalWrite visits every write that already paid its
// hierarchy access and will therefore complete unconditionally — issued
// (in-flight) store-buffer entries and executing CAS entries — with the
// cycle at which its Image mutation lands. The machine's hazard scan
// clamps the epoch horizon below any such completion whose line may
// still be shared.
func (c *Core) ForEachPendingGlobalWrite(f func(addr, completesAt int64)) {
	for i := range c.sb {
		if c.sb[i].inflight {
			f(c.sb[i].addr, c.sb[i].readyAt)
		}
	}
	for seq := c.head; seq < c.tail; seq++ {
		e := c.slot(seq)
		if e.inst.Op == isa.OpCAS && e.stage == stExecuting {
			f(e.addr, e.readyAt)
		}
	}
}
