// Package machine assembles cores, the cache hierarchy, and the memory
// image into a deterministic chip-multiprocessor: a single global clock
// ticks every core in a fixed order, so every run of the same program and
// configuration produces bit-identical results.
package machine

import (
	"fmt"

	"sfence/internal/cpu"
	"sfence/internal/isa"
	"sfence/internal/memsys"
)

// Config aggregates the whole-machine parameters.
type Config struct {
	Cores     int
	Core      cpu.Config
	Mem       memsys.Config
	ImageSize int64 // bytes of simulated physical memory
	// MaxCycles aborts Run when exceeded (0 means the DefaultMaxCycles
	// safety net).
	MaxCycles int64
}

// DefaultMaxCycles is the runaway-simulation safety net.
const DefaultMaxCycles = 200_000_000

// DefaultConfig returns the paper's Table III machine: an 8-core CMP with
// the default core and memory-system parameters.
func DefaultConfig() Config {
	return Config{
		Cores:     8,
		Core:      cpu.DefaultConfig(),
		Mem:       memsys.DefaultConfig(),
		ImageSize: 64 << 20,
	}
}

// Validate checks the aggregate configuration.
func (c Config) Validate() error {
	if c.Cores < 1 || c.Cores > 64 {
		return fmt.Errorf("machine: %d cores out of range [1,64]", c.Cores)
	}
	if c.ImageSize < 1024 {
		return fmt.Errorf("machine: image size %d too small", c.ImageSize)
	}
	if err := c.Core.Validate(); err != nil {
		return err
	}
	return c.Mem.Validate()
}

// Thread describes one hardware thread: its entry point and initial
// register values.
type Thread struct {
	Entry string // program entry-point name
	Regs  map[isa.Reg]int64
}

// Machine is a running simulation instance.
type Machine struct {
	cfg   Config
	prog  *isa.Program
	img   *memsys.Image
	hier  *memsys.Hierarchy
	cores []*cpu.Core
	cycle int64
}

// New builds a machine running prog with one thread per entry of threads.
// Thread i runs on core i; cores beyond len(threads) stay idle.
func New(cfg Config, prog *isa.Program, threads []Thread) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("machine: program rejected: %w", err)
	}
	if len(threads) == 0 || len(threads) > cfg.Cores {
		return nil, fmt.Errorf("machine: %d threads for %d cores", len(threads), cfg.Cores)
	}
	img := memsys.NewImage(cfg.ImageSize)
	hier, err := memsys.NewHierarchy(cfg.Cores, cfg.Mem)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, prog: prog, img: img, hier: hier}
	for i, th := range threads {
		pc, err := prog.Entry(th.Entry)
		if err != nil {
			return nil, err
		}
		core, err := cpu.NewCore(i, cfg.Core, prog, pc, th.Regs, img, hier)
		if err != nil {
			return nil, err
		}
		core.OnStoreComplete = m.broadcastStore
		m.cores = append(m.cores, core)
	}
	return m, nil
}

func (m *Machine) broadcastStore(from int, addr int64) {
	for _, c := range m.cores {
		if c.ID() != from {
			c.NoteRemoteStore(addr)
		}
	}
}

// Image exposes the memory image for initialization and verification.
func (m *Machine) Image() *memsys.Image { return m.img }

// Hierarchy exposes the cache hierarchy (for statistics).
func (m *Machine) Hierarchy() *memsys.Hierarchy { return m.hier }

// Cycle returns the current global cycle.
func (m *Machine) Cycle() int64 { return m.cycle }

// Cores returns the number of active cores (threads).
func (m *Machine) Cores() int { return len(m.cores) }

// Core returns the i-th core.
func (m *Machine) Core(i int) *cpu.Core { return m.cores[i] }

// Step advances the machine one cycle.
func (m *Machine) Step() {
	for _, c := range m.cores {
		c.Tick(m.cycle)
	}
	m.cycle++
}

// Done reports whether every core has halted and drained.
func (m *Machine) Done() bool {
	for _, c := range m.cores {
		if !c.Done() {
			return false
		}
	}
	return true
}

// Fault returns the first core fault, if any.
func (m *Machine) Fault() error {
	for _, c := range m.cores {
		if err := c.Fault(); err != nil {
			return err
		}
	}
	return nil
}

// Run executes until every core is done, a core faults, or the cycle
// budget is exhausted. It returns the total cycle count.
func (m *Machine) Run() (int64, error) {
	limit := m.cfg.MaxCycles
	if limit <= 0 {
		limit = DefaultMaxCycles
	}
	for !m.Done() {
		if err := m.Fault(); err != nil {
			return m.cycle, err
		}
		if m.cycle >= limit {
			return m.cycle, fmt.Errorf("machine: exceeded %d cycles (livelock or runaway program?)", limit)
		}
		m.Step()
	}
	return m.cycle, nil
}

// TotalStats aggregates core statistics across the machine.
func (m *Machine) TotalStats() cpu.Stats {
	var t cpu.Stats
	for _, c := range m.cores {
		t.Add(c.Stats())
	}
	return t
}
