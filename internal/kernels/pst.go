package kernels

import (
	"fmt"

	"sfence/internal/graph"
	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
)

func init() {
	register(Info{
		Name:        "pst",
		ScopeType:   "class",
		Group:       "full-app",
		Description: "Parallel spanning tree [5] over work-stealing queues; class scope in the WSQ, plus the full fence between color/parent updates",
		Build:       buildPST,
	})
}

// pstLayout is the shared data-placement of pst (also reused by ptc).
type pstLayout struct {
	g        *graph.Graph
	rowPtr   int64
	col      int64
	qdescs   int64 // T descriptors, wsqDescStride apart
	bufs     []int64
	counter  int64 // PROCESSED (pst) / PENDING (ptc)
	perNode  int64 // color (pst) / reach (ptc) array
	parent   int64 // pst only
	mask     int64
	capWords int64
}

func buildPSTLayout(lay *memsys.Layout, g *graph.Graph, threads int, withParent bool, minCap int64) *pstLayout {
	pl := &pstLayout{g: g}
	pl.capWords = 64
	for pl.capWords < minCap+64 {
		pl.capWords <<= 1
	}
	pl.mask = pl.capWords - 1
	pl.rowPtr = lay.Array("rowPtr", int64(g.V)+1)
	lay.AlignTo(64)
	pl.col = lay.Array("col", int64(g.Edges())+1)
	lay.AlignTo(64)
	pl.qdescs = lay.Array("qdescs", int64(threads)*wsqDescStride/8)
	for t := 0; t < threads; t++ {
		lay.AlignTo(64)
		pl.bufs = append(pl.bufs, lay.Array(fmt.Sprintf("qbuf%d", t), pl.capWords))
	}
	lay.AlignTo(64)
	pl.counter = lay.Word("counter")
	lay.AlignTo(64)
	pl.perNode = lay.Array("perNode", int64(g.V))
	if withParent {
		lay.AlignTo(64)
		pl.parent = lay.Array("parent", int64(g.V))
	}
	return pl
}

func (pl *pstLayout) initGraph(img *memsys.Image) {
	for i, v := range pl.g.RowPtr {
		img.Store(pl.rowPtr+int64(i)*8, int64(v))
	}
	for i, v := range pl.g.Col {
		img.Store(pl.col+int64(i)*8, int64(v))
	}
}

// classifyPSTRegion classifies the shared pst/ptc layout for the static
// scope analyzer: the CSR graph arrays are host-written, read-only
// inputs; everything else (queues, counters, per-node state) is shared.
func classifyPSTRegion(name string) (scopecheck.Sharing, int) {
	if name == "rowPtr" || name == "col" {
		return scopecheck.ReadShared, -1
	}
	return scopecheck.SharedRW, -1
}

// Register conventions shared by pst/ptc main loops.
const (
	rgMyQ    = isa.R20 // own queue descriptor
	rgQBase  = isa.R21 // descriptor array base
	rgRowPtr = isa.R22
	rgCol    = isa.R23
	rgData   = isa.R24 // color (pst) / reach (ptc) base
	rgParent = isa.R25 // pst only
	rgCnt    = isa.R26 // shared counter address
	rgGoal   = isa.R27 // termination value (pst: V; ptc: 0)
	rgLabel  = isa.R28 // claim label (pst)
	rgNT     = isa.R29 // thread count
	rgMe     = isa.R30
	rgTask   = isa.R31
	rgVtx    = isa.R32
	rgBeg    = isa.R33
	rgEnd    = isa.R34
	rgNb     = isa.R35
	rgAddr   = isa.R36
	rgVal    = isa.R37
	rgTmp    = isa.R38
	rgVict   = isa.R39
	rgNeg1   = isa.R19
	rgTmp2   = isa.R18
)

// buildPST builds the parallel spanning tree application (Fig. 3 of the
// paper). Each thread owns a Chase-Lev deque; idle threads steal. A vertex
// is claimed with a CAS on color[v]; the claimer then writes parent[v],
// executes the full fence the paper describes between the color/parent
// updates and the queue insertion (this fence stays global even in scoped
// mode — it belongs to the application, not the queue class), and enqueues
// the vertex.
func buildPST(opts Options) (*Kernel, error) {
	opts = opts.withDefaults(8, 320, 0)
	if opts.Threads < 2 || opts.Threads > 16 {
		return nil, fmt.Errorf("pst: threads %d out of range [2,16]", opts.Threads)
	}
	s := newScopeCtx(opts, isa.ScopeClass)
	g, err := graph.RandomConnected(opts.Ops, 5, opts.Seed)
	if err != nil {
		return nil, err
	}
	lay := memsys.NewLayout(4096, 48<<20)
	// Each vertex is enqueued at most once (claimed by CAS), so 2V is a
	// safe capacity.
	pl := buildPSTLayout(lay, g, opts.Threads, true, int64(g.V)*2)

	b := isa.NewBuilder()
	b.Entry("worker")
	b.Inline(func(b *isa.Builder) {
		b.MovI(rgNeg1, -1)
		b.Label("mainloop")
		emitWSQTake(b, s, rgMyQ, rgTask, pl.mask)
		b.Bne(rgTask, isa.R0, "process")
		// Own queue empty: sweep the other queues for work.
		b.MovI(rgVict, 0)
		b.Label("sweep")
		b.Beq(rgVict, rgMe, "nextvict")
		b.MovI(rgTmp, wsqDescStride)
		b.Mul(rgTmp, rgVict, rgTmp)
		b.Add(rgTmp, rgQBase, rgTmp)
		emitWSQSteal(b, s, rgTmp, rgTask, pl.mask)
		b.Blt(isa.R0, rgTask, "process")
		b.Label("nextvict")
		b.AddI(rgVict, rgVict, 1)
		b.Blt(rgVict, rgNT, "sweep")
		// Nothing to steal: terminate once every vertex is claimed.
		b.Load(rgTmp, rgCnt, 0)
		b.Bne(rgTmp, rgGoal, "mainloop")
		b.Halt()

		b.Label("process")
		b.AddI(rgVtx, rgTask, -1) // tasks are vertex+1
		// Neighbor range from CSR.
		b.ShlI(rgTmp, rgVtx, 3)
		b.Add(rgTmp, rgRowPtr, rgTmp)
		b.Load(rgBeg, rgTmp, 0)
		b.Load(rgEnd, rgTmp, 8)
		b.Label("nbloop")
		b.Bge(rgBeg, rgEnd, "mainloop")
		b.ShlI(rgTmp, rgBeg, 3)
		b.Add(rgTmp, rgCol, rgTmp)
		b.Load(rgNb, rgTmp, 0)
		// Claim check: color[nb] == 0?
		b.ShlI(rgAddr, rgNb, 3)
		b.Add(rgAddr, rgData, rgAddr)
		b.Load(rgVal, rgAddr, 0)
		b.Bne(rgVal, isa.R0, "nextnb")
		b.CAS(rgVal, rgAddr, 0, isa.R0, rgLabel)
		b.Beq(rgVal, isa.R0, "nextnb") // lost the claim
		// The paper's full fence sits between the color and parent
		// updates (Section VI-B) and stays global in every mode: it
		// belongs to the application, not the queue class.
		b.Fence(isa.ScopeGlobal)
		// parent[nb] = vtx: a scattered, often-missing store that is
		// still draining when put()'s fence executes — the access the
		// class-scoped queue fence does not wait for.
		b.ShlI(rgAddr, rgNb, 3)
		b.Add(rgAddr, rgParent, rgAddr)
		b.Store(rgAddr, 0, rgVtx)
		b.AddI(rgTmp2, rgNb, 1)
		emitWSQPut(b, s, rgMyQ, rgTmp2, pl.mask)
		emitAtomicAdd(b, rgCnt, 1)
		b.Label("nextnb")
		b.AddI(rgBeg, rgBeg, 1)
		b.Jmp("nbloop")
	})
	p, err := b.Build()
	if err != nil {
		return nil, err
	}

	const root = 0
	memInit := map[int64]int64{
		pl.counter: 1, // root pre-claimed
	}
	// Seed thread 0's queue with the root.
	memInit[pl.bufs[0]] = root + 1
	memInit[pl.qdescs+wsqTailOff] = 1
	for t := 0; t < opts.Threads; t++ {
		memInit[pl.qdescs+int64(t)*wsqDescStride+wsqBufOff] = pl.bufs[t]
	}

	threads := make([]machine.Thread, opts.Threads)
	for t := 0; t < opts.Threads; t++ {
		threads[t] = machine.Thread{Entry: "worker", Regs: map[isa.Reg]int64{
			rgMyQ: pl.qdescs + int64(t)*wsqDescStride, rgQBase: pl.qdescs,
			rgRowPtr: pl.rowPtr, rgCol: pl.col, rgData: pl.perNode, rgParent: pl.parent,
			rgCnt: pl.counter, rgGoal: int64(g.V), rgLabel: int64(t) + 1,
			rgNT: int64(opts.Threads), rgMe: int64(t),
		}}
	}

	return &Kernel{
		Name:    "pst",
		Program: p,
		Regions: regionsFor(lay, classifyPSTRegion),
		Threads: threads,
		MemInit: memInit,
		InitImage: func(img *memsys.Image) {
			pl.initGraph(img)
			img.Store(pl.perNode+root*8, 1) // root colored by thread 0's label
		},
		Verify: func(img *memsys.Image) error {
			if got := img.Load(pl.counter); got != int64(g.V) {
				return fmt.Errorf("pst: %d vertices claimed, want %d", got, g.V)
			}
			parent := make([]int64, g.V)
			for v := 0; v < g.V; v++ {
				if img.Load(pl.perNode+int64(v)*8) == 0 {
					return fmt.Errorf("pst: vertex %d never colored", v)
				}
				parent[v] = img.Load(pl.parent + int64(v)*8)
			}
			return graph.VerifySpanningTree(g, root, parent)
		},
	}, nil
}
