package exp

import (
	"fmt"
	"strings"

	"sfence/internal/machine"
)

// RenderFigure12 formats the workload-sweep speedup table.
func RenderFigure12(series []SpeedupSeries) string {
	var sb strings.Builder
	sb.WriteString("Figure 12 — Impact of workload (speedup of S-Fence over traditional fence)\n")
	sb.WriteString(fmt.Sprintf("%-10s", "workload"))
	if len(series) > 0 {
		for _, w := range series[0].Workload {
			sb.WriteString(fmt.Sprintf("%8d", w))
		}
	}
	sb.WriteString(fmt.Sprintf("%10s\n", "peak"))
	for _, s := range series {
		sb.WriteString(fmt.Sprintf("%-10s", s.Bench))
		for _, v := range s.Speedup {
			sb.WriteString(fmt.Sprintf("%8.3f", v))
		}
		peak, at := s.Peak()
		sb.WriteString(fmt.Sprintf("  %.3fx@%d\n", peak, at))
	}
	return sb.String()
}

// RenderGroups formats a grouped stacked-bar figure as a table plus ASCII
// bars (normalized execution time; lower is better).
func RenderGroups(title string, groups []BenchGroup) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString(fmt.Sprintf("%-11s%-7s%10s%10s%10s  %s\n", "bench", "cfg", "total", "fence", "others", "bar (#=fence stalls, -=others)"))
	for _, g := range groups {
		for _, bar := range g.Bars {
			sb.WriteString(fmt.Sprintf("%-11s%-7s%10.3f%10.3f%10.3f  %s\n",
				g.Bench, bar.Label, bar.Total(), bar.FenceStall, bar.Others, asciiBar(bar)))
		}
	}
	return sb.String()
}

// asciiBar draws a stacked bar scaled to 50 chars per normalized unit.
func asciiBar(b Bar) string {
	const scale = 50
	fence := int(b.FenceStall*scale + 0.5)
	others := int(b.Others*scale + 0.5)
	return strings.Repeat("#", fence) + strings.Repeat("-", others)
}

// RenderAblation formats an ablation sweep.
func RenderAblation(title string, rows []AblationRow) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	sb.WriteString(fmt.Sprintf("%-22s%-14s%8s%12s%12s\n", "bench", "param", "value", "cycles", "stall-frac"))
	for _, r := range rows {
		sb.WriteString(fmt.Sprintf("%-22s%-14s%8d%12d%12.3f\n", r.Bench, r.Param, r.Value, r.Cycles, r.Stall))
	}
	return sb.String()
}

// RenderTableIIIRows formats already-derived Table III rows; it is the
// single source of the table's layout (internal/results renders stored
// rows through it).
func RenderTableIIIRows(rows []TableIIIRow) string {
	var sb strings.Builder
	sb.WriteString("Table III — Architectural parameters\n")
	for _, row := range rows {
		sb.WriteString(fmt.Sprintf("  %-20s %s\n", row.Parameter, row.Value))
	}
	return sb.String()
}

// RenderTableIII formats the architectural-parameter table for a config.
func RenderTableIII(cfg machine.Config) string {
	return RenderTableIIIRows(TableIII(cfg))
}

// TableIVHeader and TableIVLine define the Table IV row layout, shared
// between the live-registry renderer below and internal/results (which
// renders its serializable mirror records).
func TableIVHeader() string {
	return TableIVLine("bench", "type", "group", "description")
}

// TableIVLine formats one Table IV row.
func TableIVLine(name, scopeType, group, description string) string {
	return fmt.Sprintf("  %-11s%-7s%-11s%s\n", name, scopeType, group, description)
}

// RenderTableIV formats the benchmark-description table.
func RenderTableIV() string {
	var sb strings.Builder
	sb.WriteString("Table IV — Benchmark description\n")
	sb.WriteString(TableIVHeader())
	for _, info := range TableIV() {
		sb.WriteString(TableIVLine(info.Name, info.ScopeType, info.Group, info.Description))
	}
	return sb.String()
}

// RenderHardwareCost formats the Section VI-E cost model.
func RenderHardwareCost(rep HardwareCostReport) string {
	var sb strings.Builder
	sb.WriteString("Section VI-E — Hardware cost per core\n")
	sb.WriteString(fmt.Sprintf("  ROB FSB bits:      %d\n", rep.ROBFSBBits))
	sb.WriteString(fmt.Sprintf("  SB FSB bits:       %d\n", rep.SBFSBBits))
	sb.WriteString(fmt.Sprintf("  Mapping table bits: %d\n", rep.MappingBits))
	sb.WriteString(fmt.Sprintf("  FSS + FSS' bits:   %d\n", rep.FSSBits))
	sb.WriteString(fmt.Sprintf("  Total:             %d bits = %.1f bytes (paper claim <80B: %v)\n",
		rep.TotalBits, rep.TotalBytes, rep.PaperClaimOK))
	return sb.String()
}
