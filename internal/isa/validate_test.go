package isa

import (
	"strings"
	"testing"
)

func TestValidateAcceptsBalancedProgram(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.MovI(R1, 3)
	b.Label("loop")
	b.FsStart(1)
	b.Store(R2, 0, R1)
	b.Fence(ScopeClass)
	b.FsStart(2)
	b.Load(R3, R2, 0)
	b.FsEnd(2)
	b.FsEnd(1)
	b.AddI(R1, R1, -1)
	b.Bne(R1, R0, "loop")
	b.Halt()
	if err := b.MustBuild().Validate(); err != nil {
		t.Errorf("balanced program rejected: %v", err)
	}
}

func TestValidateRejectsHaltInsideScope(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.FsStart(1)
	b.Halt()
	err := b.MustBuild().Validate()
	if err == nil || !strings.Contains(err.Error(), "halt inside") {
		t.Errorf("halt-inside-scope not rejected: %v", err)
	}
}

func TestValidateRejectsUnmatchedFsEnd(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.FsEnd(1)
	b.Halt()
	err := b.MustBuild().Validate()
	if err == nil || !strings.Contains(err.Error(), "no open scope") {
		t.Errorf("unmatched fs_end not rejected: %v", err)
	}
}

func TestValidateRejectsDepthMismatchAtJoin(t *testing.T) {
	// One path enters the join inside a scope, the other outside.
	b := NewBuilder()
	b.Entry("main")
	b.Beq(R1, R0, "skip")
	b.FsStart(1)
	b.Label("skip")
	b.Nop() // reachable at depth 0 and depth 1
	b.FsEnd(1)
	b.Halt()
	err := b.MustBuild().Validate()
	if err == nil || !strings.Contains(err.Error(), "depths") {
		t.Errorf("depth mismatch not rejected: %v", err)
	}
}

func TestValidateRejectsFallOffEndInScope(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.FsStart(1)
	b.Nop() // no halt: runs off the end inside the scope
	err := b.MustBuild().Validate()
	if err == nil || !strings.Contains(err.Error(), "off the end") {
		t.Errorf("fall-off-end not rejected: %v", err)
	}
}

func TestValidateRejectsBadTarget(t *testing.T) {
	p := &Program{Code: []Instruction{{Op: OpJmp, Imm: 99}}, Entries: map[string]int{"main": 0}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range jump accepted")
	}
}

func TestValidateRejectsBadRegister(t *testing.T) {
	p := &Program{Code: []Instruction{{Op: OpAdd, Rd: 64}}, Entries: map[string]int{"main": 0}}
	if err := p.Validate(); err == nil {
		t.Error("out-of-range register accepted")
	}
}

func TestValidateAcceptsRunOffEndAtDepthZero(t *testing.T) {
	b := NewBuilder()
	b.Entry("main")
	b.MovI(R1, 1)
	if err := b.MustBuild().Validate(); err != nil {
		t.Errorf("depth-0 fall-off-end rejected: %v", err)
	}
}

func TestValidateRejectsEntryOutOfRange(t *testing.T) {
	for _, pc := range []int{-1, 99} {
		p := &Program{Code: []Instruction{{Op: OpHalt}}, Entries: map[string]int{"main": pc}}
		err := p.Validate()
		if err == nil || !strings.Contains(err.Error(), "outside program") {
			t.Errorf("entry pc %d: got %v, want out-of-range error", pc, err)
		}
	}
}

func TestValidateAcceptsEntryAtImplicitHalt(t *testing.T) {
	// An entry at len(Code) is the implicit-halt pc: a thread that does
	// nothing, which the runner accepts.
	p := &Program{Code: []Instruction{{Op: OpHalt}}, Entries: map[string]int{"main": 1}}
	if err := p.Validate(); err != nil {
		t.Errorf("entry at implicit halt rejected: %v", err)
	}
}

func TestValidateRejectsUnreachableUnbalanced(t *testing.T) {
	// The unmatched fs_end is dead (jumped over), but dead regions must
	// still be well-scoped from depth zero.
	p := &Program{Code: []Instruction{
		{Op: OpJmp, Imm: 2},
		{Op: OpFsEnd},
		{Op: OpHalt},
	}, Entries: map[string]int{"main": 0}}
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "no open scope") {
		t.Errorf("unreachable unmatched fs_end: got %v, want no-open-scope error", err)
	}
}

func TestValidateChecksDeadPrefixOfMidCodeEntry(t *testing.T) {
	// The program's only entry is mid-code; the dead prefix opens a scope
	// it never closes and must still be flagged.
	p := &Program{Code: []Instruction{
		{Op: OpFsStart, Imm: 1},
		{Op: OpHalt},
		{Op: OpHalt},
	}, Entries: map[string]int{"main": 2}}
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "halt inside") {
		t.Errorf("dead unbalanced prefix: got %v, want halt-inside-scope error", err)
	}
}

func TestValidateAcceptsBalancedDeadCode(t *testing.T) {
	p := &Program{Code: []Instruction{
		{Op: OpJmp, Imm: 4},
		{Op: OpFsStart, Imm: 1}, // dead but balanced
		{Op: OpFsEnd, Imm: 1},
		{Op: OpHalt},
		{Op: OpHalt},
	}, Entries: map[string]int{"main": 0}}
	if err := p.Validate(); err != nil {
		t.Errorf("balanced dead code rejected: %v", err)
	}
}

func TestValidateRejectsDepthMismatchAtLoopBackEdge(t *testing.T) {
	// A back edge that re-enters the loop head at a deeper scope than the
	// first visit.
	b := NewBuilder()
	b.Entry("main")
	b.Label("head")
	b.FsStart(1)
	b.Bne(R1, R0, "head") // back to head at depth 1 vs. entry depth 0
	b.FsEnd(1)
	b.Halt()
	err := b.MustBuild().Validate()
	if err == nil || !strings.Contains(err.Error(), "depths") {
		t.Errorf("loop back-edge depth mismatch: got %v, want depth error", err)
	}
}
