// Package kernels contains the paper's eight benchmarks (Table IV),
// written in the simulator's mini-ISA: four lock-free algorithms (dekker,
// wsq, msn, harris) and four full applications (pst, ptc, barnes,
// radiosity). Each kernel can be built with traditional fences or with
// scoped fences (class or set scope), and ships a verifier that checks the
// run's architectural result — so every performance experiment doubles as
// a correctness test of the memory model and the S-Fence hardware.
package kernels

import (
	"context"
	"fmt"
	"sort"

	"sfence/internal/cpu"
	"sfence/internal/isa"
	"sfence/internal/machine"
	"sfence/internal/memsys"
	"sfence/internal/scopecheck"
	"sfence/internal/stats"
)

// FenceMode selects how the kernel's fences are emitted.
type FenceMode uint8

const (
	// Traditional emits every fence as a global (full) fence: the
	// baseline "T" configuration of the paper.
	Traditional FenceMode = iota
	// Scoped emits each fence with its natural scope (class or set,
	// depending on the benchmark): the paper's "S" configuration.
	Scoped
	// Inferred builds the Traditional (unannotated) variant and rewrites
	// it with scopecheck.Infer: every fence becomes set-scoped and
	// exactly the accesses the static analysis proves thread-escaping and
	// order-relevant carry a set flag — the compiler-derived "S"
	// configuration, with no hand annotations.
	Inferred
)

func (m FenceMode) String() string {
	switch m {
	case Traditional:
		return "traditional"
	case Inferred:
		return "inferred"
	}
	return "scoped"
}

// ScopeOverride optionally forces the scoped variant to use class or set
// scope, for the paper's Figure 14 comparison.
type ScopeOverride uint8

const (
	ScopeDefault ScopeOverride = iota
	ForceClass
	ForceSet
)

// Options parameterize a kernel build. The JSON tags are part of the
// results schema: options are hashed into run-cache keys and stored in
// run records and BENCH_*.json artifacts (see internal/results).
type Options struct {
	Mode  FenceMode     `json:"mode"`
	Scope ScopeOverride `json:"scope"`

	// Threads is the number of hardware threads to use (0 = kernel
	// default, bounded by the machine's core count at run time).
	Threads int `json:"threads"`
	// Ops scales the kernel's main operation count (0 = default).
	Ops int `json:"ops"`
	// Workload is the between-operations computation knob of the
	// paper's Figure 12 harness (arbitrary units, 0 = kernel default).
	Workload int `json:"workload"`
	// Seed drives all randomized inputs deterministically.
	Seed int64 `json:"seed"`

	// FinerFences uses store-store fences where the algorithm only needs
	// store-store ordering (the paper's Fig. 2 put() "storestore"
	// comment), combining fence scoping with finer fence kinds as
	// Section VII suggests. Applies to wsq-based kernels.
	FinerFences bool `json:"finerFences"`
}

func (o Options) withDefaults(threads, ops, workload int) Options {
	if o.Threads == 0 {
		o.Threads = threads
	}
	if o.Ops == 0 {
		o.Ops = ops
	}
	if o.Workload == 0 {
		o.Workload = workload
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Kernel is a built benchmark ready to run.
type Kernel struct {
	Name    string
	Program *isa.Program
	Threads []machine.Thread
	// MemInit seeds individual words of the memory image before the run.
	MemInit map[int64]int64
	// InitImage, if non-nil, performs bulk image initialization (large
	// arrays, graphs) before the run; it runs after MemInit.
	InitImage func(img *memsys.Image)
	// Verify checks the final memory image; nil means no check.
	Verify func(img *memsys.Image) error
	// Regions declares the kernel's data placement for the static scope
	// analyzer (see Scenario); empty means no regions are declared and
	// only concretely resolved addresses are attributed.
	Regions []scopecheck.Region
}

// Builder constructs a kernel from options.
type Builder func(opts Options) (*Kernel, error)

// Info describes a benchmark for Table IV.
type Info struct {
	Name        string
	ScopeType   string // "class" or "set"
	Description string
	Group       string // "lock-free", "full-app", or "micro"
	Build       Builder
	// Hidden excludes the benchmark from All() (and hence Table IV):
	// microbenchmarks that exist for ablations, not the paper's tables.
	// Lookup and Build still resolve hidden benchmarks by name.
	Hidden bool
}

var registry []Info

func register(info Info) {
	registry = append(registry, info)
}

// All returns benchmark metadata in a stable order (Table IV order),
// excluding hidden microbenchmarks.
func All() []Info {
	out := make([]Info, 0, len(registry))
	for _, info := range registry {
		if !info.Hidden {
			out = append(out, info)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return tableOrder(out[i].Name) < tableOrder(out[j].Name) })
	return out
}

func tableOrder(name string) int {
	order := []string{"dekker", "wsq", "msn", "harris", "barnes", "radiosity", "pst", "ptc"}
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return len(order)
}

// Lookup returns the registered benchmark by name.
func Lookup(name string) (Info, error) {
	for _, info := range registry {
		if info.Name == name {
			return info, nil
		}
	}
	return Info{}, fmt.Errorf("kernels: unknown benchmark %q", name)
}

// Build constructs the named benchmark. Inferred mode builds the
// unannotated Traditional variant and rewrites its program with
// statically inferred scopes.
func Build(name string, opts Options) (*Kernel, error) {
	info, err := Lookup(name)
	if err != nil {
		return nil, err
	}
	if opts.Mode != Inferred {
		return info.Build(opts)
	}
	base := opts
	base.Mode = Traditional
	k, err := info.Build(base)
	if err != nil {
		return nil, err
	}
	sc := k.Scenario()
	prog, _, err := scopecheck.Infer(&sc)
	if err != nil {
		return nil, fmt.Errorf("kernels: %s: scope inference: %w", name, err)
	}
	k.Program = prog
	return k, nil
}

// Result summarizes one kernel run. Results are memoized on disk by the
// run cache and embedded in JSON artifacts, so the JSON tags are part of
// the results schema. The headline fields are projections of Snapshot —
// the machine's full hierarchical stats registry at end of run — kept as
// explicit fields so the figure/table pipeline reads them without string
// lookups and so the serialized layout (and hence every committed
// artifact) is unchanged from the pre-registry schema.
type Result struct {
	Cycles     int64        `json:"cycles"`
	FenceStall uint64       `json:"fenceStall"` // summed across cores
	CoreCycles uint64       `json:"coreCycles"` // summed active cycles across cores
	Stats      machineStats `json:"stats"`

	// Profile is the per-static-fence stall profile, merged across
	// cores and sorted by stall cycles.
	Profile []cpu.FenceSite `json:"profile"`

	// Snapshot is the full, deterministically ordered stats snapshot of
	// the run: every per-core pipeline, S-Fence hardware, and cache
	// counter plus machine totals and clock accounting. It rides through
	// the run cache, so the "stats" experiment and `sfence-sim -stats`
	// expose it without re-plumbing individual fields through the stack.
	Snapshot stats.Snapshot `json:"snapshot"`
}

type machineStats struct {
	Committed       uint64 `json:"committed"`
	CommittedFences uint64 `json:"committedFences"`
	Mispredicts     uint64 `json:"mispredicts"`
	L1Misses        uint64 `json:"l1Misses"`
	L2Misses        uint64 `json:"l2Misses"`
}

// FenceStallFraction is the fence-stall share of total core time — the
// "Fence Stalls" portion of the paper's stacked bars.
func (r Result) FenceStallFraction() float64 {
	if r.CoreCycles == 0 {
		return 0
	}
	return float64(r.FenceStall) / float64(r.CoreCycles)
}

// Run executes the kernel on the given machine configuration, verifies the
// result, and returns the measurements. The context cancels or time-boxes
// the simulation mid-cycle-loop (see machine.Machine.Run); a cancelled run
// returns ctx.Err() and no Result.
func Run(ctx context.Context, k *Kernel, cfg machine.Config) (Result, error) {
	return RunTraced(ctx, k, cfg, nil)
}

// RunTraced is Run with an optional pipeline tracer attached to every
// core. A tracer pins the machine's per-cycle slow path; see RunObserved
// for fast-forward-compatible counter-only observation.
func RunTraced(ctx context.Context, k *Kernel, cfg machine.Config, tracer cpu.Tracer) (Result, error) {
	return RunInstrumented(ctx, k, cfg, tracer, nil)
}

// RunObserved is Run with a counter-only observer attached to every core.
// Unlike a tracer, an observer keeps the two-speed clock fast-forwarding
// and cannot change any measurement.
func RunObserved(ctx context.Context, k *Kernel, cfg machine.Config, obs stats.Observer) (Result, error) {
	return RunInstrumented(ctx, k, cfg, nil, obs)
}

// RunInstrumented executes the kernel with an optional pipeline tracer
// and/or counter-only observer attached to every core (either may be
// nil), verifies the result, and summarizes the machine's stats-registry
// snapshot into a Result.
func RunInstrumented(ctx context.Context, k *Kernel, cfg machine.Config, tracer cpu.Tracer, obs stats.Observer) (Result, error) {
	if len(k.Threads) > cfg.Cores {
		return Result{}, fmt.Errorf("kernels: %s needs %d cores, machine has %d", k.Name, len(k.Threads), cfg.Cores)
	}
	m, err := machine.New(cfg, k.Program, k.Threads)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < m.Cores(); i++ {
		if tracer != nil {
			m.Core(i).SetTracer(tracer)
		}
		if obs != nil {
			m.Core(i).SetObserver(obs)
		}
	}
	for addr, val := range k.MemInit {
		m.Image().Store(addr, val)
	}
	if k.InitImage != nil {
		k.InitImage(m.Image())
	}
	cycles, err := m.Run(ctx)
	if err != nil {
		return Result{}, fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	if k.Verify != nil {
		if err := k.Verify(m.Image()); err != nil {
			return Result{}, fmt.Errorf("kernels: %s verification failed: %w", k.Name, err)
		}
	}
	// The Result is a projection of the registry snapshot: the machine's
	// derived "machine.*" stats are the cross-core sums TotalStats used
	// to provide, evaluated once here.
	snap := m.StatsSnapshot()
	profiles := make([][]cpu.FenceSite, m.Cores())
	for i := 0; i < m.Cores(); i++ {
		profiles[i] = m.Core(i).FenceProfile()
	}
	return Result{
		Cycles:     cycles,
		FenceStall: snap.UValue("machine.fence_idle_cycles"),
		CoreCycles: snap.UValue("machine.core_cycles"),
		Profile:    cpu.MergeFenceProfiles(profiles...),
		Stats: machineStats{
			Committed:       snap.UValue("machine.committed"),
			CommittedFences: snap.UValue("machine.committed_fences"),
			Mispredicts:     snap.UValue("machine.mispredicts"),
			L1Misses:        snap.UValue("machine.mem.l1_misses"),
			L2Misses:        snap.UValue("machine.mem.l2_misses"),
		},
		Snapshot: snap,
	}, nil
}

// --- shared code-generation helpers ---

// scopeCtx carries the effective fence scoping of a kernel build.
type scopeCtx struct {
	mode  FenceMode
	kind  isa.ScopeKind // effective scope kind when mode == Scoped
	finer bool          // store-store fences where sufficient
}

// newScopeCtx resolves options against the kernel's natural scope kind.
func newScopeCtx(opts Options, natural isa.ScopeKind) scopeCtx {
	kind := natural
	switch opts.Scope {
	case ForceClass:
		kind = isa.ScopeClass
	case ForceSet:
		kind = isa.ScopeSet
	}
	return scopeCtx{mode: opts.Mode, kind: kind, finer: opts.FinerFences}
}

// fence emits the kernel's fence: global under Traditional, the effective
// scope under Scoped.
func (s scopeCtx) fence(b *isa.Builder) {
	if s.mode == Traditional {
		b.Fence(isa.ScopeGlobal)
		return
	}
	b.Fence(s.kind)
}

// fenceSS emits a fence that only needs store-store ordering: a finer
// store-store fence when FinerFences is enabled, else a full fence.
func (s scopeCtx) fenceSS(b *isa.Builder) { s.fenceOrdered(b, isa.OrderSS) }

// fenceLL emits a fence that only needs load-load ordering.
func (s scopeCtx) fenceLL(b *isa.Builder) { s.fenceOrdered(b, isa.OrderLL) }

func (s scopeCtx) fenceOrdered(b *isa.Builder, order isa.FenceOrder) {
	kind := s.kind
	if s.mode == Traditional {
		kind = isa.ScopeGlobal
	}
	if s.finer {
		b.FenceOrdered(kind, order)
		return
	}
	b.Fence(kind)
}

// shared marks the next memory instruction as a set-scope access when the
// effective scope is set scope (the compiler flagging of Table II).
func (s scopeCtx) shared(b *isa.Builder) {
	if s.mode == Scoped && s.kind == isa.ScopeSet {
		b.SetFlagged()
	}
}

// enter/exit bracket a "class method": fs_start/fs_end are emitted when
// the effective scope is class scope.
func (s scopeCtx) enter(b *isa.Builder, cid int64) {
	if s.mode == Scoped && s.kind == isa.ScopeClass {
		b.FsStart(cid)
	}
}

func (s scopeCtx) exit(b *isa.Builder, cid int64) {
	if s.mode == Scoped && s.kind == isa.ScopeClass {
		b.FsEnd(cid)
	}
}

// Workload register conventions: the workload emitter owns R56-R59 and
// must not collide with kernel registers.
const (
	regWorkPtr  = isa.Reg(56) // current private pointer
	regWorkBase = isa.Reg(57) // private region base
	regWorkTmp  = isa.Reg(58)
	regWorkAcc  = isa.Reg(59)
)

// workRegionWords is the per-thread private workload region (256 KiB:
// larger than L1, so strided walks miss).
const workRegionWords = 32768

// emitWorkload generates `units` units of private computation: per unit, a
// strided private store to a cold cache line (a long-latency access that
// drains from the store buffer), a warm private load, and a little
// arithmetic. These accesses are deliberately out of every fence scope —
// they are the "arithmetic computations on private variables, whose
// accesses do not need to be ordered by fences" of the paper's harness
// (Section VI-A).
//
// The store's value is computed from registers only (never from the cold
// loads), so it retires into the store buffer quickly and drains slowly —
// exactly the situation where a traditional fence stalls on out-of-scope
// work and an S-Fence does not (the paper's Fig. 10).
func emitWorkload(b *isa.Builder, units int) {
	if units <= 0 {
		return
	}
	b.Inline(func(b *isa.Builder) {
		b.MovI(regWorkTmp, int64(units))
		b.Label("wl")
		// Strided walk: 16-byte steps, so roughly roughly every
		// opens a fresh (cold or L1-evicted) line.
		b.AddI(regWorkPtr, regWorkPtr, 8)
		b.AndI(regWorkPtr, regWorkPtr, int64(workRegionWords*8-1))
		b.Add(isa.R55, regWorkBase, regWorkPtr)
		b.AddI(regWorkAcc, regWorkAcc, 7)
		b.Store(isa.R55, 0, regWorkAcc) // long-latency, register-sourced
		// A warm load (region base line stays resident) plus arithmetic.
		b.Load(isa.R55, regWorkBase, 8)
		b.Add(regWorkAcc, regWorkAcc, isa.R55)
		b.Mul(isa.R55, regWorkAcc, regWorkAcc)
		b.ShrI(isa.R55, isa.R55, 9)
		b.Xor(regWorkAcc, regWorkAcc, isa.R55)
		b.AddI(regWorkTmp, regWorkTmp, -1)
		b.Bne(regWorkTmp, isa.R0, "wl")
		// Compute tail proportional to the workload: a dependent
		// multiply chain that lets in-flight private stores drain under
		// computation (this is what bends the paper's Fig. 12 curves
		// back down at high workload).
		for i := 0; i < 8*units; i++ {
			b.Mul(regWorkAcc, regWorkAcc, regWorkAcc)
			b.XorI(regWorkAcc, regWorkAcc, int64(i)|1)
		}
	})
}

// emitAtomicAdd generates a CAS retry loop adding `delta` to the word at
// [addrReg]. Clobbers R50-R53.
func emitAtomicAdd(b *isa.Builder, addrReg isa.Reg, delta int64) {
	b.Inline(func(b *isa.Builder) {
		b.Label("retry")
		b.Load(isa.R50, addrReg, 0)
		b.AddI(isa.R51, isa.R50, delta)
		b.CAS(isa.R52, addrReg, 0, isa.R50, isa.R51)
		b.Beq(isa.R52, isa.R0, "retry")
	})
}

// lcgMul and lcgAdd are the constants of the deterministic pseudo-random
// walk used by kernels (a 64-bit LCG, mirrored exactly by Go verifiers).
const (
	lcgMul = 6364136223846793005
	lcgAdd = 1442695040888963407
)

// emitLCG advances xReg through one LCG step and leaves (x >> 33) & mask
// in outReg.
func emitLCG(b *isa.Builder, xReg, outReg isa.Reg, mask int64) {
	b.MovI(isa.R54, lcgMul)
	b.Mul(xReg, xReg, isa.R54)
	b.MovI(isa.R54, lcgAdd)
	b.Add(xReg, xReg, isa.R54)
	b.ShrI(outReg, xReg, 33)
	b.AndI(outReg, outReg, mask)
}

// lcgNext mirrors emitLCG for Go-side verification.
func lcgNext(x int64, mask int64) (int64, int64) {
	x = x*lcgMul + lcgAdd
	return x, (x >> 33) & mask
}
